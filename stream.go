package hsq

// Stream is one named quantile stream hosted by a DB. It embeds its
// per-stream Engine, so the full single-stream surface — Observe,
// ObserveSlice, EndStep, Quantile(s), Rank, windowed queries, the context
// variants, MemoryUsage, Checkpoint, SyncMaintenance, MaintenanceStats —
// applies per stream, while storage, the block-cache budget, aggregate I/O
// accounting and (in async mode) the background maintenance worker pool are
// shared with every other stream of the DB.
//
// DiskStats (inherited from Engine) reports only this stream's I/O: the
// stream's engine runs on a namespaced view of the shared device, and
// per-view counters always sum to the DB's DiskStats aggregate.
//
// Use DB.DropStream to delete a stream rather than calling Destroy
// directly, so the DB's stream directory stays consistent.
type Stream struct {
	*Engine
	name string
	db   *DB
}

// Name returns the stream's name.
func (s *Stream) Name() string { return s.name }

// DB returns the hosting database.
func (s *Stream) DB() *DB { return s.db }
