package hsq

import (
	"context"

	"repro/internal/core"
)

// Stream is one named quantile stream hosted by a DB. It exposes the full
// single-stream surface — Observe, ObserveSlice, EndStep, Quantile(s),
// Rank, windowed queries, the context variants, MemoryUsage, Checkpoint,
// SyncMaintenance, MaintenanceStats — per stream, while storage, the
// block-cache budget, aggregate I/O accounting and (in async mode) the
// background maintenance worker pool are shared with every other stream of
// the DB.
//
// A Stream is a durable handle, not the engine itself: the engine behind
// it hydrates on first touch and may be evicted (sealed to disk) while the
// stream is idle under Config.MaxHydratedStreams. Every method pins the
// engine for its duration — hydrating it first if needed — so operations
// never observe an eviction mid-flight, and a handle obtained once stays
// valid across any number of hydrate/evict cycles. Methods on a stream
// that has been dropped (DB.DropStream), or whose DB has been closed,
// fail with ErrClosed.
//
// DiskStats reports only this stream's I/O: the engine runs on a
// namespaced view of the shared device, and per-view counters always sum
// to the DB's DiskStats aggregate (and survive eviction).
//
// Use DB.DropStream to delete a stream rather than calling Destroy
// directly, so the DB's stream directory stays consistent.
type Stream struct {
	name string
	db   *DB
	ent  *streamEntry
}

// Name returns the stream's name.
func (s *Stream) Name() string { return s.name }

// DB returns the hosting database.
func (s *Stream) DB() *DB { return s.db }

// Hydrated reports whether the stream currently holds a memory-resident
// engine. Monitoring paths use it to skip cold streams instead of
// hydrating the whole directory just to render a status page.
func (s *Stream) Hydrated() bool {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	return s.ent.eng != nil
}

// Epsilon returns the configured rank-error budget ε (DB-wide; streams
// share one configuration).
func (s *Stream) Epsilon() float64 { return s.db.opts.Epsilon }

// Kappa returns the resolved merge fan-in κ.
func (s *Stream) Kappa() int { return s.db.opts.Kappa }

// Observe adds one element to the stream's current step, hydrating the
// engine if the stream is cold. Like Engine.Observe it never blocks on
// maintenance and reports no error: an element observed against a dropped
// stream or closed DB — or one whose hydration fails — is dropped. Use
// ObserveCtx for error reporting.
func (s *Stream) Observe(v int64) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return
	}
	defer release()
	eng.Observe(v)
}

// ObserveSlice adds a batch of elements in one lock acquisition; the slice
// is observed atomically or not at all.
func (s *Stream) ObserveSlice(vs []int64) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return
	}
	defer release()
	eng.ObserveSlice(vs)
}

// EndStep seals the current step: the live batch becomes a completed step
// of the historical warehouse (see Engine.EndStep for the sync/async/
// manual semantics).
func (s *Stream) EndStep() (UpdateStats, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return UpdateStats{}, err
	}
	defer release()
	return eng.EndStep()
}

// Quantile answers an ε-approximate φ-quantile over the stream's full
// history plus its live batch.
func (s *Stream) Quantile(phi float64) (int64, QueryStats, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer release()
	return eng.Quantile(phi)
}

// QuantileOpts is Quantile with per-query knobs.
func (s *Stream) QuantileOpts(phi float64, opts QueryOpts) (int64, QueryStats, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer release()
	return eng.QuantileOpts(phi, opts)
}

// Quantiles answers a batch of φ-quantiles over one consistent snapshot.
func (s *Stream) Quantiles(phis []float64) ([]int64, QueryStats, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer release()
	return eng.Quantiles(phis)
}

// QuantilesOpts is Quantiles with per-query knobs.
func (s *Stream) QuantilesOpts(phis []float64, opts QueryOpts) ([]int64, QueryStats, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer release()
	return eng.QuantilesOpts(phis, opts)
}

// QuantileQuick answers from memory-resident summaries only (no disk
// probes), at 2ε error.
func (s *Stream) QuantileQuick(phi float64) (int64, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, err
	}
	defer release()
	return eng.QuantileQuick(phi)
}

// RankQuery returns the element of rank r.
func (s *Stream) RankQuery(r int64) (int64, QueryStats, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer release()
	return eng.RankQuery(r)
}

// RankQueryQuick is RankQuery from memory-resident summaries only.
func (s *Stream) RankQueryQuick(r int64) (int64, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, err
	}
	defer release()
	return eng.RankQueryQuick(r)
}

// Rank returns the rank of value v.
func (s *Stream) Rank(v int64) (int64, QueryStats, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer release()
	return eng.Rank(v)
}

// RankQuick is Rank from memory-resident summaries only.
func (s *Stream) RankQuick(v int64) (int64, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, err
	}
	defer release()
	return eng.RankQuick(v)
}

// WindowQuantile answers a φ-quantile over the trailing window of the
// given number of steps.
func (s *Stream) WindowQuantile(phi float64, steps int) (int64, QueryStats, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer release()
	return eng.WindowQuantile(phi, steps)
}

// WindowQuantileQuick is WindowQuantile from memory-resident summaries
// only.
func (s *Stream) WindowQuantileQuick(phi float64, steps int) (int64, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, err
	}
	defer release()
	return eng.WindowQuantileQuick(phi, steps)
}

// AvailableWindows lists the trailing-window sizes answerable at full
// accuracy.
func (s *Stream) AvailableWindows() []int {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return nil
	}
	defer release()
	return eng.AvailableWindows()
}

// StreamCount returns the element count of the live (unsealed) batch.
func (s *Stream) StreamCount() int64 {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0
	}
	defer release()
	return eng.StreamCount()
}

// HistCount returns the element count across all completed steps.
func (s *Stream) HistCount() int64 {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0
	}
	defer release()
	return eng.HistCount()
}

// TotalCount returns HistCount plus the live batch.
func (s *Stream) TotalCount() int64 {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0
	}
	defer release()
	return eng.TotalCount()
}

// Steps returns the number of completed steps.
func (s *Stream) Steps() int {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0
	}
	defer release()
	return eng.Steps()
}

// PartitionCount returns the number of disk partitions across all levels.
func (s *Stream) PartitionCount() int {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0
	}
	defer release()
	return eng.PartitionCount()
}

// Describe returns the stream's level layout for inspection.
func (s *Stream) Describe() []LevelInfo {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return nil
	}
	defer release()
	return eng.Describe()
}

// Summary captures the stream's current in-memory summary state as a
// portable core.ShardSummary (see Engine.Summary): the scatter half of the
// cluster's scatter-gather query path.
func (s *Stream) Summary() (*core.ShardSummary, error) {
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return nil, err
	}
	defer release()
	return eng.Summary()
}

// MemoryUsage returns the stream's memory-resident summary footprint. A
// cold (evicted or never-touched) stream reports zero — which is the
// point of eviction — without hydrating.
func (s *Stream) MemoryUsage() MemoryUsage {
	s.db.mu.Lock()
	eng := s.ent.eng
	if eng == nil || s.db.closed {
		s.db.mu.Unlock()
		return MemoryUsage{}
	}
	s.ent.pins++
	s.db.mu.Unlock()
	defer s.db.release(s.ent)
	return eng.MemoryUsage()
}

// DiskStats returns this stream's I/O counters: the block I/O issued
// through its namespaced view of the shared device. The counters are
// cumulative across hydrate/evict cycles and always sum (with the DB's
// other streams) to DB.DiskStats. Reading them never hydrates the stream.
func (s *Stream) DiskStats() IOStats {
	s.db.mu.Lock()
	view := s.ent.view
	s.db.mu.Unlock()
	if view == nil {
		return IOStats{}
	}
	return fromDisk(view.Stats())
}

// ProbeMemoStats returns the stream's rank-probe memo counters (see
// Config.ProbeMemoEntries). A cold stream reports zeros without hydrating:
// its memos died with the evicted engine's versions.
func (s *Stream) ProbeMemoStats() ProbeMemoStats {
	s.db.mu.Lock()
	eng := s.ent.eng
	if eng == nil || s.db.closed {
		s.db.mu.Unlock()
		return ProbeMemoStats{}
	}
	s.ent.pins++
	s.db.mu.Unlock()
	defer s.db.release(s.ent)
	return eng.ProbeMemoStats()
}

// MaintenanceStats returns the stream's maintenance counters. A cold
// stream reports an empty (fully drained) state without hydrating —
// eviction seals a stream only after its backlog is installed, so cold
// streams genuinely have no pending work.
func (s *Stream) MaintenanceStats() MaintenanceStats {
	s.db.mu.Lock()
	eng := s.ent.eng
	if eng == nil || s.db.closed {
		s.db.mu.Unlock()
		return MaintenanceStats{Mode: s.db.opts.Maintenance}
	}
	s.ent.pins++
	s.db.mu.Unlock()
	defer s.db.release(s.ent)
	return eng.MaintenanceStats()
}

// SyncMaintenance blocks until every sealed step of this stream is
// installed and committed (see Engine.SyncMaintenance). A cold stream has
// no pending work — sealing drained it — so the call returns immediately
// without hydrating.
func (s *Stream) SyncMaintenance() error {
	s.db.mu.Lock()
	if s.db.closed {
		s.db.mu.Unlock()
		return ErrClosed
	}
	eng := s.ent.eng
	if eng == nil {
		s.db.mu.Unlock()
		return nil
	}
	s.ent.pins++
	s.db.mu.Unlock()
	defer s.db.release(s.ent)
	return eng.SyncMaintenance()
}

// Checkpoint persists the stream's manifest so a restart resumes it (see
// Engine.Checkpoint). A cold stream is already durable — eviction is a
// checkpoint — so the call is a no-op without hydrating.
func (s *Stream) Checkpoint() error {
	s.db.mu.Lock()
	if s.db.closed {
		s.db.mu.Unlock()
		return ErrClosed
	}
	eng := s.ent.eng
	if eng == nil {
		s.db.mu.Unlock()
		return nil
	}
	s.ent.pins++
	s.db.mu.Unlock()
	defer s.db.release(s.ent)
	return eng.Checkpoint()
}

// Context variants: per-stream mirrors of the Engine's ctx surface (see
// ctx.go for the cancellation semantics of each).

// ObserveCtx is Observe with error reporting: hydration failures, a
// dropped stream and a closed DB all surface instead of dropping the
// element silently.
func (s *Stream) ObserveCtx(ctx context.Context, v int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return err
	}
	defer release()
	return eng.ObserveCtx(ctx, v)
}

// ObserveSliceCtx is ObserveSlice with error reporting.
func (s *Stream) ObserveSliceCtx(ctx context.Context, vs []int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return err
	}
	defer release()
	return eng.ObserveSliceCtx(ctx, vs)
}

// EndStepCtx is EndStep with cancellation.
func (s *Stream) EndStepCtx(ctx context.Context) (UpdateStats, error) {
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return UpdateStats{}, err
	}
	defer release()
	return eng.EndStepCtx(ctx)
}

// QuantileCtx is Quantile with cancellation.
func (s *Stream) QuantileCtx(ctx context.Context, phi float64) (int64, QueryStats, error) {
	return s.QuantileOptsCtx(ctx, phi, QueryOpts{})
}

// QuantileOptsCtx is QuantileOpts with cancellation.
func (s *Stream) QuantileOptsCtx(ctx context.Context, phi float64, opts QueryOpts) (int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return 0, QueryStats{}, err
	}
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer release()
	return eng.QuantileOptsCtx(ctx, phi, opts)
}

// QuantilesCtx is Quantiles with cancellation.
func (s *Stream) QuantilesCtx(ctx context.Context, phis []float64) ([]int64, QueryStats, error) {
	return s.QuantilesOptsCtx(ctx, phis, QueryOpts{})
}

// QuantilesOptsCtx is QuantilesOpts with cancellation.
func (s *Stream) QuantilesOptsCtx(ctx context.Context, phis []float64, opts QueryOpts) ([]int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer release()
	return eng.QuantilesOptsCtx(ctx, phis, opts)
}

// RankQueryCtx is RankQuery with cancellation.
func (s *Stream) RankQueryCtx(ctx context.Context, r int64) (int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return 0, QueryStats{}, err
	}
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer release()
	return eng.RankQueryCtx(ctx, r)
}

// RankCtx is Rank with cancellation.
func (s *Stream) RankCtx(ctx context.Context, v int64) (int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return 0, QueryStats{}, err
	}
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer release()
	return eng.RankCtx(ctx, v)
}

// WindowQuantileCtx is WindowQuantile with cancellation.
func (s *Stream) WindowQuantileCtx(ctx context.Context, phi float64, steps int) (int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return 0, QueryStats{}, err
	}
	eng, release, err := s.db.acquire(s.ent)
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer release()
	return eng.WindowQuantileCtx(ctx, phi, steps)
}
