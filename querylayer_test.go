package hsq_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/oracle"
	"repro/internal/query"
)

// qlFixture is a DB with a deterministic multi-stream history plus the
// per-(stream, step) value log the oracles are built from.
type qlFixture struct {
	db     *hsq.DB
	names  []string
	steps  int
	values map[string][][]int64 // name → step (0-based) → values
}

// newQLFixture feeds `steps` steps into streams svc.<seg>.lat with seeded
// random values. Kappa is set high so every step stays its own partition
// and every step range aligns — the merge-coarsening error path has its
// own test.
func newQLFixture(t *testing.T, maintenance string, steps int) *qlFixture {
	t.Helper()
	db, err := hsq.Open(hsq.Options{
		Epsilon: 0.1, Kappa: 100, Backend: "mem", BlockSize: 512,
		Maintenance: maintenance,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() }) //nolint:errcheck
	f := &qlFixture{
		db:     db,
		names:  []string{"svc.east.lat", "svc.east.err", "svc.west.lat", "other.east.lat"},
		steps:  steps,
		values: make(map[string][][]int64),
	}
	rng := rand.New(rand.NewSource(42))
	for _, name := range f.names {
		st, err := db.Stream(name)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			n := 200 + rng.Intn(200)
			vs := make([]int64, n)
			for i := range vs {
				vs[i] = rng.Int63n(100_000) - 50_000
			}
			st.ObserveSlice(vs)
			if _, err := st.EndStep(); err != nil {
				t.Fatal(err)
			}
			f.values[name] = append(f.values[name], vs)
		}
	}
	return f
}

// oracleFor builds the oracle over the union of the named streams'
// values in steps (from, to], both 1-based; to == 0 means the full
// history including any live values (none in the fixture).
func (f *qlFixture) oracleFor(names []string, from, to int) *oracle.Oracle {
	if to == 0 {
		from, to = 0, f.steps
	}
	o := oracle.New(0)
	for _, name := range names {
		for s := from; s < to; s++ {
			o.Add(f.values[name][s]...)
		}
	}
	return o
}

// checkWindow verifies one window result against the oracle scoped to
// the same step range: the count must be exact and every quick answer
// within the result's own advertised rank error.
func checkWindow(t *testing.T, o *oracle.Oracle, wr query.WindowResult, phis []float64, label string) {
	t.Helper()
	if wr.N != o.Count() {
		t.Fatalf("%s: N = %d, oracle has %d", label, wr.N, o.Count())
	}
	if wr.N == 0 {
		return
	}
	for i, phi := range phis {
		r := max(int64(phi*float64(wr.N)), 1)
		if got := o.SpanError(r, wr.Values[i]); got > wr.RankError {
			t.Errorf("%s: phi=%.2f answer %d off by %d ranks, bound %d",
				label, phi, wr.Values[i], got, wr.RankError)
		}
	}
}

// TestQueryDifferentialVsOracle cross-checks every query operator against
// brute-force oracles, under both maintenance modes. Every answer's rank
// error must stay within the result's own composed ⌈1.5·ε·N⌉ bound and
// every count must be exact.
func TestQueryDifferentialVsOracle(t *testing.T) {
	phis := []float64{0.01, 0.25, 0.5, 0.9, 0.99}
	for _, mode := range []string{"sync", "async"} {
		t.Run(mode, func(t *testing.T) {
			const steps = 8
			f := newQLFixture(t, mode, steps)

			t.Run("merge-explicit", func(t *testing.T) {
				res, err := f.db.Query().Streams(f.names...).Phis(phis...).Run()
				if err != nil {
					t.Fatal(err)
				}
				checkWindow(t, f.oracleFor(f.names, 0, 0), res.Groups[0].Windows[0], phis, "all streams")
			})

			t.Run("glob", func(t *testing.T) {
				res, err := f.db.Query().Match("svc.*.lat").Phis(phis...).Run()
				if err != nil {
					t.Fatal(err)
				}
				want := []string{"svc.east.lat", "svc.west.lat"}
				if fmt.Sprint(res.Streams) != fmt.Sprint(want) {
					t.Fatalf("glob selected %v, want %v", res.Streams, want)
				}
				checkWindow(t, f.oracleFor(want, 0, 0), res.Groups[0].Windows[0], phis, "glob")
			})

			t.Run("group-by", func(t *testing.T) {
				res, err := f.db.Query().Match("svc.**").GroupBy(2).Phis(phis...).Run()
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Groups) != 2 {
					t.Fatalf("groups = %d, want 2 (east, west)", len(res.Groups))
				}
				for _, g := range res.Groups {
					var members []string
					for _, n := range f.names {
						if strings.HasPrefix(n, "svc.") && strings.Split(n, ".")[1] == g.Key {
							members = append(members, n)
						}
					}
					sort.Strings(members)
					if fmt.Sprint(g.Streams) != fmt.Sprint(members) {
						t.Fatalf("group %q members %v, want %v", g.Key, g.Streams, members)
					}
					checkWindow(t, f.oracleFor(members, 0, 0), g.Windows[0], phis, "group "+g.Key)
				}
			})

			t.Run("windows", func(t *testing.T) {
				// Three sliding 2-step windows, each slid 1 step further back:
				// (5,7], (4,6], (3,5] … relative to the 8-step history.
				res, err := f.db.Query().Streams("svc.east.lat", "svc.west.lat").
					Windows(2, 1, 3).Phis(phis...).Run()
				if err != nil {
					t.Fatal(err)
				}
				ws := res.Groups[0].Windows
				if len(ws) != 3 {
					t.Fatalf("windows = %d, want 3", len(ws))
				}
				for i, wr := range ws {
					end := steps - i // slide 1
					o := f.oracleFor(res.Streams, end-2, end)
					checkWindow(t, o, wr, phis, fmt.Sprintf("window back=%d", i))
				}
			})

			t.Run("as-of", func(t *testing.T) {
				for _, asof := range []int{1, 3, steps} {
					res, err := f.db.Query().Match("svc.east.*").AsOfStep(asof).Phis(phis...).Run()
					if err != nil {
						t.Fatal(err)
					}
					o := f.oracleFor(res.Streams, 0, asof)
					checkWindow(t, o, res.Groups[0].Windows[0], phis, fmt.Sprintf("as-of %d", asof))
				}
			})

			t.Run("as-of-windowed", func(t *testing.T) {
				// A window ending at a past step: steps (2,5] as of step 5.
				res, err := f.db.Query().Streams("svc.west.lat").
					AsOfStep(5).Window(3).Phis(phis...).Run()
				if err != nil {
					t.Fatal(err)
				}
				o := f.oracleFor(res.Streams, 2, 5)
				checkWindow(t, o, res.Groups[0].Windows[0], phis, "as-of window")
			})

			t.Run("live-buffer", func(t *testing.T) {
				// Un-sealed values are part of full-history answers.
				st, err := f.db.Stream("svc.east.lat")
				if err != nil {
					t.Fatal(err)
				}
				live := []int64{1, 2, 3, 4, 5}
				st.ObserveSlice(live)
				res, err := f.db.Query().Streams("svc.east.lat").Phis(phis...).Run()
				if err != nil {
					t.Fatal(err)
				}
				o := f.oracleFor([]string{"svc.east.lat"}, 0, 0)
				o.Add(live...)
				checkWindow(t, o, res.Groups[0].Windows[0], phis, "with live buffer")
				// …but excluded from as-of answers, which pin a sealed prefix.
				res, err = f.db.Query().Streams("svc.east.lat").AsOfStep(steps).Phis(phis...).Run()
				if err != nil {
					t.Fatal(err)
				}
				checkWindow(t, f.oracleFor([]string{"svc.east.lat"}, 0, steps),
					res.Groups[0].Windows[0], phis, "as-of excludes live")
			})
		})
	}
}

// TestQueryErrors pins the executor's refusals: out-of-range scopes,
// unknown streams, bad group segments.
func TestQueryErrors(t *testing.T) {
	f := newQLFixture(t, "sync", 3)
	for name, run := range map[string]func() (*query.Result, error){
		"empty plan":     func() (*query.Result, error) { return f.db.Query().Phis(0.5).Run() },
		"no phis":        func() (*query.Result, error) { return f.db.Query().Streams("svc.east.lat").Run() },
		"unknown stream": func() (*query.Result, error) { return f.db.Query().Streams("nope").Phis(0.5).Run() },
		"as-of past end": func() (*query.Result, error) {
			return f.db.Query().Streams("svc.east.lat").AsOfStep(99).Phis(0.5).Run()
		},
		"window past start": func() (*query.Result, error) { return f.db.Query().Streams("svc.east.lat").Window(99).Phis(0.5).Run() },
		"group segment":     func() (*query.Result, error) { return f.db.Query().Streams("svc.east.lat").GroupBy(9).Phis(0.5).Run() },
		"bad phi":           func() (*query.Result, error) { return f.db.Query().Streams("svc.east.lat").Phis(2).Run() },
	} {
		if _, err := run(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestQueryColdStreamsNoHydration pins the tentpole's directory promise:
// a glob query over a mostly-evicted fleet answers from the sealed
// summary sidecars without hydrating a single cold stream.
func TestQueryColdStreamsNoHydration(t *testing.T) {
	db, err := hsq.Open(hsq.Options{
		Epsilon: 0.1, Kappa: 100, Backend: "mem", BlockSize: 512,
		MaxHydratedStreams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck

	const streams, steps = 6, 3
	oracles := make(map[string]*oracle.Oracle)
	rng := rand.New(rand.NewSource(7))
	var all *oracle.Oracle = oracle.New(0)
	for i := 0; i < streams; i++ {
		name := fmt.Sprintf("fleet.n%d.lat", i)
		st, err := db.Stream(name)
		if err != nil {
			t.Fatal(err)
		}
		oracles[name] = oracle.New(0)
		for s := 0; s < steps; s++ {
			for k := 0; k < 300; k++ {
				v := rng.Int63n(10_000)
				st.Observe(v)
				oracles[name].Add(v)
				all.Add(v)
			}
			if _, err := st.EndStep(); err != nil {
				t.Fatal(err)
			}
		}
	}
	ds := db.DirectoryStats()
	if ds.Hydrated > 2 || ds.Evictions == 0 {
		t.Fatalf("fixture did not churn: %+v", ds)
	}
	before := ds.Hydrations

	res, err := db.Query().Match("fleet.**").GroupBy(2).Phis(0.5, 0.99).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != streams || len(res.Groups) != streams {
		t.Fatalf("selected %d streams in %d groups, want %d/%d",
			len(res.Streams), len(res.Groups), streams, streams)
	}
	for _, g := range res.Groups {
		o := oracles[g.Streams[0]]
		checkWindow(t, o, g.Windows[0], []float64{0.5, 0.99}, "group "+g.Key)
	}
	if after := db.DirectoryStats().Hydrations; after != before {
		t.Fatalf("glob query hydrated cold streams: %d → %d hydrations", before, after)
	}

	// Scoped queries over cold streams stay cold too: sidecars carry the
	// per-partition layout.
	res, err = db.Query().Match("fleet.**").Window(1).Phis(0.5).Run()
	if err != nil {
		t.Fatal(err)
	}
	if after := db.DirectoryStats().Hydrations; after != before {
		t.Fatalf("windowed glob query hydrated cold streams: %d → %d", before, after)
	}
	// A merged full query across all streams answers from the same mix.
	full, err := db.Query().Match("fleet.**").Phis(0.5).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkWindow(t, all, full.Groups[0].Windows[0], []float64{0.5}, "merged fleet")
}

// TestQueryAlignmentError pins the step-boundary refusal: once partition
// merges coarsen history, a window that no longer aligns reports the
// available boundaries instead of silently answering something else.
func TestQueryAlignmentError(t *testing.T) {
	db, err := hsq.Open(hsq.Options{Epsilon: 0.1, Kappa: 2, Backend: "mem", BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	st, err := db.Stream("s.a")
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		for v := int64(0); v < 300; v++ {
			st.Observe(v)
		}
		if _, err := st.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	// Kappa 2 merged aggressively: some as-of points inside merged
	// partitions must refuse with the alignment error.
	var refused bool
	for asof := 1; asof < 8; asof++ {
		_, err := db.Query().Streams("s.a").AsOfStep(asof).Phis(0.5).Run()
		if err != nil {
			if !strings.Contains(err.Error(), "align") {
				t.Fatalf("as-of %d: unexpected error: %v", asof, err)
			}
			refused = true
		}
	}
	if !refused {
		t.Fatal("no as-of point was coarsened away; fixture expects merges under kappa 2")
	}
}
