package hsq

import (
	"testing"
)

func TestPlanValidation(t *testing.T) {
	if _, err := Plan(0, 1000, 10, 10); err == nil {
		t.Error("budget=0: want error")
	}
	if _, err := Plan(1000, 0, 10, 10); err == nil {
		t.Error("stream=0: want error")
	}
	if _, err := Plan(1000, 1000, 0, 10); err == nil {
		t.Error("steps=0: want error")
	}
	if _, err := Plan(1000, 1000, 10, 1); err == nil {
		t.Error("kappa=1: want error")
	}
	// Impossibly small budget.
	if _, err := Plan(10, 1_000_000, 100, 10); err == nil {
		t.Error("tiny budget: want error")
	}
}

func TestPlanFitsBudget(t *testing.T) {
	for _, budget := range []int64{64 << 10, 256 << 10, 1 << 20, 16 << 20} {
		eps, err := Plan(budget, 1_000_000, 100, 10)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if eps <= 0 || eps >= 0.5 {
			t.Fatalf("budget %d: eps = %g", budget, eps)
		}
		half := float64(budget) / 2
		if hs := PlannedHistBytes(eps, 100, 10); hs > half*1.01 {
			t.Errorf("budget %d: planned HS %g > half %g", budget, hs, half)
		}
		if ss := PlannedStreamBytes(eps, 1_000_000); ss > half*1.01 {
			t.Errorf("budget %d: planned SS %g > half %g", budget, ss, half)
		}
	}
}

func TestPlanMonotone(t *testing.T) {
	// More memory must never hurt accuracy.
	prev := 1.0
	for _, budget := range []int64{32 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20} {
		eps, err := Plan(budget, 1_000_000, 100, 10)
		if err != nil {
			t.Fatal(err)
		}
		if eps > prev {
			t.Errorf("eps increased with budget: %g after %g", eps, prev)
		}
		prev = eps
	}
}

// TestPlanMatchesReality runs an engine at a planned ε and verifies the live
// summary memory stays within the budget (with modest slack for the GK
// sketch's transient growth between compressions).
func TestPlanMatchesReality(t *testing.T) {
	const (
		budget = int64(512 << 10)
		m      = 20000
		steps  = 20
		kappa  = 10
	)
	eps, err := Plan(budget, m, steps, kappa)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Epsilon: eps, Kappa: kappa, Dir: t.TempDir(), BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < steps; step++ {
		for i := 0; i < m; i++ {
			eng.Observe(int64((step*m + i) % 100000))
		}
		mu := eng.MemoryUsage()
		if mu.Total() > 2*budget {
			t.Fatalf("step %d: live memory %d exceeds 2×budget %d (eps=%g)", step, mu.Total(), budget, eps)
		}
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
}
