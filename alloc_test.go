package hsq_test

import (
	"testing"

	"repro"
	"repro/internal/workload"
)

// TestObserveSliceZeroAlloc gates the ingest hot path: once the engine's
// batch buffer and the GK sketch's tuple/pending/scratch buffers have grown
// to their working-set size, ObserveSlice must not allocate. Synchronous
// maintenance is required — endStepSync retains the batch buffer's capacity
// across steps, while deferred modes hand the buffer to the sealed step and
// start a fresh one.
func TestObserveSliceZeroAlloc(t *testing.T) {
	eng, err := hsq.New(hsq.Config{
		Epsilon: 0.01, Kappa: 10, Backend: "mem", Maintenance: "sync",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() //nolint:errcheck

	gen := workload.NewUniform(99)
	// Warm up: one large step grows every buffer past anything the
	// measurement loop will need, then EndStep resets lengths while keeping
	// capacities.
	eng.ObserveSlice(workload.Fill(gen, 100_000))
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}

	chunk := workload.Fill(gen, 100)
	allocs := testing.AllocsPerRun(50, func() {
		eng.ObserveSlice(chunk)
	})
	if allocs != 0 {
		t.Fatalf("ObserveSlice allocated %.1f times per call after warmup, want 0", allocs)
	}
}
