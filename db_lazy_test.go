package hsq_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/disk"
	"repro/internal/oracle"
)

// gateBackend wraps a Backend and blocks every Open/ReadMeta touching the
// gated prefix until the gate channel closes, signalling entered once. It
// simulates a stream whose hydration (manifest read + summary-rebuild
// scan) is arbitrarily slow — the regression scenario for the historical
// bug where DB.Stream held db.mu across the whole cold open.
type gateBackend struct {
	disk.Backend
	prefix  string
	gate    chan struct{}
	entered sync.Once
	signal  chan struct{}
}

func (g *gateBackend) wait(name string) {
	if strings.HasPrefix(name, g.prefix) {
		g.entered.Do(func() { close(g.signal) })
		<-g.gate
	}
}

func (g *gateBackend) Open(name string) (disk.ReadHandle, error) {
	g.wait(name)
	return g.Backend.Open(name)
}

func (g *gateBackend) ReadMeta(name string) ([]byte, error) {
	g.wait(name)
	return g.Backend.ReadMeta(name)
}

// seedTwoStreams builds a device holding two streams with committed
// history and returns the backend for a reopen.
func seedTwoStreams(t *testing.T) disk.Backend {
	t.Helper()
	inner := disk.NewMemBackend()
	db, err := hsq.Open(hsq.Options{Epsilon: 0.05, Kappa: 2, Device: inner, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hot", "cold"} {
		st, err := db.Stream(name)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 2; s++ {
			for i := int64(0); i < 600; i++ {
				st.Observe(i)
			}
			if _, err := st.EndStep(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return inner
}

// TestColdOpenDoesNotBlockHotStream is the regression test for the
// DB-wide cold-open stall: with one stream's hydration blocked on disk
// indefinitely, operations on an already-hydrated stream must still
// complete, because hydration runs outside db.mu under a per-name
// singleflight lock.
func TestColdOpenDoesNotBlockHotStream(t *testing.T) {
	inner := seedTwoStreams(t)
	gb := &gateBackend{
		Backend: inner,
		prefix:  "streams/cold/",
		gate:    make(chan struct{}),
		signal:  make(chan struct{}),
	}
	db, err := hsq.Open(hsq.Options{Epsilon: 0.05, Kappa: 2, Device: gb, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck

	hot, err := db.Stream("hot") // hydrates the hot stream
	if err != nil {
		t.Fatal(err)
	}

	coldDone := make(chan error, 1)
	go func() {
		_, err := db.Stream("cold")
		coldDone <- err
	}()
	<-gb.signal // the cold hydration is now parked on its first read

	hotDone := make(chan error, 1)
	go func() {
		if err := hot.ObserveCtx(context.Background(), 41); err != nil {
			hotDone <- fmt.Errorf("hot observe: %w", err)
			return
		}
		if _, _, err := hot.Quantile(0.5); err != nil {
			hotDone <- fmt.Errorf("hot quantile: %w", err)
			return
		}
		if _, ok := db.Lookup("hot"); !ok {
			hotDone <- errors.New("hot stream vanished from Lookup")
			return
		}
		hotDone <- nil
	}()
	select {
	case err := <-hotDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hot-stream operations blocked behind a cold stream open")
	}

	close(gb.gate)
	if err := <-coldDone; err != nil {
		t.Fatalf("cold open after release: %v", err)
	}
}

// TestLookupAfterClose is the regression test for Lookup ignoring
// db.closed: a closed DB must report every stream — including ones it
// hosted — as not found, rather than handing out handles whose every
// operation fails.
func TestLookupAfterClose(t *testing.T) {
	db, err := hsq.Open(hsq.Options{Epsilon: 0.05, Kappa: 2, Backend: "mem", BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Stream("s"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Lookup("s"); !ok {
		t.Fatal("Lookup before Close: stream missing")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Lookup("s"); ok {
		t.Error("Lookup after Close returned a live stream")
	}
	if _, ok := db.Lookup("never-existed"); ok {
		t.Error("Lookup after Close invented a stream")
	}
}

// failMetaBackend fails WriteMeta for names matching the armed substring.
type failMetaBackend struct {
	disk.Backend
	mu    sync.Mutex
	match string
}

func (f *failMetaBackend) arm(match string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.match = match
}

func (f *failMetaBackend) WriteMeta(name string, data []byte) error {
	f.mu.Lock()
	match := f.match
	f.mu.Unlock()
	if match != "" && strings.Contains(name, match) {
		return fmt.Errorf("injected meta-write failure for %s", name)
	}
	return f.Backend.WriteMeta(name, data)
}

// TestClosePartialFailure is the regression test for Close aborting on the
// first stream error: with one stream's manifest commit failing, Close
// must still seal every other stream, mark the DB closed exactly once,
// and join the failure into the returned error. A second Close is a
// no-op.
func TestClosePartialFailure(t *testing.T) {
	fb := &failMetaBackend{Backend: disk.NewMemBackend()}
	db, err := hsq.Open(hsq.Options{Epsilon: 0.05, Kappa: 2, Device: fb, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		st, err := db.Stream(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for v := int64(0); v < 200; v++ {
			st.Observe(v)
		}
		if _, err := st.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	fb.arm("streams/s1/MANIFEST.json")
	err = db.Close()
	if err == nil {
		t.Fatal("Close succeeded despite an injected manifest failure")
	}
	if !strings.Contains(err.Error(), `"s1"`) {
		t.Errorf("Close error does not name the failing stream: %v", err)
	}
	// The DB is closed despite the partial failure: no handles, no new
	// streams, and a repeat Close is a clean no-op.
	if _, ok := db.Lookup("s0"); ok {
		t.Error("Lookup after failed Close returned a live stream")
	}
	if _, err := db.Stream("s2"); !errors.Is(err, hsq.ErrClosed) {
		t.Errorf("Stream after failed Close: %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("second Close: %v, want nil (idempotent)", err)
	}
}

// TestEvictionRoundTrip drives more streams than the hydration budget
// admits and checks the full seal/evict/rehydrate cycle: queries against
// evicted streams transparently rehydrate and still answer within ε,
// the hydrated count converges to the budget, and per-stream I/O
// counters survive eviction (they keep summing to the device aggregate).
func TestEvictionRoundTrip(t *testing.T) {
	const streams = 6
	db, err := hsq.Open(hsq.Options{
		Epsilon: 0.02, Kappa: 3, Backend: "mem", BlockSize: 1024,
		MaxHydratedStreams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck

	oracles := make([]*oracle.Oracle, streams)
	for i := 0; i < streams; i++ {
		st, err := db.Stream(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		or := oracle.New(2000)
		rng := rand.New(rand.NewSource(int64(i + 1)))
		for s := 0; s < 2; s++ {
			for k := 0; k < 800; k++ {
				v := rng.Int63n(1 << 20)
				st.Observe(v)
				or.Add(v)
			}
			if _, err := st.EndStep(); err != nil {
				t.Fatal(err)
			}
		}
		oracles[i] = or
	}

	ds := db.DirectoryStats()
	if ds.Registered != streams {
		t.Fatalf("Registered = %d, want %d", ds.Registered, streams)
	}
	if ds.Hydrated > 2 {
		t.Errorf("Hydrated = %d exceeds budget 2 with all streams idle", ds.Hydrated)
	}
	if ds.Evictions == 0 {
		t.Error("no evictions despite exceeding the hydration budget")
	}

	// Every stream — mostly evicted by now — must still answer correctly.
	for round := 0; round < 2; round++ {
		for i := 0; i < streams; i++ {
			st, ok := db.Lookup(fmt.Sprintf("s%d", i))
			if !ok {
				t.Fatalf("stream s%d missing", i)
			}
			or := oracles[i]
			n := or.Count()
			bound := int64(0.02*float64(n)) + 1
			for _, phi := range []float64{0.1, 0.5, 0.99} {
				v, _, err := st.Quantile(phi)
				if err != nil {
					t.Fatalf("s%d quantile(%g): %v", i, phi, err)
				}
				target := int64(phi * float64(n))
				if target < 1 {
					target = 1
				}
				if spanErr := or.SpanError(target, v); spanErr > bound {
					t.Errorf("s%d quantile(%g) = %d after rehydration: rank error %d > %d", i, phi, v, spanErr, bound)
				}
			}
		}
	}

	ds = db.DirectoryStats()
	if ds.Hydrations <= uint64(streams) {
		t.Errorf("Hydrations = %d, want > %d (streams must have cycled)", ds.Hydrations, streams)
	}

	// Per-stream I/O counters are per-view and cached across eviction:
	// their sum must equal the device aggregate exactly.
	var sum hsq.IOStats
	for _, io := range db.StreamStats() {
		sum.SeqReads += io.SeqReads
		sum.SeqWrites += io.SeqWrites
		sum.RandReads += io.RandReads
		sum.CacheHits += io.CacheHits
	}
	if agg := db.DiskStats(); sum != agg {
		t.Errorf("per-stream IO %+v does not sum to device aggregate %+v", sum, agg)
	}
}

// removeGateBackend, once armed, blocks every Remove touching the gated
// prefix until the gate channel closes, signalling entered once — it
// parks a stream destroy mid-deletion, the window in which a concurrent
// re-create used to hydrate over the half-deleted namespace. It starts
// disarmed because ordinary commits also Remove retired partition files.
type removeGateBackend struct {
	disk.Backend
	prefix  string
	armed   atomic.Bool
	gate    chan struct{}
	entered sync.Once
	signal  chan struct{}
}

func (g *removeGateBackend) Remove(name string) error {
	if g.armed.Load() && strings.HasPrefix(name, g.prefix) {
		g.entered.Do(func() { close(g.signal) })
		<-g.gate
	}
	return g.Backend.Remove(name)
}

// TestDropStreamRecreateWaitsForDestroy is the regression test for the
// drop/re-create race: with DropStream parked mid-destroy (files being
// deleted), the name must be fully claimed — Lookup misses, Streams and
// DirectoryStats exclude it, RegisterStreams rejects it, and a Stream
// re-create parks until the destroy finishes rather than hydrating a new
// engine over the half-deleted namespace — while operations on other
// streams proceed. The re-created stream must start empty, never resuming
// the dropped stream's not-yet-deleted state.
func TestDropStreamRecreateWaitsForDestroy(t *testing.T) {
	gb := &removeGateBackend{
		Backend: disk.NewMemBackend(),
		prefix:  "streams/x/",
		gate:    make(chan struct{}),
		signal:  make(chan struct{}),
	}
	db, err := hsq.Open(hsq.Options{Epsilon: 0.05, Kappa: 2, Device: gb, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	x, err := db.Stream("x")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		x.Observe(i)
	}
	if _, err := x.EndStep(); err != nil {
		t.Fatal(err)
	}
	y, err := db.Stream("y")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		y.Observe(i)
	}
	if _, err := y.EndStep(); err != nil {
		t.Fatal(err)
	}

	gb.armed.Store(true)
	dropDone := make(chan error, 1)
	go func() { dropDone <- db.DropStream("x") }()
	<-gb.signal // the destroy is now parked mid-Remove

	// The committed drop is visible everywhere even though files remain.
	if _, ok := db.Lookup("x"); ok {
		t.Error("Lookup found a stream whose drop is committed")
	}
	for _, n := range db.Streams() {
		if n == "x" {
			t.Error("Streams lists a stream whose drop is committed")
		}
	}
	if err := db.RegisterStreams("x"); err == nil {
		t.Error("RegisterStreams re-registered a name mid-destroy")
	}
	if ds := db.DirectoryStats(); ds.Registered != 1 {
		t.Errorf("Registered = %d during the destroy, want 1 (just y)", ds.Registered)
	}

	// Other streams are untouched by the parked destroy.
	if err := y.ObserveCtx(context.Background(), 7); err != nil {
		t.Fatalf("observe on another stream during a destroy: %v", err)
	}
	if _, _, err := y.Quantile(0.5); err != nil {
		t.Fatalf("quantile on another stream during a destroy: %v", err)
	}

	// A re-create parks until the destroy completes.
	recreated := make(chan *hsq.Stream, 1)
	recErr := make(chan error, 1)
	go func() {
		st, err := db.Stream("x")
		if err != nil {
			recErr <- err
			return
		}
		recreated <- st
	}()
	select {
	case <-recreated:
		t.Fatal("Stream re-created x while its destroy was still deleting files")
	case err := <-recErr:
		t.Fatalf("re-create during destroy: %v, want it to wait", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(gb.gate)
	if err := <-dropDone; err != nil {
		t.Fatalf("drop after release: %v", err)
	}
	var st *hsq.Stream
	select {
	case st = <-recreated:
	case err := <-recErr:
		t.Fatalf("re-create after destroy: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("re-create still parked after the destroy completed")
	}
	if n := st.TotalCount(); n != 0 {
		t.Fatalf("re-created stream resurrected %d elements from the dropped stream", n)
	}
}

// TestCloseDetachesEngines is the regression test for Close leaving
// engine pointers and the hydrated count behind: after Close, the
// directory must report zero hydrated streams and DB-wide barriers must
// find no engines to pin, while the registered set stays intact.
func TestCloseDetachesEngines(t *testing.T) {
	db, err := hsq.Open(hsq.Options{Epsilon: 0.05, Kappa: 2, Backend: "mem", BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		st, err := db.Stream(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for v := int64(0); v < 200; v++ {
			st.Observe(v)
		}
		if _, err := st.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	if ds := db.DirectoryStats(); ds.Hydrated != 3 {
		t.Fatalf("Hydrated = %d before Close, want 3", ds.Hydrated)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ds := db.DirectoryStats()
	if ds.Hydrated != 0 {
		t.Errorf("Hydrated = %d after Close, want 0", ds.Hydrated)
	}
	if ds.Registered != 3 {
		t.Errorf("Registered = %d after Close, want 3 (directory survives Close)", ds.Registered)
	}
	ss := db.SchedulerStats()
	if ss.HydratedStreams != 0 {
		t.Errorf("SchedulerStats.HydratedStreams = %d after Close, want 0", ss.HydratedStreams)
	}
	if ss.PendingSteps != 0 || ss.MergeDebt != 0 {
		t.Errorf("SchedulerStats backlog %d steps / %d elements after Close, want none (no engines to pin)", ss.PendingSteps, ss.MergeDebt)
	}
}

// churnModel is the single-owner shadow state for one stream in the churn
// test: sealed holds every element covered by a successful EndStep, live
// the elements observed since.
type churnModel struct {
	sealed []int64
	live   []int64
}

// TestDirectoryChurn runs seeded concurrent Stream/Observe/EndStep/
// DropStream traffic (with a tiny hydration budget, so eviction interleaves
// everywhere) against per-stream shadow models, then asserts the on-disk
// directory equals the registered set, every surviving stream matches its
// model exactly, and a reopen over the same device recovers the same
// directory. Writers shard streams by ownership so each model is exact;
// extra readers race Lookup/Quantile against drops and evictions. Replay a
// failure with HSQ_PROP_SEED.
func TestDirectoryChurn(t *testing.T) {
	seed := int64(7)
	if s := os.Getenv("HSQ_PROP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad HSQ_PROP_SEED %q: %v", s, err)
		}
		seed = v
	}
	const (
		workers = 4
		streams = 8
		ops     = 150
	)
	inner := disk.NewMemBackend()
	db, err := hsq.Open(hsq.Options{
		Epsilon: 0.05, Kappa: 2, Device: inner, BlockSize: 512,
		MaxHydratedStreams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	models := make([]*churnModel, streams)
	for i := range models {
		models[i] = &churnModel{}
	}
	var writerWG, readerWG sync.WaitGroup
	errCh := make(chan error, workers+2)
	for w := 0; w < workers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			owned := make([]int, 0, streams/workers)
			for s := w; s < streams; s += workers {
				owned = append(owned, s)
			}
			for op := 0; op < ops; op++ {
				s := owned[rng.Intn(len(owned))]
				name := fmt.Sprintf("s%d", s)
				m := models[s]
				st, err := db.Stream(name)
				if err != nil {
					errCh <- fmt.Errorf("worker %d: stream %s: %w", w, name, err)
					return
				}
				switch k := rng.Intn(10); {
				case k <= 4: // observe a batch
					vals := make([]int64, 1+rng.Intn(48))
					for i := range vals {
						vals[i] = rng.Int63n(1 << 16)
					}
					if err := st.ObserveSliceCtx(context.Background(), vals); err != nil {
						errCh <- fmt.Errorf("worker %d: observe %s: %w", w, name, err)
						return
					}
					m.live = append(m.live, vals...)
				case k <= 6: // seal the batch
					if len(m.live) == 0 {
						continue
					}
					if _, err := st.EndStep(); err != nil {
						errCh <- fmt.Errorf("worker %d: endstep %s: %w", w, name, err)
						return
					}
					m.sealed = append(m.sealed, m.live...)
					m.live = nil
				case k == 7: // drop and restart the stream's history
					if err := db.DropStream(name); err != nil {
						errCh <- fmt.Errorf("worker %d: drop %s: %w", w, name, err)
						return
					}
					m.sealed, m.live = nil, nil
				default: // read back through a fresh handle
					if got, want := st.TotalCount(), int64(len(m.sealed)+len(m.live)); got != want {
						errCh <- fmt.Errorf("worker %d: %s TotalCount = %d, want %d", w, name, got, want)
						return
					}
				}
			}
		}(w)
	}
	// Readers race Lookup/Quantile against drops, evictions and
	// hydrations; the only acceptable failure is ErrClosed from a handle
	// that lost a race with DropStream.
	stopReaders := make(chan struct{})
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed + 1000 + int64(r)))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				name := fmt.Sprintf("s%d", rng.Intn(streams))
				st, ok := db.Lookup(name)
				if !ok {
					continue
				}
				_, _, err := st.Quantile(0.5)
				if err != nil && !errors.Is(err, hsq.ErrClosed) &&
					!strings.Contains(err.Error(), "empty dataset") {
					errCh <- fmt.Errorf("reader %d: quantile %s: %w", r, name, err)
					return
				}
			}
		}(r)
	}

	writerWG.Wait()
	close(stopReaders)
	readerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("seed=%d: %v (replay with HSQ_PROP_SEED)", seed, err)
	}

	checkDirMatchesManifest(t, db, inner, seed)

	// Surviving streams must match their models exactly, through however
	// many evict/rehydrate cycles they went.
	registered := make(map[string]bool)
	for _, name := range db.Streams() {
		registered[name] = true
	}
	for s, m := range models {
		name := fmt.Sprintf("s%d", s)
		if !registered[name] {
			if len(m.sealed)+len(m.live) != 0 {
				t.Fatalf("seed=%d: stream %s has model state but is not registered", seed, name)
			}
			continue
		}
		st, ok := db.Lookup(name)
		if !ok {
			t.Fatalf("seed=%d: registered stream %s missing from Lookup", seed, name)
		}
		if got, want := st.HistCount(), int64(len(m.sealed)); got != want {
			t.Errorf("seed=%d: %s HistCount = %d, want %d", seed, name, got, want)
		}
		if got, want := st.TotalCount(), int64(len(m.sealed)+len(m.live)); got != want {
			t.Errorf("seed=%d: %s TotalCount = %d, want %d", seed, name, got, want)
		}
		checkChurnQuantiles(t, st, append(append([]int64(nil), m.sealed...), m.live...), name, seed)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("seed=%d: close: %v", seed, err)
	}

	// A reopen over the same device recovers the same directory, and each
	// stream's sealed history (live batches are volatile across Close —
	// Engine.Close drops them by contract).
	re, err := hsq.Open(hsq.Options{
		Epsilon: 0.05, Kappa: 2, Device: inner, BlockSize: 512,
		MaxHydratedStreams: 2,
	})
	if err != nil {
		t.Fatalf("seed=%d: reopen: %v", seed, err)
	}
	defer re.Close() //nolint:errcheck
	gotNames := re.Streams()
	wantNames := make([]string, 0, len(registered))
	for name := range registered {
		wantNames = append(wantNames, name)
	}
	sort.Strings(wantNames)
	if !equalStrings(gotNames, wantNames) {
		t.Fatalf("seed=%d: reopened directory %v, want %v", seed, gotNames, wantNames)
	}
	for s, m := range models {
		name := fmt.Sprintf("s%d", s)
		if !registered[name] {
			continue
		}
		st, ok := re.Lookup(name)
		if !ok {
			t.Fatalf("seed=%d: reopened stream %s missing", seed, name)
		}
		if got, want := st.HistCount(), int64(len(m.sealed)); got != want {
			t.Errorf("seed=%d: reopened %s HistCount = %d, want %d", seed, name, got, want)
		}
	}
}

// checkDirMatchesManifest asserts the durable DB manifest equals the
// registered set reported by the live DB.
func checkDirMatchesManifest(t *testing.T, db *hsq.DB, backend disk.Backend, seed int64) {
	t.Helper()
	data, err := backend.ReadMeta("DB.json")
	if err != nil {
		t.Fatalf("seed=%d: read DB manifest: %v", seed, err)
	}
	var m struct {
		Streams []string `json:"streams"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("seed=%d: parse DB manifest: %v", seed, err)
	}
	sort.Strings(m.Streams)
	if got := db.Streams(); !equalStrings(m.Streams, got) {
		t.Fatalf("seed=%d: on-disk directory %v != registered set %v", seed, m.Streams, got)
	}
}

func checkChurnQuantiles(t *testing.T, st *hsq.Stream, all []int64, name string, seed int64) {
	t.Helper()
	if len(all) == 0 {
		return
	}
	or := oracle.New(len(all))
	or.Add(all...)
	n := int64(len(all))
	// ε·N from history plus ε₂ over the live batch; use 2ε·N as a robust
	// combined bound.
	bound := int64(2*0.05*float64(n)) + 1
	for _, phi := range []float64{0.25, 0.5, 0.9} {
		v, _, err := st.Quantile(phi)
		if err != nil {
			t.Fatalf("seed=%d: %s quantile(%g): %v", seed, name, phi, err)
		}
		target := int64(phi * float64(n))
		if target < 1 {
			target = 1
		}
		if spanErr := or.SpanError(target, v); spanErr > bound {
			t.Errorf("seed=%d: %s quantile(%g) = %d: rank error %d > %d (N=%d)", seed, name, phi, v, spanErr, bound, n)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
