// Multi-stream cache-sharing evaluation: N streams on one DB draw on a
// single shared LRU budget, so cache capacity flows to whichever stream is
// hot; N independent engines must statically split the same budget N ways
// and strand capacity on cold streams. The test asserts the effect, the
// benchmark measures it.
package hsq_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/workload"
)

const (
	msStreams    = 4
	msSteps      = 3
	msBatch      = 4096
	msCacheTotal = 96 // blocks; each stream holds ~96 blocks of data
	msRounds     = 30
)

// msPhis is the dashboard query mix run against the hot stream each round.
var msPhis = []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}

func msConfig(cacheBlocks int) hsq.Options {
	return hsq.Options{
		Epsilon:     0.02,
		Kappa:       4,
		Backend:     "mem",
		BlockSize:   1024, // 128 elements per block
		CacheBlocks: cacheBlocks,
		NoSpill:     true,
		// Memoization off: the cache comparison needs repeated queries to
		// reach the block layer.
		ProbeMemoEntries: -1,
	}
}

// msQuery runs one round of the skewed dashboard workload: the hot stream
// (index 0) answers the full phi mix; cold streams answer one phi each.
func msQuery(tb testing.TB, round int, quantile func(i int, phi float64)) {
	for _, phi := range msPhis {
		quantile(0, phi)
	}
	for i := 1; i < msStreams; i++ {
		quantile(i, msPhis[round%len(msPhis)])
	}
}

// runShared drives the workload against one DB hosting all streams over a
// single cache budget and returns total backend RandReads.
func runShared(tb testing.TB) (total uint64, perStream map[string]hsq.IOStats, agg hsq.IOStats) {
	db, err := hsq.Open(msConfig(msCacheTotal))
	if err != nil {
		tb.Fatal(err)
	}
	streams := make([]*hsq.Stream, msStreams)
	for i := range streams {
		st, err := db.Stream(fmt.Sprintf("s%d", i))
		if err != nil {
			tb.Fatal(err)
		}
		streams[i] = st
		loadStream(tb, st, int64(i+1), msSteps, msBatch)
	}
	for round := 0; round < msRounds; round++ {
		msQuery(tb, round, func(i int, phi float64) {
			if _, _, err := streams[i].Quantile(phi); err != nil {
				tb.Fatal(err)
			}
		})
	}
	agg = db.DiskStats()
	return agg.RandReads, db.StreamStats(), agg
}

// runSplit drives the identical workload against N independent engines,
// each with 1/N of the cache budget, and returns total backend RandReads.
func runSplit(tb testing.TB) uint64 {
	engines := make([]*hsq.Engine, msStreams)
	for i := range engines {
		eng, err := hsq.New(msConfig(msCacheTotal / msStreams))
		if err != nil {
			tb.Fatal(err)
		}
		engines[i] = eng
		gen := workload.NewNormal(int64(i + 1))
		for s := 0; s < msSteps; s++ {
			eng.ObserveSlice(workload.Fill(gen, msBatch))
			if _, err := eng.EndStep(); err != nil {
				tb.Fatal(err)
			}
		}
	}
	for round := 0; round < msRounds; round++ {
		msQuery(tb, round, func(i int, phi float64) {
			if _, _, err := engines[i].Quantile(phi); err != nil {
				tb.Fatal(err)
			}
		})
	}
	var total uint64
	for _, eng := range engines {
		total += eng.DiskStats().RandReads
	}
	return total
}

// TestMultiStreamSharedCache is the tentpole's acceptance check: N streams
// on one shared DB spend fewer total backend RandReads than N independent
// engines with the cache split N ways, and per-stream IOStats sum exactly
// to the device aggregate.
func TestMultiStreamSharedCache(t *testing.T) {
	shared, perStream, agg := runShared(t)
	split := runSplit(t)
	t.Logf("total RandReads: shared DB = %d, split engines = %d", shared, split)
	if shared >= split {
		t.Errorf("shared cache (%d reads) should beat split caches (%d reads)", shared, split)
	}
	var sum hsq.IOStats
	for _, io := range perStream {
		sum.SeqReads += io.SeqReads
		sum.SeqWrites += io.SeqWrites
		sum.RandReads += io.RandReads
		sum.CacheHits += io.CacheHits
		sum.CacheMisses += io.CacheMisses
	}
	if sum != agg {
		t.Errorf("per-stream IOStats sum %+v != device aggregate %+v", sum, agg)
	}
}

// BenchmarkMultiStream compares the two arrangements under the same skewed
// dashboard workload; the randreads/op metric is the paper's disk-access
// cost. Example:
//
//	go test -bench BenchmarkMultiStream -benchtime 3x
func BenchmarkMultiStream(b *testing.B) {
	b.Run("shared-db", func(b *testing.B) {
		var reads uint64
		for i := 0; i < b.N; i++ {
			r, _, _ := runShared(b)
			reads += r
		}
		b.ReportMetric(float64(reads)/float64(b.N), "randreads/op")
	})
	b.Run("split-engines", func(b *testing.B) {
		var reads uint64
		for i := 0; i < b.N; i++ {
			reads += runSplit(b)
		}
		b.ReportMetric(float64(reads)/float64(b.N), "randreads/op")
	})
}
