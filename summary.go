package hsq

import "repro/internal/core"

// Summary captures the engine's current in-memory summary state — every
// pinned partition summary plus the stream-side pieces — as a portable
// core.ShardSummary. It is the scatter half of the cluster's scatter-gather
// query path: a coordinator fetches one ShardSummary per shard, merges them
// with core.MergeShardSummaries, and answers quick quantile/rank queries
// over the union within the composed ε bands.
//
// The snapshot is taken under the same pin discipline as queries, so a
// Summary is a consistent point-in-time view even while ingest and
// maintenance run. The returned summary references the engine's immutable
// summary slices; it stays valid after the call (the slices are never
// mutated, only replaced).
func (e *Engine) Summary() (*core.ShardSummary, error) {
	s, err := e.snapshot()
	if err != nil {
		return nil, err
	}
	defer s.release()
	sum := &core.ShardSummary{
		N:      s.n,
		Eps1:   e.eps1,
		Eps2:   e.eps2,
		Pieces: s.pieces,
	}
	if len(s.sums) > 0 {
		sum.Parts = make([]core.PartSummary, 0, len(s.sums))
		for _, ps := range s.sums {
			sum.Parts = append(sum.Parts, core.PartSummary{Count: ps.Part.Count, Values: ps.Values})
		}
	}
	return sum, nil
}
