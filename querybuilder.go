package hsq

import (
	"repro/internal/core"
	"repro/internal/query"
)

// Query starts a composable query over the DB's streams. The builder only
// assembles a plan — nothing is touched until Run, which expands the
// stream selection against the directory snapshot, pulls one scoped
// summary per (member, window) and answers every group by quick queries
// over the merged summaries. Cold streams answer from their sealed
// summary sidecars, so a glob over a mostly-evicted fleet does not
// hydrate it.
//
//	res, err := db.Query().Match("api.*.latency").GroupBy(2).Phis(0.99).Run()
func (db *DB) Query() *Query {
	return &Query{db: db}
}

// Query is the builder; methods return the receiver for chaining.
type Query struct {
	db   *DB
	plan query.Plan
}

// Streams adds explicit member streams (must exist at Run time).
func (q *Query) Streams(names ...string) *Query {
	q.plan.Streams = append(q.plan.Streams, names...)
	return q
}

// Match selects every directory stream matching the '.'-segment glob
// (e.g. "api.*.latency", "sensors.**"). See query.MatchStream.
func (q *Query) Match(pattern string) *Query {
	q.plan.Match = pattern
	return q
}

// GroupBy groups members by the 1-based '.'-separated name segment.
func (q *Query) GroupBy(segment int) *Query {
	q.plan.GroupBy = segment
	return q
}

// Window evaluates a single window of the most recent `steps` time steps
// instead of the full history.
func (q *Query) Window(steps int) *Query {
	return q.Windows(steps, 0, 1)
}

// Windows evaluates a series of `count` windows of `steps` time steps,
// each slid `slide` steps further into the past (slide 0 = tumbling,
// i.e. slide = steps). Windows are relative to each member stream's own
// newest step.
func (q *Query) Windows(steps, slide, count int) *Query {
	q.plan.Window = &query.WindowSpec{Steps: steps, Slide: slide, Count: count}
	return q
}

// AsOfStep time-travels the evaluation to the state as of sealed step n,
// riding the snapshot chain's immutable step prefix; the live buffer is
// excluded. Background partition merges coarsen the step boundaries
// available to old as-of points over time.
func (q *Query) AsOfStep(n int) *Query {
	q.plan.AsOfStep = n
	return q
}

// Phis sets the quantile targets, each in (0, 1).
func (q *Query) Phis(phis ...float64) *Query {
	q.plan.Phis = append(q.plan.Phis, phis...)
	return q
}

// Plan returns a copy of the assembled plan (e.g. to serialize for a
// Subscribe continuous query).
func (q *Query) Plan() query.Plan { return q.plan }

// Run evaluates the query against the DB.
func (q *Query) Run() (*query.Result, error) {
	return query.Exec(dbSource{q.db}, &q.plan)
}

// RunPlan evaluates an already-built plan against the DB — the entry
// point for POST /query and Subscribe continuous queries, whose plans
// arrive as JSON.
func (db *DB) RunPlan(p *query.Plan) (*query.Result, error) {
	return query.Exec(dbSource{db}, p)
}

// ScopedSummary returns one stream's shard summary restricted to a query
// scope, without hydrating a cold stream when its sealed sidecar answers.
// It backs the query executor's per-member fetch; hsqd's cluster mode
// calls it directly for the streams this node stores.
func (db *DB) ScopedSummary(name string, sc query.Scope) (*core.ShardSummary, error) {
	return db.scopedSummary(name, sc)
}

// dbSource adapts a DB to the query executor's Source.
type dbSource struct{ db *DB }

func (s dbSource) StreamNames() []string { return s.db.Streams() }

func (s dbSource) ScopedSummary(name string, sc query.Scope) (*core.ShardSummary, error) {
	return s.db.scopedSummary(name, sc)
}
