package hsq

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/disk"
)

// hydrateGateBackend blocks every Open/ReadMeta touching the gated prefix
// until the gate channel closes, signalling entered once — it parks a
// stream hydration mid-load, outside db.mu, so a test can interleave
// directory mutations with it deterministically.
type hydrateGateBackend struct {
	disk.Backend
	prefix  string
	gate    chan struct{}
	entered sync.Once
	signal  chan struct{}
}

func (g *hydrateGateBackend) wait(name string) {
	if strings.HasPrefix(name, g.prefix) {
		g.entered.Do(func() { close(g.signal) })
		<-g.gate
	}
}

func (g *hydrateGateBackend) Open(name string) (disk.ReadHandle, error) {
	g.wait(name)
	return g.Backend.Open(name)
}

func (g *hydrateGateBackend) ReadMeta(name string) ([]byte, error) {
	g.wait(name)
	return g.Backend.ReadMeta(name)
}

// TestUnregisterDiscardsRacedHydration is the regression test for the
// unregister/hydrate race: Stream's best-effort unregistration (after a
// failed create) can run while another caller's hydration of the same
// entry is in flight outside db.mu. The unregistration tombstones the
// entry before removing it from the directory, so the raced hydration
// must observe dropped, discard its freshly built engine and report
// ErrClosed — never install the engine into an entry no longer in the
// directory, where it would be invisible to eviction and Close while a
// later Stream call doubled the namespace.
func TestUnregisterDiscardsRacedHydration(t *testing.T) {
	inner := disk.NewMemBackend()
	db, err := Open(Options{Epsilon: 0.05, Kappa: 2, Device: inner, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Stream("n")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 600; i++ {
		st.Observe(i)
	}
	if _, err := st.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over a gated device: the stream is registered but cold, and
	// its first operation's hydration will park on the gate.
	gb := &hydrateGateBackend{
		Backend: inner,
		prefix:  "streams/n/",
		gate:    make(chan struct{}),
		signal:  make(chan struct{}),
	}
	db2, err := Open(Options{Epsilon: 0.05, Kappa: 2, Device: gb, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close() //nolint:errcheck
	cold, ok := db2.Lookup("n")
	if !ok {
		t.Fatal("registered stream missing after reopen")
	}
	qDone := make(chan error, 1)
	go func() {
		_, _, err := cold.Quantile(0.5)
		qDone <- err
	}()
	<-gb.signal // the hydration is parked mid-load, db.mu free

	// Interleave the exact unregistration Stream performs after a failed
	// create: tombstone, drop from the directory, rewrite the manifest.
	db2.mu.Lock()
	ent := db2.dir["n"]
	if ent == nil {
		db2.mu.Unlock()
		t.Fatal("entry missing from directory")
	}
	ent.dropped = true
	delete(db2.dir, "n")
	if err := db2.saveManifestLocked(); err != nil {
		db2.mu.Unlock()
		t.Fatal(err)
	}
	db2.mu.Unlock()

	close(gb.gate)
	if err := <-qDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("query whose entry was unregistered mid-hydration: %v, want ErrClosed", err)
	}
	db2.mu.Lock()
	leaked := ent.eng != nil
	hydrated := db2.hydrated
	db2.mu.Unlock()
	if leaked {
		t.Error("raced hydration installed an engine into an unregistered entry")
	}
	if hydrated != 0 {
		t.Errorf("hydrated = %d after the discarded hydration, want 0", hydrated)
	}
}
