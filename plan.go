package hsq

import (
	"fmt"
	"math"
)

// Plan chooses the approximation parameter ε for a total summary-memory
// budget, following the paper's experimental protocol (§3.1): half the
// budget goes to the historical summary HS and half to the stream summary
// SS, which is within a factor two of the optimal split.
//
// The memory models are the paper's bounds with our concrete constants:
//
//	HS(ε) = κ · ⌈log_κ T⌉ · β₁ · 16 bytes,  β₁ = ⌈2/ε + 1⌉   (Lemma 8)
//	SS(ε) = 24 bytes · tuples(ε/8, m)                        (Lemma 9)
//
// where tuples(e, m) = (1/(2e))·max(1, log₂(2·e·m)) is the Greenwald-Khanna
// worst-case size at the sketch's internal parameter ε₂/2 = ε/8.
//
// Plan returns the smallest ε (highest accuracy) whose planned HS and SS
// each fit in half the budget. streamSize is the per-step stream size m and
// steps is the total number of time steps T.
func Plan(budgetBytes int64, streamSize int64, steps, kappa int) (float64, error) {
	if budgetBytes <= 0 {
		return 0, fmt.Errorf("hsq: budget must be positive, got %d", budgetBytes)
	}
	if streamSize <= 0 {
		return 0, fmt.Errorf("hsq: stream size must be positive, got %d", streamSize)
	}
	if steps < 1 {
		return 0, fmt.Errorf("hsq: steps must be >= 1, got %d", steps)
	}
	if kappa < 2 {
		return 0, fmt.Errorf("hsq: kappa must be >= 2, got %d", kappa)
	}
	half := float64(budgetBytes) / 2

	epsHS := solveMonotone(func(eps float64) float64 { return PlannedHistBytes(eps, steps, kappa) - half })
	epsSS := solveMonotone(func(eps float64) float64 { return PlannedStreamBytes(eps, streamSize) - half })
	eps := math.Max(epsHS, epsSS)
	if eps >= 0.5 {
		return 0, fmt.Errorf("hsq: budget %d bytes too small for T=%d steps, m=%d (need ε < 0.5)",
			budgetBytes, steps, streamSize)
	}
	return eps, nil
}

// PlannedHistBytes is the HS memory model used by Plan.
func PlannedHistBytes(eps float64, steps, kappa int) float64 {
	beta1 := math.Ceil(2/eps + 1)
	levels := math.Ceil(math.Log(float64(steps)) / math.Log(float64(kappa)))
	if levels < 1 {
		levels = 1
	}
	return float64(kappa) * levels * beta1 * 16
}

// PlannedStreamBytes is the SS memory model used by Plan: the GK sketch at
// internal parameter ε/8 charged 24 bytes per tuple.
func PlannedStreamBytes(eps float64, streamSize int64) float64 {
	e := eps / 8
	tuples := (1 / (2 * e)) * math.Max(1, math.Log2(math.Max(2, 2*e*float64(streamSize))))
	return 24 * tuples
}

// solveMonotone finds the smallest eps in [1e-9, 0.5] for which f(eps) <= 0,
// given f monotone decreasing in eps. Returns 0.5 if no eps satisfies it.
func solveMonotone(f func(float64) float64) float64 {
	lo, hi := 1e-9, 0.5
	if f(hi) > 0 {
		return hi
	}
	if f(lo) <= 0 {
		return lo
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: eps spans decades
		if f(mid) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
