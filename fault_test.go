package hsq

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/workload"
)

// faultEngine builds an engine whose device we can inject faults into.
func faultEngine(t *testing.T) (*Engine, *disk.Manager) {
	t.Helper()
	eng, err := New(Config{Epsilon: 0.05, Kappa: 2, Dir: t.TempDir(), BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return eng, eng.dev
}

var errInjected = errors.New("injected disk fault")

// TestFaultDuringLoad: a write failure while loading a batch must surface
// as an error from EndStep, not a panic, and the engine must keep serving
// queries over the data it already holds.
func TestFaultDuringLoad(t *testing.T) {
	eng, dev := faultEngine(t)
	gen := workload.NewUniform(1)

	// Load two good steps.
	for i := 0; i < 2; i++ {
		eng.ObserveSlice(workload.Fill(gen, 500))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}

	// Inject write failures.
	dev.SetFault(func(op disk.Op, name string, block int64) error {
		if op == disk.OpSeqWrite {
			return errInjected
		}
		return nil
	})
	eng.ObserveSlice(workload.Fill(gen, 500))
	if _, err := eng.EndStep(); !errors.Is(err, errInjected) {
		t.Fatalf("EndStep under write fault: %v", err)
	}
	dev.SetFault(nil)

	// History must still be queryable (the failed batch never installed).
	if eng.HistCount() != 1000 {
		t.Errorf("HistCount = %d after failed load", eng.HistCount())
	}
	if _, _, err := eng.Quantile(0.5); err != nil {
		t.Errorf("query after failed load: %v", err)
	}
}

// TestFaultDuringQuery: a random-read failure mid-query must surface as an
// error and leave the engine consistent.
func TestFaultDuringQuery(t *testing.T) {
	eng, dev := faultEngine(t)
	gen := workload.NewUniform(2)
	for i := 0; i < 4; i++ {
		eng.ObserveSlice(workload.Fill(gen, 2000))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, 1000))

	dev.SetFault(func(op disk.Op, name string, block int64) error {
		if op == disk.OpRandRead {
			return errInjected
		}
		return nil
	})
	_, _, err := eng.Quantile(0.5)
	if err == nil {
		t.Skip("query answered without disk reads at this scale")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("unexpected error: %v", err)
	}
	dev.SetFault(nil)
	if _, _, err := eng.Quantile(0.5); err != nil {
		t.Errorf("query after fault cleared: %v", err)
	}
	// Quick queries never touch disk: immune even under injected faults.
	dev.SetFault(func(op disk.Op, name string, block int64) error { return errInjected })
	if _, err := eng.QuantileQuick(0.5); err != nil {
		t.Errorf("quick query under total disk fault: %v", err)
	}
}

// TestFaultDuringMerge: failures inside a level merge must abort the merge
// without corrupting the store.
func TestFaultDuringMerge(t *testing.T) {
	eng, dev := faultEngine(t)
	gen := workload.NewUniform(3)
	// κ=2: the 3rd step triggers a merge. Fail only reads of partition
	// files (merge input) — the batch's own load/sort writes succeed.
	for i := 0; i < 2; i++ {
		eng.ObserveSlice(workload.Fill(gen, 500))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	dev.SetFault(func(op disk.Op, name string, block int64) error {
		if op == disk.OpSeqRead && strings.HasPrefix(name, "part-") {
			return errInjected
		}
		return nil
	})
	eng.ObserveSlice(workload.Fill(gen, 500))
	if _, err := eng.EndStep(); !errors.Is(err, errInjected) {
		t.Fatalf("EndStep under merge fault: %v", err)
	}
	dev.SetFault(nil)
	// The engine survives; queries still work over installed data.
	if _, _, err := eng.Quantile(0.5); err != nil {
		t.Errorf("query after failed merge: %v", err)
	}
}
