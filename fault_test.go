package hsq

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/workload"
)

// faultEngine builds an engine whose device we can inject faults into.
func faultEngine(t *testing.T) (*Engine, *disk.Manager) {
	t.Helper()
	eng, err := New(Config{Epsilon: 0.05, Kappa: 2, Dir: t.TempDir(), BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return eng, eng.dev
}

var errInjected = errors.New("injected disk fault")

// TestFaultDuringLoad: a write failure while loading a batch must surface
// as an error from EndStep, not a panic, and the engine must keep serving
// queries over the data it already holds.
func TestFaultDuringLoad(t *testing.T) {
	eng, dev := faultEngine(t)
	gen := workload.NewUniform(1)

	// Load two good steps.
	for i := 0; i < 2; i++ {
		eng.ObserveSlice(workload.Fill(gen, 500))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}

	// Inject write failures.
	dev.SetFault(func(op disk.Op, name string, block int64) error {
		if op == disk.OpSeqWrite {
			return errInjected
		}
		return nil
	})
	eng.ObserveSlice(workload.Fill(gen, 500))
	if _, err := eng.EndStep(); !errors.Is(err, errInjected) {
		t.Fatalf("EndStep under write fault: %v", err)
	}
	dev.SetFault(nil)

	// History must still be queryable (the failed batch never installed).
	if eng.HistCount() != 1000 {
		t.Errorf("HistCount = %d after failed load", eng.HistCount())
	}
	if _, _, err := eng.Quantile(0.5); err != nil {
		t.Errorf("query after failed load: %v", err)
	}
}

// TestFaultDuringQuery: a random-read failure mid-query must surface as an
// error and leave the engine consistent.
func TestFaultDuringQuery(t *testing.T) {
	eng, dev := faultEngine(t)
	gen := workload.NewUniform(2)
	for i := 0; i < 4; i++ {
		eng.ObserveSlice(workload.Fill(gen, 2000))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, 1000))

	dev.SetFault(func(op disk.Op, name string, block int64) error {
		if op == disk.OpRandRead {
			return errInjected
		}
		return nil
	})
	_, _, err := eng.Quantile(0.5)
	if err == nil {
		t.Skip("query answered without disk reads at this scale")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("unexpected error: %v", err)
	}
	dev.SetFault(nil)
	if _, _, err := eng.Quantile(0.5); err != nil {
		t.Errorf("query after fault cleared: %v", err)
	}
	// Quick queries never touch disk: immune even under injected faults.
	dev.SetFault(func(op disk.Op, name string, block int64) error { return errInjected })
	if _, err := eng.QuantileQuick(0.5); err != nil {
		t.Errorf("quick query under total disk fault: %v", err)
	}
}

// TestFaultDuringCommit: a failed manifest commit (meta write or sync) must
// surface from EndStep — meta writes route through the fault hook like any
// other I/O — while the engine keeps serving queries over its in-memory
// state, and the next clean EndStep re-commits everything durably.
func TestFaultDuringCommit(t *testing.T) {
	eng, dev := faultEngine(t)
	gen := workload.NewUniform(7)
	eng.ObserveSlice(workload.Fill(gen, 500))
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}

	for _, op := range []disk.Op{disk.OpMetaWrite, disk.OpSync} {
		dev.SetFault(func(o disk.Op, name string, block int64) error {
			if o == op {
				return errInjected
			}
			return nil
		})
		eng.ObserveSlice(workload.Fill(gen, 500))
		if _, err := eng.EndStep(); !errors.Is(err, errInjected) {
			t.Fatalf("EndStep under %v fault: %v", op, err)
		}
		dev.SetFault(nil)
		// The batch was installed in memory; the failed commit only delayed
		// durability. Queries see it, and a Checkpoint retry commits it.
		if _, _, err := eng.Quantile(0.5); err != nil {
			t.Errorf("query after failed %v commit: %v", op, err)
		}
		if err := eng.Checkpoint(); err != nil {
			t.Errorf("Checkpoint retry after %v fault: %v", op, err)
		}
	}

	// The re-committed state must resume cleanly.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenEngine(Config{Epsilon: 0.05, Kappa: 2, Dir: eng.cfg.Dir, BlockSize: 1024})
	if err != nil {
		t.Fatalf("reopen after commit faults: %v", err)
	}
	defer re.Close() //nolint:errcheck
	if got := re.HistCount(); got != 1500 {
		t.Errorf("resumed HistCount = %d, want 1500", got)
	}
}

// TestFaultDuringDropStream: when the sync after a drop's directory commit
// fails, the DB must rewrite the directory with the stream restored —
// otherwise a later unrelated device sync makes the stream-less directory
// durable and the next Open destroys a live stream's data.
func TestFaultDuringDropStream(t *testing.T) {
	cb := disk.NewCrashBackend()
	db, err := Open(Options{Epsilon: 0.05, Kappa: 2, Device: cb, BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniform(11)
	fill := func(name string) *Stream {
		t.Helper()
		s, err := db.Stream(name)
		if err != nil {
			t.Fatal(err)
		}
		s.ObserveSlice(workload.Fill(gen, 500))
		if _, err := s.EndStep(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	keep := fill("keepme")
	fill("dropme")

	db.dev.SetFault(func(op disk.Op, name string, block int64) error {
		if op == disk.OpSync {
			return errInjected
		}
		return nil
	})
	if err := db.DropStream("dropme"); !errors.Is(err, errInjected) {
		t.Fatalf("DropStream under sync fault: %v", err)
	}
	db.dev.SetFault(nil)
	if _, ok := db.Lookup("dropme"); !ok {
		t.Fatal("stream vanished from the DB after a failed drop")
	}

	// The hazard: an unrelated step's device-wide sync persists whatever
	// directory is on the device. Then a crash discarding unsynced writes.
	keep.ObserveSlice(workload.Fill(gen, 100))
	if _, err := keep.EndStep(); err != nil {
		t.Fatal(err)
	}
	cb.Restart(false)
	db2, err := Open(Options{Epsilon: 0.05, Kappa: 2, Device: cb, BlockSize: 1024})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	s2, ok := db2.Lookup("dropme")
	if !ok {
		t.Fatal("failed drop became durable: stream (and its data) destroyed on reopen")
	}
	if got := s2.HistCount(); got != 500 {
		t.Errorf("surviving stream has %d elements, want 500", got)
	}
}

// TestFaultDuringMerge: failures inside a level merge must abort the merge
// without corrupting the store.
func TestFaultDuringMerge(t *testing.T) {
	eng, dev := faultEngine(t)
	gen := workload.NewUniform(3)
	// κ=2: the 3rd step triggers a merge. Fail only reads of partition
	// files (merge input) — the batch's own load/sort writes succeed.
	for i := 0; i < 2; i++ {
		eng.ObserveSlice(workload.Fill(gen, 500))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	dev.SetFault(func(op disk.Op, name string, block int64) error {
		if op == disk.OpSeqRead && strings.HasPrefix(name, "part-") {
			return errInjected
		}
		return nil
	})
	eng.ObserveSlice(workload.Fill(gen, 500))
	if _, err := eng.EndStep(); !errors.Is(err, errInjected) {
		t.Fatalf("EndStep under merge fault: %v", err)
	}
	dev.SetFault(nil)
	// The engine survives; queries still work over installed data.
	if _, _, err := eng.Quantile(0.5); err != nil {
		t.Errorf("query after failed merge: %v", err)
	}
}
