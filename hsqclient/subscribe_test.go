package hsqclient

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/ingest"
	"repro/internal/query"
)

// newPushHarness is newHarness with a fast push debounce, so subscribe
// tests don't wait out the production settle window.
func newPushHarness(t *testing.T) *harness {
	t.Helper()
	db, err := hsq.Open(hsq.Options{Epsilon: 0.05, Backend: "mem"})
	if err != nil {
		t.Fatal(err)
	}
	srv := ingest.New(ingest.Config{DB: db, Logf: t.Logf, PushDebounce: time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(func() {
		srv.Shutdown(context.Background()) //nolint:errcheck
		db.Close()                         //nolint:errcheck
	})
	return &harness{db: db, srv: srv, addr: l.Addr().String()}
}

// waitUpdate receives the next update within a deadline.
func waitUpdate(t *testing.T, sub *Subscription) Update {
	t.Helper()
	select {
	case u, ok := <-sub.Updates():
		if !ok {
			t.Fatal("updates channel closed")
		}
		return u
	case <-time.After(30 * time.Second):
		t.Fatal("no push within deadline")
	}
	panic("unreachable")
}

// TestSubscribeEndToEnd drives the full continuous-query path over a real
// socket: subscribe, ingest a step, receive the pushed re-evaluation.
func TestSubscribeEndToEnd(t *testing.T) {
	h := newPushHarness(t)
	c, err := Dial(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	sub, err := c.Subscribe(context.Background(),
		[]byte(`{"match":"api.*","phis":[0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	// The registration push reflects the pre-ingest state: no streams.
	first := waitUpdate(t, sub)
	if first.Err != nil {
		t.Fatalf("initial push: %v", first.Err)
	}
	var res query.Result
	if err := json.Unmarshal(first.Result, &res); err != nil {
		t.Fatalf("initial result: %v\n%s", err, first.Result)
	}
	if len(res.Streams) != 0 {
		t.Fatalf("initial member set = %v, want empty", res.Streams)
	}

	st := c.Stream("api.latency")
	for v := int64(1); v <= 500; v++ {
		if err := st.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// EndStep landed server-side; a push with the stream's data follows.
	// Coalescing may fold several evaluations — poll updates until one
	// carries the data.
	deadline := time.After(30 * time.Second)
	for {
		var u Update
		select {
		case u = <-sub.Updates():
		case <-deadline:
			t.Fatal("no data-carrying push after EndStep")
		}
		if u.Err != nil {
			t.Fatalf("push error: %v", u.Err)
		}
		if err := json.Unmarshal(u.Result, &res); err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) == 1 && res.Groups[0].Windows[0].N == 500 {
			got := res.Groups[0].Windows[0].Values[0]
			if got < 212 || got > 288 { // 250 ± ⌈1.5·0.05·500⌉
				t.Fatalf("pushed median %d outside bound", got)
			}
			break
		}
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.Updates(); ok {
		// Drain at most the one coalesced update, then expect closure.
		if _, ok := <-sub.Updates(); ok {
			t.Fatal("updates channel still open after Unsubscribe")
		}
	}
}

// TestSubscribeBadPlanNack pins the per-subscription error path: an
// invalid plan fails the Subscribe call with a PlanError and leaves the
// connection (and other traffic) healthy.
func TestSubscribeBadPlanNack(t *testing.T) {
	h := newPushHarness(t)
	c, err := Dial(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	_, err = c.Subscribe(context.Background(), []byte(`{"phis":[0.5]}`))
	var pe *PlanError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PlanError", err)
	}

	// The connection survived the nack: ingest still works.
	st := c.Stream("api.latency")
	if err := st.Observe(7); err != nil {
		t.Fatal(err)
	}
	if err := st.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if eng, ok := h.db.Lookup("api.latency"); !ok || eng.TotalCount() != 1 {
		t.Fatal("ingest broken after plan nack")
	}
}

// TestSubscribePushDuringIngest races continuous pushes against a hot
// ingest loop — the -race exercise for the subscription registry, the
// shared write path, and the EndStep notification hook.
func TestSubscribePushDuringIngest(t *testing.T) {
	h := newPushHarness(t)
	c, err := Dial(h.addr, WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	sub, err := c.Subscribe(context.Background(),
		[]byte(`{"match":"load.**","group_by":2,"phis":[0.5,0.9]}`))
	if err != nil {
		t.Fatal(err)
	}
	var pushes atomic.Int64
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for u := range sub.Updates() {
			if u.Err == nil {
				pushes.Add(1)
			}
		}
	}()

	streams := []*Stream{c.Stream("load.a"), c.Stream("load.b"), c.Stream("load.c")}
	for step := 0; step < 20; step++ {
		for _, st := range streams {
			for v := int64(0); v < 100; v++ {
				if err := st.Observe(v + int64(step)); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.EndStep(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every EndStep marked the subscription dirty; at least one push must
	// land after the final flush settles.
	deadline := time.Now().Add(30 * time.Second)
	for pushes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if pushes.Load() == 0 {
		t.Fatal("no pushes during ingest churn")
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	<-recvDone
}
