package hsqclient

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/wire"
)

// defaultSubscribeCredit is the push budget granted per Subscribe frame;
// the client renews at half spend, so a healthy consumer never stalls on
// credit while an abandoned subscription stops costing the server work
// after at most this many pushes.
const defaultSubscribeCredit = 256

// PlanError is the server's rejection of a continuous-query plan (or of
// one evaluation of it). It is scoped to the subscription: the
// connection and the client's other subscriptions stay healthy.
type PlanError struct {
	Code    uint64
	Message string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("hsqclient: plan rejected: %s", e.Message)
}

// Update is one pushed re-evaluation of a continuous query.
type Update struct {
	// Seq is the per-subscription push counter, starting at 1. Gaps mean
	// intervening results were coalesced or the consumer lagged — the
	// carried result is always the newest.
	Seq uint64
	// Result is the JSON-encoded query result (the same shape POST
	// /query returns). Nil when Err is set.
	Result []byte
	// Err is set when one evaluation failed server-side (e.g. a selected
	// stream was dropped). The subscription stays live; later EndSteps
	// push again.
	Err error
}

// Subscription is a standing continuous query: the server re-evaluates
// the plan when a selected stream finishes a time step and pushes the
// result. Receive on Updates; stop with Unsubscribe.
type Subscription struct {
	c    *Client
	id   uint64
	plan []byte

	updates chan Update
	ready   chan struct{} // closed on the first push (or nack)

	mu       sync.Mutex
	firstErr error
	received uint64 // pushes since the last Subscribe frame (credit renewal)
	closed   bool
}

// Subscribe registers a continuous query from its JSON plan (the same
// document POST /query accepts) and blocks until the server confirms it
// with the initial result push — or rejects the plan, which surfaces
// here as a *PlanError. The initial result is also delivered on
// Updates.
//
// Delivery is latest-state, not every-state: bursts of step completions
// are debounced server-side and a slow consumer observes coalesced
// updates (Update.Seq gaps). After a reconnect the client re-subscribes
// and the server pushes a fresh evaluation; pushes missed during the
// outage are not replayed.
func (c *Client) Subscribe(ctx context.Context, planJSON []byte) (*Subscription, error) {
	c.mu.Lock()
	if err := c.errLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nextSubID++
	sub := &Subscription{
		c:       c,
		id:      c.nextSubID,
		plan:    append([]byte(nil), planJSON...),
		updates: make(chan Update, 1),
		ready:   make(chan struct{}),
	}
	if c.subs == nil {
		c.subs = make(map[uint64]*Subscription)
	}
	c.subs[sub.id] = sub
	c.queue = append(c.queue, subscribeFrame(sub))
	c.cond.Broadcast()
	c.mu.Unlock()

	select {
	case <-sub.ready:
	case <-ctx.Done():
		sub.Unsubscribe() //nolint:errcheck
		return nil, ctx.Err()
	case <-c.done:
		c.mu.Lock()
		err := c.errLocked()
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	sub.mu.Lock()
	err := sub.firstErr
	sub.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// subscribeFrame builds the (un-sequenced) Subscribe frame for sub; also
// used to renew credit and to re-register after a reconnect.
func subscribeFrame(sub *Subscription) *wire.Frame {
	return &wire.Frame{
		Type:     wire.TypeSubscribe,
		StreamID: sub.id,
		Credit:   defaultSubscribeCredit,
		Data:     sub.plan,
	}
}

// Updates is the subscription's delivery channel. It is closed by
// Unsubscribe and when the client reaches a terminal state.
func (s *Subscription) Updates() <-chan Update { return s.updates }

// Unsubscribe deregisters the query and closes Updates. Idempotent.
func (s *Subscription) Unsubscribe() error {
	c := s.c
	c.mu.Lock()
	delete(c.subs, s.id)
	alive := c.errLocked() == nil
	if alive {
		c.queue = append(c.queue, &wire.Frame{Type: wire.TypeUnsubscribe, StreamID: s.id})
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	s.close(nil)
	return nil
}

// close marks the subscription finished and closes Updates exactly once.
func (s *Subscription) close(firstErr error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if firstErr != nil {
		s.firstErr = firstErr
	}
	s.mu.Unlock()
	close(s.updates)
	s.signalReady()
}

// signalReady closes the ready gate once.
func (s *Subscription) signalReady() {
	select {
	case <-s.ready:
	default:
		close(s.ready)
	}
}

// deliver routes one Push frame to the subscription. renew reports that
// the client should send a credit-renewing Subscribe frame.
func (s *Subscription) deliver(f *wire.Frame) (renew bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	first := false
	select {
	case <-s.ready:
	default:
		first = true
	}
	if f.Code != 0 && first {
		// Plan rejected before any result: fail the pending Subscribe and
		// remove the subscription (the server never registered it).
		s.firstErr = &PlanError{Code: f.Code, Message: f.Message}
		s.closed = true
		s.mu.Unlock()
		close(s.updates)
		s.signalReady()
		c := s.c
		c.mu.Lock()
		delete(c.subs, s.id)
		c.mu.Unlock()
		return false
	}
	s.received++
	renew = s.received >= defaultSubscribeCredit/2
	if renew {
		s.received = 0
	}
	u := Update{Seq: f.Seq}
	if f.Code != 0 {
		u.Err = &PlanError{Code: f.Code, Message: f.Message}
	} else {
		u.Result = append([]byte(nil), f.Data...)
	}
	// Latest-state delivery: displace a stale undelivered update rather
	// than blocking the read loop on a slow consumer.
	select {
	case s.updates <- u:
	default:
		select {
		case <-s.updates:
		default:
		}
		select {
		case s.updates <- u:
		default:
		}
	}
	s.mu.Unlock()
	s.signalReady()
	return renew
}

// closeSubs tears down every live subscription when the client reaches a
// terminal state, so consumers ranging over Updates unblock.
func (c *Client) closeSubs() {
	c.mu.Lock()
	subs := make([]*Subscription, 0, len(c.subs))
	for _, sub := range c.subs {
		subs = append(subs, sub)
	}
	clear(c.subs)
	c.mu.Unlock()
	for _, sub := range subs {
		sub.close(ErrClosed)
	}
}

// dispatchPush routes a Push frame from the read loop to its
// subscription, enqueueing a credit renewal when the budget runs low.
// Unknown subscription IDs are ignored (a push can race Unsubscribe).
func (c *Client) dispatchPush(f *wire.Frame) {
	c.mu.Lock()
	sub := c.subs[f.StreamID]
	c.mu.Unlock()
	if sub == nil {
		return
	}
	if sub.deliver(f) {
		c.mu.Lock()
		if c.errLocked() == nil && c.subs[sub.id] == sub {
			c.queue = append(c.queue, subscribeFrame(sub))
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}
