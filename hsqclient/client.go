// Package hsqclient is the batching client SDK for hsqd's binary ingest
// listener (hsqd -ingest-addr). It turns per-element Observe calls into
// stream-multiplexed, delta-compressed wire frames (internal/wire),
// amortizing one network round trip over thousands of elements:
//
//	c, err := hsqclient.Dial("localhost:9090")
//	defer c.Close()
//	lat := c.Stream("api.latency")
//	for _, v := range samples {
//		lat.Observe(v)
//	}
//	lat.EndStep()
//	err = c.Flush() // block until the server has applied everything
//
// # Batching
//
// Observe appends to an in-memory buffer per stream; a buffer is sealed
// into a wire frame when it reaches the batch size (WithBatchSize) or at
// the flush interval (WithFlushInterval), whichever comes first — so
// high-rate producers pay ~zero per-element overhead and trickling
// producers still see their data arrive promptly. A background goroutine
// owns the connection; Observe never waits on the network while the
// client is under its buffering limits.
//
// # Backpressure
//
// The server grants a credit window: at most W sequenced frames may be in
// flight (unacknowledged). When the server stalls — typically EndStep
// blocked on the engine's MaxPendingSteps maintenance backpressure — acks
// stop, the window fills, the client's frame queue backs up, and Observe
// blocks. Producer speed is thereby coupled to warehouse speed with
// bounded memory at every hop.
//
// # Reconnection and delivery guarantees
//
// On a broken connection the client redials (capped exponential backoff)
// and resumes its session: the server's Welcome frame reports the highest
// frame sequence it has applied, the client discards buffered frames at
// or below it and replays the rest. Sequenced frames (batches,
// end-of-steps) are therefore applied exactly once and in order per
// server process, even across reconnects — what was never acknowledged is
// retried; what was already applied is never applied twice. Elements
// still in a stream's unsealed buffer are never lost either: they simply
// have not been sent yet. Only a client process crash loses buffered
// data, and a server restart loses its sessions (the replay then starts a
// fresh session; see the "Durability" section of the hsq docs for what a
// restarted server remembers).
package hsqclient

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"net"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// ErrClosed is returned by every method after Close.
var ErrClosed = errors.New("hsqclient: closed")

// ServerError is a terminal error frame from the server (protocol
// mismatch, stream apply failure). It poisons the client: every later
// call returns it, because the server has rejected the session's frame
// stream and silently resuming could drop or double-apply data.
type ServerError struct {
	Code    uint64
	Message string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("hsqclient: server error %d: %s", e.Code, e.Message)
}

type options struct {
	batchSize     int
	flushInterval time.Duration
	maxQueue      int
	dialTimeout   time.Duration
	backoffMin    time.Duration
	backoffMax    time.Duration
	maxAttempts   int // consecutive failed dials before giving up; 0 = unlimited
	keepalive     time.Duration
	session       string
	logf          func(format string, args ...any)
}

// Option customizes Dial.
type Option func(*options)

// WithBatchSize sets how many buffered elements seal a batch frame
// (default 2048).
func WithBatchSize(n int) Option { return func(o *options) { o.batchSize = n } }

// WithFlushInterval sets how long a partial batch may sit in the buffer
// before being sealed and sent anyway (default 50ms).
func WithFlushInterval(d time.Duration) Option { return func(o *options) { o.flushInterval = d } }

// WithMaxQueuedFrames bounds the client-side frame queue; Observe blocks
// when it is full (default 256 frames).
func WithMaxQueuedFrames(n int) Option { return func(o *options) { o.maxQueue = n } }

// WithDialTimeout bounds each dial attempt (default 5s).
func WithDialTimeout(d time.Duration) Option { return func(o *options) { o.dialTimeout = d } }

// WithReconnectBackoff sets the reconnect backoff range (default
// 20ms–2s, doubling).
func WithReconnectBackoff(min, max time.Duration) Option {
	return func(o *options) { o.backoffMin, o.backoffMax = min, max }
}

// WithMaxReconnectAttempts gives up (poisoning the client) after n
// consecutive failed connection attempts; 0, the default, retries
// forever.
func WithMaxReconnectAttempts(n int) Option { return func(o *options) { o.maxAttempts = n } }

// WithKeepalive sends a Ping frame whenever the connection has been idle
// for d, so servers running with an ingest idle timeout do not reap
// trickling producers (and dead connections are detected sooner). 0, the
// default, sends no pings.
func WithKeepalive(d time.Duration) Option { return func(o *options) { o.keepalive = d } }

// WithSession fixes the session token instead of generating a random
// one. Two clients must never share a token.
func WithSession(s string) Option { return func(o *options) { o.session = s } }

// WithLogf receives connection-lifecycle log lines (reconnects, fatal
// errors). Default: silent.
func WithLogf(f func(format string, args ...any)) Option { return func(o *options) { o.logf = f } }

// Client is a connection to an hsqd ingest listener hosting any number of
// named streams. All methods are safe for concurrent use.
type Client struct {
	addrs []string // candidate servers; addrIdx rotates on dial failure
	opts  options

	addrIdx int // guarded by mu; index of the address to try next

	mu          sync.Mutex
	cond        *sync.Cond
	streams     map[string]*Stream
	subs        map[uint64]*Subscription
	nextID      uint64
	nextSubID   uint64
	nextSeq     uint64
	ackedSeq    uint64
	credit      uint64
	queue       []*wire.Frame // sealed frames awaiting write, FIFO
	unacked     []*wire.Frame // written frames awaiting ack, seq-ordered
	connUp      bool
	wantFlush   bool   // a Flush waiter needs an explicit ack request
	flushReqSeq uint64 // newest seq covered by a Flush frame on this connection
	fatal       error
	closed      bool

	tick *time.Ticker
	done chan struct{} // closed when run() exits
}

// Stream is a named stream handle. Handles are cheap and cached: every
// call to Client.Stream with the same name returns the same handle.
type Stream struct {
	c    *Client
	id   uint64
	name string
	buf  []int64
}

// Dial connects to an hsqd ingest listener. The initial connection and
// handshake are synchronous — a bad address or incompatible server fails
// here, not on the first Observe. Later disconnects are handled
// transparently (see the package comment).
//
// addr may be a comma-separated list of addresses (the nodes of an hsqd
// cluster): the client connects to the first reachable one and, when a
// connection dies, fails over to the next — replaying unacknowledged
// frames so the cluster's session replay state resumes the stream without
// loss or duplication.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{
		batchSize:     2048,
		flushInterval: 50 * time.Millisecond,
		maxQueue:      256,
		dialTimeout:   5 * time.Second,
		backoffMin:    20 * time.Millisecond,
		backoffMax:    2 * time.Second,
		logf:          func(string, ...any) {},
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.session == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("hsqclient: session token: %w", err)
		}
		o.session = hex.EncodeToString(b[:])
	}
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, errors.New("hsqclient: no addresses")
	}
	c := &Client{
		addrs:   addrs,
		opts:    o,
		streams: make(map[string]*Stream),
		credit:  1, // replaced by the Welcome's window on connect
		done:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)

	// First connection synchronously, so Dial's error is meaningful.
	nc, r, err := c.connectOnce()
	if err != nil {
		return nil, err
	}
	c.tick = time.NewTicker(o.flushInterval)
	go c.tickLoop()
	if o.keepalive > 0 {
		go c.keepaliveLoop()
	}
	go c.run(nc, r)
	return c, nil
}

// keepaliveLoop enqueues a Ping whenever the client has been idle for the
// keepalive interval (no frames queued or in flight). The server's Pong is
// ignored by readLoop; the ping's only job is to keep bytes moving so
// idle-timeout reaping and dead-peer detection work.
func (c *Client) keepaliveLoop() {
	t := time.NewTicker(c.opts.keepalive)
	defer t.Stop()
	var seq uint64
	for {
		select {
		case <-t.C:
		case <-c.done:
			return
		}
		c.mu.Lock()
		if !c.closed && c.connUp && len(c.queue) == 0 && len(c.unacked) == 0 {
			seq++
			c.queue = append(c.queue, &wire.Frame{Type: wire.TypePing, Seq: seq})
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// Session returns the client's session token (useful for tests and for
// correlating client and server stats).
func (c *Client) Session() string { return c.opts.session }

// Stream returns the handle for a named stream, registering it with the
// server on first use.
func (c *Client) Stream(name string) *Stream {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.streams[name]; ok {
		return s
	}
	c.nextID++
	s := &Stream{c: c, id: c.nextID, name: name}
	c.streams[name] = s
	// OpenStream frames are unsequenced and idempotent; one is also
	// replayed for every known stream after each reconnect.
	c.queue = append(c.queue, &wire.Frame{Type: wire.TypeOpenStream, StreamID: s.id, Name: name})
	c.cond.Broadcast()
	return s
}

// Observe buffers one element. It blocks only when the client's buffering
// limits are reached (queue full — typically the server exerting
// backpressure).
func (s *Stream) Observe(v int64) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.errLocked(); err != nil {
		return err
	}
	s.buf = append(s.buf, v)
	if len(s.buf) >= c.opts.batchSize {
		return c.sealLocked(s, true)
	}
	return nil
}

// ObserveSlice buffers a slice of elements under one lock acquisition.
func (s *Stream) ObserveSlice(vs []int64) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.errLocked(); err != nil {
		return err
	}
	s.buf = append(s.buf, vs...)
	if len(s.buf) >= c.opts.batchSize {
		return c.sealLocked(s, true)
	}
	return nil
}

// EndStep seals the stream's buffer and enqueues an end-of-step marker:
// the server runs the stream's EndStep after applying everything observed
// so far. Asynchronous — use Flush to wait for the ack.
func (s *Stream) EndStep() error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.errLocked(); err != nil {
		return err
	}
	if err := c.sealLocked(s, true); err != nil {
		return err
	}
	if err := c.waitQueueSpaceLocked(); err != nil {
		return err
	}
	c.nextSeq++
	c.queue = append(c.queue, &wire.Frame{Type: wire.TypeEndStep, Seq: c.nextSeq, StreamID: s.id})
	c.cond.Broadcast()
	return nil
}

// Flush seals this stream's buffer and blocks until the server has
// acknowledged every frame enqueued so far (all streams share the
// connection's frame sequence, so this is a connection-wide barrier).
func (s *Stream) Flush() error { return s.c.Flush() }

// Name returns the stream's name.
func (s *Stream) Name() string { return s.name }

// Flush seals every stream's buffer and blocks until the server has
// applied and acknowledged every frame enqueued so far. While the server
// is unreachable Flush waits through the reconnect loop — indefinitely
// under the default unlimited-retry policy; bound the wait with
// WithMaxReconnectAttempts or use FlushCtx.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked(context.Background())
}

// FlushCtx is Flush with a deadline: it returns ctx.Err() if the
// acknowledgements do not arrive in time. The frames stay queued — a
// timed-out flush abandons the wait, not the data.
func (c *Client) FlushCtx(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked(ctx)
}

func (c *Client) flushLocked(ctx context.Context) error {
	if err := c.errLocked(); err != nil {
		return err
	}
	for _, s := range c.streams {
		if err := c.sealLocked(s, true); err != nil {
			return err
		}
	}
	target := c.nextSeq
	for c.ackedSeq < target {
		if err := c.errLocked(); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// Ask the writer to request an ack once the queue drains, unless
		// this connection has already requested one covering target —
		// without that guard the waiter and the writer wake each other
		// into a ping-pong of redundant Flush frames.
		if c.flushReqSeq < target {
			c.wantFlush = true
			c.cond.Broadcast()
		}
		c.cond.Wait()
	}
	return nil
}

// Close flushes all buffered data, waits for the server's
// acknowledgements, and releases the connection. Always releases
// resources, even when the flush fails; the flush error is returned.
// Like Flush, the drain waits through reconnects — a producer that must
// bound its shutdown against a server that may never return should call
// FlushCtx first (or set WithMaxReconnectAttempts) and Close after.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	flushErr := c.flushLocked(context.Background())
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.tick.Stop()
	<-c.done
	return flushErr
}

// errLocked reports the terminal state, if any.
func (c *Client) errLocked() error {
	if c.closed {
		return ErrClosed
	}
	return c.fatal
}

// waitQueueSpaceLocked blocks while the frame queue is at its bound.
func (c *Client) waitQueueSpaceLocked() error {
	for len(c.queue) >= c.opts.maxQueue {
		if err := c.errLocked(); err != nil {
			return err
		}
		c.cond.Wait()
	}
	return c.errLocked()
}

// sealLocked turns s's buffer into one or more sequenced batch frames on
// the queue. With block=false (the interval ticker) it skips instead of
// waiting when the queue is full — the buffer just keeps growing until
// the size threshold forces a blocking seal.
func (c *Client) sealLocked(s *Stream, block bool) error {
	if len(s.buf) == 0 {
		return nil
	}
	if block {
		if err := c.waitQueueSpaceLocked(); err != nil {
			return err
		}
		// The wait released the lock: a concurrent caller may have sealed
		// this stream's buffer already.
		if len(s.buf) == 0 {
			return nil
		}
	} else if len(c.queue) >= c.opts.maxQueue {
		return nil
	}
	for _, chunk := range wire.SplitBatch(s.buf) {
		c.nextSeq++
		c.queue = append(c.queue, &wire.Frame{
			Type: wire.TypeBatch, Seq: c.nextSeq, StreamID: s.id,
			Values: slices.Clone(chunk),
		})
	}
	s.buf = s.buf[:0]
	c.cond.Broadcast()
	return nil
}

// tickLoop seals partial buffers at the flush interval so trickling
// producers still see their data arrive.
func (c *Client) tickLoop() {
	for {
		select {
		case <-c.tick.C:
		case <-c.done:
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		for _, s := range c.streams {
			c.sealLocked(s, false) //nolint:errcheck // non-blocking seal cannot fail
		}
		c.mu.Unlock()
	}
}

// connectOnce dials and handshakes a single attempt against the current
// address; on any failure the next attempt targets the next address in
// the list, so a dead node delays failover by one dial timeout at most.
func (c *Client) connectOnce() (net.Conn, *wire.Reader, error) {
	c.mu.Lock()
	addr := c.addrs[c.addrIdx%len(c.addrs)]
	c.mu.Unlock()
	rotate := func() {
		c.mu.Lock()
		c.addrIdx++
		c.mu.Unlock()
	}
	nc, err := net.DialTimeout("tcp", addr, c.opts.dialTimeout)
	if err != nil {
		rotate()
		return nil, nil, fmt.Errorf("hsqclient: dial %s: %w", addr, err)
	}
	w := wire.NewWriter(nc)
	hello := &wire.Frame{Type: wire.TypeHello, Version: wire.Version, Session: c.opts.session}
	if err := w.WriteFrame(hello); err == nil {
		err = w.Flush()
	}
	if err != nil {
		nc.Close() //nolint:errcheck
		rotate()
		return nil, nil, fmt.Errorf("hsqclient: handshake: %w", err)
	}
	r := wire.NewReader(nc)
	nc.SetReadDeadline(time.Now().Add(c.opts.dialTimeout)) //nolint:errcheck
	f, err := r.ReadFrame()
	if err != nil {
		nc.Close() //nolint:errcheck
		rotate()
		return nil, nil, fmt.Errorf("hsqclient: handshake: %w", err)
	}
	nc.SetReadDeadline(time.Time{}) //nolint:errcheck
	switch f.Type {
	case wire.TypeWelcome:
		// fall through
	case wire.TypeError:
		nc.Close() //nolint:errcheck
		rotate()
		return nil, nil, &ServerError{Code: f.Code, Message: f.Message}
	default:
		nc.Close() //nolint:errcheck
		rotate()
		return nil, nil, fmt.Errorf("hsqclient: handshake: unexpected %s frame", wire.TypeName(f.Type))
	}

	// Adopt the server's view of the session: frames it has applied are
	// pruned from the replay set; the rest go back to the front of the
	// queue, ahead of anything sealed while disconnected, preceded by the
	// idempotent OpenStream bindings the new connection needs.
	//
	// A v2 server reports per-stream marks, and pruning MUST then be per
	// stream: after failing over to a replica, the new server knows the
	// high-water marks only of the streams it stores, and its conn-wide
	// Seq (the max over those) would wrongly prune frames of a stream
	// whose path died with the old server. For the same reason the
	// conn-wide Seq is not adopted into ackedSeq — acks for replayed
	// frames (or the Flush reply, for fully pruned ones) advance it.
	c.mu.Lock()
	byID := make(map[uint64]string, len(c.streams))
	for name, s := range c.streams {
		byID[s.id] = name
	}
	var pruned func(uf *wire.Frame) bool
	if len(f.StreamSeqs) > 0 {
		marks := make(map[string]uint64, len(f.StreamSeqs))
		for _, ss := range f.StreamSeqs {
			marks[ss.Name] = ss.Seq
		}
		pruned = func(uf *wire.Frame) bool { return uf.Seq <= marks[byID[uf.StreamID]] }
	} else {
		// v1 server (or fresh session): one conn-wide high-water mark.
		if f.Seq > c.ackedSeq {
			c.ackedSeq = f.Seq
		}
		pruned = func(uf *wire.Frame) bool { return uf.Seq <= f.Seq }
	}
	c.credit = max(f.Credit, 1)
	keep := c.unacked[:0]
	for _, uf := range c.unacked {
		if !pruned(uf) {
			keep = append(keep, uf)
		}
	}
	replay := append([]*wire.Frame{}, keep...)
	c.unacked = nil
	var opens []*wire.Frame
	for _, s := range c.streams {
		opens = append(opens, &wire.Frame{Type: wire.TypeOpenStream, StreamID: s.id, Name: s.name})
	}
	slices.SortFunc(opens, func(a, b *wire.Frame) int { return int(a.StreamID) - int(b.StreamID) })
	// Re-register continuous queries with fresh credit: the new server has
	// no subscription state, and the re-Subscribe triggers a fresh push
	// (results missed during the outage are not replayed — subscribers get
	// latest state, not history).
	for _, sub := range c.subs {
		sub.mu.Lock()
		sub.received = 0
		sub.mu.Unlock()
		opens = append(opens, subscribeFrame(sub))
	}
	// Drop queued OpenStream/Subscribe frames (re-issued above) to keep
	// the queue from accumulating per reconnect.
	pending := c.queue[:0]
	for _, qf := range c.queue {
		if qf.Type != wire.TypeOpenStream && qf.Type != wire.TypeSubscribe {
			pending = append(pending, qf)
		}
	}
	c.queue = append(append(opens, replay...), pending...)
	c.flushReqSeq = 0 // a flush request from the old connection died with it
	c.connUp = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return nc, r, nil
}

// run owns the connection: it alternates writeLoop (until the connection
// dies) with reconnect attempts, and exits on Close or a terminal error.
func (c *Client) run(nc net.Conn, r *wire.Reader) {
	defer close(c.done)
	defer c.closeSubs()
	for {
		readerDone := make(chan struct{})
		go c.readLoop(nc, r, readerDone)
		c.writeLoop(nc)
		nc.Close() //nolint:errcheck
		<-readerDone

		c.mu.Lock()
		c.connUp = false
		stop := c.closed || c.fatal != nil
		c.cond.Broadcast()
		c.mu.Unlock()
		if stop {
			return
		}

		var err error
		nc, r, err = c.reconnect()
		if err != nil {
			c.mu.Lock()
			if c.fatal == nil && !c.closed {
				c.fatal = err
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		if nc == nil { // closed during reconnect
			return
		}
	}
}

// reconnect redials with capped exponential backoff until it succeeds,
// the client closes, or the attempt budget runs out. A nil conn with nil
// error means the client closed.
func (c *Client) reconnect() (net.Conn, *wire.Reader, error) {
	backoff := c.opts.backoffMin
	attempts := 0
	for {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, nil, nil
		}
		nc, r, err := c.connectOnce()
		if err == nil {
			c.opts.logf("hsqclient: reconnected (session %s)", c.opts.session)
			return nc, r, nil
		}
		var se *ServerError
		if errors.As(err, &se) && se.Code == wire.ErrCodeProtocol {
			return nil, nil, err // no point retrying a protocol mismatch
		}
		attempts++
		if c.opts.maxAttempts > 0 && attempts >= c.opts.maxAttempts {
			return nil, nil, fmt.Errorf("hsqclient: giving up after %d reconnect attempts: %w", attempts, err)
		}
		c.opts.logf("hsqclient: reconnect failed (attempt %d): %v", attempts, err)
		// Full jitter on the capped exponential backoff: a fleet of
		// producers reconnecting after one node dies must not redial in
		// lockstep.
		time.Sleep(backoff/2 + time.Duration(mrand.Int64N(int64(backoff/2)+1)))
		backoff = min(backoff*2, c.opts.backoffMax)
	}
}

// writeLoop drains the frame queue onto the connection while credit
// allows, returning when the connection dies or the client is done with
// it (closed with everything acked).
func (c *Client) writeLoop(nc net.Conn) {
	w := wire.NewWriter(nc)
	c.mu.Lock()
	for {
		if !c.connUp || c.fatal != nil {
			c.mu.Unlock()
			return
		}
		if c.closed && len(c.queue) == 0 && len(c.unacked) == 0 {
			c.mu.Unlock()
			return
		}
		var towrite []*wire.Frame
		for len(c.queue) > 0 && len(towrite) < 64 {
			f := c.queue[0]
			if f.Sequenced() && uint64(len(c.unacked)) >= c.credit {
				break
			}
			c.queue = c.queue[1:]
			if f.Sequenced() {
				c.unacked = append(c.unacked, f)
			}
			towrite = append(towrite, f)
		}
		// A Flush waiter needs the server to ack promptly even when the
		// ack-every-W/4 cadence would not fire: request one explicitly
		// once everything pending has been handed to the connection. This
		// fires even with nothing unacked — after a failover prunes every
		// replay frame, the Flush reply is the only ack that can advance
		// ackedSeq past the pruned frames.
		wantFlush := c.wantFlush && len(c.queue) == 0
		if wantFlush {
			c.wantFlush = false
			c.flushReqSeq = c.nextSeq
		}
		if len(towrite) == 0 && !wantFlush {
			c.cond.Broadcast() // queue drained: wake blocked producers
			c.cond.Wait()
			continue
		}
		flushSeq := c.nextSeq
		c.mu.Unlock()

		var err error
		for _, f := range towrite {
			if err = w.WriteFrame(f); err != nil {
				break
			}
		}
		if err == nil && wantFlush {
			err = w.WriteFrame(&wire.Frame{Type: wire.TypeFlush, Seq: flushSeq})
		}
		if err == nil {
			err = w.Flush()
		}

		c.mu.Lock()
		if err != nil {
			// The frames sit in unacked; the next connection replays them.
			c.mu.Unlock()
			return
		}
		c.cond.Broadcast()
	}
}

// readLoop consumes acks and errors until the connection dies.
func (c *Client) readLoop(nc net.Conn, r *wire.Reader, done chan<- struct{}) {
	defer close(done)
	for {
		f, err := r.ReadFrame()
		if err != nil {
			nc.Close() //nolint:errcheck — unblock a writer stuck in Write
			c.mu.Lock()
			c.connUp = false
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		switch f.Type {
		case wire.TypeAck:
			c.mu.Lock()
			if f.Seq > c.ackedSeq {
				c.ackedSeq = f.Seq
			}
			if f.Credit > 0 {
				c.credit = f.Credit
			}
			keep := c.unacked[:0]
			for _, uf := range c.unacked {
				if uf.Seq > c.ackedSeq {
					keep = append(keep, uf)
				}
			}
			clear(c.unacked[len(keep):])
			c.unacked = keep
			c.cond.Broadcast()
			c.mu.Unlock()
		case wire.TypeError:
			if f.Code == wire.ErrCodeShutdown {
				// The server is going away; treat as a connection drop and
				// let the reconnect loop retry against its successor.
				c.opts.logf("hsqclient: server shutting down, will reconnect")
				nc.Close() //nolint:errcheck
				c.mu.Lock()
				c.connUp = false
				c.cond.Broadcast()
				c.mu.Unlock()
				return
			}
			nc.Close() //nolint:errcheck
			c.mu.Lock()
			if c.fatal == nil {
				c.fatal = &ServerError{Code: f.Code, Message: f.Message}
			}
			c.connUp = false
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		case wire.TypePush:
			c.dispatchPush(f)
		default:
			// Unexpected server frame: ignore. Forward compatibility —
			// newer servers may add informational frames.
		}
	}
}
