package hsqclient

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/ingest"
)

// harness is a live ingest server on a loopback socket over a mem DB.
type harness struct {
	db   *hsq.DB
	srv  *ingest.Server
	addr string
}

func newHarness(t *testing.T, opts hsq.Options) *harness {
	t.Helper()
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.05
	}
	if opts.Backend == "" {
		opts.Backend = "mem"
	}
	db, err := hsq.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := ingest.New(ingest.Config{DB: db, Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(func() {
		srv.Shutdown(context.Background()) //nolint:errcheck
		db.Close()                         //nolint:errcheck
	})
	return &harness{db: db, srv: srv, addr: l.Addr().String()}
}

// TestObserveFlushQuery drives elements through the full client →
// server → engine path and queries them back.
func TestObserveFlushQuery(t *testing.T) {
	h := newHarness(t, hsq.Options{})
	c, err := Dial(h.addr, WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	st := c.Stream("api.latency")
	for v := int64(1); v <= 1000; v++ {
		if err := st.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	eng, ok := h.db.Lookup("api.latency")
	if !ok {
		t.Fatal("stream not created server-side")
	}
	if n := eng.TotalCount(); n != 1000 {
		t.Fatalf("TotalCount = %d, want 1000", n)
	}
	v, _, err := eng.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v < 400 || v > 600 {
		t.Fatalf("median = %d, want ≈500", v)
	}
}

// TestMultiStreamOneConn checks several streams multiplex one connection
// without crosstalk.
func TestMultiStreamOneConn(t *testing.T) {
	h := newHarness(t, hsq.Options{})
	c, err := Dial(h.addr, WithBatchSize(32))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	names := []string{"a", "b", "c"}
	for i, name := range names {
		st := c.Stream(name)
		base := int64(i) * 10000
		for v := int64(0); v < 500; v++ {
			if err := st.Observe(base + v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		eng, ok := h.db.Lookup(name)
		if !ok {
			t.Fatalf("stream %q missing", name)
		}
		if n := eng.StreamCount(); n != 500 {
			t.Fatalf("stream %q count = %d, want 500", name, n)
		}
		// Values must be the stream's own range, not a sibling's.
		v, err := eng.QuantileQuick(0.5)
		if err != nil {
			t.Fatal(err)
		}
		base := int64(i) * 10000
		if v < base || v >= base+500 {
			t.Fatalf("stream %q median %d outside its range [%d,%d)", name, v, base, base+500)
		}
	}
	if got := h.srv.Stats().ActiveConns; got != 1 {
		t.Fatalf("ActiveConns = %d, want 1 (streams must share the connection)", got)
	}
}

// TestReconnectReplay force-closes the server side mid-stream and checks
// the client transparently reconnects, replays unacknowledged frames, and
// no element is lost or duplicated.
func TestReconnectReplay(t *testing.T) {
	h := newHarness(t, hsq.Options{})
	c, err := Dial(h.addr, WithBatchSize(100), WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	st := c.Stream("r")
	const total = 20000
	for v := int64(0); v < total; v++ {
		if err := st.Observe(v); err != nil {
			t.Fatal(err)
		}
		if v == total/2 {
			h.srv.CloseActiveConns() // mid-batch: half the data is in flight
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	eng, _ := h.db.Lookup("r")
	if n := eng.StreamCount(); n != total {
		t.Fatalf("count after forced reconnect = %d, want %d (lost or duplicated frames)", n, total)
	}
}

// TestFatalServerError pins the poisoned-client contract: after the
// server rejects the stream, every call fails with the ServerError.
func TestFatalServerError(t *testing.T) {
	h := newHarness(t, hsq.Options{})
	c, err := Dial(h.addr, WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	st := c.Stream("bad/name") // server will reject the OpenStream
	deadline := time.Now().Add(5 * time.Second)
	for {
		err = st.Observe(1)
		if err == nil {
			err = c.Flush()
		}
		if err != nil || time.Now().After(deadline) {
			break
		}
	}
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want ServerError", err)
	}
	if err := st.Observe(2); !errors.As(err, &se) {
		t.Fatalf("after fatal error Observe = %v, want the ServerError", err)
	}
}

// TestIntervalFlush checks a partial batch is sealed and delivered by the
// flush interval without an explicit Flush call.
func TestIntervalFlush(t *testing.T) {
	h := newHarness(t, hsq.Options{})
	c, err := Dial(h.addr, WithBatchSize(1<<20), WithFlushInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	st := c.Stream("trickle")
	for v := int64(0); v < 10; v++ {
		if err := st.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if eng, ok := h.db.Lookup("trickle"); ok && eng.StreamCount() == 10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("partial batch never arrived via interval flush")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentProducers hammers one client from many goroutines, which
// is the documented contract (all methods safe for concurrent use).
func TestConcurrentProducers(t *testing.T) {
	h := newHarness(t, hsq.Options{})
	c, err := Dial(h.addr, WithBatchSize(256))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	const (
		workers = 8
		per     = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := c.Stream("hot")
			for v := 0; v < per; v++ {
				if err := st.Observe(int64(v)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	eng, _ := h.db.Lookup("hot")
	if n := eng.StreamCount(); n != workers*per {
		t.Fatalf("count = %d, want %d", n, workers*per)
	}
}

// TestCloseDrains checks Close flushes buffered data before returning.
func TestCloseDrains(t *testing.T) {
	h := newHarness(t, hsq.Options{})
	c, err := Dial(h.addr, WithBatchSize(1<<20), WithFlushInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stream("drain")
	for v := int64(0); v < 123; v++ {
		if err := st.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	eng, _ := h.db.Lookup("drain")
	if n := eng.StreamCount(); n != 123 {
		t.Fatalf("count after Close = %d, want 123", n)
	}
	if err := st.Observe(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Observe after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestDialFailsFast pins Dial's synchronous-handshake contract.
func TestDialFailsFast(t *testing.T) {
	// A listener that is immediately closed: dialing it must error.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() //nolint:errcheck
	if _, err := Dial(addr, WithDialTimeout(time.Second)); err == nil {
		t.Fatal("Dial to a dead address succeeded")
	}
}

// TestBackpressureBlocks pins the credit path end to end: with
// MaxPendingSteps=1 and manual maintenance the server's EndStep stalls,
// and a producer pushing more end-steps must block rather than buffer
// unboundedly — then unblock once maintenance drains.
func TestBackpressureBlocks(t *testing.T) {
	h := newHarness(t, hsq.Options{
		Maintenance:     hsq.MaintenanceAsync,
		MaxPendingSteps: 1,
		// One worker, but stalled by the flood of steps; the queue bound is
		// what matters.
		MaintenanceWorkers: 1,
	})
	c, err := Dial(h.addr, WithBatchSize(64), WithMaxQueuedFrames(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	st := c.Stream("bp")
	done := make(chan error, 1)
	go func() {
		for step := 0; step < 50; step++ {
			for v := int64(0); v < 200; v++ {
				if err := st.Observe(v); err != nil {
					done <- err
					return
				}
			}
			if err := st.EndStep(); err != nil {
				done <- err
				return
			}
		}
		done <- c.Flush()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("producer deadlocked under backpressure")
	}
	eng, _ := h.db.Lookup("bp")
	if err := eng.SyncMaintenance(); err != nil {
		t.Fatal(err)
	}
	if n := eng.TotalCount(); n != 50*200 {
		t.Fatalf("count = %d, want %d", n, 50*200)
	}
	if got := eng.Steps(); got != 50 {
		t.Fatalf("steps = %d, want 50", got)
	}
}

// TestFlushCtxTimeout pins the bounded-drain escape hatch: with the
// server gone for good, FlushCtx returns the context error instead of
// waiting through reconnects forever, and a bounded-retry client's Close
// surfaces the terminal dial failure.
func TestFlushCtxTimeout(t *testing.T) {
	h := newHarness(t, hsq.Options{})
	c, err := Dial(h.addr,
		WithBatchSize(1<<20), WithFlushInterval(time.Hour),
		WithReconnectBackoff(time.Millisecond, 5*time.Millisecond),
		WithMaxReconnectAttempts(3))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stream("gone")
	for v := int64(0); v < 10; v++ {
		if err := st.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := c.FlushCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		// The reconnect budget may run out first; that terminal error is
		// an equally valid bounded outcome.
		var se *ServerError
		if err == nil || errors.As(err, &se) {
			t.Fatalf("FlushCtx = %v, want deadline or dial failure", err)
		}
	}
	if err := c.Close(); err == nil {
		t.Fatal("Close after permanent server loss = nil, want the undelivered-data error")
	}
}
