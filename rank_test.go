package hsq

import (
	"math"
	"testing"

	"repro/internal/oracle"
	"repro/internal/workload"
)

func loadedEngine(t *testing.T, eps float64, steps, batch, stream int, seed int64) (*Engine, *oracle.Oracle) {
	t.Helper()
	eng, err := New(Config{Epsilon: eps, Kappa: 3, Dir: t.TempDir(), BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniform(seed)
	orc := oracle.New(0)
	for s := 0; s < steps; s++ {
		b := workload.Fill(gen, batch)
		eng.ObserveSlice(b)
		orc.Add(b...)
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	sv := workload.Fill(gen, stream)
	eng.ObserveSlice(sv)
	orc.Add(sv...)
	return eng, orc
}

func TestRankOfValue(t *testing.T) {
	const eps = 0.02
	eng, orc := loadedEngine(t, eps, 8, 2000, 1500, 41)
	m := float64(eng.StreamCount())
	n := float64(eng.TotalCount())
	// Probe values across the whole range.
	probes := []int64{}
	for _, phi := range []float64{0.05, 0.3, 0.5, 0.7, 0.95} {
		q, err := orc.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, q)
	}
	for _, v := range probes {
		exact := orc.Rank(v)
		got, qs, err := eng.Rank(v)
		if err != nil {
			t.Fatal(err)
		}
		// Accurate rank error: stream-only, ~εm/4; assert εm/2 for slack.
		if d := math.Abs(float64(got - exact)); d > eps*m/2+1 {
			t.Errorf("Rank(%d) = %d, exact %d (Δ=%g > %g, stats %+v)", v, got, exact, d, eps*m/2+1, qs)
		}
		quick, err := eng.RankQuick(v)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(float64(quick - exact)); d > 1.5*eps*n+1 {
			t.Errorf("RankQuick(%d) = %d, exact %d (Δ=%g)", v, quick, exact, d)
		}
	}
	// Extremes.
	if r, _, err := eng.Rank(-1 << 60); err != nil || r != 0 {
		t.Errorf("Rank(min) = %d, %v", r, err)
	}
	if r, _, err := eng.Rank(1 << 60); err != nil || math.Abs(float64(r)-n) > eps*m/2+1 {
		t.Errorf("Rank(max) = %d, want ~%g", r, n)
	}
}

func TestRankEmptyEngine(t *testing.T) {
	eng, err := New(Config{Epsilon: 0.1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Rank(5); err == nil {
		t.Error("Rank on empty: want error")
	}
	if _, err := eng.RankQuick(5); err == nil {
		t.Error("RankQuick on empty: want error")
	}
	if _, _, err := eng.Quantiles([]float64{0.5}); err == nil {
		t.Error("Quantiles on empty: want error")
	}
}

func TestQuantilesBatch(t *testing.T) {
	eng, orc := loadedEngine(t, 0.02, 8, 2000, 1500, 43)
	phis := []float64{0.5, 0.95, 0.99}
	vals, qs, err := eng.Quantiles(phis)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("got %d values", len(vals))
	}
	m := float64(eng.StreamCount())
	for i, phi := range phis {
		r := int64(math.Ceil(phi * float64(orc.Count())))
		if d := float64(orc.SpanError(r, vals[i])); d > 1.5*0.02*m+1 {
			t.Errorf("phi=%g: error %g", phi, d)
		}
		// Batch answers must match the one-at-a-time answers.
		single, _, err := eng.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if single != vals[i] {
			t.Errorf("phi=%g: batch %d != single %d", phi, vals[i], single)
		}
	}
	if qs.Elapsed <= 0 {
		t.Error("missing elapsed")
	}
	// Invalid phi anywhere in the batch fails the whole call.
	if _, _, err := eng.Quantiles([]float64{0.5, -1}); err == nil {
		t.Error("invalid phi in batch: want error")
	}
	// Empty batch is a no-op.
	vals, _, err = eng.Quantiles(nil)
	if err != nil || len(vals) != 0 {
		t.Errorf("empty batch: %v, %v", vals, err)
	}
}
