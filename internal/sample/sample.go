// Package sample implements the RANDOM subsampling quantile sketch, the
// simplified Manku-Rajagopalan-Lindsay (MRL99) variant proposed by Wang,
// Luo, Yi and Cormode ("Quantiles over data streams: an experimental study",
// SIGMOD 2013), which the paper's related-work section identifies as the
// strongest randomized streaming competitor. It is included as an extra
// baseline for the ablation experiments.
//
// The sketch keeps a fixed-capacity buffer of elements sampled at rate
// 2^-level. When the buffer overflows, the level increases and the buffer is
// subsampled by an unbiased half-split. Rank estimates scale buffer ranks by
// 2^level. The guarantee is probabilistic: with buffer size k the rank error
// is O(n·sqrt(log(1/δ)/k)) with probability 1-δ.
package sample

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// Sketch is a RANDOM subsampling quantile summary. Not safe for concurrent
// use.
type Sketch struct {
	capacity int
	level    uint // sampling rate is 2^-level
	buf      []int64
	n        int64
	rng      *rand.Rand
	skip     int64 // elements remaining to skip at the current rate
}

// New returns a sketch holding at most capacity samples, with deterministic
// behaviour for a given seed.
func New(capacity int, seed int64) (*Sketch, error) {
	if capacity < 2 {
		return nil, fmt.Errorf("sample: capacity must be >= 2, got %d", capacity)
	}
	return &Sketch{
		capacity: capacity,
		buf:      make([]int64, 0, capacity),
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(capacity int, seed int64) *Sketch {
	s, err := New(capacity, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Count returns the number of stream elements observed.
func (s *Sketch) Count() int64 { return s.n }

// SampleCount returns the number of retained samples.
func (s *Sketch) SampleCount() int { return len(s.buf) }

// MemoryBytes estimates the footprint: 8 bytes per retained sample slot.
func (s *Sketch) MemoryBytes() int64 { return int64(s.capacity) * 8 }

// Reset empties the sketch.
func (s *Sketch) Reset() {
	s.buf = s.buf[:0]
	s.n = 0
	s.level = 0
	s.skip = 0
}

// Insert observes one element.
func (s *Sketch) Insert(v int64) {
	s.n++
	if s.skip > 0 {
		s.skip--
		return
	}
	s.buf = append(s.buf, v)
	if len(s.buf) > s.capacity {
		s.collapse()
	}
	s.resetSkip()
}

// resetSkip draws the gap until the next retained element: geometric with
// parameter 2^-level, drawn via inverse transform so a single uniform drives
// each gap.
func (s *Sketch) resetSkip() {
	if s.level == 0 {
		s.skip = 0
		return
	}
	p := math.Pow(0.5, float64(s.level))
	u := s.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	// Geometric: number of failures before first success.
	s.skip = int64(math.Floor(math.Log(u) / math.Log(1-p)))
}

// collapse halves the sampling rate and subsamples the buffer, keeping each
// element independently with probability 1/2.
func (s *Sketch) collapse() {
	s.level++
	kept := s.buf[:0]
	for _, v := range s.buf {
		if s.rng.Intn(2) == 0 {
			kept = append(kept, v)
		}
	}
	s.buf = kept
	// Degenerate protection: an empty buffer after collapse would lose the
	// stream entirely; extremely unlikely for capacity >= 2 but cheap to
	// guard.
	if len(s.buf) == 0 && s.capacity > 0 {
		s.level--
	}
}

// Query returns a value whose rank approximates r (clamped to [1, n]).
func (s *Sketch) Query(r int64) (int64, bool) {
	if len(s.buf) == 0 {
		return 0, false
	}
	if r < 1 {
		r = 1
	}
	if r > s.n {
		r = s.n
	}
	sorted := slices.Clone(s.buf)
	slices.Sort(sorted)
	scale := math.Pow(2, float64(s.level))
	idx := int(math.Ceil(float64(r)/scale)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], true
}

// Quantile returns an approximation of the φ-quantile.
func (s *Sketch) Quantile(phi float64) (int64, bool) {
	if s.n == 0 {
		return 0, false
	}
	r := int64(math.Ceil(phi * float64(s.n)))
	return s.Query(r)
}
