package sample

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0); err == nil {
		t.Error("capacity 1: want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0): want panic")
		}
	}()
	MustNew(0, 0)
}

func TestSmallStreamExact(t *testing.T) {
	// While the stream fits in the buffer, answers are exact.
	s := MustNew(1000, 42)
	for i := int64(1); i <= 100; i++ {
		s.Insert(i)
	}
	if s.SampleCount() != 100 {
		t.Errorf("SampleCount = %d", s.SampleCount())
	}
	for _, phi := range []float64{0.1, 0.5, 0.9, 1.0} {
		want := int64(math.Ceil(phi * 100))
		got, ok := s.Quantile(phi)
		if !ok || got != want {
			t.Errorf("Quantile(%.1f) = %d, want %d", phi, got, want)
		}
	}
}

func TestEmpty(t *testing.T) {
	s := MustNew(10, 1)
	if _, ok := s.Query(1); ok {
		t.Error("Query on empty: want ok=false")
	}
	if _, ok := s.Quantile(0.5); ok {
		t.Error("Quantile on empty: want ok=false")
	}
}

func TestLargeStreamApproximate(t *testing.T) {
	s := MustNew(4096, 7)
	rng := rand.New(rand.NewSource(21))
	n := 200000
	data := make([]int64, n)
	for i := range data {
		data[i] = rng.Int63n(1 << 30)
		s.Insert(data[i])
	}
	if s.SampleCount() > 4096 {
		t.Errorf("buffer overflow: %d", s.SampleCount())
	}
	slices.Sort(data)
	// With k=4096 samples the expected rank error is ~n/sqrt(k) ≈ 1.6%;
	// assert a loose 6% to keep the test deterministic-ish across seeds.
	for _, phi := range []float64{0.25, 0.5, 0.75, 0.95} {
		r := int64(math.Ceil(phi * float64(n)))
		v, ok := s.Query(r)
		if !ok {
			t.Fatal("not ok")
		}
		got := int64(sort.Search(len(data), func(i int) bool { return data[i] > v }))
		if math.Abs(float64(got-r)) > 0.06*float64(n) {
			t.Errorf("phi=%.2f: rank %d vs target %d", phi, got, r)
		}
	}
}

func TestReset(t *testing.T) {
	s := MustNew(16, 3)
	for i := int64(0); i < 1000; i++ {
		s.Insert(i)
	}
	s.Reset()
	if s.Count() != 0 || s.SampleCount() != 0 {
		t.Error("Reset incomplete")
	}
	s.Insert(5)
	if v, ok := s.Query(1); !ok || v != 5 {
		t.Errorf("post-reset Query = %d,%v", v, ok)
	}
}

func TestMemoryBytes(t *testing.T) {
	s := MustNew(100, 1)
	if s.MemoryBytes() != 800 {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes())
	}
}

// Property: answers are always elements that were actually inserted.
func TestQuickAnswersAreInserted(t *testing.T) {
	f := func(raw []int32, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		s := MustNew(32, seed)
		seen := make(map[int64]bool, len(raw))
		for _, x := range raw {
			s.Insert(int64(x))
			seen[int64(x)] = true
		}
		v, ok := s.Quantile(0.5)
		return ok && seen[v]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() []int64 {
		s := MustNew(64, 99)
		for i := int64(0); i < 50000; i++ {
			s.Insert(i % 1000)
		}
		out := make([]int64, 0, 3)
		for _, phi := range []float64{0.25, 0.5, 0.75} {
			v, _ := s.Quantile(phi)
			out = append(out, v)
		}
		return out
	}
	a, b := run(), run()
	if !slices.Equal(a, b) {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}
