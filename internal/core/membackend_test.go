package core

import (
	"slices"
	"sort"
	"testing"

	"repro/internal/disk"
	"repro/internal/gk"
	"repro/internal/partition"
)

// TestAccurateQueryMemBackend runs the Figure 3 query pipeline with the
// warehouse on the in-memory backend: results and error bounds must be
// identical to the file-backed runs.
func TestAccurateQueryMemBackend(t *testing.T) {
	dev, err := disk.NewManagerOn(disk.NewMemBackend(), 64)
	if err != nil {
		t.Fatal(err)
	}
	store, err := partition.NewStore(dev, partition.Config{Kappa: 10, Eps1: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(lo, hi int64) []int64 {
		out := make([]int64, 0, hi-lo+1)
		for v := lo; v <= hi; v++ {
			out = append(out, v)
		}
		return out
	}
	var all []int64
	for i, batch := range [][]int64{mk(1, 100), mk(101, 200), mk(2, 201)} {
		if _, err := store.AddBatch(batch, i+1); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
	}
	g := gk.MustNew(1.0 / 16)
	stream := mk(401, 600)
	for _, v := range stream {
		g.Insert(v)
	}
	all = append(all, stream...)
	slices.Sort(all)

	const eps = 0.5
	m := int64(len(stream))
	ss := StreamSummary(g, 0.125)
	c := BuildCombined(store.Entries(), ss, m, 0.25, 0.125)

	for _, r := range []int64{1, 100, 250, 400, 500, int64(len(all))} {
		ans, cost, err := AccurateQuery(c, eps, r, true)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		// The answer's true rank must be within ε·m of the target.
		rank := int64(sort.Search(len(all), func(i int) bool { return all[i] > ans }))
		if diff := rank - r; diff > int64(eps*float64(m)) || diff < -int64(eps*float64(m)) {
			t.Errorf("rank %d: answer %d has rank %d (off by %d, bound %g)",
				r, ans, rank, diff, eps*float64(m))
		}
		if cost.RandReads < 0 {
			t.Errorf("rank %d: negative reads", r)
		}
	}
	if dev.Stats().RandReads == 0 {
		t.Error("accurate queries issued no random reads on mem backend")
	}
}
