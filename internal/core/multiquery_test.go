package core

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/partition"
)

// phiRanks maps a φ set to rank targets over n elements.
func phiRanks(phis []float64, n int64) []int64 {
	rs := make([]int64, len(phis))
	for i, phi := range phis {
		rs[i] = int64(math.Ceil(phi * float64(n)))
	}
	return rs
}

// TestMultiQueryGuarantee: every answer of a shared sweep obeys the same
// 1.5·εm bound as a single-target query, with the targets deliberately
// unsorted and containing a duplicate.
func TestMultiQueryGuarantee(t *testing.T) {
	for _, seed := range []int64{5, 17, 29} {
		f := buildFixture(t, seed, 0.05, 12, 400, 800)
		c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
		n := int64(len(f.all))
		rs := phiRanks([]float64{0.9, 0.1, 0.5, 0.99, 0.5, 0.25}, n)
		ans, cost, err := AccurateMultiQueryOpts(c, f.eps, rs, QueryOptions{PinBlocks: true})
		if err != nil {
			t.Fatal(err)
		}
		bound := 1.5 * f.eps * float64(f.m)
		for i, v := range ans {
			hi := f.rankOf(v)
			lo := int64(sort.Search(len(f.all), func(j int) bool { return f.all[j] >= v })) + 1
			if float64(hi) < float64(rs[i])-bound || float64(lo) > float64(rs[i])+bound {
				t.Errorf("seed=%d target %d (r=%d): answer %d rank span [%d,%d] outside ±%.0f",
					seed, i, rs[i], v, lo, hi, bound)
			}
		}
		// Duplicate targets (index 2 and 4 are both φ=0.5) share one slot set.
		if ans[2] != ans[4] {
			t.Errorf("duplicate targets diverged: %d vs %d", ans[2], ans[4])
		}
		if cost.Truncated {
			t.Error("unbudgeted sweep reported Truncated")
		}
	}
}

// TestMultiQueryProbeSharing is the tentpole claim at the core layer. Two
// regimes matter:
//
//   - Targets whose filter intervals overlap (a dashboard's confidence band
//     around a percentile) share their bisection prefix and often a single
//     accepting probe, so the sweep must beat k single-target calls by ≥2×.
//   - Spread targets (p25/p50/p75) have disjoint filters; no algorithm can
//     resolve them with fewer than one accepting probe each, so the sweep
//     must simply never cost MORE than the k single-target calls (the
//     first-live-midpoint policy guarantees the lowest target walks exactly
//     its solo probe sequence).
func TestMultiQueryProbeSharing(t *testing.T) {
	f := buildFixture(t, 41, 0.05, 12, 400, 100)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	probes := func(rs []int64) (single, shared int) {
		for _, r := range rs {
			_, cost, err := AccurateQueryOpts(c, f.eps, r, QueryOptions{PinBlocks: true})
			if err != nil {
				t.Fatal(err)
			}
			single += cost.Iterations
		}
		_, mcost, err := AccurateMultiQueryOpts(c, f.eps, rs, QueryOptions{PinBlocks: true})
		if err != nil {
			t.Fatal(err)
		}
		return single, mcost.Iterations
	}

	band := phiRanks([]float64{0.4995, 0.5, 0.5005}, n)
	single, shared := probes(band)
	if shared*2 > single {
		t.Errorf("banded k=3: shared sweep took %d probes, singles took %d — want ≥2× sharing", shared, single)
	}
	t.Logf("banded k=3: %d shared probes vs %d single-target probes", shared, single)

	for _, phis := range [][]float64{
		{0.25, 0.5, 0.75},
		{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95, 0.99},
	} {
		rs := phiRanks(phis, n)
		single, shared := probes(rs)
		if shared > single {
			t.Errorf("spread k=%d: shared sweep took %d probes, singles took %d — sweep must never cost more",
				len(rs), shared, single)
		}
		t.Logf("spread k=%d: %d shared probes vs %d single-target probes", len(rs), shared, single)
	}
}

// TestMultiQueryMemoRepeatZeroIO: with a probe memo attached, repeating the
// identical query resolves every probe from the memo — no backend reads, no
// cache hits, no block skips, cursors never even open.
func TestMultiQueryMemoRepeatZeroIO(t *testing.T) {
	f := buildFixture(t, 53, 0.05, 10, 300, 800)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	rs := phiRanks([]float64{0.1, 0.5, 0.9}, n)
	opts := QueryOptions{PinBlocks: true, Memo: partition.NewProbeMemo(4096)}

	first, fcost, err := AccurateMultiQueryOpts(c, f.eps, rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fcost.RandReads == 0 {
		t.Fatal("cold query did no backend reads — fixture too small to test the memo")
	}
	second, scost, err := AccurateMultiQueryOpts(c, f.eps, rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("target %d: memoized answer %d != cold answer %d", i, second[i], first[i])
		}
	}
	if scost.RandReads != 0 || scost.CacheHits != 0 || scost.SkippedBlocks != 0 {
		t.Errorf("repeat cost %+v; want zero I/O of any kind", scost)
	}
	if scost.MemoHits != scost.Iterations || scost.MemoHits == 0 {
		t.Errorf("repeat: %d memo hits over %d probes; want every probe memoized", scost.MemoHits, scost.Iterations)
	}
}

// TestMultiQueryMemoSpendsNoBudget is the budget-accounting regression:
// only reads that reach the backend spend MaxReads, so a fully memoized
// sweep runs to completion under a budget it could never afford cold.
func TestMultiQueryMemoSpendsNoBudget(t *testing.T) {
	f := buildFixture(t, 59, 0.05, 10, 300, 800)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	rs := phiRanks([]float64{0.2, 0.5, 0.8}, n)
	memo := partition.NewProbeMemo(4096)

	full, _, err := AccurateMultiQueryOpts(c, f.eps, rs, QueryOptions{PinBlocks: true, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	// Cold under MaxReads: 1 this sweep must truncate...
	_, tcost, err := AccurateMultiQueryOpts(c, f.eps, rs, QueryOptions{PinBlocks: true, MaxReads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !tcost.Truncated {
		t.Fatal("cold sweep under MaxReads=1 did not truncate — budget test is vacuous")
	}
	// ...but warm it completes: memo hits are the absence of an access.
	got, cost, err := AccurateMultiQueryOpts(c, f.eps, rs, QueryOptions{PinBlocks: true, MaxReads: 1, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Truncated {
		t.Errorf("memoized sweep truncated under MaxReads=1 (cost %+v)", cost)
	}
	for i := range full {
		if got[i] != full[i] {
			t.Errorf("target %d: budgeted memoized answer %d != unbudgeted %d", i, got[i], full[i])
		}
	}
}

// TestMultiQueryParallelMatchesSerial: the parallel sweep walks the same
// probe tree as the serial one (independent subranges, same midpoints), so
// answers must be identical.
func TestMultiQueryParallelMatchesSerial(t *testing.T) {
	f := buildFixture(t, 61, 0.05, 10, 300, 800)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	rs := phiRanks([]float64{0.05, 0.25, 0.5, 0.75, 0.95}, n)
	sv, _, err := AccurateMultiQueryOpts(c, f.eps, rs, QueryOptions{PinBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	pv, _, err := AccurateMultiQueryOpts(c, f.eps, rs, QueryOptions{PinBlocks: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sv {
		if sv[i] != pv[i] {
			t.Errorf("target %d: serial %d != parallel %d", i, sv[i], pv[i])
		}
	}
}

// TestMultiQueryTruncatedStaysInFilters: a budget-capped sweep's answers
// stay within the Lemma 4 filter spread for every target.
func TestMultiQueryTruncatedStaysInFilters(t *testing.T) {
	f := buildFixture(t, 67, 0.02, 10, 500, 1000)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	rs := phiRanks([]float64{0.3, 0.5, 0.7}, n)
	ans, cost, err := AccurateMultiQueryOpts(c, f.eps, rs, QueryOptions{PinBlocks: true, MaxReads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !cost.Truncated {
		t.Fatal("MaxReads=1 sweep did not truncate")
	}
	spread := 4 * f.eps * float64(n)
	for i, v := range ans {
		if got := f.rankOf(v); math.Abs(float64(got-rs[i])) > spread {
			t.Errorf("target %d: truncated rank %d vs r=%d beyond 4εN=%g", i, got, rs[i], spread)
		}
	}
}

// TestMultiQueryInterrupt: the interrupt hook aborts the sweep with the
// hook's error.
func TestMultiQueryInterrupt(t *testing.T) {
	f := buildFixture(t, 71, 0.05, 10, 300, 800)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	rs := phiRanks([]float64{0.1, 0.5, 0.9}, n)
	boom := errors.New("interrupted")
	_, _, err := AccurateMultiQueryOpts(c, f.eps, rs, QueryOptions{
		PinBlocks: true,
		Interrupt: func() error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the interrupt error", err)
	}
}

// TestMultiQueryEmpty: no targets, no work.
func TestMultiQueryEmpty(t *testing.T) {
	f := buildFixture(t, 73, 0.1, 4, 100, 200)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	ans, cost, err := AccurateMultiQueryOpts(c, f.eps, nil, QueryOptions{})
	if err != nil || len(ans) != 0 || cost.Iterations != 0 {
		t.Fatalf("empty sweep: ans=%v cost=%+v err=%v", ans, cost, err)
	}
}
