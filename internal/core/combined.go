// Package core implements the paper's query algorithms over the historical
// summaries (HS), the stream summary (SS), and the on-disk partition store:
// the combined summary TS with its rank bounds L/U (Lemma 2), the quick
// response (Algorithm 5), filter generation (Algorithm 7) and the accurate
// response's value-space bisection with per-partition disk searches
// (Algorithms 6 and 8).
package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/gk"
	"repro/internal/partition"
)

// StreamSummary extracts SS from the GK sketch (Algorithm 4,
// StreamSummary): β₂ = ⌈1/ε₂ + 1⌉ elements — the exact stream minimum plus
// the elements at approximate ranks i·ε₂m. The sketch must have been run
// with error parameter ε₂/2; querying rank i·ε₂m + ε₂m/2 with a two-sided
// ±ε₂m/2 guarantee yields exactly Lemma 1's band
// [i·ε₂m, (i+1)·ε₂m] for SS[i].
func StreamSummary(g *gk.Sketch, eps2 float64) []int64 {
	m := g.Count()
	if m == 0 {
		return nil
	}
	beta2 := beta(eps2)
	ss := make([]int64, 0, beta2)
	mn, _ := g.Min()
	ss = append(ss, mn)
	em := eps2 * float64(m)
	for i := 1; i < beta2; i++ {
		r := int64(float64(i)*em + em/2)
		if r < 1 {
			r = 1
		}
		if r > m {
			r = m
		}
		v, _ := g.Query(r)
		ss = append(ss, v)
	}
	slices.Sort(ss)
	return ss
}

// beta returns ⌈1/ε + 1⌉.
func beta(eps float64) int {
	return int(math.Ceil(1.0/eps + 1))
}

// StreamPiece is one memory-resident stream-side source of the combined
// summary: the live GK sketch's summary, or the frozen summary of a batch
// that was sealed at an end-of-step but not yet installed as an on-disk
// partition by background maintenance. Each piece carries Lemma 1's
// one-sided ε₂·M rank bands independently; queries treat every piece like
// "the stream" — estimate-only, no disk probes — so snapshot-isolated reads
// stay correct while installs run behind them.
type StreamPiece struct {
	// SS is the piece's summary (sorted): β₂ elements at approximate ranks
	// i·ε₂·M, as extracted by StreamSummary.
	SS []int64
	// M is the number of elements the piece covers.
	M int64
}

// tsItem is one element of the combined summary TS with its source: src ==
// -1-j for stream piece j, otherwise the index of the historical summary it
// came from.
type tsItem struct {
	v   int64
	src int
}

// Combined is TS — the sorted union of all historical summaries and the
// stream-side piece summaries — together with the per-item rank bounds L
// and U of Lemma 2.
type Combined struct {
	items []tsItem
	lower []float64 // L_i
	upper []float64 // U_i

	sums    []*partition.Summary
	streams []StreamPiece

	m     int64 // total stream-side size (Σ piece M)
	histN int64 // historical size
	eps1  float64
	eps2  float64
}

// N returns the total data size n + m.
func (c *Combined) N() int64 { return c.histN + c.m }

// Len returns δ, the number of TS entries.
func (c *Combined) Len() int { return len(c.items) }

// Value returns TS[i].
func (c *Combined) Value(i int) int64 { return c.items[i].v }

// Bounds returns (L_i, U_i).
func (c *Combined) Bounds(i int) (float64, float64) { return c.lower[i], c.upper[i] }

// Epsilon returns the composed error parameter ε = ε₁ + 2ε₂ the summary was
// built under. The composition is merge-invariant: TS over any union of
// summaries built with the same (ε₁, ε₂) — other partitions, other streams,
// other shards — carries the same per-item rank bands, which is why the
// query layer can report one ε for a merged multi-stream answer.
func (c *Combined) Epsilon() float64 { return c.eps1 + 2*c.eps2 }

// QuickRankError returns the worst-case rank error of a QuickQuery answer
// over this summary: ⌈1.5·ε·N⌉ (the paper's quick-response guarantee,
// Lemma 3). For a merged summary N is the union size, so this is the
// composed bound a cross-stream merged or grouped answer is subject to.
func (c *Combined) QuickRankError() int64 {
	return int64(math.Ceil(1.5 * c.Epsilon() * float64(c.N())))
}

// BuildCombined constructs TS over one stream summary — the original
// single-piece shape, kept for callers and tests that have no maintenance
// backlog. It is BuildPieces with a single piece.
func BuildCombined(sums []*partition.Summary, ss []int64, m int64, eps1, eps2 float64) *Combined {
	var pieces []StreamPiece
	if m > 0 || len(ss) > 0 {
		pieces = []StreamPiece{{SS: ss, M: m}}
	}
	return BuildPieces(sums, pieces, eps1, eps2)
}

// BuildVersion constructs TS over a pinned store version plus the
// memory-resident stream pieces — the snapshot-isolated query entry point:
// the version's partition set and summaries are immutable, so the query
// runs entirely outside the engine's write lock while installs and merges
// publish newer versions behind it.
func BuildVersion(v *partition.Version, pieces []StreamPiece, eps1, eps2 float64) *Combined {
	return BuildPieces(v.Entries(), pieces, eps1, eps2)
}

// BuildPieces constructs TS and computes every L_i and U_i with one sweep
// (the formulas preceding Lemma 2, with the stream term summed over every
// memory-resident piece):
//
//	L_i = Σ_j ε₂·m_j·b_j·(α_{S_j} − 1) + Σ_{P: α_P>0} m_P·ε₁·(α_P − 1)
//	U_i = Σ_j ε₂·m_j·b_j·(α_{S_j} + 1) + Σ_{P: α_P>0} m_P·ε₁·α_P
//
// where α_{S_j} (resp. α_P) counts summary elements ≤ TS[i] from stream
// piece j (resp. partition P) and b_j = 1 iff α_{S_j} > 0. With a single
// piece this is exactly the paper's bound; each extra sealed-batch piece
// contributes its own independent ε₂·m_j band.
func BuildPieces(sums []*partition.Summary, pieces []StreamPiece, eps1, eps2 float64) *Combined {
	var histN int64
	for _, s := range sums {
		histN += s.Part.Count
	}
	var m int64
	for _, p := range pieces {
		m += p.M
	}
	c := &Combined{sums: sums, streams: pieces, m: m, histN: histN, eps1: eps1, eps2: eps2}

	total := 0
	for _, p := range pieces {
		total += len(p.SS)
	}
	for _, s := range sums {
		total += len(s.Values)
	}
	c.items = make([]tsItem, 0, total)
	for j, p := range pieces {
		for _, v := range p.SS {
			c.items = append(c.items, tsItem{v, -1 - j})
		}
	}
	for si, s := range sums {
		for _, v := range s.Values {
			c.items = append(c.items, tsItem{v, si})
		}
	}
	slices.SortFunc(c.items, func(a, b tsItem) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return a.src - b.src
		}
	})

	c.lower = make([]float64, len(c.items))
	c.upper = make([]float64, len(c.items))
	// Running terms, updated as prefix counts per source grow.
	var streamL, streamU float64 // Σ_j ε₂·m_j·b_j·(α_j∓1) terms
	var histL, histU float64     // Σ m_P·ε₁·(α_P−1) and Σ m_P·ε₁·α_P
	alphaS := make([]int, len(pieces))
	alphaP := make([]int, len(sums))
	for i, it := range c.items {
		if it.src < 0 {
			j := -1 - it.src
			em2 := eps2 * float64(pieces[j].M)
			alphaS[j]++
			if alphaS[j] == 1 {
				// b_j flips to 1: L gains 0 (α−1 = 0), U gains 2·ε₂m_j.
				streamU += 2 * em2
			} else {
				streamL += em2
				streamU += em2
			}
		} else {
			w := float64(sums[it.src].Part.Count) * eps1
			alphaP[it.src]++
			if alphaP[it.src] == 1 {
				histU += w // α_P = 1 contributes w to U, 0 to L
			} else {
				histL += w
				histU += w
			}
		}
		c.lower[i] = streamL + histL
		c.upper[i] = streamU + histU
	}
	return c
}

// QuickQuery implements Algorithm 5: return TS[j] for the smallest j with
// L_j ≥ r, or the last element if none. The returned element's rank is
// within 1.5·εN of r (Lemma 3).
func (c *Combined) QuickQuery(r int64) (int64, error) {
	if len(c.items) == 0 {
		return 0, fmt.Errorf("core: quick query on empty summary")
	}
	fr := float64(r)
	j := sort.Search(len(c.lower), func(i int) bool { return c.lower[i] >= fr })
	if j == len(c.lower) {
		j = len(c.lower) - 1
	}
	return c.items[j].v, nil
}

// Filters implements Algorithm 7: values u, v from TS with rank(u,T) ≤ r ≤
// rank(v,T) and rank spread < 4εN (Lemma 4). When no U_i ≤ r exists the
// global minimum is used; when no L_i ≥ r exists the global maximum is used.
func (c *Combined) Filters(r int64) (u, v int64, err error) {
	if len(c.items) == 0 {
		return 0, 0, fmt.Errorf("core: filters on empty summary")
	}
	fr := float64(r)
	// x: largest i with U_i ≤ r. U is non-decreasing, so binary search works.
	x := sort.Search(len(c.upper), func(i int) bool { return c.upper[i] > fr }) - 1
	if x < 0 {
		x = 0
	}
	// y: smallest i with L_i ≥ r.
	y := sort.Search(len(c.lower), func(i int) bool { return c.lower[i] >= fr })
	if y == len(c.lower) {
		y = len(c.lower) - 1
	}
	u, v = c.items[x].v, c.items[y].v
	if u > v {
		// Only possible at the clamped extremes; normalize.
		u, v = v, u
	}
	return u, v, nil
}

// StreamRankEstimate returns ρ₂ of Algorithm 8, summed across every
// memory-resident stream piece: Σ_j ε₂·m_j·|{SS_j ≤ z}|.
func (c *Combined) StreamRankEstimate(z int64) float64 {
	var rho float64
	for _, p := range c.streams {
		cnt := sort.Search(len(p.SS), func(i int) bool { return p.SS[i] > z })
		rho += float64(cnt) * c.eps2 * float64(p.M)
	}
	return rho
}
