// Package core implements the paper's query algorithms over the historical
// summaries (HS), the stream summary (SS), and the on-disk partition store:
// the combined summary TS with its rank bounds L/U (Lemma 2), the quick
// response (Algorithm 5), filter generation (Algorithm 7) and the accurate
// response's value-space bisection with per-partition disk searches
// (Algorithms 6 and 8).
package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/gk"
	"repro/internal/partition"
)

// StreamSummary extracts SS from the GK sketch (Algorithm 4,
// StreamSummary): β₂ = ⌈1/ε₂ + 1⌉ elements — the exact stream minimum plus
// the elements at approximate ranks i·ε₂m. The sketch must have been run
// with error parameter ε₂/2; querying rank i·ε₂m + ε₂m/2 with a two-sided
// ±ε₂m/2 guarantee yields exactly Lemma 1's band
// [i·ε₂m, (i+1)·ε₂m] for SS[i].
func StreamSummary(g *gk.Sketch, eps2 float64) []int64 {
	m := g.Count()
	if m == 0 {
		return nil
	}
	beta2 := beta(eps2)
	ss := make([]int64, 0, beta2)
	mn, _ := g.Min()
	ss = append(ss, mn)
	em := eps2 * float64(m)
	for i := 1; i < beta2; i++ {
		r := int64(float64(i)*em + em/2)
		if r < 1 {
			r = 1
		}
		if r > m {
			r = m
		}
		v, _ := g.Query(r)
		ss = append(ss, v)
	}
	slices.Sort(ss)
	return ss
}

// beta returns ⌈1/ε + 1⌉.
func beta(eps float64) int {
	return int(math.Ceil(1.0/eps + 1))
}

// tsItem is one element of the combined summary TS with its source: src ==
// -1 for the stream summary, otherwise the index of the historical summary
// it came from.
type tsItem struct {
	v   int64
	src int
}

// Combined is TS — the sorted union of all historical summaries and the
// stream summary — together with the per-item rank bounds L and U of
// Lemma 2.
type Combined struct {
	items []tsItem
	lower []float64 // L_i
	upper []float64 // U_i

	sums []*partition.Summary
	ss   []int64

	m     int64 // stream size
	histN int64 // historical size
	eps1  float64
	eps2  float64
}

// N returns the total data size n + m.
func (c *Combined) N() int64 { return c.histN + c.m }

// Len returns δ, the number of TS entries.
func (c *Combined) Len() int { return len(c.items) }

// Value returns TS[i].
func (c *Combined) Value(i int) int64 { return c.items[i].v }

// Bounds returns (L_i, U_i).
func (c *Combined) Bounds(i int) (float64, float64) { return c.lower[i], c.upper[i] }

// BuildCombined constructs TS and computes every L_i and U_i with one sweep
// (the formulas preceding Lemma 2):
//
//	L_i = ε₂·m·b·(α_S − 1) + Σ_{P: α_P>0} m_P·ε₁·(α_P − 1)
//	U_i = ε₂·m·b·(α_S + 1) + Σ_{P: α_P>0} m_P·ε₁·α_P
//
// where α_S (resp. α_P) counts summary elements ≤ TS[i] from the stream
// (resp. partition P) and b = 1 iff α_S > 0.
func BuildCombined(sums []*partition.Summary, ss []int64, m int64, eps1, eps2 float64) *Combined {
	var histN int64
	for _, s := range sums {
		histN += s.Part.Count
	}
	c := &Combined{sums: sums, ss: ss, m: m, histN: histN, eps1: eps1, eps2: eps2}

	total := len(ss)
	for _, s := range sums {
		total += len(s.Values)
	}
	c.items = make([]tsItem, 0, total)
	for _, v := range ss {
		c.items = append(c.items, tsItem{v, -1})
	}
	for si, s := range sums {
		for _, v := range s.Values {
			c.items = append(c.items, tsItem{v, si})
		}
	}
	slices.SortFunc(c.items, func(a, b tsItem) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return a.src - b.src
		}
	})

	c.lower = make([]float64, len(c.items))
	c.upper = make([]float64, len(c.items))
	em2 := eps2 * float64(m)
	// Running terms, updated as prefix counts per source grow.
	var streamL, streamU float64 // ε₂m·b·(α_S∓1) terms
	var histL, histU float64     // Σ m_P·ε₁·(α_P−1) and Σ m_P·ε₁·α_P
	alphaS := 0
	alphaP := make([]int, len(sums))
	for i, it := range c.items {
		if it.src < 0 {
			alphaS++
			if alphaS == 1 {
				streamL = 0       // b·(α_S−1) = 0
				streamU = 2 * em2 // b·(α_S+1) = 2
			} else {
				streamL += em2
				streamU += em2
			}
		} else {
			w := float64(sums[it.src].Part.Count) * eps1
			alphaP[it.src]++
			if alphaP[it.src] == 1 {
				histU += w // α_P = 1 contributes w to U, 0 to L
			} else {
				histL += w
				histU += w
			}
		}
		c.lower[i] = streamL + histL
		c.upper[i] = streamU + histU
	}
	return c
}

// QuickQuery implements Algorithm 5: return TS[j] for the smallest j with
// L_j ≥ r, or the last element if none. The returned element's rank is
// within 1.5·εN of r (Lemma 3).
func (c *Combined) QuickQuery(r int64) (int64, error) {
	if len(c.items) == 0 {
		return 0, fmt.Errorf("core: quick query on empty summary")
	}
	fr := float64(r)
	j := sort.Search(len(c.lower), func(i int) bool { return c.lower[i] >= fr })
	if j == len(c.lower) {
		j = len(c.lower) - 1
	}
	return c.items[j].v, nil
}

// Filters implements Algorithm 7: values u, v from TS with rank(u,T) ≤ r ≤
// rank(v,T) and rank spread < 4εN (Lemma 4). When no U_i ≤ r exists the
// global minimum is used; when no L_i ≥ r exists the global maximum is used.
func (c *Combined) Filters(r int64) (u, v int64, err error) {
	if len(c.items) == 0 {
		return 0, 0, fmt.Errorf("core: filters on empty summary")
	}
	fr := float64(r)
	// x: largest i with U_i ≤ r. U is non-decreasing, so binary search works.
	x := sort.Search(len(c.upper), func(i int) bool { return c.upper[i] > fr }) - 1
	if x < 0 {
		x = 0
	}
	// y: smallest i with L_i ≥ r.
	y := sort.Search(len(c.lower), func(i int) bool { return c.lower[i] >= fr })
	if y == len(c.lower) {
		y = len(c.lower) - 1
	}
	u, v = c.items[x].v, c.items[y].v
	if u > v {
		// Only possible at the clamped extremes; normalize.
		u, v = v, u
	}
	return u, v, nil
}

// StreamRankEstimate returns ρ₂ of Algorithm 8: ε₂·m times the number of SS
// entries ≤ z.
func (c *Combined) StreamRankEstimate(z int64) float64 {
	cnt := sort.Search(len(c.ss), func(i int) bool { return c.ss[i] > z })
	return float64(cnt) * c.eps2 * float64(c.m)
}
