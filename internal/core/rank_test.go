package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuickRank(t *testing.T) {
	f := buildFixture(t, 101, 0.1, 6, 300, 600)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := float64(len(f.all))
	for _, idx := range []int{0, 100, 500, len(f.all) / 2, len(f.all) - 1} {
		v := f.all[idx]
		exact := float64(f.rankOf(v))
		got := float64(c.QuickRank(v))
		if math.Abs(got-exact) > 1.5*f.eps*n+1 {
			t.Errorf("QuickRank(%d) = %g, exact %g", v, got, exact)
		}
	}
	// Below the minimum the rank is 0.
	if got := c.QuickRank(f.all[0] - 1); got != 0 {
		t.Errorf("QuickRank(below min) = %d", got)
	}
}

func TestRankOfValue(t *testing.T) {
	f := buildFixture(t, 103, 0.05, 8, 400, 1000)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	em := f.eps * float64(f.m)
	for _, idx := range []int{0, 50, 1000, len(f.all) / 2, len(f.all) - 1} {
		v := f.all[idx]
		exact := float64(f.rankOf(v))
		got, cost, err := RankOfValue(c, v, true)
		if err != nil {
			t.Fatal(err)
		}
		// Historical part is exact; only the stream estimate errs (≤ εm/4;
		// assert εm/2).
		if math.Abs(float64(got)-exact) > em/2+1 {
			t.Errorf("RankOfValue(%d) = %d, exact %g (cost %+v)", v, got, exact, cost)
		}
	}
}

// Property: RankOfValue is monotone non-decreasing in v.
func TestQuickRankOfValueMonotone(t *testing.T) {
	f := buildFixture(t, 107, 0.1, 5, 200, 400)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	prop := func(aRaw, bRaw uint32) bool {
		a := int64(aRaw) % (1 << 24)
		b := int64(bRaw) % (1 << 24)
		if a > b {
			a, b = b, a
		}
		ra, _, err := RankOfValue(c, a, true)
		if err != nil {
			return false
		}
		rb, _, err := RankOfValue(c, b, true)
		if err != nil {
			return false
		}
		return ra <= rb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAccurateQueryParallelMatchesSerial at the core layer.
func TestAccurateQueryParallelMatchesSerial(t *testing.T) {
	f := buildFixture(t, 109, 0.05, 10, 300, 800)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		r := int64(math.Ceil(phi * float64(n)))
		sv, _, err := AccurateQueryOpts(c, f.eps, r, QueryOptions{PinBlocks: true})
		if err != nil {
			t.Fatal(err)
		}
		pv, _, err := AccurateQueryOpts(c, f.eps, r, QueryOptions{PinBlocks: true, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if sv != pv {
			t.Errorf("phi=%g: serial %d != parallel %d", phi, sv, pv)
		}
	}
}

// TestTruncatedStaysInFilters: an I/O-capped query must return a value
// whose rank lies within the Lemma 4 filter spread.
func TestTruncatedStaysInFilters(t *testing.T) {
	f := buildFixture(t, 113, 0.02, 10, 500, 1000)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	for _, phi := range []float64{0.3, 0.5, 0.7} {
		r := int64(math.Ceil(phi * float64(n)))
		v, cost, err := AccurateQueryOpts(c, f.eps, r, QueryOptions{PinBlocks: true, MaxReads: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := f.rankOf(v)
		spread := 4 * f.eps * float64(n)
		if math.Abs(float64(got-r)) > spread {
			t.Errorf("phi=%g: truncated rank %d vs r=%d beyond 4εN=%g (cost %+v)", phi, got, r, spread, cost)
		}
	}
}

// Quick property: RankOfValue agrees with the exact oracle rank up to εm/2
// for arbitrary probe values (not just data elements).
func TestQuickRankOfValueAccuracy(t *testing.T) {
	f := buildFixture(t, 127, 0.05, 6, 300, 900)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	em := f.eps * float64(f.m)
	prop := func(raw uint32) bool {
		v := int64(raw) % (1 << 24)
		got, _, err := RankOfValue(c, v, true)
		if err != nil {
			return false
		}
		exact := f.rankOf(v)
		return math.Abs(float64(got-exact)) <= em/2+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickRankEmpty(t *testing.T) {
	c := BuildCombined(nil, nil, 0, 0.1, 0.1)
	if got := c.QuickRank(5); got != 0 {
		t.Errorf("QuickRank on empty = %d", got)
	}
	if _, _, err := RankOfValue(c, 5, true); err != nil {
		t.Errorf("RankOfValue on empty combined should be 0, got err %v", err)
	}
	// sortedness helper sanity
	if !sort.SliceIsSorted([]int64{}, func(i, j int) bool { return false }) {
		t.Error("vacuous")
	}
}
