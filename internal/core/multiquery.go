package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/partition"
)

// This file implements the shared multi-target accurate query: one
// value-space bisection sweep resolving every rank target together
// (AccurateMultiQueryOpts), with an optional per-snapshot rank-probe memo
// (QueryOptions.Memo). The single-target AccurateQueryOpts in query.go is
// the k=1 case of this sweep.

// mtTarget is one rank target of a shared sweep: its current bisection
// interval plus the result slots it fills (duplicate φ values collapse to
// one target with several slots).
type mtTarget struct {
	r    int64
	fr   float64
	u, v int64
	out  []int
}

// sweep carries the shared state of one multi-target bisection: the
// combined summary, the acceptance band, the (atomic) backend-read budget
// and the aggregated cost counters. Parallel subranges run against
// independent cursor sets but share the budget and the counters.
type sweep struct {
	c    *Combined
	em   float64
	opts QueryOptions
	ans  []int64

	reads     atomic.Int64 // backend reads spent, across all cursor sets
	iters     atomic.Int64
	memoHits  atomic.Int64
	truncated atomic.Bool

	mu                       sync.Mutex
	ioReads, ioHits, ioSkips int // folded in by cursorSet.close
}

// AccurateMultiQueryOpts answers several rank targets over one combined
// summary with a single shared bisection sweep: each probe at a midpoint z
// narrows every target whose interval brackets z, so k targets cost about
// log(filter range) + k probes instead of k·log(filter range). Results are
// positionally aligned with rs; the cost aggregates the whole sweep.
//
// The options compose exactly as in the single-target query: MaxReads is
// one backend-read budget for the whole sweep (once spent, targets still
// in flight at the tripping probe snap to its midpoint and every other
// unresolved target is answered from the in-memory summary alone, with
// Truncated set); Interrupt is polled before every probe; Parallel probes
// partitions concurrently within a probe AND walks independent subranges
// of the sweep concurrently, each with its own cursor set. Memo, when
// non-nil, resolves repeat probes with zero I/O (see QueryOptions.Memo).
func AccurateMultiQueryOpts(c *Combined, eps float64, rs []int64, opts QueryOptions) ([]int64, QueryCost, error) {
	var cost QueryCost
	ans := make([]int64, len(rs))
	if len(rs) == 0 {
		return ans, cost, nil
	}
	sw := &sweep{c: c, em: eps * float64(c.m), opts: opts, ans: ans}

	byR := make(map[int64]*mtTarget, len(rs))
	var ts []*mtTarget
	for i, r := range rs {
		if t, ok := byR[r]; ok {
			t.out = append(t.out, i)
			continue
		}
		u, v, err := c.Filters(r)
		if err != nil {
			return nil, cost, err
		}
		t := &mtTarget{r: r, fr: float64(r), u: u, v: v, out: []int{i}}
		byR[r] = t
		ts = append(ts, t)
	}
	live := ts[:0]
	for i, t := range ts {
		if i == 0 {
			cost.FilterU, cost.FilterV = t.u, t.v
		} else {
			cost.FilterU = min(cost.FilterU, t.u)
			cost.FilterV = max(cost.FilterV, t.v)
		}
		if t.u == t.v {
			sw.resolve(t, t.u)
			continue
		}
		live = append(live, t)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].r < live[j].r })

	cs := sw.newCursorSet()
	err := sw.solve(live, cs)
	cs.close()

	cost.Iterations = int(sw.iters.Load())
	cost.MemoHits = int(sw.memoHits.Load())
	sw.mu.Lock()
	cost.RandReads, cost.CacheHits, cost.SkippedBlocks = sw.ioReads, sw.ioHits, sw.ioSkips
	sw.mu.Unlock()
	cost.Truncated = sw.truncated.Load()
	if err != nil {
		return nil, cost, err
	}
	return ans, cost, nil
}

// solve resolves one group of targets whose intervals share a hull. Each
// probe at the hull midpoint classifies every target — move its upper
// filter down, its lower filter up, or accept — and the left/right groups
// recurse over disjoint subranges (concurrently under opts.Parallel).
// Targets whose interval collapses to adjacent filters wait for finish.
func (sw *sweep) solve(ts []*mtTarget, cs *cursorSet) error {
	if len(ts) == 0 {
		return nil
	}
	if sw.opts.Interrupt != nil {
		if err := sw.opts.Interrupt(); err != nil {
			return err
		}
	}
	if sw.exhausted() {
		// Another subrange (or an earlier probe) spent the whole budget:
		// answer from the in-memory summary alone, zero reads.
		return sw.quickAll(ts)
	}
	var endgame, live []*mtTarget
	for _, t := range ts {
		if t.v-t.u <= 1 {
			endgame = append(endgame, t)
		} else {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return sw.finish(endgame, cs)
	}

	// Probe the midpoint of the FIRST live target's interval, not the
	// group hull's: the lowest target then walks exactly the probe sequence
	// its solo bisection would (so a sweep never costs more probes than the
	// equivalent single-target calls), while every other target whose
	// interval brackets z still narrows for free. A hull midpoint looks
	// more balanced but lands in the no-man's-land between disjoint target
	// filters, spending probes that advance nobody.
	z := live[0].u + (live[0].v-live[0].u)/2
	sw.iters.Add(1)
	rho, hist, e, fromMemo, err := sw.probe(cs, z)
	if err != nil {
		return err
	}
	free := fromMemo // does resolving this probe cost any cursor work?
	var left, right []*mtTarget
	var accAns int64
	accDone := false
	for _, t := range live {
		switch {
		case t.fr < rho-sw.em:
			if z < t.v {
				t.v = z
			}
			left = append(left, t)
		case t.fr > rho+sw.em:
			if z > t.u {
				t.u = z
			}
			right = append(right, t)
		default:
			if !accDone {
				var used bool
				accAns, used, err = sw.snapDownAt(cs, z, hist, e, fromMemo)
				if err != nil {
					return err
				}
				accDone = true
				free = free && !used
			}
			sw.resolve(t, accAns)
		}
	}
	if free {
		sw.memoHits.Add(1)
	}
	if sw.exhausted() && len(left)+len(right) > 0 {
		// The budget tripped at this probe — which was therefore a real
		// one (memo hits spend nothing), so the cursors' state matches z
		// and snapping is valid. Targets whose interval still touches z
		// take it as their best current answer, like the single-target
		// path; targets bisecting elsewhere fall back to the in-memory
		// summary (Algorithm 5), which keeps them inside the filter spread
		// where z could be arbitrarily far off.
		var rest []*mtTarget
		for _, grp := range [2][]*mtTarget{left, right} {
			for _, t := range grp {
				if t.u > z || z > t.v {
					rest = append(rest, t)
					continue
				}
				if !accDone {
					if accAns, _, err = sw.snapDownAt(cs, z, hist, e, fromMemo); err != nil {
						return err
					}
					accDone = true
				}
				sw.resolve(t, accAns)
			}
		}
		sw.truncated.Store(true)
		left, right = nil, nil
		return sw.quickAll(append(rest, endgame...))
	}
	if len(left) > 0 && len(right) > 0 && sw.opts.Parallel {
		// Independent subranges: walk the right half on its own cursor set.
		cs2 := sw.newCursorSet()
		var wg sync.WaitGroup
		var rerr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cs2.close()
			rerr = sw.solve(right, cs2)
		}()
		lerr := sw.solve(left, cs)
		wg.Wait()
		if lerr != nil {
			return lerr
		}
		if rerr != nil {
			return rerr
		}
	} else {
		if err := sw.solve(left, cs); err != nil {
			return err
		}
		if err := sw.solve(right, cs); err != nil {
			return err
		}
	}
	return sw.finish(endgame, cs)
}

// finish resolves endgame targets — adjacent filters v = u+1 — exactly as
// the single-target endgame: one probe at u decides predecessor (rank(u)
// already reaches the target) versus successor. Targets sharing a u share
// the probe; this is the "+k" term of the sweep's probe bound.
func (sw *sweep) finish(ts []*mtTarget, cs *cursorSet) error {
	if len(ts) == 0 {
		return nil
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].u != ts[j].u {
			return ts[i].u < ts[j].u
		}
		return ts[i].r < ts[j].r
	})
	for i := 0; i < len(ts); {
		j := i
		for j < len(ts) && ts[j].u == ts[i].u {
			j++
		}
		group, u := ts[i:j], ts[i].u
		i = j
		if sw.opts.Interrupt != nil {
			if err := sw.opts.Interrupt(); err != nil {
				return err
			}
		}
		if sw.exhausted() {
			if err := sw.quickAll(group); err != nil {
				return err
			}
			continue
		}
		sw.iters.Add(1)
		rho, hist, e, fromMemo, err := sw.probe(cs, u)
		if err != nil {
			return err
		}
		free := fromMemo
		var downAns, upAns int64
		downDone, upDone := false, false
		for _, t := range group {
			if rho >= t.fr {
				if !downDone {
					var used bool
					downAns, used, err = sw.snapDownAt(cs, u, hist, e, fromMemo)
					if err != nil {
						return err
					}
					downDone = true
					free = free && !used
				}
				sw.resolve(t, downAns)
			} else {
				if !upDone {
					var used bool
					upAns, used, err = sw.snapUpAt(cs, u, hist, e, fromMemo)
					if err != nil {
						return err
					}
					upDone = true
					free = free && !used
				}
				sw.resolve(t, upAns)
			}
		}
		if free {
			sw.memoHits.Add(1)
		}
	}
	return nil
}

// probe computes the rank estimate at z: the stream-side estimate plus the
// exact historical rank, the latter from the memo when it already holds z.
func (sw *sweep) probe(cs *cursorSet, z int64) (rho float64, hist int64, e partition.MemoEntry, fromMemo bool, err error) {
	sRho := sw.c.StreamRankEstimate(z)
	if sw.opts.Memo != nil {
		if e, ok := sw.opts.Memo.Lookup(z); ok {
			return sRho + float64(e.Rank), e.Rank, e, true, nil
		}
	}
	hist, err = sw.cursorProbe(cs, z)
	if err != nil {
		return 0, 0, e, false, err
	}
	return sRho + float64(hist), hist, e, false, nil
}

// cursorProbe runs the real per-partition rank search at z, charging the
// backend-read budget and recording the result in the memo.
func (sw *sweep) cursorProbe(cs *cursorSet, z int64) (int64, error) {
	cursors, err := cs.open()
	if err != nil {
		return 0, err
	}
	for _, cur := range cursors {
		cur.SeekTo(z)
	}
	hist, err := histRank(cursors, z, sw.opts.Parallel)
	cs.charge()
	if err != nil {
		return 0, err
	}
	if sw.opts.Memo != nil {
		sw.opts.Memo.StoreRank(z, hist)
	}
	return hist, nil
}

// snapDownAt snaps an accepted probe z to the largest known element ≤ z.
// The historical side comes from the memo when the entry carries it;
// otherwise from the cursors, refreshing their state with a real probe
// first if the rank itself came from the memo. used reports whether any
// cursor work happened.
func (sw *sweep) snapDownAt(cs *cursorSet, z, hist int64, e partition.MemoEntry, fromMemo bool) (ans int64, used bool, err error) {
	if fromMemo && e.PredKnown {
		ans, err = snapDownFrom(sw.c, e.Pred, e.PredExists, z)
		return ans, false, err
	}
	if fromMemo {
		if _, err := sw.cursorProbe(cs, z); err != nil {
			return 0, true, err
		}
	}
	pe, ok, err := histPred(cs.cursors)
	cs.charge()
	if err != nil {
		return 0, true, err
	}
	if sw.opts.Memo != nil {
		sw.opts.Memo.SetPred(z, hist, pe, ok)
	}
	ans, err = snapDownFrom(sw.c, pe, ok, z)
	return ans, true, err
}

// snapUpAt is snapDownAt's mirror: the smallest known element > z.
func (sw *sweep) snapUpAt(cs *cursorSet, z, hist int64, e partition.MemoEntry, fromMemo bool) (ans int64, used bool, err error) {
	if fromMemo && e.SuccKnown {
		ans, err = snapUpFrom(sw.c, e.Succ, e.SuccExists, z)
		return ans, false, err
	}
	if fromMemo {
		if _, err := sw.cursorProbe(cs, z); err != nil {
			return 0, true, err
		}
	}
	se, ok, err := histSucc(cs.cursors)
	cs.charge()
	if err != nil {
		return 0, true, err
	}
	if sw.opts.Memo != nil {
		sw.opts.Memo.SetSucc(z, hist, se, ok)
	}
	ans, err = snapUpFrom(sw.c, se, ok, z)
	return ans, true, err
}

// quickAll answers targets from the in-memory summary alone (Algorithm 5,
// zero reads) and marks the sweep truncated.
func (sw *sweep) quickAll(ts []*mtTarget) error {
	for _, t := range ts {
		v, err := sw.c.QuickQuery(t.r)
		if err != nil {
			return err
		}
		sw.resolve(t, v)
	}
	sw.truncated.Store(true)
	return nil
}

// resolve writes a target's answer into its result slots (slots are
// disjoint across targets, so concurrent subranges never collide).
func (sw *sweep) resolve(t *mtTarget, v int64) {
	for _, i := range t.out {
		sw.ans[i] = v
	}
}

// exhausted reports whether the shared backend-read budget is spent.
func (sw *sweep) exhausted() bool {
	return sw.opts.MaxReads > 0 && sw.reads.Load() >= int64(sw.opts.MaxReads)
}

// cursorSet is one subrange walker's set of partition cursors, opened
// lazily so fully memo-resolved queries never touch the store at all.
type cursorSet struct {
	sw        *sweep
	cursors   []*partition.Cursor
	opened    bool
	lastReads int
}

func (sw *sweep) newCursorSet() *cursorSet { return &cursorSet{sw: sw} }

// open creates the cursors on first use. The seed range is irrelevant —
// every probe re-seeds its bracket with SeekTo.
func (cs *cursorSet) open() ([]*partition.Cursor, error) {
	if cs.opened {
		return cs.cursors, nil
	}
	for _, s := range cs.sw.c.sums {
		cur, err := partition.NewCursor(s, 0, 0, cs.sw.opts.PinBlocks)
		if err != nil {
			cs.close()
			return nil, err
		}
		cs.cursors = append(cs.cursors, cur)
	}
	cs.opened = true
	return cs.cursors, nil
}

// charge adds this set's backend reads since the last charge to the
// sweep's shared budget.
func (cs *cursorSet) charge() {
	total := 0
	for _, cur := range cs.cursors {
		total += cur.Reads()
	}
	if d := total - cs.lastReads; d > 0 {
		cs.lastReads = total
		cs.sw.reads.Add(int64(d))
	}
}

// close folds the set's I/O counters into the sweep and releases the
// cursors.
func (cs *cursorSet) close() {
	var reads, hits, skips int
	for _, cur := range cs.cursors {
		reads += cur.Reads()
		hits += cur.CacheHits()
		skips += cur.Skips()
		cur.Close() //nolint:errcheck // read-only handles
	}
	cs.cursors = nil
	cs.opened = false
	cs.sw.mu.Lock()
	cs.sw.ioReads += reads
	cs.sw.ioHits += hits
	cs.sw.ioSkips += skips
	cs.sw.mu.Unlock()
}
