package core

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/gk"
	"repro/internal/partition"
)

func newDev(t *testing.T) *disk.Manager {
	t.Helper()
	m, err := disk.NewManager(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// buildFigure3 reproduces the paper's Figure 3 setup exactly:
// P1 = 1..100, P2 = 101..200, P3 = 2..201, stream = 401..600, ε = 1/2
// (ε₁ = 1/4, ε₂ = 1/8).
func buildFigure3(t *testing.T) (sums []*partition.Summary, ss []int64, all []int64) {
	t.Helper()
	dev := newDev(t)
	store, err := partition.NewStore(dev, partition.Config{Kappa: 10, Eps1: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(lo, hi int64) []int64 {
		out := make([]int64, 0, hi-lo+1)
		for v := lo; v <= hi; v++ {
			out = append(out, v)
		}
		return out
	}
	p1, p2, p3 := mk(1, 100), mk(101, 200), mk(2, 201)
	for i, batch := range [][]int64{p1, p2, p3} {
		if _, err := store.AddBatch(batch, i+1); err != nil {
			t.Fatal(err)
		}
	}
	all = append(all, p1...)
	all = append(all, p2...)
	all = append(all, p3...)

	// Stream 401..600 through GK at ε₂/2 = 1/16, then extract SS with
	// ε₂ = 1/8 → β₂ = 9 entries.
	g := gk.MustNew(1.0 / 16)
	stream := mk(401, 600)
	for _, v := range stream {
		g.Insert(v)
	}
	all = append(all, stream...)
	ss = StreamSummary(g, 0.125)
	return store.Entries(), ss, all
}

func TestFigure3Summaries(t *testing.T) {
	sums, ss, _ := buildFigure3(t)
	if len(sums) != 3 {
		t.Fatalf("partitions = %d", len(sums))
	}
	// Each historical summary has β₁ = 5 entries; the paper's values for P1
	// are 1,25,50,75,100.
	chronFirst := sums[0]
	want := []int64{1, 25, 50, 75, 100}
	if !slices.Equal(chronFirst.Values, want) {
		t.Errorf("P1 summary = %v, want %v", chronFirst.Values, want)
	}
	// Stream summary has β₂ = 9 entries starting at the exact minimum 401.
	if len(ss) != 9 {
		t.Errorf("len(SS) = %d, want 9", len(ss))
	}
	if ss[0] != 401 {
		t.Errorf("SS[0] = %d, want 401", ss[0])
	}
	// Lemma 1: SS[i] has rank within [i·ε₂m, (i+1)·ε₂m], m=200, ε₂m=25.
	for i := 1; i < len(ss); i++ {
		rank := ss[i] - 400 // stream is 401..600, rank of v is v-400
		lo, hi := int64(i*25), int64((i+1)*25)
		if rank < lo || rank > hi {
			t.Errorf("SS[%d]=%d has stream rank %d, want within [%d,%d]", i, ss[i], rank, lo, hi)
		}
	}
}

func TestFigure3Bounds(t *testing.T) {
	sums, ss, all := buildFigure3(t)
	slices.Sort(all)
	c := BuildCombined(sums, ss, 200, 0.25, 0.125)
	if c.N() != 600 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Len() != 3*5+9 {
		t.Fatalf("δ = %d, want 24", c.Len())
	}
	rankOf := func(v int64) int64 {
		return int64(sort.Search(len(all), func(i int) bool { return all[i] > v }))
	}
	// Lemma 2 invariants at ε = 1/2.
	if err := c.Validate(0.5, rankOf); err != nil {
		t.Fatal(err)
	}
	// Spot-check against the figure's printed L/U rows: TS[0]=1 has L=0,
	// U=25; TS[2]=25 has L=25, U=100... the figure row for index 2 shows
	// L=25, U=100? The figure lists U_2=100. Verify the first three.
	l0, u0 := c.Bounds(0)
	if l0 != 0 || u0 != 25 {
		t.Errorf("TS[0]: L=%g U=%g, want 0/25", l0, u0)
	}
	l1, u1 := c.Bounds(1)
	if l1 != 0 || u1 != 75 {
		t.Errorf("TS[1]: L=%g U=%g, want 0/75", l1, u1)
	}
	l2, u2 := c.Bounds(2)
	if l2 != 25 || u2 != 100 {
		t.Errorf("TS[2]: L=%g U=%g, want 25/100", l2, u2)
	}
}

func TestFigure3QuickQuery(t *testing.T) {
	sums, ss, all := buildFigure3(t)
	slices.Sort(all)
	c := BuildCombined(sums, ss, 200, 0.25, 0.125)
	rankOf := func(v int64) int64 {
		return int64(sort.Search(len(all), func(i int) bool { return all[i] > v }))
	}
	// Lemma 3: |rank - r| ≤ 1.5·εN = 1.5·0.5·600 = 450 — loose here; check
	// the tighter empirical behaviour too (≤ εN = 300).
	for r := int64(1); r <= 600; r += 37 {
		v, err := c.QuickQuery(r)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(float64(rankOf(v) - r)); d > 450 {
			t.Errorf("r=%d: quick answer %d rank %d, |Δ|=%g > 1.5εN", r, v, rankOf(v), d)
		}
	}
}

func TestFigure3Filters(t *testing.T) {
	sums, ss, all := buildFigure3(t)
	slices.Sort(all)
	c := BuildCombined(sums, ss, 200, 0.25, 0.125)
	rankOf := func(v int64) int64 {
		return int64(sort.Search(len(all), func(i int) bool { return all[i] > v }))
	}
	// Lemma 4: rank(u) ≤ r ≤ rank(v), spread < 4εN = 1200 (trivial here);
	// check the containment property which is the load-bearing part.
	for r := int64(1); r <= 600; r += 23 {
		u, v, err := c.Filters(r)
		if err != nil {
			t.Fatal(err)
		}
		if u > v {
			t.Fatalf("r=%d: u=%d > v=%d", r, u, v)
		}
		ru, rv := rankOf(u), rankOf(v)
		// rank(u) ≤ r must hold unless u is the clamped global minimum.
		if ru > r && u != all[0] {
			t.Errorf("r=%d: rank(u=%d)=%d > r", r, u, ru)
		}
		if rv < r && v != all[len(all)-1] {
			t.Errorf("r=%d: rank(v=%d)=%d < r", r, v, rv)
		}
	}
}

// engineLikeFixture builds a multi-partition store plus GK stream over
// random data and returns everything an accurate query needs.
type fixture struct {
	sums []*partition.Summary
	ss   []int64
	all  []int64 // sorted
	m    int64
	eps  float64
}

func buildFixture(t *testing.T, seed int64, eps float64, steps, batchSize, streamSize int) fixture {
	t.Helper()
	dev := newDev(t)
	eps1, eps2 := eps/2, eps/4
	store, err := partition.NewStore(dev, partition.Config{Kappa: 3, Eps1: eps1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var all []int64
	for step := 1; step <= steps; step++ {
		batch := make([]int64, batchSize)
		for i := range batch {
			batch[i] = rng.Int63n(1 << 24)
		}
		all = append(all, batch...)
		if _, err := store.AddBatch(batch, step); err != nil {
			t.Fatal(err)
		}
	}
	g := gk.MustNew(eps2 / 2)
	for i := 0; i < streamSize; i++ {
		v := rng.Int63n(1 << 24)
		g.Insert(v)
		all = append(all, v)
	}
	ss := StreamSummary(g, eps2)
	slices.Sort(all)
	return fixture{sums: store.Entries(), ss: ss, all: all, m: int64(streamSize), eps: eps}
}

func (f fixture) rankOf(v int64) int64 {
	return int64(sort.Search(len(f.all), func(i int) bool { return f.all[i] > v }))
}

func TestCombinedBoundsRandom(t *testing.T) {
	f := buildFixture(t, 61, 0.1, 10, 500, 1000)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	if err := c.Validate(f.eps, f.rankOf); err != nil {
		t.Fatal(err)
	}
}

// TestAccurateQueryGuarantee is invariant 7: accurate answers err by at most
// ~1.25·εm; we assert 1.5·εm for slack.
func TestAccurateQueryGuarantee(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		f := buildFixture(t, seed, 0.05, 12, 400, 800)
		c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
		n := int64(len(f.all))
		bound := 1.5 * f.eps * float64(f.m)
		for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
			r := int64(math.Ceil(phi * float64(n)))
			v, cost, err := AccurateQuery(c, f.eps, r, true)
			if err != nil {
				t.Fatal(err)
			}
			// The answer's rank span must intersect [r-bound, r+bound]:
			// rank() counts duplicates up, so check both span ends.
			hi := f.rankOf(v)
			lo := int64(sort.Search(len(f.all), func(i int) bool { return f.all[i] >= v })) + 1
			if float64(hi) < float64(r)-bound || float64(lo) > float64(r)+bound {
				t.Errorf("seed=%d phi=%.2f r=%d: answer %d rank span [%d,%d] outside ±%.0f (cost %+v)",
					seed, phi, r, v, lo, hi, bound, cost)
			}
			if cost.Iterations > 64 {
				t.Errorf("bisection did not converge quickly: %d iterations", cost.Iterations)
			}
		}
	}
}

// TestAccurateQueryNoStream: with an empty stream the acceptance band is 0
// and answers must be exact quantiles.
func TestAccurateQueryNoStream(t *testing.T) {
	f := buildFixture(t, 71, 0.1, 8, 300, 0)
	c := BuildCombined(f.sums, f.ss, 0, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	for _, phi := range []float64{0.1, 0.5, 0.9, 1.0} {
		r := int64(math.Ceil(phi * float64(n)))
		v, _, err := AccurateQuery(c, f.eps, r, true)
		if err != nil {
			t.Fatal(err)
		}
		want := f.all[r-1] // exact quantile
		if v != want {
			t.Errorf("phi=%.1f: got %d, want exact %d", phi, v, want)
		}
	}
}

// TestAccurateQueryStreamOnly: no historical partitions at all.
func TestAccurateQueryStreamOnly(t *testing.T) {
	eps := 0.05
	g := gk.MustNew(eps / 8)
	rng := rand.New(rand.NewSource(73))
	var all []int64
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 20)
		g.Insert(v)
		all = append(all, v)
	}
	slices.Sort(all)
	ss := StreamSummary(g, eps/4)
	c := BuildCombined(nil, ss, 5000, eps/2, eps/4)
	r := int64(2500)
	v, _, err := AccurateQuery(c, eps, r, true)
	if err != nil {
		t.Fatal(err)
	}
	got := int64(sort.Search(len(all), func(i int) bool { return all[i] > v }))
	if math.Abs(float64(got-r)) > 1.5*eps*5000 {
		t.Errorf("stream-only: rank %d vs r=%d", got, r)
	}
}

func TestEmptyCombined(t *testing.T) {
	c := BuildCombined(nil, nil, 0, 0.1, 0.1)
	if _, err := c.QuickQuery(1); err == nil {
		t.Error("quick on empty: want error")
	}
	if _, _, err := c.Filters(1); err == nil {
		t.Error("filters on empty: want error")
	}
	if _, _, err := AccurateQuery(c, 0.1, 1, true); err == nil {
		t.Error("accurate on empty: want error")
	}
}

func TestStreamSummaryEmpty(t *testing.T) {
	g := gk.MustNew(0.1)
	if ss := StreamSummary(g, 0.2); ss != nil {
		t.Errorf("empty stream summary = %v", ss)
	}
}

func TestExactStreamRank(t *testing.T) {
	sorted := []int64{1, 3, 3, 5, 9}
	cases := []struct {
		z    int64
		want int64
	}{{0, 0}, {1, 1}, {3, 3}, {4, 3}, {9, 5}, {10, 5}}
	for _, c := range cases {
		if got := ExactStreamRank(sorted, c.z); got != c.want {
			t.Errorf("ExactStreamRank(%d) = %d, want %d", c.z, got, c.want)
		}
	}
}

// Property: quick query error ≤ 1.5εN on random fixtures of varying shape
// (invariant 5).
func TestQuickQueryPropertyBound(t *testing.T) {
	f := buildFixture(t, 83, 0.1, 6, 200, 500)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	en := 1.5 * f.eps * float64(n)
	prop := func(rRaw uint32) bool {
		r := int64(rRaw)%n + 1
		v, err := c.QuickQuery(r)
		if err != nil {
			return false
		}
		hi := f.rankOf(v)
		lo := int64(sort.Search(len(f.all), func(i int) bool { return f.all[i] >= v })) + 1
		return float64(hi) >= float64(r)-en && float64(lo) <= float64(r)+en
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: filters always bracket the target rank (invariant 6).
func TestFiltersPropertySound(t *testing.T) {
	f := buildFixture(t, 89, 0.08, 6, 200, 500)
	c := BuildCombined(f.sums, f.ss, f.m, f.eps/2, f.eps/4)
	n := int64(len(f.all))
	prop := func(rRaw uint32) bool {
		r := int64(rRaw)%n + 1
		u, v, err := c.Filters(r)
		if err != nil {
			return false
		}
		if u > v {
			return false
		}
		ru, rv := f.rankOf(u), f.rankOf(v)
		okU := ru <= r || u == f.all[0]
		okV := rv >= r || v == f.all[len(f.all)-1]
		return okU && okV
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
