package core
