package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/partition"
)

// QueryCost reports what an accurate query spent.
type QueryCost struct {
	// Iterations is the number of bisection probes (Algorithm 8 recursion
	// depth; for a multi-target sweep, probes shared across targets count
	// once).
	Iterations int
	// RandReads is the number of random block reads across all partitions
	// that reached the storage backend.
	RandReads int
	// CacheHits is the number of probes absorbed by the device block cache
	// (they cost no disk access).
	CacheHits int
	// SkippedBlocks is the number of bisection steps resolved from columnar
	// block-header bounds without any block access (neither disk nor cache).
	SkippedBlocks int
	// MemoHits is the number of bisection probes resolved entirely from the
	// snapshot's rank-probe memo — zero partition I/O. Like a skipped
	// block, a memo hit is the absence of an access: it spends no MaxReads
	// budget.
	MemoHits int
	// FilterU and FilterV are the initial filters from Algorithm 7 (for a
	// multi-target sweep, the hull over all targets' filters).
	FilterU, FilterV int64
	// Truncated reports that an I/O budget stopped the search early, so the
	// answer's error may exceed ε·m (but stays within the current filter
	// spread).
	Truncated bool
}

// QueryOptions tunes an accurate query beyond the paper's defaults.
type QueryOptions struct {
	// PinBlocks enables the §2.4 single-block caching optimization.
	PinBlocks bool
	// Parallel probes all partitions concurrently at each bisection step —
	// the paper's §4 future-work suggestion of overlapping disk reads — and
	// additionally walks independent subranges of a multi-target sweep
	// concurrently.
	Parallel bool
	// MaxReads, when positive, caps random block reads that actually reach
	// the storage backend: the search stops early once the cap is reached
	// and returns its best current answer with Truncated set. Accesses that
	// touch no backend — device cache hits, skipped blocks, memo hits —
	// spend no budget. This explores the paper's conclusion's
	// accuracy-vs-disk-access tradeoff ("stopping the search of the
	// on-disk structure early").
	MaxReads int
	// Interrupt, when non-nil, is polled before each bisection probe; a
	// non-nil return aborts the query with that error. The engine wires
	// context cancellation through this hook so a slow disk search can be
	// abandoned mid-flight.
	Interrupt func() error
	// Memo, when non-nil, caches historical rank probes across queries. The
	// caller must guarantee the memo belongs to exactly the partition set
	// being queried — the engine attaches one to each immutable store
	// version and passes it only for full-history queries, so entries never
	// go stale: they die with their version. A probe found in the memo
	// costs no I/O and counts in QueryCost.MemoHits.
	Memo *partition.ProbeMemo
}

// AccurateQuery implements Algorithms 6-8: generate filters from the
// combined summary, then bisect the value space, computing at each probe z
// the exact rank of z in every partition (block-granular binary search
// seeded from the summaries) plus the SS-based stream rank estimate, until
// the estimate is within ε·m of the target rank r. pinBlocks enables the
// §2.4 single-block caching optimization.
//
// One deliberate refinement over the paper's pseudocode: Algorithm 8
// returns the accepted midpoint z itself, which need not be an element of
// T. We instead snap z to the largest known element ≤ z (the per-partition
// predecessors sit right at the cursors' final boundary positions, usually
// in an already-pinned block; the stream predecessor comes from SS). The
// snapped element's rank differs from rank(z) by at most ~ε₂m additional
// stream uncertainty, so the O(ε·m) guarantee of Lemma 5 is preserved — and
// when the stream is empty the answer becomes the exact quantile.
func AccurateQuery(c *Combined, eps float64, r int64, pinBlocks bool) (int64, QueryCost, error) {
	return AccurateQueryOpts(c, eps, r, QueryOptions{PinBlocks: pinBlocks})
}

// AccurateQueryOpts is AccurateQuery with full option control (parallel
// partition probing, I/O budgeting, probe memoization). It is the k=1 case
// of the shared sweep in AccurateMultiQueryOpts.
func AccurateQueryOpts(c *Combined, eps float64, r int64, opts QueryOptions) (int64, QueryCost, error) {
	ans, cost, err := AccurateMultiQueryOpts(c, eps, []int64{r}, opts)
	if err != nil {
		return 0, cost, err
	}
	return ans[0], cost, nil
}

// histRank sums boundary(z) over all cursors, optionally probing partitions
// concurrently (each cursor owns an independent file handle, so parallel
// probes overlap their disk reads — the paper's §4 parallelization).
func histRank(cursors []*partition.Cursor, z int64, parallel bool) (int64, error) {
	if !parallel || len(cursors) < 2 {
		var total int64
		for _, cur := range cursors {
			p, err := cur.Rank(z)
			if err != nil {
				return 0, err
			}
			total += p
		}
		return total, nil
	}
	ranks := make([]int64, len(cursors))
	errs := make([]error, len(cursors))
	var wg sync.WaitGroup
	for i, cur := range cursors {
		wg.Add(1)
		go func(i int, cur *partition.Cursor) {
			defer wg.Done()
			ranks[i], errs[i] = cur.Rank(z)
		}(i, cur)
	}
	wg.Wait()
	var total int64
	for i := range cursors {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += ranks[i]
	}
	return total, nil
}

// histPred returns the largest on-disk element ≤ the last probe value,
// assuming every cursor's last Rank call was for that value. ok=false means
// no partition holds such an element.
func histPred(cursors []*partition.Cursor) (int64, bool, error) {
	best := int64(0)
	have := false
	for _, cur := range cursors {
		b := cur.LastBoundary()
		if b == 0 {
			continue
		}
		e, err := cur.Element(b - 1)
		if err != nil {
			return 0, false, err
		}
		if !have || e > best {
			best, have = e, true
		}
	}
	return best, have, nil
}

// histSucc returns the smallest on-disk element > the last probe value,
// assuming every cursor's last Rank call was for that value. ok=false means
// no partition holds such an element.
func histSucc(cursors []*partition.Cursor) (int64, bool, error) {
	var best int64
	have := false
	for _, cur := range cursors {
		b := cur.LastBoundary()
		if b >= cur.Count() {
			continue
		}
		e, err := cur.Element(b)
		if err != nil {
			return 0, false, err
		}
		if !have || e < best {
			best, have = e, true
		}
	}
	return best, have, nil
}

// snapDownFrom combines a historical predecessor (histE when histOK) with
// the stream pieces' in-memory predecessors to the largest known element of
// T that is ≤ z, falling back to the global minimum when nothing is ≤ z.
func snapDownFrom(c *Combined, histE int64, histOK bool, z int64) (int64, error) {
	best, have := histE, histOK
	// Stream-side predecessors, one per memory-resident piece.
	for _, p := range c.streams {
		if i := sort.Search(len(p.SS), func(i int) bool { return p.SS[i] > z }); i > 0 {
			if e := p.SS[i-1]; !have || e > best {
				best, have = e, true
			}
		}
	}
	if have {
		return best, nil
	}
	return c.globalMin()
}

// snapUpFrom combines a historical successor (histE when histOK) with the
// stream pieces' in-memory successors to the smallest known element of T
// that is > z, falling back to the global maximum when nothing is > z.
func snapUpFrom(c *Combined, histE int64, histOK bool, z int64) (int64, error) {
	best, have := histE, histOK
	for _, p := range c.streams {
		if i := sort.Search(len(p.SS), func(i int) bool { return p.SS[i] > z }); i < len(p.SS) {
			if e := p.SS[i]; !have || e < best {
				best, have = e, true
			}
		}
	}
	if have {
		return best, nil
	}
	return c.globalMax()
}

// globalMin returns the smallest element recorded in any summary.
func (c *Combined) globalMin() (int64, error) {
	if len(c.items) == 0 {
		return 0, fmt.Errorf("core: no data")
	}
	return c.items[0].v, nil
}

// globalMax returns the largest element recorded in any summary.
func (c *Combined) globalMax() (int64, error) {
	if len(c.items) == 0 {
		return 0, fmt.Errorf("core: no data")
	}
	return c.items[len(c.items)-1].v, nil
}

// ExactStreamRank is a helper for engines that also track the raw batch in
// memory: rank of z within a sorted batch slice. Exposed for tests.
func ExactStreamRank(sortedBatch []int64, z int64) int64 {
	lo, hi := 0, len(sortedBatch)
	for lo < hi {
		mid := (lo + hi) / 2
		if sortedBatch[mid] <= z {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

// Validate checks a Combined's bound invariants against exact ranks
// provided by the caller (Lemma 2: L_i ≤ rank(TS[i]) ≤ U_i and
// U_i − L_i ≤ εN). rankOf must return the exact rank in T. Used by tests
// and the harness's self-check mode.
func (c *Combined) Validate(eps float64, rankOf func(v int64) int64) error {
	en := eps * float64(c.N())
	for i := range c.items {
		ri := float64(rankOf(c.items[i].v))
		if c.lower[i] > ri+1e-9 {
			return fmt.Errorf("core: L_%d=%.1f > rank=%.0f (v=%d)", i, c.lower[i], ri, c.items[i].v)
		}
		if c.upper[i] < ri-1e-9 {
			return fmt.Errorf("core: U_%d=%.1f < rank=%.0f (v=%d)", i, c.upper[i], ri, c.items[i].v)
		}
		if c.upper[i]-c.lower[i] > en+1e-9 {
			return fmt.Errorf("core: U_%d-L_%d=%.1f > εN=%.1f", i, i, c.upper[i]-c.lower[i], en)
		}
	}
	return nil
}
