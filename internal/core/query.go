package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/partition"
)

// QueryCost reports what an accurate query spent.
type QueryCost struct {
	// Iterations is the number of bisection probes (Algorithm 8 recursion
	// depth).
	Iterations int
	// RandReads is the number of random block reads across all partitions
	// that reached the storage backend.
	RandReads int
	// CacheHits is the number of probes absorbed by the device block cache
	// (they cost no disk access).
	CacheHits int
	// SkippedBlocks is the number of bisection steps resolved from columnar
	// block-header bounds without any block access (neither disk nor cache).
	SkippedBlocks int
	// FilterU and FilterV are the initial filters from Algorithm 7.
	FilterU, FilterV int64
	// Truncated reports that an I/O budget stopped the search early, so the
	// answer's error may exceed ε·m (but stays within the current filter
	// spread).
	Truncated bool
}

// QueryOptions tunes an accurate query beyond the paper's defaults.
type QueryOptions struct {
	// PinBlocks enables the §2.4 single-block caching optimization.
	PinBlocks bool
	// Parallel probes all partitions concurrently at each bisection step —
	// the paper's §4 future-work suggestion of overlapping disk reads.
	Parallel bool
	// MaxReads, when positive, caps random block reads: the search stops
	// early once the cap is reached and returns its best current answer
	// with Truncated set. This explores the paper's conclusion's
	// accuracy-vs-disk-access tradeoff ("stopping the search of the
	// on-disk structure early").
	MaxReads int
	// Interrupt, when non-nil, is polled before each bisection probe; a
	// non-nil return aborts the query with that error. The engine wires
	// context cancellation through this hook so a slow disk search can be
	// abandoned mid-flight.
	Interrupt func() error
}

// AccurateQuery implements Algorithms 6-8: generate filters from the
// combined summary, then bisect the value space, computing at each probe z
// the exact rank of z in every partition (block-granular binary search
// seeded from the summaries) plus the SS-based stream rank estimate, until
// the estimate is within ε·m of the target rank r. pinBlocks enables the
// §2.4 single-block caching optimization.
//
// One deliberate refinement over the paper's pseudocode: Algorithm 8
// returns the accepted midpoint z itself, which need not be an element of
// T. We instead snap z to the largest known element ≤ z (the per-partition
// predecessors sit right at the cursors' final boundary positions, usually
// in an already-pinned block; the stream predecessor comes from SS). The
// snapped element's rank differs from rank(z) by at most ~ε₂m additional
// stream uncertainty, so the O(ε·m) guarantee of Lemma 5 is preserved — and
// when the stream is empty the answer becomes the exact quantile.
func AccurateQuery(c *Combined, eps float64, r int64, pinBlocks bool) (int64, QueryCost, error) {
	return AccurateQueryOpts(c, eps, r, QueryOptions{PinBlocks: pinBlocks})
}

// AccurateQueryOpts is AccurateQuery with full option control (parallel
// partition probing, I/O budgeting).
func AccurateQueryOpts(c *Combined, eps float64, r int64, opts QueryOptions) (int64, QueryCost, error) {
	var cost QueryCost
	u, v, err := c.Filters(r)
	if err != nil {
		return 0, cost, err
	}
	cost.FilterU, cost.FilterV = u, v
	if u == v {
		return u, cost, nil
	}

	cursors := make([]*partition.Cursor, 0, len(c.sums))
	defer func() {
		for _, cur := range cursors {
			cur.Close() //nolint:errcheck // read-only handles
		}
	}()
	for _, s := range c.sums {
		cur, err := partition.NewCursor(s, u, v, opts.PinBlocks)
		if err != nil {
			return 0, cost, err
		}
		cursors = append(cursors, cur)
	}

	em := eps * float64(c.m)
	fr := float64(r)

	rankAt := func(z int64) (float64, error) {
		rho := c.StreamRankEstimate(z)
		hist, err := histRank(cursors, z, opts.Parallel)
		if err != nil {
			return 0, err
		}
		return rho + float64(hist), nil
	}

	for v-u > 1 {
		if opts.Interrupt != nil {
			if err := opts.Interrupt(); err != nil {
				return 0, cost, err
			}
		}
		z := u + (v-u)/2
		cost.Iterations++
		rho, err := rankAt(z)
		if err != nil {
			return 0, cost, err
		}
		switch {
		case fr < rho-em:
			v = z
			for _, cur := range cursors {
				cur.NarrowUpper()
			}
		case fr > rho+em:
			u = z
			for _, cur := range cursors {
				cur.NarrowLower()
			}
		default:
			ans, err := snapDown(c, cursors, z)
			captureIO(&cost, cursors)
			if err != nil {
				return 0, cost, err
			}
			return ans, cost, nil
		}
		if opts.MaxReads > 0 && sumReads(cursors) >= opts.MaxReads {
			// I/O budget exhausted: return the best current answer. The
			// last probe's cursor state matches z, so snapping is valid.
			ans, err := snapDown(c, cursors, z)
			captureIO(&cost, cursors)
			cost.Truncated = true
			if err != nil {
				return 0, cost, err
			}
			return ans, cost, nil
		}
	}
	// Adjacent filters: every element with rank in (rank(u), rank(v)] equals
	// the successor of u; return (the predecessor closure of) u only if its
	// rank already reaches the target.
	cost.Iterations++
	rhoU, err := rankAt(u)
	if err != nil {
		captureIO(&cost, cursors)
		return 0, cost, err
	}
	var ans int64
	if rhoU >= fr {
		ans, err = snapDown(c, cursors, u)
	} else {
		ans, err = snapUp(c, cursors, u)
	}
	captureIO(&cost, cursors)
	if err != nil {
		return 0, cost, err
	}
	return ans, cost, nil
}

// histRank sums boundary(z) over all cursors, optionally probing partitions
// concurrently (each cursor owns an independent file handle, so parallel
// probes overlap their disk reads — the paper's §4 parallelization).
func histRank(cursors []*partition.Cursor, z int64, parallel bool) (int64, error) {
	if !parallel || len(cursors) < 2 {
		var total int64
		for _, cur := range cursors {
			p, err := cur.Rank(z)
			if err != nil {
				return 0, err
			}
			total += p
		}
		return total, nil
	}
	ranks := make([]int64, len(cursors))
	errs := make([]error, len(cursors))
	var wg sync.WaitGroup
	for i, cur := range cursors {
		wg.Add(1)
		go func(i int, cur *partition.Cursor) {
			defer wg.Done()
			ranks[i], errs[i] = cur.Rank(z)
		}(i, cur)
	}
	wg.Wait()
	var total int64
	for i := range cursors {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += ranks[i]
	}
	return total, nil
}

// snapDown returns the largest known element of T that is ≤ z, assuming
// every cursor's last Rank call was for z. Falls back to the global minimum
// when nothing is ≤ z.
func snapDown(c *Combined, cursors []*partition.Cursor, z int64) (int64, error) {
	best := int64(0)
	have := false
	for _, cur := range cursors {
		b := cur.LastBoundary()
		if b == 0 {
			continue
		}
		e, err := cur.Element(b - 1)
		if err != nil {
			return 0, err
		}
		if !have || e > best {
			best, have = e, true
		}
	}
	// Stream-side predecessors, one per memory-resident piece.
	for _, p := range c.streams {
		if i := sort.Search(len(p.SS), func(i int) bool { return p.SS[i] > z }); i > 0 {
			if e := p.SS[i-1]; !have || e > best {
				best, have = e, true
			}
		}
	}
	if have {
		return best, nil
	}
	return c.globalMin()
}

// snapUp returns the smallest known element of T that is > z, assuming
// every cursor's last Rank call was for z. Falls back to the global maximum
// when nothing is > z.
func snapUp(c *Combined, cursors []*partition.Cursor, z int64) (int64, error) {
	var best int64
	have := false
	for _, cur := range cursors {
		b := cur.LastBoundary()
		if b >= cur.Count() {
			continue
		}
		e, err := cur.Element(b)
		if err != nil {
			return 0, err
		}
		if !have || e < best {
			best, have = e, true
		}
	}
	for _, p := range c.streams {
		if i := sort.Search(len(p.SS), func(i int) bool { return p.SS[i] > z }); i < len(p.SS) {
			if e := p.SS[i]; !have || e < best {
				best, have = e, true
			}
		}
	}
	if have {
		return best, nil
	}
	return c.globalMax()
}

// globalMin returns the smallest element recorded in any summary.
func (c *Combined) globalMin() (int64, error) {
	if len(c.items) == 0 {
		return 0, fmt.Errorf("core: no data")
	}
	return c.items[0].v, nil
}

// globalMax returns the largest element recorded in any summary.
func (c *Combined) globalMax() (int64, error) {
	if len(c.items) == 0 {
		return 0, fmt.Errorf("core: no data")
	}
	return c.items[len(c.items)-1].v, nil
}

func sumReads(cursors []*partition.Cursor) int {
	n := 0
	for _, cur := range cursors {
		n += cur.Reads()
	}
	return n
}

// captureIO records the cursors' cumulative I/O counters into cost.
func captureIO(cost *QueryCost, cursors []*partition.Cursor) {
	cost.RandReads, cost.CacheHits, cost.SkippedBlocks = 0, 0, 0
	for _, cur := range cursors {
		cost.RandReads += cur.Reads()
		cost.CacheHits += cur.CacheHits()
		cost.SkippedBlocks += cur.Skips()
	}
}

// ExactStreamRank is a helper for engines that also track the raw batch in
// memory: rank of z within a sorted batch slice. Exposed for tests.
func ExactStreamRank(sortedBatch []int64, z int64) int64 {
	lo, hi := 0, len(sortedBatch)
	for lo < hi {
		mid := (lo + hi) / 2
		if sortedBatch[mid] <= z {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

// Validate checks a Combined's bound invariants against exact ranks
// provided by the caller (Lemma 2: L_i ≤ rank(TS[i]) ≤ U_i and
// U_i − L_i ≤ εN). rankOf must return the exact rank in T. Used by tests
// and the harness's self-check mode.
func (c *Combined) Validate(eps float64, rankOf func(v int64) int64) error {
	en := eps * float64(c.N())
	for i := range c.items {
		ri := float64(rankOf(c.items[i].v))
		if c.lower[i] > ri+1e-9 {
			return fmt.Errorf("core: L_%d=%.1f > rank=%.0f (v=%d)", i, c.lower[i], ri, c.items[i].v)
		}
		if c.upper[i] < ri-1e-9 {
			return fmt.Errorf("core: U_%d=%.1f < rank=%.0f (v=%d)", i, c.upper[i], ri, c.items[i].v)
		}
		if c.upper[i]-c.lower[i] > en+1e-9 {
			return fmt.Errorf("core: U_%d-L_%d=%.1f > εN=%.1f", i, i, c.upper[i]-c.lower[i], en)
		}
	}
	return nil
}
