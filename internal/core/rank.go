package core

import (
	"sort"

	"repro/internal/partition"
)

// QuickRank estimates the rank of an arbitrary value v in T using only the
// combined summary: the midpoint of the L/U bounds of the largest TS entry
// ≤ v. The error is at most εN/2 + the inter-entry gap εN, i.e. O(εN) —
// the quick-response analogue for rank queries.
func (c *Combined) QuickRank(v int64) int64 {
	i := sort.Search(len(c.items), func(i int) bool { return c.items[i].v > v }) - 1
	if i < 0 {
		return 0
	}
	return int64((c.lower[i] + c.upper[i]) / 2)
}

// RankOfValue computes the rank of an arbitrary value v in T accurately:
// the exact count of historical elements ≤ v (one block-granular binary
// search per partition) plus the SS-based stream estimate, so the total
// error is at most ~ε₂m = εm/4. It is the inverse primitive of
// AccurateQuery and shares all of its machinery.
func RankOfValue(c *Combined, v int64, pinBlocks bool) (int64, QueryCost, error) {
	var cost QueryCost
	total := c.StreamRankEstimate(v)
	for _, s := range c.sums {
		cur, err := partition.NewCursor(s, v, v, pinBlocks)
		if err != nil {
			return 0, cost, err
		}
		p, err := cur.Rank(v)
		if err != nil {
			cur.Close() //nolint:errcheck
			return 0, cost, err
		}
		cost.RandReads += cur.Reads()
		cost.CacheHits += cur.CacheHits()
		cost.SkippedBlocks += cur.Skips()
		if err := cur.Close(); err != nil {
			return 0, cost, err
		}
		total += float64(p)
	}
	cost.Iterations = 1
	return int64(total), cost, nil
}
