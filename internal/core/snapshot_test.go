package core

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"repro/internal/partition"
)

// synthShard builds a ShardSummary with sorted random summary values.
func synthShard(rng *rand.Rand, parts, pieces int, eps1, eps2 float64) *ShardSummary {
	s := &ShardSummary{Eps1: eps1, Eps2: eps2}
	sorted := func(n int) []int64 {
		vs := make([]int64, n)
		for i := range vs {
			vs[i] = rng.Int63n(1_000_000) - 500_000
		}
		slices.Sort(vs)
		return vs
	}
	for i := 0; i < parts; i++ {
		count := int64(100 + rng.Intn(10_000))
		s.Parts = append(s.Parts, PartSummary{Count: count, Values: sorted(3 + rng.Intn(40))})
		s.N += count
	}
	for i := 0; i < pieces; i++ {
		m := int64(1 + rng.Intn(5_000))
		s.Pieces = append(s.Pieces, StreamPiece{M: m, SS: sorted(1 + rng.Intn(20))})
		s.N += m
	}
	return s
}

func TestShardSummaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []*ShardSummary{
		{Eps1: 0.05, Eps2: 0.025},            // empty
		synthShard(rng, 0, 1, 0.05, 0.025),   // stream only
		synthShard(rng, 4, 0, 0.05, 0.025),   // history only
		synthShard(rng, 7, 3, 0.005, 0.0025), // both
		synthShard(rng, 1, 1, 1e-9, 1e-9),    // tiny eps
	}
	for i, want := range cases {
		enc := want.AppendBinary(nil)
		got, err := DecodeShardSummary(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: round trip:\n got %+v\nwant %+v", i, got, want)
		}
		// Corrupt/truncated prefixes must error, never panic.
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeShardSummary(enc[:cut]); err == nil && cut < len(enc) {
				t.Fatalf("case %d: truncation at %d accepted", i, cut)
			}
		}
		if _, err := DecodeShardSummary(append(enc[:len(enc):len(enc)], 0)); err == nil {
			t.Errorf("case %d: trailing byte accepted", i)
		}
	}
}

// TestMergeMatchesSinglePass pins the acceptance property of the cluster
// query path: merging per-shard summaries yields the identical Combined —
// same TS values, same L/U bounds, same quick answers at every rank — as
// building one Combined over the concatenation of every shard's sources.
func TestMergeMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const eps1, eps2 = 0.05, 0.025
	shards := []*ShardSummary{
		synthShard(rng, 5, 2, eps1, eps2),
		synthShard(rng, 0, 1, eps1, eps2),
		{Eps1: 0.9, Eps2: 0.9}, // empty shard: skipped, mismatched ε tolerated
		synthShard(rng, 3, 4, eps1, eps2),
	}

	merged, total, err := MergeShardSummaries(shards)
	if err != nil {
		t.Fatal(err)
	}

	var sums []*partition.Summary
	var pieces []StreamPiece
	var wantTotal int64
	for _, sh := range shards {
		if sh.N == 0 {
			continue
		}
		for _, p := range sh.Parts {
			sums = append(sums, &partition.Summary{Part: &partition.Partition{Count: p.Count}, Values: p.Values})
		}
		pieces = append(pieces, sh.Pieces...)
		wantTotal += sh.N
	}
	want := BuildPieces(sums, pieces, eps1, eps2)

	if total != wantTotal || total != merged.N() {
		t.Fatalf("total: got %d (Combined.N %d), want %d", total, merged.N(), wantTotal)
	}
	if merged.Len() != want.Len() {
		t.Fatalf("TS length: got %d, want %d", merged.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		gl, gu := merged.Bounds(i)
		wl, wu := want.Bounds(i)
		if merged.Value(i) != want.Value(i) || gl != wl || gu != wu {
			t.Fatalf("TS[%d]: got (%d, %g, %g), want (%d, %g, %g)",
				i, merged.Value(i), gl, gu, want.Value(i), wl, wu)
		}
	}
	for r := int64(1); r <= total; r += total / 97 {
		g, err1 := merged.QuickQuery(r)
		w, err2 := want.QuickQuery(r)
		if err1 != nil || err2 != nil || g != w {
			t.Fatalf("QuickQuery(%d): got (%d,%v), want (%d,%v)", r, g, err1, w, err2)
		}
	}
}

func TestMergeRejectsMixedEps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := synthShard(rng, 1, 1, 0.05, 0.025)
	b := synthShard(rng, 1, 1, 0.01, 0.005)
	if _, _, err := MergeShardSummaries([]*ShardSummary{a, b}); err == nil {
		t.Fatal("mixed-ε shards merged without error")
	}
}

func TestMergeAllEmpty(t *testing.T) {
	c, total, err := MergeShardSummaries([]*ShardSummary{{Eps1: 1, Eps2: 1}, nil})
	if err != nil || c != nil || total != 0 {
		t.Fatalf("got (%v, %d, %v), want (nil, 0, nil)", c, total, err)
	}
}
