package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/enc"
	"repro/internal/partition"
)

// ShardSummary is one node's portable view of a stream: every in-memory
// summary (historical partition summaries plus stream-side pieces) with the
// error parameters they were built under, but none of the on-disk data.
// It is exactly the state BuildPieces needs, so shipping a ShardSummary per
// shard and merging lets a coordinator answer quick (in-memory) quantile
// and rank queries over the union of N shards within the same composed ε
// bands the paper proves for one node — the mergeability property that
// makes scatter-gather correct without moving raw data. Accurate
// (disk-probing) queries cannot run over a ShardSummary: the partitions
// behind it live on the remote shard.
type ShardSummary struct {
	// N is the total element count the summary covers (historical + stream).
	N int64
	// Eps1 and Eps2 are the partition-summary and stream-summary error
	// parameters (ε/2 and ε/4 of the engine's configured ε).
	Eps1, Eps2 float64
	// Parts carries (count, values) per historical partition summary.
	Parts []PartSummary
	// Pieces carries the stream-side piece summaries.
	Pieces []StreamPiece
}

// PartSummary is the portable form of one partition summary: the element
// count and the β₁ captured values. Capture positions are omitted — they
// only matter for disk probes, which never cross shards.
type PartSummary struct {
	Count  int64
	Values []int64
}

// snapshotVersion is the ShardSummary wire-encoding version byte.
const snapshotVersion = 1

// AppendBinary appends the binary encoding of s to buf:
//
//	version u8 | eps1 f64be | eps2 f64be | uvarint N
//	| uvarint len(parts)  | per part:  uvarint count | uvarint len | delta values
//	| uvarint len(pieces) | per piece: uvarint M     | uvarint len | delta values
//
// Summary values are sorted, so the shared delta+zig-zag varint codec keeps
// the encoding near 1–2 bytes per element.
func (s *ShardSummary) AppendBinary(buf []byte) []byte {
	buf = append(buf, snapshotVersion)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Eps1))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Eps2))
	buf = binary.AppendUvarint(buf, uint64(s.N))
	buf = binary.AppendUvarint(buf, uint64(len(s.Parts)))
	for _, p := range s.Parts {
		buf = binary.AppendUvarint(buf, uint64(p.Count))
		buf = binary.AppendUvarint(buf, uint64(len(p.Values)))
		buf = enc.AppendDelta(buf, p.Values)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Pieces)))
	for _, p := range s.Pieces {
		buf = binary.AppendUvarint(buf, uint64(p.M))
		buf = binary.AppendUvarint(buf, uint64(len(p.SS)))
		buf = enc.AppendDelta(buf, p.SS)
	}
	return buf
}

// DecodeShardSummary decodes one ShardSummary from data, rejecting
// trailing bytes and declared lengths beyond the input size.
func DecodeShardSummary(data []byte) (*ShardSummary, error) {
	d := snapDecoder{buf: data}
	if v := d.byte(); d.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("core: shard summary version %d (want %d)", v, snapshotVersion)
	}
	s := &ShardSummary{
		Eps1: math.Float64frombits(d.u64()),
		Eps2: math.Float64frombits(d.u64()),
		N:    int64(d.uvarint()),
	}
	nparts := d.count(len(data))
	for i := uint64(0); i < nparts && d.err == nil; i++ {
		count := int64(d.uvarint())
		s.Parts = append(s.Parts, PartSummary{Count: count, Values: d.values(len(data))})
	}
	npieces := d.count(len(data))
	for i := uint64(0); i < npieces && d.err == nil; i++ {
		m := int64(d.uvarint())
		s.Pieces = append(s.Pieces, StreamPiece{M: m, SS: d.values(len(data))})
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: decode shard summary: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("core: decode shard summary: %d trailing bytes", len(d.buf))
	}
	if s.N < 0 {
		return nil, fmt.Errorf("core: decode shard summary: negative N")
	}
	return s, nil
}

// MergeShardSummaries builds the combined summary TS over every shard's
// summaries, as if all their partitions and stream pieces belonged to one
// engine. Empty shards (N == 0) are skipped; the non-empty shards must
// agree on (ε₁, ε₂) — i.e. every node of the cluster runs the same
// configured ε — because the L/U rank-bound formulas weight each source by
// its own ε term. The returned total is Σ N; a nil Combined with total 0
// means every shard was empty.
//
// Only quick (in-memory) queries — QuickQuery, Filters,
// StreamRankEstimate — are valid on the result: the synthetic partition
// summaries have no device behind them, so accurate disk-probing queries
// must stay on the owning shard.
func MergeShardSummaries(shards []*ShardSummary) (*Combined, int64, error) {
	var (
		sums       []*partition.Summary
		pieces     []StreamPiece
		total      int64
		eps1, eps2 float64
		seen       bool
	)
	for i, sh := range shards {
		if sh == nil || sh.N == 0 {
			continue
		}
		if !seen {
			eps1, eps2, seen = sh.Eps1, sh.Eps2, true
		} else if sh.Eps1 != eps1 || sh.Eps2 != eps2 {
			return nil, 0, fmt.Errorf("core: shard %d has ε=(%g,%g), want (%g,%g) — mixed-ε clusters cannot merge summaries",
				i, sh.Eps1, sh.Eps2, eps1, eps2)
		}
		total += sh.N
		for _, p := range sh.Parts {
			sums = append(sums, &partition.Summary{
				Part:   &partition.Partition{Count: p.Count},
				Values: p.Values,
			})
		}
		pieces = append(pieces, sh.Pieces...)
	}
	if !seen {
		return nil, 0, nil
	}
	return BuildPieces(sums, pieces, eps1, eps2), total, nil
}

// snapDecoder mirrors the wire package's error-latching payload cursor for
// the ShardSummary encoding.
type snapDecoder struct {
	buf []byte
	err error
}

func (d *snapDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *snapDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail(fmt.Errorf("truncated"))
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *snapDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail(fmt.Errorf("truncated"))
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail(fmt.Errorf("bad uvarint"))
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a collection length and bounds it by the input size so a
// corrupt prefix cannot force a huge allocation.
func (d *snapDecoder) count(inputLen int) uint64 {
	n := d.uvarint()
	if d.err == nil && n > uint64(inputLen) {
		d.fail(fmt.Errorf("declared count %d exceeds input", n))
		return 0
	}
	return n
}

// values reads a delta-encoded value list (uvarint length + deltas).
func (d *snapDecoder) values(inputLen int) []int64 {
	n := d.count(inputLen)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int64, n)
	rest, err := enc.DecodeDelta(vs, d.buf)
	if err != nil {
		d.fail(err)
		return nil
	}
	d.buf = rest
	return vs
}
