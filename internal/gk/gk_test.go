package gk

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

// exactRank returns the number of elements <= v in sorted data.
func exactRank(sorted []int64, v int64) int64 {
	return int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > v }))
}

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 1, 1.5} {
		if _, err := New(eps); err == nil {
			t.Errorf("New(%g): want error", eps)
		}
	}
	if s := MustNew(0.1); s.Epsilon() != 0.1 {
		t.Error("MustNew lost eps")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0): want panic")
		}
	}()
	MustNew(0)
}

func TestEmptySketch(t *testing.T) {
	s := MustNew(0.1)
	if _, ok := s.Query(1); ok {
		t.Error("Query on empty: want ok=false")
	}
	if _, ok := s.Quantile(0.5); ok {
		t.Error("Quantile on empty: want ok=false")
	}
	if _, ok := s.Min(); ok {
		t.Error("Min on empty: want ok=false")
	}
	if _, ok := s.Max(); ok {
		t.Error("Max on empty: want ok=false")
	}
	if lo, hi := s.RankBounds(5); lo != 0 || hi != 0 {
		t.Error("RankBounds on empty should be (0,0)")
	}
}

func TestExactMinMax(t *testing.T) {
	s := MustNew(0.05)
	rng := rand.New(rand.NewSource(1))
	mn, mx := int64(math.MaxInt64), int64(math.MinInt64)
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << 40)
		s.Insert(v)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if got, _ := s.Min(); got != mn {
		t.Errorf("Min = %d, want %d", got, mn)
	}
	if got, _ := s.Max(); got != mx {
		t.Errorf("Max = %d, want %d", got, mx)
	}
}

// errorWithin checks every decile query against the exact answer.
func errorWithin(t *testing.T, s *Sketch, sorted []int64, eps float64) {
	t.Helper()
	n := int64(len(sorted))
	bound := int64(math.Ceil(eps*float64(n))) + 1
	for _, phi := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		r := int64(math.Ceil(phi * float64(n)))
		if r < 1 {
			r = 1
		}
		v, ok := s.Query(r)
		if !ok {
			t.Fatalf("Query(%d): not ok", r)
		}
		got := exactRank(sorted, v)
		// rank of v counts duplicates; the sketch returns some element whose
		// rank interval intersects [r-εn, r+εn]. Verify against the smallest
		// rank any copy of v can have.
		lo := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })) + 1
		if got < r-bound || lo > r+bound {
			t.Errorf("phi=%.2f r=%d: value %d has rank span [%d,%d], outside ±%d", phi, r, v, lo, got, bound)
		}
	}
}

func TestAccuracyUniform(t *testing.T) {
	for _, eps := range []float64{0.1, 0.01, 0.001} {
		s := MustNew(eps)
		rng := rand.New(rand.NewSource(2))
		data := make([]int64, 50000)
		for i := range data {
			data[i] = rng.Int63n(1 << 30)
			s.Insert(data[i])
		}
		if err := s.checkInvariant(); err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		slices.Sort(data)
		errorWithin(t, s, data, eps)
	}
}

func TestAccuracySorted(t *testing.T) {
	// Sorted input is GK's historic worst case for space; accuracy must
	// still hold.
	s := MustNew(0.01)
	n := 30000
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
		s.Insert(int64(i))
	}
	errorWithin(t, s, data, 0.01)
}

func TestAccuracyReversed(t *testing.T) {
	s := MustNew(0.01)
	n := 30000
	data := make([]int64, n)
	for i := range data {
		v := int64(n - i)
		data[i] = v
		s.Insert(v)
	}
	slices.Sort(data)
	errorWithin(t, s, data, 0.01)
}

func TestAccuracyManyDuplicates(t *testing.T) {
	s := MustNew(0.01)
	rng := rand.New(rand.NewSource(5))
	data := make([]int64, 30000)
	for i := range data {
		data[i] = rng.Int63n(10) // only 10 distinct values
		s.Insert(data[i])
	}
	slices.Sort(data)
	errorWithin(t, s, data, 0.01)
}

func TestSpaceBound(t *testing.T) {
	// Space should be O((1/ε)·log(εn)); verify against a generous constant.
	eps := 0.01
	s := MustNew(eps)
	rng := rand.New(rand.NewSource(3))
	n := 200000
	for i := 0; i < n; i++ {
		s.Insert(rng.Int63())
	}
	bound := int(12.0 / eps * math.Max(1, math.Log2(eps*float64(n))))
	if s.TupleCount() > bound {
		t.Errorf("tuples = %d, generous bound = %d", s.TupleCount(), bound)
	}
	if s.MaxTupleCount() < s.TupleCount() {
		t.Error("high-water mark below current size")
	}
	if s.MemoryBytes() < int64(s.TupleCount())*24 {
		t.Error("MemoryBytes must cover the tuple list")
	}
}

func TestReset(t *testing.T) {
	s := MustNew(0.1)
	for i := 0; i < 100; i++ {
		s.Insert(int64(i))
	}
	s.Reset()
	if s.Count() != 0 || s.TupleCount() != 0 {
		t.Error("Reset left state behind")
	}
	s.Insert(42)
	if v, ok := s.Query(1); !ok || v != 42 {
		t.Errorf("after reset Query = %d,%v", v, ok)
	}
}

func TestRankBounds(t *testing.T) {
	s := MustNew(0.05)
	data := make([]int64, 10000)
	rng := rand.New(rand.NewSource(9))
	for i := range data {
		data[i] = rng.Int63n(1 << 20)
		s.Insert(data[i])
	}
	slices.Sort(data)
	e := int64(math.Ceil(0.05*float64(len(data)))) + 1
	for _, v := range []int64{data[0], data[len(data)/2], data[len(data)-1], -5, 1 << 21} {
		lo, hi := s.RankBounds(v)
		exact := exactRank(data, v)
		if exact < lo-e || exact > hi+e {
			t.Errorf("RankBounds(%d) = [%d,%d], exact %d", v, lo, hi, exact)
		}
		est := s.RankEstimate(v)
		if est < lo || est > hi {
			t.Errorf("RankEstimate outside bounds")
		}
	}
}

func TestQueryClamping(t *testing.T) {
	s := MustNew(0.1)
	for i := int64(1); i <= 100; i++ {
		s.Insert(i)
	}
	if v, ok := s.Query(-5); !ok || v != 1 {
		t.Errorf("Query(-5) = %d", v)
	}
	vHigh, ok := s.Query(1 << 40)
	if !ok || vHigh < 85 {
		t.Errorf("Query(huge) = %d, want near max", vHigh)
	}
}

// Property test: for random small streams, every rank query is within the
// bound. This is invariant 1 of DESIGN.md.
func TestQuickRankGuarantee(t *testing.T) {
	f := func(raw []int16, epsSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		eps := 0.02 + float64(epsSeed%10)*0.01
		s := MustNew(eps)
		data := make([]int64, len(raw))
		for i, x := range raw {
			data[i] = int64(x)
			s.Insert(int64(x))
		}
		if err := s.checkInvariant(); err != nil {
			return false
		}
		slices.Sort(data)
		n := int64(len(data))
		bound := int64(math.Ceil(eps*float64(n))) + 1
		for r := int64(1); r <= n; r += max64(1, n/7) {
			v, ok := s.Query(r)
			if !ok {
				return false
			}
			hi := exactRank(data, v)
			lo := int64(sort.Search(len(data), func(i int) bool { return data[i] >= v })) + 1
			if hi < r-bound || lo > r+bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestBandMonotonicity(t *testing.T) {
	// Newer tuples (delta close to p) must be in lower bands than old ones.
	p := int64(100)
	if band(p, p) != -1 {
		t.Error("brand-new tuple should be band -1")
	}
	prev := int64(-1)
	for delta := p - 1; delta >= 0; delta -= 7 {
		b := band(delta, p)
		if b < prev {
			t.Errorf("band(%d) = %d decreased below %d", delta, b, prev)
		}
		if b > prev {
			prev = b
		}
	}
}
