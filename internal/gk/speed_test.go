package gk

import (
	"math/rand"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	for _, eps := range []float64{0.01, 0.001, 0.0005} {
		b.Run(floatName(eps), func(b *testing.B) {
			s := MustNew(eps)
			rng := rand.New(rand.NewSource(1))
			vals := make([]int64, 1<<16)
			for i := range vals {
				vals[i] = rng.Int63()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(vals[i&(1<<16-1)])
			}
		})
	}
}

func floatName(f float64) string {
	switch f {
	case 0.01:
		return "eps=0.01"
	case 0.001:
		return "eps=0.001"
	default:
		return "eps=0.0005"
	}
}

func BenchmarkQuery(b *testing.B) {
	s := MustNew(0.001)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1_000_000; i++ {
		s.Insert(rng.Int63())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(int64(i%1_000_000 + 1))
	}
}
