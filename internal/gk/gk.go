// Package gk implements the Greenwald-Khanna space-efficient online quantile
// summary (SIGMOD 2001), the streaming substrate of the paper's method and
// its strongest pure-streaming baseline.
//
// The sketch maintains an ordered list of tuples (v, g, Δ) where
// rmin(i) = Σ_{j≤i} g_j and rmax(i) = rmin(i) + Δ_i bound the rank of v_i.
// The invariant g_i + Δ_i ≤ ⌊2εn⌋ guarantees that any rank query can be
// answered within ±εn. Compression uses the banded merge rule from the
// original paper, giving the deterministic worst-case O((1/ε)·log(εn)) space
// bound quoted as Theorem 1.
//
// Note on sidedness: the paper states Theorem 1 with a one-sided guarantee
// (returned rank in [r, r+εm]). Classic GK is two-sided (±εm). The stream
// summary layer (internal/core) therefore runs GK at ε/2 and offsets query
// ranks by εm/2, which restores exactly the band [i·εm, (i+1)·εm] of
// Lemma 1. See DESIGN.md §2.
package gk

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync"
)

// tuple is one summary entry. g is the gap rmin(i) - rmin(i-1); delta is
// rmax(i) - rmin(i).
type tuple struct {
	v     int64
	g     int64
	delta int64
}

// Sketch is a Greenwald-Khanna ε-approximate quantile summary. The zero
// value is not usable; construct with New. A Sketch is safe for concurrent
// use: an internal mutex serializes mutation, including the lazy
// buffer-flush that read paths trigger — necessary because the engine layer
// allows concurrent read-locked queries over one sketch.
type Sketch struct {
	mu     sync.Mutex
	eps    float64
	n      int64 // includes buffered-but-unmerged elements
	tuples []tuple
	// pending buffers recent inserts; they are sorted and merged into the
	// tuple list in one pass when the buffer fills (or before any query).
	// This keeps insertion amortized O(log) instead of O(tuples) per
	// element, without weakening the invariant: each buffered element is
	// merged with the same g=1, Δ=⌊2εn⌋−1 it would have received
	// individually (n only grows while it waits, so the invariant bound
	// only loosens).
	pending    []int64
	flushEvery int
	// scratch is the spare tuple buffer flush merges into; it swaps roles
	// with tuples on every flush so steady-state insertion allocates
	// nothing once both buffers have grown to the working-set size.
	scratch []tuple
	// maxTuples tracks the high-water mark of the tuple list, used for
	// worst-case memory reporting in the experiments.
	maxTuples int
}

// New returns an empty sketch with error parameter eps in (0, 1).
func New(eps float64) (*Sketch, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("gk: eps must be in (0,1), got %g", eps)
	}
	every := int(1.0 / (2.0 * eps))
	if every < 1 {
		every = 1
	}
	return &Sketch{eps: eps, flushEvery: every}, nil
}

// MustNew is New that panics on invalid eps; for tests and examples where
// eps is a compile-time constant.
func MustNew(eps float64) *Sketch {
	s, err := New(eps)
	if err != nil {
		panic(err)
	}
	return s
}

// Epsilon returns the error parameter.
func (s *Sketch) Epsilon() float64 { return s.eps }

// Count returns the number of elements inserted.
func (s *Sketch) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// TupleCount returns the current number of summary tuples (after merging
// any buffered inserts).
func (s *Sketch) TupleCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush()
	return len(s.tuples)
}

// MaxTupleCount returns the high-water mark of the tuple list.
func (s *Sketch) MaxTupleCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxTuples
}

// MemoryBytes estimates the live memory footprint of the summary: 24 bytes
// per tuple (three int64 fields) plus 8 bytes per buffered insert.
func (s *Sketch) MemoryBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.tuples))*24 + int64(cap(s.pending))*8
}

// MaxMemoryBytes estimates the peak memory footprint.
func (s *Sketch) MaxMemoryBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.maxTuples) * 24
}

// Reset empties the sketch, keeping its parameters. Used at the end of each
// time step when the batch is loaded into the warehouse (StreamReset,
// Algorithm 4).
func (s *Sketch) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = 0
	s.tuples = s.tuples[:0]
	s.pending = s.pending[:0]
}

// Insert adds one element to the summary.
func (s *Sketch) Insert(v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, v)
	s.n++
	if len(s.pending) >= s.flushEvery {
		s.flush()
	}
}

// flush merges the pending buffer into the tuple list in one pass and
// compresses.
func (s *Sketch) flush() {
	if len(s.pending) == 0 {
		return
	}
	slices.Sort(s.pending)
	cap2 := int64(2 * s.eps * float64(s.n))
	midDelta := cap2 - 1
	if midDelta < 0 {
		midDelta = 0
	}
	merged := s.scratch[:0]
	if need := len(s.tuples) + len(s.pending); cap(merged) < need {
		merged = make([]tuple, 0, need)
	}
	ti, pi := 0, 0
	for ti < len(s.tuples) || pi < len(s.pending) {
		if pi >= len(s.pending) || (ti < len(s.tuples) && s.tuples[ti].v < s.pending[pi]) {
			merged = append(merged, s.tuples[ti])
			ti++
			continue
		}
		v := s.pending[pi]
		pi++
		delta := midDelta
		// A new global minimum (first merged element) or maximum (last
		// merged element overall) is known exactly; interior positions get
		// the standard Δ.
		if len(merged) == 0 || (ti >= len(s.tuples) && pi == len(s.pending)) {
			delta = 0
		}
		merged = append(merged, tuple{v: v, g: 1, delta: delta})
	}
	s.scratch = s.tuples[:0] // retired buffer becomes next flush's target
	s.tuples = merged
	s.pending = s.pending[:0]
	if len(s.tuples) > s.maxTuples {
		s.maxTuples = len(s.tuples)
	}
	s.compress()
}

// band computes the compression band of a tuple's delta given the current
// capacity p = ⌊2εn⌋. Tuples in lower bands (older, more certain) must not
// absorb tuples from higher bands.
func band(delta, p int64) int64 {
	if delta == p {
		return -1 // brand-new tuples form their own lowest band
	}
	diff := p - delta + 1
	if diff <= 1 {
		return 0
	}
	return int64(bits.Len64(uint64(diff)) - 1) // floor(log2(diff))
}

// compress merges adjacent tuples whose combined uncertainty fits within the
// invariant g_i + g_{i+1} + Δ_{i+1} ≤ ⌊2εn⌋, respecting band order.
func (s *Sketch) compress() {
	if len(s.tuples) < 3 {
		return
	}
	p := int64(2 * s.eps * float64(s.n))
	// Sweep right-to-left; never remove the first or last tuple (exact min
	// and max).
	for i := len(s.tuples) - 2; i >= 1; i-- {
		t := s.tuples[i]
		next := s.tuples[i+1]
		if band(t.delta, p) <= band(next.delta, p) && t.g+next.g+next.delta <= p {
			s.tuples[i+1].g += t.g
			s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
		}
	}
}

// Query returns a value whose rank in the stream is within ±εn of r.
// r is clamped to [1, n]. Query on an empty sketch returns ok=false.
func (s *Sketch) Query(r int64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queryLocked(r)
}

func (s *Sketch) queryLocked(r int64) (int64, bool) {
	s.flush()
	if len(s.tuples) == 0 {
		return 0, false
	}
	if r < 1 {
		r = 1
	}
	if r > s.n {
		r = s.n
	}
	e := int64(math.Ceil(s.eps * float64(s.n)))
	rmin := int64(0)
	for i := range s.tuples {
		rmin += s.tuples[i].g
		rmax := rmin + s.tuples[i].delta
		if rmax > r+e {
			if i == 0 {
				return s.tuples[0].v, true
			}
			return s.tuples[i-1].v, true
		}
	}
	return s.tuples[len(s.tuples)-1].v, true
}

// Quantile returns an element approximating the φ-quantile (smallest element
// with rank ≥ ⌈φn⌉), within ±εn rank error.
func (s *Sketch) Quantile(phi float64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0, false
	}
	r := int64(math.Ceil(phi * float64(s.n)))
	return s.queryLocked(r)
}

// Min returns the exact minimum seen so far.
func (s *Sketch) Min() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush()
	if len(s.tuples) == 0 {
		return 0, false
	}
	return s.tuples[0].v, true
}

// Max returns the exact maximum seen so far.
func (s *Sketch) Max() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush()
	if len(s.tuples) == 0 {
		return 0, false
	}
	return s.tuples[len(s.tuples)-1].v, true
}

// RankBounds returns lower and upper bounds on the rank of v in the stream
// (number of elements ≤ v), derived from the summary invariants.
func (s *Sketch) RankBounds(v int64) (lo, hi int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rankBoundsLocked(v)
}

func (s *Sketch) rankBoundsLocked(v int64) (lo, hi int64) {
	s.flush()
	if len(s.tuples) == 0 {
		return 0, 0
	}
	rmin := int64(0)
	var prevRmin, prevRmax int64
	for i := range s.tuples {
		rmin += s.tuples[i].g
		rmax := rmin + s.tuples[i].delta
		if s.tuples[i].v > v {
			if i == 0 {
				return 0, 0
			}
			return prevRmin, prevRmax
		}
		prevRmin, prevRmax = rmin, rmax
	}
	return s.n, s.n
}

// RankEstimate returns a point estimate of the rank of v (midpoint of the
// bounds).
func (s *Sketch) RankEstimate(v int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	lo, hi := s.rankBoundsLocked(v)
	return (lo + hi) / 2
}

// checkInvariant verifies g_i + Δ_i ≤ ⌊2εn⌋ + 1 for all tuples and that
// values are sorted; used by tests.
func (s *Sketch) checkInvariant() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush()
	p := int64(2*s.eps*float64(s.n)) + 1
	total := int64(0)
	for i := range s.tuples {
		t := s.tuples[i]
		if i > 0 && t.v < s.tuples[i-1].v {
			return fmt.Errorf("gk: tuples out of order at %d", i)
		}
		if t.g+t.delta > p {
			return fmt.Errorf("gk: invariant violated at %d: g+delta=%d > %d", i, t.g+t.delta, p)
		}
		total += t.g
	}
	if total != s.n {
		return fmt.Errorf("gk: gap sum %d != n %d", total, s.n)
	}
	return nil
}
