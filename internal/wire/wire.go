// Package wire defines the binary ingest protocol spoken between hsqclient
// and an hsqd ingest listener: a versioned, length-prefixed frame format
// carrying stream-multiplexed batches of int64 elements.
//
// # Connection lifecycle
//
// The client opens a TCP connection and sends a Hello frame (magic,
// protocol version, session token). The server answers with a Welcome frame
// carrying the highest sequence number it has already applied for that
// session (0 for a new session) and the credit window. All further traffic
// is frames: the client sends OpenStream, Batch, EndStep and Flush; the
// server sends Ack and Error.
//
// # Sequencing, acks and credit
//
// Batch and EndStep frames are "sequenced": each carries a connection-wide
// strictly increasing Seq assigned by the client. The server applies
// sequenced frames in order and acknowledges them cumulatively — an Ack
// with Seq = s means every sequenced frame with Seq ≤ s has been fully
// applied. The Ack also restates the credit window W: the client may have
// at most W sequenced frames outstanding (sent but unacknowledged). When
// the server stalls (e.g. EndStep blocked on maintenance backpressure),
// acks stop, the client exhausts its credit and blocks — explicit
// backpressure instead of unbounded buffering on either side.
//
// OpenStream and Flush are not sequenced: OpenStream is idempotent (the
// client replays all of its stream bindings after a reconnect) and Flush
// merely requests an immediate Ack.
//
// # Exactly-once replay
//
// A client that loses its connection reconnects with the same session
// token. The Welcome's LastSeq tells it which buffered frames the server
// already applied; it drops those and replays the rest, so every sequenced
// frame is applied exactly once per server process even across reconnects.
//
// # Value encoding
//
// Batch values are delta-encoded (first value, then successive
// differences) and written as zig-zag varints, so sorted or slowly-varying
// batches — the common case for metric streams — cost ~1–2 bytes per
// element instead of 8.
//
// # Frame layout
//
// Every frame is
//
//	type  (1 byte)
//	len   (uvarint — payload length in bytes)
//	payload
//
// with payloads per type:
//
//	Hello       magic "HSQW" | version u8 | session: uvarint len + bytes
//	            | [uvarint flags — v2, written only when nonzero]
//	Welcome     version u8 | uvarint lastSeq | uvarint credit
//	            | [uvarint count | count × (name: uvarint len + bytes | uvarint seq) — v2]
//	OpenStream  uvarint streamID | name: uvarint len + bytes
//	Batch       uvarint seq | uvarint streamID | uvarint count | values
//	EndStep     uvarint seq | uvarint streamID
//	Flush       uvarint seq (the newest seq the client wants acknowledged)
//	Ack         uvarint seq | uvarint credit
//	Error       uvarint code | message: uvarint len + bytes
//	Ping        uvarint seq (opaque; echoed back)
//	Pong        uvarint seq (echo of the Ping's seq)
//	SummaryReq  uvarint seq | name: uvarint len + bytes
//	SummaryResp uvarint seq | uvarint code | message: uvarint len + bytes
//	            | data: uvarint len + bytes
//	Subscribe   uvarint subID | uvarint credit | plan: uvarint len + bytes
//	Unsubscribe uvarint subID
//	Push        uvarint subID | uvarint seq | uvarint code
//	            | message: uvarint len + bytes | data: uvarint len + bytes
//
// # Continuous queries
//
// Subscribe registers a continuous query: the payload carries a JSON query
// plan (see internal/query) under a client-chosen subscription ID (the
// StreamID field — IDs share nothing with stream bindings). The server
// evaluates the plan and pushes the result as a Push frame, then re-pushes
// after every EndStep touching a member stream, debounced and coalesced to
// the latest state. Credit bounds delivery: the server sends at most
// `credit` pushes for one Subscribe (0 = unbounded); the client re-sends
// Subscribe with the same subID to replenish (and/or replace the plan).
// Push.Seq numbers the pushes of one subscription from 1. A Push with a
// nonzero Code carries no result: it reports a per-subscription error
// (e.g. ErrCodePlan for an unevaluable plan) without poisoning the
// connection the way an Error frame would. Unsubscribe cancels the ID;
// pushes are not replayed across reconnects — the client re-subscribes and
// the first new push is a fresh full evaluation.
//
// # Version 2
//
// Version 2 adds keepalive (Ping/Pong), summary fetch (SummaryReq/
// SummaryResp), Hello flags marking relayed and leaf connections, a
// Welcome extension restating the last applied sequence per stream name,
// and the continuous-query frames (Subscribe/Unsubscribe/Push).
// Extensions to v1 frames are appended as optional trailing fields, so a
// v1 peer's frames decode unchanged; servers accept v1 and v2 Hellos.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/enc"
)

// Magic opens every Hello frame; a listener that reads anything else on a
// fresh connection is talking to the wrong client (or an HTTP request).
const Magic = "HSQW"

// Version is the newest protocol version this package speaks. Servers
// accept any version in [MinVersion, Version] and answer with the version
// they will speak on the connection.
const Version = 2

// MinVersion is the oldest protocol version still accepted.
const MinVersion = 1

// MaxFrameSize caps the payload length a Reader will accept, bounding the
// memory a malformed (or hostile) length prefix can make the decoder
// allocate. Large batches must be split below this by the sender; the
// default client batch size stays far under it.
const MaxFrameSize = 1 << 20

// MaxSessionLen bounds the opaque session token carried by Hello.
const MaxSessionLen = 64

// Frame types.
const (
	TypeHello       = 0x01 // client → server: magic, version, session
	TypeWelcome     = 0x02 // server → client: version, last applied seq, credit
	TypeOpenStream  = 0x03 // client → server: bind a stream ID to a name
	TypeBatch       = 0x04 // client → server: sequenced value batch
	TypeEndStep     = 0x05 // client → server: sequenced end-of-step
	TypeFlush       = 0x06 // client → server: request an immediate Ack
	TypeAck         = 0x07 // server → client: cumulative ack + credit
	TypeError       = 0x08 // server → client: terminal error
	TypePing        = 0x09 // either direction: keepalive probe (v2)
	TypePong        = 0x0A // either direction: keepalive echo (v2)
	TypeSummaryReq  = 0x0B // client → server: request a stream's shard summary (v2)
	TypeSummaryResp = 0x0C // server → client: encoded shard summary or error (v2)
	TypeSubscribe   = 0x0D // client → server: register/renew a continuous query (v2)
	TypeUnsubscribe = 0x0E // client → server: cancel a continuous query (v2)
	TypePush        = 0x0F // server → client: continuous query result or per-sub error (v2)
)

// Hello flags (v2). A plain client sends no flags; cluster-internal
// connections mark themselves so the receiver knows how far a frame may
// travel.
const (
	// HelloFlagRelay marks a connection carrying frames routed from a
	// non-owner node: the receiver applies them and fans out to its
	// followers, but must never route them onward again.
	HelloFlagRelay = 1 << 0
	// HelloFlagLeaf marks a follower (replica) connection: the receiver
	// applies frames locally and nothing more — no fan-out, no routing.
	HelloFlagLeaf = 1 << 1
)

// Error codes carried by Error and Push frames. The code is the
// machine-readable half of the error: clients branch on it — not on the
// message text — to decide whether a failure is fatal (ErrCodeProtocol,
// ErrCodePlan) or retryable after reconnecting (ErrCodeShutdown, and any
// connection-level failure without a code).
const (
	ErrCodeProtocol = 1 // malformed frame, bad magic or version mismatch; not retryable
	ErrCodeStream   = 2 // stream open or apply failure
	ErrCodeShutdown = 3 // server shutting down; reconnect later
	ErrCodePlan     = 4 // invalid or unevaluable query plan; retrying the same plan cannot succeed
)

// ErrFrameTooLarge is returned by Reader.ReadFrame for a length prefix
// beyond the reader's limit.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// StreamSeq is one per-stream high-water-mark entry in a v2 Welcome: the
// newest applied sequence number for one stream name of the session.
type StreamSeq struct {
	Name string
	Seq  uint64
}

// Frame is one protocol frame, decoded. Which fields are meaningful
// depends on Type (see the package comment's payload table); the rest are
// zero. A single struct — rather than one type per frame — keeps the
// encoder, decoder and their round-trip tests in one obvious place.
type Frame struct {
	Type byte

	Version    byte        // Hello, Welcome
	Session    string      // Hello
	Flags      uint64      // Hello (v2)
	Seq        uint64      // Batch, EndStep, Flush, Ack, Ping, Pong, SummaryReq/Resp; Welcome's LastSeq; Push's per-sub counter
	Credit     uint64      // Welcome, Ack; Subscribe's push budget
	StreamID   uint64      // OpenStream, Batch, EndStep; the subscription ID for Subscribe/Unsubscribe/Push
	Name       string      // OpenStream, SummaryReq
	Values     []int64     // Batch
	Code       uint64      // Error, SummaryResp, Push
	Message    string      // Error, SummaryResp, Push
	Data       []byte      // SummaryResp; Subscribe's JSON plan; Push's JSON result
	StreamSeqs []StreamSeq // Welcome (v2)
}

func (f *Frame) String() string {
	switch f.Type {
	case TypeHello:
		return fmt.Sprintf("Hello{v%d session=%q flags=%#x}", f.Version, f.Session, f.Flags)
	case TypeWelcome:
		return fmt.Sprintf("Welcome{v%d lastSeq=%d credit=%d streams=%v}", f.Version, f.Seq, f.Credit, f.StreamSeqs)
	case TypeOpenStream:
		return fmt.Sprintf("OpenStream{id=%d name=%q}", f.StreamID, f.Name)
	case TypeBatch:
		return fmt.Sprintf("Batch{seq=%d id=%d n=%d}", f.Seq, f.StreamID, len(f.Values))
	case TypeEndStep:
		return fmt.Sprintf("EndStep{seq=%d id=%d}", f.Seq, f.StreamID)
	case TypeFlush:
		return fmt.Sprintf("Flush{seq=%d}", f.Seq)
	case TypeAck:
		return fmt.Sprintf("Ack{seq=%d credit=%d}", f.Seq, f.Credit)
	case TypeError:
		return fmt.Sprintf("Error{code=%d %q}", f.Code, f.Message)
	case TypePing:
		return fmt.Sprintf("Ping{seq=%d}", f.Seq)
	case TypePong:
		return fmt.Sprintf("Pong{seq=%d}", f.Seq)
	case TypeSummaryReq:
		return fmt.Sprintf("SummaryReq{seq=%d name=%q}", f.Seq, f.Name)
	case TypeSummaryResp:
		return fmt.Sprintf("SummaryResp{seq=%d code=%d %q data=%d}", f.Seq, f.Code, f.Message, len(f.Data))
	case TypeSubscribe:
		return fmt.Sprintf("Subscribe{sub=%d credit=%d plan=%d}", f.StreamID, f.Credit, len(f.Data))
	case TypeUnsubscribe:
		return fmt.Sprintf("Unsubscribe{sub=%d}", f.StreamID)
	case TypePush:
		return fmt.Sprintf("Push{sub=%d seq=%d code=%d %q data=%d}", f.StreamID, f.Seq, f.Code, f.Message, len(f.Data))
	default:
		return fmt.Sprintf("Frame{type=%#x}", f.Type)
	}
}

// Sequenced reports whether the frame type carries a client-assigned
// sequence number that the server acknowledges (and that replay dedupes).
func (f *Frame) Sequenced() bool {
	return f.Type == TypeBatch || f.Type == TypeEndStep
}

// AppendValues appends the batch value encoding of vs (delta + zig-zag
// varint) to buf. The codec lives in internal/enc, shared with the columnar
// block format; the wire encoding is unchanged by the extraction.
func AppendValues(buf []byte, vs []int64) []byte {
	return enc.AppendDelta(buf, vs)
}

// appendUvarint / appendString are small helpers over encoding/binary.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendFrame appends the full wire encoding of f (header + payload) to
// buf and returns the extended slice.
func AppendFrame(buf []byte, f *Frame) ([]byte, error) {
	var payload []byte
	switch f.Type {
	case TypeHello:
		if len(f.Session) > MaxSessionLen {
			return nil, fmt.Errorf("wire: session token %d bytes exceeds %d", len(f.Session), MaxSessionLen)
		}
		payload = append(payload, Magic...)
		payload = append(payload, f.Version)
		payload = appendString(payload, f.Session)
		// The flags field is a v2 trailing extension; omitting it when
		// zero keeps v1-shaped Hellos byte-identical to version 1.
		if f.Flags != 0 {
			payload = binary.AppendUvarint(payload, f.Flags)
		}
	case TypeWelcome:
		payload = append(payload, f.Version)
		payload = binary.AppendUvarint(payload, f.Seq)
		payload = binary.AppendUvarint(payload, f.Credit)
		// Per-stream marks are a v2 trailing extension, same deal.
		if len(f.StreamSeqs) > 0 {
			payload = binary.AppendUvarint(payload, uint64(len(f.StreamSeqs)))
			for _, ss := range f.StreamSeqs {
				payload = appendString(payload, ss.Name)
				payload = binary.AppendUvarint(payload, ss.Seq)
			}
		}
	case TypeOpenStream:
		payload = binary.AppendUvarint(payload, f.StreamID)
		payload = appendString(payload, f.Name)
	case TypeBatch:
		payload = binary.AppendUvarint(payload, f.Seq)
		payload = binary.AppendUvarint(payload, f.StreamID)
		payload = binary.AppendUvarint(payload, uint64(len(f.Values)))
		payload = AppendValues(payload, f.Values)
	case TypeEndStep:
		payload = binary.AppendUvarint(payload, f.Seq)
		payload = binary.AppendUvarint(payload, f.StreamID)
	case TypeFlush:
		payload = binary.AppendUvarint(payload, f.Seq)
	case TypeAck:
		payload = binary.AppendUvarint(payload, f.Seq)
		payload = binary.AppendUvarint(payload, f.Credit)
	case TypeError:
		payload = binary.AppendUvarint(payload, f.Code)
		payload = appendString(payload, f.Message)
	case TypePing, TypePong:
		payload = binary.AppendUvarint(payload, f.Seq)
	case TypeSummaryReq:
		payload = binary.AppendUvarint(payload, f.Seq)
		payload = appendString(payload, f.Name)
	case TypeSummaryResp:
		payload = binary.AppendUvarint(payload, f.Seq)
		payload = binary.AppendUvarint(payload, f.Code)
		payload = appendString(payload, f.Message)
		payload = binary.AppendUvarint(payload, uint64(len(f.Data)))
		payload = append(payload, f.Data...)
	case TypeSubscribe:
		payload = binary.AppendUvarint(payload, f.StreamID)
		payload = binary.AppendUvarint(payload, f.Credit)
		payload = binary.AppendUvarint(payload, uint64(len(f.Data)))
		payload = append(payload, f.Data...)
	case TypeUnsubscribe:
		payload = binary.AppendUvarint(payload, f.StreamID)
	case TypePush:
		payload = binary.AppendUvarint(payload, f.StreamID)
		payload = binary.AppendUvarint(payload, f.Seq)
		payload = binary.AppendUvarint(payload, f.Code)
		payload = appendString(payload, f.Message)
		payload = binary.AppendUvarint(payload, uint64(len(f.Data)))
		payload = append(payload, f.Data...)
	default:
		return nil, fmt.Errorf("wire: encode unknown frame type %#x", f.Type)
	}
	if len(payload) > MaxFrameSize {
		return nil, fmt.Errorf("wire: %w (%d bytes)", ErrFrameTooLarge, len(payload))
	}
	buf = append(buf, f.Type)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...), nil
}

// Writer encodes frames onto a buffered stream. Not safe for concurrent
// use; callers that write from several goroutines must serialize.
type Writer struct {
	bw  *bufio.Writer
	buf []byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10)}
}

// WriteFrame encodes f into the write buffer. Call Flush to push buffered
// frames to the connection.
func (w *Writer) WriteFrame(f *Frame) error {
	buf, err := AppendFrame(w.buf[:0], f)
	if err != nil {
		return err
	}
	w.buf = buf[:0]
	_, err = w.bw.Write(buf)
	return err
}

// Flush flushes the buffered frames to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader decodes frames from a buffered stream. Not safe for concurrent
// use.
type Reader struct {
	br  *bufio.Reader
	max int
	buf []byte
}

// NewReader returns a Reader over r that rejects frames larger than
// MaxFrameSize.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10), max: MaxFrameSize}
}

// ReadFrame reads and decodes the next frame. The returned frame's Values
// slice is freshly allocated per call. On a clean EOF between frames it
// returns io.EOF; a connection cut mid-frame surfaces
// io.ErrUnexpectedEOF.
func (r *Reader) ReadFrame() (*Frame, error) {
	typ, err := r.br.ReadByte()
	if err != nil {
		return nil, err // io.EOF between frames is the clean-close signal
	}
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, eofMidFrame(err)
	}
	if n > uint64(r.max) {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return nil, eofMidFrame(err)
	}
	return DecodeFrame(typ, payload)
}

func eofMidFrame(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// DecodeFrame decodes one frame from its type byte and payload. The
// payload must be exactly the frame's encoded payload: trailing garbage is
// an error, so a corrupt length prefix cannot silently truncate or pad a
// frame.
func DecodeFrame(typ byte, payload []byte) (*Frame, error) {
	d := decoder{buf: payload}
	f := &Frame{Type: typ}
	switch typ {
	case TypeHello:
		magic := d.bytes(len(Magic))
		if string(magic) != Magic {
			return nil, fmt.Errorf("wire: bad magic %q (not an hsq ingest client?)", magic)
		}
		f.Version = d.byte()
		f.Session = d.string(MaxSessionLen)
		if d.err == nil && len(d.buf) > 0 { // v2 trailing flags
			f.Flags = d.uvarint()
		}
	case TypeWelcome:
		f.Version = d.byte()
		f.Seq = d.uvarint()
		f.Credit = d.uvarint()
		if d.err == nil && len(d.buf) > 0 { // v2 per-stream marks
			count := d.uvarint()
			// Each entry costs at least 2 bytes (empty name len + seq).
			if count > uint64(len(payload)) {
				return nil, fmt.Errorf("wire: welcome stream count %d exceeds payload", count)
			}
			f.StreamSeqs = make([]StreamSeq, 0, count)
			for i := uint64(0); i < count && d.err == nil; i++ {
				name := d.string(MaxFrameSize)
				f.StreamSeqs = append(f.StreamSeqs, StreamSeq{Name: name, Seq: d.uvarint()})
			}
		}
	case TypeOpenStream:
		f.StreamID = d.uvarint()
		f.Name = d.string(MaxFrameSize)
	case TypeBatch:
		f.Seq = d.uvarint()
		f.StreamID = d.uvarint()
		count := d.uvarint()
		// Even 1-byte-per-value encoding cannot fit more values than
		// payload bytes; reject before allocating.
		if count > uint64(len(payload)) {
			return nil, fmt.Errorf("wire: batch count %d exceeds payload", count)
		}
		f.Values = d.values(int(count))
	case TypeEndStep:
		f.Seq = d.uvarint()
		f.StreamID = d.uvarint()
	case TypeFlush:
		f.Seq = d.uvarint()
	case TypeAck:
		f.Seq = d.uvarint()
		f.Credit = d.uvarint()
	case TypeError:
		f.Code = d.uvarint()
		f.Message = d.string(MaxFrameSize)
	case TypePing, TypePong:
		f.Seq = d.uvarint()
	case TypeSummaryReq:
		f.Seq = d.uvarint()
		f.Name = d.string(MaxFrameSize)
	case TypeSummaryResp:
		f.Seq = d.uvarint()
		f.Code = d.uvarint()
		f.Message = d.string(MaxFrameSize)
		f.Data = d.blob(MaxFrameSize)
	case TypeSubscribe:
		f.StreamID = d.uvarint()
		f.Credit = d.uvarint()
		f.Data = d.blob(MaxFrameSize)
	case TypeUnsubscribe:
		f.StreamID = d.uvarint()
	case TypePush:
		f.StreamID = d.uvarint()
		f.Seq = d.uvarint()
		f.Code = d.uvarint()
		f.Message = d.string(MaxFrameSize)
		f.Data = d.blob(MaxFrameSize)
	default:
		return nil, fmt.Errorf("wire: unknown frame type %#x", typ)
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: decode %s frame: %w", TypeName(typ), d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("wire: decode %s frame: %d trailing bytes", TypeName(typ), len(d.buf))
	}
	return f, nil
}

// TypeName returns a short human-readable name for a frame type byte.
func TypeName(typ byte) string {
	switch typ {
	case TypeHello:
		return "hello"
	case TypeWelcome:
		return "welcome"
	case TypeOpenStream:
		return "open-stream"
	case TypeBatch:
		return "batch"
	case TypeEndStep:
		return "end-step"
	case TypeFlush:
		return "flush"
	case TypeAck:
		return "ack"
	case TypeError:
		return "error"
	case TypePing:
		return "ping"
	case TypePong:
		return "pong"
	case TypeSummaryReq:
		return "summary-req"
	case TypeSummaryResp:
		return "summary-resp"
	case TypeSubscribe:
		return "subscribe"
	case TypeUnsubscribe:
		return "unsubscribe"
	case TypePush:
		return "push"
	default:
		return fmt.Sprintf("%#x", typ)
	}
}

// decoder is a cursor over a frame payload that records the first error
// and makes every later read a no-op, so decode paths read linearly
// without per-field error plumbing.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail(io.ErrUnexpectedEOF)
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.fail(io.ErrUnexpectedEOF)
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail(fmt.Errorf("bad uvarint"))
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string(maxLen int) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(maxLen) {
		d.fail(fmt.Errorf("string length %d exceeds %d", n, maxLen))
		return ""
	}
	return string(d.bytes(int(n)))
}

// blob reads a length-prefixed byte string into a fresh slice (the
// decoder's buffer is reused across frames). A zero length yields nil.
func (d *decoder) blob(maxLen int) []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(maxLen) {
		d.fail(fmt.Errorf("blob length %d exceeds %d", n, maxLen))
		return nil
	}
	if n == 0 {
		return nil
	}
	b := d.bytes(int(n))
	if d.err != nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (d *decoder) values(count int) []int64 {
	if d.err != nil || count == 0 {
		return nil
	}
	vs := make([]int64, count)
	rest, err := enc.DecodeDelta(vs, d.buf)
	if err != nil {
		d.fail(err)
		return nil
	}
	d.buf = rest
	return vs
}

// SplitBatch splits vs into chunks whose encoded Batch frames stay under
// MaxFrameSize regardless of value distribution (10 bytes is the widest
// varint). Senders use it so arbitrarily large ObserveSlice calls never
// produce an oversized frame.
func SplitBatch(vs []int64) [][]int64 {
	// Per-value worst case 10 bytes + ~30 bytes header fields.
	const maxPerFrame = (MaxFrameSize - 64) / 10
	if len(vs) <= maxPerFrame {
		return [][]int64{vs}
	}
	var out [][]int64
	for len(vs) > 0 {
		n := min(len(vs), maxPerFrame)
		out = append(out, vs[:n])
		vs = vs[n:]
	}
	return out
}
