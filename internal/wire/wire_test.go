package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// sampleFrames covers every frame type with representative field values,
// including boundary ints.
func sampleFrames() []*Frame {
	return []*Frame{
		{Type: TypeHello, Version: Version, Session: "f00dcafe"},
		{Type: TypeHello, Version: 7, Session: ""},
		{Type: TypeHello, Version: Version, Session: "relay-1", Flags: HelloFlagRelay},
		{Type: TypeHello, Version: Version, Session: "leaf-9", Flags: HelloFlagRelay | HelloFlagLeaf},
		{Type: TypeWelcome, Version: Version, Seq: 0, Credit: 64},
		{Type: TypeWelcome, Version: Version, Seq: math.MaxUint64, Credit: 1},
		{Type: TypeWelcome, Version: Version, Seq: 7, Credit: 64,
			StreamSeqs: []StreamSeq{{Name: "api.latency", Seq: 7}, {Name: "db.rows", Seq: 3}}},
		{Type: TypeOpenStream, StreamID: 0, Name: "api.latency"},
		{Type: TypeOpenStream, StreamID: 1 << 40, Name: ""},
		{Type: TypeBatch, Seq: 1, StreamID: 3, Values: []int64{1, 2, 3, 4, 5}},
		{Type: TypeBatch, Seq: 2, StreamID: 0, Values: nil},
		{Type: TypeBatch, Seq: 3, StreamID: 9,
			Values: []int64{math.MinInt64, math.MaxInt64, 0, -1, 1, math.MaxInt64, math.MinInt64}},
		{Type: TypeEndStep, Seq: 17, StreamID: 2},
		{Type: TypeFlush, Seq: 99},
		{Type: TypeAck, Seq: 42, Credit: 64},
		{Type: TypeError, Code: ErrCodeShutdown, Message: "server shutting down"},
		{Type: TypeError, Code: ErrCodeProtocol, Message: ""},
		{Type: TypePing, Seq: 5},
		{Type: TypePong, Seq: 5},
		{Type: TypePing, Seq: math.MaxUint64},
		{Type: TypeSummaryReq, Seq: 11, Name: "api.latency"},
		{Type: TypeSummaryReq, Seq: 0, Name: ""},
		{Type: TypeSummaryResp, Seq: 11, Code: 0, Data: []byte{0x01, 0x00, 0xfe}},
		{Type: TypeSummaryResp, Seq: 12, Code: ErrCodeStream, Message: "unknown stream", Data: nil},
		{Type: TypeSubscribe, StreamID: 1, Credit: 256, Data: []byte(`{"match":"api.*","phis":[0.99]}`)},
		{Type: TypeSubscribe, StreamID: 1 << 33, Credit: 0, Data: nil},
		{Type: TypeUnsubscribe, StreamID: 1},
		{Type: TypeUnsubscribe, StreamID: math.MaxUint64},
		{Type: TypePush, StreamID: 1, Seq: 4, Data: []byte(`{"groups":[]}`)},
		{Type: TypePush, StreamID: 2, Seq: 1, Code: ErrCodePlan, Message: "plan selects no streams"},
	}
}

// TestFrameRoundTrip encodes every sample frame through a Writer and reads
// it back, field for field.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := sampleFrames()
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatalf("write %s: %v", f, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for _, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("read (want %s): %v", want, err)
		}
		// nil vs empty Values both mean "no values".
		if len(got.Values) == 0 && len(want.Values) == 0 {
			got.Values, want.Values = nil, nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip:\n got %#v\nwant %#v", got, want)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Errorf("after last frame: got %v, want io.EOF", err)
	}
}

// TestValuesRoundTrip drives the delta+zig-zag batch encoding with random
// and adversarial value sequences, including wraparound deltas.
func TestValuesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]int64{
		{},
		{0},
		{math.MinInt64},
		{math.MaxInt64, math.MinInt64, math.MaxInt64},
		{-5, -4, -3, 0, 3, 4, 5},
	}
	for i := 0; i < 50; i++ {
		n := rng.Intn(200)
		vs := make([]int64, n)
		for j := range vs {
			switch rng.Intn(3) {
			case 0:
				vs[j] = rng.Int63() - rng.Int63()
			case 1:
				vs[j] = int64(rng.Intn(100)) // small, clustered
			default:
				vs[j] = math.MinInt64 + rng.Int63() // near the bottom
			}
		}
		cases = append(cases, vs)
	}
	for _, vs := range cases {
		f := &Frame{Type: TypeBatch, Seq: 1, StreamID: 1, Values: vs}
		enc, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewReader(bytes.NewReader(enc)).ReadFrame()
		if err != nil {
			t.Fatalf("decode batch of %d: %v", len(vs), err)
		}
		if len(got.Values) != len(vs) {
			t.Fatalf("decoded %d values, want %d", len(got.Values), len(vs))
		}
		for j := range vs {
			if got.Values[j] != vs[j] {
				t.Fatalf("value %d: got %d, want %d", j, got.Values[j], vs[j])
			}
		}
	}
}

// TestDeltaEncodingIsCompact pins the point of the encoding: a sorted
// small-delta batch costs ~1 byte per element, not 8.
func TestDeltaEncodingIsCompact(t *testing.T) {
	vs := make([]int64, 1000)
	for i := range vs {
		vs[i] = 1_000_000 + int64(i)*3
	}
	enc := AppendValues(nil, vs)
	if len(enc) > 2*len(vs) {
		t.Errorf("sorted batch encoded to %d bytes for %d values; want ≤ 2 B/value", len(enc), len(vs))
	}
}

// TestDecodeRejects pins the decoder's defenses: trailing bytes, bad
// magic, oversized declared lengths, unknown types, truncated payloads.
func TestDecodeRejects(t *testing.T) {
	ok, err := AppendFrame(nil, &Frame{Type: TypeAck, Seq: 1, Credit: 2})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("trailing-bytes", func(t *testing.T) {
		if _, err := DecodeFrame(TypeAck, append([]byte{1, 2}, 0xff)); err == nil {
			t.Error("trailing bytes accepted")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		f := &Frame{Type: TypeHello, Version: Version, Session: "s"}
		enc, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		enc[2] = 'X' // corrupt magic inside the payload
		if _, err := NewReader(bytes.NewReader(enc)).ReadFrame(); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("oversized-length", func(t *testing.T) {
		// type + uvarint length far beyond MaxFrameSize, no payload.
		raw := []byte{TypeBatch, 0xff, 0xff, 0xff, 0xff, 0x7f}
		_, err := NewReader(bytes.NewReader(raw)).ReadFrame()
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("got %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("unknown-type", func(t *testing.T) {
		raw := append([]byte{0x7f}, ok[1:]...)
		if _, err := NewReader(bytes.NewReader(raw)).ReadFrame(); err == nil {
			t.Error("unknown type accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(ok); cut++ {
			if _, err := NewReader(bytes.NewReader(ok[:cut])).ReadFrame(); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("batch-count-lies", func(t *testing.T) {
		// Declares 1000 values but carries none: must fail before
		// allocating them.
		payload := []byte{1 /*seq*/, 1 /*stream*/, 0xe8, 0x07 /*count=1000*/}
		if _, err := DecodeFrame(TypeBatch, payload); err == nil {
			t.Error("lying batch count accepted")
		}
	})
}

// TestSplitBatch checks the splitter keeps every chunk's worst-case
// encoding under the frame limit and loses no values.
func TestSplitBatch(t *testing.T) {
	n := (MaxFrameSize/10)*2 + 123
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(i) * math.MaxInt32
	}
	var back []int64
	for _, chunk := range SplitBatch(vs) {
		enc, err := AppendFrame(nil, &Frame{Type: TypeBatch, Seq: 1, StreamID: 1, Values: chunk})
		if err != nil {
			t.Fatalf("chunk of %d: %v", len(chunk), err)
		}
		if len(enc) > MaxFrameSize+16 {
			t.Fatalf("chunk encodes to %d bytes", len(enc))
		}
		back = append(back, chunk...)
	}
	if !reflect.DeepEqual(back, vs) {
		t.Fatal("split chunks do not reassemble the input")
	}
}

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder: it must
// reject or accept without panicking or over-allocating, and anything it
// accepts must re-encode to a frame that decodes identically (decode ∘
// encode ∘ decode = decode).
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		enc, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{TypeBatch, 0x03, 0x01, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			fr, err := r.ReadFrame()
			if err != nil {
				return
			}
			enc, err := AppendFrame(nil, fr)
			if err != nil {
				t.Fatalf("decoded frame %s does not re-encode: %v", fr, err)
			}
			again, err := NewReader(bytes.NewReader(enc)).ReadFrame()
			if err != nil {
				t.Fatalf("re-encoded frame %s does not decode: %v", fr, err)
			}
			if again.String() != fr.String() {
				t.Fatalf("re-decode drift: %s vs %s", fr, again)
			}
		}
	})
}

// FuzzValuesRoundTrip fuzzes the batch value codec with structured input:
// the raw bytes are reinterpreted as int64s and must round-trip exactly.
func FuzzValuesRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		vs := make([]int64, len(data)/8)
		for i := range vs {
			v := int64(0)
			for j := 0; j < 8; j++ {
				v = v<<8 | int64(data[i*8+j])
			}
			vs[i] = v
		}
		fr := &Frame{Type: TypeBatch, Seq: 1, StreamID: 1, Values: vs}
		enc, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewReader(bytes.NewReader(enc)).ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Values) != len(vs) {
			t.Fatalf("got %d values, want %d", len(got.Values), len(vs))
		}
		for i := range vs {
			if got.Values[i] != vs[i] {
				t.Fatalf("value %d: got %d, want %d", i, got.Values[i], vs[i])
			}
		}
	})
}
