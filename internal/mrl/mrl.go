// Package mrl implements a Manku-Rajagopalan-Lindsay multi-level buffer
// quantile sketch in the randomized MRL99 style (SIGMOD 1998/1999): b
// buffers of k elements each, filled from the stream through level-dependent
// random sampling and collapsed into higher-weight buffers when space runs
// out. Wang et al.'s experimental study — which the paper leans on to pick
// its baselines — found MRL99 the strongest randomized streaming algorithm,
// slightly ahead of Greenwald-Khanna; it is included here as an additional
// baseline for the ablation experiments.
//
// Structure: a buffer at level l holds k sorted elements, each standing for
// weight(l) = 2^l stream elements. New buffers are filled at the sketch's
// current base level by sampling one element uniformly from each window of
// 2^base consecutive arrivals. When all b buffers are full, all buffers at
// the lowest occupied level are collapsed into a single buffer one level up
// via a weighted merge that keeps every (W/k)-th unit of weight at a random
// offset — the classic COLLAPSE with random cursor, which keeps the
// estimate unbiased.
package mrl

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// buffer is one full MRL buffer.
type buffer struct {
	level int
	// weight of each element: 2^level, except after uneven collapses where
	// it is the exact summed weight divided by k in weighted units.
	weight int64
	data   []int64 // sorted
}

// Sketch is an MRL-style quantile summary. Construct with New. Not safe for
// concurrent use.
type Sketch struct {
	b, k int
	bufs []*buffer
	rng  *rand.Rand

	// Current fill state.
	cur       []int64
	baseLevel int
	window    int64 // sampling window size = 2^baseLevel
	winSeen   int64 // arrivals in the current window
	winPick   int64 // which arrival within the window is kept
	pickVal   int64

	n int64
}

// New returns a sketch with b buffers of k elements. Memory is ~8·b·k
// bytes.
func New(b, k int, seed int64) (*Sketch, error) {
	if b < 2 {
		return nil, fmt.Errorf("mrl: need at least 2 buffers, got %d", b)
	}
	if k < 1 {
		return nil, fmt.Errorf("mrl: buffer capacity must be positive, got %d", k)
	}
	s := &Sketch{b: b, k: k, rng: rand.New(rand.NewSource(seed)), window: 1}
	s.resetWindow()
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(b, k int, seed int64) *Sketch {
	s, err := New(b, k, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// ForBudget sizes a sketch for a memory budget in bytes: b=8 buffers (a
// common MRL choice) of k = budget/(8·8) elements.
func ForBudget(budgetBytes int64, seed int64) (*Sketch, error) {
	k := int(budgetBytes / (8 * 8))
	if k < 1 {
		k = 1
	}
	return New(8, k, seed)
}

// Count returns the number of observed stream elements.
func (s *Sketch) Count() int64 { return s.n }

// BufferCount returns the number of full buffers.
func (s *Sketch) BufferCount() int { return len(s.bufs) }

// MemoryBytes is the committed footprint: 8 bytes per slot across all b
// buffers.
func (s *Sketch) MemoryBytes() int64 { return int64(s.b) * int64(s.k) * 8 }

// Reset empties the sketch.
func (s *Sketch) Reset() {
	s.bufs = nil
	s.cur = nil
	s.baseLevel = 0
	s.window = 1
	s.n = 0
	s.resetWindow()
}

func (s *Sketch) resetWindow() {
	s.winSeen = 0
	if s.window <= 1 {
		s.winPick = 0
	} else {
		s.winPick = s.rng.Int63n(s.window)
	}
}

// Insert observes one element.
func (s *Sketch) Insert(v int64) {
	s.n++
	if s.winSeen == s.winPick {
		s.pickVal = v
	}
	s.winSeen++
	if s.winSeen < s.window {
		return
	}
	// Window complete: commit the sampled element.
	s.cur = append(s.cur, s.pickVal)
	s.resetWindow()
	if len(s.cur) == s.k {
		s.sealCurrent()
	}
}

// sealCurrent promotes the fill buffer to a full buffer and collapses if
// the sketch is out of space.
func (s *Sketch) sealCurrent() {
	data := slices.Clone(s.cur)
	slices.Sort(data)
	s.bufs = append(s.bufs, &buffer{level: s.baseLevel, weight: s.window, data: data})
	s.cur = s.cur[:0]
	if len(s.bufs) >= s.b {
		s.collapse()
	}
}

// collapse merges all buffers at the lowest occupied level into one buffer
// one level up. If only one buffer sits at the lowest level it is joined
// with the next-lowest level's buffers (MRL98 policy).
func (s *Sketch) collapse() {
	low := s.bufs[0].level
	for _, b := range s.bufs {
		if b.level < low {
			low = b.level
		}
	}
	var group []*buffer
	var rest []*buffer
	for _, b := range s.bufs {
		if b.level == low {
			group = append(group, b)
		} else {
			rest = append(rest, b)
		}
	}
	if len(group) == 1 {
		// Pull in the next-lowest level too.
		next := math.MaxInt
		for _, b := range rest {
			if b.level < next {
				next = b.level
			}
		}
		var rest2 []*buffer
		for _, b := range rest {
			if b.level == next {
				group = append(group, b)
			} else {
				rest2 = append(rest2, b)
			}
		}
		rest = rest2
	}
	merged := s.weightedCollapse(group)
	s.bufs = append(rest, merged)

	// New fills happen at the sketch's lowest live level so weights stay
	// balanced.
	newBase := merged.level
	for _, b := range s.bufs {
		if b.level < newBase {
			newBase = b.level
		}
	}
	if newBase != s.baseLevel {
		s.baseLevel = newBase
		s.window = int64(1) << uint(newBase)
		// Restart the current window at the new rate, preserving any
		// partially filled buffer (its elements keep their old, smaller
		// weight contribution; the bias is O(k) elements and vanishes).
		s.resetWindow()
	}
}

// weightedCollapse merges the group into one k-element buffer whose level
// is max(level)+1, picking every (W/k)-th unit of weight starting at a
// random offset.
func (s *Sketch) weightedCollapse(group []*buffer) *buffer {
	maxLevel := group[0].level
	var totalW int64
	for _, b := range group {
		if b.level > maxLevel {
			maxLevel = b.level
		}
		totalW += b.weight * int64(len(b.data))
	}
	stride := totalW / int64(s.k)
	if stride < 1 {
		stride = 1
	}
	offset := s.rng.Int63n(stride)

	// k-way weighted merge via index cursors.
	idx := make([]int, len(group))
	out := make([]int64, 0, s.k)
	var cum int64
	next := offset
	for {
		// Find the smallest current element.
		bi := -1
		var best int64
		for i, b := range group {
			if idx[i] >= len(b.data) {
				continue
			}
			if bi == -1 || b.data[idx[i]] < best {
				bi, best = i, b.data[idx[i]]
			}
		}
		if bi == -1 {
			break
		}
		w := group[bi].weight
		for next < cum+w && len(out) < s.k {
			out = append(out, best)
			next += stride
		}
		cum += w
		idx[bi]++
	}
	for len(out) < s.k && len(out) > 0 {
		out = append(out, out[len(out)-1])
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return &buffer{level: maxLevel + 1, weight: totalW / int64(s.k), data: out}
}

// Query returns a value whose rank approximates r (clamped to [1, n]).
func (s *Sketch) Query(r int64) (int64, bool) {
	if s.n == 0 {
		return 0, false
	}
	if r < 1 {
		r = 1
	}
	if r > s.n {
		r = s.n
	}
	type wv struct {
		v int64
		w int64
	}
	var items []wv
	var totalW int64
	for _, b := range s.bufs {
		for _, v := range b.data {
			items = append(items, wv{v, b.weight})
			totalW += b.weight
		}
	}
	// The partial fill buffer participates with its window weight; the
	// in-flight window contributes nothing (≤ window elements unaccounted).
	for _, v := range s.cur {
		items = append(items, wv{v, s.window})
		totalW += s.window
	}
	if len(items) == 0 {
		return 0, false
	}
	slices.SortFunc(items, func(a, b wv) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	// Scale the requested rank into the weighted domain.
	target := int64(float64(r) / float64(s.n) * float64(totalW))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, it := range items {
		cum += it.w
		if cum >= target {
			return it.v, true
		}
	}
	return items[len(items)-1].v, true
}

// Quantile returns an approximation of the φ-quantile.
func (s *Sketch) Quantile(phi float64) (int64, bool) {
	if s.n == 0 {
		return 0, false
	}
	r := int64(math.Ceil(phi * float64(s.n)))
	return s.Query(r)
}
