package mrl

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 10, 0); err == nil {
		t.Error("b=1: want error")
	}
	if _, err := New(4, 0, 0); err == nil {
		t.Error("k=0: want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew invalid: want panic")
		}
	}()
	MustNew(0, 0, 0)
}

func TestEmpty(t *testing.T) {
	s := MustNew(4, 16, 1)
	if _, ok := s.Query(1); ok {
		t.Error("empty query: want ok=false")
	}
	if _, ok := s.Quantile(0.5); ok {
		t.Error("empty quantile: want ok=false")
	}
}

func TestSmallStreamNearExact(t *testing.T) {
	// While everything fits in the buffers (no collapse, no sampling),
	// answers are exact.
	s := MustNew(4, 100, 2)
	for i := int64(1); i <= 300; i++ {
		s.Insert(i)
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		want := int64(math.Ceil(phi * 300))
		got, ok := s.Quantile(phi)
		if !ok || got < want-3 || got > want+3 {
			t.Errorf("Quantile(%.1f) = %d, want ~%d", phi, got, want)
		}
	}
}

func TestLargeStreamAccuracy(t *testing.T) {
	s := MustNew(8, 1024, 3)
	rng := rand.New(rand.NewSource(7))
	n := 300000
	data := make([]int64, n)
	for i := range data {
		data[i] = rng.Int63n(1 << 30)
		s.Insert(data[i])
	}
	slices.Sort(data)
	// b=8, k=1024 → expected error well under 2% of n.
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		r := int64(math.Ceil(phi * float64(n)))
		v, ok := s.Query(r)
		if !ok {
			t.Fatal("query failed")
		}
		got := int64(sort.Search(len(data), func(i int) bool { return data[i] > v }))
		if math.Abs(float64(got-r)) > 0.02*float64(n) {
			t.Errorf("phi=%.2f: rank %d vs target %d (Δ=%.3f%%)", phi, got, r, 100*math.Abs(float64(got-r))/float64(n))
		}
	}
}

func TestSortedAdversary(t *testing.T) {
	s := MustNew(8, 512, 5)
	n := 200000
	for i := 0; i < n; i++ {
		s.Insert(int64(i))
	}
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		r := int64(math.Ceil(phi * float64(n)))
		v, ok := s.Query(r)
		if !ok {
			t.Fatal("query failed")
		}
		if math.Abs(float64(v-r)) > 0.03*float64(n) {
			t.Errorf("sorted: phi=%.2f got %d want ~%d", phi, v, r)
		}
	}
}

func TestBufferBound(t *testing.T) {
	s := MustNew(6, 64, 9)
	for i := 0; i < 500000; i++ {
		s.Insert(int64(i % 9973))
	}
	if s.BufferCount() > 6 {
		t.Errorf("buffers = %d > b", s.BufferCount())
	}
	if s.MemoryBytes() != 6*64*8 {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes())
	}
}

func TestReset(t *testing.T) {
	s := MustNew(4, 32, 11)
	for i := 0; i < 10000; i++ {
		s.Insert(int64(i))
	}
	s.Reset()
	if s.Count() != 0 || s.BufferCount() != 0 {
		t.Error("Reset incomplete")
	}
	s.Insert(42)
	if v, ok := s.Query(1); !ok || v != 42 {
		t.Errorf("post-reset Query = %d,%v", v, ok)
	}
}

func TestForBudget(t *testing.T) {
	s, err := ForBudget(64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.MemoryBytes() > 64<<10 {
		t.Errorf("budget exceeded: %d", s.MemoryBytes())
	}
	if _, err := ForBudget(1, 1); err != nil {
		t.Errorf("tiny budget should clamp: %v", err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() int64 {
		s := MustNew(4, 64, 77)
		for i := 0; i < 100000; i++ {
			s.Insert(int64((i * 2654435761) % 1000003))
		}
		v, _ := s.Quantile(0.5)
		return v
	}
	if run() != run() {
		t.Error("same seed produced different answers")
	}
}

// Property: answers always lie within the observed min/max.
func TestQuickAnswersInRange(t *testing.T) {
	f := func(raw []int32, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		s := MustNew(4, 8, seed)
		mn, mx := int64(math.MaxInt64), int64(math.MinInt64)
		for _, x := range raw {
			v := int64(x)
			s.Insert(v)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		v, ok := s.Quantile(0.5)
		if !ok {
			// Possible only if all arrivals are still inside one sampling
			// window; then nothing is committed yet.
			return s.Count() < 4
		}
		return v >= mn && v <= mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
