package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

func cacheTestCluster(t *testing.T, ttl time.Duration) *Cluster {
	t.Helper()
	ring, err := NewRing(Membership{Epoch: 1, Replicas: 1, Nodes: []Node{
		{ID: "a", Addr: "127.0.0.1:1"},
		{ID: "b", Addr: "127.0.0.1:2"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Self: "a", Ring: ring, SummaryTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestSummaryCacheHitMissTTL: a put entry is served until the TTL passes,
// then the next get is a miss and the entry is gone.
func TestSummaryCacheHitMissTTL(t *testing.T) {
	cl := cacheTestCluster(t, 50*time.Millisecond)
	key := summaryKey{stream: "s", node: "b", epoch: 1}
	sum := &core.ShardSummary{N: 42}

	if _, ok := cl.summaries.get(key); ok {
		t.Fatal("empty cache returned a hit")
	}
	cl.summaries.put(key, sum)
	got, ok := cl.summaries.get(key)
	if !ok || got.N != 42 {
		t.Fatalf("get = %v, %v; want cached summary", got, ok)
	}
	time.Sleep(60 * time.Millisecond)
	if _, ok := cl.summaries.get(key); ok {
		t.Fatal("entry served past its TTL")
	}
	st := cl.SummaryCacheStats()
	if !st.Enabled || st.Hits != 1 || st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v; want enabled, 1 hit, 2 misses, 0 entries", st)
	}
}

// TestSummaryCacheNilSummaryIsCacheable: "peer has no data" (a nil
// summary) is a valid answer and must be cached like any other — refetching
// empty streams on every poll would defeat the cache exactly where it is
// cheapest.
func TestSummaryCacheNilSummaryIsCacheable(t *testing.T) {
	cl := cacheTestCluster(t, time.Minute)
	key := summaryKey{stream: "empty", node: "b", epoch: 1}
	cl.summaries.put(key, nil)
	got, ok := cl.summaries.get(key)
	if !ok || got != nil {
		t.Fatalf("get = %v, %v; want cached nil", got, ok)
	}
}

// TestSummaryCacheInvalidatedByEndStepRelay: observing an EndStep frame for
// a stream — any relay path — must drop every node's cached summary for
// that stream and only that stream.
func TestSummaryCacheInvalidatedByEndStepRelay(t *testing.T) {
	cl := cacheTestCluster(t, time.Minute)
	for _, k := range []summaryKey{
		{stream: "s", node: "a", epoch: 1},
		{stream: "s", node: "b", epoch: 1},
		{stream: "other", node: "b", epoch: 1},
	} {
		cl.summaries.put(k, &core.ShardSummary{N: 1})
	}
	// Batch frames do not move a summary's step boundary: no invalidation.
	if err := cl.Relay("sess", "s", &wire.Frame{Type: wire.TypeBatch, Seq: 1, Values: []int64{1}}, false); err != nil {
		t.Fatal(err)
	}
	if got := cl.SummaryCacheStats().Entries; got != 3 {
		t.Fatalf("batch relay dropped entries: %d live, want 3", got)
	}
	if err := cl.Relay("sess", "s", &wire.Frame{Type: wire.TypeEndStep, Seq: 2}, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := cl.summaries.get(summaryKey{stream: "s", node: "a", epoch: 1}); ok {
		t.Error("stream s (node a) still cached after EndStep relay")
	}
	if _, ok := cl.summaries.get(summaryKey{stream: "s", node: "b", epoch: 1}); ok {
		t.Error("stream s (node b) still cached after EndStep relay")
	}
	if _, ok := cl.summaries.get(summaryKey{stream: "other", node: "b", epoch: 1}); !ok {
		t.Error("unrelated stream invalidated")
	}
	if inv := cl.SummaryCacheStats().Invalidations; inv != 1 {
		t.Errorf("invalidations = %d, want 1", inv)
	}
}

// TestSummaryCacheEpochKeying: entries fetched under an old ring epoch are
// invisible under a new one — a membership change must never serve
// summaries fetched under the old placement.
func TestSummaryCacheEpochKeying(t *testing.T) {
	cl := cacheTestCluster(t, time.Minute)
	cl.summaries.put(summaryKey{stream: "s", node: "b", epoch: 1}, &core.ShardSummary{N: 7})
	if _, ok := cl.summaries.get(summaryKey{stream: "s", node: "b", epoch: 2}); ok {
		t.Fatal("entry from epoch 1 served under epoch 2")
	}
}

// TestSummaryCacheDisabled: a negative TTL turns the cache off entirely.
func TestSummaryCacheDisabled(t *testing.T) {
	cl := cacheTestCluster(t, -1)
	if cl.summaries != nil {
		t.Fatal("negative TTL built a cache")
	}
	st := cl.SummaryCacheStats()
	if st.Enabled {
		t.Fatalf("stats report enabled: %+v", st)
	}
	cl.InvalidateSummaries("s") // must not panic with caching off
}
