package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/hsqclient"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/wire"
)

func maxPendingSteps() int {
	if v := os.Getenv("HSQ_MAX_PENDING_STEPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// TestClusterEndToEnd is the acceptance test for the sharded deployment:
// a 3-node cluster with replication factor 2 over real sockets, several
// streams fed through one failover-aware client whose FIRST address is
// the owner of stream 0 — and that owner is killed mid-step. The client
// must fail over to a replica, the session replay must restate exactly
// what was applied, and at the end every surviving member of every stream
// must hold the exact element count and ε-accurate quantiles. Any lost or
// doubled frame shows up as a count mismatch; any misrouted frame shows
// up as a stream materialized on a non-member.
func TestClusterEndToEnd(t *testing.T) {
	const (
		eps     = 0.05
		names   = 3
		steps   = 8
		perStep = 2000
	)
	h, err := NewHarness(HarnessConfig{
		Nodes:    3,
		Replicas: 2,
		Options: hsq.Options{
			Epsilon: eps, Kappa: 2, Backend: "mem", BlockSize: 4096,
			Maintenance: hsq.MaintenanceAsync, MaxPendingSteps: maxPendingSteps(), MaintenanceWorkers: 2,
		},
		DownAfter: 300 * time.Millisecond,
		DownRetry: 500 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	streams := make([]string, names)
	data := make([][]int64, names)
	for i := range streams {
		streams[i] = fmt.Sprintf("e2e-%d", i)
		rng := rand.New(rand.NewSource(int64(7 + i)))
		vs := make([]int64, steps*perStep)
		for j := range vs {
			vs[j] = int64(i*10_000_000) + rng.Int63n(1_000_000)
		}
		data[i] = vs
	}

	// Dial with the victim (stream 0's owner) first so the client's live
	// connection is the one that dies.
	victim := -1
	owner := h.Ring.Owner(streams[0])
	addrs := []string{owner.Addr}
	for i, hn := range h.Nodes {
		if hn.Node.ID == owner.ID {
			victim = i
			continue
		}
		addrs = append(addrs, hn.Node.Addr)
	}
	c, err := hsqclient.Dial(strings.Join(addrs, ","),
		hsqclient.WithBatchSize(256),
		hsqclient.WithSession("cluster-e2e"),
		hsqclient.WithReconnectBackoff(time.Millisecond, 50*time.Millisecond),
		hsqclient.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	feed := func(from, to int, killAt int) {
		for s := from; s < to; s++ {
			for i, name := range streams {
				st := c.Stream(name)
				chunk := data[i][s*perStep : (s+1)*perStep]
				for j, v := range chunk {
					if err := st.Observe(v); err != nil {
						t.Fatal(err)
					}
					// Kill the owner mid-chunk, mid-step: frames (often a
					// partial batch) are in flight and the step marker has
					// not been sent.
					if s == killAt && i == 0 && j == perStep/2 {
						t.Logf("killing node %s (owner of %s)", owner.ID, streams[0])
						h.Kill(victim)
					}
				}
				if err := st.EndStep(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	feed(0, steps/2, -1)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	feed(steps/2, steps, steps/2) // owner dies inside the first step here
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	for i, name := range streams {
		members := map[string]bool{}
		for _, m := range h.Ring.Members(name) {
			members[m.ID] = true
		}
		or := oracle.New(len(data[i]))
		or.Add(data[i]...)
		n := int64(len(data[i]))
		bound := int64(eps*float64(n)) + 1
		checked := 0
		for ni, hn := range h.Nodes {
			st, ok := hn.DB.Lookup(name)
			if !members[hn.Node.ID] {
				if ok {
					t.Errorf("stream %q materialized on non-member %s", name, hn.Node.ID)
				}
				continue
			}
			if ni == victim {
				continue // the dead owner may legitimately be mid-step
			}
			if !ok {
				t.Fatalf("stream %q missing on surviving member %s", name, hn.Node.ID)
			}
			if err := st.SyncMaintenance(); err != nil {
				t.Fatal(err)
			}
			if got := st.TotalCount(); got != n {
				t.Fatalf("stream %q on %s: count %d, want %d (lost or duplicated frames)",
					name, hn.Node.ID, got, n)
			}
			if got := st.Steps(); got != steps {
				t.Fatalf("stream %q on %s: steps %d, want %d", name, hn.Node.ID, got, steps)
			}
			for _, phi := range []float64{0.05, 0.5, 0.95, 0.99} {
				v, _, err := st.Quantile(phi)
				if err != nil {
					t.Fatal(err)
				}
				target := max(int64(phi*float64(n)), 1)
				if spanErr := or.SpanError(target, v); spanErr > bound {
					t.Errorf("stream %q on %s: quantile(%g)=%d rank error %d > ε·n=%d",
						name, hn.Node.ID, phi, v, spanErr, bound)
				}
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("stream %q: no surviving member checked", name)
		}
	}
}

// TestScatterGatherQuantile pins the cluster query path end to end: with
// replication factor 1, streams scatter across shards; gathering every
// shard's serialized summary for a set of streams and merging them must
// answer rank queries over the UNION of the streams within the quick-query
// bound (1.5·ε·N) — the exact computation hsqd's /cluster/quantile
// endpoint performs.
func TestScatterGatherQuantile(t *testing.T) {
	const (
		eps      = 0.02
		nStreams = 5
		perSt    = 6000
	)
	h, err := NewHarness(HarnessConfig{
		Nodes:    3,
		Replicas: 1,
		Options:  hsq.Options{Epsilon: eps, Backend: "mem"},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	c, err := hsqclient.Dial(h.Addrs(), hsqclient.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	// Pick stream names that provably scatter: at most two per owning
	// shard, so five streams span at least three shards.
	streams := make([]string, 0, nStreams)
	perOwner := map[string]int{}
	for i := 0; len(streams) < nStreams && i < 10_000; i++ {
		name := fmt.Sprintf("sg-%d", i)
		owner := h.Ring.Owner(name).ID
		if perOwner[owner] < 2 {
			perOwner[owner]++
			streams = append(streams, name)
		}
	}
	var union []int64
	rng := rand.New(rand.NewSource(11))
	owners := map[string]bool{}
	for i := range streams {
		owners[h.Ring.Owner(streams[i]).ID] = true
		st := c.Stream(streams[i])
		for j := 0; j < perSt; j++ {
			v := rng.Int63n(5_000_000)
			union = append(union, v)
			if err := st.Observe(v); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(owners) < 2 {
		t.Fatalf("all %d streams landed on one shard; pick different names", nStreams)
	}

	// Gather one summary per (stream, owner) — what a coordinator does.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var shards []*core.ShardSummary
	for _, name := range streams {
		sum, err := FetchSummary(ctx, 2*time.Second, h.Ring.Owner(name), name)
		if err != nil {
			t.Fatal(err)
		}
		if sum == nil {
			t.Fatalf("owner of %q returned no summary", name)
		}
		shards = append(shards, sum)
	}
	merged, total, err := core.MergeShardSummaries(shards)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(union))
	if total != n {
		t.Fatalf("merged N = %d, want %d", total, n)
	}
	or := oracle.New(len(union))
	or.Add(union...)
	bound := int64(1.5*eps*float64(n)) + 1
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		r := max(int64(phi*float64(n)), 1)
		v, err := merged.QuickQuery(r)
		if err != nil {
			t.Fatal(err)
		}
		if spanErr := or.SpanError(r, v); spanErr > bound {
			t.Errorf("merged quantile(%g)=%d rank error %d > 1.5ε·n=%d", phi, v, spanErr, bound)
		}
	}

	// A non-owner shard answers the same stream with an empty summary.
	for _, hn := range h.Nodes {
		if hn.Node.ID == h.Ring.Owner(streams[0]).ID {
			continue
		}
		sum, err := FetchSummary(ctx, 2*time.Second, hn.Node, streams[0])
		if err != nil {
			t.Fatal(err)
		}
		if sum != nil {
			t.Errorf("non-owner %s returned a summary for %q", hn.Node.ID, streams[0])
		}
		break
	}
}

// TestLeafRelayDropsAfterDownAfter pins the asymmetric give-up policy's
// fan-out half: when a follower stays unreachable, the leaf channel drops
// its frames after DownAfter (counting them) and WaitRelayed resolves —
// an explicit, bounded replication gap instead of a wedged producer.
func TestLeafRelayDropsAfterDownAfter(t *testing.T) {
	ring := mustRing(t, Membership{Epoch: 1, Replicas: 2, Nodes: []Node{
		{ID: "a", Addr: "127.0.0.1:1"}, // self; never dialed
		{ID: "b", Addr: "127.0.0.1:9"}, // discard port — nothing listens
	}})
	cl, err := New(Config{Self: "a", Ring: ring, DialTimeout: 50 * time.Millisecond,
		DownAfter: 100 * time.Millisecond, DownRetry: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	f := &wire.Frame{Type: wire.TypeEndStep, Seq: 1, StreamID: 1}
	if err := cl.Relay("s", "stream", f, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.WaitRelayed(ctx, "s", 1); err != nil {
		t.Fatalf("leaf relay to a down follower must resolve by dropping, got %v", err)
	}
	stats := cl.Stats()
	var dropped uint64
	for _, s := range stats {
		dropped += s.Dropped
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1 (stats: %+v)", dropped, stats)
	}
}

// TestRoutedRelayFailsWhenNoMemberLeft pins the routing half: a frame for
// a stream this node does not store, whose every member is unreachable,
// must surface an error from WaitRelayed (so the ingest server errors the
// client connection instead of acking unplaced data).
func TestRoutedRelayFailsWhenNoMemberLeft(t *testing.T) {
	ring := mustRing(t, Membership{Epoch: 1, Replicas: 1, Nodes: []Node{
		{ID: "a", Addr: "127.0.0.1:1"},
		{ID: "b", Addr: "127.0.0.1:9"},
	}})
	cl, err := New(Config{Self: "a", Ring: ring, DialTimeout: 50 * time.Millisecond,
		DownAfter: 100 * time.Millisecond, DownRetry: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Find a stream owned by b (a is not a member, so Relay routes).
	stream := ""
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("probe-%d", i)
		if ring.Owner(s).ID == "b" {
			stream = s
			break
		}
	}
	if stream == "" {
		t.Fatal("no stream owned by b in 1000 probes")
	}
	f := &wire.Frame{Type: wire.TypeEndStep, Seq: 1, StreamID: 1}
	if err := cl.Relay("s", stream, f, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.WaitRelayed(ctx, "s", 1); err == nil {
		t.Fatal("WaitRelayed resolved with every member of the stream down")
	}
}
