package cluster

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultSummaryTTL bounds how stale a cached shard summary may get when no
// invalidation traffic reaches this node (a writer talking directly to the
// owning shard, for example). It is deliberately short: the cache's real
// freshness signal is the explicit invalidation on observed EndStep relay
// frames.
const DefaultSummaryTTL = 2 * time.Second

// summaryKey identifies one cached fetch: a stream's summary as served by
// one member node under one ring epoch. Keying on the epoch means a
// membership change (rolling restart, replica move) silently drops every
// entry fetched under the old placement.
type summaryKey struct {
	stream string
	node   string
	epoch  uint64
}

// summaryEntry is one cached shard summary plus its expiry. A nil summary
// is a valid cached answer ("peer has no data for this stream").
type summaryEntry struct {
	sum     *core.ShardSummary
	expires time.Time
}

// summaryCacheCounters aggregates cache traffic.
type summaryCacheCounters struct {
	hits, misses, invalidations uint64
}

// summaryCache caches shard summaries fetched from peers so that a burst of
// coordinator reads (a dashboard polling /cluster/quantile over many
// streams) does not re-dial every shard for every request. Entries expire
// after a short TTL and are dropped eagerly when this node observes
// EndStep relay traffic for the stream — the only event that moves a shard
// summary's step boundary — so the common case serves fresh data without a
// network round trip and the worst case is one TTL behind.
type summaryCache struct {
	mu      sync.Mutex
	ttl     time.Duration
	entries map[summaryKey]summaryEntry
	ctr     summaryCacheCounters
}

// newSummaryCache builds a cache with the given TTL; nil when ttl < 0
// (caching disabled).
func newSummaryCache(ttl time.Duration) *summaryCache {
	if ttl < 0 {
		return nil
	}
	if ttl == 0 {
		ttl = DefaultSummaryTTL
	}
	return &summaryCache{ttl: ttl, entries: make(map[summaryKey]summaryEntry)}
}

// get returns the live cached summary for key, if any.
func (sc *summaryCache) get(key summaryKey) (*core.ShardSummary, bool) {
	now := time.Now()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	e, ok := sc.entries[key]
	if ok && now.Before(e.expires) {
		sc.ctr.hits++
		return e.sum, true
	}
	if ok {
		delete(sc.entries, key) // expired
	}
	sc.ctr.misses++
	return nil, false
}

// put records a fetched summary.
func (sc *summaryCache) put(key summaryKey, sum *core.ShardSummary) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.entries[key] = summaryEntry{sum: sum, expires: time.Now().Add(sc.ttl)}
}

// invalidateStream drops every node's cached summary for stream, counting
// one invalidation event if anything was dropped.
func (sc *summaryCache) invalidateStream(stream string) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	dropped := false
	for k := range sc.entries {
		if k.stream == stream {
			delete(sc.entries, k)
			dropped = true
		}
	}
	if dropped {
		sc.ctr.invalidations++
	}
}

// SummaryCacheStats snapshots the summary cache.
type SummaryCacheStats struct {
	// Enabled reports whether caching is on (TTL ≥ 0).
	Enabled bool `json:"enabled"`
	// TTLMillis is the entry lifetime in milliseconds.
	TTLMillis int64 `json:"ttl_ms"`
	// Hits and Misses count get outcomes (a hit saves one peer dial).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Invalidations counts streams dropped on observed EndStep traffic.
	Invalidations uint64 `json:"invalidations"`
	// Entries is the current live entry count.
	Entries int `json:"entries"`
}

// SummaryCacheStats returns the cluster's summary-cache counters.
func (c *Cluster) SummaryCacheStats() SummaryCacheStats {
	if c.summaries == nil {
		return SummaryCacheStats{}
	}
	sc := c.summaries
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return SummaryCacheStats{
		Enabled:       true,
		TTLMillis:     sc.ttl.Milliseconds(),
		Hits:          sc.ctr.hits,
		Misses:        sc.ctr.misses,
		Invalidations: sc.ctr.invalidations,
		Entries:       len(sc.entries),
	}
}

// InvalidateSummaries drops cached summaries for stream. Relay calls it on
// every observed EndStep frame — fan-out from a local apply, a routed
// client frame, or a forwarded REST write all pass through Relay, so a
// coordinator that sees a step close never serves the closed step from
// cache. Exposed for the ingest server's local-apply path, where a step
// can close without any relay traffic (single-member streams).
func (c *Cluster) InvalidateSummaries(stream string) {
	if c.summaries != nil {
		c.summaries.invalidateStream(stream)
	}
}

// CachedSummary returns stream's shard summary as served by node, consulting
// the summary cache first. Fetch errors are never cached.
func (c *Cluster) CachedSummary(ctx context.Context, node Node, stream string) (*core.ShardSummary, error) {
	if c.summaries == nil {
		return FetchSummary(ctx, c.cfg.DialTimeout, node, stream)
	}
	key := summaryKey{stream: stream, node: node.ID, epoch: c.cfg.Ring.Epoch()}
	if sum, ok := c.summaries.get(key); ok {
		return sum, nil
	}
	sum, err := FetchSummary(ctx, c.cfg.DialTimeout, node, stream)
	if err != nil {
		return nil, err
	}
	c.summaries.put(key, sum)
	return sum, nil
}
