// Package cluster shards an hsq deployment across several hsqd nodes: a
// deterministic consistent-hash ring places each stream on an owner node
// plus R−1 replica followers, ingest frames are fanned out (to followers)
// or routed (to the owning shard) over the internal/wire protocol with the
// client's own session tokens and sequence numbers — so the per-session
// replay/dedup machinery of internal/ingest gives exactly-once application
// on every member even across reconnects and node failure — and queries
// scatter-gather per-shard summaries (core.ShardSummary) that merge into
// one combined summary within the composed ε bands.
//
// Membership is explicit and epoch-numbered: every node is started with
// the same -cluster-peers list and epoch. There is no gossip, no elected
// coordinator and no automatic rebalancing yet; a membership change is a
// config change plus rolling restart, and the epoch number exists so that
// mismatched configs are detectable (the /cluster endpoint reports it).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// VirtualNodes is how many points each node contributes to the ring.
// Enough to keep stream counts within a few percent of even for small
// clusters, while keeping the ring tiny (N·64 entries).
const VirtualNodes = 64

// Node is one hsqd process: a stable ID (the -node-id flag) and its ingest
// listener address.
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Membership is the cluster's explicit, epoch-numbered configuration.
type Membership struct {
	// Epoch numbers the configuration; all nodes of a cluster must run the
	// same epoch (the /cluster endpoint exposes it for exactly that check).
	Epoch uint64
	// Replicas is the replication factor R: each stream lives on its owner
	// plus R−1 followers. Clamped to [1, len(Nodes)].
	Replicas int
	// Nodes is the full member list, self included.
	Nodes []Node
}

// ParsePeers parses the -cluster-peers flag format: a comma-separated list
// of id=host:port entries, e.g. "a=10.0.0.1:9090,b=10.0.0.2:9090".
func ParsePeers(s string) ([]Node, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	var nodes []Node
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=host:port)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		seen[id] = true
		nodes = append(nodes, Node{ID: id, Addr: addr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return nodes, nil
}

// ringPoint is one virtual node: a hash position owned by a node index.
type ringPoint struct {
	hash uint64
	node int
}

// Ring is the consistent-hash placement function. Immutable after New;
// safe for concurrent use.
type Ring struct {
	m      Membership
	points []ringPoint
	byID   map[string]Node
}

// NewRing builds the ring for a membership. Node IDs must be unique and
// non-empty; Replicas is clamped to [1, len(Nodes)].
func NewRing(m Membership) (*Ring, error) {
	if len(m.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: membership has no nodes")
	}
	if m.Replicas < 1 {
		m.Replicas = 1
	}
	if m.Replicas > len(m.Nodes) {
		m.Replicas = len(m.Nodes)
	}
	r := &Ring{m: m, byID: make(map[string]Node, len(m.Nodes))}
	for i, n := range m.Nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node %d has empty id", i)
		}
		if _, dup := r.byID[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		r.byID[n.ID] = n
		for v := 0; v < VirtualNodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n.ID, v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding vnode hashes: break the tie by node index so placement
		// stays deterministic across processes.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash64 is FNV-1a over s. Stability matters more than quality here: the
// placement must be identical on every node and every release.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck
	return h.Sum64()
}

// Epoch returns the membership epoch.
func (r *Ring) Epoch() uint64 { return r.m.Epoch }

// Replicas returns the effective replication factor.
func (r *Ring) Replicas() int { return r.m.Replicas }

// Nodes returns the member list in configuration order.
func (r *Ring) Nodes() []Node { return r.m.Nodes }

// NodeByID returns the node with the given ID.
func (r *Ring) NodeByID(id string) (Node, bool) {
	n, ok := r.byID[id]
	return n, ok
}

// Owner returns the node owning stream: the first node clockwise from the
// stream's hash position.
func (r *Ring) Owner(stream string) Node {
	return r.Members(stream)[0]
}

// Members returns the stream's owner followed by its R−1 replica
// followers: the first R distinct nodes clockwise from the stream's hash
// position.
func (r *Ring) Members(stream string) []Node {
	h := hash64(stream)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	members := make([]Node, 0, r.m.Replicas)
	seen := make(map[int]bool, r.m.Replicas)
	for i := 0; i < len(r.points) && len(members) < r.m.Replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		members = append(members, r.m.Nodes[p.node])
	}
	return members
}

// IsMember reports whether node id stores stream (as owner or follower).
func (r *Ring) IsMember(id, stream string) bool {
	for _, n := range r.Members(stream) {
		if n.ID == id {
			return true
		}
	}
	return false
}
