package cluster

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro"
	"repro/internal/ingest"
)

// HarnessNode is one in-process cluster node: an hsq.DB, its ingest
// server, and the node's cluster layer, bound to a real TCP listener.
type HarnessNode struct {
	Node    Node
	DB      *hsq.DB
	Server  *ingest.Server
	Cluster *Cluster

	ln     net.Listener
	killed bool
}

// Harness is an in-process N-node hsqd cluster over real sockets — the
// fixture behind the cluster end-to-end tests, the crash tester's
// node-kill mode, and the cluster experiment. It is NOT a production
// deployment path; cmd/hsqd wires the same pieces for real processes.
type Harness struct {
	Ring  *Ring
	Nodes []*HarnessNode
}

// HarnessConfig parametrizes NewHarness.
type HarnessConfig struct {
	// Nodes is the cluster size. Required (≥ 1).
	Nodes int
	// Replicas is the replication factor (default 1: no replication).
	Replicas int
	// Options configures each node's DB; Backend defaults to "mem".
	Options hsq.Options
	// DownAfter/DownRetry tune the relay give-up clocks (defaults are the
	// cluster package defaults — usually too slow for tests).
	DownAfter time.Duration
	DownRetry time.Duration
	// Window overrides the ingest credit window (0 = server default).
	Window int
	// Logf receives node-prefixed log lines when non-nil.
	Logf func(format string, args ...any)
}

// NewHarness boots an N-node cluster on loopback listeners. Callers must
// Close it.
func NewHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: harness needs ≥ 1 node, got %d", cfg.Nodes)
	}
	if cfg.Options.Backend == "" {
		cfg.Options.Backend = "mem"
	}
	h := &Harness{}
	fail := func(err error) (*Harness, error) {
		h.Close()
		return nil, err
	}

	// Listeners first: the membership needs every node's address.
	var members []Node
	for i := 0; i < cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		id := fmt.Sprintf("n%d", i)
		members = append(members, Node{ID: id, Addr: ln.Addr().String()})
		h.Nodes = append(h.Nodes, &HarnessNode{ln: ln})
	}
	ring, err := NewRing(Membership{Epoch: 1, Replicas: cfg.Replicas, Nodes: members})
	if err != nil {
		return fail(err)
	}
	h.Ring = ring

	for i, hn := range h.Nodes {
		hn.Node = members[i]
		logf := func(string, ...any) {}
		if cfg.Logf != nil {
			id := hn.Node.ID
			logf = func(format string, args ...any) { cfg.Logf("["+id+"] "+format, args...) }
		}
		db, err := hsq.Open(cfg.Options)
		if err != nil {
			return fail(err)
		}
		hn.DB = db
		cl, err := New(Config{
			Self:      hn.Node.ID,
			Ring:      ring,
			DownAfter: cfg.DownAfter,
			DownRetry: cfg.DownRetry,
			Logf:      logf,
		})
		if err != nil {
			return fail(err)
		}
		hn.Cluster = cl
		hn.Server = ingest.New(ingest.Config{DB: db, Cluster: cl, Window: cfg.Window, Logf: logf})
		go hn.Server.Serve(hn.ln) //nolint:errcheck
	}
	return h, nil
}

// Addrs returns every node's listen address, comma-joined — ready to hand
// to hsqclient.Dial for failover.
func (h *Harness) Addrs() string {
	s := ""
	for i, hn := range h.Nodes {
		if i > 0 {
			s += ","
		}
		s += hn.Node.Addr
	}
	return s
}

// Kill simulates node i crashing: its listener closes, every live
// connection is cut, and its outgoing relay channels stop. The node's DB
// stays readable (the process in this harness is shared), but nothing
// reaches it over the network anymore. Killing is permanent for the
// harness's lifetime.
func (h *Harness) Kill(i int) {
	hn := h.Nodes[i]
	if hn.killed {
		return
	}
	hn.killed = true
	if hn.ln != nil {
		hn.ln.Close() //nolint:errcheck
	}
	if hn.Server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hn.Server.Shutdown(ctx) //nolint:errcheck
		cancel()
	}
	if hn.Cluster != nil {
		hn.Cluster.Close()
	}
}

// Close tears the whole cluster down.
func (h *Harness) Close() {
	for i := range h.Nodes {
		h.Kill(i)
	}
	for _, hn := range h.Nodes {
		if hn.DB != nil {
			hn.DB.Close() //nolint:errcheck
		}
	}
}
