package cluster

import (
	"context"
	"fmt"
	"net"
	"time"

	"sync"

	"repro/internal/wire"
)

// relayFrame is one sequenced frame in flight toward another node, tagged
// with its stream name (stream IDs are connection-local, so the name is
// re-bound per relay connection).
type relayFrame struct {
	stream string
	f      *wire.Frame
}

// relay is the mini ingest client behind one relay channel: it forwards
// sequenced frames to one node under the ORIGINAL client session token and
// sequence numbers, so the target's per-(session, stream) replay dedup
// applies across every path a frame can take through the cluster.
//
// Delivery confirmation uses a Ping barrier rather than cumulative acks:
// the target processes frames strictly in order and echoes a Pong only
// after everything written before the Ping has been applied. Cumulative
// seq-based acks would be ambiguous here, because a rerouted channel can
// legally carry an older frame after a newer one (different streams).
type relay struct {
	c       *Cluster
	node    Node
	session string
	leaf    bool

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []relayFrame // not yet written on the current connection
	unacked []relayFrame // written, awaiting the Pong barrier
	nc      net.Conn     // current connection, nil while disconnected
	relayed uint64       // frames confirmed applied by the target
	dropped uint64       // frames dropped because the target stayed down (leaf only)
	failed  error        // routed channel with no live member; cleared on recovery
	stopped bool
	done    chan struct{}
}

func newRelay(c *Cluster, node Node, session string, leaf bool) *relay {
	r := &relay{c: c, node: node, session: session, leaf: leaf, done: make(chan struct{})}
	r.cond = sync.NewCond(&r.mu)
	go r.loop()
	return r
}

// enqueue adds one frame to the channel. Frames for a single stream always
// arrive in ascending sequence order (the ingest conn is serial); frames
// across streams may interleave arbitrarily after rerouting.
func (r *relay) enqueue(stream string, f *wire.Frame) {
	r.mu.Lock()
	r.queue = append(r.queue, relayFrame{stream: stream, f: f})
	r.cond.Broadcast()
	r.mu.Unlock()
}

// requeueFront puts frames back at the head of the queue (reroute failure
// path), preserving their relative order.
func (r *relay) requeueFront(frames []relayFrame) {
	r.mu.Lock()
	r.queue = append(append([]relayFrame{}, frames...), r.queue...)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// pendingBelowLocked reports whether any frame with Seq ≤ seq is still
// unresolved on this channel.
func (r *relay) pendingBelowLocked(seq uint64) bool {
	for _, rf := range r.queue {
		if rf.f.Seq <= seq {
			return true
		}
	}
	for _, rf := range r.unacked {
		if rf.f.Seq <= seq {
			return true
		}
	}
	return false
}

// waitResolved blocks until no frame with Seq ≤ seq is pending, the
// channel fails (routed, no live member), or ctx is done.
func (r *relay) waitResolved(ctx context.Context, seq uint64) error {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if !r.pendingBelowLocked(seq) {
			return nil
		}
		if r.failed != nil {
			return r.failed
		}
		if r.stopped {
			return fmt.Errorf("cluster: relay to %s stopped", r.node.ID)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		r.cond.Wait()
	}
}

func (r *relay) counters() (pending, relayed, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint64(len(r.queue) + len(r.unacked)), r.relayed, r.dropped
}

// stop shuts the channel down and waits for its goroutine.
func (r *relay) stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.stopped = true
	if r.nc != nil {
		r.nc.Close() //nolint:errcheck
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	<-r.done
}

// loop is the channel's goroutine: wait for work, keep a connection up,
// write bursts, await the Pong barrier. Connection failures retry with
// backoff; after DownAfter of continuous failure the target is declared
// down and the channel gives up on its pending frames (drop for leaf
// channels, reroute for routed ones).
func (r *relay) loop() {
	defer close(r.done)
	var (
		rd        *wire.Reader
		wr        *wire.Writer
		ids       map[string]uint64
		nextID    uint64
		credit    = uint64(64)
		nonce     uint64
		firstFail time.Time
		backoff   = 20 * time.Millisecond
	)
	dropConn := func() {
		r.mu.Lock()
		if r.nc != nil {
			r.nc.Close() //nolint:errcheck
			r.nc = nil
		}
		// Written-but-unconfirmed frames go back to the head of the queue;
		// the Welcome prune (and the target's dedup) absorb any that were
		// in fact applied.
		if len(r.unacked) > 0 {
			r.queue = append(append([]relayFrame{}, r.unacked...), r.queue...)
			r.unacked = nil
		}
		r.mu.Unlock()
		rd, wr, ids = nil, nil, nil
	}
	defer dropConn()

	// fail records one failed attempt (dial or I/O) and, once the target
	// has been unreachable for DownAfter, invokes the give-up policy.
	fail := func(err error) {
		dropConn()
		if firstFail.IsZero() {
			firstFail = time.Now()
		}
		if time.Since(firstFail) >= r.c.cfg.DownAfter {
			r.c.cfg.Logf("cluster: relay %s→%s (session %s): giving up: %v", r.c.self.ID, r.node.ID, r.session, err)
			r.giveUp()
			firstFail = time.Time{}
			backoff = 20 * time.Millisecond
			return
		}
		time.Sleep(backoff)
		backoff = min(backoff*2, 500*time.Millisecond)
	}

	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.stopped {
			r.cond.Wait()
		}
		if r.stopped {
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()

		// Ensure a connection.
		if wr == nil {
			nc, nrd, ncredit, err := r.connect()
			if err != nil {
				r.mu.Lock()
				stopped := r.stopped
				r.mu.Unlock()
				if stopped {
					return
				}
				fail(err)
				continue
			}
			r.mu.Lock()
			if r.stopped {
				r.mu.Unlock()
				nc.Close() //nolint:errcheck
				return
			}
			r.nc = nc
			r.failed = nil
			r.cond.Broadcast()
			r.mu.Unlock()
			rd, wr = nrd, wire.NewWriter(nc)
			ids = make(map[string]uint64)
			credit = max(ncredit, 1)
			firstFail = time.Time{}
			backoff = 20 * time.Millisecond
			r.c.nodeUp(r.node)
		}

		// Take a burst (bounded by the target's credit window).
		r.mu.Lock()
		n := min(len(r.queue), int(credit))
		burst := r.queue[:n:n]
		r.queue = r.queue[n:]
		r.unacked = append(r.unacked, burst...)
		r.mu.Unlock()
		if n == 0 {
			continue
		}

		// Write: bind unseen streams, then the frames, then the barrier.
		var err error
		for _, rf := range burst {
			id, ok := ids[rf.stream]
			if !ok {
				nextID++
				id = nextID
				ids[rf.stream] = id
				if err = wr.WriteFrame(&wire.Frame{Type: wire.TypeOpenStream, StreamID: id, Name: rf.stream}); err != nil {
					break
				}
			}
			cp := *rf.f
			cp.StreamID = id
			if err = wr.WriteFrame(&cp); err != nil {
				break
			}
		}
		nonce++
		if err == nil {
			err = wr.WriteFrame(&wire.Frame{Type: wire.TypePing, Seq: nonce})
		}
		if err == nil {
			err = wr.Flush()
		}
		if err == nil {
			err = r.awaitBarrier(rd, nonce, &credit)
		}
		if err != nil {
			r.mu.Lock()
			stopped := r.stopped
			r.mu.Unlock()
			if stopped {
				return
			}
			fail(err)
			continue
		}
		r.mu.Lock()
		r.relayed += uint64(len(r.unacked))
		r.unacked = nil
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// awaitBarrier reads frames until the Pong echoing nonce arrives: the
// target has then applied every frame written before the Ping. Acks along
// the way refresh the credit window; an Error frame is a failure.
func (r *relay) awaitBarrier(rd *wire.Reader, nonce uint64, credit *uint64) error {
	for {
		f, err := rd.ReadFrame()
		if err != nil {
			return err
		}
		switch f.Type {
		case wire.TypePong:
			if f.Seq == nonce {
				return nil
			}
		case wire.TypeAck:
			if f.Credit > 0 {
				*credit = f.Credit
			}
		case wire.TypeError:
			return fmt.Errorf("relay target %s: server error %d: %s", r.node.ID, f.Code, f.Message)
		default:
			// Ignore anything else (forward compatibility).
		}
	}
}

// connect dials the target and handshakes: Hello with the original session
// token and the channel's mode flag, Welcome back. The target's
// per-stream marks prune queued frames it has already applied.
func (r *relay) connect() (net.Conn, *wire.Reader, uint64, error) {
	nc, err := net.DialTimeout("tcp", r.node.Addr, r.c.cfg.DialTimeout)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("relay dial %s (%s): %w", r.node.ID, r.node.Addr, err)
	}
	flags := uint64(wire.HelloFlagRelay)
	if r.leaf {
		flags = wire.HelloFlagLeaf
	}
	w := wire.NewWriter(nc)
	if err := w.WriteFrame(&wire.Frame{Type: wire.TypeHello, Version: wire.Version, Session: r.session, Flags: flags}); err == nil {
		err = w.Flush()
	} else {
		nc.Close() //nolint:errcheck
		return nil, nil, 0, err
	}
	rd := wire.NewReader(nc)
	nc.SetReadDeadline(time.Now().Add(r.c.cfg.DialTimeout)) //nolint:errcheck
	f, err := rd.ReadFrame()
	if err != nil {
		nc.Close() //nolint:errcheck
		return nil, nil, 0, fmt.Errorf("relay handshake %s: %w", r.node.ID, err)
	}
	nc.SetReadDeadline(time.Time{}) //nolint:errcheck
	if f.Type != wire.TypeWelcome {
		nc.Close() //nolint:errcheck
		if f.Type == wire.TypeError {
			return nil, nil, 0, fmt.Errorf("relay handshake %s: server error %d: %s", r.node.ID, f.Code, f.Message)
		}
		return nil, nil, 0, fmt.Errorf("relay handshake %s: unexpected %s frame", r.node.ID, wire.TypeName(f.Type))
	}
	if len(f.StreamSeqs) > 0 {
		marks := make(map[string]uint64, len(f.StreamSeqs))
		for _, ss := range f.StreamSeqs {
			marks[ss.Name] = ss.Seq
		}
		r.mu.Lock()
		kept := r.queue[:0]
		for _, rf := range r.queue {
			if rf.f.Seq > marks[rf.stream] {
				kept = append(kept, rf)
			} else {
				r.relayed++
			}
		}
		r.queue = kept
		r.cond.Broadcast()
		r.mu.Unlock()
	}
	return nc, rd, f.Credit, nil
}

// giveUp resolves the channel's pending frames after the target has been
// down for DownAfter: leaf channels drop them (the data is applied on this
// node and acked upstream only because every other path was also
// resolved), routed channels hand them to the next live member.
func (r *relay) giveUp() {
	r.c.nodeDown(r.node)
	r.mu.Lock()
	pending := append(append([]relayFrame{}, r.unacked...), r.queue...)
	r.unacked, r.queue = nil, nil
	if r.leaf {
		r.dropped += uint64(len(pending))
		r.cond.Broadcast()
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	if err := r.c.reroute(r, pending); err != nil {
		r.mu.Lock()
		r.failed = err
		r.cond.Broadcast()
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}
