package cluster

import (
	"fmt"
	"testing"
)

func mustRing(t *testing.T, m Membership) *Ring {
	t.Helper()
	r, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func nodes(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node{ID: fmt.Sprintf("n%02d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	return out
}

func streams(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("stream-%04d", i)
	}
	return out
}

func TestParsePeers(t *testing.T) {
	ns, err := ParsePeers("a=10.0.0.1:9090, b=10.0.0.2:9090 ,c=h:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{{"a", "10.0.0.1:9090"}, {"b", "10.0.0.2:9090"}, {"c", "h:1"}}
	if len(ns) != len(want) {
		t.Fatalf("got %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Errorf("peer %d: got %v, want %v", i, ns[i], want[i])
		}
	}
	for _, bad := range []string{"", "a", "=x:1", "a=", "a=x:1,a=y:2"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

// TestRingDeterministic pins that two rings over the same membership place
// every stream identically — the property every node relies on, since
// placement is computed independently on each.
func TestRingDeterministic(t *testing.T) {
	m := Membership{Epoch: 1, Replicas: 2, Nodes: nodes(5)}
	a, b := mustRing(t, m), mustRing(t, m)
	for _, s := range streams(500) {
		ma, mb := a.Members(s), b.Members(s)
		if len(ma) != 2 || len(mb) != 2 || ma[0] != mb[0] || ma[1] != mb[1] {
			t.Fatalf("stream %q: %v vs %v", s, ma, mb)
		}
		if ma[0] == ma[1] {
			t.Fatalf("stream %q: owner and follower are the same node", s)
		}
		if !a.IsMember(ma[0].ID, s) || !a.IsMember(ma[1].ID, s) || a.IsMember("absent", s) {
			t.Fatalf("stream %q: IsMember disagrees with Members", s)
		}
	}
}

// TestRingBalance checks that virtual nodes keep ownership counts roughly
// even: no node of a 5-node ring should own more than twice its fair share
// of 2000 streams.
func TestRingBalance(t *testing.T) {
	r := mustRing(t, Membership{Replicas: 1, Nodes: nodes(5)})
	counts := make(map[string]int)
	ss := streams(2000)
	for _, s := range ss {
		counts[r.Owner(s).ID]++
	}
	fair := len(ss) / 5
	for id, c := range counts {
		if c > 2*fair || c < fair/3 {
			t.Errorf("node %s owns %d streams (fair share %d): ring badly unbalanced", id, c, fair)
		}
	}
}

// TestRingStabilityUnderAddRemove pins the consistent-hashing property the
// cluster depends on for membership changes: adding or removing one node
// moves only a bounded fraction of stream ownerships — ~1/N of keys, with
// slack for vnode variance — and never reshuffles streams between two
// surviving nodes.
func TestRingStabilityUnderAddRemove(t *testing.T) {
	ss := streams(4000)
	base := mustRing(t, Membership{Replicas: 1, Nodes: nodes(6)})

	t.Run("add", func(t *testing.T) {
		grown := mustRing(t, Membership{Replicas: 1, Nodes: append(nodes(6), Node{ID: "new", Addr: "x:1"})})
		moved := 0
		for _, s := range ss {
			was, is := base.Owner(s).ID, grown.Owner(s).ID
			if was == is {
				continue
			}
			moved++
			if is != "new" {
				t.Fatalf("stream %q moved %s→%s, but only the new node may gain streams", s, was, is)
			}
		}
		// Fair share is 1/7 ≈ 571; allow 2× for vnode variance.
		if max := 2 * len(ss) / 7; moved > max {
			t.Errorf("adding one node moved %d/%d streams (want ≤ %d)", moved, len(ss), max)
		}
		if moved == 0 {
			t.Error("adding a node moved nothing: ring ignores membership")
		}
	})

	t.Run("remove", func(t *testing.T) {
		shrunk := mustRing(t, Membership{Replicas: 1, Nodes: nodes(5)}) // drops n05
		moved := 0
		for _, s := range ss {
			was, is := base.Owner(s).ID, shrunk.Owner(s).ID
			if was == is {
				continue
			}
			moved++
			if was != "n05" {
				t.Fatalf("stream %q moved %s→%s, but only the removed node's streams may move", s, was, is)
			}
		}
		if max := 2 * len(ss) / 6; moved > max {
			t.Errorf("removing one node moved %d/%d streams (want ≤ %d)", moved, len(ss), max)
		}
	})
}

// TestRingReplicaSets checks follower sets: R distinct members, owner
// first, and replica sets also move minimally when a node joins.
func TestRingReplicaSets(t *testing.T) {
	base := mustRing(t, Membership{Replicas: 3, Nodes: nodes(6)})
	grown := mustRing(t, Membership{Replicas: 3, Nodes: append(nodes(6), Node{ID: "new", Addr: "x:1"})})
	changed := 0
	for _, s := range streams(2000) {
		mb, mg := base.Members(s), grown.Members(s)
		if len(mb) != 3 || len(mg) != 3 {
			t.Fatalf("stream %q: member counts %d/%d", s, len(mb), len(mg))
		}
		// Membership in the new ring may differ only by the new node
		// displacing at most one old member.
		oldSet := map[string]bool{mb[0].ID: true, mb[1].ID: true, mb[2].ID: true}
		gained := 0
		for _, n := range mg {
			if !oldSet[n.ID] {
				gained++
				if n.ID != "new" {
					t.Fatalf("stream %q: node %s entered the replica set, only \"new\" may", s, n.ID)
				}
			}
		}
		if gained > 0 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("no replica set changed after adding a node")
	}
}

func TestRingClampsReplicas(t *testing.T) {
	r := mustRing(t, Membership{Replicas: 9, Nodes: nodes(3)})
	if got := len(r.Members("s")); got != 3 {
		t.Fatalf("replicas clamped to %d, want 3", got)
	}
	r = mustRing(t, Membership{Replicas: 0, Nodes: nodes(3)})
	if got := len(r.Members("s")); got != 1 {
		t.Fatalf("replicas defaulted to %d, want 1", got)
	}
}
