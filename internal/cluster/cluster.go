package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// Defaults for the relay transport knobs.
const (
	DefaultDialTimeout = 2 * time.Second
	DefaultDownAfter   = 3 * time.Second
	DefaultDownRetry   = 5 * time.Second
)

// Config parametrizes a Cluster.
type Config struct {
	// Self is this node's ID; it must appear in Ring's membership.
	Self string
	// Ring is the placement function (shared, immutable).
	Ring *Ring
	// DialTimeout bounds each relay/peer dial attempt. 0 means
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// DownAfter is how long a relay keeps failing to reach a node before
	// declaring it down — dropping its fan-out frames (leaf) or rerouting
	// its frames to the next live member (routed). 0 means
	// DefaultDownAfter.
	DownAfter time.Duration
	// DownRetry is how long a down node is skipped by routing decisions
	// before being probed again. 0 means DefaultDownRetry.
	DownRetry time.Duration
	// SummaryTTL bounds how long a fetched peer shard summary may be served
	// from cache without refetching. 0 means DefaultSummaryTTL; negative
	// disables summary caching. Cached entries are additionally dropped the
	// moment this node observes EndStep relay traffic for the stream, so
	// the TTL only matters for writes this node never sees.
	SummaryTTL time.Duration
	// Logf, when non-nil, receives relay lifecycle log lines.
	Logf func(format string, args ...any)
}

// Cluster is one node's view of the sharded deployment: the ring, plus the
// set of live relay channels fanning applied frames to followers and
// routing misdirected frames to their owning shard. It implements the
// ingest server's cluster hook.
type Cluster struct {
	cfg  Config
	self Node
	// summaries caches peer shard summaries for coordinator reads; nil
	// when disabled. It has its own lock — reads never touch c.mu.
	summaries *summaryCache

	mu         sync.Mutex
	relays     map[relayKey]*relay
	downUntil  map[string]time.Time // node ID → skip routing until
	rerouteGen uint64               // bumped whenever frames move between relays
	closed     bool
}

// relayKey identifies one relay channel: frames for one session toward one
// node, in one mode. Leaf channels carry fan-out copies of locally applied
// frames; routed channels carry frames this node does not store.
type relayKey struct {
	node    string
	session string
	leaf    bool
}

// New builds the cluster layer for one node.
func New(cfg Config) (*Cluster, error) {
	if cfg.Ring == nil {
		return nil, fmt.Errorf("cluster: nil ring")
	}
	self, ok := cfg.Ring.NodeByID(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: self id %q not in membership", cfg.Self)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = DefaultDownAfter
	}
	if cfg.DownRetry <= 0 {
		cfg.DownRetry = DefaultDownRetry
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Cluster{
		cfg:       cfg,
		self:      self,
		summaries: newSummaryCache(cfg.SummaryTTL),
		relays:    make(map[relayKey]*relay),
		downUntil: make(map[string]time.Time),
	}, nil
}

// Self returns this node's identity.
func (c *Cluster) Self() Node { return c.self }

// Ring returns the placement ring.
func (c *Cluster) Ring() *Ring { return c.cfg.Ring }

// Member reports whether this node stores stream (owner or follower) —
// the ingest server's "apply locally?" predicate.
func (c *Cluster) Member(stream string) bool {
	return c.cfg.Ring.IsMember(c.self.ID, stream)
}

// Relay hands one sequenced frame (original session token, original
// sequence number) to the cluster transport.
//
// When this node is a member of the stream, the frame was applied locally
// and is fanned out to every other member over leaf channels. When it is
// not and fanOnly is false, the frame is routed to the first live member,
// which applies it and fans it out in turn. fanOnly=true marks frames that
// arrived over an already-routed connection: they fan but never route
// again, bounding every frame's path to client → router → owner →
// followers.
//
// The error path matters for acks: a frame that cannot even be enqueued
// toward a live node must not be acknowledged to the client, so the
// ingest server turns a Relay error into a connection error and the
// client retries elsewhere.
func (c *Cluster) Relay(session, stream string, f *wire.Frame, fanOnly bool) error {
	if f.Type == wire.TypeEndStep {
		// A closing step is the only event that moves a shard summary's
		// boundary; every path a step close can take — local fan-out,
		// routed client frame, forwarded REST write — passes through here.
		c.InvalidateSummaries(stream)
	}
	members := c.cfg.Ring.Members(stream)
	selfMember := false
	for _, n := range members {
		if n.ID == c.self.ID {
			selfMember = true
			break
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("cluster: closed")
	}
	if selfMember || fanOnly {
		// Fan the applied frame to every other member. A member we cannot
		// reach is the leaf relay's problem (drop after DownAfter).
		for _, n := range members {
			if n.ID == c.self.ID {
				continue
			}
			c.relayLocked(n, session, true).enqueue(stream, f)
		}
		return nil
	}
	n, ok := c.firstLiveLocked(members)
	if !ok {
		return fmt.Errorf("cluster: no live member for stream %q (owner %s)", stream, members[0].ID)
	}
	c.relayLocked(n, session, false).enqueue(stream, f)
	return nil
}

// WaitRelayed blocks until every frame relayed for session with sequence
// number ≤ seq has been acknowledged by its target (or resolved: dropped
// by a leaf channel whose target is down, or rerouted). The ingest server
// calls it before acknowledging the client, which is what makes client
// acks chain-gated: an acked frame is applied on every reachable member.
func (c *Cluster) WaitRelayed(ctx context.Context, session string, seq uint64) error {
	for {
		c.mu.Lock()
		gen := c.rerouteGen
		var rs []*relay
		for k, r := range c.relays {
			if k.session == session {
				rs = append(rs, r)
			}
		}
		c.mu.Unlock()
		for _, r := range rs {
			if err := r.waitResolved(ctx, seq); err != nil {
				return err
			}
		}
		c.mu.Lock()
		again := c.rerouteGen != gen
		c.mu.Unlock()
		if !again {
			return nil
		}
		// Frames were rerouted while we waited — they may now sit on a relay
		// our snapshot missed. Re-snapshot and wait again.
	}
}

// relayLocked returns (creating on demand) the relay channel for a key.
func (c *Cluster) relayLocked(n Node, session string, leaf bool) *relay {
	k := relayKey{node: n.ID, session: session, leaf: leaf}
	r, ok := c.relays[k]
	if !ok {
		r = newRelay(c, n, session, leaf)
		c.relays[k] = r
	}
	return r
}

// firstLiveLocked picks the first member not currently marked down.
func (c *Cluster) firstLiveLocked(members []Node) (Node, bool) {
	now := time.Now()
	for _, n := range members {
		if n.ID == c.self.ID {
			continue // routing never targets self: self not a member here
		}
		if until, down := c.downUntil[n.ID]; down && now.Before(until) {
			continue
		}
		return n, true
	}
	return Node{}, false
}

// nodeDown records a node as unreachable so routing skips it for a while.
func (c *Cluster) nodeDown(n Node) {
	c.mu.Lock()
	c.downUntil[n.ID] = time.Now().Add(c.cfg.DownRetry)
	c.mu.Unlock()
	c.cfg.Logf("cluster: node %s (%s) marked down", n.ID, n.Addr)
}

// nodeUp clears a node's down mark after a successful connection.
func (c *Cluster) nodeUp(n Node) {
	c.mu.Lock()
	delete(c.downUntil, n.ID)
	c.mu.Unlock()
}

// reroute moves pending frames of a broken routed relay to the next live
// member of each frame's stream. Returns an error if some frame has no
// live member left; the frames stay queued on the broken relay and the
// caller reports failure to waiters.
func (c *Cluster) reroute(from *relay, frames []relayFrame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("cluster: closed")
	}
	for i, rf := range frames {
		members := c.cfg.Ring.Members(rf.stream)
		var target Node
		found := false
		for _, n := range members {
			if n.ID == c.self.ID || n.ID == from.node.ID {
				continue
			}
			if until, down := c.downUntil[n.ID]; down && time.Now().Before(until) {
				continue
			}
			target = n
			found = true
			break
		}
		if !found {
			// Re-queue what we could not place back where it came from.
			from.requeueFront(frames[i:])
			return fmt.Errorf("cluster: no live member for stream %q", rf.stream)
		}
		c.relayLocked(target, from.session, false).enqueue(rf.stream, rf.f)
	}
	c.rerouteGen++
	return nil
}

// Close stops every relay. Pending frames are abandoned (their clients'
// connections will error and replay elsewhere).
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	rs := make([]*relay, 0, len(c.relays))
	for _, r := range c.relays {
		rs = append(rs, r)
	}
	c.mu.Unlock()
	for _, r := range rs {
		r.stop()
	}
}

// NodeRelayStats aggregates the relay channels toward one node.
type NodeRelayStats struct {
	Node     string `json:"node"`
	Channels int    `json:"channels"`
	Pending  uint64 `json:"pending"` // frames relayed, not yet acked by the target
	Relayed  uint64 `json:"relayed"` // frames acknowledged by the target
	Dropped  uint64 `json:"dropped"` // fan-out frames dropped (target down)
	Down     bool   `json:"down"`
}

// Stats snapshots the relay layer, aggregated per target node and sorted
// by node ID.
func (c *Cluster) Stats() []NodeRelayStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := make(map[string]*NodeRelayStats)
	for k, r := range c.relays {
		s, ok := agg[k.node]
		if !ok {
			s = &NodeRelayStats{Node: k.node}
			agg[k.node] = s
		}
		pending, relayed, dropped := r.counters()
		s.Channels++
		s.Pending += pending
		s.Relayed += relayed
		s.Dropped += dropped
	}
	now := time.Now()
	for id, until := range c.downUntil {
		if !now.Before(until) {
			continue
		}
		s, ok := agg[id]
		if !ok {
			s = &NodeRelayStats{Node: id}
			agg[id] = s
		}
		s.Down = true
	}
	out := make([]NodeRelayStats, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
