package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/workload"
)

// BenchmarkClusterQuery measures the coordinator's scatter-gather quantile
// against a single-node quick query at equal total data: S streams × V
// values live spread across a 3-node cluster (scatter-gather fetches one
// summary per stream over real sockets and merges) or in one DB
// (single-node merges the same summaries locally). The gap is the network
// + (de)serialization cost of distributing the data — the summaries
// themselves are identical, which is the paper's mergeability argument.
func BenchmarkClusterQuery(b *testing.B) {
	const (
		streams   = 6
		perStream = 50_000
	)
	opts := hsq.Options{Epsilon: 0.01, Kappa: 4, Backend: "mem", BlockSize: 1 << 16}

	feed := func(st *hsq.Stream, seed int64) {
		b.Helper()
		gen := workload.NewUniform(seed)
		st.ObserveSlice(workload.Fill(gen, perStream))
		if _, err := st.EndStep(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("scatter-gather", func(b *testing.B) {
		h, err := NewHarness(HarnessConfig{Nodes: 3, Replicas: 1, Options: opts})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		names := make([]string, streams)
		owners := make([]Node, streams)
		for i := range names {
			names[i] = fmt.Sprintf("bench-%d", i)
			owners[i] = h.Ring.Owner(names[i])
			for _, hn := range h.Nodes {
				if hn.Node.ID == owners[i].ID {
					st, err := hn.DB.Stream(names[i])
					if err != nil {
						b.Fatal(err)
					}
					feed(st, int64(i))
				}
			}
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sums := make([]*core.ShardSummary, streams)
			for j, name := range names {
				sum, err := FetchSummary(ctx, 2*time.Second, owners[j], name)
				if err != nil {
					b.Fatal(err)
				}
				sums[j] = sum
			}
			merged, total, err := core.MergeShardSummaries(sums)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := merged.QuickQuery(total / 2); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("single-node", func(b *testing.B) {
		db, err := hsq.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close() //nolint:errcheck
		names := make([]string, streams)
		for i := range names {
			names[i] = fmt.Sprintf("bench-%d", i)
			st, err := db.Stream(names[i])
			if err != nil {
				b.Fatal(err)
			}
			feed(st, int64(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sums := make([]*core.ShardSummary, streams)
			for j, name := range names {
				st, _ := db.Lookup(name)
				sum, err := st.Summary()
				if err != nil {
					b.Fatal(err)
				}
				sums[j] = sum
			}
			merged, total, err := core.MergeShardSummaries(sums)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := merged.QuickQuery(total / 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
