package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// FetchSummary dials node and retrieves its current shard summary for
// stream over one short-lived wire connection: Hello (leaf, so the peer
// never adopts or fans anything), SummaryReq, SummaryResp. A peer that
// does not know the stream returns an empty summary (nil, nil here), which
// merges as zero.
func FetchSummary(ctx context.Context, dialTimeout time.Duration, node Node, stream string) (*core.ShardSummary, error) {
	d := net.Dialer{Timeout: dialTimeout}
	nc, err := d.DialContext(ctx, "tcp", node.Addr)
	if err != nil {
		return nil, fmt.Errorf("summary dial %s (%s): %w", node.ID, node.Addr, err)
	}
	defer nc.Close() //nolint:errcheck
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl) //nolint:errcheck
	} else {
		nc.SetDeadline(time.Now().Add(dialTimeout)) //nolint:errcheck
	}
	w := wire.NewWriter(nc)
	if err := w.WriteFrame(&wire.Frame{Type: wire.TypeHello, Version: wire.Version, Session: "peer:" + node.ID, Flags: wire.HelloFlagLeaf}); err != nil {
		return nil, err
	}
	if err := w.WriteFrame(&wire.Frame{Type: wire.TypeSummaryReq, Seq: 1, Name: stream}); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	rd := wire.NewReader(nc)
	for {
		f, err := rd.ReadFrame()
		if err != nil {
			return nil, fmt.Errorf("summary fetch %s: %w", node.ID, err)
		}
		switch f.Type {
		case wire.TypeWelcome:
			continue
		case wire.TypeSummaryResp:
			if f.Code != 0 {
				return nil, fmt.Errorf("summary fetch %s: server error %d: %s", node.ID, f.Code, f.Message)
			}
			if len(f.Data) == 0 {
				return nil, nil // peer has no data for this stream
			}
			return core.DecodeShardSummary(f.Data)
		case wire.TypeError:
			return nil, fmt.Errorf("summary fetch %s: server error %d: %s", node.ID, f.Code, f.Message)
		default:
			return nil, fmt.Errorf("summary fetch %s: unexpected %s frame", node.ID, wire.TypeName(f.Type))
		}
	}
}

// GatherSummaries fetches the stream's shard summary from every node in
// nodes concurrently and returns them index-aligned. Unreachable nodes
// yield an error; the caller decides whether partial answers are
// acceptable (the hsqd query path does not: a query spanning a down shard
// fails rather than silently under-counting).
func GatherSummaries(ctx context.Context, dialTimeout time.Duration, nodes []Node, stream string) ([]*core.ShardSummary, error) {
	sums := make([]*core.ShardSummary, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			sums[i], errs[i] = FetchSummary(ctx, dialTimeout, n, stream)
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sums, nil
}
