package oracle

import (
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	o := New(0)
	if _, err := o.Quantile(0.5); err == nil {
		t.Error("empty quantile: want error")
	}
	if o.Count() != 0 {
		t.Error("count != 0")
	}
	if o.Rank(5) != 0 {
		t.Error("rank on empty != 0")
	}
}

func TestRankAndQuantile(t *testing.T) {
	o := New(0)
	o.Add(5, 1, 3, 3, 9)
	cases := []struct {
		v, want int64
	}{{0, 0}, {1, 1}, {3, 3}, {5, 4}, {9, 5}, {100, 5}}
	for _, c := range cases {
		if got := o.Rank(c.v); got != c.want {
			t.Errorf("Rank(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// φ-quantiles: smallest element with rank ≥ ⌈φ·5⌉.
	qcases := []struct {
		phi  float64
		want int64
	}{{0.2, 1}, {0.4, 3}, {0.6, 3}, {0.8, 5}, {1.0, 9}, {0.01, 1}}
	for _, c := range qcases {
		got, err := o.Quantile(c.phi)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.phi, got, c.want)
		}
	}
	if _, err := o.Quantile(0); err == nil {
		t.Error("phi=0: want error")
	}
	if _, err := o.Quantile(1.5); err == nil {
		t.Error("phi>1: want error")
	}
}

func TestElementAtRank(t *testing.T) {
	o := New(0)
	o.Add(10, 20, 30)
	if v, err := o.ElementAtRank(2); err != nil || v != 20 {
		t.Errorf("ElementAtRank(2) = %d, %v", v, err)
	}
	if _, err := o.ElementAtRank(0); err == nil {
		t.Error("rank 0: want error")
	}
	if _, err := o.ElementAtRank(4); err == nil {
		t.Error("rank 4: want error")
	}
}

func TestErrors(t *testing.T) {
	o := New(0)
	for i := int64(1); i <= 100; i++ {
		o.Add(i)
	}
	if e := o.RankError(50, 50); e != 0 {
		t.Errorf("RankError exact = %d", e)
	}
	if e := o.RankError(50, 60); e != 10 {
		t.Errorf("RankError = %d", e)
	}
	if rel := o.RelativeError(0.5, 50); rel != 0 {
		t.Errorf("RelativeError exact = %g", rel)
	}
	if rel := o.RelativeError(0.5, 55); rel != 0.1 {
		t.Errorf("RelativeError = %g", rel)
	}
}

func TestReset(t *testing.T) {
	o := New(0)
	o.Add(1, 2, 3)
	o.Reset()
	if o.Count() != 0 {
		t.Error("Reset incomplete")
	}
}

// Property: the quantile is always an observed element and its rank meets
// the definition (Definition 1).
func TestQuickQuantileDefinition(t *testing.T) {
	f := func(raw []int16, phiRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		phi := (float64(phiRaw%100) + 1) / 100
		o := New(len(raw))
		seen := map[int64]bool{}
		for _, x := range raw {
			o.Add(int64(x))
			seen[int64(x)] = true
		}
		q, err := o.Quantile(phi)
		if err != nil || !seen[q] {
			return false
		}
		r := o.Rank(q)
		target := int64(float64(len(raw)) * phi)
		if r < target {
			return false
		}
		// Minimality: any strictly smaller observed element has rank < target.
		prev := int64(-1 << 62)
		hasPrev := false
		for v := range seen {
			if v < q && v > prev {
				prev, hasPrev = v, true
			}
		}
		if hasPrev && o.Rank(prev) >= o.Rank(q) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRankSpanAndSpanError(t *testing.T) {
	o := New(0)
	o.Add(1, 3, 3, 3, 5)
	// Spans: 1 → [1,1]; 3 → [2,4]; 5 → [5,5]; absent 4 → empty (lo>hi).
	if lo, hi := o.RankSpan(3); lo != 2 || hi != 4 {
		t.Errorf("RankSpan(3) = [%d,%d]", lo, hi)
	}
	if lo, hi := o.RankSpan(1); lo != 1 || hi != 1 {
		t.Errorf("RankSpan(1) = [%d,%d]", lo, hi)
	}
	if lo, hi := o.RankSpan(4); lo != 5 || hi != 4 {
		t.Errorf("RankSpan(absent 4) = [%d,%d], want empty", lo, hi)
	}
	// SpanError: target inside span is 0, outside is distance to span edge.
	if e := o.SpanError(3, 3); e != 0 {
		t.Errorf("SpanError(3, v=3) = %d", e)
	}
	if e := o.SpanError(5, 3); e != 1 {
		t.Errorf("SpanError(5, v=3) = %d", e)
	}
	if e := o.SpanError(1, 3); e != 1 {
		t.Errorf("SpanError(1, v=3) = %d", e)
	}
	// RelativeSpanError: exact quantile scores 0 even on ties.
	q, _ := o.Quantile(0.6) // r=3 → quantile is 3
	if rel := o.RelativeSpanError(0.6, q); rel != 0 {
		t.Errorf("RelativeSpanError(exact) = %g", rel)
	}
	if rel := o.RelativeSpanError(1.0, 3); rel <= 0 {
		t.Errorf("RelativeSpanError(off) = %g", rel)
	}
	if rel := (&Oracle{}).RelativeSpanError(0.5, 1); rel != 0 {
		t.Errorf("empty oracle rel err = %g", rel)
	}
}

// Property: SpanError is 0 exactly when RankSpan covers the target.
func TestQuickSpanConsistency(t *testing.T) {
	f := func(raw []int8, target uint8) bool {
		if len(raw) == 0 {
			return true
		}
		o := New(len(raw))
		for _, x := range raw {
			o.Add(int64(x))
		}
		r := int64(target)%o.Count() + 1
		v := int64(raw[int(target)%len(raw)])
		lo, hi := o.RankSpan(v)
		e := o.SpanError(r, v)
		covered := lo <= r && r <= hi
		return (e == 0) == covered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
