// Package oracle maintains the exact multiset of everything observed, as
// ground truth for measuring the rank error of approximate answers. The
// evaluation's "relative error" metric (paper §3.1) is
// |r − rank(e,T)| / (φ·N).
package oracle

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Oracle is an exact rank/quantile oracle. Not safe for concurrent use.
type Oracle struct {
	data   []int64
	sorted bool
}

// New returns an empty oracle, optionally pre-sized.
func New(capacity int) *Oracle {
	return &Oracle{data: make([]int64, 0, capacity)}
}

// Add observes elements.
func (o *Oracle) Add(vs ...int64) {
	o.data = append(o.data, vs...)
	o.sorted = false
}

// Count returns the number of observed elements.
func (o *Oracle) Count() int64 { return int64(len(o.data)) }

// Reset forgets everything.
func (o *Oracle) Reset() {
	o.data = o.data[:0]
	o.sorted = false
}

func (o *Oracle) ensureSorted() {
	if !o.sorted {
		slices.Sort(o.data)
		o.sorted = true
	}
}

// Rank returns the exact rank of v: the number of observed elements ≤ v.
func (o *Oracle) Rank(v int64) int64 {
	o.ensureSorted()
	return int64(sort.Search(len(o.data), func(i int) bool { return o.data[i] > v }))
}

// Quantile returns the exact φ-quantile: the smallest element whose rank is
// at least ⌈φ·N⌉ (Definition 1).
func (o *Oracle) Quantile(phi float64) (int64, error) {
	if len(o.data) == 0 {
		return 0, fmt.Errorf("oracle: empty")
	}
	if phi <= 0 || phi > 1 {
		return 0, fmt.Errorf("oracle: phi must be in (0,1], got %g", phi)
	}
	o.ensureSorted()
	r := int64(math.Ceil(phi * float64(len(o.data))))
	if r < 1 {
		r = 1
	}
	return o.data[r-1], nil
}

// ElementAtRank returns the element of the given rank (1-based).
func (o *Oracle) ElementAtRank(r int64) (int64, error) {
	if r < 1 || r > int64(len(o.data)) {
		return 0, fmt.Errorf("oracle: rank %d out of [1,%d]", r, len(o.data))
	}
	o.ensureSorted()
	return o.data[r-1], nil
}

// RankSpan returns the closed rank interval [lo, hi] occupied by copies of
// v: lo = (#elements < v) + 1 and hi = #elements ≤ v. For a value absent
// from the data the interval is empty (lo = hi+1).
func (o *Oracle) RankSpan(v int64) (lo, hi int64) {
	o.ensureSorted()
	lo = int64(sort.Search(len(o.data), func(i int) bool { return o.data[i] >= v })) + 1
	hi = int64(sort.Search(len(o.data), func(i int) bool { return o.data[i] > v }))
	return lo, hi
}

// SpanError returns the distance from targetRank to the rank span of
// answer: zero when the span covers the target. With duplicated values even
// the exact quantile's point rank can jump far beyond the target, so span
// distance is the right measure of an approximation's rank error.
func (o *Oracle) SpanError(targetRank int64, answer int64) int64 {
	lo, hi := o.RankSpan(answer)
	switch {
	case targetRank < lo:
		return lo - targetRank
	case targetRank > hi:
		return targetRank - hi
	default:
		return 0
	}
}

// RankError returns |targetRank − rank(answer)|, the paper's absolute error.
func (o *Oracle) RankError(targetRank int64, answer int64) int64 {
	d := o.Rank(answer) - targetRank
	if d < 0 {
		d = -d
	}
	return d
}

// RelativeError returns the paper's relative error |r − rank(e)| / (φ·N)
// for a φ-quantile query answered with e, where r = ⌈φ·N⌉.
func (o *Oracle) RelativeError(phi float64, answer int64) float64 {
	n := float64(len(o.data))
	if n == 0 {
		return 0
	}
	r := int64(math.Ceil(phi * n))
	if r < 1 {
		r = 1
	}
	return float64(o.RankError(r, answer)) / (phi * n)
}

// RelativeSpanError is RelativeError with rank-span semantics: the distance
// from r = ⌈φ·N⌉ to the answer's rank span, over φ·N. On duplicate-free
// data it equals RelativeError; with ties it measures the error actually
// attributable to the algorithm (even the exact quantile can have a point
// rank far beyond r when r falls inside a run of equal values).
func (o *Oracle) RelativeSpanError(phi float64, answer int64) float64 {
	n := float64(len(o.data))
	if n == 0 {
		return 0
	}
	r := int64(math.Ceil(phi * n))
	if r < 1 {
		r = 1
	}
	return float64(o.SpanError(r, answer)) / (phi * n)
}
