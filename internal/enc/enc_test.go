package enc

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, vs []int64) {
	t.Helper()
	buf := AppendDelta(nil, vs)
	got := make([]int64, len(vs))
	rest, err := DecodeDelta(got, buf)
	if err != nil {
		t.Fatalf("DecodeDelta(%v): %v", vs, err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeDelta left %d bytes unconsumed", len(rest))
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("round trip mismatch at %d: got %d, want %d", i, got[i], vs[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{42},
		{-1},
		{math.MinInt64},
		{math.MaxInt64},
		{math.MinInt64, math.MaxInt64, math.MinInt64},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{0, 0, 0, 0},
	}
	for _, vs := range cases {
		roundTrip(t, vs)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		vs := make([]int64, rng.Intn(200))
		for i := range vs {
			vs[i] = rng.Int63() - rng.Int63()
		}
		roundTrip(t, vs)
	}
}

// TestSortedRunsCompress pins the property the columnar block format relies
// on: a sorted run of nearby values encodes far below 8 bytes per element.
func TestSortedRunsCompress(t *testing.T) {
	vs := make([]int64, 1000)
	for i := range vs {
		vs[i] = int64(1_000_000 + i*3)
	}
	buf := AppendDelta(nil, vs)
	if len(buf) > 2*len(vs)+binary.MaxVarintLen64 {
		t.Fatalf("sorted run encoded to %d bytes for %d elements; want <= ~2 B/element", len(buf), len(vs))
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf := AppendDelta(nil, []int64{1, 100, 10000})
	for cut := 0; cut < len(buf); cut++ {
		dst := make([]int64, 3)
		if _, err := DecodeDelta(dst, buf[:cut]); err == nil {
			t.Fatalf("DecodeDelta accepted truncation at %d bytes", cut)
		}
	}
}

func TestDecodeLeavesRest(t *testing.T) {
	vs := []int64{7, -9, 12345}
	buf := AppendDelta(nil, vs)
	tail := []byte{0xde, 0xad, 0xbe, 0xef}
	buf = append(buf, tail...)
	dst := make([]int64, len(vs))
	rest, err := DecodeDelta(dst, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, tail) {
		t.Fatalf("rest = %x, want %x", rest, tail)
	}
}

// FuzzDeltaRoundTrip decodes arbitrary bytes as a delta frame and, when they
// parse, re-encodes and checks the round trip — plus the inverse direction
// seeded from the raw bytes reinterpreted as elements.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{2, 2, 2}, uint8(3))
	f.Add(AppendDelta(nil, []int64{math.MinInt64, math.MaxInt64}), uint8(2))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, n uint8) {
		dst := make([]int64, n)
		rest, err := DecodeDelta(dst, data)
		if err == nil {
			consumed := data[:len(data)-len(rest)]
			re := AppendDelta(nil, dst)
			back := make([]int64, n)
			if _, err := DecodeDelta(back, re); err != nil {
				t.Fatalf("re-decode failed: %v (src %x)", err, consumed)
			}
			for i := range dst {
				if back[i] != dst[i] {
					t.Fatalf("element %d changed across re-encode: %d != %d", i, back[i], dst[i])
				}
			}
		}
		// Inverse direction: bytes → elements → encode → decode.
		vs := make([]int64, 0, len(data)/2)
		for i := 0; i+8 <= len(data) && len(vs) < 64; i += 8 {
			vs = append(vs, int64(binary.LittleEndian.Uint64(data[i:])))
		}
		buf := AppendDelta(nil, vs)
		got := make([]int64, len(vs))
		rest, err = DecodeDelta(got, buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("encode→decode failed: %v (rest %d)", err, len(rest))
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("element %d: got %d, want %d", i, got[i], vs[i])
			}
		}
	})
}
