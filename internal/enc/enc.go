// Package enc holds the delta + zig-zag varint codec shared by the wire
// protocol (internal/wire batch frames) and the columnar block format
// (internal/disk format 1). Sorted or slowly-varying int64 runs encode at
// 1-2 bytes per element instead of 8; arbitrary values still round-trip
// because the deltas use wrapping two's-complement arithmetic.
package enc

import (
	"encoding/binary"
	"fmt"
)

// MaxVarintLen64 is the widest encoding of one delta (re-exported so callers
// can size worst-case buffers without importing encoding/binary).
const MaxVarintLen64 = binary.MaxVarintLen64

// AppendDelta appends the delta + zig-zag varint encoding of vs to buf and
// returns the extended slice. The first element is encoded relative to zero.
func AppendDelta(buf []byte, vs []int64) []byte {
	prev := int64(0)
	for _, v := range vs {
		// Wrapping subtraction: two's-complement wraparound round-trips
		// through the matching wrapping add in DecodeDelta, so the full
		// int64 range is representable.
		buf = binary.AppendVarint(buf, v-prev)
		prev = v
	}
	return buf
}

// DecodeDelta decodes len(dst) delta-encoded elements from buf into dst and
// returns the unconsumed remainder of buf. It fails if buf is truncated or a
// varint is malformed.
func DecodeDelta(dst []int64, buf []byte) (rest []byte, err error) {
	prev := int64(0)
	for i := range dst {
		d, n := binary.Varint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("enc: bad varint at element %d", i)
		}
		buf = buf[n:]
		prev += d // wrapping add; see AppendDelta
		dst[i] = prev
	}
	return buf, nil
}
