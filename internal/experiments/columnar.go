package experiments

import (
	"fmt"
	"time"

	"repro"
)

// ColumnarComparison measures what the compressed columnar block format buys
// on the accurate-query path, raw vs columnar at the same decoded-bytes
// cache budget (the cache charges cached blocks by their decoded size, so
// passing both runs the same CacheBlocks yields the same byte budget).
// Simulated HDD latency makes wall-clock time track the paper's cost model
// (block transfers), where the columnar format wins three ways: delta
// compression packs more elements per transferred block, block-header
// min/max bounds resolve bisection steps with no access at all
// (SkippedBlocks), and the §2.4 pin engages earlier because one block spans
// more of the rank space.
func ColumnarComparison(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	eps, err := planEps(budget, sc, kappa)
	if err != nil {
		return nil, err
	}
	cacheBudgets := []int{4, 16, 64}
	if sc.CacheBlocks > 0 {
		cacheBudgets = []int{sc.CacheBlocks / 4, sc.CacheBlocks, sc.CacheBlocks * 4}
	}
	phis := []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}

	var tables []*Table
	for wi, wl := range sc.workloads() {
		t := &Table{
			ID:     fmt.Sprintf("columnar%c-%s", 'a'+wi, wl),
			Title:  fmt.Sprintf("Accurate-query throughput, raw vs columnar, %s, κ=%d, equal cache bytes", wl, kappa),
			XLabel: "cache_blocks",
			Columns: []string{
				"Raw_qps", "Columnar_qps", "Speedup",
				"Raw_reads", "Columnar_reads", "Columnar_skips",
			},
		}
		ds, err := makeDataset(wl, int64(14000+wi), sc)
		if err != nil {
			return nil, err
		}
		for _, cacheBlocks := range cacheBudgets {
			var qps, reads [2]float64
			var skips float64
			for fi, format := range []string{"raw", "columnar"} {
				eng, err := hsq.New(hsq.Config{
					Epsilon: eps, Kappa: kappa, Backend: "mem",
					BlockSize: sc.BlockSize, CacheBlocks: cacheBlocks,
					SimulateDisk: "hdd", BlockFormat: format,
				})
				if err != nil {
					return nil, err
				}
				for _, b := range ds.batches {
					eng.ObserveSlice(b)
					if _, err := eng.EndStep(); err != nil {
						eng.Destroy() //nolint:errcheck
						return nil, err
					}
				}
				eng.ObserveSlice(ds.stream)
				io0 := eng.DiskStats()
				queries := 0
				t0 := time.Now()
				for rep := 0; rep < max(1, sc.Repeats); rep++ {
					for _, phi := range phis {
						if _, _, err := eng.Quantile(phi); err != nil {
							eng.Destroy() //nolint:errcheck
							return nil, err
						}
						queries++
					}
				}
				elapsed := time.Since(t0)
				d := eng.DiskStats().Sub(io0)
				qps[fi] = float64(queries) / elapsed.Seconds()
				reads[fi] = float64(d.RandReads) / float64(queries)
				if format == "columnar" {
					skips = float64(d.SkippedBlocks) / float64(queries)
				}
				if err := eng.Destroy(); err != nil {
					return nil, err
				}
			}
			t.AddRow(float64(cacheBlocks), qps[0], qps[1], qps[1]/qps[0],
				reads[0], reads[1], skips)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
