package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/hsqclient"
	"repro/internal/ingest"
	"repro/internal/workload"
)

// IngestComparison measures the remote ingest subsystem against the HTTP
// JSON surface it supersedes: the same uniform workload is pushed into
// one stream of a mem-backed DB by the same number of concurrent
// producers over three transports (x = row index):
//
//	x=0  HTTP, one JSON value per POST — the pre-subsystem status quo
//	x=1  HTTP, batched {"values":[...]} JSON
//	x=2  binary wire protocol through hsqclient
//
// Columns:
//
//	ValuesPerSec — ingest throughput over the whole run
//	P99ObserveUs — p99 client-side latency of submitting one element
//	               (for HTTP rows: the POST carrying it; for the wire
//	               row: the Observe call, which blocks only on seal or
//	               backpressure)
//	Speedup      — ValuesPerSec over the x=0 baseline
//
// This is the network-facing companion of the paper's load-throughput
// experiments (Figure 6): remote producers must not be the bottleneck in
// front of an engine whose StreamUpdate path absorbs millions of
// elements per second.
func IngestComparison(sc Scale, root string) ([]*Table, error) {
	total := sc.Steps * sc.BatchSize
	if total > 400_000 {
		total = 400_000
	}
	clients := runtime.GOMAXPROCS(0)
	if clients > 8 {
		clients = 8
	}
	t := &Table{
		ID: "ingest-throughput",
		Title: fmt.Sprintf("Remote ingest: HTTP/value (x=0), HTTP/batch (x=1), wire protocol (x=2); uniform, %d values, %d clients",
			total, clients),
		XLabel:  "transport",
		Columns: []string{"ValuesPerSec", "P99ObserveUs", "Speedup"},
	}
	var baseline float64
	for x, run := range []func(sc Scale, total, clients int) (ingestResult, error){
		runHTTPPerValue, runHTTPBatched, runWireIngest,
	} {
		res, err := run(sc, total, clients)
		if err != nil {
			return nil, err
		}
		if x == 0 {
			baseline = res.valuesPerSec
		}
		t.AddRow(float64(x),
			res.valuesPerSec,
			res.observeP99.Seconds()*1e6,
			res.valuesPerSec/baseline,
		)
	}
	return []*Table{t}, nil
}

type ingestResult struct {
	valuesPerSec float64
	observeP99   time.Duration
}

// ingestDB opens a fresh mem-backed DB for one transport run.
func ingestDB(sc Scale) (*hsq.DB, error) {
	return hsq.Open(hsq.Options{
		Epsilon: 0.01, Backend: "mem", BlockSize: sc.BlockSize,
	})
}

// feedConcurrently splits total values across clients workers, each
// calling push per value, sampling every 64th submission latency.
func feedConcurrently(total, clients int, push func(worker int, v int64) error) (time.Duration, []time.Duration, error) {
	gen := workload.NewUniform(42)
	per := total / clients
	work := make([][]int64, clients)
	for w := range work {
		work[w] = workload.Fill(gen, per)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []time.Duration
		errv atomic.Value
	)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []time.Duration
			for i, v := range work[w] {
				if i%64 == 0 {
					t0 := time.Now()
					if err := push(w, v); err != nil {
						errv.Store(err)
						return
					}
					local = append(local, time.Since(t0))
				} else if err := push(w, v); err != nil {
					errv.Store(err)
					return
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := errv.Load().(error); err != nil {
		return 0, nil, err
	}
	return elapsed, lats, nil
}

func runHTTPPerValue(sc Scale, total, clients int) (ingestResult, error) {
	db, err := ingestDB(sc)
	if err != nil {
		return ingestResult{}, err
	}
	defer db.Close() //nolint:errcheck
	url, shutdown, err := ingest.JSONObserveBaseline(db, "ingest")
	if err != nil {
		return ingestResult{}, err
	}
	defer shutdown()

	// The per-value path is so slow the full budget would dominate the
	// whole figure's runtime; a slice is plenty to measure a rate.
	perValueTotal := total / 10
	if perValueTotal < 2000 {
		perValueTotal = min(total, 2000)
	}
	hc := &http.Client{}
	elapsed, lats, err := feedConcurrently(perValueTotal, clients, func(_ int, v int64) error {
		body, _ := json.Marshal(map[string]int64{"value": v})
		resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()              //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("observe POST: status %d", resp.StatusCode)
		}
		return nil
	})
	if err != nil {
		return ingestResult{}, err
	}
	n := (perValueTotal / clients) * clients
	return ingestResult{valuesPerSec: float64(n) / elapsed.Seconds(), observeP99: p99(lats)}, nil
}

func runHTTPBatched(sc Scale, total, clients int) (ingestResult, error) {
	db, err := ingestDB(sc)
	if err != nil {
		return ingestResult{}, err
	}
	defer db.Close() //nolint:errcheck
	url, shutdown, err := ingest.JSONObserveBaseline(db, "ingest")
	if err != nil {
		return ingestResult{}, err
	}
	defer shutdown()

	const batch = 2048
	hc := &http.Client{}
	bufs := make([][]int64, clients)
	for i := range bufs {
		bufs[i] = make([]int64, 0, batch)
	}
	post := func(vals []int64) error {
		body, _ := json.Marshal(map[string][]int64{"values": vals})
		resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()              //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("observe POST: status %d", resp.StatusCode)
		}
		return nil
	}
	elapsed, lats, err := feedConcurrently(total, clients, func(w int, v int64) error {
		bufs[w] = append(bufs[w], v)
		if len(bufs[w]) == batch {
			err := post(bufs[w])
			bufs[w] = bufs[w][:0]
			return err
		}
		return nil
	})
	if err != nil {
		return ingestResult{}, err
	}
	// Tail batches land outside the timed window; negligible and identical
	// across transports.
	for _, buf := range bufs {
		if len(buf) > 0 {
			if err := post(buf); err != nil {
				return ingestResult{}, err
			}
		}
	}
	n := (total / clients) * clients
	return ingestResult{valuesPerSec: float64(n) / elapsed.Seconds(), observeP99: p99(lats)}, nil
}

func runWireIngest(sc Scale, total, clients int) (ingestResult, error) {
	db, err := ingestDB(sc)
	if err != nil {
		return ingestResult{}, err
	}
	defer db.Close() //nolint:errcheck
	srv := ingest.New(ingest.Config{DB: db})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ingestResult{}, err
	}
	go srv.Serve(l) //nolint:errcheck
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()

	c, err := hsqclient.Dial(l.Addr().String(), hsqclient.WithBatchSize(2048))
	if err != nil {
		return ingestResult{}, err
	}
	st := c.Stream("ingest")
	start := time.Now()
	_, lats, err := feedConcurrently(total, clients, func(_ int, v int64) error {
		return st.Observe(v)
	})
	if err != nil {
		c.Close() //nolint:errcheck
		return ingestResult{}, err
	}
	// Throughput counts delivered values: include the Close drain, which
	// the HTTP paths pay per-request inside their timed loop.
	if err := c.Close(); err != nil {
		return ingestResult{}, err
	}
	elapsed := time.Since(start)
	n := (total / clients) * clients
	return ingestResult{valuesPerSec: float64(n) / elapsed.Seconds(), observeP99: p99(lats)}, nil
}
