package experiments

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/workload"
)

// ClusterComparison measures the coordinator's scatter-gather quantile
// path against a single node holding the same total data (x = shard
// count; x=1 is the single-node baseline with purely local summaries).
// The dataset is S streams of uniform values placed by the consistent-hash
// ring; a query asks the median of the union of all streams, which on a
// cluster means one core.ShardSummary fetch per stream over the wire plus
// a local merge (core.MergeShardSummaries → Combined.QuickQuery).
//
// Columns:
//
//	QueryUs    — mean wall time of one union-median query
//	RelCost    — QueryUs over the x=1 baseline (the price of distribution)
//	RankErrPct — observed rank error of the answer vs an exact oracle,
//	             as a percentage of N (must stay under the composed
//	             1.5·ε bound regardless of shard count — mergeability)
//
// The shape to expect: RelCost grows with shard count (network +
// serialization per shard) while RankErrPct stays flat — distribution
// costs latency, never accuracy. This is the system-level restatement of
// the paper's summary-combination property.
func ClusterComparison(sc Scale, root string) ([]*Table, error) {
	const streams = 6
	perStream := sc.Steps * sc.BatchSize / streams
	if perStream > 60_000 {
		perStream = 60_000
	}
	if perStream < 2_000 {
		perStream = 2_000
	}
	const eps = 0.01
	t := &Table{
		ID: "cluster-query",
		Title: fmt.Sprintf("Scatter-gather vs single node: %d streams × %d values, ε=%g; union median",
			streams, perStream, eps),
		XLabel:  "shards",
		Columns: []string{"QueryUs", "RelCost", "RankErrPct"},
	}
	var baseline float64
	for _, shards := range []int{1, 2, 4} {
		us, errPct, err := runClusterQuery(shards, streams, perStream, eps)
		if err != nil {
			return nil, err
		}
		if shards == 1 {
			baseline = us
		}
		t.AddRow(float64(shards), us, us/baseline, errPct)
	}
	return []*Table{t}, nil
}

// runClusterQuery builds the deployment, loads the data, and times the
// union-median query. shards=1 uses one DB and local summaries; shards>1
// boots a real socket-backed harness and fetches per-stream summaries from
// their owning nodes.
func runClusterQuery(shards, streams, perStream int, eps float64) (meanUs, rankErrPct float64, err error) {
	opts := hsq.Options{Epsilon: eps, Kappa: 4, Backend: "mem", BlockSize: 1 << 16}
	names := make([]string, streams)
	for i := range names {
		names[i] = fmt.Sprintf("cq-%d", i)
	}
	n := streams * perStream
	or := oracle.New(n)
	var union []int64

	// gather produces the per-stream summaries for one query.
	var gather func() ([]*core.ShardSummary, error)
	var cleanup func()

	feed := func(st *hsq.Stream, seed int64) error {
		gen := workload.NewUniform(seed)
		vals := workload.Fill(gen, perStream)
		union = append(union, vals...)
		st.ObserveSlice(vals)
		_, err := st.EndStep()
		return err
	}

	if shards == 1 {
		db, err := hsq.Open(opts)
		if err != nil {
			return 0, 0, err
		}
		cleanup = func() { db.Close() } //nolint:errcheck
		for i, name := range names {
			st, err := db.Stream(name)
			if err != nil {
				cleanup()
				return 0, 0, err
			}
			if err := feed(st, int64(i)); err != nil {
				cleanup()
				return 0, 0, err
			}
		}
		gather = func() ([]*core.ShardSummary, error) {
			sums := make([]*core.ShardSummary, streams)
			for i, name := range names {
				st, _ := db.Lookup(name)
				sum, err := st.Summary()
				if err != nil {
					return nil, err
				}
				sums[i] = sum
			}
			return sums, nil
		}
	} else {
		h, err := cluster.NewHarness(cluster.HarnessConfig{Nodes: shards, Replicas: 1, Options: opts})
		if err != nil {
			return 0, 0, err
		}
		cleanup = h.Close
		owners := make([]cluster.Node, streams)
		for i, name := range names {
			owners[i] = h.Ring.Owner(name)
			for _, hn := range h.Nodes {
				if hn.Node.ID != owners[i].ID {
					continue
				}
				st, err := hn.DB.Stream(name)
				if err != nil {
					cleanup()
					return 0, 0, err
				}
				if err := feed(st, int64(i)); err != nil {
					cleanup()
					return 0, 0, err
				}
			}
		}
		ctx := context.Background()
		gather = func() ([]*core.ShardSummary, error) {
			sums := make([]*core.ShardSummary, streams)
			for i, name := range names {
				sum, err := cluster.FetchSummary(ctx, 2*time.Second, owners[i], name)
				if err != nil {
					return nil, err
				}
				sums[i] = sum
			}
			return sums, nil
		}
	}
	defer cleanup()

	or.Add(union...)
	target := int64(n / 2)

	const rounds = 20
	var answer int64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		sums, err := gather()
		if err != nil {
			return 0, 0, err
		}
		merged, total, err := core.MergeShardSummaries(sums)
		if err != nil {
			return 0, 0, err
		}
		if answer, err = merged.QuickQuery(total / 2); err != nil {
			return 0, 0, err
		}
	}
	meanUs = time.Since(start).Seconds() * 1e6 / rounds
	rankErrPct = 100 * float64(or.SpanError(target, answer)) / float64(n)
	return meanUs, rankErrPct, nil
}
