// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 3) at configurable scale, plus the ablations called
// out in DESIGN.md. Each figure is a function from a Scale to a set of
// Tables; cmd/hsqbench renders them as text and CSV.
//
// Scaling note: the paper runs 50-100 GB datasets with 100-500 MB of summary
// memory (0.1%-0.5% of data size) and m/N ≈ 1%. The scales here preserve
// those *ratios* at laptop size, which preserves every reported shape: who
// wins, by what factor, and how costs move with memory, κ, history size and
// stream size. See EXPERIMENTS.md for paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"math"
	"slices"
	"strings"
)

// Scale fixes the data volumes for one experiment campaign.
type Scale struct {
	// Name tags output files.
	Name string
	// Steps is T, the number of time steps loaded into the warehouse.
	Steps int
	// BatchSize is the number of elements per time step.
	BatchSize int
	// StreamSize is the size m of the in-flight stream when queries run.
	StreamSize int
	// Repeats is the number of runs (different seeds) whose median is
	// reported for accuracy figures; the paper uses 7.
	Repeats int
	// MemFractions are summary-memory budgets as fractions of the raw data
	// size (the paper sweeps 0.1%-0.5% of ~100 GB).
	MemFractions []float64
	// Kappas is the κ sweep (the paper uses 2..30).
	Kappas []int
	// BlockSize is the device block size in bytes.
	BlockSize int
	// Backend selects the warehouse storage backend for every run in the
	// campaign: "file" (default) or "mem". The memory backend removes real
	// file I/O from the measurement loop, isolating the algorithmic block
	// counts (cmd/hsqbench exposes this as --backend).
	Backend string
	// CacheBlocks, when positive, gives every engine in the campaign a
	// block cache of that many blocks.
	CacheBlocks int
	// BlockFormat selects the on-disk partition file layout for every run
	// in the campaign: "columnar" (default), or "raw" for the uncompressed
	// format (cmd/hsqbench exposes this as --block-format).
	BlockFormat string
	// Datasets optionally restricts the workloads swept (default: all of
	// Workloads, the paper's four panels).
	Datasets []string
}

// workloads returns the datasets this scale sweeps.
func (s Scale) workloads() []string {
	if len(s.Datasets) > 0 {
		return s.Datasets
	}
	return Workloads
}

// DataBytes returns the raw size of the full dataset in bytes.
func (s Scale) DataBytes() int64 {
	return int64(s.Steps)*int64(s.BatchSize)*8 + int64(s.StreamSize)*8
}

// TotalElements returns N at query time.
func (s Scale) TotalElements() int64 {
	return int64(s.Steps)*int64(s.BatchSize) + int64(s.StreamSize)
}

// MemBudgets materializes MemFractions into byte budgets.
func (s Scale) MemBudgets() []int64 {
	out := make([]int64, len(s.MemFractions))
	for i, f := range s.MemFractions {
		out[i] = int64(f * float64(s.DataBytes()))
	}
	return out
}

// Predefined scales. Small runs in seconds (tests, benches); Medium is the
// default for cmd/hsqbench; Large approaches the paper's step counts.
var (
	Small = Scale{
		Name: "small", Steps: 20, BatchSize: 4000, StreamSize: 4000,
		Repeats: 3, MemFractions: []float64{0.03, 0.06, 0.1},
		Kappas: []int{2, 3, 5, 10}, BlockSize: 4096,
	}
	Medium = Scale{
		Name: "medium", Steps: 100, BatchSize: 20000, StreamSize: 20000,
		Repeats: 2, MemFractions: []float64{0.001, 0.002, 0.003, 0.004, 0.005},
		Kappas: []int{2, 3, 5, 7, 9, 10, 15, 20, 25, 30}, BlockSize: 100 * 1024,
	}
	Large = Scale{
		Name: "large", Steps: 100, BatchSize: 300000, StreamSize: 300000,
		Repeats: 3, MemFractions: []float64{0.001, 0.002, 0.003, 0.004, 0.005},
		Kappas: []int{2, 3, 5, 7, 9, 10, 15, 20, 25, 30}, BlockSize: 100 * 1024,
	}
)

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (small|medium|large)", name)
	}
}

// Table is one figure panel: an x-axis sweep with one column per series.
type Table struct {
	// ID is the figure identifier, e.g. "fig4a-uniform".
	ID string
	// Title describes the panel (paper figure caption).
	Title string
	// XLabel names the x axis.
	XLabel string
	// Columns names the series.
	Columns []string
	// Rows holds the sweep.
	Rows []Row
}

// Row is one x position with one cell per column. NaN cells render blank.
type Row struct {
	X     float64
	Cells []float64
}

// AddRow appends a row.
func (t *Table) AddRow(x float64, cells ...float64) {
	t.Rows = append(t.Rows, Row{X: x, Cells: cells})
}

// Render writes an aligned, human-readable table.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	headers := append([]string{t.XLabel}, t.Columns...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		row := make([]string, 0, len(headers))
		row = append(row, formatCell(r.X))
		for _, c := range r.Cells {
			row = append(row, formatCell(c))
		}
		for i, s := range row {
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
		cells[ri] = row
	}
	for i, h := range headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
		_ = i
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], s)
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(append([]string{t.XLabel}, t.Columns...), ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(formatCell(r.X))
		for _, c := range r.Cells {
			b.WriteByte(',')
			b.WriteString(formatCell(c))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return ""
	case v == math.Trunc(v) && math.Abs(v) < 1e12:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 0.01 && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// median returns the median of xs (which it sorts in place).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	slices.Sort(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// mean returns the arithmetic mean.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Workloads lists the evaluation datasets in the paper's panel order
// (a: Uniform Random, b: Normal, c: Wikipedia, d: Network Trace).
var Workloads = []string{"uniform", "normal", "wikipedia", "nettrace"}

// QueryPhi is the quantile used for error measurements (the median, the
// most common target in the paper's motivating applications).
const QueryPhi = 0.5
