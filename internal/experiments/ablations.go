package experiments

import (
	"fmt"
	"math"

	"repro"
)

// AblationSplit sweeps the memory split between the historical summary HS
// and the stream summary SS at a fixed total budget. The paper fixes a
// 50/50 split and notes it is within 2× of optimal (§3.1); this ablation
// maps the actual tradeoff. The split determines two ε values: the engine
// runs at the weaker (larger) one to stay faithful to a single-ε engine,
// so the table reports achieved error and the two planned ε values.
func AblationSplit(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	t := &Table{
		ID:      "ablation-split-normal",
		Title:   fmt.Sprintf("Memory split HS:SS ablation, normal, κ=%d, budget=%dB", kappa, budget),
		XLabel:  "hist_fraction",
		Columns: []string{"RelErr", "PlannedEps"},
	}
	ds, err := makeDataset("normal", 9501, sc)
	if err != nil {
		return nil, err
	}
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		histBudget := f * float64(budget)
		streamBudget := (1 - f) * float64(budget)
		epsHS := epsForHistBudget(histBudget, sc.Steps, kappa)
		epsSS := epsForStreamBudget(streamBudget, int64(sc.StreamSize))
		eps := math.Max(epsHS, epsSS)
		if eps >= 0.5 {
			t.AddRow(f, math.NaN(), eps)
			continue
		}
		run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
		if err != nil {
			return nil, err
		}
		v, _, err := run.queryAccurate(QueryPhi)
		run.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(f, ds.orc.RelativeSpanError(QueryPhi, v), eps)
	}
	return []*Table{t}, nil
}

func epsForHistBudget(budget float64, steps, kappa int) float64 {
	lo, hi := 1e-9, 0.5
	f := func(eps float64) float64 { return hsq.PlannedHistBytes(eps, steps, kappa) - budget }
	if f(hi) > 0 {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if f(mid) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

func epsForStreamBudget(budget float64, m int64) float64 {
	lo, hi := 1e-9, 0.5
	f := func(eps float64) float64 { return hsq.PlannedStreamBytes(eps, m) - budget }
	if f(hi) > 0 {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if f(mid) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// AblationPinning measures the §2.4 block-pinning optimization: accurate
// query disk reads and latency with and without pinning the final block of
// each partition's search range.
func AblationPinning(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	t := &Table{
		ID:      "ablation-pinning-normal",
		Title:   fmt.Sprintf("Block pinning ablation, normal, κ=%d, budget=%dB", kappa, budget),
		XLabel:  "pin",
		Columns: []string{"Query_DiskAccess", "Query_ms"},
	}
	ds, err := makeDataset("normal", 9601, sc)
	if err != nil {
		return nil, err
	}
	eps, err := planEps(budget, sc, kappa)
	if err != nil {
		return nil, err
	}
	for pi, pin := range []bool{false, true} {
		run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, pin), root)
		if err != nil {
			return nil, err
		}
		var reads, times []float64
		for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			_, qs, err := run.queryAccurate(phi)
			if err != nil {
				run.Close()
				return nil, err
			}
			reads = append(reads, float64(qs.RandReads))
			times = append(times, qs.Elapsed.Seconds()*1000)
		}
		run.Close()
		t.AddRow(float64(pi), median(reads), median(times))
	}
	return []*Table{t}, nil
}

// AblationBaselines compares all pure-streaming competitors (GK, Q-Digest,
// RANDOM sampling) plus our two responses at one memory budget across all
// datasets — the "who stands where" summary behind Figure 4.
func AblationBaselines(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	t := &Table{
		ID:      "ablation-baselines",
		Title:   fmt.Sprintf("All methods at budget=%dB (relative error; rows: datasets in panel order)", budget),
		XLabel:  "dataset_idx",
		Columns: []string{"Accurate", "Quick", "GK", "QDigest", "MRL", "RANDOM"},
	}
	for wi, wl := range sc.workloads() {
		ds, err := makeDataset(wl, int64(9700+wi), sc)
		if err != nil {
			return nil, err
		}
		eps, err := planEps(budget, sc, kappa)
		if err != nil {
			return nil, err
		}
		run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
		if err != nil {
			return nil, err
		}
		av, _, err := run.queryAccurate(QueryPhi)
		if err != nil {
			run.Close()
			return nil, err
		}
		qv, _, err := run.queryQuick(QueryPhi)
		run.Close()
		if err != nil {
			return nil, err
		}
		gkRes, err := runGKBaseline(ds, budget, sc.TotalElements())
		if err != nil {
			return nil, err
		}
		qdRes, err := runQDigestBaseline(ds, budget)
		if err != nil {
			return nil, err
		}
		smRes, err := runSampleBaseline(ds, budget, int64(97+wi))
		if err != nil {
			return nil, err
		}
		mrlRes, err := runMRLBaseline(ds, budget, int64(197+wi))
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(wi),
			ds.orc.RelativeSpanError(QueryPhi, av),
			ds.orc.RelativeSpanError(QueryPhi, qv),
			gkRes.relErr, qdRes.relErr, mrlRes.relErr, smRes.relErr)
	}
	return []*Table{t}, nil
}

// TheoryTable reproduces the paper's §2.4 back-of-envelope: measured query
// disk accesses and memory against the Lemma 7/8/9 formulas with our
// measured constants, for the configured scale.
func TheoryTable(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	t := &Table{
		ID:      "theory-normal",
		Title:   "Measured vs Lemma 7 query I/O and Observation 1 memory (normal)",
		XLabel:  "row",
		Columns: []string{"MeasuredQueryIO", "Lemma7Bound", "MeasuredMemBytes", "PlannedMemBytes"},
	}
	ds, err := makeDataset("normal", 9801, sc)
	if err != nil {
		return nil, err
	}
	eps, err := planEps(budget, sc, kappa)
	if err != nil {
		return nil, err
	}
	run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
	if err != nil {
		return nil, err
	}
	var reads []float64
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		_, qs, err := run.queryAccurate(phi)
		if err != nil {
			run.Close()
			return nil, err
		}
		reads = append(reads, float64(qs.RandReads))
	}
	mem := run.eng.MemoryUsage()
	run.Close()

	n := float64(sc.Steps) * float64(sc.BatchSize)
	blocks := n * 8 / float64(sc.BlockSize)
	logKT := math.Log(float64(sc.Steps)) / math.Log(kappa)
	// Lemma 7: O(log_κ T · log(n/B) · log|U|); we charge constant 1 and
	// log|U| = universe bits of the workload.
	bound := logKT * math.Log2(math.Max(2, blocks)) * float64(ds.bits)
	planned := hsq.PlannedHistBytes(eps, sc.Steps, kappa) + hsq.PlannedStreamBytes(eps, int64(sc.StreamSize))
	t.AddRow(0, median(reads), bound, float64(mem.Total()), planned)
	return []*Table{t}, nil
}

// AblationIOBudget maps the conclusion's third tradeoff axis: fix memory,
// cap the random reads an accurate query may spend, and measure the error.
// A cap of zero means unlimited. Error falls steeply with the first few
// reads and flattens once the cap passes the natural query cost.
func AblationIOBudget(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	t := &Table{
		ID:      "ablation-iobudget-normal",
		Title:   fmt.Sprintf("Accuracy vs query I/O cap, normal, κ=%d, budget=%dB", kappa, budget),
		XLabel:  "max_reads",
		Columns: []string{"RelErr", "ActualReads", "Truncated"},
	}
	ds, err := makeDataset("normal", 9901, sc)
	if err != nil {
		return nil, err
	}
	eps, err := planEps(budget, sc, kappa)
	if err != nil {
		return nil, err
	}
	run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	for _, cap := range []int{1, 2, 4, 8, 16, 32, 64, 0} {
		var errs, reads, trunc []float64
		for _, phi := range []float64{0.13, 0.31, 0.5, 0.77, 0.9} {
			v, qs, err := run.eng.QuantileOpts(phi, hsq.QueryOpts{MaxReads: cap})
			if err != nil {
				return nil, err
			}
			errs = append(errs, ds.orc.RelativeSpanError(phi, v))
			reads = append(reads, float64(qs.RandReads))
			if qs.Truncated {
				trunc = append(trunc, 1)
			} else {
				trunc = append(trunc, 0)
			}
		}
		t.AddRow(float64(cap), median(errs), median(reads), mean(trunc))
	}
	return []*Table{t}, nil
}
