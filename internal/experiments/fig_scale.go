package experiments

import (
	"fmt"

	"repro/internal/oracle"
)

// Fig12 reproduces the first scalability experiment (Figures 12a-12c,
// Normal data, κ=10, fixed stream and memory): as historical size grows
// from 10% to 100%, relative error falls (the absolute error ε·m is
// constant while N grows), while update and query costs grow. One column
// per panel: relative error, update time and I/O, query time and I/O.
func Fig12(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	t := &Table{
		ID:     "fig12-normal",
		Title:  fmt.Sprintf("Scalability vs historical size, normal, κ=%d, memory=%dB, stream=%d", kappa, budget, sc.StreamSize),
		XLabel: "hist_elements",
		Columns: []string{
			"RelErr", "Update_s", "UpdateIO", "UpdateIOMerge", "Query_ms", "QueryIO",
		},
	}
	full, err := makeDataset("normal", 9001, sc)
	if err != nil {
		return nil, err
	}
	eps, err := planEps(budget, sc, kappa)
	if err != nil {
		return nil, err
	}
	for _, frac := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
		steps := int(frac * float64(sc.Steps))
		if steps < 1 {
			steps = 1
		}
		ds := &dataset{
			name:    full.name,
			batches: full.batches[:steps],
			stream:  full.stream,
			bits:    full.bits,
		}
		orc := oracle.New(steps*sc.BatchSize + sc.StreamSize)
		for _, b := range ds.batches {
			orc.Add(b...)
		}
		orc.Add(ds.stream...)
		ds.orc = orc

		run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
		if err != nil {
			return nil, err
		}
		loadT, sortT, mergeT, sumT := run.avgUpdate()
		updIO, updMergeIO := run.avgUpdateIO()
		v, qs, err := run.queryAccurate(QueryPhi)
		if err != nil {
			run.Close()
			return nil, err
		}
		relErr := orc.RelativeSpanError(QueryPhi, v)
		run.Close()
		t.AddRow(float64(steps)*float64(sc.BatchSize),
			relErr, loadT+sortT+mergeT+sumT, updIO, updMergeIO,
			qs.Elapsed.Seconds()*1000, float64(qs.RandReads))
	}
	return []*Table{t}, nil
}

// Fig13 reproduces the second scalability experiment (Figures 13a-13c):
// historical size fixed at 100%, stream size varies from 20% to 100%.
// Relative error grows linearly with stream size (error is ε·m); update and
// query costs are essentially flat.
func Fig13(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	t := &Table{
		ID:     "fig13-normal",
		Title:  fmt.Sprintf("Scalability vs stream size, normal, κ=%d, memory=%dB, history=%d steps", kappa, budget, sc.Steps),
		XLabel: "stream_elements",
		Columns: []string{
			"RelErr", "Update_s", "UpdateIO", "UpdateIOMerge", "Query_ms", "QueryIO",
		},
	}
	full, err := makeDataset("normal", 9101, sc)
	if err != nil {
		return nil, err
	}
	eps, err := planEps(budget, sc, kappa)
	if err != nil {
		return nil, err
	}
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		m := int(frac * float64(sc.StreamSize))
		if m < 1 {
			m = 1
		}
		ds := &dataset{
			name:    full.name,
			batches: full.batches,
			stream:  full.stream[:m],
			bits:    full.bits,
		}
		orc := oracle.New(sc.Steps*sc.BatchSize + m)
		for _, b := range ds.batches {
			orc.Add(b...)
		}
		orc.Add(ds.stream...)
		ds.orc = orc

		run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
		if err != nil {
			return nil, err
		}
		loadT, sortT, mergeT, sumT := run.avgUpdate()
		updIO, updMergeIO := run.avgUpdateIO()
		v, qs, err := run.queryAccurate(QueryPhi)
		if err != nil {
			run.Close()
			return nil, err
		}
		relErr := orc.RelativeSpanError(QueryPhi, v)
		run.Close()
		t.AddRow(float64(m),
			relErr, loadT+sortT+mergeT+sumT, updIO, updMergeIO,
			qs.Elapsed.Seconds()*1000, float64(qs.RandReads))
	}
	return []*Table{t}, nil
}
