package experiments

import (
	"fmt"
	"math"
)

// QueryPerf measures the query-path performance overhaul: the shared
// multi-target bisection sweep and the per-snapshot rank-probe memo.
//
// Table 1 (queryperf-multitarget) isolates probe sharing with memoization
// OFF: for each workload row, the same φ set is answered by k independent
// single-target calls and by one k-target Quantiles call, on the same
// warehouse. Columns report total bisection probes and backend reads for
// both, plus the ratios. Two regimes appear:
//
//   - "band3" is a dashboard confidence band around the median, with the
//     band width chosen inside the engine's accuracy (±0.4·ε·m/n in φ): the
//     targets' filters overlap, the sweep shares their bisection prefix and
//     usually one accepting probe resolves all three, so the probe ratio
//     must be ≥ 2× (the tentpole's headline claim).
//   - Spread sets (p25/p50/p75 and a 9-point sweep) have disjoint filters;
//     no algorithm can answer them with fewer than one accepting probe
//     each, so the honest claim is ratio ≥ 1 (never worse) with the saving
//     coming from shared cursor descents (read ratio).
//
// Table 2 (queryperf-dashboard) is the canonical repeated-poll workload
// with memoization ON (engine default): the same p50/p90/p99 poll issued
// round after round against an unchanged snapshot. Round 1 pays the real
// bisection; every later round must resolve entirely from the version's
// probe memo — RandReads drops to 0 and MemoHits equals Probes.
func QueryPerf(sc Scale, root string) ([]*Table, error) {
	const eps = 0.01
	kappa := sc.Kappas[len(sc.Kappas)-1]
	ds, err := makeDataset("uniform", 1, sc)
	if err != nil {
		return nil, err
	}

	// --- Table 1: probe sharing, memo off --------------------------------
	cfg := sc.hybridCfg(eps, kappa, true)
	cfg.probeMemo = -1
	run, err := newHybridRun(ds, cfg, root)
	if err != nil {
		return nil, err
	}
	defer run.Close()

	n := float64(ds.orc.Count())
	m := float64(run.eng.StreamCount())
	band := math.Max(0.4*eps*m/n, 1/n)
	workloads := []struct {
		name string
		phis []float64
	}{
		{"band3", []float64{0.5 - band, 0.5, 0.5 + band}},
		{"spread3", []float64{0.25, 0.5, 0.75}},
		{"tail3", []float64{0.5, 0.9, 0.99}},
		{"spread9", []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95, 0.99}},
	}
	t1 := &Table{
		ID: "queryperf-multitarget",
		Title: fmt.Sprintf("Shared k-target sweep vs k single-target calls (memo off), ε=%g κ=%d n=%d m=%d; rows: 0=band3 1=spread3 2=tail3 3=spread9",
			eps, kappa, int64(n), int64(m)),
		XLabel: "Workload",
		Columns: []string{
			"K", "SingleProbes", "SharedProbes", "ProbeRatio",
			"SingleReads", "SharedReads", "ReadRatio",
		},
	}
	for wi, wl := range workloads {
		singleProbes, singleReads := 0, 0
		for _, phi := range wl.phis {
			_, qs, err := run.eng.Quantile(phi)
			if err != nil {
				return nil, fmt.Errorf("queryperf %s single phi=%g: %w", wl.name, phi, err)
			}
			singleProbes += qs.Iterations
			singleReads += qs.RandReads
		}
		_, qs, err := run.eng.Quantiles(wl.phis)
		if err != nil {
			return nil, fmt.Errorf("queryperf %s shared: %w", wl.name, err)
		}
		t1.AddRow(float64(wi),
			float64(len(wl.phis)),
			float64(singleProbes), float64(qs.Iterations),
			ratio(singleProbes, qs.Iterations),
			float64(singleReads), float64(qs.RandReads),
			ratio(singleReads, qs.RandReads),
		)
	}

	// --- Table 2: repeated dashboard poll, memo on ------------------------
	mrun, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
	if err != nil {
		return nil, err
	}
	defer mrun.Close()
	t2 := &Table{
		ID: "queryperf-dashboard",
		Title: fmt.Sprintf("Repeated p50/p90/p99 poll on an unchanged snapshot (memo on), ε=%g κ=%d",
			eps, kappa),
		XLabel:  "Round",
		Columns: []string{"Probes", "RandReads", "CacheHits", "MemoHits"},
	}
	poll := []float64{0.5, 0.9, 0.99}
	const rounds = 5
	for round := 1; round <= rounds; round++ {
		_, qs, err := mrun.eng.Quantiles(poll)
		if err != nil {
			return nil, fmt.Errorf("queryperf dashboard round %d: %w", round, err)
		}
		t2.AddRow(float64(round),
			float64(qs.Iterations), float64(qs.RandReads),
			float64(qs.CacheHits), float64(qs.MemoHits))
	}
	return []*Table{t1, t2}, nil
}

// ratio reports a/b, treating a zero denominator as "b was free": the
// improvement is unbounded, rendered as +Inf unless a is zero too.
func ratio(a, b int) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(a) / float64(b)
}
