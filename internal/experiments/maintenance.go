package experiments

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro"
	"repro/internal/workload"
)

// MaintenanceComparison quantifies what the background maintenance
// scheduler buys under concurrent traffic: the same ingest+query workload
// runs once with synchronous maintenance (EndStep sorts and merges inline,
// holding the engine write lock) and once with the async scheduler (EndStep
// only seals; installs and merges run on the worker pool while queries read
// pinned snapshots). Reported per mode (x = 0 sync, x = 1 async):
//
//	EndStepP99Ms  — p99 end-of-step latency on the ingest path
//	ObserveP99Us  — p99 single-Observe latency with steps closing around it
//	QueryP99Ms    — p99 accurate-query latency while maintenance runs
//	Installs      — deferred installs executed (0 in sync mode)
//	Merges        — level merges executed by deferred installs
//
// The paper treats sort+merge as an offline "load" phase (Figure 6); this
// table is the online version of that cost: who pays it, the writer inline
// or a background pool.
func MaintenanceComparison(sc Scale, root string) ([]*Table, error) {
	steps := sc.Steps
	if steps > 24 {
		steps = 24
	}
	batch := sc.BatchSize
	if batch > 8000 {
		batch = 8000
	}
	t := &Table{
		ID:     "maintenance-stall",
		Title:  fmt.Sprintf("Ingest stall & query latency, sync (x=0) vs async (x=1) maintenance, uniform, κ=2, %d steps × %d", steps, batch),
		XLabel: "mode",
		Columns: []string{
			"EndStepP99Ms", "ObserveP99Us", "QueryP99Ms", "Installs", "Merges",
		},
	}
	for x, mode := range []string{hsq.MaintenanceSync, hsq.MaintenanceAsync} {
		res, err := runMaintenanceWorkload(mode, steps, batch)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(x),
			res.endStepP99.Seconds()*1e3,
			res.observeP99.Seconds()*1e6,
			res.queryP99.Seconds()*1e3,
			float64(res.installs),
			float64(res.merges),
		)
	}
	return []*Table{t}, nil
}

type maintResult struct {
	endStepP99 time.Duration
	observeP99 time.Duration
	queryP99   time.Duration
	installs   int
	merges     int
}

// runMaintenanceWorkload drives one producer (observe + end-of-steps) with
// one concurrent accurate-query reader and collects latency distributions.
func runMaintenanceWorkload(mode string, steps, batch int) (maintResult, error) {
	var out maintResult
	cfg := hsq.Config{
		Epsilon: 0.01, Kappa: 2, // κ=2 cascades merges constantly
		Backend: "mem", BlockSize: 4096,
		// Simulated disk latency so the inline sort+merge cost is the
		// device's, not the allocator's — the same trick the cache figure
		// uses to make wall-clock track the paper's I/O cost model.
		SimulateDisk: "ssd",
		Maintenance:  mode,
	}
	if mode == hsq.MaintenanceAsync {
		cfg.MaxPendingSteps = 8
		cfg.MaintenanceWorkers = 2
	}
	eng, err := hsq.New(cfg)
	if err != nil {
		return out, err
	}
	defer eng.Close() //nolint:errcheck

	gen := workload.NewUniform(77)
	var (
		stop     sync.WaitGroup
		done     = make(chan struct{})
		queryLat []time.Duration
		qErr     error
	)
	stop.Add(1)
	go func() {
		defer stop.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if eng.TotalCount() == 0 {
				continue
			}
			t0 := time.Now()
			if _, _, err := eng.Quantile(0.5); err != nil {
				qErr = err
				return
			}
			queryLat = append(queryLat, time.Since(t0))
		}
	}()

	var endLat, obsLat []time.Duration
	for s := 0; s < steps; s++ {
		vals := workload.Fill(gen, batch)
		for i, v := range vals {
			if i%16 == 0 {
				t0 := time.Now()
				eng.Observe(v)
				obsLat = append(obsLat, time.Since(t0))
			} else {
				eng.Observe(v)
			}
		}
		t0 := time.Now()
		if _, err := eng.EndStep(); err != nil {
			close(done)
			stop.Wait()
			return out, err
		}
		endLat = append(endLat, time.Since(t0))
	}
	if err := eng.SyncMaintenance(); err != nil {
		close(done)
		stop.Wait()
		return out, err
	}
	close(done)
	stop.Wait()
	if qErr != nil {
		return out, qErr
	}

	ms := eng.MaintenanceStats()
	out.installs = ms.Installs
	out.merges = ms.Merges
	out.endStepP99 = p99(endLat)
	out.observeP99 = p99(obsLat)
	out.queryP99 = p99(queryLat)
	return out, nil
}

// p99 returns the 99th-percentile of the samples (0 when empty).
func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	slices.Sort(lat)
	return lat[len(lat)*99/100]
}
