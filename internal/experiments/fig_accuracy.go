package experiments

import (
	"fmt"
	"math"
)

// Fig4 reproduces "Accuracy (Relative Error) vs Memory" (Figures 4a-4d):
// for each dataset, sweep the summary-memory budget at κ=10 and report the
// median relative error of four methods — our accurate response, the pure
// streaming Greenwald-Khanna and Q-Digest baselines, and our quick
// response. The paper's headline: the accurate response beats the pure
// streaming algorithms by ~100× at equal memory, and the quick response
// tracks Q-Digest.
func Fig4(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budgets := sc.MemBudgets()
	var tables []*Table
	for wi, wl := range sc.workloads() {
		t := &Table{
			ID:      fmt.Sprintf("fig4%c-%s", 'a'+wi, wl),
			Title:   fmt.Sprintf("Relative error vs memory, %s, κ=%d", wl, kappa),
			XLabel:  "memory_bytes",
			Columns: []string{"OurAlgorithm", "GreenwaldKhanna", "QDigest", "QuickResponse"},
		}
		for _, budget := range budgets {
			var ours, gks, qds, quicks []float64
			for rep := 0; rep < sc.Repeats; rep++ {
				seed := int64(1000*wi + rep + 1)
				ds, err := makeDataset(wl, seed, sc)
				if err != nil {
					return nil, err
				}
				eps, err := planEps(budget, sc, kappa)
				if err != nil {
					return nil, err
				}
				run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
				if err != nil {
					return nil, err
				}
				v, _, err := run.queryAccurate(QueryPhi)
				if err != nil {
					run.Close()
					return nil, err
				}
				ours = append(ours, ds.orc.RelativeSpanError(QueryPhi, v))
				qv, _, err := run.queryQuick(QueryPhi)
				if err != nil {
					run.Close()
					return nil, err
				}
				quicks = append(quicks, ds.orc.RelativeSpanError(QueryPhi, qv))
				run.Close()

				gkRes, err := runGKBaseline(ds, budget, sc.TotalElements())
				if err != nil {
					return nil, err
				}
				gks = append(gks, gkRes.relErr)
				qdRes, err := runQDigestBaseline(ds, budget)
				if err != nil {
					return nil, err
				}
				qds = append(qds, qdRes.relErr)
			}
			t.AddRow(float64(budget), median(ours), median(gks), median(qds), median(quicks))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig5 reproduces "Accuracy vs merge threshold κ" (Figures 5a-5d) at a
// fixed middle-of-sweep memory budget: measured relative error ("Relative
// Error in Practice") against the theoretical bound ε·m/(φ·N) ("Relative
// Error in Theory"). The paper's finding: accuracy does not depend on κ and
// sits well below the bound.
func Fig5(sc Scale, root string) ([]*Table, error) {
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	var tables []*Table
	for wi, wl := range sc.workloads() {
		t := &Table{
			ID:      fmt.Sprintf("fig5%c-%s", 'a'+wi, wl),
			Title:   fmt.Sprintf("Relative error vs κ, %s, memory=%dB", wl, budget),
			XLabel:  "kappa",
			Columns: []string{"RelErrPractice", "RelErrTheory"},
		}
		for _, kappa := range sc.Kappas {
			var errs []float64
			theory := math.NaN()
			for rep := 0; rep < sc.Repeats; rep++ {
				seed := int64(2000*wi + rep + 1)
				ds, err := makeDataset(wl, seed, sc)
				if err != nil {
					return nil, err
				}
				eps, err := planEps(budget, sc, kappa)
				if err != nil {
					return nil, err
				}
				theory = eps * float64(sc.StreamSize) / (QueryPhi * float64(sc.TotalElements()))
				run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
				if err != nil {
					return nil, err
				}
				v, _, err := run.queryAccurate(QueryPhi)
				run.Close()
				if err != nil {
					return nil, err
				}
				errs = append(errs, ds.orc.RelativeSpanError(QueryPhi, v))
			}
			t.AddRow(float64(kappa), median(errs), theory)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
