package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro"
	"repro/internal/workload"
)

// Cardinality quantifies the lazy stream directory's scaling claim: a DB
// can host three orders of magnitude more registered streams than it keeps
// hydrated, with resident memory tracking the hot set, not the directory.
// One DB runs a fixed hot set (continuously observed and queried) plus a
// pool of seeded-then-idle streams under a small MaxHydratedStreams
// budget, while the registered directory grows 1000× through bulk
// registration. Reported per decade (x = registered stream count):
//
//	HydratedStreams — engines resident at measurement time (≈ the budget,
//	                  never the directory size)
//	HeapAllocMB     — live heap after GC; the 1000× claim is this column
//	                  staying within 1.5× of its first row
//	HotObserveP99Us — p99 single-Observe on the hot set, which must not
//	                  degrade as the directory grows
//	ColdTouchP99Ms  — p99 first-touch latency on an evicted stream
//	                  (hydration: manifest read + summary rebuild + query)
//	Evictions       — cumulative LRU seals since open
//
// The eager directory this replaces kept every registered stream's engine
// resident and reopened all of them in Open, so both RSS and restart time
// grew linearly with the first column.
func Cardinality(sc Scale, root string) ([]*Table, error) {
	const (
		hotStreams  = 8
		poolStreams = 12
		budget      = 12
		decades     = 4
		hotSteps    = 10
		hotObserves = 2000
		coldTouches = 12
	)
	// The hot set carries a realistic working footprint — several steps of
	// real data per stream, queried enough to keep the block cache warm —
	// because the figure's claim is relative: resident memory tracks the
	// hot set, and the directory rides along at ~150 bytes per cold
	// stream. An empty hot set would make any directory look heavy.
	batch := 4 * sc.BatchSize
	if batch < 16000 {
		batch = 16000
	}
	if batch > 16000 {
		batch = 16000
	}
	db, err := hsq.Open(hsq.Options{
		Epsilon:            0.003,
		Kappa:              3,
		Dir:                root + "/cardinality",
		Backend:            sc.Backend,
		BlockSize:          4096,
		CacheBlocks:        4096,
		MaxHydratedStreams: budget,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close() //nolint:errcheck

	gen := workload.NewUniform(1)
	hot := make([]*hsq.Stream, hotStreams)
	for i := range hot {
		st, err := db.Stream(fmt.Sprintf("hot%02d", i))
		if err != nil {
			return nil, err
		}
		for s := 0; s < hotSteps; s++ {
			st.ObserveSlice(workload.Fill(gen, batch))
			if _, err := st.EndStep(); err != nil {
				return nil, err
			}
		}
		hot[i] = st
	}
	for i := 0; i < poolStreams; i++ {
		st, err := db.Stream(fmt.Sprintf("pool%03d", i))
		if err != nil {
			return nil, err
		}
		st.ObserveSlice(workload.Fill(gen, batch/4))
		if _, err := st.EndStep(); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID: "cardinality",
		Title: fmt.Sprintf("Registered streams vs resident memory, %d hot / budget %d, %d-element steps",
			hotStreams, budget, batch),
		XLabel: "RegisteredStreams",
		Columns: []string{
			"HydratedStreams", "HeapAllocMB", "HotObserveP99Us", "ColdTouchP99Ms", "Evictions",
		},
	}

	registered := hotStreams + poolStreams
	target := registered
	for d := 0; d < decades; d++ {
		if d > 0 {
			// Grow the directory a decade: bulk registration commits the
			// names durably without hydrating any of them.
			target *= 10
			names := make([]string, 0, target-registered)
			for i := registered; i < target; i++ {
				names = append(names, fmt.Sprintf("u%06d", i))
			}
			if err := db.RegisterStreams(names...); err != nil {
				return nil, err
			}
			registered = target
		}

		// Hot traffic: the streams the deployment actually touches. Their
		// latency must not feel the directory growing underneath.
		obsLat := make([]time.Duration, 0, hotObserves)
		for k := 0; k < hotObserves; k++ {
			st := hot[k%hotStreams]
			v := gen.Next()
			t0 := time.Now()
			st.Observe(v)
			obsLat = append(obsLat, time.Since(t0))
		}
		for _, st := range hot {
			// A dense spread of targets keeps the shared block cache warm
			// across each stream's partitions, the way live dashboards
			// would: the baseline heap must reflect a genuinely hot
			// working set, not an idle DB.
			phis := make([]float64, 0, 25)
			for q := 0.02; q < 1; q += 0.04 {
				phis = append(phis, q)
			}
			if _, _, err := st.Quantiles(phis); err != nil {
				return nil, err
			}
		}

		// Cold touches: first operation on evicted pool streams pays the
		// hydration (manifest read + summary rebuild) inline, once.
		coldLat := make([]time.Duration, 0, coldTouches)
		for k := 0; k < coldTouches; k++ {
			name := fmt.Sprintf("pool%03d", (d*coldTouches+k)%poolStreams)
			st, ok := db.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("cardinality: pool stream %s missing", name)
			}
			wasCold := !st.Hydrated()
			t0 := time.Now()
			if _, _, err := st.Quantile(0.5); err != nil {
				return nil, err
			}
			if wasCold {
				coldLat = append(coldLat, time.Since(t0))
			}
		}

		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		ds := db.DirectoryStats()
		if ds.Registered != registered {
			return nil, fmt.Errorf("cardinality: DirectoryStats.Registered = %d, want %d", ds.Registered, registered)
		}
		t.AddRow(float64(registered),
			float64(ds.Hydrated),
			float64(ms.HeapAlloc)/(1<<20),
			p99(obsLat).Seconds()*1e6,
			p99(coldLat).Seconds()*1e3,
			float64(ds.Evictions),
		)
	}
	return []*Table{t}, nil
}
