package experiments

import (
	"fmt"
	"os"
	"time"

	"repro"
)

// hybridRun is one full run of the paper's algorithm over a dataset.
type hybridRun struct {
	eng *hsq.Engine
	dir string

	updates []hsq.UpdateStats
	// perStepIO records total block accesses per time step (Figure 8).
	perStepIO []uint64
}

// hybridConfig parametrizes a hybrid run.
type hybridConfig struct {
	eps         float64
	kappa       int
	blockSize   int
	pin         bool
	backend     string
	cacheBlocks int
	blockFormat string
	probeMemo   int // ProbeMemoEntries (0 = engine default, < 0 = off)
}

// hybridCfg derives a run configuration from the campaign scale, inheriting
// the scale's block size, backend and cache sizing.
func (s Scale) hybridCfg(eps float64, kappa int, pin bool) hybridConfig {
	return hybridConfig{
		eps: eps, kappa: kappa, pin: pin,
		blockSize: s.BlockSize, backend: s.Backend, cacheBlocks: s.CacheBlocks,
		blockFormat: s.BlockFormat,
	}
}

// newHybridRun builds an engine in a fresh directory under root (for the
// file backend) and loads every batch of the dataset, then plays the
// in-flight stream.
func newHybridRun(ds *dataset, cfg hybridConfig, root string) (*hybridRun, error) {
	var dir string
	if cfg.backend == "" || cfg.backend == "file" {
		var err error
		dir, err = os.MkdirTemp(root, "hybrid-*")
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	eng, err := hsq.New(hsq.Config{
		Epsilon:     cfg.eps,
		Kappa:       cfg.kappa,
		Backend:     cfg.backend,
		Dir:         dir,
		BlockSize:   cfg.blockSize,
		CacheBlocks: cfg.cacheBlocks,
		BlockFormat: cfg.blockFormat,
		NoBlockPin:  !cfg.pin,

		ProbeMemoEntries: cfg.probeMemo,
	})
	if err != nil {
		if dir != "" {
			os.RemoveAll(dir) //nolint:errcheck
		}
		return nil, err
	}
	run := &hybridRun{eng: eng, dir: dir}
	for _, b := range ds.batches {
		eng.ObserveSlice(b)
		us, err := eng.EndStep()
		if err != nil {
			run.Close()
			return nil, err
		}
		run.updates = append(run.updates, us)
		run.perStepIO = append(run.perStepIO, us.TotalIO())
	}
	eng.ObserveSlice(ds.stream)
	return run, nil
}

// Close destroys the run's on-disk state.
func (r *hybridRun) Close() {
	r.eng.Destroy()     //nolint:errcheck
	os.RemoveAll(r.dir) //nolint:errcheck
}

// queryAccurate runs one accurate query and returns the answer with stats.
func (r *hybridRun) queryAccurate(phi float64) (int64, hsq.QueryStats, error) {
	return r.eng.Quantile(phi)
}

// queryQuick runs one quick query, timing it.
func (r *hybridRun) queryQuick(phi float64) (int64, time.Duration, error) {
	t0 := time.Now()
	v, err := r.eng.QuantileQuick(phi)
	return v, time.Since(t0), err
}

// avgUpdate aggregates per-phase means across all time steps, in seconds.
func (r *hybridRun) avgUpdate() (load, sort, merge, summary float64) {
	if len(r.updates) == 0 {
		return
	}
	for _, u := range r.updates {
		load += u.Load.Seconds()
		sort += u.Sort.Seconds()
		merge += u.Merge.Seconds()
		summary += u.Summary.Seconds()
	}
	n := float64(len(r.updates))
	return load / n, sort / n, merge / n, summary / n
}

// avgUpdateIO returns mean block accesses per step, total and merge-only.
func (r *hybridRun) avgUpdateIO() (total, mergeOnly float64) {
	if len(r.updates) == 0 {
		return
	}
	for _, u := range r.updates {
		total += float64(u.TotalIO())
		mergeOnly += float64(u.MergeIO.Total())
	}
	n := float64(len(r.updates))
	return total / n, mergeOnly / n
}

// planEps picks ε for a memory budget under this scale's geometry.
func planEps(budget int64, sc Scale, kappa int) (float64, error) {
	return hsq.Plan(budget, int64(sc.StreamSize), sc.Steps, kappa)
}
