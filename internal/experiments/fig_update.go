package experiments

import (
	"fmt"
	"os"
	"slices"
	"time"

	"repro/internal/gk"
	"repro/internal/qdigest"
)

// Fig6 reproduces "Update time vs memory" (Figures 6a-6d): per-time-step
// update cost at κ=10, broken into load / sort / merge / summary for our
// algorithm, next to the pure-streaming GK and Q-Digest update costs under
// the same warehouse-loading paradigm (which loads and merges but does not
// sort). The paper's finding: ours costs ≈1.5× pure streaming, dominated by
// sort+merge.
func Fig6(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budgets := sc.MemBudgets()
	var tables []*Table
	for wi, wl := range sc.workloads() {
		t := &Table{
			ID:     fmt.Sprintf("fig6%c-%s", 'a'+wi, wl),
			Title:  fmt.Sprintf("Update time per step vs memory, %s, κ=%d (seconds)", wl, kappa),
			XLabel: "memory_bytes",
			Columns: []string{
				"Load", "Sort", "Merge", "Summary", "OursTotal",
				"GKTotal", "QDigestTotal",
			},
		}
		ds, err := makeDataset(wl, int64(3000+wi), sc)
		if err != nil {
			return nil, err
		}
		for _, budget := range budgets {
			eps, err := planEps(budget, sc, kappa)
			if err != nil {
				return nil, err
			}
			run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
			if err != nil {
				return nil, err
			}
			load, sort, merge, summary := run.avgUpdate()
			run.Close()

			gkT, err := pureStreamingUpdate(ds, sc, kappa, budget, root, "gk")
			if err != nil {
				return nil, err
			}
			qdT, err := pureStreamingUpdate(ds, sc, kappa, budget, root, "qdigest")
			if err != nil {
				return nil, err
			}
			t.AddRow(float64(budget), load, sort, merge, summary,
				load+sort+merge+summary, gkT, qdT)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// pureStreamingUpdate measures the per-step update cost of a pure-streaming
// competitor under the paper's loading paradigm: sketch insertion plus
// unsorted warehouse loading and κ-leveled merging.
func pureStreamingUpdate(ds *dataset, sc Scale, kappa int, budget int64, root, algo string) (float64, error) {
	dir, err := os.MkdirTemp(root, "plain-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck
	dev, err := sc.newDevice(dir)
	if err != nil {
		return 0, err
	}
	store := newPlainStore(dev, kappa)

	var insert func(v int64) error
	switch algo {
	case "gk":
		g, err := gk.New(gkEpsForBudget(budget, sc.TotalElements()))
		if err != nil {
			return 0, err
		}
		insert = func(v int64) error { g.Insert(v); return nil }
	case "qdigest":
		d, err := qdigest.New(qdigestEpsForBudget(budget, ds.bits), ds.bits)
		if err != nil {
			return 0, err
		}
		insert = d.Insert
	default:
		return 0, fmt.Errorf("experiments: unknown algo %q", algo)
	}

	var total time.Duration
	for _, b := range ds.batches {
		t0 := time.Now()
		for _, v := range b {
			if err := insert(v); err != nil {
				return 0, err
			}
		}
		sketch := time.Since(t0)
		load, merge, _, err := store.addBatch(b)
		if err != nil {
			return 0, err
		}
		total += sketch + load + merge
	}
	return total.Seconds() / float64(len(ds.batches)), nil
}

// Fig7 reproduces "Update time and disk accesses vs κ" (Figures 7a-7d) at a
// fixed memory budget: per-step load/sort/merge/summary times plus the
// average number of block accesses per step, overall and for merging only.
// At short horizons the κ=9-vs-10 anomaly the paper discusses appears here
// as a bump in merge I/O whenever a level-1→2 merge lands inside the run.
func Fig7(sc Scale, root string) ([]*Table, error) {
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	var tables []*Table
	for wi, wl := range sc.workloads() {
		t := &Table{
			ID:     fmt.Sprintf("fig7%c-%s", 'a'+wi, wl),
			Title:  fmt.Sprintf("Update time & disk accesses vs κ, %s, memory=%dB", wl, budget),
			XLabel: "kappa",
			Columns: []string{
				"Load_s", "Sort_s", "Merge_s", "Summary_s",
				"AvgDiskAccess", "AvgDiskAccessMerge",
			},
		}
		ds, err := makeDataset(wl, int64(4000+wi), sc)
		if err != nil {
			return nil, err
		}
		for _, kappa := range sc.Kappas {
			eps, err := planEps(budget, sc, kappa)
			if err != nil {
				return nil, err
			}
			run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
			if err != nil {
				return nil, err
			}
			load, sort, merge, summary := run.avgUpdate()
			total, mergeIO := run.avgUpdateIO()
			run.Close()
			t.AddRow(float64(kappa), load, sort, merge, summary, total, mergeIO)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig8 reproduces the cumulative distribution of per-time-step disk
// accesses for κ ∈ {7, 9, 10} on the Normal dataset (Figure 8): point
// (x, y) means y percent of time steps cost at most x block accesses. The
// distribution is a staircase — most steps only pay for loading the new
// batch, a few pay level-0→1 merges, and rare steps pay a cascading
// level-1→2 merge.
func Fig8(sc Scale, root string) ([]*Table, error) {
	kappas := []int{7, 9, 10}
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	ds, err := makeDataset("normal", 5001, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8-normal",
		Title:   fmt.Sprintf("Cumulative %% of time steps vs disk accesses per step, normal, memory=%dB", budget),
		XLabel:  "percentile",
		Columns: []string{"kappa7_accesses", "kappa9_accesses", "kappa10_accesses"},
	}
	perKappa := make([][]uint64, len(kappas))
	for ki, kappa := range kappas {
		eps, err := planEps(budget, sc, kappa)
		if err != nil {
			return nil, err
		}
		run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
		if err != nil {
			return nil, err
		}
		perKappa[ki] = slices.Clone(run.perStepIO)
		slices.Sort(perKappa[ki])
		run.Close()
	}
	for _, pct := range []float64{10, 25, 50, 75, 89, 90, 95, 99, 100} {
		cells := make([]float64, len(kappas))
		for ki := range kappas {
			xs := perKappa[ki]
			idx := int(pct/100*float64(len(xs))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(xs) {
				idx = len(xs) - 1
			}
			cells[ki] = float64(xs[idx])
		}
		t.AddRow(pct, cells...)
	}
	return []*Table{t}, nil
}
