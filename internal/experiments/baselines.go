package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/disk"
	"repro/internal/gk"
	"repro/internal/mrl"
	"repro/internal/oracle"
	"repro/internal/qdigest"
	"repro/internal/sample"
	"repro/internal/workload"
)

// dataset is one generated evaluation dataset: T batches plus a final
// in-flight stream, with an exact oracle over the union. Datasets are
// generated once per (workload, seed) and shared across algorithms so every
// competitor sees identical data.
type dataset struct {
	name    string
	batches [][]int64
	stream  []int64
	orc     *oracle.Oracle
	bits    uint
}

// makeDataset draws a dataset for the given workload, seed and scale.
func makeDataset(wl string, seed int64, sc Scale) (*dataset, error) {
	gen, err := workload.ByName(wl, seed)
	if err != nil {
		return nil, err
	}
	ds := &dataset{name: wl, bits: gen.UniverseBits()}
	ds.orc = oracle.New(int(sc.TotalElements()))
	ds.batches = make([][]int64, sc.Steps)
	for i := range ds.batches {
		ds.batches[i] = workload.Fill(gen, sc.BatchSize)
		ds.orc.Add(ds.batches[i]...)
	}
	ds.stream = workload.Fill(gen, sc.StreamSize)
	ds.orc.Add(ds.stream...)
	return ds, nil
}

// --- memory planners for the pure-streaming baselines -----------------

// gkEpsForBudget inverts the GK memory model bytes = 24·(1/(2ε))·log₂(2εN)
// to find the ε a pure-streaming GK can afford within the budget.
func gkEpsForBudget(budget int64, n int64) float64 {
	f := func(eps float64) float64 {
		t := (1 / (2 * eps)) * math.Max(1, math.Log2(math.Max(2, 2*eps*float64(n))))
		return 24*t - float64(budget)
	}
	lo, hi := 1e-9, 0.5
	if f(hi) > 0 {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if f(mid) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// qdigestEpsForBudget inverts the Q-Digest memory model. The asymptotic
// node count is bits/ε; our implementation's measured steady state is
// ≈3 nodes per bits/ε (sibling/parent slack) and the multiplicative
// compression trigger allows 2× growth between compressions, so we charge
// bytes = 6·48·(bits/ε) to keep the baseline honestly inside its budget at
// peak.
func qdigestEpsForBudget(budget int64, bits uint) float64 {
	eps := 6 * 48 * float64(bits) / float64(budget)
	if eps > 0.5 {
		eps = 0.5
	}
	if eps < 1e-9 {
		eps = 1e-9
	}
	return eps
}

// baselineResult reports one pure-streaming run.
type baselineResult struct {
	relErr     float64
	sketchTime time.Duration // total insert time across the whole run
	queryTime  time.Duration
	memBytes   int64 // peak sketch memory
}

// runGKBaseline feeds the entire dataset through one Greenwald-Khanna
// sketch sized for the budget (the paper's strongest pure-streaming
// competitor) and queries the target quantile.
func runGKBaseline(ds *dataset, budget int64, n int64) (*baselineResult, error) {
	eps := gkEpsForBudget(budget, n)
	g, err := gk.New(eps)
	if err != nil {
		return nil, err
	}
	var res baselineResult
	t0 := time.Now()
	for _, b := range ds.batches {
		for _, v := range b {
			g.Insert(v)
		}
	}
	for _, v := range ds.stream {
		g.Insert(v)
	}
	res.sketchTime = time.Since(t0)
	t0 = time.Now()
	v, ok := g.Quantile(QueryPhi)
	res.queryTime = time.Since(t0)
	if !ok {
		return nil, fmt.Errorf("experiments: GK query failed")
	}
	res.relErr = ds.orc.RelativeSpanError(QueryPhi, v)
	res.memBytes = g.MaxMemoryBytes()
	return &res, nil
}

// runQDigestBaseline is the Q-Digest pure-streaming competitor.
func runQDigestBaseline(ds *dataset, budget int64) (*baselineResult, error) {
	eps := qdigestEpsForBudget(budget, ds.bits)
	d, err := qdigest.New(eps, ds.bits)
	if err != nil {
		return nil, err
	}
	var res baselineResult
	t0 := time.Now()
	for _, b := range ds.batches {
		for _, v := range b {
			if err := d.Insert(v); err != nil {
				return nil, err
			}
		}
	}
	for _, v := range ds.stream {
		if err := d.Insert(v); err != nil {
			return nil, err
		}
	}
	res.sketchTime = time.Since(t0)
	t0 = time.Now()
	v, ok := d.Quantile(QueryPhi)
	res.queryTime = time.Since(t0)
	if !ok {
		return nil, fmt.Errorf("experiments: QDigest query failed")
	}
	res.relErr = ds.orc.RelativeSpanError(QueryPhi, v)
	res.memBytes = d.MaxMemoryBytes()
	return &res, nil
}

// runMRLBaseline is the MRL99-style multi-level buffer competitor
// (ablation; Wang et al.'s strongest randomized algorithm).
func runMRLBaseline(ds *dataset, budget int64, seed int64) (*baselineResult, error) {
	s, err := mrl.ForBudget(budget, seed)
	if err != nil {
		return nil, err
	}
	var res baselineResult
	t0 := time.Now()
	for _, b := range ds.batches {
		for _, v := range b {
			s.Insert(v)
		}
	}
	for _, v := range ds.stream {
		s.Insert(v)
	}
	res.sketchTime = time.Since(t0)
	t0 = time.Now()
	v, ok := s.Quantile(QueryPhi)
	res.queryTime = time.Since(t0)
	if !ok {
		return nil, fmt.Errorf("experiments: MRL query failed")
	}
	res.relErr = ds.orc.RelativeSpanError(QueryPhi, v)
	res.memBytes = s.MemoryBytes()
	return &res, nil
}

// runSampleBaseline is the RANDOM subsampling competitor (ablation).
func runSampleBaseline(ds *dataset, budget int64, seed int64) (*baselineResult, error) {
	capacity := int(budget / 8)
	if capacity < 2 {
		capacity = 2
	}
	s, err := sample.New(capacity, seed)
	if err != nil {
		return nil, err
	}
	var res baselineResult
	t0 := time.Now()
	for _, b := range ds.batches {
		for _, v := range b {
			s.Insert(v)
		}
	}
	for _, v := range ds.stream {
		s.Insert(v)
	}
	res.sketchTime = time.Since(t0)
	t0 = time.Now()
	v, ok := s.Quantile(QueryPhi)
	res.queryTime = time.Since(t0)
	if !ok {
		return nil, fmt.Errorf("experiments: sample query failed")
	}
	res.relErr = ds.orc.RelativeSpanError(QueryPhi, v)
	res.memBytes = s.MemoryBytes()
	return &res, nil
}

// --- warehouse loading for pure-streaming update-time comparison ------

// plainStore mimics the warehouse loading paradigm the paper applies to the
// pure-streaming competitors (Figure 6): new batches are written to disk and
// the same κ-leveled partitioning scheme merges them — but without sorting,
// since a streaming sketch does not need sorted partitions.
type plainStore struct {
	dev    *disk.Manager
	kappa  int
	levels [][]plainPart
	nextID int
}

type plainPart struct {
	name  string
	count int64
}

func newPlainStore(dev *disk.Manager, kappa int) *plainStore {
	return &plainStore{dev: dev, kappa: kappa}
}

// addBatch loads one batch; returns (load time, merge time, io delta).
func (s *plainStore) addBatch(data []int64) (load, merge time.Duration, io disk.Stats, err error) {
	before := s.dev.Stats()
	t0 := time.Now()
	name := fmt.Sprintf("plain-%06d.dat", s.nextID)
	s.nextID++
	w, err := s.dev.Create(name)
	if err != nil {
		return 0, 0, disk.Stats{}, err
	}
	if err := w.AppendSlice(data); err != nil {
		w.Abort()
		return 0, 0, disk.Stats{}, err
	}
	if err := w.Close(); err != nil {
		return 0, 0, disk.Stats{}, err
	}
	if len(s.levels) == 0 {
		s.levels = append(s.levels, nil)
	}
	s.levels[0] = append(s.levels[0], plainPart{name, int64(len(data))})
	load = time.Since(t0)

	t0 = time.Now()
	for lvl := 0; lvl < len(s.levels); lvl++ {
		if len(s.levels[lvl]) <= s.kappa {
			continue
		}
		if err := s.mergeLevel(lvl); err != nil {
			return 0, 0, disk.Stats{}, err
		}
	}
	merge = time.Since(t0)
	io = s.dev.Stats().Sub(before)
	return load, merge, io, nil
}

// mergeLevel concatenates all partitions of a level into one at the next
// level (sequential read + sequential write, no sort).
func (s *plainStore) mergeLevel(lvl int) error {
	group := s.levels[lvl]
	name := fmt.Sprintf("plain-%06d.dat", s.nextID)
	s.nextID++
	w, err := s.dev.Create(name)
	if err != nil {
		return err
	}
	var total int64
	for _, p := range group {
		r, err := s.dev.OpenSequential(p.name)
		if err != nil {
			w.Abort()
			return err
		}
		for {
			v, ok, err := r.Next()
			if err != nil {
				r.Close() //nolint:errcheck
				w.Abort()
				return err
			}
			if !ok {
				break
			}
			if err := w.Append(v); err != nil {
				r.Close() //nolint:errcheck
				w.Abort()
				return err
			}
			total++
		}
		if err := r.Close(); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	for _, p := range group {
		if err := s.dev.Remove(p.name); err != nil {
			return err
		}
	}
	s.levels[lvl] = nil
	if lvl+1 >= len(s.levels) {
		s.levels = append(s.levels, nil)
	}
	s.levels[lvl+1] = append(s.levels[lvl+1], plainPart{name, total})
	return nil
}

// diskManager is a small indirection so tests can build devices without
// importing internal/disk directly.
func diskManager(dir string, blockSize int) (*disk.Manager, error) {
	return disk.NewManager(dir, blockSize)
}

// newDevice builds a block device for one baseline run, honoring the
// scale's backend selection.
func (s Scale) newDevice(dir string) (*disk.Manager, error) {
	b, err := disk.OpenBackend(s.Backend, dir)
	if err != nil {
		return nil, err
	}
	return disk.NewManagerOn(b, s.BlockSize)
}
