package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro"
	"repro/hsqclient"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/workload"
)

// QueryLayer measures the composable query layer against the dashboard
// pattern it replaces. A fleet of K streams is loaded into one warehouse;
// the same three quantile targets are then answered three ways:
//
//	NPollAccurate — the pre-query-layer idiom: poll every stream with an
//	                accurate per-stream Quantiles call, every round. Each
//	                poll bisects into partition files, so the row pays
//	                backend random reads (round 1 at least; later rounds
//	                may resolve from the probe memo).
//	MergedQuery   — one db.Query() per round over the same fleet: member
//	                summaries merge in memory and quick queries answer all
//	                targets, so the row must report zero random reads.
//	SubscribePush — the continuous path: one wire subscription over the
//	                fleet glob while further steps stream in over the same
//	                socket; the server re-evaluates the merged plan and
//	                pushes coalesced results. Also summary-only.
//
// Columns: Answers (quantile values obtained), WallMs, ValuesPerSec
// (answers per second), RandReads (backend random reads the mode cost).
// The figure's claim is the cost shape, not raw speed: a merged query
// answers the fleet for zero reads where N accurate polls pay reads, and
// the push path sustains that at ingest rate without client polling.
func QueryLayer(sc Scale, root string) ([]*Table, error) {
	const (
		streams   = 8
		steps     = 6
		rounds    = 3
		pushSteps = 4
	)
	phis := []float64{0.5, 0.9, 0.99}
	batch := sc.BatchSize / 4
	if batch < 1000 {
		batch = 1000
	}
	if batch > 8000 {
		batch = 8000
	}

	db, err := hsq.Open(hsq.Options{
		Epsilon:     0.01,
		Kappa:       3,
		Dir:         root + "/querylayer",
		Backend:     sc.Backend,
		BlockSize:   sc.BlockSize,
		CacheBlocks: 64,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close() //nolint:errcheck

	gen := workload.NewUniform(1)
	names := make([]string, streams)
	for i := range names {
		names[i] = fmt.Sprintf("fleet.n%02d.lat", i)
		st, err := db.Stream(names[i])
		if err != nil {
			return nil, err
		}
		for s := 0; s < steps; s++ {
			st.ObserveSlice(workload.Fill(gen, batch))
			if _, err := st.EndStep(); err != nil {
				return nil, err
			}
		}
	}

	t := &Table{
		ID: "querylayer",
		Title: fmt.Sprintf("Fleet dashboard: %d streams × %d targets, %d rounds (ε=0.01); rows: 0=NPollAccurate 1=MergedQuery 2=SubscribePush",
			streams, len(phis), rounds),
		XLabel:  "Mode",
		Columns: []string{"Answers", "WallMs", "ValuesPerSec", "RandReads"},
	}
	addMode := func(mode float64, answers int, elapsed time.Duration, reads uint64) {
		t.AddRow(mode, float64(answers), elapsed.Seconds()*1e3,
			float64(answers)/elapsed.Seconds(), float64(reads))
	}

	// --- Mode 0: poll every stream, accurately, every round ---------------
	io0 := db.DiskStats()
	start := time.Now()
	polled := 0
	for r := 0; r < rounds; r++ {
		for _, name := range names {
			eng, ok := db.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("querylayer: stream %s missing", name)
			}
			if _, _, err := eng.Quantiles(phis); err != nil {
				return nil, err
			}
			polled += len(phis)
		}
	}
	addMode(0, polled, time.Since(start), db.DiskStats().RandReads-io0.RandReads)

	// --- Mode 1: one merged query per round -------------------------------
	plan := &query.Plan{Match: "fleet.**", Phis: phis}
	io1 := db.DiskStats()
	start = time.Now()
	merged := 0
	for r := 0; r < rounds; r++ {
		res, err := db.RunPlan(plan)
		if err != nil {
			return nil, err
		}
		for _, g := range res.Groups {
			for _, w := range g.Windows {
				merged += len(w.Values)
			}
		}
	}
	addMode(1, merged, time.Since(start), db.DiskStats().RandReads-io1.RandReads)

	// --- Mode 2: one subscription, pushes ride the ingest -----------------
	srv := ingest.New(ingest.Config{DB: db, PushDebounce: time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)                          //nolint:errcheck
	defer srv.Shutdown(context.Background()) //nolint:errcheck
	c, err := hsqclient.Dial(l.Addr().String())
	if err != nil {
		return nil, err
	}
	defer c.Close() //nolint:errcheck

	planJSON, err := json.Marshal(plan)
	if err != nil {
		return nil, err
	}
	sub, err := c.Subscribe(context.Background(), planJSON)
	if err != nil {
		return nil, err
	}
	defer sub.Unsubscribe() //nolint:errcheck

	wantN := int64(streams*steps*batch) + int64(streams*pushSteps*(batch/4))
	io2 := db.DiskStats()
	start = time.Now()
	for s := 0; s < pushSteps; s++ {
		for _, name := range names {
			st := c.Stream(name)
			for _, v := range workload.Fill(gen, batch/4) {
				if err := st.Observe(v); err != nil {
					return nil, err
				}
			}
			if err := st.EndStep(); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	// Drain pushes until one reflects the final ingested state; coalescing
	// may fold intermediate evaluations, which is the point of the path.
	pushed := 0
	deadline := time.After(60 * time.Second)
	for {
		var u hsqclient.Update
		select {
		case u = <-sub.Updates():
		case <-deadline:
			return nil, fmt.Errorf("querylayer: no push reached N=%d", wantN)
		}
		if u.Err != nil {
			return nil, u.Err
		}
		var res query.Result
		if err := json.Unmarshal(u.Result, &res); err != nil {
			return nil, err
		}
		if len(res.Groups) != 1 {
			continue
		}
		pushed += len(res.Groups[0].Windows[0].Values)
		if res.Groups[0].Windows[0].N >= wantN {
			break
		}
	}
	addMode(2, pushed, time.Since(start), db.DiskStats().RandReads-io2.RandReads)
	return []*Table{t}, nil
}
