package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// FigureFunc produces the tables for one figure at the given scale, using
// root as scratch space for warehouse directories.
type FigureFunc func(sc Scale, root string) ([]*Table, error)

// Registry maps figure identifiers to their implementations, in the
// paper's order plus our ablations.
var Registry = map[string]FigureFunc{
	"4":                 Fig4,
	"5":                 Fig5,
	"6":                 Fig6,
	"7":                 Fig7,
	"8":                 Fig8,
	"9":                 Fig9,
	"10":                Fig10,
	"11":                Fig11,
	"12":                Fig12,
	"13":                Fig13,
	"ablation-split":    AblationSplit,
	"ablation-pinning":  AblationPinning,
	"ablation-iobudget": AblationIOBudget,
	"baselines":         AblationBaselines,
	"theory":            TheoryTable,
	"maintenance":       MaintenanceComparison,
	"ingest":            IngestComparison,
	"columnar":          ColumnarComparison,
	"cluster":           ClusterComparison,
	"cardinality":       Cardinality,
	"queryperf":         QueryPerf,
	"querylayer":        QueryLayer,
}

// FigureIDs returns the registry keys in presentation order.
func FigureIDs() []string {
	order := []string{"4", "5", "6", "7", "8", "9", "10", "11", "12", "13",
		"ablation-split", "ablation-pinning", "ablation-iobudget", "baselines", "theory",
		"maintenance", "ingest", "columnar", "cluster", "cardinality", "queryperf",
		"querylayer"}
	// Defensive: include any unlisted keys at the end.
	seen := make(map[string]bool, len(order))
	for _, k := range order {
		seen[k] = true
	}
	var extra []string
	for k := range Registry {
		if !seen[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return append(order, extra...)
}

// Run executes one figure, renders its tables to w, and (if outDir is
// non-empty) writes one CSV per table into outDir.
func Run(id string, sc Scale, w io.Writer, outDir string) error {
	fn, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown figure %q (have %v)", id, FigureIDs())
	}
	scratch, err := os.MkdirTemp("", "hsq-exp-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch) //nolint:errcheck

	start := time.Now()
	tables, err := fn(sc, scratch)
	if err != nil {
		return fmt.Errorf("experiments: figure %s: %w", id, err)
	}
	fmt.Fprintf(w, "# figure %s (scale=%s, %s)\n\n", id, sc.Name, time.Since(start).Round(time.Millisecond))
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(outDir, t.ID+".csv"))
			if err != nil {
				return err
			}
			if err := t.CSV(f); err != nil {
				f.Close() //nolint:errcheck
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
