package experiments

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny is a minimal scale so tests run in seconds.
var tiny = Scale{
	Name: "tiny", Steps: 8, BatchSize: 1500, StreamSize: 1500,
	Repeats: 1, MemFractions: []float64{0.15, 0.25},
	Kappas: []int{2, 3}, BlockSize: 1024,
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("%s: %+v, %v", name, sc, err)
		}
	}
	if _, err := ScaleByName("nope"); err == nil {
		t.Error("unknown scale: want error")
	}
}

func TestScaleArithmetic(t *testing.T) {
	if tiny.TotalElements() != 8*1500+1500 {
		t.Errorf("TotalElements = %d", tiny.TotalElements())
	}
	if tiny.DataBytes() != tiny.TotalElements()*8 {
		t.Errorf("DataBytes = %d", tiny.DataBytes())
	}
	bs := tiny.MemBudgets()
	if len(bs) != 2 || bs[0] >= bs[1] {
		t.Errorf("MemBudgets = %v", bs)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", XLabel: "k", Columns: []string{"a", "b"}}
	tab.AddRow(1, 0.5, math.NaN())
	tab.AddRow(2, 123456789, 1e-9)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== x: T ==") || !strings.Contains(out, "0.5") {
		t.Errorf("render output:\n%s", out)
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "k,a,b" {
		t.Errorf("csv:\n%s", buf.String())
	}
	// NaN renders as empty cell.
	if !strings.HasSuffix(lines[1], ",") {
		t.Errorf("NaN cell not blank: %q", lines[1])
	}
}

func TestMedianAndMean(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median = %g", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %g", m)
	}
	if !math.IsNaN(median(nil)) {
		t.Error("median(nil) should be NaN")
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %g", m)
	}
	if !math.IsNaN(mean(nil)) {
		t.Error("mean(nil) should be NaN")
	}
}

func TestMakeDataset(t *testing.T) {
	ds, err := makeDataset("uniform", 1, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.batches) != tiny.Steps || len(ds.stream) != tiny.StreamSize {
		t.Error("dataset shape wrong")
	}
	if ds.orc.Count() != tiny.TotalElements() {
		t.Errorf("oracle count = %d", ds.orc.Count())
	}
	if _, err := makeDataset("nope", 1, tiny); err == nil {
		t.Error("unknown workload: want error")
	}
}

func TestBaselinePlanners(t *testing.T) {
	// Monotone: more budget → smaller eps.
	prev := 1.0
	for _, b := range []int64{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
		eps := gkEpsForBudget(b, 1_000_000)
		if eps > prev {
			t.Errorf("gk eps increased with budget")
		}
		prev = eps
	}
	if eps := qdigestEpsForBudget(48*30, 30); math.Abs(eps-0.5) > 1e-9 {
		t.Errorf("qdigest tiny budget eps = %g, want clamp 0.5", eps)
	}
	if eps := qdigestEpsForBudget(1<<30, 30); eps >= 0.001 {
		t.Errorf("qdigest big budget eps = %g", eps)
	}
}

func TestBaselineRunners(t *testing.T) {
	ds, err := makeDataset("uniform", 3, tiny)
	if err != nil {
		t.Fatal(err)
	}
	budget := tiny.MemBudgets()[0]
	gkRes, err := runGKBaseline(ds, budget, tiny.TotalElements())
	if err != nil {
		t.Fatal(err)
	}
	if gkRes.relErr < 0 || gkRes.relErr > 1 {
		t.Errorf("GK relErr = %g", gkRes.relErr)
	}
	qdRes, err := runQDigestBaseline(ds, budget)
	if err != nil {
		t.Fatal(err)
	}
	if qdRes.relErr < 0 || qdRes.relErr > 2 {
		t.Errorf("QDigest relErr = %g", qdRes.relErr)
	}
	smRes, err := runSampleBaseline(ds, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	if smRes.relErr < 0 || smRes.relErr > 2 {
		t.Errorf("sample relErr = %g", smRes.relErr)
	}
}

// TestFig4Shape runs the headline accuracy figure at tiny scale and checks
// the paper's qualitative result: the accurate hybrid beats both pure
// streaming baselines at every budget.
func TestFig4Shape(t *testing.T) {
	tables, err := Fig4(tinyOneWorkload(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		for _, row := range tab.Rows {
			ours, gk, qd := row.Cells[0], row.Cells[1], row.Cells[2]
			if ours > gk {
				t.Errorf("%s budget=%g: ours %g worse than GK %g", tab.ID, row.X, ours, gk)
			}
			if ours > qd {
				t.Errorf("%s budget=%g: ours %g worse than QDigest %g", tab.ID, row.X, ours, qd)
			}
		}
	}
}

// tinyOneWorkload restricts tiny to the uniform dataset: heavy-duplicate
// workloads can give every method zero error at tiny scale, which makes
// ordering assertions meaningless.
func tinyOneWorkload() Scale {
	sc := tiny
	sc.Datasets = []string{"uniform"}
	return sc
}

func TestFig8CDF(t *testing.T) {
	tables, err := Fig8(tiny, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatal("want one table")
	}
	tab := tables[0]
	// CDF columns must be non-decreasing in the percentile.
	for c := 0; c < len(tab.Columns); c++ {
		prev := -1.0
		for _, row := range tab.Rows {
			if row.Cells[c] < prev {
				t.Errorf("%s: column %d decreases", tab.ID, c)
			}
			prev = row.Cells[c]
		}
	}
}

func TestFig11Windows(t *testing.T) {
	tables, err := Fig11(tiny, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables (κ=3, κ=10), got %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no windows", tab.ID)
		}
	}
}

func TestRunRegistryAndCSV(t *testing.T) {
	out := t.TempDir()
	var buf bytes.Buffer
	if err := Run("ablation-pinning", tiny, &buf, out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ablation-pinning") {
		t.Error("missing header")
	}
	files, err := os.ReadDir(out)
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSVs written: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(out, files[0].Name()))
	if err != nil || len(data) == 0 {
		t.Error("empty CSV")
	}
	if err := Run("nope", tiny, &buf, ""); err == nil {
		t.Error("unknown figure: want error")
	}
}

func TestFigureIDsComplete(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != len(Registry) {
		t.Errorf("FigureIDs lists %d, registry has %d", len(ids), len(Registry))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
		if _, ok := Registry[id]; !ok {
			t.Errorf("id %s not in registry", id)
		}
	}
}

func TestPlainStore(t *testing.T) {
	dir := t.TempDir()
	dev, err := diskManager(dir, 1024)
	if err != nil {
		t.Fatal(err)
	}
	ps := newPlainStore(dev, 2)
	for i := 0; i < 5; i++ {
		batch := make([]int64, 100)
		for j := range batch {
			batch[j] = int64(i*100 + j)
		}
		load, _, io, err := ps.addBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if load <= 0 || io.SeqWrites == 0 {
			t.Error("plain store load did nothing")
		}
	}
	for lvl, ps := range ps.levels {
		if len(ps) > 2 {
			t.Errorf("level %d exceeds kappa", lvl)
		}
	}
}

// TestMoreFiguresSmoke exercises the remaining figure functions end to end
// at tiny scale — shapes are asserted by the dedicated tests above; here we
// check they run, produce non-empty tables, and respect the scale's axes.
func TestMoreFiguresSmoke(t *testing.T) {
	sc := tinyOneWorkload()
	root := t.TempDir()

	t5, err := Fig5(sc, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5) != 1 || len(t5[0].Rows) != len(sc.Kappas) {
		t.Errorf("fig5 shape: %d tables", len(t5))
	}
	t6, err := Fig6(sc, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6[0].Rows) != len(sc.MemFractions) {
		t.Errorf("fig6 rows = %d", len(t6[0].Rows))
	}
	t7, err := Fig7(sc, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7[0].Rows) != len(sc.Kappas) {
		t.Errorf("fig7 rows = %d", len(t7[0].Rows))
	}
	t9, err := Fig9(sc, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(t9[0].Rows) == 0 {
		t.Error("fig9 empty")
	}
	t10, err := Fig10(sc, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(t10[0].Rows) == 0 {
		t.Error("fig10 empty")
	}
	t12, err := Fig12(sc, root)
	if err != nil {
		t.Fatal(err)
	}
	// Fig12: error must broadly fall as history grows (compare first/last).
	first, last := t12[0].Rows[0].Cells[0], t12[0].Rows[len(t12[0].Rows)-1].Cells[0]
	if last > first*3 {
		t.Errorf("fig12: error grew with history: %g -> %g", first, last)
	}
	t13, err := Fig13(sc, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(t13[0].Rows) == 0 {
		t.Error("fig13 empty")
	}
	for _, id := range []string{"ablation-split", "ablation-iobudget", "baselines", "theory"} {
		var buf bytes.Buffer
		if err := Run(id, sc, &buf, ""); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

// TestClusterComparison smoke-tests the scatter-gather figure: every shard
// count must answer (the cluster rows over real sockets), distribution may
// cost latency but never accuracy — the merged answer's rank error stays
// within the composed 1.5·ε band at every shard count.
func TestClusterComparison(t *testing.T) {
	sc := tiny
	tables, err := ClusterComparison(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("want one table with 3 rows, got %+v", tables)
	}
	for _, r := range tables[0].Rows {
		if us := r.Cells[0]; us <= 0 {
			t.Errorf("shards=%g: QueryUs = %g, want > 0", r.X, us)
		}
		// Composed quick-query bound is 1.5·ε = 1.5% of N, plus slack for
		// the ±1 discretization at tiny N.
		if errPct := r.Cells[2]; errPct > 2.0 {
			t.Errorf("shards=%g: rank error %g%% exceeds composed bound", r.X, errPct)
		}
	}
}

// TestRunMemBackend drives a full figure through the registry with the
// memory backend and a block cache — the cmd/hsqbench --backend=mem path.
func TestRunMemBackend(t *testing.T) {
	sc := tiny
	sc.Backend = "mem"
	sc.CacheBlocks = 256
	var buf bytes.Buffer
	if err := Run("ablation-pinning", sc, &buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ablation-pinning") {
		t.Error("missing header")
	}
	// Fig6 exercises the plainStore/pureStreamingUpdate path as well.
	if err := Run("6", sc, &buf, ""); err != nil {
		t.Fatal(err)
	}
}

// TestMaintenanceComparison sanity-checks the sync-vs-async maintenance
// table: two rows (one per mode), deferred installs only in async mode, and
// merges actually running there (κ=2 cascades).
func TestMaintenanceComparison(t *testing.T) {
	tables, err := MaintenanceComparison(tiny, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("want 1 table with 2 rows, got %+v", tables)
	}
	cols := tables[0].Columns
	idx := func(name string) int {
		for i, c := range cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %s missing from %v", name, cols)
		return -1
	}
	syncRow, asyncRow := tables[0].Rows[0], tables[0].Rows[1]
	if got := syncRow.Cells[idx("Installs")]; got != 0 {
		t.Errorf("sync installs = %v, want 0", got)
	}
	if got := asyncRow.Cells[idx("Installs")]; got <= 0 {
		t.Errorf("async installs = %v, want > 0", got)
	}
	if got := asyncRow.Cells[idx("Merges")]; got <= 0 {
		t.Errorf("async merges = %v, want > 0 (κ=2 must cascade)", got)
	}
}

// TestIngestComparison sanity-checks the remote-ingest transport table:
// three rows (HTTP/value, HTTP/batch, wire), positive throughput
// everywhere, and the wire protocol at least 10× the per-value HTTP
// baseline — the remote ingest subsystem's acceptance bar, held with a
// wide margin in practice.
func TestIngestComparison(t *testing.T) {
	tables, err := IngestComparison(tiny, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("want 1 table with 3 rows, got %+v", tables)
	}
	cols := tables[0].Columns
	idx := func(name string) int {
		for i, c := range cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %s missing from %v", name, cols)
		return -1
	}
	for x, row := range tables[0].Rows {
		if tput := row.Cells[idx("ValuesPerSec")]; tput <= 0 {
			t.Errorf("row %d throughput = %v, want > 0", x, tput)
		}
	}
	wire := tables[0].Rows[2]
	if speedup := wire.Cells[idx("Speedup")]; speedup < 10 {
		t.Errorf("wire speedup over per-value HTTP = %.1fx, want ≥ 10x", speedup)
	}
}

// TestColumnarComparison smoke-tests the raw-vs-columnar figure: the
// columnar run must never issue more random reads per query than raw (it
// reads strictly fewer, larger blocks and can skip some outright), and on
// this bisection-heavy setup header bounds must resolve at least one step.
func TestColumnarComparison(t *testing.T) {
	sc := tiny
	sc.Datasets = []string{"uniform"}
	tables, err := ColumnarComparison(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("want one populated table, got %+v", tables)
	}
	var sawSkip bool
	for _, r := range tables[0].Rows {
		rawReads, colReads, skips := r.Cells[3], r.Cells[4], r.Cells[5]
		if colReads > rawReads {
			t.Errorf("cache=%g: columnar reads %g > raw %g", r.X, colReads, rawReads)
		}
		if skips > 0 {
			sawSkip = true
		}
	}
	if !sawSkip {
		t.Error("no bisection step was resolved from block-header bounds")
	}
}

// TestCardinality smoke-tests the lazy-directory scaling figure and pins
// its acceptance bar: across a 1000× growth in registered streams, live
// heap stays within 1.5× of the first decade, the hydrated count stays at
// (or under) the budget rather than tracking the directory, and hot-stream
// observe latency does not degrade beyond noise.
func TestCardinality(t *testing.T) {
	tables, err := Cardinality(tiny, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("want one table with 4 decade rows, got %+v", tables)
	}
	rows := tables[0].Rows
	first, last := rows[0], rows[len(rows)-1]
	if growth := last.X / first.X; growth != 1000 {
		t.Errorf("registered streams grew %gx, want 1000x", growth)
	}
	// Column order: HydratedStreams, HeapAllocMB, HotObserveP99Us,
	// ColdTouchP99Ms, Evictions.
	for _, r := range rows {
		if r.Cells[0] > 40 {
			t.Errorf("x=%g: %g hydrated streams — resident set tracks the directory, not the budget", r.X, r.Cells[0])
		}
	}
	if ratio := last.Cells[1] / first.Cells[1]; ratio > 1.5 {
		t.Errorf("heap grew %.2fx (%.1f MB -> %.1f MB) across 1000x streams, want <= 1.5x",
			ratio, first.Cells[1], last.Cells[1])
	}
	// p99 Observe is noisy at test scale; "within noise" here means the
	// last decade is not an order of magnitude above the first.
	if first.Cells[2] > 0 && last.Cells[2] > 10*first.Cells[2] {
		t.Errorf("hot observe p99 grew %.0fus -> %.0fus across decades", first.Cells[2], last.Cells[2])
	}
	if last.Cells[4] == 0 {
		t.Error("no evictions despite pool exceeding the hydration budget")
	}
}

// TestQueryLayer asserts the query-layer figure's acceptance bar: the
// merged fleet query answers for strictly fewer backend random reads than
// N accurate per-stream polls (zero, in fact — it only merges summaries),
// and the subscription delivers at least one data-carrying push per mode
// run, also without backend reads.
func TestQueryLayer(t *testing.T) {
	tables, err := QueryLayer(tiny, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("want one table with 3 mode rows, got %+v", tables)
	}
	// Column order: Answers, WallMs, ValuesPerSec, RandReads.
	npoll, mergedQ, push := tables[0].Rows[0], tables[0].Rows[1], tables[0].Rows[2]
	if npoll.Cells[3] == 0 {
		t.Error("N accurate polls cost no backend reads; comparison is vacuous")
	}
	if mergedQ.Cells[3] != 0 {
		t.Errorf("merged query cost %g backend reads, want 0 (summary-only)", mergedQ.Cells[3])
	}
	if mergedQ.Cells[3] >= npoll.Cells[3] {
		t.Errorf("merged query reads %g not below N-poll reads %g", mergedQ.Cells[3], npoll.Cells[3])
	}
	for i, r := range tables[0].Rows {
		if r.Cells[0] <= 0 || r.Cells[2] <= 0 {
			t.Errorf("mode %d: answers %g / values-per-sec %g, want > 0", i, r.Cells[0], r.Cells[2])
		}
	}
	if push.Cells[3] != 0 {
		t.Errorf("push path cost %g backend reads, want 0", push.Cells[3])
	}
}

// TestQueryPerf asserts the tentpole's acceptance criteria on the
// queryperf figure: the banded 3-target Quantiles resolves with ≥2× fewer
// probes than three single-target calls, no workload is ever worse shared
// than single, and from round 2 on the repeated dashboard poll costs zero
// backend reads with every probe a memo hit.
func TestQueryPerf(t *testing.T) {
	tables, err := QueryPerf(tiny, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	multi, dash := tables[0], tables[1]

	// Table 1 cells: K, SingleProbes, SharedProbes, ProbeRatio,
	// SingleReads, SharedReads, ReadRatio. Row 0 is the banded workload.
	if len(multi.Rows) != 4 {
		t.Fatalf("%s: want 4 workload rows, got %d", multi.ID, len(multi.Rows))
	}
	if r := multi.Rows[0].Cells[3]; r < 2 {
		t.Errorf("banded 3-target probe ratio = %.2f, want ≥ 2×", r)
	}
	for i, row := range multi.Rows {
		if row.Cells[2] > row.Cells[1] {
			t.Errorf("%s row %d: shared sweep used %g probes vs %g single — must never be worse",
				multi.ID, i, row.Cells[2], row.Cells[1])
		}
	}

	// Table 2 cells: Probes, RandReads, CacheHits, MemoHits per round.
	if len(dash.Rows) < 2 {
		t.Fatalf("%s: want ≥2 rounds, got %d", dash.ID, len(dash.Rows))
	}
	if dash.Rows[0].Cells[1] == 0 {
		t.Errorf("%s round 1 did no backend reads; memo claim is vacuous", dash.ID)
	}
	for _, row := range dash.Rows[1:] {
		if row.Cells[1] != 0 {
			t.Errorf("%s round %g: %g backend reads, want 0 (all memo)", dash.ID, row.X, row.Cells[1])
		}
		if row.Cells[3] != row.Cells[0] || row.Cells[0] == 0 {
			t.Errorf("%s round %g: %g memo hits over %g probes, want every probe memoized",
				dash.ID, row.X, row.Cells[3], row.Cells[0])
		}
	}
}
