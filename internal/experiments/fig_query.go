package experiments

import (
	"fmt"
)

// Fig9 reproduces "Query runtime and disk accesses vs memory" (Figures
// 9a-9d) at κ=10: accurate-query latency and block reads for our algorithm
// next to pure-streaming query latency. The paper's findings: our query
// time is only slightly above pure streaming, disk accesses decrease
// slightly with more memory, and runtime grows with memory because the
// in-memory summaries get bigger.
func Fig9(sc Scale, root string) ([]*Table, error) {
	const kappa = 10
	budgets := sc.MemBudgets()
	var tables []*Table
	for wi, wl := range sc.workloads() {
		t := &Table{
			ID:     fmt.Sprintf("fig9%c-%s", 'a'+wi, wl),
			Title:  fmt.Sprintf("Query runtime & disk accesses vs memory, %s, κ=%d", wl, kappa),
			XLabel: "memory_bytes",
			Columns: []string{
				"Ours_ms", "GK_ms", "QDigest_ms", "Ours_DiskAccess",
			},
		}
		ds, err := makeDataset(wl, int64(6000+wi), sc)
		if err != nil {
			return nil, err
		}
		for _, budget := range budgets {
			eps, err := planEps(budget, sc, kappa)
			if err != nil {
				return nil, err
			}
			run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
			if err != nil {
				return nil, err
			}
			// Median over several queries at different φ to smooth noise.
			var times, reads []float64
			for _, phi := range []float64{0.25, 0.5, 0.75, 0.9, 0.95} {
				_, qs, err := run.queryAccurate(phi)
				if err != nil {
					run.Close()
					return nil, err
				}
				times = append(times, qs.Elapsed.Seconds()*1000)
				reads = append(reads, float64(qs.RandReads))
			}
			run.Close()

			gkRes, err := runGKBaseline(ds, budget, sc.TotalElements())
			if err != nil {
				return nil, err
			}
			qdRes, err := runQDigestBaseline(ds, budget)
			if err != nil {
				return nil, err
			}
			t.AddRow(float64(budget), median(times),
				gkRes.queryTime.Seconds()*1000, qdRes.queryTime.Seconds()*1000,
				median(reads))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig10 reproduces "Query runtime and disk accesses vs κ" (Figures 10a-10d)
// at a fixed memory budget. The paper's finding: both grow with κ, because
// more partitions per level means a smaller summary per partition and more
// binary-search I/O per partition.
func Fig10(sc Scale, root string) ([]*Table, error) {
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	var tables []*Table
	for wi, wl := range sc.workloads() {
		t := &Table{
			ID:      fmt.Sprintf("fig10%c-%s", 'a'+wi, wl),
			Title:   fmt.Sprintf("Query runtime & disk accesses vs κ, %s, memory=%dB", wl, budget),
			XLabel:  "kappa",
			Columns: []string{"Ours_ms", "Ours_DiskAccess"},
		}
		ds, err := makeDataset(wl, int64(7000+wi), sc)
		if err != nil {
			return nil, err
		}
		for _, kappa := range sc.Kappas {
			eps, err := planEps(budget, sc, kappa)
			if err != nil {
				return nil, err
			}
			run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
			if err != nil {
				return nil, err
			}
			var times, reads []float64
			for _, phi := range []float64{0.25, 0.5, 0.75, 0.9, 0.95} {
				_, qs, err := run.queryAccurate(phi)
				if err != nil {
					run.Close()
					return nil, err
				}
				times = append(times, qs.Elapsed.Seconds()*1000)
				reads = append(reads, float64(qs.RandReads))
			}
			run.Close()
			t.AddRow(float64(kappa), median(times), median(reads))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig11 reproduces "Query cost vs window size" (Figures 11a-11b) on the
// Normal dataset for κ ∈ {3, 10}: which partition-aligned windows exist and
// what a windowed accurate query costs. The paper's findings: larger κ
// offers more window choices, and cost grows with window size.
func Fig11(sc Scale, root string) ([]*Table, error) {
	budget := sc.MemBudgets()[len(sc.MemBudgets())/2]
	var tables []*Table
	for _, kappa := range []int{3, 10} {
		t := &Table{
			ID:      fmt.Sprintf("fig11-kappa%d-normal", kappa),
			Title:   fmt.Sprintf("Windowed query cost vs window size, normal, κ=%d, memory=%dB", kappa, budget),
			XLabel:  "window_steps",
			Columns: []string{"Query_ms", "DiskAccess"},
		}
		ds, err := makeDataset("normal", int64(8000+kappa), sc)
		if err != nil {
			return nil, err
		}
		eps, err := planEps(budget, sc, kappa)
		if err != nil {
			return nil, err
		}
		run, err := newHybridRun(ds, sc.hybridCfg(eps, kappa, true), root)
		if err != nil {
			return nil, err
		}
		for _, w := range run.eng.AvailableWindows() {
			before := run.eng.DiskStats()
			_, qs, err := run.eng.WindowQuantile(QueryPhi, w)
			if err != nil {
				run.Close()
				return nil, err
			}
			delta := run.eng.DiskStats().Sub(before)
			t.AddRow(float64(w), qs.Elapsed.Seconds()*1000, float64(delta.RandReads))
		}
		run.Close()
		tables = append(tables, t)
	}
	return tables, nil
}
