package partition

import (
	"fmt"
	"slices"
)

// ChronologicalEntries returns the version's (partition, summary) pairs
// ordered from oldest to newest by covered time steps. Partitions cover
// disjoint step ranges, so StartStep orders them totally.
func (v *Version) ChronologicalEntries() []*Summary {
	out := slices.Clone(v.entries)
	slices.SortFunc(out, func(a, b *Summary) int {
		return a.Part.StartStep - b.Part.StartStep
	})
	return out
}

// AvailableWindows returns the window sizes (in time steps, counting only
// installed historical steps) over which a query can be answered exactly on
// partition boundaries — the paper's partition-aligned windows (Figure 11).
// The sizes are cumulative step counts of partitions taken newest-first, in
// increasing order. A window additionally always includes the current
// stream (and any sealed-but-uninstalled steps, which the engine layers on
// top).
func (v *Version) AvailableWindows() []int {
	chron := v.ChronologicalEntries()
	var out []int
	cum := 0
	for i := len(chron) - 1; i >= 0; i-- {
		cum += chron[i].Part.Steps()
		out = append(out, cum)
	}
	return out
}

// WindowEntries returns the summaries whose partitions exactly cover the
// most recent `steps` installed time steps. It returns an error if the
// requested window does not align with partition boundaries; callers should
// pick from AvailableWindows.
func (v *Version) WindowEntries(steps int) ([]*Summary, error) {
	if steps <= 0 {
		return nil, nil
	}
	chron := v.ChronologicalEntries()
	var out []*Summary
	cum := 0
	for i := len(chron) - 1; i >= 0; i-- {
		out = append(out, chron[i])
		cum += chron[i].Part.Steps()
		if cum == steps {
			return out, nil
		}
		if cum > steps {
			break
		}
	}
	return nil, fmt.Errorf("partition: window of %d steps does not align with partition boundaries (available: %v)",
		steps, v.AvailableWindows())
}

// Boundaries returns the step numbers at which the version's partition set
// can be cut exactly: the EndStep of every partition, in increasing order
// (plus 0, the empty prefix). Any step range whose two ends both appear
// here is answerable exactly from whole partitions; StepRangeEntries
// enforces this and reports the list in its error.
func (v *Version) Boundaries() []int {
	chron := v.ChronologicalEntries()
	out := make([]int, 0, len(chron)+1)
	out = append(out, 0)
	for _, e := range chron {
		out = append(out, e.Part.EndStep)
	}
	return out
}

// StepRangeEntries returns the summaries whose partitions exactly cover the
// time steps in (from, to] — from exclusive, to inclusive. It generalizes
// WindowEntries (a suffix range ending at the newest installed step) to the
// prefix and mid ranges the query layer's AsOfStep time-travel and shifted
// windows select: partitions tile the installed steps contiguously, so the
// range is answerable exactly iff both ends land on partition boundaries.
// Otherwise an error lists the available Boundaries; background merges
// coarsen them over time, which is the retention caveat on AsOfStep — old
// cut points disappear as their partitions merge.
func (v *Version) StepRangeEntries(from, to int) ([]*Summary, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("partition: invalid step range (%d, %d]", from, to)
	}
	if to == from {
		return nil, nil
	}
	var out []*Summary
	for _, e := range v.ChronologicalEntries() {
		p := e.Part
		if p.EndStep <= from || p.StartStep > to {
			continue
		}
		if p.StartStep <= from || p.EndStep > to {
			return nil, fmt.Errorf("partition: step range (%d, %d] does not align with partition boundaries (available: %v)",
				from, to, v.Boundaries())
		}
		out = append(out, e)
	}
	return out, nil
}

// WindowCount returns the number of historical elements inside the aligned
// window of the given size.
func (v *Version) WindowCount(steps int) (int64, error) {
	ents, err := v.WindowEntries(steps)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, e := range ents {
		n += e.Part.Count
	}
	return n, nil
}

// ChronologicalEntries returns the current version's entries oldest-first.
func (s *Store) ChronologicalEntries() []*Summary {
	v := s.Pin()
	defer v.Release()
	return v.ChronologicalEntries()
}

// AvailableWindows returns the current version's partition-aligned windows.
func (s *Store) AvailableWindows() []int {
	v := s.Pin()
	defer v.Release()
	return v.AvailableWindows()
}

// WindowEntries returns the current version's summaries covering the most
// recent `steps` installed time steps.
func (s *Store) WindowEntries(steps int) ([]*Summary, error) {
	v := s.Pin()
	defer v.Release()
	return v.WindowEntries(steps)
}

// WindowCount returns the element count of the aligned window in the
// current version.
func (s *Store) WindowCount(steps int) (int64, error) {
	v := s.Pin()
	defer v.Release()
	return v.WindowCount(steps)
}
