package partition

import (
	"fmt"
	"reflect"
	"testing"
)

// stepStore builds a store with `steps` installed time steps of `per`
// elements each and returns a pinned version. Kappa controls merging:
// 100 keeps every step its own partition, 2 coarsens aggressively.
func stepStore(t *testing.T, kappa, steps, per int) *Version {
	t.Helper()
	dev := newDev(t)
	s, err := NewStore(dev, Config{Kappa: kappa, Eps1: 0.1, SortMemElements: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= steps; step++ {
		if _, err := s.AddBatch(seqBatch(int64(step)*1000, per), step); err != nil {
			t.Fatal(err)
		}
	}
	v := s.Pin()
	t.Cleanup(v.Release)
	return v
}

func TestStepRangeEntries(t *testing.T) {
	v := stepStore(t, 100, 4, 10)
	if got, want := v.Boundaries(), []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Boundaries = %v, want %v", got, want)
	}

	cases := []struct {
		from, to  int
		wantSteps [][2]int // per returned entry: (StartStep, EndStep)
	}{
		{0, 4, [][2]int{{1, 1}, {2, 2}, {3, 3}, {4, 4}}}, // full history
		{1, 3, [][2]int{{2, 2}, {3, 3}}},                 // mid range
		{0, 2, [][2]int{{1, 1}, {2, 2}}},                 // prefix (as-of)
		{3, 4, [][2]int{{4, 4}}},                         // suffix (window)
		{2, 2, nil},                                      // empty range
		{0, 0, nil},
	}
	for _, c := range cases {
		ents, err := v.StepRangeEntries(c.from, c.to)
		if err != nil {
			t.Fatalf("(%d, %d]: %v", c.from, c.to, err)
		}
		var got [][2]int
		for _, e := range ents {
			got = append(got, [2]int{e.Part.StartStep, e.Part.EndStep})
			if e.Part.Count != 10 {
				t.Fatalf("(%d, %d]: partition count %d, want 10", c.from, c.to, e.Part.Count)
			}
		}
		if !reflect.DeepEqual(got, c.wantSteps) {
			t.Fatalf("(%d, %d]: entries %v, want %v", c.from, c.to, got, c.wantSteps)
		}
	}

	for _, bad := range [][2]int{{-1, 2}, {3, 1}} {
		if _, err := v.StepRangeEntries(bad[0], bad[1]); err == nil {
			t.Fatalf("(%d, %d] accepted", bad[0], bad[1])
		}
	}
}

// TestStepRangeEntriesAlignment pins the retention caveat: once merges
// coarsen partitions, cut points inside a merged partition are refused
// with the surviving boundaries listed.
func TestStepRangeEntriesAlignment(t *testing.T) {
	// κ=2 merges aggressively: after 5 steps some step boundaries have
	// been absorbed into multi-step partitions.
	const steps = 5
	v := stepStore(t, 2, steps, 10)
	bounds := v.Boundaries()
	if len(bounds) >= steps+1 {
		t.Fatalf("Boundaries = %v: no merge happened, test is vacuous", bounds)
	}
	onBoundary := make(map[int]bool, len(bounds))
	for _, b := range bounds {
		onBoundary[b] = true
	}
	if !onBoundary[0] || !onBoundary[steps] {
		t.Fatalf("Boundaries = %v missing the endpoints", bounds)
	}

	// Any range between surviving boundaries is still answerable exactly,
	// covering exactly that many steps' worth of elements.
	for i, from := range bounds {
		for _, to := range bounds[i:] {
			ents, err := v.StepRangeEntries(from, to)
			if err != nil {
				t.Fatalf("(%d, %d]: %v", from, to, err)
			}
			var n int64
			for _, e := range ents {
				n += e.Part.Count
			}
			if n != int64(to-from)*10 {
				t.Fatalf("(%d, %d]: %d elements, want %d", from, to, n, (to-from)*10)
			}
		}
	}

	// A cut point inside a merged partition is refused, listing the
	// surviving boundaries — the AsOfStep retention caveat.
	for cut := 1; cut < steps; cut++ {
		if onBoundary[cut] {
			continue
		}
		_, err := v.StepRangeEntries(0, cut)
		if err == nil {
			t.Fatalf("cut at absorbed step %d accepted (boundaries %v)", cut, bounds)
		}
		if !contains(err.Error(), "align") || !contains(err.Error(), fmt.Sprint(bounds)) {
			t.Fatalf("alignment error %q does not list boundaries %v", err, bounds)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
