package partition

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/disk"
	"repro/internal/extsort"
)

// Parallel level merging — the paper's §4 future-work direction ("the
// on-disk index HD is updated using a set of sort and merge operations,
// which can potentially be parallelized"). The value domain is split into
// W ranges at split points drawn from the input partitions' summaries; each
// worker k-way merges its range (seeking each input to the range start, a
// few random reads) into a private run; the runs are then concatenated into
// the final partition while its summary is captured. Total I/O is one extra
// sequential pass over the data compared to the serial merge; wall-clock
// time drops by up to W on hardware with parallel read paths.

// splitPoints picks up to workers-1 values that divide the group's combined
// summaries roughly evenly. Duplicates collapse, so the effective worker
// count may be smaller.
func splitPoints(group []entry, workers int) []int64 {
	var all []int64
	for _, e := range group {
		all = append(all, e.sum.Values...)
	}
	slices.Sort(all)
	var splits []int64
	for i := 1; i < workers; i++ {
		idx := i * len(all) / workers
		if idx >= len(all) {
			idx = len(all) - 1
		}
		v := all[idx]
		if len(splits) == 0 || v > splits[len(splits)-1] {
			splits = append(splits, v)
		}
	}
	return splits
}

// rangeBoundaries returns, for one partition, the element index at which
// each range begins: pos[j] = number of elements < splits[j-1] (pos[0]=0,
// pos[len(splits)+1]=Count). Boundary search costs O(log blocks) random
// reads per split.
func rangeBoundaries(e entry, splits []int64) ([]int64, error) {
	pos := make([]int64, len(splits)+2)
	pos[len(pos)-1] = e.part.Count
	for j, sp := range splits {
		// # elements < sp == # elements ≤ sp-1.
		z := sp - 1
		if sp == math.MinInt64 {
			z = math.MinInt64
		}
		cur, err := NewCursor(e.sum, z, z, false)
		if err != nil {
			return nil, err
		}
		b, err := cur.Rank(z)
		cerr := cur.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
		pos[j+1] = b
	}
	// Boundaries must be monotone (splits are increasing).
	for j := 1; j < len(pos); j++ {
		if pos[j] < pos[j-1] {
			return nil, fmt.Errorf("partition: non-monotone range boundaries %v", pos)
		}
	}
	return pos, nil
}

// boundedSource yields at most remaining elements from a sequential reader.
type boundedSource struct {
	r         *disk.Reader
	remaining int64
}

func (b *boundedSource) Next() (int64, bool, error) {
	if b.remaining <= 0 {
		return 0, false, nil
	}
	v, ok, err := b.r.Next()
	if err != nil || !ok {
		return 0, false, err
	}
	b.remaining--
	return v, true, nil
}

// mergeRange merges elements [pos[i][j], pos[i][j+1]) of every input
// partition into the named run file.
func (s *Store) mergeRange(group []entry, bounds [][]int64, j int, name string) (err error) {
	readers := make([]*disk.Reader, 0, len(group))
	defer func() {
		for _, r := range readers {
			if cerr := r.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}()
	sources := make([]extsort.Source, 0, len(group))
	for i, e := range group {
		start, end := bounds[i][j], bounds[i][j+1]
		if start == end {
			continue
		}
		r, oerr := s.mdev.OpenSequential(e.part.name)
		if oerr != nil {
			return oerr
		}
		readers = append(readers, r)
		r.SetReadahead(disk.MergeReadahead)
		if serr := r.SeekElement(start); serr != nil {
			return serr
		}
		sources = append(sources, &boundedSource{r: r, remaining: end - start})
	}
	merger, err := extsort.NewMerger(sources...)
	if err != nil {
		return err
	}
	w, err := s.mdev.Create(name)
	if err != nil {
		return err
	}
	for {
		v, ok, nerr := merger.Next()
		if nerr != nil {
			w.Abort()
			return nerr
		}
		if !ok {
			break
		}
		if werr := w.Append(v); werr != nil {
			w.Abort()
			return werr
		}
	}
	return w.Close()
}

// mergeLevelParallel is the W-way-parallel variant of mergeLevel.
func (s *Store) mergeLevelParallel(lvl, workers int) error {
	group := s.levels[lvl]
	if len(group) == 0 {
		return nil
	}
	splits := splitPoints(group, workers)
	nRanges := len(splits) + 1

	bounds := make([][]int64, len(group))
	for i, e := range group {
		b, err := rangeBoundaries(e, splits)
		if err != nil {
			return err
		}
		bounds[i] = b
	}

	// Merge each range concurrently into a private run.
	id := s.allocID()
	runNames := make([]string, nRanges)
	errs := make([]error, nRanges)
	var wg sync.WaitGroup
	for j := 0; j < nRanges; j++ {
		runNames[j] = fmt.Sprintf("pmerge-%06d-r%d.tmp", id, j)
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			errs[j] = s.mergeRange(group, bounds, j, runNames[j])
		}(j)
	}
	wg.Wait()
	cleanupRuns := func() {
		for _, name := range runNames {
			if s.mdev.Exists(name) {
				s.mdev.Remove(name) //nolint:errcheck // cleanup
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			cleanupRuns()
			return err
		}
	}

	// Build the merged partition by concatenating the runs in range order,
	// capturing the summary in flight.
	var count int64
	startStep, endStep := group[0].part.StartStep, group[0].part.EndStep
	for _, e := range group {
		count += e.part.Count
		if e.part.StartStep < startStep {
			startStep = e.part.StartStep
		}
		if e.part.EndStep > endStep {
			endStep = e.part.EndStep
		}
	}
	merged := &Partition{
		ID:        id,
		Level:     lvl + 1,
		Count:     count,
		StartStep: startStep,
		EndStep:   endStep,
		dev:       s.dev,
		name:      fmt.Sprintf("part-%06d.dat", id),
	}
	cap := newCapture(count, s.cfg.Eps1, s.beta1)
	w, err := s.mdev.Create(merged.name)
	if err != nil {
		cleanupRuns()
		return err
	}
	var written int64
	prev := int64(math.MinInt64)
	for _, name := range runNames {
		r, err := s.mdev.OpenSequential(name)
		if err != nil {
			w.Abort()
			cleanupRuns()
			return err
		}
		r.SetReadahead(disk.MergeReadahead)
		for {
			v, ok, nerr := r.Next()
			if nerr != nil {
				r.Close() //nolint:errcheck
				w.Abort()
				cleanupRuns()
				return nerr
			}
			if !ok {
				break
			}
			if v < prev {
				r.Close() //nolint:errcheck
				w.Abort()
				cleanupRuns()
				return fmt.Errorf("partition: parallel merge produced out-of-order output")
			}
			prev = v
			cap.feed(v)
			written++
			if werr := w.Append(v); werr != nil {
				r.Close() //nolint:errcheck
				w.Abort()
				cleanupRuns()
				return werr
			}
		}
		if err := r.Close(); err != nil {
			w.Abort()
			cleanupRuns()
			return err
		}
	}
	cleanupRuns()
	if written != count {
		w.Abort()
		return fmt.Errorf("partition: parallel merge wrote %d elements, expected %d", written, count)
	}
	if err := w.Close(); err != nil {
		return err
	}
	sum, err := cap.summary(merged)
	if err != nil {
		return err
	}
	// Retire the inputs; physically removed once the next manifest commit
	// stops referencing them and no pinned version can still read them.
	s.retireGroupAndInstall(lvl, group, merged, sum)
	return nil
}
