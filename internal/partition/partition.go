// Package partition implements the paper's historical data structures: the
// on-disk leveled store HD (sorted partitions with merge threshold κ,
// Section 2.1 / Algorithm 3) and the in-memory summary HS (β₁ elements per
// partition at exactly known ranks, Algorithm 2), together with the
// query-time cursors that binary-search partitions at block granularity
// (Algorithm 8) and the window bookkeeping for partition-aligned windowed
// queries (Section 2.4, "Queries Over Windows").
package partition

import (
	"fmt"

	"repro/internal/disk"
)

// Partition is one immutable sorted run on disk, covering a contiguous range
// of time steps.
type Partition struct {
	// ID is unique within a Store and determines the file name.
	ID int64
	// Level is the partition's level in HD; level 0 holds single batches.
	Level int
	// Count is the number of elements.
	Count int64
	// StartStep and EndStep are the inclusive time-step range covered.
	StartStep, EndStep int

	dev  *disk.Manager
	name string
}

// Name returns the partition's file name on the device.
func (p *Partition) Name() string { return p.name }

// Steps returns the number of time steps the partition covers.
func (p *Partition) Steps() int { return p.EndStep - p.StartStep + 1 }

// Blocks returns the number of disk blocks occupied.
func (p *Partition) Blocks() int64 {
	per := int64(p.dev.ElementsPerBlock())
	return (p.Count + per - 1) / per
}

// OpenRandom opens the partition for random block reads.
func (p *Partition) OpenRandom() (*disk.RandomReader, error) {
	return p.dev.OpenRandom(p.name)
}

// OpenSequential opens the partition for a sequential scan.
func (p *Partition) OpenSequential() (*disk.Reader, error) {
	return p.dev.OpenSequential(p.name)
}

// remove deletes the partition's file.
func (p *Partition) remove() error { return p.dev.Remove(p.name) }

func (p *Partition) String() string {
	return fmt.Sprintf("P%d(level=%d steps=[%d,%d] count=%d)", p.ID, p.Level, p.StartStep, p.EndStep, p.Count)
}
