package partition

import "fmt"

// Summary is the in-memory summary HSᵢ of one partition (Algorithm 2):
// β₁ elements whose ranks within the partition are known exactly. Values[0]
// is the partition minimum; Values[i] for i ≥ 1 is the element at rank
// ⌈i·ε₁·η⌉ (position i·ε₁·η − 1 in the zero-based sorted order), clamped to
// the last element. Pos records each value's zero-based position so queries
// can jump straight to the right part of the file, exactly as the paper's
// summaries carry "a pointer to the on-disk address".
type Summary struct {
	Part   *Partition
	Values []int64
	Pos    []int64
}

// MemoryBytes is the footprint of the summary: 16 bytes per entry (value +
// position).
func (s *Summary) MemoryBytes() int64 { return int64(len(s.Values)) * 16 }

// summaryPositions returns the β₁ capture positions for a partition of size
// eta under parameter eps1 (the zero-based indexes of Algorithm 2's chosen
// elements). Positions are non-decreasing; the first is always 0.
func summaryPositions(eta int64, eps1 float64, beta1 int) []int64 {
	if eta <= 0 {
		return nil
	}
	pos := make([]int64, 0, beta1)
	pos = append(pos, 0)
	for i := 1; i < beta1; i++ {
		p := int64(float64(i)*eps1*float64(eta)) - 1
		if p < 0 {
			p = 0
		}
		if p > eta-1 {
			p = eta - 1
		}
		if p < pos[len(pos)-1] {
			p = pos[len(pos)-1]
		}
		pos = append(pos, p)
	}
	return pos
}

// capture incrementally extracts a Summary while a sorted partition streams
// past (during batch sorting or partition merging), so summary construction
// costs zero additional disk accesses.
type capture struct {
	positions []int64
	values    []int64
	next      int
	idx       int64
}

// newCapture prepares a capture for a partition of known size eta.
func newCapture(eta int64, eps1 float64, beta1 int) *capture {
	pos := summaryPositions(eta, eps1, beta1)
	return &capture{positions: pos, values: make([]int64, len(pos))}
}

// feed observes the next element of the sorted stream.
func (c *capture) feed(v int64) {
	for c.next < len(c.positions) && c.positions[c.next] == c.idx {
		c.values[c.next] = v
		c.next++
	}
	c.idx++
}

// summary finalizes the capture for partition p. It returns an error if the
// stream was shorter than announced (positions not all filled).
func (c *capture) summary(p *Partition) (*Summary, error) {
	if c.next != len(c.positions) {
		return nil, fmt.Errorf("partition: summary capture incomplete: %d/%d positions filled after %d elements",
			c.next, len(c.positions), c.idx)
	}
	return &Summary{Part: p, Values: c.values, Pos: c.positions}, nil
}

// CountLE returns the number of summary entries with value ≤ x — the α_P of
// the paper's L/U bound computation.
func (s *Summary) CountLE(x int64) int {
	// Values are sorted; binary search for first > x.
	lo, hi := 0, len(s.Values)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Values[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Bracket returns a closed index bracket [lo, hi] guaranteed to contain
// boundary(z) = the number of partition elements ≤ z, for every z in [u, v].
// It is derived from the summary's exactly-ranked elements: any summary
// value ≤ u pushes the boundary right of its position; any summary value > v
// caps the boundary at its position. This is the l/p seeding of Algorithm 8.
func (s *Summary) Bracket(u, v int64) (lo, hi int64) {
	lo, hi = 0, s.Part.Count
	// Largest summary entry with value <= u.
	i := s.CountLE(u) - 1
	if i >= 0 {
		lo = s.Pos[i] + 1
	}
	// Smallest summary entry with value > v.
	j := s.CountLE(v)
	if j < len(s.Values) {
		hi = s.Pos[j]
	}
	if lo > hi {
		// Can happen when duplicates collapse positions; the boundary is
		// then pinned exactly.
		lo = hi
	}
	return lo, hi
}
