package partition

import (
	"encoding/json"
	"fmt"
	"path"
	"slices"
	"strings"

	"repro/internal/disk"
)

// manifestVersion guards against loading manifests from incompatible builds.
// Version 1 gained the optional "pending" section with the seal/install
// split; manifests without it load as fully-installed stores.
const manifestVersion = 1

// Manifest is the durable description of a Store: enough to reopen the
// warehouse after a restart. Summaries are not persisted — they are rebuilt
// with one sequential scan per partition on load, which is the same I/O
// class as the merge that produced the partition.
type Manifest struct {
	Version int `json:"version"`
	// Namespace is the logical stream this store belongs to ("" for
	// single-stream stores). Checked against Config.Namespace on load.
	Namespace string          `json:"namespace,omitempty"`
	Kappa     int             `json:"kappa"`
	Eps1      float64         `json:"eps1"`
	NextID    int64           `json:"next_id"`
	Steps     int             `json:"steps"`
	Parts     []ManifestEntry `json:"partitions"`
	// Pending lists time steps that were sealed (their raw spill is durable)
	// but not yet installed as partitions when the manifest was written, in
	// step order. A reopened store re-installs them from their spills.
	Pending []SealedBatch `json:"pending,omitempty"`
}

// ManifestEntry describes one partition.
type ManifestEntry struct {
	ID        int64  `json:"id"`
	Level     int    `json:"level"`
	Count     int64  `json:"count"`
	StartStep int    `json:"start_step"`
	EndStep   int    `json:"end_step"`
	Name      string `json:"name"`
}

// manifestSnapshotLocked builds the manifest from the published state.
// Caller holds vmu. Sealed batches whose spill has not succeeded are not
// durable, so they — and every later step, to keep the durable history a
// prefix — are omitted and Steps is truncated accordingly; Commit repairs
// missing spills before taking the snapshot, so this only matters when a
// spill repair itself failed.
func (s *Store) manifestSnapshotLocked() (Manifest, int64) {
	m := Manifest{
		Version:   manifestVersion,
		Namespace: s.cfg.Namespace,
		Kappa:     s.cfg.Kappa,
		Eps1:      s.cfg.Eps1,
		NextID:    s.nextID,
		Steps:     s.cur.installed,
	}
	for _, e := range s.cur.entries {
		m.Parts = append(m.Parts, ManifestEntry{
			ID:        e.Part.ID,
			Level:     e.Part.Level,
			Count:     e.Part.Count,
			StartStep: e.Part.StartStep,
			EndStep:   e.Part.EndStep,
			Name:      e.Part.name,
		})
	}
	for _, sb := range s.pending {
		if sb.Name == "" {
			break
		}
		m.Pending = append(m.Pending, SealedBatch{
			ID: sb.ID, Name: sb.Name, Count: sb.Count, Step: sb.Step,
		})
		m.Steps++
	}
	return m, s.cur.seq
}

// SaveManifest writes the store's manifest atomically to the named metadata
// file on the device's backend, from a consistent snapshot of the published
// state.
func (s *Store) SaveManifest(name string) error {
	s.vmu.Lock()
	m, _ := s.manifestSnapshotLocked()
	s.vmu.Unlock()
	return s.writeManifest(name, m)
}

// writeManifest serializes and atomically writes one manifest snapshot.
func (s *Store) writeManifest(name string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("partition: marshal manifest: %w", err)
	}
	if err := s.dev.WriteMeta(name, data); err != nil {
		return fmt.Errorf("partition: write manifest: %w", err)
	}
	return nil
}

// ParseManifest decodes a manifest previously written by SaveManifest,
// validating its version. Callers inspecting on-disk state directly (the
// crash harness, tooling) share the store's own decoding rules.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("partition: parse manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("partition: manifest version %d, want %d", m.Version, manifestVersion)
	}
	return &m, nil
}

// tempFilePatterns matches the transient files an install creates and a
// crash can strand: raw batch spills, external-sort and parallel-merge
// temporaries, and interrupted metadata temp files. Any match is removable
// debris once no install is in flight — except raw spills referenced by the
// manifest's pending section, which are the durable form of sealed steps.
var tempFilePatterns = []string{
	"batch-raw-*.dat",
	"sort-*",
	"extsort-run*",
	"pmerge-*",
	"*.tmp",
}

// TempFilePatterns returns the patterns of transient install files, for
// harnesses asserting that recovery leaves none behind. Partition files
// (part-*.dat) are deliberately excluded: whether one is debris depends on
// whether a manifest references it. The same caveat applies to raw spills
// (batch-raw-*.dat) listed in a manifest's pending section.
func TempFilePatterns() []string {
	return slices.Clone(tempFilePatterns)
}

// orphanPatterns is what CollectOrphans removes: the transient files plus
// partitions written but never committed. Committed partitions share the
// part-*.dat pattern, so the collector only removes matches that no
// manifest entry references.
var orphanPatterns = append([]string{"part-*.dat"}, tempFilePatterns...)

// CollectOrphans removes files in the device view that a crashed or failed
// install left behind: files matching the store's temporary/partition name
// patterns that are not in keep. Names containing a path separator (nested
// namespaces) are never touched. It reports the names it removed.
func CollectOrphans(dev *disk.Manager, keep map[string]bool) ([]string, error) {
	names, err := dev.List("")
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, name := range names {
		if strings.Contains(name, "/") || keep[name] {
			continue
		}
		matched := false
		for _, pat := range orphanPatterns {
			if ok, _ := path.Match(pat, name); ok {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		if err := dev.Remove(name); err != nil {
			return removed, fmt.Errorf("partition: collect orphan %s: %w", name, err)
		}
		removed = append(removed, name)
	}
	return removed, nil
}

// LoadStore reopens a Store from a manifest, rebuilding each partition's
// in-memory summary with a sequential scan. Files from half-finished
// installs — partitions written but never committed, raw batches not listed
// as pending, sort temporaries — are detected and garbage-collected, so a
// crash between data writes and the manifest commit never poisons a reopen.
// Sealed-but-uninstalled steps listed in the manifest's pending section are
// re-queued; callers should run maintenance (or install synchronously) to
// fold them back into partitions before serving queries.
func LoadStore(dev *disk.Manager, manifestName string, cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	data, err := dev.ReadMeta(manifestName)
	if err != nil {
		return nil, fmt.Errorf("partition: read manifest: %w", err)
	}
	m, err := ParseManifest(data)
	if err != nil {
		return nil, err
	}
	if m.Namespace != cfg.Namespace {
		return nil, fmt.Errorf("partition: manifest namespace %q != config namespace %q", m.Namespace, cfg.Namespace)
	}
	if m.Kappa != cfg.Kappa {
		return nil, fmt.Errorf("partition: manifest kappa %d != config kappa %d", m.Kappa, cfg.Kappa)
	}
	s := &Store{dev: dev, mdev: dev.MaintTagged(), cfg: cfg, beta1: cfg.Beta1(), nextID: m.NextID, steps: m.Steps}
	for _, pe := range m.Parts {
		p := &Partition{
			ID:        pe.ID,
			Level:     pe.Level,
			Count:     pe.Count,
			StartStep: pe.StartStep,
			EndStep:   pe.EndStep,
			dev:       dev,
			name:      pe.Name,
		}
		sum, err := rebuildSummary(p, cfg.Eps1, s.beta1)
		if err != nil {
			return nil, err
		}
		for len(s.levels) <= pe.Level {
			s.levels = append(s.levels, nil)
		}
		s.levels[pe.Level] = append(s.levels[pe.Level], entry{p, sum})
	}
	for lvl := range s.levels {
		slices.SortFunc(s.levels[lvl], func(a, b entry) int {
			return a.part.StartStep - b.part.StartStep
		})
	}
	for _, sb := range m.Pending {
		if sb.Name == "" {
			return nil, fmt.Errorf("partition: manifest pending step %d has no spill", sb.Step)
		}
		s.pending = append(s.pending, &SealedBatch{ID: sb.ID, Name: sb.Name, Count: sb.Count, Step: sb.Step})
	}
	// Publish the recovered state as the initial version; the manifest we
	// just read is by definition committed.
	s.cur = &Version{store: s, seq: 0, refs: 1}
	s.live = []*Version{s.cur}
	v := s.publish(false)
	s.committedSeq = v.seq

	keep := make(map[string]bool, len(m.Parts)+len(m.Pending)+1)
	keep[manifestName] = true
	for _, pe := range m.Parts {
		keep[pe.Name] = true
	}
	for _, sb := range m.Pending {
		keep[sb.Name] = true
	}
	if _, err := CollectOrphans(dev, keep); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuildSummary reconstructs HSᵢ for a partition with one sequential scan.
func rebuildSummary(p *Partition, eps1 float64, beta1 int) (*Summary, error) {
	r, err := p.OpenSequential()
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if r.Count() != p.Count {
		return nil, fmt.Errorf("partition: %s has %d elements on disk, manifest says %d", p.name, r.Count(), p.Count)
	}
	cap := newCapture(p.Count, eps1, beta1)
	prev := int64(0)
	first := true
	for {
		v, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if !first && v < prev {
			return nil, fmt.Errorf("partition: %s is not sorted on disk", p.name)
		}
		prev, first = v, false
		cap.feed(v)
	}
	return cap.summary(p)
}
