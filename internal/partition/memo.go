package partition

import (
	"sync"
	"sync/atomic"
)

// ProbeMemo caches rank probes against one immutable Version. A probe value
// z fully determines the historical rank Σ_P boundary_P(z) over the
// version's partition set, and the version's partition files never change,
// so an entry is valid for as long as the version is alive — memo entries
// are never invalidated, they die with the version when the last pin drops.
// This makes the snapshot-version chain a natural cache key: a dashboard
// re-polling the same φ set against the same version replays its bisection
// entirely from the memo, with zero disk I/O.
//
// Besides the rank, an entry can record the on-disk predecessor (largest
// element ≤ z) and successor (smallest element > z) once a query computed
// them while snapping an accepted midpoint to a real element. With those
// sides present, even the final snap of a repeated query costs nothing.
//
// The memo is bounded: when full, an arbitrary entry is evicted (map
// iteration order — effectively random, which is a fine policy for a cache
// whose working set is a handful of bisection paths). All methods are safe
// for concurrent use; counters aggregate across versions via the store.
type ProbeMemo struct {
	mu      sync.Mutex
	cap     int
	entries map[int64]MemoEntry
	ctr     *memoCounters
}

// MemoEntry is one memoized probe: the historical rank of the probe value,
// plus (once known) the on-disk predecessor/successor used to snap an
// accepted midpoint to a real element. PredKnown/SuccKnown report whether
// the side was ever computed; PredExists/SuccExists whether an element
// exists on that side (false means the snap fell through to the global
// extreme).
type MemoEntry struct {
	Rank       int64
	Pred       int64
	PredKnown  bool
	PredExists bool
	Succ       int64
	SuccKnown  bool
	SuccExists bool
}

// memoCounters aggregates memo traffic across every version of one store.
type memoCounters struct {
	hits, misses, stores, evictions atomic.Uint64
}

// newProbeMemo returns a memo bounded to capacity entries, or nil when the
// capacity is not positive (memoization disabled).
func newProbeMemo(capacity int, ctr *memoCounters) *ProbeMemo {
	if capacity <= 0 {
		return nil
	}
	return &ProbeMemo{cap: capacity, ctr: ctr}
}

// NewProbeMemo returns a standalone memo bounded to capacity entries, or
// nil when the capacity is not positive. Callers outside the store-version
// chain (tests, benchmarks, embedders querying a fixed partition set
// directly through internal/core) use this; the engine's memos come from
// the store so their traffic aggregates into MemoStats.
func NewProbeMemo(capacity int) *ProbeMemo {
	return newProbeMemo(capacity, &memoCounters{})
}

// Lookup returns the memoized entry for probe value z.
func (m *ProbeMemo) Lookup(z int64) (MemoEntry, bool) {
	m.mu.Lock()
	e, ok := m.entries[z]
	m.mu.Unlock()
	if ok {
		m.ctr.hits.Add(1)
	} else {
		m.ctr.misses.Add(1)
	}
	return e, ok
}

// StoreRank records the historical rank of probe value z (keeping any snap
// sides an existing entry already carries).
func (m *ProbeMemo) StoreRank(z, rank int64) {
	m.upsert(z, rank, func(e *MemoEntry) {})
}

// SetPred records the on-disk predecessor side for probe value z alongside
// its rank. exists=false records that no on-disk element is ≤ z.
func (m *ProbeMemo) SetPred(z, rank, pred int64, exists bool) {
	m.upsert(z, rank, func(e *MemoEntry) {
		e.Pred, e.PredKnown, e.PredExists = pred, true, exists
	})
}

// SetSucc records the on-disk successor side for probe value z alongside
// its rank. exists=false records that no on-disk element is > z.
func (m *ProbeMemo) SetSucc(z, rank, succ int64, exists bool) {
	m.upsert(z, rank, func(e *MemoEntry) {
		e.Succ, e.SuccKnown, e.SuccExists = succ, true, exists
	})
}

// upsert inserts or updates the entry for z, evicting an arbitrary other
// entry when the memo is at capacity.
func (m *ProbeMemo) upsert(z, rank int64, update func(*MemoEntry)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = make(map[int64]MemoEntry)
	}
	e, ok := m.entries[z]
	if !ok {
		if len(m.entries) >= m.cap {
			for k := range m.entries {
				delete(m.entries, k)
				m.ctr.evictions.Add(1)
				break
			}
		}
		e = MemoEntry{Rank: rank}
	}
	e.Rank = rank
	update(&e)
	m.entries[z] = e
	m.ctr.stores.Add(1)
}

// Len returns the number of live entries.
func (m *ProbeMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Cap returns the memo's entry bound.
func (m *ProbeMemo) Cap() int { return m.cap }

// MemoStats aggregates probe-memo traffic across every version of a store.
type MemoStats struct {
	// Hits and Misses count Lookup outcomes; a hit is a bisection probe
	// that cost no partition I/O at all.
	Hits, Misses uint64
	// Stores counts entry writes (rank records and snap-side upgrades);
	// Evictions counts entries dropped to make room.
	Stores, Evictions uint64
	// Entries is the live entry count of the current version's memo;
	// Capacity its bound. Both zero when memoization is disabled.
	Entries, Capacity int
}

// MemoStats reports cumulative probe-memo traffic for this store plus the
// current version's occupancy.
func (s *Store) MemoStats() MemoStats {
	st := MemoStats{
		Hits:      s.memoCtr.hits.Load(),
		Misses:    s.memoCtr.misses.Load(),
		Stores:    s.memoCtr.stores.Load(),
		Evictions: s.memoCtr.evictions.Load(),
	}
	s.vmu.Lock()
	m := s.cur.memo
	s.vmu.Unlock()
	if m != nil {
		st.Entries, st.Capacity = m.Len(), m.Cap()
	}
	return st
}

// newMemo builds the probe memo for a fresh version (nil when disabled).
func (s *Store) newMemo() *ProbeMemo {
	return newProbeMemo(s.cfg.ProbeMemoEntries, &s.memoCtr)
}
