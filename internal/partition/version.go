package partition

import "sync"

// Snapshot isolation for the historical store. The store's published state
// is a chain of immutable Version objects: each install or merge edits the
// private build state and then publishes a fresh Version (a copy-on-write
// snapshot of the partition set). Queries pin a Version with Pin, run
// entirely against it — its partition files are immutable on disk — and
// Release it when done, so they never contend with the engine write lock or
// observe a half-installed layout.
//
// File reclamation composes the pin discipline with the crash-consistency
// rule introduced with the commit protocol: a file superseded while building
// version S (a merged-away partition, a consumed raw spill) is physically
// removed only once BOTH hold:
//
//   - a manifest of some version ≥ S is durably committed, so no durable
//     manifest references the file (the crash rule), and
//   - every pinned version older than S has been released, so no in-flight
//     query can still read it (the snapshot rule).
//
// Until then the file sits on the retired list; a crash simply strands it as
// an orphan for LoadStore's collector.

// Version is one immutable snapshot of the store's published partition set
// plus the per-partition summaries. It is created by the store (publish) and
// handed to queries by Pin; all accessors are safe for concurrent use since
// the snapshot never mutates.
type Version struct {
	store *Store
	seq   int64
	// entries is the frozen (partition, summary) list, level-ascending and
	// chronological within each level — the same order Store.Entries always
	// returned.
	entries []*Summary
	total   int64
	// installed is the number of time steps covered by the partitions
	// (sealed-but-uninstalled steps are not part of any Version; the engine
	// layers them on top as stream pieces).
	installed int
	// refs is guarded by store.vmu. The store itself holds one ref on the
	// current version; each Pin adds one.
	refs int
	// memo caches rank probes against this version's immutable partition
	// set; nil when memoization is disabled. Entries never invalidate —
	// they die with the version (see ProbeMemo).
	memo *ProbeMemo
}

// Seq returns the version's monotonically increasing sequence number.
func (v *Version) Seq() int64 { return v.seq }

// Entries returns the snapshot's (partition, summary) pairs. The slice is
// shared and must not be mutated.
func (v *Version) Entries() []*Summary { return v.entries }

// Memo returns the version's rank-probe memo, valid for queries that probe
// exactly the version's full entry set; nil when memoization is disabled.
func (v *Version) Memo() *ProbeMemo { return v.memo }

// TotalCount returns the number of elements across the snapshot.
func (v *Version) TotalCount() int64 { return v.total }

// InstalledSteps returns the number of time steps the snapshot covers.
func (v *Version) InstalledSteps() int { return v.installed }

// PartitionCount returns the number of partitions in the snapshot.
func (v *Version) PartitionCount() int { return len(v.entries) }

// MemoryBytes returns the summary footprint of the snapshot.
func (v *Version) MemoryBytes() int64 {
	var b int64
	for _, s := range v.entries {
		b += s.MemoryBytes()
	}
	return b
}

// Release drops one pin. When the last pin on a superseded version drops,
// files retired since it was current become reclaimable (subject to the
// manifest-commit condition) and are physically removed — outside the
// version lock, so the pin fast path never waits on file deletion.
func (v *Version) Release() {
	s := v.store
	s.vmu.Lock()
	if v.refs <= 0 {
		s.vmu.Unlock()
		panic("partition: Version released more times than pinned")
	}
	v.refs--
	var reclaim []retiredFile
	if v.refs == 0 && v != s.cur {
		s.dropLiveLocked(v)
		reclaim = s.takeReclaimableLocked()
	}
	if s.pinCond != nil {
		s.pinCond.Broadcast()
	}
	s.vmu.Unlock()
	s.removeRetired(reclaim)
}

// DrainPins blocks until every query pin is released (only the store's own
// reference on the current version remains). Destroy and backend teardown
// call it after making new pins impossible, so no in-flight query ever
// reads a file they are about to delete.
func (s *Store) DrainPins() {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if s.pinCond == nil {
		s.pinCond = sync.NewCond(&s.vmu)
	}
	for len(s.live) > 1 || s.cur.refs > 1 {
		s.pinCond.Wait()
	}
}

// retiredFile is a file superseded while building version seq: it is
// referenced only by versions older than seq and by manifests committed
// before seq.
type retiredFile struct {
	name string
	seq  int64
}

// Pin returns the current version with its refcount raised. The caller must
// Release it exactly once.
func (s *Store) Pin() *Version {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	s.cur.refs++
	return s.cur
}

// CurrentVersion returns the current version's sequence number (for
// diagnostics and tests).
func (s *Store) CurrentVersion() int64 {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	return s.cur.seq
}

// LiveVersions returns how many versions are alive (current + pinned), for
// diagnostics and tests.
func (s *Store) LiveVersions() int {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	return len(s.live)
}

// publish snapshots the build state into a new immutable Version and makes
// it current. Files retired during this build edit are attached to the new
// sequence number; popPending additionally consumes the oldest sealed batch
// (whose data the edit just installed). Called only by the single build
// mutator.
func (s *Store) publish(popPending bool) *Version {
	var ents []*Summary
	var total int64
	for _, lvl := range s.levels {
		for _, e := range lvl {
			ents = append(ents, e.sum)
			total += e.part.Count
		}
	}
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if popPending && len(s.pending) > 0 {
		s.pending = s.pending[1:]
	}
	v := &Version{
		store:     s,
		seq:       s.cur.seq + 1,
		entries:   ents,
		total:     total,
		installed: s.steps - len(s.pending),
		refs:      1, // the store's own ref on the current version
		memo:      s.newMemo(),
	}
	for _, name := range s.buildRetired {
		s.retired = append(s.retired, retiredFile{name: name, seq: v.seq})
	}
	s.buildRetired = nil
	old := s.cur
	s.cur = v
	s.live = append(s.live, v)
	old.refs--
	if old.refs == 0 {
		s.dropLiveLocked(old)
	}
	return v
}

// dropLiveLocked removes a dead version from the live list. Caller holds vmu.
func (s *Store) dropLiveLocked(v *Version) {
	for i, lv := range s.live {
		if lv == v {
			s.live = append(s.live[:i], s.live[i+1:]...)
			return
		}
	}
}

// minLiveLocked returns the sequence number of the oldest live version.
// Caller holds vmu; the current version is always live.
func (s *Store) minLiveLocked() int64 {
	min := s.cur.seq
	for _, v := range s.live {
		if v.seq < min {
			min = v.seq
		}
	}
	return min
}

// takeReclaimableLocked removes from the retired list — and returns —
// every file no longer referenced by a durable manifest or a live version.
// Eligibility is monotone (pins on old versions only drain, committedSeq
// only grows), so the caller can perform the physical removals after
// dropping vmu without re-checking. Caller holds vmu.
func (s *Store) takeReclaimableLocked() []retiredFile {
	min := s.minLiveLocked()
	kept := s.retired[:0]
	var take []retiredFile
	for _, rf := range s.retired {
		if rf.seq <= s.committedSeq && rf.seq <= min {
			take = append(take, rf)
			continue
		}
		kept = append(kept, rf)
	}
	s.retired = kept
	return take
}

// removeRetired physically deletes reclaimed files, re-queuing any failed
// removal for the next reclaim (or, if the process dies first, for
// LoadStore's orphan collector). Runs without any store lock; concurrent
// reclaimers hold disjoint batches.
func (s *Store) removeRetired(files []retiredFile) {
	var failed []retiredFile
	for _, rf := range files {
		if err := s.dev.Remove(rf.name); err != nil && s.dev.Exists(rf.name) {
			failed = append(failed, rf) // retry at the next reclaim
		}
	}
	if len(failed) > 0 {
		s.vmu.Lock()
		s.retired = append(s.retired, failed...)
		s.vmu.Unlock()
	}
}
