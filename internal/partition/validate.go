package partition

import "fmt"

// Shared parameter validation — the single source of truth for the
// invariants both the public engine config (hsq.Config) and the store
// config re-check. Keeping the range checks here means the two layers
// cannot drift apart: the engine validates the user-facing ε and κ through
// the same predicates the store applies to its derived ε₁.

// ValidateEpsilon checks the approximation parameter ε ∈ (0,1).
func ValidateEpsilon(eps float64) error {
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("Epsilon must be in (0,1), got %g", eps)
	}
	return nil
}

// ValidateEps1 checks the derived historical parameter ε₁ ∈ (0,1).
func ValidateEps1(eps1 float64) error {
	if eps1 <= 0 || eps1 >= 1 {
		return fmt.Errorf("eps1 must be in (0,1), got %g", eps1)
	}
	return nil
}

// ValidateKappa checks the merge threshold κ ≥ 2.
func ValidateKappa(kappa int) error {
	if kappa < 2 {
		return fmt.Errorf("Kappa must be >= 2, got %d", kappa)
	}
	return nil
}
