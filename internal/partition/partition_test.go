package partition

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/disk"
)

func newDev(t *testing.T) *disk.Manager {
	t.Helper()
	m, err := disk.NewManager(t.TempDir(), 64) // 8 elements per block
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newStore(t *testing.T, dev *disk.Manager, kappa int, eps1 float64) *Store {
	t.Helper()
	s, err := NewStore(dev, Config{Kappa: kappa, Eps1: eps1, SortMemElements: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func readPartition(t *testing.T, p *Partition) []int64 {
	t.Helper()
	r, err := p.OpenSequential()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []int64
	for {
		v, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestConfigValidation(t *testing.T) {
	dev := newDev(t)
	if _, err := NewStore(dev, Config{Kappa: 1, Eps1: 0.1}); err == nil {
		t.Error("kappa=1: want error")
	}
	if _, err := NewStore(dev, Config{Kappa: 2, Eps1: 0}); err == nil {
		t.Error("eps1=0: want error")
	}
	if _, err := NewStore(dev, Config{Kappa: 2, Eps1: 1.5}); err == nil {
		t.Error("eps1>1: want error")
	}
}

func TestBeta1(t *testing.T) {
	// β₁ = ⌈1/ε₁ + 1⌉
	cases := []struct {
		eps1 float64
		want int
	}{{0.25, 5}, {0.5, 3}, {0.1, 11}, {0.125, 9}}
	for _, c := range cases {
		if got := (Config{Eps1: c.eps1}).Beta1(); got != c.want {
			t.Errorf("Beta1(%g) = %d, want %d", c.eps1, got, c.want)
		}
	}
}

func TestSummaryPositionsMatchPaperExample(t *testing.T) {
	// Figure 3: η=100, ε₁=1/4 → summary elements at ranks 1,25,50,75,100,
	// i.e. zero-based positions 0,24,49,74,99.
	pos := summaryPositions(100, 0.25, 5)
	want := []int64{0, 24, 49, 74, 99}
	if !slices.Equal(pos, want) {
		t.Errorf("positions = %v, want %v", pos, want)
	}
}

func TestSummaryPositionsTinyPartition(t *testing.T) {
	pos := summaryPositions(2, 0.25, 5)
	if len(pos) != 5 {
		t.Fatalf("len = %d", len(pos))
	}
	for _, p := range pos {
		if p < 0 || p > 1 {
			t.Errorf("position %d out of range", p)
		}
	}
	if !slices.IsSorted(pos) {
		t.Error("positions must be non-decreasing")
	}
	if pos[0] != 0 {
		t.Error("first position must be 0 (partition minimum)")
	}
}

func TestAddBatchSingle(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 3, 0.25)
	data := []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 10}
	bd, err := s.AddBatch(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Merges != 0 {
		t.Errorf("Merges = %d", bd.Merges)
	}
	if s.TotalCount() != 10 || s.Steps() != 1 || s.PartitionCount() != 1 {
		t.Errorf("store state: count=%d steps=%d parts=%d", s.TotalCount(), s.Steps(), s.PartitionCount())
	}
	sums := s.Entries()
	if len(sums) != 1 {
		t.Fatal("want one summary")
	}
	got := readPartition(t, sums[0].Part)
	want := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if !slices.Equal(got, want) {
		t.Errorf("partition = %v", got)
	}
	// Summary values must be the elements at the exact positions.
	for i, p := range sums[0].Pos {
		if sums[0].Values[i] != want[p] {
			t.Errorf("summary[%d] = %d, element at pos %d is %d", i, sums[0].Values[i], p, want[p])
		}
	}
}

func TestAddBatchEmpty(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 3, 0.25)
	if _, err := s.AddBatch(nil, 1); err == nil {
		t.Error("empty batch: want error")
	}
}

// TestMergeCascade replays the paper's Figure 2 (κ=2, 13 time steps) and
// checks the partition layout at the milestones the figure shows.
func TestMergeCascadeFigure2(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 2, 0.25)
	add := func(step int) {
		data := []int64{int64(step * 10), int64(step*10 + 1)}
		if _, err := s.AddBatch(data, step); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	levelCounts := func() []int {
		var out []int
		for _, lvl := range s.levels {
			out = append(out, len(lvl))
		}
		return out
	}

	for step := 1; step <= 2; step++ {
		add(step)
	}
	// "State after 2 timesteps": P1, P2 at level 0.
	if got := levelCounts(); !slices.Equal(got, []int{2}) {
		t.Errorf("after 2 steps: levels = %v", got)
	}

	add(3)
	// "State after 3 timesteps": merge into P1,3 at level 1.
	if got := levelCounts(); !slices.Equal(got, []int{0, 1}) {
		t.Errorf("after 3 steps: levels = %v", got)
	}
	if p := s.levels[1][0].part; p.StartStep != 1 || p.EndStep != 3 {
		t.Errorf("merged partition covers [%d,%d], want [1,3]", p.StartStep, p.EndStep)
	}

	for step := 4; step <= 8; step++ {
		add(step)
	}
	// "State after 8 timesteps": P1,3 and P4,6 at level 1; P7, P8 at level 0.
	if got := levelCounts(); !slices.Equal(got, []int{2, 2}) {
		t.Errorf("after 8 steps: levels = %v", got)
	}

	for step := 9; step <= 13; step++ {
		add(step)
	}
	// "State after 13 timesteps": P1,9 at level 2; P10,12 at level 1; P13 at
	// level 0.
	if got := levelCounts(); !slices.Equal(got, []int{1, 1, 1}) {
		t.Errorf("after 13 steps: levels = %v", got)
	}
	if p := s.levels[2][0].part; p.StartStep != 1 || p.EndStep != 9 {
		t.Errorf("level-2 partition covers [%d,%d], want [1,9]", p.StartStep, p.EndStep)
	}
	if p := s.levels[1][0].part; p.StartStep != 10 || p.EndStep != 12 {
		t.Errorf("level-1 partition covers [%d,%d], want [10,12]", p.StartStep, p.EndStep)
	}
	if s.TotalCount() != 26 {
		t.Errorf("TotalCount = %d, want 26", s.TotalCount())
	}
}

// TestInvariantMaxKappa checks invariant 3 of DESIGN.md over a long run.
func TestInvariantMaxKappa(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(31))
	for _, kappa := range []int{2, 3, 5} {
		s := newStore(t, dev, kappa, 0.2)
		var all []int64
		for step := 1; step <= 40; step++ {
			batch := make([]int64, 20)
			for i := range batch {
				batch[i] = rng.Int63n(1 << 20)
			}
			all = append(all, batch...)
			if _, err := s.AddBatch(batch, step); err != nil {
				t.Fatal(err)
			}
			for lvl, es := range s.levels {
				if len(es) > kappa {
					t.Fatalf("kappa=%d: level %d holds %d partitions", kappa, lvl, len(es))
				}
			}
		}
		// Multiset preservation: concatenation of all partitions sorted ==
		// all data sorted.
		var merged []int64
		for _, e := range s.Entries() {
			part := readPartition(t, e.Part)
			if !slices.IsSorted(part) {
				t.Fatal("partition not sorted")
			}
			merged = append(merged, part...)
		}
		slices.Sort(merged)
		slices.Sort(all)
		if !slices.Equal(merged, all) {
			t.Fatalf("kappa=%d: multiset not preserved", kappa)
		}
		if err := s.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExternalSortPath(t *testing.T) {
	dev := newDev(t)
	s, err := NewStore(dev, Config{Kappa: 3, Eps1: 0.1, SortMemElements: 16, SpillBatches: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	data := make([]int64, 500) // forces external sort (> 16)
	for i := range data {
		data[i] = rng.Int63n(1 << 30)
	}
	if _, err := s.AddBatch(data, 1); err != nil {
		t.Fatal(err)
	}
	got := readPartition(t, s.Entries()[0].Part)
	want := slices.Clone(data)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Error("external-sort partition incorrect")
	}
}

func TestSummaryExactRanks(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 3, 0.1)
	rng := rand.New(rand.NewSource(41))
	var all []int64
	for step := 1; step <= 10; step++ {
		batch := make([]int64, 100)
		for i := range batch {
			batch[i] = rng.Int63n(1 << 16)
		}
		all = append(all, batch...)
		if _, err := s.AddBatch(batch, step); err != nil {
			t.Fatal(err)
		}
	}
	_ = all
	for _, e := range s.Entries() {
		part := readPartition(t, e.Part)
		for i := range e.Values {
			if e.Values[i] != part[e.Pos[i]] {
				t.Fatalf("summary value %d at pos %d disagrees with partition element %d",
					e.Values[i], e.Pos[i], part[e.Pos[i]])
			}
		}
		if e.Values[0] != part[0] {
			t.Error("summary[0] must be the partition minimum")
		}
	}
}

func TestCountLE(t *testing.T) {
	s := &Summary{Values: []int64{1, 25, 50, 75, 100}, Pos: []int64{0, 24, 49, 74, 99}}
	cases := []struct {
		x    int64
		want int
	}{{0, 0}, {1, 1}, {24, 1}, {25, 2}, {100, 5}, {200, 5}}
	for _, c := range cases {
		if got := s.CountLE(c.x); got != c.want {
			t.Errorf("CountLE(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBracket(t *testing.T) {
	p := &Partition{Count: 100}
	s := &Summary{Part: p, Values: []int64{1, 25, 50, 75, 100}, Pos: []int64{0, 24, 49, 74, 99}}
	// u=30, v=60: largest value ≤ 30 is 25 at pos 24 → lo=25; smallest value
	// > 60 is 75 at pos 74 → hi=74.
	lo, hi := s.Bracket(30, 60)
	if lo != 25 || hi != 74 {
		t.Errorf("Bracket(30,60) = [%d,%d], want [25,74]", lo, hi)
	}
	// u below min: lo=0... actually 1 ≤ u=0? no: no summary value ≤ 0 → lo=0.
	lo, hi = s.Bracket(0, 10)
	if lo != 0 || hi != 24 {
		t.Errorf("Bracket(0,10) = [%d,%d], want [0,24]", lo, hi)
	}
	// v above max: hi=Count.
	lo, hi = s.Bracket(90, 200)
	if lo != 75 || hi != 100 {
		t.Errorf("Bracket(90,200) = [%d,%d], want [75,100]", lo, hi)
	}
}

// TestCursorRank checks the block-granular search against brute force.
func TestCursorRank(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 3, 0.25)
	rng := rand.New(rand.NewSource(43))
	data := make([]int64, 200)
	for i := range data {
		data[i] = rng.Int63n(500)
	}
	if _, err := s.AddBatch(data, 1); err != nil {
		t.Fatal(err)
	}
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	sum := s.Entries()[0]

	for _, pin := range []bool{true, false} {
		// Cursor probes must stay inside [u,v]; open with the full probe
		// range used below.
		cur, err := NewCursor(sum, 0, 499, pin)
		if err != nil {
			t.Fatal(err)
		}
		for _, z := range []int64{sorted[0], sorted[50], sorted[100], sorted[199], 0, 499} {
			got, err := cur.Rank(z)
			if err != nil {
				t.Fatal(err)
			}
			want := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > z }))
			if got != want {
				t.Errorf("pin=%v Rank(%d) = %d, want %d", pin, z, got, want)
			}
		}
		cur.Close() //nolint:errcheck
	}
}

// TestCursorNarrowingAndPinning verifies that narrowed, pinned cursors stop
// doing I/O and stay correct.
func TestCursorNarrowingAndPinning(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 3, 0.25)
	data := make([]int64, 512)
	for i := range data {
		data[i] = int64(i * 2) // 0,2,4,...,1022
	}
	if _, err := s.AddBatch(data, 1); err != nil {
		t.Fatal(err)
	}
	sum := s.Entries()[0]
	cur, err := NewCursor(sum, 0, 1022, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	// Simulated bisection narrowing to value 500 (element index 250).
	u, v := int64(0), int64(1022)
	var lastReads int
	for v-u > 1 {
		z := u + (v-u)/2
		r, err := cur.Rank(z)
		if err != nil {
			t.Fatal(err)
		}
		want := z/2 + 1
		if z < 0 {
			want = 0
		}
		if z >= 0 && z <= 1022 && r != min64(want, 512) {
			t.Fatalf("Rank(%d) = %d, want %d", z, r, min64(want, 512))
		}
		if r > 250 {
			v = z
			cur.NarrowUpper()
		} else {
			u = z
			cur.NarrowLower()
		}
		lastReads = cur.Reads()
	}
	lo, hi := cur.Bracket()
	if hi-lo > int64(dev.ElementsPerBlock()) {
		t.Errorf("bracket [%d,%d] did not narrow to a block", lo, hi)
	}
	// One more probe must not read (pinned).
	if _, err := cur.Rank(u); err != nil {
		t.Fatal(err)
	}
	if cur.Reads() != lastReads {
		t.Errorf("pinned probe still read: %d -> %d", lastReads, cur.Reads())
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Property: Bracket always contains the true boundary for any z in [u,v].
func TestQuickBracketSound(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 3, 0.2)
	rng := rand.New(rand.NewSource(47))
	data := make([]int64, 300)
	for i := range data {
		data[i] = rng.Int63n(1000)
	}
	if _, err := s.AddBatch(data, 1); err != nil {
		t.Fatal(err)
	}
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	sum := s.Entries()[0]
	f := func(a, b, zRaw uint16) bool {
		u, v := int64(a%1000), int64(b%1000)
		if u > v {
			u, v = v, u
		}
		z := u + int64(zRaw)%(v-u+1)
		lo, hi := sum.Bracket(u, v)
		boundary := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > z }))
		return lo <= boundary && boundary <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWindows(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 3, 0.25)
	for step := 1; step <= 13; step++ {
		data := []int64{int64(step), int64(step + 100)}
		if _, err := s.AddBatch(data, step); err != nil {
			t.Fatal(err)
		}
	}
	wins := s.AvailableWindows()
	if !slices.IsSorted(wins) {
		t.Errorf("windows not increasing: %v", wins)
	}
	if wins[len(wins)-1] != 13 {
		t.Errorf("largest window = %d, want 13", wins[len(wins)-1])
	}
	for _, w := range wins {
		ents, err := s.WindowEntries(w)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		steps := 0
		for _, e := range ents {
			steps += e.Part.Steps()
		}
		if steps != w {
			t.Errorf("window %d covers %d steps", w, steps)
		}
		n, err := s.WindowCount(w)
		if err != nil || n != int64(2*w) {
			t.Errorf("WindowCount(%d) = %d, %v", w, n, err)
		}
	}
	// A misaligned window must error.
	aligned := make(map[int]bool)
	for _, w := range wins {
		aligned[w] = true
	}
	for w := 1; w <= 13; w++ {
		if !aligned[w] {
			if _, err := s.WindowEntries(w); err == nil {
				t.Errorf("window %d should be rejected", w)
			}
		}
	}
	if ents, err := s.WindowEntries(0); err != nil || ents != nil {
		t.Errorf("window 0: %v, %v", ents, err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 3, 0.2)
	rng := rand.New(rand.NewSource(53))
	for step := 1; step <= 10; step++ {
		batch := make([]int64, 50)
		for i := range batch {
			batch[i] = rng.Int63n(1 << 20)
		}
		if _, err := s.AddBatch(batch, step); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveManifest("MANIFEST.json"); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(dev, "MANIFEST.json", Config{Kappa: 3, Eps1: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalCount() != s.TotalCount() || loaded.Steps() != s.Steps() {
		t.Errorf("loaded count=%d steps=%d, want %d/%d",
			loaded.TotalCount(), loaded.Steps(), s.TotalCount(), s.Steps())
	}
	if loaded.PartitionCount() != s.PartitionCount() {
		t.Errorf("partitions %d vs %d", loaded.PartitionCount(), s.PartitionCount())
	}
	// Summaries rebuilt identically.
	a, b := s.ChronologicalEntries(), loaded.ChronologicalEntries()
	for i := range a {
		if !slices.Equal(a[i].Values, b[i].Values) || !slices.Equal(a[i].Pos, b[i].Pos) {
			t.Errorf("summary %d differs after reload", i)
		}
	}
	// Mismatched kappa must be rejected.
	if _, err := LoadStore(dev, "MANIFEST.json", Config{Kappa: 5, Eps1: 0.2}); err == nil {
		t.Error("kappa mismatch: want error")
	}
	if _, err := LoadStore(dev, "missing.json", Config{Kappa: 3, Eps1: 0.2}); err == nil {
		t.Error("missing manifest: want error")
	}
}

func TestDestroy(t *testing.T) {
	dev := newDev(t)
	s := newStore(t, dev, 3, 0.25)
	if _, err := s.AddBatch([]int64{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
	name := s.Entries()[0].Part.Name()
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if dev.Exists(name) {
		t.Error("partition file survived Destroy")
	}
	if s.TotalCount() != 0 || s.PartitionCount() != 0 {
		t.Error("store not empty after Destroy")
	}
}

func TestUpdateBreakdownAccounting(t *testing.T) {
	dev := newDev(t)
	s, err := NewStore(dev, Config{Kappa: 2, Eps1: 0.25, SortMemElements: 1 << 16, SpillBatches: true})
	if err != nil {
		t.Fatal(err)
	}
	var bd UpdateBreakdown
	for step := 1; step <= 3; step++ {
		data := make([]int64, 64)
		for i := range data {
			data[i] = int64(step*1000 + i)
		}
		bd, err = s.AddBatch(data, step)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Step 3 triggers the first merge (kappa=2).
	if bd.Merges != 1 {
		t.Errorf("Merges = %d, want 1", bd.Merges)
	}
	if bd.LoadIO.SeqWrites == 0 {
		t.Error("load phase should write blocks")
	}
	if bd.MergeIO.SeqReads == 0 || bd.MergeIO.SeqWrites == 0 {
		t.Error("merge phase should read and write blocks")
	}
	if bd.MergeIO.RandReads != 0 {
		t.Error("merging must be sequential-only")
	}
	if bd.TotalIO() == 0 || bd.Total() <= 0 {
		t.Error("totals should be positive")
	}
}

func TestPartitionString(t *testing.T) {
	p := &Partition{ID: 3, Level: 1, Count: 10, StartStep: 2, EndStep: 4, dev: newDev(t)}
	if got := p.String(); got == "" {
		t.Error("empty String()")
	}
	if p.Steps() != 3 {
		t.Errorf("Steps = %d", p.Steps())
	}
}
