package partition

import (
	"slices"
	"testing"

	"repro/internal/disk"
)

// TestStoreMemBackend exercises the full store lifecycle — batch loads,
// cascading merges, cursor searches, manifest save/reload — on the
// in-memory backend. Semantics must match the file backend exactly.
func TestStoreMemBackend(t *testing.T) {
	dev, err := disk.NewManagerOn(disk.NewMemBackend(), 64) // 8 elements per block
	if err != nil {
		t.Fatal(err)
	}
	s := newStore(t, dev, 2, 0.1)

	var all []int64
	for step := 1; step <= 5; step++ {
		batch := make([]int64, 100)
		for i := range batch {
			batch[i] = int64((step*31 + i*17) % 1000)
		}
		all = append(all, batch...)
		if _, err := s.AddBatch(batch, step); err != nil {
			t.Fatal(err)
		}
	}
	if s.TotalCount() != int64(len(all)) {
		t.Fatalf("TotalCount = %d, want %d", s.TotalCount(), len(all))
	}
	slices.Sort(all)

	// Every partition must be sorted on the backend; spot-check contents.
	var total int64
	for _, sum := range s.Entries() {
		got := readPartition(t, sum.Part)
		if !slices.IsSorted(got) {
			t.Errorf("partition %v not sorted", sum.Part)
		}
		total += int64(len(got))
	}
	if total != int64(len(all)) {
		t.Errorf("elements on backend = %d, want %d", total, len(all))
	}

	// Cursor rank search against the exact sorted data.
	for _, z := range []int64{-1, 0, 250, 500, 999, 2000} {
		var histRank int64
		for _, sum := range s.Entries() {
			cur, err := NewCursor(sum, z, z, true)
			if err != nil {
				t.Fatal(err)
			}
			r, err := cur.Rank(z)
			cur.Close() //nolint:errcheck
			if err != nil {
				t.Fatal(err)
			}
			histRank += r
		}
		want := int64(0)
		for _, v := range all {
			if v <= z {
				want++
			}
		}
		if histRank != want {
			t.Errorf("rank(%d) = %d, want %d", z, histRank, want)
		}
	}

	// Manifest round-trip on the same backend (mem engines can checkpoint
	// within a process).
	if err := s.SaveManifest("MANIFEST.json"); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadStore(dev, "MANIFEST.json", Config{Kappa: 2, Eps1: 0.1, SortMemElements: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if s2.TotalCount() != s.TotalCount() || s2.PartitionCount() != s.PartitionCount() {
		t.Errorf("reloaded store: count=%d parts=%d, want count=%d parts=%d",
			s2.TotalCount(), s2.PartitionCount(), s.TotalCount(), s.PartitionCount())
	}
}
