package partition

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/extsort"
)

// Config parametrizes a Store.
type Config struct {
	// Kappa is the merge threshold κ (> 1): each level holds at most κ
	// partitions; exceeding it triggers a full-level merge.
	Kappa int
	// Eps1 is the historical summary parameter ε₁ = ε/2 (Algorithm 1).
	Eps1 float64
	// SortMemElements bounds the in-memory working set during batch sorting;
	// larger batches fall back to external sort. Defaults to 1M elements.
	SortMemElements int
	// SpillBatches, when true, writes the raw (unsorted) batch to disk
	// before sorting — the paper's "load" phase — so that load I/O is
	// accounted. When false, loading is skipped and batches sort directly
	// from memory (useful for unit tests).
	SpillBatches bool
	// MergeWorkers > 1 parallelizes level merges across value ranges (the
	// paper's §4 future-work direction). Costs one extra sequential pass
	// over the merged data; reduces wall-clock on parallel storage.
	MergeWorkers int
	// Namespace identifies the logical stream this store belongs to when
	// several stores multiplex one device through namespaced disk views
	// (disk.Manager.Namespace). It is recorded in the manifest and checked
	// on load, so a store cannot silently resume from another stream's
	// state. Empty for single-stream stores on the root view.
	Namespace string
	// ProbeMemoEntries bounds the per-version rank-probe memo attached to
	// each published Version (see ProbeMemo). Not positive disables
	// memoization.
	ProbeMemoEntries int
}

func (c *Config) validate() error {
	if err := ValidateKappa(c.Kappa); err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	if err := ValidateEps1(c.Eps1); err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	if c.SortMemElements <= 0 {
		c.SortMemElements = 1 << 20
	}
	return nil
}

// Beta1 returns β₁ = ⌈1/ε₁ + 1⌉ for the configured ε₁.
func (c Config) Beta1() int {
	b := int(1.0/c.Eps1) + 1
	if float64(b-1) < 1.0/c.Eps1 {
		b++
	}
	return b
}

// UpdateBreakdown reports where an install spent its time and I/O,
// mirroring the paper's Figure 6/7 decomposition into load, sort, merge and
// summary phases.
type UpdateBreakdown struct {
	Load    time.Duration
	Sort    time.Duration
	Merge   time.Duration
	Summary time.Duration

	LoadIO  disk.Stats
	SortIO  disk.Stats
	MergeIO disk.Stats

	// Merges is the number of level merges this update triggered.
	Merges int
}

// Total returns the total update time.
func (u UpdateBreakdown) Total() time.Duration { return u.Load + u.Sort + u.Merge + u.Summary }

// TotalIO returns total block accesses across all phases.
func (u UpdateBreakdown) TotalIO() uint64 {
	return u.LoadIO.Total() + u.SortIO.Total() + u.MergeIO.Total()
}

// ErrMergeIncomplete marks an update whose level-0 install succeeded and
// was published — the step is counted and its data queryable — but whose
// cascading merge (or subsequent commit) failed. The overflowing level is
// retried by the next update; callers must treat the step as loaded.
var ErrMergeIncomplete = errors.New("partition: level merge incomplete (retried at the next update)")

// entry pairs a partition with its in-memory summary.
type entry struct {
	part *Partition
	sum  *Summary
}

// SealedBatch is one time step's batch that has been sealed — its step
// number assigned and (normally) its raw data durably spilled — but not yet
// sorted and installed as a level-0 partition. Sealed batches are the
// hand-off unit between the fast synchronous end-of-step phase and the
// background maintenance that installs them.
type SealedBatch struct {
	// ID is the batch's store-unique id; it names the raw spill file.
	ID int64 `json:"id"`
	// Name is the raw spill file, or "" while the spill has not succeeded
	// yet (Commit retries it before writing any manifest that would need
	// it).
	Name string `json:"name"`
	// Count is the number of elements.
	Count int64 `json:"count"`
	// Step is the time step the batch closes.
	Step int `json:"step"`

	// data buffers the batch in memory until it is installed; nil after a
	// restart (the raw file is then the only copy).
	data []int64
}

// Store is HD + HS: the on-disk leveled partition structure together with
// per-partition in-memory summaries.
//
// The store separates three kinds of state:
//
//   - Build state (levels, buildRetired): the mutable leveled structure that
//     installs and merges edit. Exactly one mutator may touch it at a time —
//     the engine serializes installers with its maintenance lock. Queries
//     never read it.
//   - Published state (cur, live, retired, pending, nextID, steps; guarded
//     by vmu): the immutable Version chain queries pin, plus the sealed
//     batch queue and the id/step counters. Safe for concurrent use.
//   - Durable state: the manifest, always written from a consistent
//     published snapshot under the commit lock, so durable manifests never
//     regress to an older version.
//
// Mutations follow the crash-consistent commit protocol: installs only ever
// write new files (monotonically increasing ids, names never reused) and
// retire superseded files — merged-away partitions, consumed raw spills —
// onto the version-tagged retired list. Commit orders write-data → sync →
// commit-manifest → sync; a retired file is physically removed only once a
// manifest not referencing it is durable AND no live version can still read
// it (see version.go). A crash at any point leaves either the old manifest
// (new files are unreferenced orphans, collected by LoadStore) or the new
// manifest (whose data the first sync made durable before the commit).
type Store struct {
	dev *disk.Manager
	// mdev is the maintenance-attributed view of the same device: all
	// install I/O (sort, partition writes, merge passes) goes through it so
	// the disk layer can report how much of a stream's traffic is
	// maintenance (foreground spills and query reads use dev).
	mdev  *disk.Manager
	cfg   Config
	beta1 int

	// Build state — single mutator only.
	levels       [][]entry
	buildRetired []string

	// Published state.
	vmu          sync.Mutex
	cur          *Version
	live         []*Version
	retired      []retiredFile
	committedSeq int64
	pending      []*SealedBatch
	nextID       int64
	steps        int // sealed time steps (installed + pending)

	// cmu serializes manifest commits (a seal from the write path can race
	// an install commit from a maintenance worker) so the durable manifest
	// sequence is monotone.
	cmu sync.Mutex

	// pinCond (lazily created under vmu by DrainPins) is broadcast on every
	// Release so teardown can wait out in-flight query pins.
	pinCond *sync.Cond

	// memoCtr aggregates probe-memo traffic across every version.
	memoCtr memoCounters
}

// NewStore creates an empty historical store on the given device.
func NewStore(dev *disk.Manager, cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Store{dev: dev, mdev: dev.MaintTagged(), cfg: cfg, beta1: cfg.Beta1()}
	s.cur = &Version{store: s, seq: 1, refs: 1, memo: s.newMemo()}
	s.live = []*Version{s.cur}
	s.committedSeq = 0
	return s, nil
}

// Kappa returns the merge threshold.
func (s *Store) Kappa() int { return s.cfg.Kappa }

// Eps1 returns the historical summary parameter.
func (s *Store) Eps1() float64 { return s.cfg.Eps1 }

// Beta1 returns the per-partition summary length.
func (s *Store) Beta1() int { return s.beta1 }

// TotalCount returns n, the number of historical elements — installed
// partitions plus sealed-but-uninstalled batches.
func (s *Store) TotalCount() int64 {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	n := s.cur.total
	for _, sb := range s.pending {
		n += sb.Count
	}
	return n
}

// Steps returns the number of time steps sealed so far (installed or
// pending).
func (s *Store) Steps() int {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	return s.steps
}

// PendingSteps returns the number of sealed batches awaiting installation.
func (s *Store) PendingSteps() int {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	return len(s.pending)
}

// PendingElements returns the total element count across sealed batches
// awaiting installation — the stream's merge debt in elements.
func (s *Store) PendingElements() int64 {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	var n int64
	for _, sb := range s.pending {
		n += sb.Count
	}
	return n
}

// PendingBytes returns the heap footprint of batch data buffered until
// installation.
func (s *Store) PendingBytes() int64 {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	var n int64
	for _, sb := range s.pending {
		n += int64(len(sb.data)) * 8
	}
	return n
}

// Levels returns the number of non-empty levels in the current version.
func (s *Store) Levels() int {
	v := s.Pin()
	defer v.Release()
	max := 0
	for _, e := range v.entries {
		if e.Part.Level+1 > max {
			max = e.Part.Level + 1
		}
	}
	return max
}

// PartitionCount returns the number of live partitions in the current
// version.
func (s *Store) PartitionCount() int {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	return len(s.cur.entries)
}

// Entries returns the current version's (partition, summary) pairs, level
// order ascending and chronological within each level. The returned slice
// is an immutable snapshot; long-running readers that probe partition files
// should Pin a Version instead so reclamation waits for them.
func (s *Store) Entries() []*Summary {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	return s.cur.entries
}

// MemoryBytes returns the footprint of HS — Lemma 8's O(κ·log_κ(T)/ε).
func (s *Store) MemoryBytes() int64 {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	return s.cur.MemoryBytes()
}

// allocID reserves the next store-unique file id.
func (s *Store) allocID() int64 {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	id := s.nextID
	s.nextID++
	return id
}

// AddBatch loads one time step's batch into the warehouse synchronously:
// the batch is (optionally spilled and) sorted into a new level-0 partition
// with its summary captured in-flight, then levels holding more than κ
// partitions are recursively merged (Algorithm 3, HistUpdate), and the
// result is published as a new Version. The caller must be the single build
// mutator, and should Commit afterwards to make the step durable.
//
// AddBatch is the synchronous-maintenance path; Seal + InstallOne split the
// same work into a fast durable hand-off and a deferrable install.
func (s *Store) AddBatch(data []int64, step int) (UpdateBreakdown, error) {
	var bd UpdateBreakdown
	if len(data) == 0 {
		return bd, fmt.Errorf("partition: empty batch at step %d", step)
	}

	id := s.allocID()
	part := &Partition{
		ID:        id,
		Level:     0,
		Count:     int64(len(data)),
		StartStep: step,
		EndStep:   step,
		dev:       s.dev,
		name:      fmt.Sprintf("part-%06d.dat", id),
	}

	// Phase 1: load. Write the raw batch to the warehouse, as the paper's
	// loading paradigm does for both our algorithm and the pure-streaming
	// comparators.
	rawName := fmt.Sprintf("batch-raw-%06d.dat", id)
	if s.cfg.SpillBatches {
		t0 := time.Now()
		io0 := s.dev.Stats()
		if err := s.spillTo(s.dev, rawName, data); err != nil {
			return bd, err
		}
		bd.Load = time.Since(t0)
		bd.LoadIO = s.dev.Stats().Sub(io0)
	}

	// Phase 2: sort into the level-0 partition, capturing the summary as
	// the sorted elements stream to disk.
	t0 := time.Now()
	io0 := s.dev.Stats()
	var sum *Summary
	var err error
	if len(data) <= s.cfg.SortMemElements {
		sum, err = s.sortInMemory(data, part)
	} else {
		if !s.cfg.SpillBatches {
			// External sort requires the raw file; write it now (charged to
			// the sort phase since loading was disabled).
			if werr := s.spillTo(s.mdev, rawName, data); werr != nil {
				return bd, werr
			}
		}
		sum, err = s.sortExternal(rawName, part)
	}
	if err != nil {
		return bd, err
	}
	if s.cfg.SpillBatches || len(data) > s.cfg.SortMemElements {
		// The raw file is superseded by the sorted partition, but stays on
		// disk until the next manifest commit (see the Store doc comment).
		s.buildRetired = append(s.buildRetired, rawName)
	}
	bd.Sort = time.Since(t0)
	bd.SortIO = s.dev.Stats().Sub(io0)

	// Install at level 0 and publish before merging — identical to the
	// deferred path: from here the step is counted and queryable, and a
	// merge failure leaves a consistent published state that the next
	// update retries instead of a stranded half-installed batch.
	t0 = time.Now()
	s.installEntry(entry{part, sum})
	s.vmu.Lock()
	s.steps++
	s.vmu.Unlock()
	s.publish(false)
	bd.Summary = time.Since(t0)

	t0 = time.Now()
	io0 = s.dev.Stats()
	merges, err := s.cascadeMerges()
	bd.Merges = merges
	bd.Merge = time.Since(t0)
	bd.MergeIO = s.dev.Stats().Sub(io0)
	if merges > 0 {
		s.publish(false)
	}
	if err != nil {
		return bd, errors.Join(ErrMergeIncomplete, err)
	}
	return bd, nil
}

// spillTo writes data as a raw element file via the given device view.
// Spills are unsorted arrival-order batches, so they pin FormatRaw
// regardless of the device default: delta frames only pay off on sorted
// runs, and recovery wants the dumbest possible format to replay.
func (s *Store) spillTo(dev *disk.Manager, name string, data []int64) error {
	w, err := dev.CreateFormat(name, disk.FormatRaw)
	if err != nil {
		return err
	}
	if err := w.AppendSlice(data); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// installEntry appends a fresh level-0 entry to the build state.
func (s *Store) installEntry(e entry) {
	if len(s.levels) == 0 {
		s.levels = append(s.levels, nil)
	}
	s.levels[0] = append(s.levels[0], e)
}

// cascadeMerges merges every level holding more than κ partitions
// (Algorithm 3 lines 9-13), returning how many merges ran.
func (s *Store) cascadeMerges() (int, error) {
	merges := 0
	for lvl := 0; lvl < len(s.levels); lvl++ {
		if len(s.levels[lvl]) <= s.cfg.Kappa {
			continue
		}
		if s.cfg.MergeWorkers > 1 {
			if err := s.mergeLevelParallel(lvl, s.cfg.MergeWorkers); err != nil {
				return merges, err
			}
		} else if err := s.mergeLevel(lvl); err != nil {
			return merges, err
		}
		merges++
	}
	return merges, nil
}

// Seal closes one time step without installing it: the batch gets the next
// step number and a place on the pending queue, and Commit durably writes
// the raw spill plus a manifest referencing it. After a nil return the step
// survives any crash — a reopened store re-installs it from the spill. On
// error the step still exists in memory (and will be installed); only its
// durability is deferred, exactly like a failed synchronous commit, and the
// next Commit retries the spill.
//
// Seal may run concurrently with InstallOne; only one Seal at a time (the
// engine's write path serializes end-of-steps).
func (s *Store) Seal(data []int64, manifestName string) (int, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("partition: sealing empty batch")
	}
	s.vmu.Lock()
	id := s.nextID
	s.nextID++
	s.steps++
	step := s.steps
	s.pending = append(s.pending, &SealedBatch{
		ID:    id,
		Count: int64(len(data)),
		Step:  step,
		data:  data,
	})
	s.vmu.Unlock()
	return step, s.Commit(manifestName)
}

// spillPendingLocked writes the raw file of every sealed batch that does
// not have one yet. Caller holds cmu (so two committers cannot double-spill
// the same batch).
func (s *Store) spillPendingLocked() error {
	s.vmu.Lock()
	todo := make([]*SealedBatch, 0, len(s.pending))
	for _, sb := range s.pending {
		if sb.Name == "" {
			todo = append(todo, sb)
		}
	}
	s.vmu.Unlock()
	for _, sb := range todo {
		if sb.data == nil {
			return fmt.Errorf("partition: sealed step %d has neither spill nor data", sb.Step)
		}
		name := fmt.Sprintf("batch-raw-%06d.dat", sb.ID)
		if err := s.spillTo(s.dev, name, sb.data); err != nil {
			return fmt.Errorf("partition: spill sealed step %d: %w", sb.Step, err)
		}
		s.vmu.Lock()
		sb.Name = name
		s.vmu.Unlock()
	}
	return nil
}

// InstallOne sorts and installs the oldest sealed batch as a level-0
// partition, cascades merges, publishes the new version and commits. It
// returns the installed step number and false when nothing was pending.
// The caller must be the single build mutator.
func (s *Store) InstallOne(manifestName string) (UpdateBreakdown, int, error) {
	var bd UpdateBreakdown
	s.vmu.Lock()
	if len(s.pending) == 0 {
		s.vmu.Unlock()
		return bd, 0, nil
	}
	sb := s.pending[0]
	s.vmu.Unlock()

	id := s.allocID()
	part := &Partition{
		ID:        id,
		Level:     0,
		Count:     sb.Count,
		StartStep: sb.Step,
		EndStep:   sb.Step,
		dev:       s.dev,
		name:      fmt.Sprintf("part-%06d.dat", id),
	}

	t0 := time.Now()
	io0 := s.mdev.MaintStats()
	data := sb.data
	s.vmu.Lock()
	rawName := sb.Name
	s.vmu.Unlock()
	var sum *Summary
	var err error
	switch {
	case data == nil && sb.Count <= int64(s.cfg.SortMemElements):
		// Recovered batch small enough to sort in memory: one sequential
		// read of the spill.
		data, err = s.readRaw(rawName, sb.Count)
		if err != nil {
			return bd, 0, err
		}
		sum, err = s.sortInMemory(data, part)
	case data != nil && len(data) <= s.cfg.SortMemElements:
		sum, err = s.sortInMemory(data, part)
	default:
		// Large batch: external sort from the spill. Sealing normally wrote
		// it already; repair a failed spill first (under the commit lock,
		// which owns spill repair).
		if rawName == "" {
			s.cmu.Lock()
			serr := s.spillPendingLocked()
			s.cmu.Unlock()
			if serr != nil {
				return bd, 0, serr
			}
			s.vmu.Lock()
			rawName = sb.Name
			s.vmu.Unlock()
		}
		sum, err = s.sortExternal(rawName, part)
	}
	if err != nil {
		return bd, 0, fmt.Errorf("partition: install sealed step %d: %w", sb.Step, err)
	}
	bd.Sort = time.Since(t0)
	bd.SortIO = s.mdev.MaintStats().Sub(io0)

	// Install at level 0 and publish before merging: from here on the step
	// counts as installed (its frozen summary can be retired), and a merge
	// or commit failure leaves a consistent published state that the next
	// install retries — never a double-installed batch.
	t0 = time.Now()
	s.installEntry(entry{part, sum})
	v := s.publish(true)
	// Retire the consumed spill AFTER publish, re-reading its name under
	// vmu: a concurrent Commit may have repaired a spill that failed at
	// seal time, and checking earlier could miss (and so leak) the file it
	// wrote. No version references spills, so the new sequence number makes
	// it removable as soon as a manifest of this version commits.
	s.vmu.Lock()
	if sb.Name != "" {
		s.retired = append(s.retired, retiredFile{name: sb.Name, seq: v.seq})
	}
	s.vmu.Unlock()
	bd.Summary = time.Since(t0)

	t0 = time.Now()
	io0 = s.mdev.MaintStats()
	merges, mergeErr := s.cascadeMerges()
	bd.Merges = merges
	bd.Merge = time.Since(t0)
	bd.MergeIO = s.mdev.MaintStats().Sub(io0)
	if merges > 0 {
		s.publish(false)
	}
	if mergeErr != nil {
		mergeErr = errors.Join(ErrMergeIncomplete, mergeErr)
	}
	if err := s.Commit(manifestName); err != nil {
		if mergeErr == nil {
			mergeErr = err
		}
	}
	return bd, sb.Step, mergeErr
}

// readRaw reads a raw spill back into memory (the crash-recovery install
// path for batches small enough to sort in memory).
func (s *Store) readRaw(name string, count int64) ([]int64, error) {
	r, err := s.mdev.OpenSequential(name)
	if err != nil {
		return nil, err
	}
	defer r.Close() //nolint:errcheck // read-only
	r.SetReadahead(disk.MergeReadahead)
	out := make([]int64, 0, count)
	for {
		v, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, v)
	}
	if int64(len(out)) != count {
		return nil, fmt.Errorf("partition: spill %s has %d elements, manifest says %d", name, len(out), count)
	}
	return out, nil
}

// sortInMemory sorts data in memory, writes the partition and captures its
// summary from the in-memory slice.
func (s *Store) sortInMemory(data []int64, part *Partition) (*Summary, error) {
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	cap := newCapture(part.Count, s.cfg.Eps1, s.beta1)
	w, err := s.mdev.Create(part.name)
	if err != nil {
		return nil, err
	}
	for _, v := range sorted {
		cap.feed(v)
		if err := w.Append(v); err != nil {
			w.Abort()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return cap.summary(part)
}

// sortExternal externally sorts the raw batch file into the partition,
// capturing the summary during the final merge pass.
func (s *Store) sortExternal(rawName string, part *Partition) (*Summary, error) {
	src, count, cleanup, err := extsort.SortedStream(s.mdev, rawName, extsort.Config{
		MemElements: s.cfg.SortMemElements,
		TempPrefix:  fmt.Sprintf("sort-%06d", part.ID),
	})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if count != part.Count {
		return nil, fmt.Errorf("partition: external sort saw %d elements, expected %d", count, part.Count)
	}
	cap := newCapture(count, s.cfg.Eps1, s.beta1)
	w, err := s.mdev.Create(part.name)
	if err != nil {
		return nil, err
	}
	for {
		v, ok, err := src.Next()
		if err != nil {
			w.Abort()
			return nil, err
		}
		if !ok {
			break
		}
		cap.feed(v)
		if err := w.Append(v); err != nil {
			w.Abort()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return cap.summary(part)
}

// mergeLevel multi-way merges every partition at level lvl into a single
// partition at lvl+1 with a single sequential pass (Algorithm 3 lines 9-13),
// capturing the merged partition's summary in-flight.
func (s *Store) mergeLevel(lvl int) error {
	group := s.levels[lvl]
	if len(group) == 0 {
		return nil
	}
	id := s.allocID()
	var count int64
	startStep, endStep := group[0].part.StartStep, group[0].part.EndStep
	for _, e := range group {
		count += e.part.Count
		if e.part.StartStep < startStep {
			startStep = e.part.StartStep
		}
		if e.part.EndStep > endStep {
			endStep = e.part.EndStep
		}
	}
	merged := &Partition{
		ID:        id,
		Level:     lvl + 1,
		Count:     count,
		StartStep: startStep,
		EndStep:   endStep,
		dev:       s.dev,
		name:      fmt.Sprintf("part-%06d.dat", id),
	}

	readers := make([]*disk.Reader, 0, len(group))
	closeAll := func() {
		for _, r := range readers {
			r.Close() //nolint:errcheck // cleanup
		}
	}
	sources := make([]extsort.Source, 0, len(group))
	for _, e := range group {
		r, err := s.mdev.OpenSequential(e.part.name)
		if err != nil {
			closeAll()
			return err
		}
		r.SetReadahead(disk.MergeReadahead)
		readers = append(readers, r)
		sources = append(sources, extsort.ReaderSource(r))
	}
	merger, err := extsort.NewMerger(sources...)
	if err != nil {
		closeAll()
		return err
	}
	cap := newCapture(count, s.cfg.Eps1, s.beta1)
	w, err := s.mdev.Create(merged.name)
	if err != nil {
		closeAll()
		return err
	}
	for {
		v, ok, err := merger.Next()
		if err != nil {
			w.Abort()
			closeAll()
			return err
		}
		if !ok {
			break
		}
		cap.feed(v)
		if err := w.Append(v); err != nil {
			w.Abort()
			closeAll()
			return err
		}
	}
	closeAll()
	if err := w.Close(); err != nil {
		return err
	}
	sum, err := cap.summary(merged)
	if err != nil {
		return err
	}
	s.retireGroupAndInstall(lvl, group, merged, sum)
	return nil
}

// retireGroupAndInstall retires the merged-away inputs of level lvl
// (removed once a manifest without them is durable and no version pins
// them) and installs the merged partition at lvl+1 in chronological order.
func (s *Store) retireGroupAndInstall(lvl int, group []entry, merged *Partition, sum *Summary) {
	for _, e := range group {
		s.buildRetired = append(s.buildRetired, e.part.name)
	}
	s.levels[lvl] = nil
	if lvl+1 >= len(s.levels) {
		s.levels = append(s.levels, nil)
	}
	s.levels[lvl+1] = append(s.levels[lvl+1], entry{merged, sum})
	slices.SortFunc(s.levels[lvl+1], func(a, b entry) int {
		return a.part.StartStep - b.part.StartStep
	})
}

// Commit makes the store's current published state durable: any missing raw
// spills of sealed batches are (re)written, a data barrier guarantees every
// file the manifest will reference is on stable storage, the manifest is
// committed atomically from a consistent published snapshot, and a second
// barrier makes the commit itself durable. Only then do files superseded by
// this state become removable — and they are physically removed only once no
// pinned Version can still read them.
//
// Commit is safe to call concurrently (a seal on the write path vs an
// install commit on a maintenance worker); commits are serialized and the
// durable manifest sequence is monotone.
func (s *Store) Commit(manifestName string) error {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if err := s.spillPendingLocked(); err != nil {
		return err
	}
	// The snapshot is taken BEFORE the data barrier: every file a published
	// version references was fully written before publish, so syncing after
	// the snapshot guarantees the manifest only ever references durable
	// data — even if a concurrent install publishes a newer version between
	// the snapshot and the barrier (that version's files ride the next
	// commit).
	s.vmu.Lock()
	m, seq := s.manifestSnapshotLocked()
	s.vmu.Unlock()
	if err := s.dev.Sync(); err != nil {
		return fmt.Errorf("partition: commit data barrier: %w", err)
	}
	if err := s.writeManifest(manifestName, m); err != nil {
		return err
	}
	if err := s.dev.Sync(); err != nil {
		return fmt.Errorf("partition: commit manifest barrier: %w", err)
	}
	var reclaim []retiredFile
	s.vmu.Lock()
	if seq > s.committedSeq {
		s.committedSeq = seq
	}
	reclaim = s.takeReclaimableLocked()
	s.vmu.Unlock()
	s.removeRetired(reclaim)
	return nil
}

// Destroy removes every partition file, raw spill and retired file. The
// store is unusable afterwards. The caller must guarantee no concurrent
// installs or pinned queries.
func (s *Store) Destroy() error {
	s.vmu.Lock()
	names := make([]string, 0, len(s.cur.entries)+len(s.retired)+len(s.pending))
	for _, e := range s.cur.entries {
		names = append(names, e.Part.name)
	}
	for _, rf := range s.retired {
		names = append(names, rf.name)
	}
	for _, sb := range s.pending {
		if sb.Name != "" {
			names = append(names, sb.Name)
		}
	}
	s.vmu.Unlock()
	for _, name := range names {
		if s.dev.Exists(name) {
			if err := s.dev.Remove(name); err != nil {
				return err
			}
		}
	}
	s.vmu.Lock()
	s.retired = nil
	s.pending = nil
	s.steps = 0
	s.cur = &Version{store: s, seq: s.cur.seq + 1, refs: 1}
	s.live = []*Version{s.cur}
	s.vmu.Unlock()
	s.levels = nil
	s.buildRetired = nil
	return nil
}

// LevelInfo describes one level of HD for diagnostics.
type LevelInfo struct {
	Level      int
	Partitions int
	Elements   int64
	Steps      int
}

// Describe returns a per-level summary of the current version's layout
// (level order ascending).
func (s *Store) Describe() []LevelInfo {
	v := s.Pin()
	defer v.Release()
	var out []LevelInfo
	for _, e := range v.entries {
		for len(out) <= e.Part.Level {
			out = append(out, LevelInfo{Level: len(out)})
		}
		info := &out[e.Part.Level]
		info.Partitions++
		info.Elements += e.Part.Count
		info.Steps += e.Part.Steps()
	}
	return out
}
