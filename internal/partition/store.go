package partition

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/disk"
	"repro/internal/extsort"
)

// Config parametrizes a Store.
type Config struct {
	// Kappa is the merge threshold κ (> 1): each level holds at most κ
	// partitions; exceeding it triggers a full-level merge.
	Kappa int
	// Eps1 is the historical summary parameter ε₁ = ε/2 (Algorithm 1).
	Eps1 float64
	// SortMemElements bounds the in-memory working set during batch sorting;
	// larger batches fall back to external sort. Defaults to 1M elements.
	SortMemElements int
	// SpillBatches, when true, writes the raw (unsorted) batch to disk
	// before sorting — the paper's "load" phase — so that load I/O is
	// accounted. When false, loading is skipped and batches sort directly
	// from memory (useful for unit tests).
	SpillBatches bool
	// MergeWorkers > 1 parallelizes level merges across value ranges (the
	// paper's §4 future-work direction). Costs one extra sequential pass
	// over the merged data; reduces wall-clock on parallel storage.
	MergeWorkers int
	// Namespace identifies the logical stream this store belongs to when
	// several stores multiplex one device through namespaced disk views
	// (disk.Manager.Namespace). It is recorded in the manifest and checked
	// on load, so a store cannot silently resume from another stream's
	// state. Empty for single-stream stores on the root view.
	Namespace string
}

func (c *Config) validate() error {
	if c.Kappa < 2 {
		return fmt.Errorf("partition: kappa must be >= 2, got %d", c.Kappa)
	}
	if c.Eps1 <= 0 || c.Eps1 >= 1 {
		return fmt.Errorf("partition: eps1 must be in (0,1), got %g", c.Eps1)
	}
	if c.SortMemElements <= 0 {
		c.SortMemElements = 1 << 20
	}
	return nil
}

// Beta1 returns β₁ = ⌈1/ε₁ + 1⌉ for the configured ε₁.
func (c Config) Beta1() int {
	b := int(1.0/c.Eps1) + 1
	if float64(b-1) < 1.0/c.Eps1 {
		b++
	}
	return b
}

// UpdateBreakdown reports where an AddBatch spent its time and I/O,
// mirroring the paper's Figure 6/7 decomposition into load, sort, merge and
// summary phases.
type UpdateBreakdown struct {
	Load    time.Duration
	Sort    time.Duration
	Merge   time.Duration
	Summary time.Duration

	LoadIO  disk.Stats
	SortIO  disk.Stats
	MergeIO disk.Stats

	// Merges is the number of level merges this update triggered.
	Merges int
}

// Total returns the total update time.
func (u UpdateBreakdown) Total() time.Duration { return u.Load + u.Sort + u.Merge + u.Summary }

// TotalIO returns total block accesses across all phases.
func (u UpdateBreakdown) TotalIO() uint64 {
	return u.LoadIO.Total() + u.SortIO.Total() + u.MergeIO.Total()
}

// entry pairs a partition with its in-memory summary.
type entry struct {
	part *Partition
	sum  *Summary
}

// Store is HD + HS: the on-disk leveled partition structure together with
// per-partition in-memory summaries. Store is not safe for concurrent use;
// the engine provides locking.
//
// Mutations follow a crash-consistent commit protocol: AddBatch only ever
// writes new files (partitions have monotonically increasing IDs, so names
// are never reused) and defers the removal of superseded files — merged-away
// partitions, spilled raw batches — to the obsolete list. Commit then orders
// the step write-data → sync → commit-manifest → sync and only afterwards
// physically removes obsolete files. A crash at any point leaves either the
// old manifest (new files are unreferenced orphans, collected by LoadStore)
// or the new manifest (whose data the first sync made durable before the
// commit); the referenced files are immutable once written, so the manifest
// can never point at torn or missing data.
type Store struct {
	dev    *disk.Manager
	cfg    Config
	beta1  int
	levels [][]entry
	nextID int64
	total  int64
	steps  int
	// obsolete holds files superseded by in-memory state but not yet
	// removable: they may still be referenced by the last committed
	// manifest. Commit removes them after the next manifest commit.
	obsolete []string
}

// NewStore creates an empty historical store on the given device.
func NewStore(dev *disk.Manager, cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Store{dev: dev, cfg: cfg, beta1: cfg.Beta1()}, nil
}

// Kappa returns the merge threshold.
func (s *Store) Kappa() int { return s.cfg.Kappa }

// Eps1 returns the historical summary parameter.
func (s *Store) Eps1() float64 { return s.cfg.Eps1 }

// Beta1 returns the per-partition summary length.
func (s *Store) Beta1() int { return s.beta1 }

// TotalCount returns n, the number of historical elements.
func (s *Store) TotalCount() int64 { return s.total }

// Steps returns the number of time steps loaded so far.
func (s *Store) Steps() int { return s.steps }

// Levels returns the number of non-empty levels.
func (s *Store) Levels() int { return len(s.levels) }

// PartitionCount returns the total number of live partitions.
func (s *Store) PartitionCount() int {
	n := 0
	for _, lvl := range s.levels {
		n += len(lvl)
	}
	return n
}

// Entries returns all live (partition, summary) pairs, newest level first
// within chronological order. The returned slices alias internal state and
// must not be mutated.
func (s *Store) Entries() []*Summary {
	var out []*Summary
	for _, lvl := range s.levels {
		for _, e := range lvl {
			out = append(out, e.sum)
		}
	}
	return out
}

// MemoryBytes returns the footprint of HS — Lemma 8's O(κ·log_κ(T)/ε).
func (s *Store) MemoryBytes() int64 {
	var b int64
	for _, lvl := range s.levels {
		for _, e := range lvl {
			b += e.sum.MemoryBytes()
		}
	}
	return b
}

// AddBatch loads one time step's batch into the warehouse: the batch is
// (optionally spilled and) sorted into a new level-0 partition with its
// summary captured in-flight, then levels holding more than κ partitions are
// recursively merged (Algorithm 3, HistUpdate).
func (s *Store) AddBatch(data []int64, step int) (UpdateBreakdown, error) {
	var bd UpdateBreakdown
	if len(data) == 0 {
		return bd, fmt.Errorf("partition: empty batch at step %d", step)
	}

	id := s.nextID
	s.nextID++
	part := &Partition{
		ID:        id,
		Level:     0,
		Count:     int64(len(data)),
		StartStep: step,
		EndStep:   step,
		dev:       s.dev,
		name:      fmt.Sprintf("part-%06d.dat", id),
	}

	// Phase 1: load. Write the raw batch to the warehouse, as the paper's
	// loading paradigm does for both our algorithm and the pure-streaming
	// comparators.
	rawName := fmt.Sprintf("batch-raw-%06d.dat", id)
	if s.cfg.SpillBatches {
		t0 := time.Now()
		io0 := s.dev.Stats()
		w, err := s.dev.Create(rawName)
		if err != nil {
			return bd, err
		}
		if err := w.AppendSlice(data); err != nil {
			w.Abort()
			return bd, err
		}
		if err := w.Close(); err != nil {
			return bd, err
		}
		bd.Load = time.Since(t0)
		bd.LoadIO = s.dev.Stats().Sub(io0)
	}

	// Phase 2: sort into the level-0 partition, capturing the summary as
	// the sorted elements stream to disk.
	t0 := time.Now()
	io0 := s.dev.Stats()
	var sum *Summary
	var err error
	if len(data) <= s.cfg.SortMemElements {
		sum, err = s.sortInMemory(data, part)
	} else {
		if !s.cfg.SpillBatches {
			// External sort requires the raw file; write it now (charged to
			// the sort phase since loading was disabled).
			w, werr := s.dev.Create(rawName)
			if werr != nil {
				return bd, werr
			}
			if werr := w.AppendSlice(data); werr != nil {
				w.Abort()
				return bd, werr
			}
			if werr := w.Close(); werr != nil {
				return bd, werr
			}
		}
		sum, err = s.sortExternal(rawName, part)
	}
	if err != nil {
		return bd, err
	}
	if s.cfg.SpillBatches || len(data) > s.cfg.SortMemElements {
		// The raw file is superseded by the sorted partition, but stays on
		// disk until the next manifest commit (see the Store doc comment).
		s.obsolete = append(s.obsolete, rawName)
	}
	bd.Sort = time.Since(t0)
	bd.SortIO = s.dev.Stats().Sub(io0)

	// Install at level 0.
	t0 = time.Now()
	if len(s.levels) == 0 {
		s.levels = append(s.levels, nil)
	}
	s.levels[0] = append(s.levels[0], entry{part, sum})
	s.total += part.Count
	s.steps++
	bd.Summary = time.Since(t0)

	// Phase 3: cascade merges while any level exceeds κ.
	t0 = time.Now()
	io0 = s.dev.Stats()
	for lvl := 0; lvl < len(s.levels); lvl++ {
		if len(s.levels[lvl]) <= s.cfg.Kappa {
			continue
		}
		if s.cfg.MergeWorkers > 1 {
			if err := s.mergeLevelParallel(lvl, s.cfg.MergeWorkers); err != nil {
				return bd, err
			}
		} else if err := s.mergeLevel(lvl); err != nil {
			return bd, err
		}
		bd.Merges++
	}
	bd.Merge = time.Since(t0)
	bd.MergeIO = s.dev.Stats().Sub(io0)
	return bd, nil
}

// sortInMemory sorts data in memory, writes the partition and captures its
// summary from the in-memory slice.
func (s *Store) sortInMemory(data []int64, part *Partition) (*Summary, error) {
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	cap := newCapture(part.Count, s.cfg.Eps1, s.beta1)
	w, err := s.dev.Create(part.name)
	if err != nil {
		return nil, err
	}
	for _, v := range sorted {
		cap.feed(v)
		if err := w.Append(v); err != nil {
			w.Abort()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return cap.summary(part)
}

// sortExternal externally sorts the raw batch file into the partition,
// capturing the summary during the final merge pass.
func (s *Store) sortExternal(rawName string, part *Partition) (*Summary, error) {
	src, count, cleanup, err := extsort.SortedStream(s.dev, rawName, extsort.Config{
		MemElements: s.cfg.SortMemElements,
		TempPrefix:  fmt.Sprintf("sort-%06d", part.ID),
	})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if count != part.Count {
		return nil, fmt.Errorf("partition: external sort saw %d elements, expected %d", count, part.Count)
	}
	cap := newCapture(count, s.cfg.Eps1, s.beta1)
	w, err := s.dev.Create(part.name)
	if err != nil {
		return nil, err
	}
	for {
		v, ok, err := src.Next()
		if err != nil {
			w.Abort()
			return nil, err
		}
		if !ok {
			break
		}
		cap.feed(v)
		if err := w.Append(v); err != nil {
			w.Abort()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return cap.summary(part)
}

// mergeLevel multi-way merges every partition at level lvl into a single
// partition at lvl+1 with a single sequential pass (Algorithm 3 lines 9-13),
// capturing the merged partition's summary in-flight.
func (s *Store) mergeLevel(lvl int) error {
	group := s.levels[lvl]
	if len(group) == 0 {
		return nil
	}
	id := s.nextID
	s.nextID++
	var count int64
	startStep, endStep := group[0].part.StartStep, group[0].part.EndStep
	for _, e := range group {
		count += e.part.Count
		if e.part.StartStep < startStep {
			startStep = e.part.StartStep
		}
		if e.part.EndStep > endStep {
			endStep = e.part.EndStep
		}
	}
	merged := &Partition{
		ID:        id,
		Level:     lvl + 1,
		Count:     count,
		StartStep: startStep,
		EndStep:   endStep,
		dev:       s.dev,
		name:      fmt.Sprintf("part-%06d.dat", id),
	}

	readers := make([]*disk.Reader, 0, len(group))
	closeAll := func() {
		for _, r := range readers {
			r.Close() //nolint:errcheck // cleanup
		}
	}
	sources := make([]extsort.Source, 0, len(group))
	for _, e := range group {
		r, err := e.part.OpenSequential()
		if err != nil {
			closeAll()
			return err
		}
		readers = append(readers, r)
		sources = append(sources, extsort.ReaderSource(r))
	}
	merger, err := extsort.NewMerger(sources...)
	if err != nil {
		closeAll()
		return err
	}
	cap := newCapture(count, s.cfg.Eps1, s.beta1)
	w, err := s.dev.Create(merged.name)
	if err != nil {
		closeAll()
		return err
	}
	for {
		v, ok, err := merger.Next()
		if err != nil {
			w.Abort()
			closeAll()
			return err
		}
		if !ok {
			break
		}
		cap.feed(v)
		if err := w.Append(v); err != nil {
			w.Abort()
			closeAll()
			return err
		}
	}
	closeAll()
	if err := w.Close(); err != nil {
		return err
	}
	sum, err := cap.summary(merged)
	if err != nil {
		return err
	}

	// Retire the merged-away partitions (removed at the next commit, since
	// the last committed manifest may still reference them) and install the
	// new one.
	for _, e := range group {
		s.obsolete = append(s.obsolete, e.part.name)
	}
	s.levels[lvl] = nil
	if lvl+1 >= len(s.levels) {
		s.levels = append(s.levels, nil)
	}
	s.levels[lvl+1] = append(s.levels[lvl+1], entry{merged, sum})
	// Keep chronological order within the level (older first).
	slices.SortFunc(s.levels[lvl+1], func(a, b entry) int {
		return a.part.StartStep - b.part.StartStep
	})
	return nil
}

// Commit makes the store's current in-memory state durable: a data barrier
// so every partition the manifest will reference is on stable storage, the
// atomic manifest commit, and a second barrier making the commit itself
// durable. Only then are files superseded by this state (merged-away
// partitions, raw batch spills) physically removed — a failed or crashed
// removal leaves orphans for the next Commit or for LoadStore's collector,
// never dangling manifest references.
func (s *Store) Commit(manifestName string) error {
	if err := s.dev.Sync(); err != nil {
		return fmt.Errorf("partition: commit data barrier: %w", err)
	}
	if err := s.SaveManifest(manifestName); err != nil {
		return err
	}
	if err := s.dev.Sync(); err != nil {
		return fmt.Errorf("partition: commit manifest barrier: %w", err)
	}
	kept := s.obsolete[:0]
	for _, name := range s.obsolete {
		if err := s.dev.Remove(name); err != nil && s.dev.Exists(name) {
			kept = append(kept, name) // retry at the next commit
		}
	}
	s.obsolete = kept
	return nil
}

// Destroy removes every partition file, plus any files awaiting removal at
// the next commit. The store is unusable afterwards.
func (s *Store) Destroy() error {
	for _, lvl := range s.levels {
		for _, e := range lvl {
			if err := e.part.remove(); err != nil {
				return err
			}
		}
	}
	for _, name := range s.obsolete {
		if s.dev.Exists(name) {
			if err := s.dev.Remove(name); err != nil {
				return err
			}
		}
	}
	s.obsolete = nil
	s.levels = nil
	s.total = 0
	return nil
}

// LevelInfo describes one level of HD for diagnostics.
type LevelInfo struct {
	Level      int
	Partitions int
	Elements   int64
	Steps      int
}

// Describe returns a per-level summary of the store layout, oldest level
// data last (level order ascending).
func (s *Store) Describe() []LevelInfo {
	out := make([]LevelInfo, 0, len(s.levels))
	for lvl, es := range s.levels {
		info := LevelInfo{Level: lvl, Partitions: len(es)}
		for _, e := range es {
			info.Elements += e.part.Count
			info.Steps += e.part.Steps()
		}
		out = append(out, info)
	}
	return out
}
