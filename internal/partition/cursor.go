package partition

import (
	"fmt"

	"repro/internal/disk"
)

// Cursor performs block-granular rank searches against one partition during
// an accurate query (Algorithm 8). It maintains a closed index bracket
// [lo, hi] guaranteed to contain boundary(z) — the number of partition
// elements ≤ z — for every probe value z in the query's current filter range
// [u, v]. The bracket is seeded from the partition summary (Summary.Bracket)
// and narrowed by the engine as the filters tighten.
//
// When the candidate range fits inside one disk block, the block is pinned
// in memory and subsequent probes cost no I/O — the paper's §2.4
// optimization. On columnar partitions the cursor additionally consults
// each block's header min/max bounds before reading it: a probe value
// outside the bounds resolves the bisection step with no read at all,
// counted as a skipped block.
type Cursor struct {
	sum     *Summary
	rr      *disk.RandomReader
	lo, hi  int64
	lastIdx int64
	pinning bool
	pinIdx  int64 // block index of the pinned block
	pinBase int64 // element index of the pinned block's first element
	pinned  []int64
}

// NewCursor opens a cursor over the summarized partition for probe values
// confined to [u, v]. pinning enables the single-block caching optimization.
// The caller must Close the cursor.
func NewCursor(sum *Summary, u, v int64, pinning bool) (*Cursor, error) {
	rr, err := sum.Part.OpenRandom()
	if err != nil {
		return nil, err
	}
	lo, hi := sum.Bracket(u, v)
	return &Cursor{sum: sum, rr: rr, lo: lo, hi: hi, pinning: pinning, pinIdx: -1}, nil
}

// Close releases the underlying file handle.
func (c *Cursor) Close() error { return c.rr.Close() }

// Reads returns the number of random block reads this cursor sent to the
// backend (block-cache hits excluded — they cost no disk access).
func (c *Cursor) Reads() int { return c.rr.Reads() }

// CacheHits returns the number of probes served by the device block cache.
func (c *Cursor) CacheHits() int { return c.rr.CacheHits() }

// Skips returns the number of bisection steps answered from columnar block
// header bounds without reading the block.
func (c *Cursor) Skips() int { return c.rr.Skips() }

// Bracket returns the current candidate bracket (for tests and diagnostics).
func (c *Cursor) Bracket() (lo, hi int64) { return c.lo, c.hi }

// block reads block idx, counting the access, and pins it if pinning is
// enabled.
func (c *Cursor) block(idx int64) ([]int64, error) {
	if c.pinned != nil && idx == c.pinIdx {
		return c.pinned, nil
	}
	return c.rr.Block(idx)
}

// pin caches a block so later probes in the same range are free.
func (c *Cursor) pin(vals []int64, idx, base int64) {
	if c.pinning {
		c.pinned = vals
		c.pinIdx = idx
		c.pinBase = base
	}
}

// boundaryWithin binary-searches for boundary(z) inside vals (covering
// positions [base, base+len)), restricted to candidates [lo, hi].
func boundaryWithin(vals []int64, base, z, lo, hi int64) int64 {
	a := max(lo, base)
	b := min(base+int64(len(vals)), hi)
	for a < b {
		m := (a + b) / 2
		if vals[m-base] > z {
			b = m
		} else {
			a = m + 1
		}
	}
	return a
}

// skipByBounds resolves the probe of block idx against its header bounds,
// if the format carries them and z falls outside. The block is sorted, so
// z below the block minimum decides the probe like z below the block's
// first candidate element, and z at or above the maximum like z at or
// above its last — without reading the block. Returns the narrowed
// bracket and whether the probe was resolved.
func (c *Cursor) skipByBounds(idx, z, lo, hi int64) (int64, int64, bool) {
	mn, mx, ok := c.rr.BlockBounds(idx)
	if !ok || (c.pinned != nil && idx == c.pinIdx) {
		// No bounds (format 0), or the block is already pinned — reading it
		// is free, so skipping would only discard information.
		return lo, hi, false
	}
	base := c.rr.BlockStart(idx)
	switch {
	case z < mn:
		c.rr.Skip(idx)
		return lo, max(base, lo), true
	case z >= mx:
		last := min(base+c.rr.BlockLen(idx)-1, hi-1)
		c.rr.Skip(idx)
		return last + 1, hi, true
	}
	return lo, hi, false
}

// Rank returns boundary(z) = the exact number of partition elements ≤ z,
// for z within the cursor's filter range. It performs O(log(blocks in
// bracket)) random block reads, or none once the bracket is pinned — and on
// columnar partitions, bisection steps whose block bounds exclude z cost
// nothing.
func (c *Cursor) Rank(z int64) (int64, error) {
	lo, hi := c.lo, c.hi
	for {
		if lo >= hi {
			c.lastIdx = lo
			return lo, nil
		}
		// Fully answerable from the pinned block?
		if c.pinned != nil && lo >= c.pinBase && hi <= c.pinBase+int64(len(c.pinned)) {
			b := boundaryWithin(c.pinned, c.pinBase, z, lo, hi)
			c.lastIdx = b
			return b, nil
		}
		loBlk := c.rr.ElementBlock(lo)
		hiBlk := c.rr.ElementBlock(hi - 1)
		if loBlk == hiBlk {
			// The bracket sits inside one block. If the header bounds already
			// decide every candidate, the answer is a bracket endpoint and
			// the read is unnecessary.
			if nlo, nhi, done := c.skipByBounds(loBlk, z, lo, hi); done {
				// z below the block's minimum collapses the bracket to lo;
				// z at or above its maximum collapses it to hi. The re-check
				// at the top of the loop returns the collapsed point.
				lo, hi = nlo, nhi
				continue
			}
			vals, err := c.block(loBlk)
			if err != nil {
				return 0, err
			}
			base := c.rr.BlockStart(loBlk)
			c.pin(vals, loBlk, base)
			b := boundaryWithin(vals, base, z, lo, hi)
			c.lastIdx = b
			return b, nil
		}
		midBlk := (loBlk + hiBlk) / 2
		if nlo, nhi, done := c.skipByBounds(midBlk, z, lo, hi); done {
			lo, hi = nlo, nhi
			continue
		}
		vals, err := c.block(midBlk)
		if err != nil {
			return 0, err
		}
		base := c.rr.BlockStart(midBlk)
		firstPos := max(base, lo)
		lastPos := min(base+int64(len(vals))-1, hi-1)
		switch {
		case z < vals[firstPos-base]:
			hi = firstPos
		case z >= vals[lastPos-base]:
			lo = lastPos + 1
		default:
			c.pin(vals, midBlk, base)
			b := boundaryWithin(vals, base, z, lo, hi)
			c.lastIdx = b
			return b, nil
		}
	}
}

// LastBoundary returns the boundary index found by the most recent Rank
// call.
func (c *Cursor) LastBoundary() int64 { return c.lastIdx }

// Count returns the number of elements in the underlying partition.
func (c *Cursor) Count() int64 { return c.sum.Part.Count }

// Element returns the partition element at index i, preferring the pinned
// block; otherwise it costs one random block read.
func (c *Cursor) Element(i int64) (int64, error) {
	if i < 0 || i >= c.sum.Part.Count {
		return 0, fmt.Errorf("partition: element index %d out of [0,%d)", i, c.sum.Part.Count)
	}
	if c.pinned != nil && i >= c.pinBase && i < c.pinBase+int64(len(c.pinned)) {
		return c.pinned[i-c.pinBase], nil
	}
	idx := c.rr.ElementBlock(i)
	vals, err := c.block(idx)
	if err != nil {
		return 0, err
	}
	base := c.rr.BlockStart(idx)
	c.pin(vals, idx, base)
	return vals[i-base], nil
}

// SeekTo re-seeds the bracket from the summary for a single probe value z,
// so one cursor set can serve probes across disjoint subranges (the shared
// multi-target sweep). Summary.Bracket(z, z) is the tightest
// summary-derived bracket for z — at most one summary gap (≈ ε₁·count
// elements) wide — so a seek never costs more than a freshly opened cursor
// would. A pinned block is kept: if the new bracket lands inside it, the
// probe is still free.
func (c *Cursor) SeekTo(z int64) {
	c.lo, c.hi = c.sum.Bracket(z, z)
}

// NarrowUpper records that the query's upper filter moved down to the value
// of the last Rank probe: future probes are ≤ z, so the boundary cannot
// exceed the last result.
func (c *Cursor) NarrowUpper() {
	if c.lastIdx < c.hi {
		c.hi = c.lastIdx
	}
}

// NarrowLower records that the query's lower filter moved up to the value of
// the last Rank probe: future probes are ≥ z, so the boundary cannot fall
// below the last result.
func (c *Cursor) NarrowLower() {
	if c.lastIdx > c.lo {
		c.lo = c.lastIdx
	}
}
