package partition

import (
	"fmt"

	"repro/internal/disk"
)

// Cursor performs block-granular rank searches against one partition during
// an accurate query (Algorithm 8). It maintains a closed index bracket
// [lo, hi] guaranteed to contain boundary(z) — the number of partition
// elements ≤ z — for every probe value z in the query's current filter range
// [u, v]. The bracket is seeded from the partition summary (Summary.Bracket)
// and narrowed by the engine as the filters tighten.
//
// When the candidate range fits inside one disk block, the block is pinned
// in memory and subsequent probes cost no I/O — the paper's §2.4
// optimization.
type Cursor struct {
	sum     *Summary
	rr      *disk.RandomReader
	lo, hi  int64
	lastIdx int64
	pinning bool
	pinBase int64
	pinned  []int64
}

// NewCursor opens a cursor over the summarized partition for probe values
// confined to [u, v]. pinning enables the single-block caching optimization.
// The caller must Close the cursor.
func NewCursor(sum *Summary, u, v int64, pinning bool) (*Cursor, error) {
	rr, err := sum.Part.OpenRandom()
	if err != nil {
		return nil, err
	}
	lo, hi := sum.Bracket(u, v)
	return &Cursor{sum: sum, rr: rr, lo: lo, hi: hi, pinning: pinning}, nil
}

// Close releases the underlying file handle.
func (c *Cursor) Close() error { return c.rr.Close() }

// Reads returns the number of random block reads this cursor sent to the
// backend (block-cache hits excluded — they cost no disk access).
func (c *Cursor) Reads() int { return c.rr.Reads() }

// CacheHits returns the number of probes served by the device block cache.
func (c *Cursor) CacheHits() int { return c.rr.CacheHits() }

// Bracket returns the current candidate bracket (for tests and diagnostics).
func (c *Cursor) Bracket() (lo, hi int64) { return c.lo, c.hi }

// block reads block idx, counting the access, and pins it if pinning is
// enabled.
func (c *Cursor) block(idx int64) ([]int64, error) {
	if c.pinned != nil {
		per := int64(c.sum.Part.dev.ElementsPerBlock())
		if idx == c.pinBase/per {
			return c.pinned, nil
		}
	}
	return c.rr.Block(idx)
}

// pin caches a block so later probes in the same range are free.
func (c *Cursor) pin(vals []int64, base int64) {
	if c.pinning {
		c.pinned = vals
		c.pinBase = base
	}
}

// boundaryWithin binary-searches for boundary(z) inside vals (covering
// positions [base, base+len)), restricted to candidates [lo, hi].
func boundaryWithin(vals []int64, base, z, lo, hi int64) int64 {
	a := max(lo, base)
	b := min(base+int64(len(vals)), hi)
	for a < b {
		m := (a + b) / 2
		if vals[m-base] > z {
			b = m
		} else {
			a = m + 1
		}
	}
	return a
}

// Rank returns boundary(z) = the exact number of partition elements ≤ z,
// for z within the cursor's filter range. It performs O(log(blocks in
// bracket)) random block reads, or none once the bracket is pinned.
func (c *Cursor) Rank(z int64) (int64, error) {
	lo, hi := c.lo, c.hi
	per := int64(c.sum.Part.dev.ElementsPerBlock())
	for {
		if lo >= hi {
			c.lastIdx = lo
			return lo, nil
		}
		// Fully answerable from the pinned block?
		if c.pinned != nil && lo >= c.pinBase && hi <= c.pinBase+int64(len(c.pinned)) {
			b := boundaryWithin(c.pinned, c.pinBase, z, lo, hi)
			c.lastIdx = b
			return b, nil
		}
		loBlk := lo / per
		hiBlk := (hi - 1) / per
		if loBlk == hiBlk {
			vals, err := c.block(loBlk)
			if err != nil {
				return 0, err
			}
			base := loBlk * per
			c.pin(vals, base)
			b := boundaryWithin(vals, base, z, lo, hi)
			c.lastIdx = b
			return b, nil
		}
		midBlk := (loBlk + hiBlk) / 2
		vals, err := c.block(midBlk)
		if err != nil {
			return 0, err
		}
		base := midBlk * per
		firstPos := max(base, lo)
		lastPos := min(base+int64(len(vals))-1, hi-1)
		switch {
		case z < vals[firstPos-base]:
			hi = firstPos
		case z >= vals[lastPos-base]:
			lo = lastPos + 1
		default:
			c.pin(vals, base)
			b := boundaryWithin(vals, base, z, lo, hi)
			c.lastIdx = b
			return b, nil
		}
	}
}

// LastBoundary returns the boundary index found by the most recent Rank
// call.
func (c *Cursor) LastBoundary() int64 { return c.lastIdx }

// Count returns the number of elements in the underlying partition.
func (c *Cursor) Count() int64 { return c.sum.Part.Count }

// Element returns the partition element at index i, preferring the pinned
// block; otherwise it costs one random block read.
func (c *Cursor) Element(i int64) (int64, error) {
	if i < 0 || i >= c.sum.Part.Count {
		return 0, fmt.Errorf("partition: element index %d out of [0,%d)", i, c.sum.Part.Count)
	}
	per := int64(c.sum.Part.dev.ElementsPerBlock())
	if c.pinned != nil && i >= c.pinBase && i < c.pinBase+int64(len(c.pinned)) {
		return c.pinned[i-c.pinBase], nil
	}
	vals, err := c.block(i / per)
	if err != nil {
		return 0, err
	}
	base := (i / per) * per
	c.pin(vals, base)
	return vals[i-base], nil
}

// NarrowUpper records that the query's upper filter moved down to the value
// of the last Rank probe: future probes are ≤ z, so the boundary cannot
// exceed the last result.
func (c *Cursor) NarrowUpper() {
	if c.lastIdx < c.hi {
		c.hi = c.lastIdx
	}
}

// NarrowLower records that the query's lower filter moved up to the value of
// the last Rank probe: future probes are ≥ z, so the boundary cannot fall
// below the last result.
func (c *Cursor) NarrowLower() {
	if c.lastIdx > c.lo {
		c.lo = c.lastIdx
	}
}
