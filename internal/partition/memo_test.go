package partition

import "testing"

func TestProbeMemoDisabled(t *testing.T) {
	if m := NewProbeMemo(0); m != nil {
		t.Error("capacity 0 should disable the memo")
	}
	if m := NewProbeMemo(-5); m != nil {
		t.Error("negative capacity should disable the memo")
	}
}

func TestProbeMemoRankAndSides(t *testing.T) {
	m := NewProbeMemo(8)
	if _, ok := m.Lookup(10); ok {
		t.Fatal("empty memo returned an entry")
	}
	m.StoreRank(10, 100)
	e, ok := m.Lookup(10)
	if !ok || e.Rank != 100 || e.PredKnown || e.SuccKnown {
		t.Fatalf("after StoreRank: %+v, %v", e, ok)
	}
	// Side upgrades keep the rank and are independent of each other.
	m.SetPred(10, 100, 9, true)
	m.SetSucc(10, 100, 12, false)
	e, ok = m.Lookup(10)
	if !ok || e.Rank != 100 ||
		!e.PredKnown || !e.PredExists || e.Pred != 9 ||
		!e.SuccKnown || e.SuccExists {
		t.Fatalf("after side upgrades: %+v, %v", e, ok)
	}
	// Re-storing the rank must not drop the sides.
	m.StoreRank(10, 100)
	if e, _ := m.Lookup(10); !e.PredKnown || !e.SuccKnown {
		t.Fatalf("StoreRank dropped snap sides: %+v", e)
	}
}

func TestProbeMemoEviction(t *testing.T) {
	m := NewProbeMemo(4)
	for z := int64(0); z < 10; z++ {
		m.StoreRank(z, z*10)
	}
	if got := m.Len(); got != 4 {
		t.Errorf("Len = %d, want capacity 4", got)
	}
	if m.Cap() != 4 {
		t.Errorf("Cap = %d, want 4", m.Cap())
	}
	if m.ctr.evictions.Load() != 6 {
		t.Errorf("evictions = %d, want 6", m.ctr.evictions.Load())
	}
	// Whatever survived must still carry correct ranks.
	hits := 0
	for z := int64(0); z < 10; z++ {
		if e, ok := m.Lookup(z); ok {
			hits++
			if e.Rank != z*10 {
				t.Errorf("entry %d has rank %d, want %d", z, e.Rank, z*10)
			}
		}
	}
	if hits != 4 {
		t.Errorf("%d live entries, want 4", hits)
	}
}

// TestStoreMemoStats: memo traffic aggregates across versions through the
// store counters, and a published version gets a fresh memo.
func TestStoreMemoStats(t *testing.T) {
	store, err := NewStore(newDev(t), Config{Kappa: 4, Eps1: 0.1, ProbeMemoEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	v1 := store.Pin()
	defer v1.Release()
	m1 := v1.Memo()
	if m1 == nil {
		t.Fatal("enabled store has no memo on its initial version")
	}
	m1.Lookup(5)       // miss
	m1.StoreRank(5, 1) // store
	m1.Lookup(5)       // hit
	st := store.MemoStats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v; want 1 hit, 1 miss, 1 store", st)
	}
	if st.Capacity != 16 || st.Entries != 1 {
		t.Errorf("occupancy = %d/%d; want 1/16", st.Entries, st.Capacity)
	}

	// Publishing a new version starts an empty memo but keeps the counters.
	if _, err := store.AddBatch([]int64{3, 1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	v2 := store.Pin()
	defer v2.Release()
	m2 := v2.Memo()
	if m2 == nil || m2 == m1 {
		t.Fatal("publish did not attach a fresh memo")
	}
	if _, ok := m2.Lookup(5); ok {
		t.Error("new version's memo inherited entries")
	}
	st = store.MemoStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("after publish: %+v; counters must aggregate across versions", st)
	}
	if st.Entries != 0 {
		t.Errorf("current version occupancy = %d, want 0", st.Entries)
	}
}

// TestStoreMemoDisabled: a store with memoization off hands out nil memos
// and all-zero stats.
func TestStoreMemoDisabled(t *testing.T) {
	store, err := NewStore(newDev(t), Config{Kappa: 4, Eps1: 0.1, ProbeMemoEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	v := store.Pin()
	defer v.Release()
	if v.Memo() != nil {
		t.Error("disabled store attached a memo")
	}
	if st := store.MemoStats(); st != (MemoStats{}) {
		t.Errorf("stats = %+v, want zero value", st)
	}
}
