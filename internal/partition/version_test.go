package partition

import (
	"testing"
)

// seqBatch returns base..base+n-1.
func seqBatch(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// TestPinKeepsMergedInputsAlive is the snapshot-isolation core contract: a
// pinned version keeps the partition files a later merge supersedes on
// disk (and readable) past the commit that would otherwise remove them;
// releasing the pin reclaims them.
func TestPinKeepsMergedInputsAlive(t *testing.T) {
	dev := newDev(t)
	s, err := NewStore(dev, Config{Kappa: 2, Eps1: 0.1, SortMemElements: 1 << 16, SpillBatches: true})
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 2; step++ {
		if _, err := s.AddBatch(seqBatch(int64(step)*1000, 40), step); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit("MANIFEST.json"); err != nil {
		t.Fatal(err)
	}

	v := s.Pin()
	if v.PartitionCount() != 2 || v.TotalCount() != 80 {
		t.Fatalf("pinned version: %d partitions / %d elements, want 2 / 80", v.PartitionCount(), v.TotalCount())
	}

	// Step 3 merges the two level-0 partitions (κ=2) and commits: without
	// the pin, the inputs would be removed here.
	if _, err := s.AddBatch(seqBatch(3000, 40), 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("MANIFEST.json"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"part-000000.dat", "part-000002.dat"} {
		if !dev.Exists(name) {
			t.Errorf("%s reclaimed while a version pinning it was live", name)
		}
	}
	// The pinned snapshot is still fully readable (a query mid-flight).
	for _, sum := range v.Entries() {
		r, err := sum.Part.OpenSequential()
		if err != nil {
			t.Fatalf("read pinned partition %s: %v", sum.Part.Name(), err)
		}
		n := 0
		for {
			_, ok, err := r.Next()
			if err != nil {
				t.Fatalf("scan pinned partition: %v", err)
			}
			if !ok {
				break
			}
			n++
		}
		r.Close() //nolint:errcheck
		if int64(n) != sum.Part.Count {
			t.Errorf("pinned partition %s: read %d elements, want %d", sum.Part.Name(), n, sum.Part.Count)
		}
	}
	// The new current version sees the merged layout.
	if got := s.PartitionCount(); got != 1 {
		t.Errorf("current version has %d partitions, want 1 (merged)", got)
	}

	v.Release()
	for _, name := range []string{"part-000000.dat", "part-000002.dat"} {
		if dev.Exists(name) {
			t.Errorf("%s not reclaimed after the last pin released", name)
		}
	}
	if got := s.LiveVersions(); got != 1 {
		t.Errorf("%d live versions after release, want 1 (current)", got)
	}
}

// TestReclaimWaitsForCommit pins the other half of the reclaim condition:
// even with no pins, files retired by a merge survive until a manifest
// without them is durably committed.
func TestReclaimWaitsForCommit(t *testing.T) {
	dev := newDev(t)
	s, err := NewStore(dev, Config{Kappa: 2, Eps1: 0.1, SortMemElements: 1 << 16, SpillBatches: true})
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 3; step++ {
		if _, err := s.AddBatch(seqBatch(int64(step)*1000, 40), step); err != nil {
			t.Fatal(err)
		}
	}
	// Step 3 merged parts 0 and 2; no commit yet — both must survive.
	for _, name := range []string{"part-000000.dat", "part-000002.dat"} {
		if !dev.Exists(name) {
			t.Errorf("%s removed before any commit", name)
		}
	}
	if err := s.Commit("MANIFEST.json"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"part-000000.dat", "part-000002.dat"} {
		if dev.Exists(name) {
			t.Errorf("%s survives a commit with no pins", name)
		}
	}
}

// TestSealInstallRoundtrip drives the deferred path at the store level:
// Seal leaves a durable spill + pending manifest entry, InstallOne folds it
// into a partition and retires the spill, and a LoadStore in between
// recovers the pending entry.
func TestSealInstallRoundtrip(t *testing.T) {
	dev := newDev(t)
	cfg := Config{Kappa: 2, Eps1: 0.1, SortMemElements: 1 << 16, SpillBatches: true}
	s, err := NewStore(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	step, err := s.Seal(seqBatch(1000, 50), "MANIFEST.json")
	if err != nil {
		t.Fatal(err)
	}
	if step != 1 {
		t.Fatalf("sealed step = %d, want 1", step)
	}
	if s.PendingSteps() != 1 || s.PendingElements() != 50 {
		t.Fatalf("pending = %d steps / %d elements, want 1 / 50", s.PendingSteps(), s.PendingElements())
	}
	if s.TotalCount() != 50 || s.Steps() != 1 {
		t.Fatalf("TotalCount/Steps = %d/%d, want 50/1", s.TotalCount(), s.Steps())
	}
	if s.PartitionCount() != 0 {
		t.Fatalf("PartitionCount = %d before install", s.PartitionCount())
	}
	if !dev.Exists("batch-raw-000000.dat") {
		t.Fatal("seal left no spill")
	}

	// A reload at this point must recover the pending entry, not drop it.
	loaded, err := LoadStore(dev, "MANIFEST.json", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.PendingSteps() != 1 || loaded.Steps() != 1 || loaded.TotalCount() != 50 {
		t.Fatalf("reloaded: pending=%d steps=%d total=%d, want 1/1/50", loaded.PendingSteps(), loaded.Steps(), loaded.TotalCount())
	}

	bd, installed, err := loaded.InstallOne("MANIFEST.json")
	if err != nil {
		t.Fatal(err)
	}
	if installed != 1 {
		t.Fatalf("installed step = %d, want 1", installed)
	}
	if bd.SortIO.Total() == 0 {
		t.Error("install reported no maintenance I/O")
	}
	if loaded.PendingSteps() != 0 || loaded.PartitionCount() != 1 {
		t.Fatalf("after install: pending=%d partitions=%d, want 0/1", loaded.PendingSteps(), loaded.PartitionCount())
	}
	if dev.Exists("batch-raw-000000.dat") {
		t.Error("spill survived its install's commit")
	}
	// Idempotent when drained.
	if _, installed, err := loaded.InstallOne("MANIFEST.json"); err != nil || installed != 0 {
		t.Fatalf("InstallOne on drained store: step=%d err=%v", installed, err)
	}
}
