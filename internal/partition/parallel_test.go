package partition

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/disk"
)

// buildPair loads identical data into a serial store and a parallel-merge
// store.
func buildPair(t *testing.T, workers int, steps, batch int, seed int64) (*Store, *Store) {
	t.Helper()
	mk := func(mw int) *Store {
		dev, err := disk.NewManager(t.TempDir(), 64)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStore(dev, Config{Kappa: 2, Eps1: 0.2, MergeWorkers: mw})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial, parallel := mk(1), mk(workers)
	rng := rand.New(rand.NewSource(seed))
	for step := 1; step <= steps; step++ {
		data := make([]int64, batch)
		for i := range data {
			data[i] = rng.Int63n(1 << 20)
		}
		if _, err := serial.AddBatch(data, step); err != nil {
			t.Fatal(err)
		}
		if _, err := parallel.AddBatch(data, step); err != nil {
			t.Fatal(err)
		}
	}
	return serial, parallel
}

func readStore(t *testing.T, s *Store) [][]int64 {
	t.Helper()
	var out [][]int64
	for _, e := range s.ChronologicalEntries() {
		r, err := e.Part.OpenSequential()
		if err != nil {
			t.Fatal(err)
		}
		var part []int64
		for {
			v, ok, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			part = append(part, v)
		}
		r.Close() //nolint:errcheck
		out = append(out, part)
	}
	return out
}

func TestParallelMergeEquivalence(t *testing.T) {
	for _, workers := range []int{2, 4, 7} {
		serial, parallel := buildPair(t, workers, 15, 200, int64(workers))
		a, b := readStore(t, serial), readStore(t, parallel)
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d vs %d partitions", workers, len(a), len(b))
		}
		for i := range a {
			if !slices.Equal(a[i], b[i]) {
				t.Fatalf("workers=%d: partition %d differs", workers, i)
			}
		}
		// Summaries must be identical too (identical partitions + same ε₁).
		as, bs := serial.ChronologicalEntries(), parallel.ChronologicalEntries()
		for i := range as {
			if !slices.Equal(as[i].Values, bs[i].Values) || !slices.Equal(as[i].Pos, bs[i].Pos) {
				t.Fatalf("workers=%d: summary %d differs", workers, i)
			}
		}
	}
}

func TestParallelMergeDuplicateHeavy(t *testing.T) {
	// Few distinct values stress split-point dedup and range boundaries.
	mkData := func(rng *rand.Rand) []int64 {
		data := make([]int64, 300)
		for i := range data {
			data[i] = rng.Int63n(4)
		}
		return data
	}
	devA, _ := disk.NewManager(t.TempDir(), 64)
	devB, _ := disk.NewManager(t.TempDir(), 64)
	sa, err := NewStore(devA, Config{Kappa: 2, Eps1: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStore(devB, Config{Kappa: 2, Eps1: 0.25, MergeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rngA := rand.New(rand.NewSource(9))
	rngB := rand.New(rand.NewSource(9))
	for step := 1; step <= 9; step++ {
		if _, err := sa.AddBatch(mkData(rngA), step); err != nil {
			t.Fatal(err)
		}
		if _, err := sb.AddBatch(mkData(rngB), step); err != nil {
			t.Fatal(err)
		}
	}
	a, b := readStore(t, sa), readStore(t, sb)
	if len(a) != len(b) {
		t.Fatalf("partition counts differ")
	}
	for i := range a {
		if !slices.Equal(a[i], b[i]) {
			t.Fatalf("partition %d differs on duplicate-heavy data", i)
		}
	}
}

func TestSplitPoints(t *testing.T) {
	p := &Partition{Count: 100}
	e := entry{p, &Summary{Part: p, Values: []int64{1, 25, 50, 75, 100}, Pos: []int64{0, 24, 49, 74, 99}}}
	sp := splitPoints([]entry{e}, 4)
	if len(sp) == 0 || !slices.IsSorted(sp) {
		t.Errorf("splits = %v", sp)
	}
	// Duplicate summary values collapse.
	e2 := entry{p, &Summary{Part: p, Values: []int64{5, 5, 5, 5, 5}, Pos: []int64{0, 1, 2, 3, 4}}}
	sp = splitPoints([]entry{e2}, 4)
	if len(sp) > 1 {
		t.Errorf("duplicate splits not collapsed: %v", sp)
	}
}
