package partition

import (
	"path"
	"slices"
	"testing"
)

// TestCommitDefersRemovals pins the crash-consistent removal order: files
// superseded by a merge (the merged-away inputs) and raw batch spills must
// survive until Commit — the last committed manifest may still reference
// them — and disappear right after it.
func TestCommitDefersRemovals(t *testing.T) {
	dev := newDev(t)
	s, err := NewStore(dev, Config{Kappa: 2, Eps1: 0.1, SortMemElements: 1 << 16, SpillBatches: true})
	if err != nil {
		t.Fatal(err)
	}
	batch := func(base int64) []int64 {
		out := make([]int64, 40)
		for i := range out {
			out[i] = base + int64(i)
		}
		return out
	}
	for step := 1; step <= 2; step++ {
		if _, err := s.AddBatch(batch(int64(step)*1000), step); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit("MANIFEST.json"); err != nil {
		t.Fatal(err)
	}
	// Step 3 merges the two level-0 partitions (κ=2): inputs 0 and 1 are
	// superseded but must still exist before the next commit.
	bd, err := s.AddBatch(batch(3000), 3)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Merges != 1 {
		t.Fatalf("Merges = %d, want 1", bd.Merges)
	}
	for _, name := range []string{"part-000000.dat", "part-000001.dat"} {
		if !dev.Exists(name) {
			t.Errorf("%s removed before commit — a crash here would break the committed manifest", name)
		}
	}
	if err := s.Commit("MANIFEST.json"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"part-000000.dat", "part-000001.dat"} {
		if dev.Exists(name) {
			t.Errorf("%s still present after commit", name)
		}
	}
	names, err := dev.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		for _, pat := range tempFilePatterns {
			if ok, _ := path.Match(pat, n); ok {
				t.Errorf("unexpected leftover after commit: %s", n)
			}
		}
	}

	// The committed state must load, and loading must not touch live files.
	s2, err := LoadStore(dev, "MANIFEST.json", Config{Kappa: 2, Eps1: 0.1, SortMemElements: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if s2.TotalCount() != s.TotalCount() || s2.Steps() != 3 {
		t.Errorf("reloaded store = %d elements / %d steps, want %d / 3", s2.TotalCount(), s2.Steps(), s.TotalCount())
	}
}

// TestCollectOrphans pins the recovery collector: debris matching the
// install patterns goes, everything referenced (or foreign) stays.
func TestCollectOrphans(t *testing.T) {
	dev := newDev(t)
	write := func(name string) {
		t.Helper()
		w, err := dev.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(1); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("part-000007.dat")      // referenced: must stay
	write("part-000099.dat")      // unreferenced partition: orphan
	write("batch-raw-000099.dat") // spill: orphan
	write("sort-000099-0")        // external-sort temp: orphan
	write("pmerge-000099-r0.tmp") // parallel-merge run: orphan
	write("unrelated.bin")        // foreign file: must stay
	if err := dev.WriteMeta("MANIFEST.json", []byte("{}")); err != nil {
		t.Fatal(err)
	}

	removed, err := CollectOrphans(dev, map[string]bool{"MANIFEST.json": true, "part-000007.dat": true})
	if err != nil {
		t.Fatal(err)
	}
	slices.Sort(removed)
	want := []string{"batch-raw-000099.dat", "part-000099.dat", "pmerge-000099-r0.tmp", "sort-000099-0"}
	if !slices.Equal(removed, want) {
		t.Errorf("removed %v, want %v", removed, want)
	}
	for _, name := range []string{"part-000007.dat", "unrelated.bin", "MANIFEST.json"} {
		if !dev.Exists(name) {
			t.Errorf("%s wrongly collected", name)
		}
	}

	// Namespaced views only collect their own namespace.
	view, err := dev.Namespace("streams/other")
	if err != nil {
		t.Fatal(err)
	}
	w, err := view.Create("part-000001.dat")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := CollectOrphans(dev, map[string]bool{"part-000007.dat": true}); err != nil {
		t.Fatal(err)
	}
	if !view.Exists("part-000001.dat") {
		t.Error("root-view collection reached into a nested namespace")
	}
	if removed, err := CollectOrphans(view, nil); err != nil || len(removed) != 1 {
		t.Errorf("view collection = %v, %v; want 1 removal", removed, err)
	}
}
