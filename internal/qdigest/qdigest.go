// Package qdigest implements the Q-Digest quantile sketch of Shrivastava,
// Buragohain, Agrawal and Suri (SenSys 2004), the second pure-streaming
// baseline in the paper's evaluation. A Q-Digest summarizes a stream over a
// fixed integer universe [0, 2^bits) in O((1/ε)·log U) space with rank error
// εn.
//
// The digest is a sparse binary tree over the universe: node 1 is the root
// covering the whole range, node k has children 2k and 2k+1, and leaves sit
// at depth `bits`. Each node carries a count; the compression invariant
// keeps every non-root node's family (itself + sibling + parent) above the
// threshold ⌊εn / bits⌋, pushing sparse counts toward the root.
package qdigest

import (
	"fmt"
	"math"
	mathbits "math/bits"
	"sort"
)

// Digest is a Q-Digest sketch. Construct with New. Not safe for concurrent
// use.
type Digest struct {
	eps      float64
	bits     uint // universe is [0, 2^bits)
	n        int64
	counts   map[uint64]int64 // node id -> count
	sinceCmp int64
	cmpEvery int64
	// sizeTrigger compresses when the map doubles past the last compressed
	// size (never below a floor of 4·bits/ε). The multiplicative schedule
	// keeps insert cost amortized O(log n) even when the digest's
	// steady-state size drifts, where a fixed cadence degenerates into
	// compressing an unshrinkable map every few inserts.
	sizeTrigger int
	floor       int
	maxNodes    int
}

// New returns an empty digest with error eps over the universe [0, 2^bits).
// bits must be in [1, 62].
func New(eps float64, universeBits uint) (*Digest, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("qdigest: eps must be in (0,1), got %g", eps)
	}
	if universeBits < 1 || universeBits > 62 {
		return nil, fmt.Errorf("qdigest: universe bits must be in [1,62], got %d", universeBits)
	}
	every := int64(1.0 / eps)
	if every < 1 {
		every = 1
	}
	floor := int(4*float64(universeBits)/eps) + 64
	return &Digest{
		eps:         eps,
		bits:        universeBits,
		counts:      make(map[uint64]int64),
		cmpEvery:    every,
		sizeTrigger: floor,
		floor:       floor,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(eps float64, universeBits uint) *Digest {
	d, err := New(eps, universeBits)
	if err != nil {
		panic(err)
	}
	return d
}

// Epsilon returns the error parameter.
func (d *Digest) Epsilon() float64 { return d.eps }

// UniverseBits returns the number of universe bits.
func (d *Digest) UniverseBits() uint { return d.bits }

// Count returns the number of inserted elements.
func (d *Digest) Count() int64 { return d.n }

// NodeCount returns the current number of tree nodes with non-zero count.
func (d *Digest) NodeCount() int { return len(d.counts) }

// MemoryBytes estimates the live footprint: ~16 bytes of payload per map
// entry plus map overhead (we charge 48 bytes per entry, a typical Go map
// cost for uint64->int64).
func (d *Digest) MemoryBytes() int64 { return int64(len(d.counts)) * 48 }

// MaxMemoryBytes estimates the peak footprint.
func (d *Digest) MaxMemoryBytes() int64 { return int64(d.maxNodes) * 48 }

// Reset empties the digest, keeping parameters.
func (d *Digest) Reset() {
	d.n = 0
	d.counts = make(map[uint64]int64)
	d.sinceCmp = 0
	d.sizeTrigger = d.floor
}

// Insert adds value v. v must lie in [0, 2^bits).
func (d *Digest) Insert(v int64) error {
	if v < 0 || uint64(v) >= uint64(1)<<d.bits {
		return fmt.Errorf("qdigest: value %d outside universe [0,2^%d)", v, d.bits)
	}
	leaf := (uint64(1) << d.bits) | uint64(v)
	d.counts[leaf]++
	d.n++
	if len(d.counts) > d.maxNodes {
		d.maxNodes = len(d.counts)
	}
	d.sinceCmp++
	if d.sinceCmp >= d.cmpEvery && len(d.counts) >= d.sizeTrigger {
		d.Compress()
		d.sinceCmp = 0
		next := 2 * len(d.counts)
		if next < d.floor {
			next = d.floor
		}
		d.sizeTrigger = next
	}
	return nil
}

// threshold is ⌊εn / bits⌋, the Q-Digest family floor.
func (d *Digest) threshold() int64 {
	return int64(d.eps * float64(d.n) / float64(d.bits))
}

// Compress restores the digest property, merging undersized families
// upward. Nodes are bucketed by depth and processed bottom-up; a merge
// appends the parent to its depth bucket, so cascades complete in one pass
// with no sorting (cost O(size + merges)).
func (d *Digest) Compress() {
	thr := d.threshold()
	if thr < 1 {
		return
	}
	levels := make([][]uint64, d.bits+1)
	for id := range d.counts {
		dep := depthOf(id)
		levels[dep] = append(levels[dep], id)
	}
	for dep := int(d.bits); dep >= 1; dep-- {
		for _, id := range levels[dep] {
			c, ok := d.counts[id]
			if !ok {
				continue // already merged away as someone's sibling
			}
			sib := id ^ 1
			parent := id >> 1
			family := c + d.counts[sib] + d.counts[parent]
			if family < thr {
				_, parentExisted := d.counts[parent]
				d.counts[parent] = family
				delete(d.counts, id)
				delete(d.counts, sib)
				if !parentExisted {
					levels[dep-1] = append(levels[dep-1], parent)
				}
			}
		}
	}
	if len(d.counts) > d.maxNodes {
		d.maxNodes = len(d.counts)
	}
}

// depthOf returns the tree depth of node id (root = 0).
func depthOf(id uint64) int {
	return mathbits.Len64(id) - 1
}

// nodeRange returns the value interval [lo, hi] covered by node id.
func (d *Digest) nodeRange(id uint64) (lo, hi uint64) {
	depth := uint(0)
	for x := id; x > 1; x >>= 1 {
		depth++
	}
	span := d.bits - depth
	lo = (id - (uint64(1) << depth)) << span
	hi = lo + (uint64(1) << span) - 1
	return lo, hi
}

// Query returns a value whose rank approximates r (clamped to [1, n]).
// Traversal follows the canonical Q-Digest answer procedure: nodes sorted by
// (hi, depth descending) — i.e. value order with more specific nodes first —
// accumulating counts until r is reached.
func (d *Digest) Query(r int64) (int64, bool) {
	if d.n == 0 {
		return 0, false
	}
	if r < 1 {
		r = 1
	}
	if r > d.n {
		r = d.n
	}
	type nd struct {
		id     uint64
		lo, hi uint64
		c      int64
	}
	nodes := make([]nd, 0, len(d.counts))
	for id, c := range d.counts {
		lo, hi := d.nodeRange(id)
		nodes = append(nodes, nd{id, lo, hi, c})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].hi != nodes[j].hi {
			return nodes[i].hi < nodes[j].hi
		}
		return nodes[i].lo > nodes[j].lo // narrower (deeper) first
	})
	cum := int64(0)
	for _, nd := range nodes {
		cum += nd.c
		if cum >= r {
			return int64(nd.hi), true
		}
	}
	return int64(nodes[len(nodes)-1].hi), true
}

// Quantile returns an approximation of the φ-quantile.
func (d *Digest) Quantile(phi float64) (int64, bool) {
	if d.n == 0 {
		return 0, false
	}
	r := int64(math.Ceil(phi * float64(d.n)))
	return d.Query(r)
}

// RankEstimate estimates the rank of v: the sum of counts of nodes whose
// range lies entirely at or below v, plus half the counts of straddling
// nodes.
func (d *Digest) RankEstimate(v int64) int64 {
	if v < 0 {
		return 0
	}
	uv := uint64(v)
	est := int64(0)
	for id, c := range d.counts {
		lo, hi := d.nodeRange(id)
		switch {
		case hi <= uv:
			est += c
		case lo <= uv && uv < hi:
			est += c / 2
		}
	}
	return est
}

// checkInvariant verifies the counts sum to n; used by tests.
func (d *Digest) checkInvariant() error {
	total := int64(0)
	for _, c := range d.counts {
		if c < 0 {
			return fmt.Errorf("qdigest: negative count")
		}
		total += c
	}
	if total != d.n {
		return fmt.Errorf("qdigest: count sum %d != n %d", total, d.n)
	}
	return nil
}
