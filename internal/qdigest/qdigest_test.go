package qdigest

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

func exactRank(sorted []int64, v int64) int64 {
	return int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > v }))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 16); err == nil {
		t.Error("eps=0: want error")
	}
	if _, err := New(1.0, 16); err == nil {
		t.Error("eps=1: want error")
	}
	if _, err := New(0.1, 0); err == nil {
		t.Error("bits=0: want error")
	}
	if _, err := New(0.1, 63); err == nil {
		t.Error("bits=63: want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew invalid: want panic")
		}
	}()
	MustNew(0, 8)
}

func TestInsertRangeValidation(t *testing.T) {
	d := MustNew(0.1, 8)
	if err := d.Insert(-1); err == nil {
		t.Error("negative: want error")
	}
	if err := d.Insert(256); err == nil {
		t.Error("2^bits: want error")
	}
	if err := d.Insert(255); err != nil {
		t.Errorf("255: %v", err)
	}
	if d.UniverseBits() != 8 || d.Epsilon() != 0.1 {
		t.Error("accessors wrong")
	}
}

func TestEmpty(t *testing.T) {
	d := MustNew(0.1, 16)
	if _, ok := d.Query(1); ok {
		t.Error("Query on empty: want ok=false")
	}
	if _, ok := d.Quantile(0.5); ok {
		t.Error("Quantile on empty: want ok=false")
	}
}

func TestNodeRange(t *testing.T) {
	d := MustNew(0.1, 3) // universe [0,8)
	if lo, hi := d.nodeRange(1); lo != 0 || hi != 7 {
		t.Errorf("root range = [%d,%d]", lo, hi)
	}
	if lo, hi := d.nodeRange(2); lo != 0 || hi != 3 {
		t.Errorf("left child = [%d,%d]", lo, hi)
	}
	if lo, hi := d.nodeRange(3); lo != 4 || hi != 7 {
		t.Errorf("right child = [%d,%d]", lo, hi)
	}
	if lo, hi := d.nodeRange(8 + 5); lo != 5 || hi != 5 {
		t.Errorf("leaf 5 = [%d,%d]", lo, hi)
	}
}

// qdigestBound is the sketch's rank error guarantee: εn (the log U factor is
// inside the compression threshold). We allow a small slack constant for
// rounding.
func checkAccuracy(t *testing.T, d *Digest, sorted []int64, eps float64) {
	t.Helper()
	n := int64(len(sorted))
	bound := int64(math.Ceil(1.5*eps*float64(n))) + 1
	for _, phi := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		r := int64(math.Ceil(phi * float64(n)))
		if r < 1 {
			r = 1
		}
		v, ok := d.Query(r)
		if !ok {
			t.Fatalf("Query(%d) not ok", r)
		}
		hi := exactRank(sorted, v)
		lo := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })) + 1
		if hi < r-bound || lo > r+bound {
			t.Errorf("phi=%.2f r=%d: value %d rank span [%d,%d] outside ±%d", phi, r, v, lo, hi, bound)
		}
	}
}

func TestAccuracyUniform(t *testing.T) {
	for _, eps := range []float64{0.05, 0.01} {
		d := MustNew(eps, 20)
		rng := rand.New(rand.NewSource(11))
		data := make([]int64, 40000)
		for i := range data {
			data[i] = rng.Int63n(1 << 20)
			if err := d.Insert(data[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.checkInvariant(); err != nil {
			t.Fatal(err)
		}
		slices.Sort(data)
		checkAccuracy(t, d, data, eps)
	}
}

func TestAccuracySkewed(t *testing.T) {
	d := MustNew(0.02, 20)
	rng := rand.New(rand.NewSource(13))
	z := rand.NewZipf(rng, 1.3, 1, 1<<20-1)
	data := make([]int64, 40000)
	for i := range data {
		data[i] = int64(z.Uint64())
		if err := d.Insert(data[i]); err != nil {
			t.Fatal(err)
		}
	}
	slices.Sort(data)
	checkAccuracy(t, d, data, 0.02)
}

func TestSpaceBound(t *testing.T) {
	eps := 0.01
	bitsU := uint(20)
	d := MustNew(eps, bitsU)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200000; i++ {
		if err := d.Insert(rng.Int63n(1 << 20)); err != nil {
			t.Fatal(err)
		}
	}
	d.Compress()
	// Space is O((log U)/ε); allow constant 6.
	bound := int(6 * float64(bitsU) / eps)
	if d.NodeCount() > bound {
		t.Errorf("nodes = %d, bound = %d", d.NodeCount(), bound)
	}
	if d.MemoryBytes() != int64(d.NodeCount())*48 {
		t.Error("MemoryBytes mismatch")
	}
	if d.MaxMemoryBytes() < d.MemoryBytes() {
		t.Error("peak below current")
	}
}

func TestReset(t *testing.T) {
	d := MustNew(0.1, 16)
	for i := int64(0); i < 100; i++ {
		d.Insert(i) //nolint:errcheck
	}
	d.Reset()
	if d.Count() != 0 || d.NodeCount() != 0 {
		t.Error("Reset incomplete")
	}
	d.Insert(7) //nolint:errcheck
	if v, ok := d.Query(1); !ok || v != 7 {
		t.Errorf("after reset Query = %d,%v", v, ok)
	}
}

func TestRankEstimate(t *testing.T) {
	d := MustNew(0.02, 16)
	data := make([]int64, 20000)
	rng := rand.New(rand.NewSource(19))
	for i := range data {
		data[i] = rng.Int63n(1 << 16)
		d.Insert(data[i]) //nolint:errcheck
	}
	slices.Sort(data)
	n := float64(len(data))
	for _, v := range []int64{data[100], data[10000], data[19999]} {
		est := d.RankEstimate(v)
		exact := exactRank(data, v)
		if math.Abs(float64(est-exact)) > 0.1*n {
			t.Errorf("RankEstimate(%d) = %d, exact %d", v, est, exact)
		}
	}
	if d.RankEstimate(-1) != 0 {
		t.Error("RankEstimate(-1) should be 0")
	}
}

// Property: counts always sum to n and quantile queries stay in the
// inserted value range.
func TestQuickDigestInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		d := MustNew(0.05, 16)
		mn, mx := int64(math.MaxInt64), int64(math.MinInt64)
		for _, x := range raw {
			v := int64(x)
			if err := d.Insert(v); err != nil {
				return false
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if err := d.checkInvariant(); err != nil {
			return false
		}
		v, ok := d.Quantile(0.5)
		if !ok {
			return false
		}
		// Q-Digest answers are node upper bounds: they may overshoot the max
		// by at most the node range, but never undershoot the min.
		return v >= mn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
