package extsort

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/disk"
)

// newMemDev builds a manager over the in-memory backend with the same
// geometry as newDev, so the storage seam can be exercised without files.
func newMemDev(t *testing.T) *disk.Manager {
	t.Helper()
	m, err := disk.NewManagerOn(disk.NewMemBackend(), 64) // 8 elements per block
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSortFileMemBackend runs the external sort end to end on the memory
// backend: spill runs, merge passes and the final sorted file all live on
// the backend, with identical results and I/O accounting semantics.
func TestSortFileMemBackend(t *testing.T) {
	dev := newMemDev(t)
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = rng.Int63n(10_000) - 5000
	}
	writeFile(t, dev, "in.dat", vals)

	// MemElements 64 forces multiple runs and a real multi-way merge.
	n, err := SortFile(dev, "in.dat", "out.dat", Config{MemElements: 64})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(vals)) {
		t.Fatalf("sorted %d elements, want %d", n, len(vals))
	}
	want := slices.Clone(vals)
	slices.Sort(want)
	if got := readAll(t, dev, "out.dat"); !slices.Equal(got, want) {
		t.Error("mem-backend sort produced wrong order")
	}
	if st := dev.Stats(); st.SeqWrites == 0 || st.SeqReads == 0 {
		t.Errorf("external sort on mem backend accounted no I/O: %+v", st)
	}
}

// TestMergeFilesMemBackend checks the k-way file merge over the seam.
func TestMergeFilesMemBackend(t *testing.T) {
	dev := newMemDev(t)
	writeFile(t, dev, "a.dat", []int64{1, 4, 7})
	writeFile(t, dev, "b.dat", []int64{2, 5, 8})
	writeFile(t, dev, "c.dat", []int64{3, 6, 9})
	if err := MergeFiles(dev, []string{"a.dat", "b.dat", "c.dat"}, "m.dat"); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := readAll(t, dev, "m.dat"); !slices.Equal(got, want) {
		t.Errorf("merged = %v, want %v", got, want)
	}
}
