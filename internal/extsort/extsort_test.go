package extsort

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/disk"
)

func newDev(t *testing.T) *disk.Manager {
	t.Helper()
	m, err := disk.NewManager(t.TempDir(), 64) // 8 elements per block
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func writeFile(t *testing.T, dev *disk.Manager, name string, vals []int64) {
	t.Helper()
	w, err := dev.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSlice(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, dev *disk.Manager, name string) []int64 {
	t.Helper()
	r, err := dev.OpenSequential(name)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []int64
	for {
		v, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestSliceSourcePanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on unsorted input")
		}
	}()
	SliceSource([]int64{3, 1, 2})
}

func TestMergerBasic(t *testing.T) {
	m, err := NewMerger(
		SliceSource([]int64{1, 4, 7}),
		SliceSource([]int64{2, 5, 8}),
		SliceSource([]int64{3, 6, 9}),
		SliceSource(nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		v, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !slices.Equal(got, want) {
		t.Errorf("merged = %v, want %v", got, want)
	}
}

func TestMergerEmpty(t *testing.T) {
	m, err := NewMerger()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Next(); ok {
		t.Error("empty merger should be exhausted")
	}
}

// Property: merging any set of sorted slices yields the sorted multiset
// union.
func TestQuickMerger(t *testing.T) {
	f := func(a, b, c []int64) bool {
		slices.Sort(a)
		slices.Sort(b)
		slices.Sort(c)
		m, err := NewMerger(SliceSource(a), SliceSource(b), SliceSource(c))
		if err != nil {
			return false
		}
		var got []int64
		for {
			v, ok, err := m.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			got = append(got, v)
		}
		want := append(append(append([]int64{}, a...), b...), c...)
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSortSlice(t *testing.T) {
	dev := newDev(t)
	data := []int64{5, 3, 9, 1, 1, 7}
	if err := SortSlice(dev, data, "out"); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, dev, "out")
	want := []int64{1, 1, 3, 5, 7, 9}
	if !slices.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// Input must be untouched.
	if !slices.Equal(data, []int64{5, 3, 9, 1, 1, 7}) {
		t.Error("SortSlice mutated its input")
	}
}

func TestSortFileSmall(t *testing.T) {
	dev := newDev(t)
	writeFile(t, dev, "in", []int64{9, 2, 5, 2, 8})
	n, err := SortFile(dev, "in", "out", Config{MemElements: 8})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("count = %d, want 5", n)
	}
	got := readAll(t, dev, "out")
	if !slices.Equal(got, []int64{2, 2, 5, 8, 9}) {
		t.Errorf("got %v", got)
	}
}

func TestSortFileEmpty(t *testing.T) {
	dev := newDev(t)
	writeFile(t, dev, "in", nil)
	n, err := SortFile(dev, "in", "out", Config{MemElements: 8})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("count = %d", n)
	}
	if got := readAll(t, dev, "out"); len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestSortFileMultiRunMultiPass(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(42))
	data := make([]int64, 1000)
	for i := range data {
		data[i] = rng.Int63n(1 << 30)
	}
	writeFile(t, dev, "in", data)
	// MemElements=8 forces 125 runs; FanIn=4 forces multiple merge passes.
	n, err := SortFile(dev, "in", "out", Config{MemElements: 8, FanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Errorf("count = %d", n)
	}
	got := readAll(t, dev, "out")
	want := slices.Clone(data)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Error("multi-pass sort output incorrect")
	}
	// All intermediate run files must be gone: only in and out remain.
	if dev.Exists("extsort-run-0") {
		t.Error("run files not cleaned up")
	}
}

func TestSortFileConfigValidation(t *testing.T) {
	dev := newDev(t)
	writeFile(t, dev, "in", []int64{1})
	if _, err := SortFile(dev, "in", "out", Config{MemElements: 0}); err == nil {
		t.Error("want error for MemElements=0")
	}
	if _, err := SortFile(dev, "in", "out", Config{MemElements: 4}); err == nil {
		t.Error("want error for MemElements below one block")
	}
}

func TestMergeFiles(t *testing.T) {
	dev := newDev(t)
	writeFile(t, dev, "a", []int64{1, 3, 5})
	writeFile(t, dev, "b", []int64{2, 4, 6})
	if err := MergeFiles(dev, []string{"a", "b"}, "out"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dev, "out"); !slices.Equal(got, []int64{1, 2, 3, 4, 5, 6}) {
		t.Errorf("got %v", got)
	}
}

func TestSortedStream(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(7))
	data := make([]int64, 500)
	for i := range data {
		data[i] = rng.Int63n(1000)
	}
	writeFile(t, dev, "in", data)
	src, count, cleanup, err := SortedStream(dev, "in", Config{MemElements: 16, FanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if count != 500 {
		t.Errorf("count = %d", count)
	}
	var got []int64
	for {
		v, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := slices.Clone(data)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Error("SortedStream output incorrect")
	}
}

// Property: external sort is equivalent to slices.Sort for any input.
func TestQuickSortFile(t *testing.T) {
	dev := newDev(t)
	idx := 0
	f := func(data []int64) bool {
		idx++
		in := "qin"
		out := "qout"
		w, err := dev.Create(in)
		if err != nil {
			return false
		}
		if err := w.AppendSlice(data); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		if _, err := SortFile(dev, in, out, Config{MemElements: 8, FanIn: 3}); err != nil {
			return false
		}
		got := readAll(t, dev, out)
		want := slices.Clone(data)
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortFileIsSequentialIOOnly(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(3))
	data := make([]int64, 300)
	for i := range data {
		data[i] = rng.Int63()
	}
	writeFile(t, dev, "in", data)
	before := dev.Stats()
	if _, err := SortFile(dev, "in", "out", Config{MemElements: 16, FanIn: 4}); err != nil {
		t.Fatal(err)
	}
	d := dev.Stats().Sub(before)
	if d.RandReads != 0 {
		t.Errorf("external sort made %d random reads; want 0 (Lemma 6 requires sequential I/O)", d.RandReads)
	}
}
