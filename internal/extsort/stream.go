package extsort

import (
	"fmt"
	"slices"

	"repro/internal/disk"
)

// SortedStream externally sorts the unsorted element file `in` and returns a
// Source that yields its elements in sorted order, together with the total
// element count (known before the stream is drained) and a cleanup function
// that removes intermediate run files. The caller must drain or abandon the
// Source and then call cleanup.
//
// This streaming form lets the partition store capture its in-memory summary
// while writing the sorted partition, so that — as the paper requires — "no
// additional disk access is required for computing the summary, beyond those
// taken for generating the new data partition".
func SortedStream(dev *disk.Manager, in string, cfg Config) (src Source, count int64, cleanup func(), err error) {
	if err := cfg.setDefaults(dev); err != nil {
		return nil, 0, nil, err
	}
	r, err := dev.OpenSequential(in)
	if err != nil {
		return nil, 0, nil, err
	}
	defer r.Close()

	var runs []string
	var readers []*disk.Reader
	cleanup = func() {
		for _, rr := range readers {
			rr.Close() //nolint:errcheck // cleanup
		}
		for _, name := range runs {
			dev.Remove(name) //nolint:errcheck // cleanup
		}
	}

	buf := make([]int64, 0, cfg.MemElements)
	total := int64(0)
	runIdx := 0
	flushRun := func() error {
		if len(buf) == 0 {
			return nil
		}
		slices.Sort(buf)
		name := fmt.Sprintf("%s-s%d", cfg.TempPrefix, runIdx)
		runIdx++
		w, err := dev.Create(name)
		if err != nil {
			return err
		}
		if err := w.AppendSlice(buf); err != nil {
			w.Abort()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		runs = append(runs, name)
		buf = buf[:0]
		return nil
	}
	for {
		v, ok, err := r.Next()
		if err != nil {
			cleanup()
			return nil, 0, nil, err
		}
		if !ok {
			break
		}
		buf = append(buf, v)
		total++
		if len(buf) == cfg.MemElements {
			if err := flushRun(); err != nil {
				cleanup()
				return nil, 0, nil, err
			}
		}
	}
	if err := flushRun(); err != nil {
		cleanup()
		return nil, 0, nil, err
	}

	// Reduce the number of runs below FanIn with intermediate merge passes,
	// then stream the final merge.
	pass := 0
	for len(runs) > cfg.FanIn {
		pass++
		var next []string
		for lo := 0; lo < len(runs); lo += cfg.FanIn {
			hi := min(lo+cfg.FanIn, len(runs))
			name := fmt.Sprintf("%s-sp%d-%d", cfg.TempPrefix, pass, lo)
			if err := MergeFiles(dev, runs[lo:hi], name); err != nil {
				cleanup()
				return nil, 0, nil, err
			}
			for _, g := range runs[lo:hi] {
				if err := dev.Remove(g); err != nil {
					cleanup()
					return nil, 0, nil, err
				}
			}
			next = append(next, name)
		}
		runs = next
	}

	sources := make([]Source, 0, len(runs))
	for _, name := range runs {
		rr, err := dev.OpenSequential(name)
		if err != nil {
			cleanup()
			return nil, 0, nil, err
		}
		readers = append(readers, rr)
		sources = append(sources, ReaderSource(rr))
	}
	merger, err := NewMerger(sources...)
	if err != nil {
		cleanup()
		return nil, 0, nil, err
	}
	return merger, total, cleanup, nil
}
