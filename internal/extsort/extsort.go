// Package extsort implements bounded-memory external sorting and k-way
// merging of element files on the disk substrate. The paper sorts each
// arriving batch with an external sort [Graefe 14] before installing it as a
// level-0 partition, and multi-way merges sorted partitions when a level
// overflows (Algorithm 3); both operations are provided here and both cost
// only sequential I/O, as required by Lemma 6.
package extsort

import (
	"fmt"
	"slices"

	"repro/internal/disk"
)

// DefaultFanIn is the maximum number of runs merged in one pass.
const DefaultFanIn = 64

// Source yields elements in non-decreasing order.
type Source interface {
	// Next returns the next element; ok=false signals exhaustion.
	Next() (v int64, ok bool, err error)
}

// sliceSource adapts a sorted slice to a Source.
type sliceSource struct {
	data []int64
	pos  int
}

func (s *sliceSource) Next() (int64, bool, error) {
	if s.pos >= len(s.data) {
		return 0, false, nil
	}
	v := s.data[s.pos]
	s.pos++
	return v, true, nil
}

// SliceSource returns a Source over a sorted slice. It panics if the slice
// is not sorted, because merging unsorted inputs silently corrupts output.
func SliceSource(sorted []int64) Source {
	if !slices.IsSorted(sorted) {
		panic("extsort: SliceSource input not sorted")
	}
	return &sliceSource{data: sorted}
}

// readerSource adapts a sequential disk reader to a Source.
type readerSource struct{ r *disk.Reader }

func (s readerSource) Next() (int64, bool, error) { return s.r.Next() }

// ReaderSource returns a Source over a sequential file reader. The file
// contents must be sorted.
func ReaderSource(r *disk.Reader) Source { return readerSource{r} }

// Merger performs a streaming k-way merge over sorted sources using a binary
// min-heap of (value, source) pairs. It is the core of both external sort
// merge passes and partition-level merges.
type Merger struct {
	heap []mergeItem
}

type mergeItem struct {
	v   int64
	src Source
}

// NewMerger primes a merger from the given sorted sources. Empty sources are
// dropped.
func NewMerger(sources ...Source) (*Merger, error) {
	m := &Merger{heap: make([]mergeItem, 0, len(sources))}
	for _, s := range sources {
		v, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.heap = append(m.heap, mergeItem{v, s})
		}
	}
	// Build heap bottom-up.
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m, nil
}

func (m *Merger) siftDown(i int) {
	n := len(m.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && m.heap[l].v < m.heap[small].v {
			small = l
		}
		if r < n && m.heap[r].v < m.heap[small].v {
			small = r
		}
		if small == i {
			return
		}
		m.heap[i], m.heap[small] = m.heap[small], m.heap[i]
		i = small
	}
}

// Next returns the globally smallest remaining element.
func (m *Merger) Next() (int64, bool, error) {
	if len(m.heap) == 0 {
		return 0, false, nil
	}
	top := m.heap[0]
	v, ok, err := top.src.Next()
	if err != nil {
		return 0, false, err
	}
	if ok {
		m.heap[0].v = v
		m.siftDown(0)
	} else {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
		if len(m.heap) > 0 {
			m.siftDown(0)
		}
	}
	return top.v, true, nil
}

// SortSlice sorts data in memory and writes it to the named output file.
// It is the fast path for batches that fit in the configured sort memory.
func SortSlice(dev *disk.Manager, data []int64, out string) error {
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	w, err := dev.Create(out)
	if err != nil {
		return err
	}
	if err := w.AppendSlice(sorted); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// Config controls external sorting.
type Config struct {
	// MemElements is the maximum number of elements held in memory while
	// forming sorted runs. Must be at least one block's worth of elements.
	MemElements int
	// FanIn bounds how many runs are merged per pass (DefaultFanIn if 0).
	FanIn int
	// TempPrefix names intermediate run files (default "extsort-run").
	TempPrefix string
}

func (c *Config) setDefaults(dev *disk.Manager) error {
	if c.MemElements <= 0 {
		return fmt.Errorf("extsort: MemElements must be positive, got %d", c.MemElements)
	}
	if c.MemElements < dev.ElementsPerBlock() {
		return fmt.Errorf("extsort: MemElements %d smaller than one block (%d elements)",
			c.MemElements, dev.ElementsPerBlock())
	}
	if c.FanIn <= 1 {
		c.FanIn = DefaultFanIn
	}
	if c.TempPrefix == "" {
		c.TempPrefix = "extsort-run"
	}
	return nil
}

// SortFile externally sorts the unsorted element file `in` into `out` using
// at most cfg.MemElements elements of memory: it generates sorted runs, then
// merges them in passes of at most cfg.FanIn runs. Returns the element
// count. Intermediate run files are removed on success and best-effort
// removed on failure.
func SortFile(dev *disk.Manager, in, out string, cfg Config) (int64, error) {
	if err := cfg.setDefaults(dev); err != nil {
		return 0, err
	}
	r, err := dev.OpenSequential(in)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	r.SetReadahead(disk.MergeReadahead)

	var runs []string
	cleanup := func() {
		for _, name := range runs {
			dev.Remove(name) //nolint:errcheck // best-effort cleanup
		}
	}

	// Pass 0: cut the input into sorted runs.
	buf := make([]int64, 0, cfg.MemElements)
	total := int64(0)
	runIdx := 0
	flushRun := func() error {
		if len(buf) == 0 {
			return nil
		}
		slices.Sort(buf)
		name := fmt.Sprintf("%s-%d", cfg.TempPrefix, runIdx)
		runIdx++
		w, err := dev.Create(name)
		if err != nil {
			return err
		}
		if err := w.AppendSlice(buf); err != nil {
			w.Abort()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		runs = append(runs, name)
		buf = buf[:0]
		return nil
	}
	for {
		v, ok, err := r.Next()
		if err != nil {
			cleanup()
			return 0, err
		}
		if !ok {
			break
		}
		buf = append(buf, v)
		total++
		if len(buf) == cfg.MemElements {
			if err := flushRun(); err != nil {
				cleanup()
				return 0, err
			}
		}
	}
	if err := flushRun(); err != nil {
		cleanup()
		return 0, err
	}
	if len(runs) == 0 {
		// Empty input: still produce an empty output file.
		w, err := dev.Create(out)
		if err != nil {
			return 0, err
		}
		return 0, w.Close()
	}

	// Merge passes until a single run remains, then rename by final merge
	// into `out`.
	pass := 0
	for len(runs) > 1 {
		pass++
		var next []string
		for lo := 0; lo < len(runs); lo += cfg.FanIn {
			hi := min(lo+cfg.FanIn, len(runs))
			group := runs[lo:hi]
			var name string
			if len(runs) <= cfg.FanIn {
				name = out // final merge writes the destination directly
			} else {
				name = fmt.Sprintf("%s-p%d-%d", cfg.TempPrefix, pass, lo)
			}
			if err := MergeFiles(dev, group, name); err != nil {
				cleanup()
				return 0, err
			}
			for _, g := range group {
				if err := dev.Remove(g); err != nil {
					cleanup()
					return 0, err
				}
			}
			next = append(next, name)
		}
		runs = next
	}
	if runs[0] != out {
		// Single run produced in pass 0: copy it into place.
		if err := copyFile(dev, runs[0], out); err != nil {
			cleanup()
			return 0, err
		}
		if err := dev.Remove(runs[0]); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// MergeFiles k-way merges the sorted input files into out.
func MergeFiles(dev *disk.Manager, inputs []string, out string) error {
	readers := make([]*disk.Reader, 0, len(inputs))
	defer func() {
		for _, r := range readers {
			r.Close() //nolint:errcheck // read-only close on cleanup
		}
	}()
	sources := make([]Source, 0, len(inputs))
	for _, name := range inputs {
		r, err := dev.OpenSequential(name)
		if err != nil {
			return err
		}
		r.SetReadahead(disk.MergeReadahead)
		readers = append(readers, r)
		sources = append(sources, ReaderSource(r))
	}
	merger, err := NewMerger(sources...)
	if err != nil {
		return err
	}
	w, err := dev.Create(out)
	if err != nil {
		return err
	}
	for {
		v, ok, err := merger.Next()
		if err != nil {
			w.Abort()
			return err
		}
		if !ok {
			break
		}
		if err := w.Append(v); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close()
}

func copyFile(dev *disk.Manager, from, to string) error {
	r, err := dev.OpenSequential(from)
	if err != nil {
		return err
	}
	defer r.Close()
	r.SetReadahead(disk.MergeReadahead)
	w, err := dev.Create(to)
	if err != nil {
		return err
	}
	for {
		v, ok, err := r.Next()
		if err != nil {
			w.Abort()
			return err
		}
		if !ok {
			break
		}
		if err := w.Append(v); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close()
}
