package crashtest

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/disk"
)

var (
	seedFlag   = flag.Int64("crash.seed", 1, "workload seed for the crash harness")
	opsFlag    = flag.Int("crash.ops", 520, "workload operations in the crash harness plan")
	strideFlag = flag.Int("crash.stride", 0, "test every Nth crash point (0 = every point, or a sparse sample under -short)")
)

func harnessConfig() Config {
	return Config{Seed: *seedFlag, Ops: *opsFlag}.WithDefaults()
}

// TestCrashEveryPoint is the tentpole assertion: for a ≥500-operation
// multi-stream workload, crash the backend at every mutating-operation
// index, restart it both dropping and keeping unsynced writes, and require
// that reopen succeeds, the recovered state is a prefix of completed steps
// with quantiles within ε of the oracle, and the DB stays writable.
func TestCrashEveryPoint(t *testing.T) {
	cfg := harnessConfig()
	plan := BuildPlan(cfg)
	if len(plan) < 500 {
		t.Fatalf("plan has %d operations, want >= 500", len(plan))
	}

	// Counting run: no crash armed; the workload must complete cleanly.
	counter := disk.NewCrashBackend()
	res := Replay(counter, cfg, plan)
	if res.Err != nil {
		t.Fatalf("uncrashed replay failed: %v", res.Err)
	}
	total := counter.Ops()
	if total < int64(len(plan))/4 {
		t.Fatalf("workload produced only %d backend ops — too few crash points", total)
	}

	stride := int64(*strideFlag)
	if stride <= 0 {
		stride = 1
		if testing.Short() {
			stride = 17
		}
	}
	var points []int64
	for k := int64(0); k < total; k += stride {
		points = append(points, k)
	}
	t.Logf("seed=%d ops=%d backend-ops=%d crash-points=%d (stride %d)", cfg.Seed, len(plan), total, len(points), stride)

	const shards = 8
	for shard := 0; shard < shards; shard++ {
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			for i := shard; i < len(points); i += shards {
				k := points[i]
				cb := disk.NewCrashBackend()
				cb.SetCrashPoint(k, true)
				res := Replay(cb, cfg, plan)
				if res.Err != nil {
					t.Fatalf("crash@%d seed=%d: replay: %v", k, cfg.Seed, res.Err)
				}
				if !cb.Crashed() {
					t.Fatalf("crash@%d seed=%d: crash point never fired (ops=%d)", k, cfg.Seed, cb.Ops())
				}
				// One crashed replay, verified under every recovery mode:
				// all unsynced writes lost, all kept (torn tail included),
				// and two adversarial per-file subsets.
				modes := []struct {
					name    string
					restart func(*disk.CrashBackend)
				}{
					{"drop", func(c *disk.CrashBackend) { c.Restart(false) }},
					{"keep", func(c *disk.CrashBackend) { c.Restart(true) }},
					{"subset-a", func(c *disk.CrashBackend) { c.RestartSubset(cfg.Seed ^ k) }},
					{"subset-b", func(c *disk.CrashBackend) { c.RestartSubset(cfg.Seed ^ k ^ 0x5bf03635) }},
				}
				for _, m := range modes {
					clone := cb.Clone()
					m.restart(clone)
					if err := Verify(clone, cfg, plan, res); err != nil {
						t.Errorf("crash@%d mode=%s seed=%d: %v\nreproduce: go test ./internal/crashtest -run TestCrashEveryPoint -crash.seed=%d -crash.ops=%d",
							k, m.name, cfg.Seed, err, cfg.Seed, cfg.Ops)
					}
				}
			}
		})
	}
}

// TestCleanShutdownRecovers pins the trivial end of the spectrum: a clean
// Close followed by a drop-unsynced restart must recover every step.
func TestCleanShutdownRecovers(t *testing.T) {
	cfg := harnessConfig()
	plan := BuildPlan(cfg)
	cb := disk.NewCrashBackend()
	res := Replay(cb, cfg, plan)
	if res.Err != nil {
		t.Fatalf("replay: %v", res.Err)
	}
	cb.Restart(false)
	if err := Verify(cb, cfg, plan, res); err != nil {
		t.Fatalf("recovery after clean shutdown: %v", err)
	}
}
