package crashtest

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/disk"
)

var (
	seedFlag   = flag.Int64("crash.seed", 1, "workload seed for the crash harness")
	opsFlag    = flag.Int("crash.ops", 520, "workload operations in the crash harness plan")
	strideFlag = flag.Int("crash.stride", 0, "test every Nth crash point (0 = every point, or a sparse sample under -short)")
	maintFlag  = flag.String("crash.maintenance", "manual", "maintenance mode under test: manual (seal/install split) or sync (legacy inline)")
)

func harnessConfig() Config {
	return Config{Seed: *seedFlag, Ops: *opsFlag, Maintenance: *maintFlag}.WithDefaults()
}

// TestCrashEveryPoint is the tentpole assertion: for a ≥500-operation
// multi-stream workload, crash the backend at every mutating-operation
// index, restart it both dropping and keeping unsynced writes, and require
// that reopen succeeds, the recovered state is a prefix of completed steps
// with quantiles within ε of the oracle, and the DB stays writable.
func TestCrashEveryPoint(t *testing.T) {
	cfg := harnessConfig()
	plan := BuildPlan(cfg)
	if len(plan) < 500 {
		t.Fatalf("plan has %d operations, want >= 500", len(plan))
	}
	maintains := 0
	for _, op := range plan {
		if op.Maintain {
			maintains++
		}
	}
	if maintains == 0 {
		t.Fatal("plan schedules no maintenance drains — background install crash points would go untested")
	}

	// Counting run: no crash armed; the workload must complete cleanly.
	counter := disk.NewCrashBackend()
	res := Replay(counter, cfg, plan)
	if res.Err != nil {
		t.Fatalf("uncrashed replay failed: %v", res.Err)
	}
	total := counter.Ops()
	if total < int64(len(plan))/4 {
		t.Fatalf("workload produced only %d backend ops — too few crash points", total)
	}

	stride := int64(*strideFlag)
	if stride <= 0 {
		stride = 1
		if testing.Short() {
			stride = 17
		}
	}
	var points []int64
	for k := int64(0); k < total; k += stride {
		points = append(points, k)
	}
	t.Logf("seed=%d ops=%d maintains=%d mode=%s backend-ops=%d crash-points=%d (stride %d)",
		cfg.Seed, len(plan), maintains, cfg.Maintenance, total, len(points), stride)

	const shards = 8
	for shard := 0; shard < shards; shard++ {
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			for i := shard; i < len(points); i += shards {
				k := points[i]
				cb := disk.NewCrashBackend()
				cb.SetCrashPoint(k, true)
				res := Replay(cb, cfg, plan)
				if res.Err != nil {
					t.Fatalf("crash@%d seed=%d: replay: %v", k, cfg.Seed, res.Err)
				}
				if !cb.Crashed() {
					t.Fatalf("crash@%d seed=%d: crash point never fired (ops=%d)", k, cfg.Seed, cb.Ops())
				}
				// One crashed replay, verified under every recovery mode:
				// all unsynced writes lost, all kept (torn tail included),
				// and two adversarial per-file subsets.
				modes := []struct {
					name    string
					restart func(*disk.CrashBackend)
				}{
					{"drop", func(c *disk.CrashBackend) { c.Restart(false) }},
					{"keep", func(c *disk.CrashBackend) { c.Restart(true) }},
					{"subset-a", func(c *disk.CrashBackend) { c.RestartSubset(cfg.Seed ^ k) }},
					{"subset-b", func(c *disk.CrashBackend) { c.RestartSubset(cfg.Seed ^ k ^ 0x5bf03635) }},
				}
				for _, m := range modes {
					clone := cb.Clone()
					m.restart(clone)
					if err := Verify(clone, cfg, plan, res); err != nil {
						t.Errorf("crash@%d mode=%s seed=%d: %v\nreproduce: go test ./internal/crashtest -run TestCrashEveryPoint -crash.seed=%d -crash.ops=%d -crash.maintenance=%s",
							k, m.name, cfg.Seed, err, cfg.Seed, cfg.Ops, cfg.Maintenance)
					}
				}
			}
		})
	}
}

// TestCleanShutdownRecovers pins the trivial end of the spectrum: a clean
// Close followed by a drop-unsynced restart must recover every step.
func TestCleanShutdownRecovers(t *testing.T) {
	cfg := harnessConfig()
	plan := BuildPlan(cfg)
	cb := disk.NewCrashBackend()
	res := Replay(cb, cfg, plan)
	if res.Err != nil {
		t.Fatalf("replay: %v", res.Err)
	}
	cb.Restart(false)
	if err := Verify(cb, cfg, plan, res); err != nil {
		t.Fatalf("recovery after clean shutdown: %v", err)
	}
}

// TestCrashSweepSyncMode runs a sampled sweep with the legacy synchronous
// maintenance path, so both halves of the EndStep split stay covered no
// matter which mode the flag selects. (The full sweep for the flagged mode
// is TestCrashEveryPoint; CI runs it for both modes.)
func TestCrashSweepSyncMode(t *testing.T) {
	if *maintFlag == "sync" {
		t.Skip("flagged sweep already runs sync mode")
	}
	cfg := Config{Seed: *seedFlag, Ops: 200, Maintenance: "sync"}.WithDefaults()
	plan := BuildPlan(cfg)
	counter := disk.NewCrashBackend()
	if res := Replay(counter, cfg, plan); res.Err != nil {
		t.Fatalf("uncrashed replay failed: %v", res.Err)
	}
	total := counter.Ops()
	stride := int64(7)
	if testing.Short() {
		stride = 41
	}
	for k := int64(0); k < total; k += stride {
		cb := disk.NewCrashBackend()
		cb.SetCrashPoint(k, true)
		res := Replay(cb, cfg, plan)
		if res.Err != nil {
			t.Fatalf("crash@%d: replay: %v", k, res.Err)
		}
		for _, keep := range []bool{false, true} {
			clone := cb.Clone()
			clone.Restart(keep)
			if err := Verify(clone, cfg, plan, res); err != nil {
				t.Errorf("crash@%d keep=%v: %v", k, keep, err)
			}
		}
	}
}

// TestCrashSweepEviction repeats the crash sweep with a hydrated-engine
// budget of one: every stream switch in the plan forces a seal/evict of
// the previous stream and a rehydration of the next, so crash points land
// inside eviction checkpoints (the durable commit that seals an idle
// stream) and mid-hydration resumes — the lifecycle transitions the lazy
// directory added. The recovery contract is unchanged: eviction is a
// checkpoint, so a crash mid-evict or mid-rehydrate loses nothing beyond
// the usual in-flight batch.
func TestCrashSweepEviction(t *testing.T) {
	cfg := Config{Seed: *seedFlag, Ops: 200, Maintenance: *maintFlag, MaxHydrated: 1}.WithDefaults()
	plan := BuildPlan(cfg)
	counter := disk.NewCrashBackend()
	if res := Replay(counter, cfg, plan); res.Err != nil {
		t.Fatalf("uncrashed replay failed: %v", res.Err)
	}
	total := counter.Ops()
	stride := int64(7)
	if testing.Short() {
		stride = 41
	}
	for k := int64(0); k < total; k += stride {
		cb := disk.NewCrashBackend()
		cb.SetCrashPoint(k, true)
		res := Replay(cb, cfg, plan)
		if res.Err != nil {
			t.Fatalf("crash@%d: replay: %v", k, res.Err)
		}
		for _, keep := range []bool{false, true} {
			clone := cb.Clone()
			clone.Restart(keep)
			if err := Verify(clone, cfg, plan, res); err != nil {
				t.Errorf("crash@%d keep=%v: %v", k, keep, err)
			}
		}
	}
}

// TestCrashSweepRawFormat repeats the crash sweep with the raw block
// format: the default sweeps cover the columnar layout (whose footer adds
// one write — and one crash point — per partition file), so this keeps the
// uncompressed path under the same every-k-th-crash-point scrutiny.
func TestCrashSweepRawFormat(t *testing.T) {
	cfg := Config{Seed: *seedFlag, Ops: 200, BlockFormat: "raw"}.WithDefaults()
	plan := BuildPlan(cfg)
	counter := disk.NewCrashBackend()
	if res := Replay(counter, cfg, plan); res.Err != nil {
		t.Fatalf("uncrashed replay failed: %v", res.Err)
	}
	total := counter.Ops()
	stride := int64(7)
	if testing.Short() {
		stride = 41
	}
	for k := int64(0); k < total; k += stride {
		cb := disk.NewCrashBackend()
		cb.SetCrashPoint(k, true)
		res := Replay(cb, cfg, plan)
		if res.Err != nil {
			t.Fatalf("crash@%d: replay: %v", k, res.Err)
		}
		for _, keep := range []bool{false, true} {
			clone := cb.Clone()
			clone.Restart(keep)
			if err := Verify(clone, cfg, plan, res); err != nil {
				t.Errorf("crash@%d keep=%v: %v", k, keep, err)
			}
		}
	}
}
