package crashtest

import (
	"testing"
)

// TestNodeKill runs the seeded node-kill scenario for a few seeds: each
// picks a different kill point and workload mix. The heavier sweep
// (more seeds, bigger steps) belongs to the CI cluster-e2e job via
// -run TestNodeKill -count with HSQ_MAX_PENDING_STEPS=1; this in-tree run
// keeps the default suite fast.
func TestNodeKill(t *testing.T) {
	if testing.Short() {
		t.Skip("node-kill harness is a multi-node socket test; skipped in -short")
	}
	for _, seed := range []int64{1, 7} {
		if err := RunNodeKill(NodeKillConfig{Seed: seed, Logf: t.Logf}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
