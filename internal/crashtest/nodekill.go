package crashtest

import (
	"fmt"
	"math/rand"
	"time"

	hsq "repro"
	"repro/hsqclient"
	"repro/internal/cluster"
	"repro/internal/oracle"
	"repro/internal/workload"
)

// Node-kill mode: the cluster-level sibling of the disk crash sweep. Where
// the disk sweep kills a single process at every mutating backend
// operation and checks recovery from storage, the node-kill harness kills
// a whole NODE of a replicated cluster mid-ingest and checks recovery from
// the surviving replicas: the client fails over, replays its unacked
// window, and every surviving member ends with exactly-once application
// and ε-correct quantiles. Determinism comes from the seeded workload and
// the seeded kill point; the network interleaving is real (goroutines and
// sockets), so assertions are about end state, not operation traces.

// NodeKillConfig parametrizes one node-kill run.
type NodeKillConfig struct {
	// Seed drives workload values and the kill point.
	Seed int64
	// Nodes and Replicas shape the cluster (defaults: 3 nodes, R=2).
	Nodes    int
	Replicas int
	// Streams is the number of client streams fed concurrently (default 2).
	Streams int
	// Steps and BatchSize shape each stream's ingest (defaults 6 × 1500).
	Steps     int
	BatchSize int
	// Epsilon is the engine accuracy parameter (default 0.05).
	Epsilon float64
	// Logf receives harness progress lines when non-nil.
	Logf func(format string, args ...any)
}

// WithNodeKillDefaults fills zero fields.
func (c NodeKillConfig) WithNodeKillDefaults() NodeKillConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Streams == 0 {
		c.Streams = 2
	}
	if c.Steps == 0 {
		c.Steps = 6
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1500
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	return c
}

// RunNodeKill executes one seeded node-kill scenario and returns the first
// contract violation, or nil. The scenario: boot the cluster, feed every
// stream through one failover-capable client, kill the owner of stream 0
// at a seeded step boundary mid-run, keep feeding, flush, then verify on
// every surviving member of each stream: the stream materialized only on
// members, counts are exact (no loss, no duplication), step counts match,
// and quantiles stay within ε·N+1 of an exact oracle.
func RunNodeKill(cfg NodeKillConfig) error {
	cfg = cfg.WithNodeKillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	h, err := cluster.NewHarness(cluster.HarnessConfig{
		Nodes:    cfg.Nodes,
		Replicas: cfg.Replicas,
		Options: hsq.Options{
			Epsilon:         cfg.Epsilon,
			Kappa:           2,
			Backend:         "mem",
			Maintenance:     hsq.MaintenanceAsync,
			MaxPendingSteps: 1,
		},
		DownAfter: 300 * time.Millisecond,
		DownRetry: 500 * time.Millisecond,
		Logf:      cfg.Logf,
	})
	if err != nil {
		return err
	}
	defer h.Close()

	streams := make([]string, cfg.Streams)
	oracles := make([]*oracle.Oracle, cfg.Streams)
	gens := make([]workload.Generator, cfg.Streams)
	names := workload.Names()
	for i := range streams {
		streams[i] = fmt.Sprintf("kill-%d-%d", cfg.Seed, i)
		oracles[i] = oracle.New(cfg.Steps * cfg.BatchSize)
		g, err := workload.ByName(names[i%len(names)], cfg.Seed+int64(i))
		if err != nil {
			return err
		}
		gens[i] = g
	}

	// The victim owns stream 0; the kill fires at a seeded step boundary
	// strictly inside the run, so acked and in-flight data both exist.
	victim := -1
	for i, hn := range h.Nodes {
		if hn.Node.ID == h.Ring.Owner(streams[0]).ID {
			victim = i
		}
	}
	killAt := 1 + rng.Intn(cfg.Steps-1)

	c, err := hsqclient.Dial(h.Addrs(),
		hsqclient.WithBatchSize(256),
		hsqclient.WithSession(fmt.Sprintf("nodekill-%d", cfg.Seed)),
		hsqclient.WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck

	for step := 0; step < cfg.Steps; step++ {
		if step == killAt {
			if cfg.Logf != nil {
				cfg.Logf("killing node %s before step %d", h.Nodes[victim].Node.ID, step)
			}
			h.Kill(victim)
		}
		for i, name := range streams {
			vals := workload.Fill(gens[i], cfg.BatchSize)
			oracles[i].Add(vals...)
			if err := c.Stream(name).ObserveSlice(vals); err != nil {
				return fmt.Errorf("observe %s step %d: %w", name, step, err)
			}
			if err := c.Stream(name).EndStep(); err != nil {
				return fmt.Errorf("endstep %s step %d: %w", name, step, err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		return fmt.Errorf("final flush: %w", err)
	}

	for i, name := range streams {
		if err := verifyStream(h, victim, name, oracles[i], cfg); err != nil {
			return fmt.Errorf("stream %s (seed %d, killAt %d): %w", name, cfg.Seed, killAt, err)
		}
	}
	return nil
}

// verifyStream checks one stream's end state across the whole cluster.
func verifyStream(h *cluster.Harness, victim int, name string, or *oracle.Oracle, cfg NodeKillConfig) error {
	n := int64(cfg.Steps * cfg.BatchSize)
	bound := int64(cfg.Epsilon*float64(n)) + 1
	checked := 0
	for i, hn := range h.Nodes {
		member := h.Ring.IsMember(hn.Node.ID, name)
		st, ok := hn.DB.Lookup(name)
		if !member {
			if ok {
				return fmt.Errorf("materialized on non-member %s", hn.Node.ID)
			}
			continue
		}
		if i == victim {
			continue // killed mid-run; its copy is legitimately short
		}
		if !ok {
			return fmt.Errorf("missing on surviving member %s", hn.Node.ID)
		}
		if err := st.SyncMaintenance(); err != nil {
			return err
		}
		if got := st.TotalCount(); got != n {
			return fmt.Errorf("node %s: count %d, want %d (loss or duplication)", hn.Node.ID, got, n)
		}
		if got := st.Steps(); got != cfg.Steps {
			return fmt.Errorf("node %s: %d steps, want %d", hn.Node.ID, got, cfg.Steps)
		}
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			v, _, err := st.Quantile(phi)
			if err != nil {
				return err
			}
			target := max(int64(phi*float64(n)), 1)
			if spanErr := or.SpanError(target, v); spanErr > bound {
				return fmt.Errorf("node %s: quantile(%g)=%d rank error %d > ε·N=%d", hn.Node.ID, phi, v, spanErr, bound)
			}
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("no surviving member verified")
	}
	return nil
}
