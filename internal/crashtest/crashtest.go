// Package crashtest is the deterministic crash-simulation harness for the
// warehouse's durability guarantee: a DB reopened after a crash recovers
// exactly a prefix of the time steps whose EndStep completed, with every
// quantile answer still within ε of ground truth.
//
// The harness builds a seeded multi-stream workload plan, replays it over a
// disk.CrashBackend once without crashing to count the backend's mutating
// operations, and then replays it again for every operation index, crashing
// there. After each crash the backend "restarts" in both adversarial modes —
// dropping every unsynced write, and keeping them all including the torn
// tail of the in-flight write — the DB is reopened, and the recovered state
// is checked against an exact oracle over the completed prefix. A final
// write/query round proves the recovered DB is live, not just readable.
//
// With the maintenance scheduler the heavy half of an EndStep — external
// sort, partition install, level merges — runs after the step is sealed. The
// harness exercises exactly that split while staying deterministic: streams
// run in "manual" maintenance mode, the plan interleaves explicit maintain
// operations that drain sealed backlogs, and the crash sweep therefore lands
// inside seal commits, sort temporaries, background-style installs, merge
// cascades and their commits alike. EndStep's durability contract is
// unchanged (a nil return means the step survives any crash: it is either a
// partition or a manifest-referenced spill), so the prefix-of-EndSteps
// guarantee is asserted identically with the scheduler's deferred path.
//
// Every run is reproducible from its (seed, crash index, restart mode)
// triple, which failures report.
package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"path"
	"strings"

	hsq "repro"
	"repro/internal/disk"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/workload"
)

// Config parametrizes one harness run.
type Config struct {
	// Seed drives the workload plan (values, batch sizes, interleaving).
	Seed int64
	// Ops is the number of workload operations (observe batches and end
	// steps) in the plan. The acceptance bar is ≥ 500.
	Ops int
	// Streams is the number of named streams the plan interleaves.
	Streams int
	// Epsilon and Kappa configure the DB under test.
	Epsilon float64
	Kappa   int
	// BlockSize is the device block size in bytes (small, so batches span
	// multiple blocks and crashes land inside multi-block writes).
	BlockSize int
	// Maintenance is the engine maintenance mode under test: "manual"
	// (default — the seal/install split with deterministic drains) or
	// "sync" (the legacy inline install).
	Maintenance string
	// BlockFormat is the partition file layout under test: "columnar"
	// (default — compressed blocks plus a footer, one extra write and
	// crash point per file) or "raw". Pinned explicitly so sweeps stay
	// deterministic regardless of the HSQ_BLOCK_FORMAT environment.
	BlockFormat string
	// MaxHydrated caps the DB's hydrated-engine budget
	// (Config.MaxHydratedStreams; 0 = unlimited). A cap of 1 with several
	// streams forces constant seal/evict/rehydrate churn, so the crash
	// sweep lands inside eviction checkpoints and rehydration resumes too.
	MaxHydrated int
}

// WithDefaults fills zero fields with the harness defaults.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Ops == 0 {
		c.Ops = 520
	}
	if c.Streams == 0 {
		c.Streams = 3
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.Kappa == 0 {
		c.Kappa = 3
	}
	if c.BlockSize == 0 {
		c.BlockSize = 512 // 64 elements per block
	}
	if c.Maintenance == "" {
		c.Maintenance = hsq.MaintenanceManual
	}
	if c.BlockFormat == "" {
		c.BlockFormat = "columnar"
	}
	return c
}

func (c Config) options(cb *disk.CrashBackend) hsq.Options {
	return hsq.Options{
		Epsilon:            c.Epsilon,
		Kappa:              c.Kappa,
		Device:             cb,
		BlockSize:          c.BlockSize,
		Maintenance:        c.Maintenance,
		BlockFormat:        c.BlockFormat,
		MaxHydratedStreams: c.MaxHydrated,
	}
}

// Op is one workload operation on the named stream: an observe batch
// (Batch non-nil), an end step (Batch nil, !Maintain), or a maintenance
// drain (Maintain) that installs every sealed step — the deterministic
// stand-in for the background scheduler's work.
type Op struct {
	Stream   string
	Batch    []int64
	Maintain bool
}

// BuildPlan generates the seeded workload plan: cfg.Ops operations
// interleaved across cfg.Streams streams, each stream drawing from one of
// the four paper workload generators. End steps are only emitted for
// streams with buffered data, so every EndStep in the plan loads a batch;
// maintain operations only for streams with a sealed backlog, so every
// drain installs at least one step. Backlogs are allowed to grow several
// steps deep before a drain, so the sweep crashes inside multi-step
// recoveries too.
func BuildPlan(cfg Config) []Op {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gens := make([]workload.Generator, cfg.Streams)
	names := workload.Names()
	for i := range gens {
		g, err := workload.ByName(names[i%len(names)], cfg.Seed+int64(i))
		if err != nil {
			panic(err) // workload.Names entries always resolve
		}
		gens[i] = g
	}
	pending := make([]int, cfg.Streams)
	sealed := make([]int, cfg.Streams)
	plan := make([]Op, 0, cfg.Ops)
	for len(plan) < cfg.Ops {
		s := rng.Intn(cfg.Streams)
		r := rng.Float64()
		switch {
		case r < 0.3 && pending[s] > 0:
			plan = append(plan, Op{Stream: streamName(s)})
			pending[s] = 0
			sealed[s]++
		case r < 0.45 && sealed[s] > 0:
			plan = append(plan, Op{Stream: streamName(s), Maintain: true})
			sealed[s] = 0
		default:
			n := 8 + rng.Intn(57)
			plan = append(plan, Op{Stream: streamName(s), Batch: workload.Fill(gens[s], n)})
			pending[s] += n
		}
	}
	return plan
}

func streamName(i int) string { return fmt.Sprintf("s%d", i) }

// Result describes how far a replay got before the armed crash fired.
type Result struct {
	// Completed counts, per stream, the EndSteps that returned success.
	Completed map[string]int
	// Inflight names the stream whose EndStep was running when the crash
	// fired ("" when the crash hit outside any EndStep).
	Inflight string
	// Err is the first non-crash error (a real bug), or nil.
	Err error
}

// Replay runs the plan over the backend until it finishes or the armed
// crash point freezes it. Only genuine failures land in Result.Err;
// ErrCrashed is the expected outcome of an armed replay.
func Replay(cb *disk.CrashBackend, cfg Config, plan []Op) Result {
	res := Result{Completed: make(map[string]int)}
	db, err := hsq.Open(cfg.options(cb))
	if err != nil {
		if !errors.Is(err, disk.ErrCrashed) {
			res.Err = fmt.Errorf("open: %w", err)
		}
		return res
	}
	for _, op := range plan {
		st, err := db.Stream(op.Stream)
		if err != nil {
			if !errors.Is(err, disk.ErrCrashed) {
				res.Err = fmt.Errorf("stream %s: %w", op.Stream, err)
			}
			return res
		}
		if op.Batch != nil {
			st.ObserveSlice(op.Batch)
			continue
		}
		if op.Maintain {
			// Drain the sealed backlog — the deterministic equivalent of the
			// background scheduler's installs and merges. A crash here never
			// loses a step: every sealed step is already durable.
			if err := st.SyncMaintenance(); err != nil {
				if !errors.Is(err, disk.ErrCrashed) {
					res.Err = fmt.Errorf("maintain %s: %w", op.Stream, err)
				}
				return res
			}
			continue
		}
		if _, err := st.EndStep(); err != nil {
			if !errors.Is(err, disk.ErrCrashed) {
				res.Err = fmt.Errorf("endstep %s: %w", op.Stream, err)
			} else {
				res.Inflight = op.Stream
			}
			return res
		}
		res.Completed[op.Stream]++
	}
	// No crash so far (or it landed on a non-fatal post-commit cleanup op):
	// close cleanly so the counting run ends with a fully durable state. A
	// tail-end crash point can still fire inside Close's commit — that is a
	// crash outcome, not a bug.
	if !cb.Crashed() {
		if err := db.Close(); err != nil && !errors.Is(err, disk.ErrCrashed) {
			res.Err = fmt.Errorf("close: %w", err)
		}
	}
	return res
}

// stepGroups reconstructs, per stream, the batch sealed by each EndStep of
// the plan (the ground truth the recovered state must be a prefix of).
func stepGroups(plan []Op) map[string][][]int64 {
	pending := make(map[string][]int64)
	groups := make(map[string][][]int64)
	for _, op := range plan {
		if op.Batch != nil {
			pending[op.Stream] = append(pending[op.Stream], op.Batch...)
			continue
		}
		if op.Maintain {
			continue
		}
		groups[op.Stream] = append(groups[op.Stream], pending[op.Stream])
		pending[op.Stream] = nil
	}
	return groups
}

// Verify reopens the DB on an already-restarted backend and checks the
// full recovery contract: the reopen succeeds, every stream's recovered
// history is exactly a prefix of its completed EndSteps (at most one step
// ahead, when the crash interrupted a committed-but-unreturned EndStep),
// quantiles stay within ε of an exact oracle over that prefix, no orphan
// files survive, and the DB accepts new writes. The caller restarts the
// backend (Restart or RestartSubset) — typically on a Clone, so one
// crashed replay feeds several recovery modes.
func Verify(cb *disk.CrashBackend, cfg Config, plan []Op, res Result) error {
	db, err := hsq.Open(cfg.options(cb))
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	defer db.Close() //nolint:errcheck // best-effort; Close errors surface below

	groups := stepGroups(plan)
	for i := 0; i < cfg.Streams; i++ {
		name := streamName(i)
		completed := res.Completed[name]
		st, ok := db.Lookup(name)
		if !ok {
			if completed > 0 {
				return fmt.Errorf("stream %s: %d completed steps but stream missing after recovery", name, completed)
			}
			continue
		}
		r := st.Steps()
		switch {
		case r == completed:
		case r == completed+1 && res.Inflight == name:
			// The interrupted EndStep committed before the crash.
		default:
			return fmt.Errorf("stream %s: recovered %d steps, want %d (or %d if the in-flight step committed; inflight=%q)",
				name, r, completed, completed+1, res.Inflight)
		}
		var want []int64
		for _, g := range groups[name][:r] {
			want = append(want, g...)
		}
		if got := st.HistCount(); got != int64(len(want)) {
			return fmt.Errorf("stream %s: recovered %d elements, want %d (steps=%d)", name, got, len(want), r)
		}
		if got := st.StreamCount(); got != 0 {
			return fmt.Errorf("stream %s: recovered stream buffer has %d elements, want 0 (in-flight batches are volatile)", name, got)
		}
		if len(want) == 0 {
			continue
		}
		if err := checkQuantiles(st, want, cfg.Epsilon); err != nil {
			return fmt.Errorf("stream %s (recovered %d steps): %w", name, r, err)
		}
	}

	// Per-stream recovery — re-installing manifest-referenced sealed steps,
	// retiring their spills, sweeping install temporaries — runs at
	// hydration (Open loads only the directory), so the orphan check comes
	// after the loop above has touched every registered stream.
	if err := checkNoOrphans(cb); err != nil {
		return err
	}

	// The recovered DB must be live: accept a new batch, commit it, answer.
	st, err := db.Stream(streamName(0))
	if err != nil {
		return fmt.Errorf("post-recovery stream: %w", err)
	}
	fresh := make([]int64, 64)
	for i := range fresh {
		fresh[i] = int64(1000 + i)
	}
	st.ObserveSlice(fresh)
	if _, err := st.EndStep(); err != nil {
		return fmt.Errorf("post-recovery EndStep: %w", err)
	}
	if _, _, err := st.Quantile(0.5); err != nil {
		return fmt.Errorf("post-recovery quantile: %w", err)
	}
	if err := db.Close(); err != nil {
		return fmt.Errorf("post-recovery close: %w", err)
	}
	return nil
}

// checkQuantiles compares the stream's accurate quantiles against an exact
// oracle over want. With the stream buffer empty after recovery, Theorem
// 2's ε·m bound is ~0; ε·N is asserted to keep the check robust to
// bisection cutoffs.
func checkQuantiles(st *hsq.Stream, want []int64, eps float64) error {
	or := oracle.New(len(want))
	or.Add(want...)
	n := int64(len(want))
	bound := int64(eps*float64(n)) + 1
	for _, phi := range []float64{0.25, 0.5, 0.9, 0.99} {
		v, _, err := st.Quantile(phi)
		if err != nil {
			return fmt.Errorf("quantile(%g): %w", phi, err)
		}
		target := int64(phi * float64(n))
		if target < 1 {
			target = 1
		}
		if spanErr := or.SpanError(target, v); spanErr > bound {
			return fmt.Errorf("quantile(%g) = %d: rank error %d exceeds ε·N = %d (N=%d)", phi, v, spanErr, bound, n)
		}
	}
	return nil
}

// debrisPatterns matches files that must never survive a recovery: install
// temporaries and spills, as defined by the store itself. Partition files
// are checked against their stream's manifest instead, since committed
// partitions share the pattern.
var debrisPatterns = partition.TempFilePatterns()

// checkNoOrphans asserts that recovery garbage-collected every file a
// half-finished install left behind: no temporary debris anywhere, every
// partition file referenced by its stream's manifest, and no stream
// namespace outside the DB directory. Raw spills never survive either:
// each stream's hydration re-installs its manifest-referenced sealed steps
// and retires their spills — Open itself collects only unregistered
// namespaces, so the caller must touch every stream before this check.
func checkNoOrphans(cb *disk.CrashBackend) error {
	names, err := cb.List("")
	if err != nil {
		return fmt.Errorf("list after recovery: %w", err)
	}
	// referenced[stream] = partition files the stream's manifest lists.
	referenced := make(map[string]map[string]bool)
	for _, name := range names {
		base := path.Base(name)
		for _, pat := range debrisPatterns {
			if ok, _ := path.Match(pat, base); ok {
				return fmt.Errorf("orphan debris survived recovery: %s", name)
			}
		}
		stream, file, ok := splitStreamFile(name)
		if !ok {
			continue
		}
		if ok, _ := path.Match("part-*.dat", file); !ok {
			continue
		}
		refs, err := loadRefs(cb, referenced, stream)
		if err != nil {
			return err
		}
		if !refs[file] {
			return fmt.Errorf("orphan partition survived recovery: %s (not in stream %s manifest)", name, stream)
		}
	}
	return nil
}

// splitStreamFile splits "streams/<stream>/<file>" into its parts.
func splitStreamFile(name string) (stream, file string, ok bool) {
	rest, found := strings.CutPrefix(name, "streams/")
	if !found {
		return "", "", false
	}
	stream, file, found = strings.Cut(rest, "/")
	return stream, file, found
}

func loadRefs(cb *disk.CrashBackend, cache map[string]map[string]bool, stream string) (map[string]bool, error) {
	if refs, ok := cache[stream]; ok {
		return refs, nil
	}
	refs := make(map[string]bool)
	data, err := cb.ReadMeta("streams/" + stream + "/MANIFEST.json")
	if err == nil {
		m, err := partition.ParseManifest(data)
		if err != nil {
			return nil, fmt.Errorf("stream %s manifest survived recovery but does not parse: %w", stream, err)
		}
		for _, pe := range m.Parts {
			refs[pe.Name] = true
		}
	}
	cache[stream] = refs
	return refs, nil
}
