package disk

import (
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
)

// backends enumerates every Backend implementation; the conformance suite
// runs each subtest against all of them so the storage seam stays
// interchangeable.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"file": fb, "mem": NewMemBackend(), "crash": NewCrashBackend()}
}

func TestBackendConformance(t *testing.T) {
	for kind, b := range backends(t) {
		t.Run(kind, func(t *testing.T) { conformance(t, b, kind) })
	}
}

func conformance(t *testing.T, b Backend, kind string) {
	if b.Kind() != kind {
		t.Errorf("Kind = %q, want %q", b.Kind(), kind)
	}

	t.Run("create-write-read", func(t *testing.T) {
		w, err := b.Create("a.dat")
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("hello, blocks")
		if n, err := w.Write(payload); n != len(payload) || err != nil {
			t.Fatalf("Write = %d, %v", n, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if size, err := b.Size("a.dat"); err != nil || size != int64(len(payload)) {
			t.Fatalf("Size = %d, %v", size, err)
		}
		r, err := b.Open("a.dat")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		got := make([]byte, len(payload))
		if n, err := r.ReadAt(got, 0); n != len(payload) || (err != nil && err != io.EOF) {
			t.Fatalf("ReadAt = %d, %v", n, err)
		}
		if string(got) != string(payload) {
			t.Errorf("read %q, want %q", got, payload)
		}
	})

	t.Run("readat-eof", func(t *testing.T) {
		w, _ := b.Create("eof.dat")
		w.Write([]byte("1234")) //nolint:errcheck
		w.Close()               //nolint:errcheck
		r, err := b.Open("eof.dat")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		buf := make([]byte, 8)
		n, err := r.ReadAt(buf, 0)
		if n != 4 || !errors.Is(err, io.EOF) {
			t.Errorf("short ReadAt = %d, %v; want 4, EOF", n, err)
		}
		if n, err := r.ReadAt(buf, 100); n != 0 || !errors.Is(err, io.EOF) {
			t.Errorf("past-EOF ReadAt = %d, %v; want 0, EOF", n, err)
		}
	})

	t.Run("create-truncates", func(t *testing.T) {
		w, _ := b.Create("t.dat")
		w.Write([]byte("long old content")) //nolint:errcheck
		w.Close()                           //nolint:errcheck
		w2, _ := b.Create("t.dat")
		w2.Write([]byte("new")) //nolint:errcheck
		w2.Close()              //nolint:errcheck
		if size, err := b.Size("t.dat"); err != nil || size != 3 {
			t.Errorf("Size after truncate = %d, %v", size, err)
		}
	})

	t.Run("exists-remove", func(t *testing.T) {
		w, _ := b.Create("r.dat")
		w.Close() //nolint:errcheck
		if !b.Exists("r.dat") {
			t.Error("Exists = false after Create")
		}
		if err := b.Remove("r.dat"); err != nil {
			t.Fatal(err)
		}
		if b.Exists("r.dat") {
			t.Error("Exists = true after Remove")
		}
		if err := b.Remove("r.dat"); err == nil {
			t.Error("Remove of missing file: want error")
		}
		if _, err := b.Open("r.dat"); err == nil {
			t.Error("Open of missing file: want error")
		}
		if _, err := b.Size("r.dat"); err == nil {
			t.Error("Size of missing file: want error")
		}
	})

	t.Run("abort-discards", func(t *testing.T) {
		w, _ := b.Create("ab.dat")
		w.Write([]byte("junk")) //nolint:errcheck
		w.Abort()
		if b.Exists("ab.dat") {
			t.Error("Exists = true after Abort")
		}
	})

	t.Run("meta-roundtrip", func(t *testing.T) {
		if err := b.WriteMeta("MANIFEST.json", []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteMeta("MANIFEST.json", []byte(`{"v":2}`)); err != nil {
			t.Fatal(err)
		}
		data, err := b.ReadMeta("MANIFEST.json")
		if err != nil || string(data) != `{"v":2}` {
			t.Errorf("ReadMeta = %q, %v", data, err)
		}
		if _, err := b.ReadMeta("missing.json"); err == nil {
			t.Error("ReadMeta of missing file: want error")
		}
	})

	t.Run("sync-and-list", func(t *testing.T) {
		w, _ := b.Create("ls/one.dat")
		w.Write([]byte("a")) //nolint:errcheck
		w.Close()            //nolint:errcheck
		w, _ = b.Create("ls/two.dat")
		w.Write([]byte("b")) //nolint:errcheck
		w.Close()            //nolint:errcheck
		if err := b.WriteMeta("ls/META.json", []byte("{}")); err != nil {
			t.Fatal(err)
		}
		// Sync after a mix of data writes, a meta commit and a remove.
		if err := b.Remove("ls/two.dat"); err != nil {
			t.Fatal(err)
		}
		if err := b.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		names, err := b.List("ls/")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"ls/META.json", "ls/one.dat"}
		if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
			t.Errorf("List(ls/) = %v, want %v", names, want)
		}
		if all, err := b.List(""); err != nil || len(all) < 2 {
			t.Errorf("List(\"\") = %v, %v", all, err)
		}
	})

	t.Run("independent-handles", func(t *testing.T) {
		w, _ := b.Create("h.dat")
		w.Write([]byte("abcdefgh")) //nolint:errcheck
		w.Close()                   //nolint:errcheck
		r1, err := b.Open("h.dat")
		if err != nil {
			t.Fatal(err)
		}
		r2, err := b.Open("h.dat")
		if err != nil {
			t.Fatal(err)
		}
		buf1, buf2 := make([]byte, 4), make([]byte, 4)
		r1.ReadAt(buf1, 0) //nolint:errcheck
		r2.ReadAt(buf2, 4) //nolint:errcheck
		if string(buf1) != "abcd" || string(buf2) != "efgh" {
			t.Errorf("handles interfered: %q, %q", buf1, buf2)
		}
		if err := r1.Close(); err != nil {
			t.Fatal(err)
		}
		if n, err := r2.ReadAt(buf2, 0); n != 4 || (err != nil && err != io.EOF) {
			t.Errorf("read after sibling close = %d, %v", n, err)
		}
		r2.Close() //nolint:errcheck
	})
}

// TestManagerOnEveryBackend runs the element-level Manager flow (write,
// sequential scan, random reads, stats) over each backend.
func TestManagerOnEveryBackend(t *testing.T) {
	for kind, b := range backends(t) {
		t.Run(kind, func(t *testing.T) {
			m, err := NewManagerOn(b, 64) // 8 elements per block
			if err != nil {
				t.Fatal(err)
			}
			w, err := m.Create("vals.dat")
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 20; i++ {
				if err := w.Append(i * 10); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if n, err := m.Size("vals.dat"); err != nil || n != 20 {
				t.Fatalf("Size = %d, %v", n, err)
			}

			r, err := m.OpenSequential("vals.dat")
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); ; i++ {
				v, ok, err := r.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					if i != 20 {
						t.Fatalf("scan ended at %d elements", i)
					}
					break
				}
				if v != i*10 {
					t.Fatalf("element %d = %d", i, v)
				}
			}
			r.Close() //nolint:errcheck

			rr, err := m.OpenRandom("vals.dat")
			if err != nil {
				t.Fatal(err)
			}
			vals, err := rr.Block(2) // elements 16..19
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) != 4 || vals[0] != 160 {
				t.Fatalf("block 2 = %v", vals)
			}
			rr.Close() //nolint:errcheck

			st := m.Stats()
			if st.SeqWrites != 3 || st.SeqReads != 3 || st.RandReads != 1 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

// TestMetaWriteFaultEveryBackend pins the fix for meta writes bypassing the
// fault hook: on every backend, Manager.WriteMeta must consult the hook
// (as OpMetaWrite) before touching the backend, and Manager.Sync likewise
// (as OpSync), so fault-injection tests can fail manifest commits.
func TestMetaWriteFaultEveryBackend(t *testing.T) {
	injected := errors.New("injected meta fault")
	for kind, b := range backends(t) {
		t.Run(kind, func(t *testing.T) {
			m, err := NewManagerOn(b, 64)
			if err != nil {
				t.Fatal(err)
			}
			var sawMeta, sawSync bool
			m.SetFault(func(op Op, name string, block int64) error {
				switch op {
				case OpMetaWrite:
					sawMeta = true
					return injected
				case OpSync:
					sawSync = true
					return injected
				}
				return nil
			})
			if err := m.WriteMeta("M.json", []byte("{}")); !errors.Is(err, injected) {
				t.Errorf("WriteMeta under fault = %v, want injected", err)
			}
			if !sawMeta {
				t.Error("fault hook never saw OpMetaWrite")
			}
			if b.Exists("M.json") {
				t.Error("meta file written despite injected fault")
			}
			if err := m.Sync(); !errors.Is(err, injected) {
				t.Errorf("Sync under fault = %v, want injected", err)
			}
			if !sawSync {
				t.Error("fault hook never saw OpSync")
			}
			// The hook sees device-wide (prefixed) names on namespaced views.
			m.SetFault(func(op Op, name string, block int64) error {
				if op == OpMetaWrite && name != "ns/M.json" {
					return fmt.Errorf("hook saw %q, want ns/M.json", name)
				}
				return nil
			})
			view, err := m.Namespace("ns")
			if err != nil {
				t.Fatal(err)
			}
			if err := view.WriteMeta("M.json", []byte("{}")); err != nil {
				t.Errorf("namespaced WriteMeta: %v", err)
			}
		})
	}
}

// TestStatsSubClamps is the regression test for the reset-between-snapshots
// underflow: Sub must clamp at zero, not wrap around.
func TestStatsSubClamps(t *testing.T) {
	big := Stats{SeqReads: 5, SeqWrites: 7, RandReads: 9, BytesRead: 11, BytesWritten: 13, Opens: 2, CacheHits: 3, CacheMisses: 4}
	if d := (Stats{}).Sub(big); d != (Stats{}) {
		t.Errorf("zero.Sub(big) = %+v, want all-zero", d)
	}
	d := (Stats{SeqReads: 6, RandReads: 4}).Sub(big)
	want := Stats{SeqReads: 1}
	if d != want {
		t.Errorf("mixed Sub = %+v, want %+v", d, want)
	}

	// The original bug: reset between snapshots made Sub wrap to ~2^64.
	m, err := NewManagerOn(NewMemBackend(), 64)
	if err != nil {
		t.Fatal(err)
	}
	before := func() Stats {
		w, _ := m.Create("x.dat")
		w.Append(1) //nolint:errcheck
		w.Close()   //nolint:errcheck
		return m.Stats()
	}()
	m.ResetStats()
	after := m.Stats()
	if d := after.Sub(before); d.Total() != 0 || d.Opens != 0 {
		t.Errorf("Sub across ResetStats = %+v, want zeros", d)
	}
}

// TestFileBackendRequiresDir pins the constructor contract.
func TestFileBackendRequiresDir(t *testing.T) {
	if _, err := NewFileBackend(""); err == nil {
		t.Error("NewFileBackend(\"\"): want error")
	}
	if _, err := OpenBackend("tape", ""); err == nil {
		t.Error("OpenBackend(\"tape\"): want error")
	}
	b, err := OpenBackend("", t.TempDir())
	if err != nil || b.Kind() != "file" {
		t.Errorf("OpenBackend(\"\") = %v, %v", b, err)
	}
	if _, err := os.Stat(b.Root()); err != nil {
		t.Errorf("file backend root missing: %v", err)
	}
	mb, err := OpenBackend("mem", "ignored")
	if err != nil || mb.Kind() != "mem" || mb.Root() != "" {
		t.Errorf("OpenBackend(\"mem\") = %v, %v", mb, err)
	}
}
