package disk

import (
	"errors"
	"testing"
)

// crashWrite writes one file of the given content through a write handle.
func crashWrite(t *testing.T, b *CrashBackend, name string, data []byte) {
	t.Helper()
	w, err := b.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashBackendDropUnsynced: a restart that drops unsynced writes must
// roll back to exactly the last Sync — later writes, meta commits and
// removes all vanish.
func TestCrashBackendDropUnsynced(t *testing.T) {
	b := NewCrashBackend()
	crashWrite(t, b, "a.dat", []byte("durable"))
	if err := b.WriteMeta("M.json", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}

	// Unsynced tail: new file, meta replacement, removal of the old file.
	crashWrite(t, b, "b.dat", []byte("volatile"))
	if err := b.WriteMeta("M.json", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove("a.dat"); err != nil {
		t.Fatal(err)
	}

	b.SetCrashPoint(b.Ops(), false) // crash on the very next op
	if _, err := b.Create("c.dat"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op at crash point = %v, want ErrCrashed", err)
	}
	if !b.Crashed() {
		t.Fatal("Crashed() = false after crash point fired")
	}
	// All I/O is frozen, reads included.
	if _, err := b.Open("a.dat"); !errors.Is(err, ErrCrashed) {
		t.Errorf("read after crash = %v, want ErrCrashed", err)
	}
	if _, err := b.ReadMeta("M.json"); !errors.Is(err, ErrCrashed) {
		t.Errorf("meta read after crash = %v, want ErrCrashed", err)
	}

	b.Restart(false) // drop unsynced
	if !b.Exists("a.dat") {
		t.Error("synced a.dat lost (unsynced Remove survived the drop)")
	}
	if b.Exists("b.dat") {
		t.Error("unsynced b.dat survived the drop")
	}
	if data, err := b.ReadMeta("M.json"); err != nil || string(data) != "v1" {
		t.Errorf("meta after drop = %q, %v; want v1", data, err)
	}
}

// TestCrashBackendKeepUnsynced: a restart that keeps unsynced writes must
// expose them all, including a torn tail on the crashing write.
func TestCrashBackendKeepUnsynced(t *testing.T) {
	b := NewCrashBackend()
	crashWrite(t, b, "a.dat", []byte("durable!"))
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	crashWrite(t, b, "b.dat", []byte("unsynced"))

	// Crash tearing the next write: Create is one op, the Write the next.
	b.SetCrashPoint(b.Ops()+1, true)
	w, err := b.Create("torn.dat")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	if _, err := w.Write(payload); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write = %v, want ErrCrashed", err)
	}
	w.Abort() // a dying writer's deferred Abort must not resurrect I/O

	b.Restart(true) // keep unsynced, torn tail included
	if !b.Exists("b.dat") {
		t.Error("unsynced b.dat lost in keep mode")
	}
	n, err := b.Size("torn.dat")
	if err != nil {
		t.Fatalf("torn.dat gone: %v", err)
	}
	if n == 0 || n >= int64(len(payload)) {
		t.Errorf("torn.dat size = %d, want a strict prefix of %d", n, len(payload))
	}
	if n%ElementSize == 0 {
		t.Errorf("torn.dat size %d is element-aligned; tear should misalign", n)
	}
}

// TestCrashBackendDeterministicOps: the mutating-op counter must be
// independent of interleaved reads, so a counting run predicts crash
// indices for replays.
func TestCrashBackendDeterministicOps(t *testing.T) {
	run := func(withReads bool) int64 {
		b := NewCrashBackend()
		crashWrite(t, b, "x.dat", []byte("0123456789abcdef"))
		if withReads {
			r, err := b.Open("x.dat")
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 4)
			r.ReadAt(buf, 2) //nolint:errcheck
			r.Close()        //nolint:errcheck
			b.Exists("x.dat")
			b.Size("x.dat") //nolint:errcheck
			b.List("")      //nolint:errcheck
		}
		if err := b.WriteMeta("M.json", []byte("{}")); err != nil {
			t.Fatal(err)
		}
		if err := b.Sync(); err != nil {
			t.Fatal(err)
		}
		return b.Ops()
	}
	quiet, noisy := run(false), run(true)
	if quiet != noisy {
		t.Errorf("op counter depends on reads: %d vs %d", quiet, noisy)
	}
	if quiet == 0 {
		t.Error("no ops counted")
	}
}

// TestCrashBackendCrashOnSync: a crash landing on the Sync op must leave
// the durable image at its previous state.
func TestCrashBackendCrashOnSync(t *testing.T) {
	b := NewCrashBackend()
	crashWrite(t, b, "a.dat", []byte("one"))
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	crashWrite(t, b, "b.dat", []byte("two"))
	b.SetCrashPoint(b.Ops(), false)
	if err := b.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync at crash point = %v, want ErrCrashed", err)
	}
	b.Restart(false)
	if b.Exists("b.dat") {
		t.Error("b.dat durable although its Sync crashed")
	}
	if !b.Exists("a.dat") {
		t.Error("a.dat lost")
	}
}
