package disk

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// MemBackend keeps every file in heap memory. It exists for fast tests and
// benchmarks, for cache-simulation experiments where real file I/O would
// drown the signal, and as the hot tier of future hybrid engines. Semantics
// mirror the file backend: Create truncates, writes become visible to
// readers as they land, readers opened at some length may read past it if
// the file has since grown (ReadAt is length-checked per call).
type MemBackend struct {
	mu    sync.RWMutex
	files map[string]*memFile
}

// memFile is one in-memory file. Its own lock serializes data access so a
// writer and independent readers can interleave like os file handles do.
type memFile struct {
	mu   sync.RWMutex
	data []byte
}

// NewMemBackend creates an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: make(map[string]*memFile)}
}

// Kind returns "mem".
func (b *MemBackend) Kind() string { return "mem" }

// Root returns "" — there is no filesystem root.
func (b *MemBackend) Root() string { return "" }

func (b *MemBackend) lookup(name string) (*memFile, error) {
	b.mu.RLock()
	f := b.files[name]
	b.mu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("mem: open %s: file does not exist", name)
	}
	return f, nil
}

// Open returns a random-access read handle for the named file.
func (b *MemBackend) Open(name string) (ReadHandle, error) {
	f, err := b.lookup(name)
	if err != nil {
		return nil, err
	}
	return &memReadHandle{f: f}, nil
}

// Create truncates (or creates) the named file for appending.
func (b *MemBackend) Create(name string) (WriteHandle, error) {
	f := &memFile{}
	b.mu.Lock()
	b.files[name] = f
	b.mu.Unlock()
	return &memWriteHandle{b: b, name: name, f: f}, nil
}

// Remove deletes the named file.
func (b *MemBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.files[name]; !ok {
		return fmt.Errorf("mem: remove %s: file does not exist", name)
	}
	delete(b.files, name)
	return nil
}

// Size returns the byte length of the named file.
func (b *MemBackend) Size(name string) (int64, error) {
	f, err := b.lookup(name)
	if err != nil {
		return 0, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data)), nil
}

// Exists reports whether the named file exists.
func (b *MemBackend) Exists(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.files[name]
	return ok
}

// WriteMeta replaces a metadata file (inherently atomic under the lock).
func (b *MemBackend) WriteMeta(name string, data []byte) error {
	b.mu.Lock()
	b.files[name] = &memFile{data: append([]byte(nil), data...)}
	b.mu.Unlock()
	return nil
}

// ReadMeta reads a metadata file.
func (b *MemBackend) ReadMeta(name string) ([]byte, error) {
	f, err := b.lookup(name)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]byte(nil), f.data...), nil
}

// Sync is a no-op: heap memory has no separate durable tier. (MemBackend
// state dies with the process regardless; CrashBackend models the volatile/
// durable split for crash simulation.)
func (b *MemBackend) Sync() error { return nil }

// List returns the names of all files with the given prefix, sorted.
func (b *MemBackend) List(prefix string) ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []string
	for name := range b.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// MemoryBytes returns the total bytes held across all files, for tests and
// capacity diagnostics.
func (b *MemBackend) MemoryBytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var n int64
	for _, f := range b.files {
		f.mu.RLock()
		n += int64(len(f.data))
		f.mu.RUnlock()
	}
	return n
}

type memReadHandle struct {
	f      *memFile
	closed bool
}

func (h *memReadHandle) ReadAt(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("mem: read from closed handle")
	}
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("mem: negative offset %d", off)
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size returns the current length of the file this handle references (the
// original memFile, even if the name has since been recreated).
func (h *memReadHandle) Size() (int64, error) {
	if h.closed {
		return 0, fmt.Errorf("mem: stat of closed handle")
	}
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	return int64(len(h.f.data)), nil
}

func (h *memReadHandle) Close() error {
	h.closed = true
	return nil
}

type memWriteHandle struct {
	b      *MemBackend
	name   string
	f      *memFile
	closed bool
}

func (h *memWriteHandle) Write(p []byte) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("mem: write to closed handle %s", h.name)
	}
	h.f.mu.Lock()
	h.f.data = append(h.f.data, p...)
	h.f.mu.Unlock()
	return len(p), nil
}

func (h *memWriteHandle) Close() error {
	h.closed = true
	return nil
}

func (h *memWriteHandle) Abort() {
	h.closed = true
	h.b.mu.Lock()
	if h.b.files[h.name] == h.f {
		delete(h.b.files, h.name)
	}
	h.b.mu.Unlock()
}
