package disk

import (
	"sync/atomic"
	"time"
)

// Latency models a storage medium by injecting a fixed delay per block
// operation. The paper's cost model assumes a fast hard disk at ~1 ms per
// block access (§2.4 example); file-system caches on a development machine
// make real timings meaningless at small scale, so experiments can opt into
// simulated latency to recover the paper's time-vs-I/O proportionality.
type Latency struct {
	// SeqRead, SeqWrite and RandRead delay the respective operations.
	// Sequential operations on spinning media amortize seeks, so they are
	// typically set 10-100× lower than RandRead.
	SeqRead, SeqWrite, RandRead time.Duration
}

// HDD is a spinning-disk profile: ~1 ms random access (the paper's
// assumption), sequential transfers amortized to 50 µs per 100 KB block.
var HDD = Latency{SeqRead: 50 * time.Microsecond, SeqWrite: 50 * time.Microsecond, RandRead: time.Millisecond}

// SSD is a flash profile: 80 µs random reads, 20 µs sequential block
// transfers.
var SSD = Latency{SeqRead: 20 * time.Microsecond, SeqWrite: 20 * time.Microsecond, RandRead: 80 * time.Microsecond}

// SetLatency installs a simulated latency profile device-wide (it applies
// to every namespaced view of the device); the zero Latency disables
// simulation. Safe to call concurrently with I/O.
func (m *Manager) SetLatency(l Latency) {
	m.dev.latSeqRead.Store(int64(l.SeqRead))
	m.dev.latSeqWrite.Store(int64(l.SeqWrite))
	m.dev.latRandRead.Store(int64(l.RandRead))
}

// sleepFor blocks for the simulated duration of op, if any.
func (m *Manager) sleepFor(op Op) {
	var d int64
	switch op {
	case OpSeqRead:
		d = m.dev.latSeqRead.Load()
	case OpSeqWrite:
		d = m.dev.latSeqWrite.Load()
	case OpRandRead:
		d = m.dev.latRandRead.Load()
	}
	if d > 0 {
		time.Sleep(time.Duration(d))
		m.dev.simulatedNs.Add(d)
	}
}

// SimulatedLatency returns the total simulated delay injected so far,
// device-wide.
func (m *Manager) SimulatedLatency() time.Duration {
	return time.Duration(m.dev.simulatedNs.Load())
}

// latencyFields are embedded in the shared device (declared here to keep
// the latency concern in one file).
type latencyFields struct {
	latSeqRead  atomic.Int64
	latSeqWrite atomic.Int64
	latRandRead atomic.Int64
	simulatedNs atomic.Int64
}
