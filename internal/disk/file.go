package disk

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileBackend stores each element file as a flat file inside a root
// directory — the seed's original (and the paper's implicit) storage model.
//
// Durability: writes land in the OS page cache and are flushed by Sync,
// which fsyncs every file written (and every directory whose entries
// changed) since the previous barrier. WriteMeta is crash-atomic: the new
// content is written to a temp file, fsynced, and renamed over the target,
// so a crash can expose the old or the new manifest but never a torn one.
type FileBackend struct {
	root string

	mu    sync.Mutex
	seq   uint64            // bumped by every markDirty batch
	dirty map[string]uint64 // path (file or dir) → seq of its latest mark
}

// NewFileBackend creates (if absent) and roots a backend at dir.
func NewFileBackend(dir string) (*FileBackend, error) {
	if dir == "" {
		return nil, fmt.Errorf("disk: file backend requires a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: create root: %w", err)
	}
	return &FileBackend{root: dir, dirty: make(map[string]uint64)}, nil
}

// Kind returns "file".
func (b *FileBackend) Kind() string { return "file" }

// Root returns the backing directory.
func (b *FileBackend) Root() string { return b.root }

func (b *FileBackend) path(name string) string {
	return filepath.Join(b.root, filepath.FromSlash(name))
}

// markDirty records paths for fsync at the next Sync barrier. Each mark is
// versioned so a concurrent Sync never clears a mark added after it read
// the set.
func (b *FileBackend) markDirty(paths ...string) {
	b.mu.Lock()
	b.seq++
	for _, p := range paths {
		b.dirty[p] = b.seq
	}
	b.mu.Unlock()
}

// markDirtyChain marks the whole directory chain from path's parent up to
// (and including) the backend root. MkdirAll may have just created several
// levels of that chain, and a new directory is only durable once the entry
// naming it in its own parent is fsynced — all the way up.
func (b *FileBackend) markDirtyChain(path string) {
	var dirs []string
	root := filepath.Clean(b.root)
	for dir := filepath.Dir(filepath.Clean(path)); ; dir = filepath.Dir(dir) {
		dirs = append(dirs, dir)
		if dir == root || dir == filepath.Dir(dir) {
			break // reached the backend root (or, defensively, "/")
		}
	}
	b.markDirty(dirs...)
}

// ensureParent creates the parent directory chain of path, so namespaced
// names ("streams/api.latency/part-000001.dat") map onto subdirectories.
func ensureParent(path string) error {
	dir := filepath.Dir(path)
	if dir == "." || dir == "" {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

// Open returns a random-access read handle for the named file.
func (b *FileBackend) Open(name string) (ReadHandle, error) {
	f, err := os.Open(b.path(name))
	if err != nil {
		return nil, err
	}
	return &fileReadHandle{f: f}, nil
}

// fileReadHandle adds handle-consistent sizing to *os.File: Size fstats the
// open descriptor, so it always describes the file ReadAt reads even if the
// name was recreated meanwhile.
type fileReadHandle struct {
	f *os.File
}

func (h *fileReadHandle) ReadAt(p []byte, off int64) (int, error) { return h.f.ReadAt(p, off) }
func (h *fileReadHandle) Close() error                            { return h.f.Close() }

func (h *fileReadHandle) Size() (int64, error) {
	fi, err := h.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Create truncates (or creates) the named file for appending, creating
// parent directories for namespaced names.
func (b *FileBackend) Create(name string) (WriteHandle, error) {
	path := b.path(name)
	if err := ensureParent(path); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	// ensureParent may have created directories; their entries (all the way
	// up) must be flushed at the next barrier for the file to be reachable.
	b.markDirtyChain(path)
	return &fileWriteHandle{b: b, f: f, path: path}, nil
}

// Remove deletes the named file. The directory-entry change becomes durable
// at the next Sync.
func (b *FileBackend) Remove(name string) error {
	path := b.path(name)
	if err := os.Remove(path); err != nil {
		return err
	}
	b.markDirty(filepath.Dir(path))
	return nil
}

// Size returns the byte length of the named file.
func (b *FileBackend) Size(name string) (int64, error) {
	fi, err := os.Stat(b.path(name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Exists reports whether the named file exists.
func (b *FileBackend) Exists(name string) bool {
	_, err := os.Stat(b.path(name))
	return err == nil
}

// WriteMeta atomically replaces a metadata file via write-to-temp + fsync +
// rename. The temp file is fsynced before the rename so a crash can never
// expose a torn manifest under the target name; the rename itself (the
// directory entry) becomes durable at the next Sync.
func (b *FileBackend) WriteMeta(name string, data []byte) error {
	path := b.path(name)
	if err := ensureParent(path); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()      //nolint:errcheck // already failing
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()      //nolint:errcheck // already failing
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	b.markDirtyChain(path)
	return nil
}

// ReadMeta reads a metadata file.
func (b *FileBackend) ReadMeta(name string) ([]byte, error) {
	return os.ReadFile(b.path(name))
}

// Sync fsyncs every file and directory written since the last barrier.
// Paths removed in the meantime are skipped: the removal itself was
// recorded as a dirty parent directory. A dirty entry is only cleared
// after its fsync succeeds (and only if it was not re-marked meanwhile),
// so a failed barrier leaves every unflushed path pending and a retrying
// Sync re-covers them — it can never report durability it did not achieve.
func (b *FileBackend) Sync() error {
	b.mu.Lock()
	pending := make(map[string]uint64, len(b.dirty))
	paths := make([]string, 0, len(b.dirty))
	for p, seq := range b.dirty {
		pending[p] = seq
		paths = append(paths, p)
	}
	b.mu.Unlock()
	// Sync deepest paths first so file contents are durable before the
	// directory entries that make them reachable.
	sort.Slice(paths, func(i, j int) bool { return len(paths[i]) > len(paths[j]) })
	for _, p := range paths {
		if err := fsyncPath(p); err != nil {
			return err
		}
		b.mu.Lock()
		if b.dirty[p] == pending[p] {
			delete(b.dirty, p)
		}
		b.mu.Unlock()
	}
	return nil
}

// fsyncPath fsyncs one file or directory; a vanished path is fine (its
// removal dirtied the parent directory, which is synced separately).
func fsyncPath(p string) error {
	f, err := os.Open(p)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("disk: sync %s: %w", p, err)
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return fmt.Errorf("disk: sync %s: %w", p, serr)
	}
	if cerr != nil {
		return fmt.Errorf("disk: sync %s: %w", p, cerr)
	}
	return nil
}

// List walks the root and returns every file whose slash-separated name
// starts with prefix.
func (b *FileBackend) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(b.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // removed mid-walk
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(b.root, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("disk: list %q: %w", prefix, err)
	}
	sort.Strings(out)
	return out, nil
}

// fileWriteHandle adapts *os.File to WriteHandle with Abort support.
type fileWriteHandle struct {
	b    *FileBackend
	f    *os.File
	path string
}

func (h *fileWriteHandle) Write(p []byte) (int, error) { return h.f.Write(p) }

func (h *fileWriteHandle) Close() error {
	if err := h.f.Close(); err != nil {
		return err
	}
	// The finished file (and the directory entry that names it) must be
	// flushed at the next barrier.
	h.b.markDirty(h.path, filepath.Dir(h.path))
	return nil
}

func (h *fileWriteHandle) Abort() {
	h.f.Close()       //nolint:errcheck // best-effort discard
	os.Remove(h.path) //nolint:errcheck
}
