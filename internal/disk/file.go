package disk

import (
	"fmt"
	"os"
	"path/filepath"
)

// FileBackend stores each element file as a flat file inside a root
// directory — the seed's original (and the paper's implicit) storage model.
type FileBackend struct {
	root string
}

// NewFileBackend creates (if absent) and roots a backend at dir.
func NewFileBackend(dir string) (*FileBackend, error) {
	if dir == "" {
		return nil, fmt.Errorf("disk: file backend requires a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: create root: %w", err)
	}
	return &FileBackend{root: dir}, nil
}

// Kind returns "file".
func (b *FileBackend) Kind() string { return "file" }

// Root returns the backing directory.
func (b *FileBackend) Root() string { return b.root }

func (b *FileBackend) path(name string) string {
	return filepath.Join(b.root, filepath.FromSlash(name))
}

// ensureParent creates the parent directory chain of path, so namespaced
// names ("streams/api.latency/part-000001.dat") map onto subdirectories.
func ensureParent(path string) error {
	dir := filepath.Dir(path)
	if dir == "." || dir == "" {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

// Open returns a random-access read handle for the named file.
func (b *FileBackend) Open(name string) (ReadHandle, error) {
	f, err := os.Open(b.path(name))
	if err != nil {
		return nil, err
	}
	return &fileReadHandle{f: f}, nil
}

// fileReadHandle adds handle-consistent sizing to *os.File: Size fstats the
// open descriptor, so it always describes the file ReadAt reads even if the
// name was recreated meanwhile.
type fileReadHandle struct {
	f *os.File
}

func (h *fileReadHandle) ReadAt(p []byte, off int64) (int, error) { return h.f.ReadAt(p, off) }
func (h *fileReadHandle) Close() error                            { return h.f.Close() }

func (h *fileReadHandle) Size() (int64, error) {
	fi, err := h.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Create truncates (or creates) the named file for appending, creating
// parent directories for namespaced names.
func (b *FileBackend) Create(name string) (WriteHandle, error) {
	path := b.path(name)
	if err := ensureParent(path); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &fileWriteHandle{f: f, path: path}, nil
}

// Remove deletes the named file.
func (b *FileBackend) Remove(name string) error {
	return os.Remove(b.path(name))
}

// Size returns the byte length of the named file.
func (b *FileBackend) Size(name string) (int64, error) {
	fi, err := os.Stat(b.path(name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Exists reports whether the named file exists.
func (b *FileBackend) Exists(name string) bool {
	_, err := os.Stat(b.path(name))
	return err == nil
}

// WriteMeta atomically replaces a metadata file via write-to-temp + rename.
func (b *FileBackend) WriteMeta(name string, data []byte) error {
	path := b.path(name)
	if err := ensureParent(path); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadMeta reads a metadata file.
func (b *FileBackend) ReadMeta(name string) ([]byte, error) {
	return os.ReadFile(b.path(name))
}

// fileWriteHandle adapts *os.File to WriteHandle with Abort support.
type fileWriteHandle struct {
	f    *os.File
	path string
}

func (h *fileWriteHandle) Write(p []byte) (int, error) { return h.f.Write(p) }
func (h *fileWriteHandle) Close() error                { return h.f.Close() }

func (h *fileWriteHandle) Abort() {
	h.f.Close()       //nolint:errcheck // best-effort discard
	os.Remove(h.path) //nolint:errcheck
}
