package disk

import (
	"encoding/binary"
	"fmt"

	"repro/internal/enc"
)

// Writer writes elements sequentially to a file, one block at a time.
// Every flushed block counts as one sequential write — for both formats, a
// block reaches the backend in exactly one Write call, which is the crash
// granularity the crash-simulation backend depends on. The final, possibly
// partial block also counts as one write; a columnar file additionally
// writes its footer (index + trailer) as one more sequential write at Close.
// Writer is not safe for concurrent use.
type Writer struct {
	m      *Manager
	name   string
	h      WriteHandle
	format BlockFormat
	buf    []byte // staging: raw = one block of elements; columnar = assembled output block
	fill   int    // raw format: elements staged in buf
	count  int64  // elements written so far
	blocks int64  // blocks flushed so far
	closed bool

	// Columnar state. The frame is encoded incrementally as elements arrive;
	// vals retains the block's plain values for the raw-frame fallback and
	// the header's min/max bounds.
	budget int     // max frame bytes per block (blockSize - header)
	frame  []byte  // delta-varint frame of the current block
	vals   []int64 // plain values of the current block
	prev   int64   // last encoded value (delta base)
	off    int64   // file bytes written so far
	index  []byte  // accumulated footer index entries
	tmp    [enc.MaxVarintLen64]byte
}

// Create creates (truncating if present) the named element file in the
// device's default block format and returns a sequential Writer for it.
func (m *Manager) Create(name string) (*Writer, error) {
	return m.CreateFormat(name, m.DefaultBlockFormat())
}

// CreateFormat creates the named element file in an explicit block format,
// overriding the device default — the store pins unsorted batch spills to
// FormatRaw, where delta encoding would only waste space.
func (m *Manager) CreateFormat(name string, f BlockFormat) (*Writer, error) {
	key := m.key(name)
	if f == FormatColumnar && m.dev.blockSize < colMinBlockSize {
		return nil, fmt.Errorf("disk: create %s: block size %d too small for columnar format (min %d)",
			key, m.dev.blockSize, colMinBlockSize)
	}
	if err := m.injected(OpOpen, key, 0); err != nil {
		return nil, fmt.Errorf("disk: create %s: %w", key, err)
	}
	h, err := m.dev.backend.Create(key)
	if err != nil {
		return nil, fmt.Errorf("disk: create %s: %w", key, err)
	}
	// Truncation makes any cached blocks of the old content stale;
	// invalidate after the backend mutation so a read completing just
	// before the truncation cannot repopulate behind the invalidation.
	// (Reusing a name while readers of the old content are still active is
	// not supported — the store's monotonic IDs never do this.)
	m.invalidate(key)
	m.countOpen()
	w := &Writer{
		m:      m,
		name:   key,
		h:      h,
		format: f,
	}
	if f == FormatColumnar {
		w.budget = m.dev.blockSize - colHeaderLen
		w.buf = make([]byte, 0, m.dev.blockSize+colHeadLen)
	} else {
		w.buf = make([]byte, m.dev.blockSize)
	}
	return w, nil
}

// Format returns the block format this writer produces.
func (w *Writer) Format() BlockFormat { return w.format }

// Append stages one element for writing.
func (w *Writer) Append(v int64) error {
	if w.closed {
		return fmt.Errorf("disk: write to closed writer %s", w.name)
	}
	if w.format == FormatColumnar {
		return w.appendColumnar(v)
	}
	encodeInto(w.buf[w.fill*ElementSize:], []int64{v})
	w.fill++
	w.count++
	if w.fill == w.m.dev.perBlock {
		return w.flushBlock()
	}
	return nil
}

// AppendSlice stages a slice of elements.
func (w *Writer) AppendSlice(vals []int64) error {
	for _, v := range vals {
		if err := w.Append(v); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) appendColumnar(v int64) error {
	// Wrapping delta; see enc.AppendDelta.
	n := binary.PutVarint(w.tmp[:], v-w.prev)
	if len(w.vals) > 0 && len(w.frame)+n > w.budget {
		if err := w.flushColumnar(); err != nil {
			return err
		}
		n = binary.PutVarint(w.tmp[:], v) // delta base reset to zero
	}
	w.frame = append(w.frame, w.tmp[:n]...)
	w.prev = v
	w.vals = append(w.vals, v)
	w.count++
	return nil
}

func (w *Writer) flushBlock() error {
	if w.fill == 0 {
		return nil
	}
	if err := w.m.injected(OpSeqWrite, w.name, w.blocks); err != nil {
		return fmt.Errorf("disk: write %s block %d: %w", w.name, w.blocks, err)
	}
	w.m.sleepFor(OpSeqWrite)
	n := w.fill * ElementSize
	if _, err := w.h.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("disk: write %s block %d: %w", w.name, w.blocks, err)
	}
	w.m.countSeqWrite(n)
	w.blocks++
	w.fill = 0
	return nil
}

// flushColumnar writes the staged block — header plus the smaller of the
// delta frame and a plain int64 frame — as one backend Write. The file's
// head magic rides on the first block's write so torn files never carry a
// valid head without at least one complete block behind it.
func (w *Writer) flushColumnar() error {
	cnt := len(w.vals)
	if cnt == 0 {
		return nil
	}
	out := w.buf[:0]
	if w.blocks == 0 {
		out = append(out, colMagic[:]...)
	}
	blockOff := w.off + int64(len(out))
	mn, mx := w.vals[0], w.vals[0]
	for _, v := range w.vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	// Reslicing within w.buf's fixed capacity: head magic (8) + header (25)
	// + frame (≤ blockSize-25) never exceeds cap = blockSize + 8.
	hdr := len(out)
	tag := byte(colTagDelta)
	frameLen := len(w.frame)
	if rawLen := cnt * ElementSize; rawLen <= w.budget && rawLen < frameLen {
		// Unsorted or adversarial data: the delta frame lost to plain
		// int64s, so store the block uncompressed under its own tag.
		tag = colTagRaw
		frameLen = rawLen
		out = out[:hdr+colHeaderLen+rawLen]
		encodeInto(out[hdr+colHeaderLen:], w.vals)
	} else {
		out = out[:hdr+colHeaderLen]
		out = append(out, w.frame...)
	}
	putColHeader(out[hdr:], tag, cnt, frameLen, mn, mx)

	if err := w.m.injected(OpSeqWrite, w.name, w.blocks); err != nil {
		return fmt.Errorf("disk: write %s block %d: %w", w.name, w.blocks, err)
	}
	w.m.sleepFor(OpSeqWrite)
	if _, err := w.h.Write(out); err != nil {
		return fmt.Errorf("disk: write %s block %d: %w", w.name, w.blocks, err)
	}
	w.m.countSeqWrite(len(out))
	w.buf = out[:0]

	var e [colIndexEntryLen]byte
	binary.LittleEndian.PutUint64(e[0:], uint64(blockOff))
	binary.LittleEndian.PutUint32(e[8:], uint32(cnt))
	binary.LittleEndian.PutUint64(e[12:], uint64(mn))
	binary.LittleEndian.PutUint64(e[20:], uint64(mx))
	w.index = append(w.index, e[:]...)

	w.off += int64(len(out))
	w.blocks++
	w.frame = w.frame[:0]
	w.vals = w.vals[:0]
	w.prev = 0
	return nil
}

// writeFooter appends the index section and trailer of a columnar file as
// one sequential write. An empty columnar file writes nothing at all — a
// zero-byte file is valid in both formats and opens as "no elements".
func (w *Writer) writeFooter() error {
	if w.format != FormatColumnar || w.blocks == 0 {
		return nil
	}
	footer := append(w.index, make([]byte, colTrailerLen)...)
	t := footer[len(footer)-colTrailerLen:]
	binary.LittleEndian.PutUint64(t[0:], uint64(w.count))
	binary.LittleEndian.PutUint64(t[8:], uint64(w.blocks))
	binary.LittleEndian.PutUint64(t[16:], uint64(len(w.index)))
	copy(t[24:], colMagic[:])
	if err := w.m.injected(OpSeqWrite, w.name, w.blocks); err != nil {
		return fmt.Errorf("disk: write %s footer: %w", w.name, err)
	}
	w.m.sleepFor(OpSeqWrite)
	if _, err := w.h.Write(footer); err != nil {
		return fmt.Errorf("disk: write %s footer: %w", w.name, err)
	}
	w.m.countSeqWrite(len(footer))
	return nil
}

// Count returns the number of elements appended so far.
func (w *Writer) Count() int64 { return w.count }

// Close flushes the final partial block (and, for columnar files, the
// footer) and closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.format == FormatColumnar {
		err = w.flushColumnar()
	} else {
		err = w.flushBlock()
	}
	if err == nil {
		err = w.writeFooter()
	}
	if err != nil {
		w.h.Close() //nolint:errcheck // already failing
		return err
	}
	if err := w.h.Close(); err != nil {
		return fmt.Errorf("disk: close %s: %w", w.name, err)
	}
	// A Size or open racing the write may have cached a provisional "format
	// 0" verdict for the half-written file; the finished file is the first
	// state worth remembering.
	w.m.dev.dropIndex(w.name)
	return nil
}

// Abort closes and removes the file, ignoring errors. Used on failed writes.
func (w *Writer) Abort() {
	w.closed = true
	w.h.Abort()
	w.m.dev.dropIndex(w.name)
}
