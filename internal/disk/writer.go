package disk

import (
	"fmt"
)

// Writer writes elements sequentially to a file, one block at a time.
// Every flushed block counts as one sequential write. The final, possibly
// partial block also counts as one write. Writer is not safe for concurrent
// use.
type Writer struct {
	m      *Manager
	name   string
	h      WriteHandle
	buf    []byte // one block of staging space
	fill   int    // elements staged in buf
	count  int64  // elements written so far
	blocks int64  // blocks flushed so far
	closed bool
}

// Create creates (truncating if present) the named element file and returns
// a sequential Writer for it.
func (m *Manager) Create(name string) (*Writer, error) {
	key := m.key(name)
	if err := m.injected(OpOpen, key, 0); err != nil {
		return nil, fmt.Errorf("disk: create %s: %w", key, err)
	}
	h, err := m.dev.backend.Create(key)
	if err != nil {
		return nil, fmt.Errorf("disk: create %s: %w", key, err)
	}
	// Truncation makes any cached blocks of the old content stale;
	// invalidate after the backend mutation so a read completing just
	// before the truncation cannot repopulate behind the invalidation.
	// (Reusing a name while readers of the old content are still active is
	// not supported — the store's monotonic IDs never do this.)
	m.invalidate(key)
	m.countOpen()
	return &Writer{
		m:    m,
		name: key,
		h:    h,
		buf:  make([]byte, m.dev.blockSize),
	}, nil
}

// Append stages one element for writing.
func (w *Writer) Append(v int64) error {
	if w.closed {
		return fmt.Errorf("disk: write to closed writer %s", w.name)
	}
	encodeInto(w.buf[w.fill*ElementSize:], []int64{v})
	w.fill++
	w.count++
	if w.fill == w.m.dev.perBlock {
		return w.flushBlock()
	}
	return nil
}

// AppendSlice stages a slice of elements.
func (w *Writer) AppendSlice(vals []int64) error {
	for _, v := range vals {
		if err := w.Append(v); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if w.fill == 0 {
		return nil
	}
	if err := w.m.injected(OpSeqWrite, w.name, w.blocks); err != nil {
		return fmt.Errorf("disk: write %s block %d: %w", w.name, w.blocks, err)
	}
	w.m.sleepFor(OpSeqWrite)
	n := w.fill * ElementSize
	if _, err := w.h.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("disk: write %s block %d: %w", w.name, w.blocks, err)
	}
	w.m.countSeqWrite(n)
	w.blocks++
	w.fill = 0
	return nil
}

// Count returns the number of elements appended so far.
func (w *Writer) Count() int64 { return w.count }

// Close flushes the final partial block and closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushBlock(); err != nil {
		w.h.Close() //nolint:errcheck // already failing
		return err
	}
	if err := w.h.Close(); err != nil {
		return fmt.Errorf("disk: close %s: %w", w.name, err)
	}
	return nil
}

// Abort closes and removes the file, ignoring errors. Used on failed writes.
func (w *Writer) Abort() {
	w.closed = true
	w.h.Abort()
}
