package disk

import (
	"fmt"
	"io"
)

// Backend is the storage seam beneath a Manager: a flat namespace of element
// files accessed at block granularity. The Manager layers accounting, fault
// injection, latency simulation and the block cache on top of a Backend, so
// every higher layer (extsort, partition, core, the engine) is independent of
// where blocks physically live.
//
// Two implementations ship with the package: the file backend (a directory
// of flat files, NewFileBackend) and MemBackend (a heap-resident map, for
// tests, benchmarks and cache simulation). Both must satisfy the conformance
// suite in conformance_test.go.
//
// Handles returned by Open and Create are independent: concurrent readers of
// one file each get their own handle, and a reader opened mid-write observes
// the length the file had at Open time via Size. Handles are not safe for
// concurrent use individually.
type Backend interface {
	// Open returns a random-access read handle for the named file.
	Open(name string) (ReadHandle, error)
	// Create truncates (or creates) the named file and returns an
	// append-only write handle.
	Create(name string) (WriteHandle, error)
	// Remove deletes the named file. Removing a non-existent file is an
	// error.
	Remove(name string) error
	// Size returns the byte length of the named file.
	Size(name string) (int64, error)
	// Exists reports whether the named file exists.
	Exists(name string) bool
	// WriteMeta atomically replaces the named metadata file (manifests,
	// small JSON). Metadata bypasses block accounting. The replacement must
	// be all-or-nothing even across a crash: after a restart the file holds
	// either the previous content or the new content in full, never a torn
	// mix (the file backend commits via write-temp → fsync → rename).
	// Durability of the new content is only guaranteed after a subsequent
	// Sync.
	WriteMeta(name string, data []byte) error
	// ReadMeta reads a metadata file written with WriteMeta.
	ReadMeta(name string) ([]byte, error)
	// Sync is the durability barrier: when it returns, every previously
	// completed write — data appended through a now-Closed WriteHandle,
	// WriteMeta replacements, Removes — survives a crash. Writes issued
	// after Sync returns carry no durability promise until the next Sync.
	Sync() error
	// List returns the names of all files (data and metadata) whose name
	// starts with prefix, in unspecified order. Used by crash recovery to
	// find orphaned files from half-finished installs.
	List(prefix string) ([]string, error)
	// Kind identifies the backend ("file", "mem", "crash") for diagnostics.
	Kind() string
	// Root returns the filesystem root for backends that have one, else "".
	Root() string
}

// ReadHandle reads byte ranges of one file. ReadAt follows io.ReaderAt
// semantics: a read crossing EOF returns the available bytes with io.EOF.
// Size reports the current byte length of the file the handle refers to —
// the same file ReadAt reads, even if the name has since been recreated.
type ReadHandle interface {
	io.ReaderAt
	io.Closer
	Size() (int64, error)
}

// WriteHandle appends bytes to one file. Abort discards the file entirely
// (best-effort, used on failed writes); Close makes the written data
// durable-on-backend.
type WriteHandle interface {
	io.Writer
	io.Closer
	Abort()
}

// OpenBackend constructs a backend by kind: "file" (or "") rooted at dir, or
// "mem" (dir is ignored). It is the single resolution point for the
// --backend knobs exposed by hsq.Config, cmd/hsqd and cmd/hsqbench.
func OpenBackend(kind, dir string) (Backend, error) {
	switch kind {
	case "", "file":
		return NewFileBackend(dir)
	case "mem":
		return NewMemBackend(), nil
	default:
		return nil, fmt.Errorf("disk: unknown backend %q (want \"file\" or \"mem\")", kind)
	}
}
