package disk

import (
	"math/rand"
	"testing"
)

// colDev returns a columnar-default Manager with 64-byte blocks over a mem
// backend.
func colDev(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManagerOn(NewMemBackend(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetBlockFormat(FormatColumnar); err != nil {
		t.Fatal(err)
	}
	return m
}

func writeFmt(t *testing.T, m *Manager, name string, f BlockFormat, vals []int64) {
	t.Helper()
	w, err := m.CreateFormat(name, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSlice(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func scanFile(t *testing.T, m *Manager, name string) []int64 {
	t.Helper()
	r, err := m.OpenSequential(name)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close() //nolint:errcheck
	var got []int64
	for {
		v, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return got
		}
		got = append(got, v)
	}
}

func sortedVals(n int) []int64 {
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(1000 + i*7)
	}
	return vs
}

// TestColumnarEveryBackend runs the Manager element flow with the columnar
// format over each backend: write, sequential scan, seek, random block
// access, Size — and confirms the compressed file packs several raw blocks'
// worth of elements per columnar block.
func TestColumnarEveryBackend(t *testing.T) {
	for kind, b := range backends(t) {
		t.Run(kind, func(t *testing.T) {
			m, err := NewManagerOn(b, 64) // raw: 8 elements per block
			if err != nil {
				t.Fatal(err)
			}
			if err := m.SetBlockFormat(FormatColumnar); err != nil {
				t.Fatal(err)
			}
			vals := sortedVals(100)
			writeFmt(t, m, "c.dat", FormatColumnar, vals)

			if n, err := m.Size("c.dat"); err != nil || n != 100 {
				t.Fatalf("Size = %d, %v", n, err)
			}
			got := scanFile(t, m, "c.dat")
			if len(got) != len(vals) {
				t.Fatalf("scan returned %d elements, want %d", len(got), len(vals))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("element %d = %d, want %d", i, got[i], vals[i])
				}
			}

			rr, err := m.OpenRandom("c.dat")
			if err != nil {
				t.Fatal(err)
			}
			defer rr.Close() //nolint:errcheck
			// Small deltas: each element encodes in ~1-2 bytes, so a 64-byte
			// block (39-byte frame budget) holds far more than raw's 8.
			if raw := (int64(100) + 7) / 8; rr.Blocks() >= raw {
				t.Errorf("columnar file has %d blocks, raw would have %d", rr.Blocks(), raw)
			}
			var sum int64
			for i := int64(0); i < rr.Blocks(); i++ {
				bv, err := rr.Block(i)
				if err != nil {
					t.Fatal(err)
				}
				if int64(len(bv)) != rr.BlockLen(i) {
					t.Errorf("block %d: %d elements, BlockLen says %d", i, len(bv), rr.BlockLen(i))
				}
				mn, mx, ok := rr.BlockBounds(i)
				if !ok {
					t.Fatalf("block %d: no bounds on columnar file", i)
				}
				if bv[0] != mn || bv[len(bv)-1] != mx {
					t.Errorf("block %d bounds [%d,%d], data [%d,%d]", i, mn, mx, bv[0], bv[len(bv)-1])
				}
				sum += int64(len(bv))
			}
			if sum != 100 {
				t.Errorf("blocks sum to %d elements, want 100", sum)
			}
		})
	}
}

// TestTinyFilesBothFormats is the regression test for element counts derived
// from size/ElementSize arithmetic: zero-length and single-element files
// must report exact counts in both formats.
func TestTinyFilesBothFormats(t *testing.T) {
	for _, f := range []BlockFormat{FormatRaw, FormatColumnar} {
		t.Run(f.String(), func(t *testing.T) {
			m := colDev(t)
			writeFmt(t, m, "empty.dat", f, nil)
			if n, err := m.Size("empty.dat"); err != nil || n != 0 {
				t.Fatalf("empty Size = %d, %v", n, err)
			}
			if got := scanFile(t, m, "empty.dat"); len(got) != 0 {
				t.Fatalf("empty scan = %v", got)
			}
			rr, err := m.OpenRandom("empty.dat")
			if err != nil {
				t.Fatal(err)
			}
			if rr.Count() != 0 || rr.Blocks() != 0 {
				t.Fatalf("empty random reader: count=%d blocks=%d", rr.Count(), rr.Blocks())
			}
			rr.Close() //nolint:errcheck

			writeFmt(t, m, "one.dat", f, []int64{-42})
			if n, err := m.Size("one.dat"); err != nil || n != 1 {
				t.Fatalf("single Size = %d, %v", n, err)
			}
			if got := scanFile(t, m, "one.dat"); len(got) != 1 || got[0] != -42 {
				t.Fatalf("single scan = %v", got)
			}
			rr, err = m.OpenRandom("one.dat")
			if err != nil {
				t.Fatal(err)
			}
			if rr.Count() != 1 || rr.Blocks() != 1 {
				t.Fatalf("single random reader: count=%d blocks=%d", rr.Count(), rr.Blocks())
			}
			bv, err := rr.Block(0)
			if err != nil || len(bv) != 1 || bv[0] != -42 {
				t.Fatalf("single Block(0) = %v, %v", bv, err)
			}
			rr.Close() //nolint:errcheck
		})
	}
}

// TestFormatInterop writes format-0 files, reopens the device with
// compression as the default, and verifies old files still read exactly,
// counts stay right, and mixed-format data merges into one columnar file.
func TestFormatInterop(t *testing.T) {
	b := NewMemBackend()
	m, err := NewManagerOn(b, 64)
	if err != nil {
		t.Fatal(err)
	}
	oldVals := sortedVals(20)
	writeFmt(t, m, "old.dat", FormatRaw, oldVals) // previous-release file

	// "Upgrade": a fresh manager over the same backend, columnar default.
	m2, err := NewManagerOn(b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.SetBlockFormat(FormatColumnar); err != nil {
		t.Fatal(err)
	}
	if got := scanFile(t, m2, "old.dat"); len(got) != 20 || got[0] != oldVals[0] || got[19] != oldVals[19] {
		t.Fatalf("format-0 file after upgrade: %v", got)
	}
	if n, err := m2.Size("old.dat"); err != nil || n != 20 {
		t.Fatalf("format-0 Size after upgrade = %d, %v", n, err)
	}

	newVals := make([]int64, 30)
	for i := range newVals {
		newVals[i] = int64(1001 + i*7)
	}
	writeFmt(t, m2, "new.dat", FormatColumnar, newVals)

	// Merge the mixed-format pair the way a level merge does: two sequential
	// readers into one writer in the device's default (columnar) format.
	ra, _ := m2.OpenSequential("old.dat")
	rb, _ := m2.OpenSequential("new.dat")
	w, err := m2.Create("merged.dat")
	if err != nil {
		t.Fatal(err)
	}
	if w.Format() != FormatColumnar {
		t.Fatalf("merge output format = %v", w.Format())
	}
	va, oka, _ := ra.Next()
	vb, okb, _ := rb.Next()
	for oka || okb {
		if oka && (!okb || va <= vb) {
			if err := w.Append(va); err != nil {
				t.Fatal(err)
			}
			va, oka, _ = ra.Next()
		} else {
			if err := w.Append(vb); err != nil {
				t.Fatal(err)
			}
			vb, okb, _ = rb.Next()
		}
	}
	ra.Close() //nolint:errcheck
	rb.Close() //nolint:errcheck
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	merged := scanFile(t, m2, "merged.dat")
	if len(merged) != 50 {
		t.Fatalf("merged %d elements, want 50", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1] > merged[i] {
			t.Fatalf("merged output unsorted at %d: %d > %d", i, merged[i-1], merged[i])
		}
	}
}

// TestMagicCollision: a format-0 file whose elements equal the columnar
// magic constant must still open as format 0.
func TestMagicCollision(t *testing.T) {
	m := colDev(t)
	magicVal := int64(0x00000001_43515348) // "HSQC\x01\x00\x00\x00" little-endian
	vals := make([]int64, 12)
	for i := range vals {
		vals[i] = magicVal
	}
	writeFmt(t, m, "collide.dat", FormatRaw, vals)
	if n, err := m.Size("collide.dat"); err != nil || n != 12 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	got := scanFile(t, m, "collide.dat")
	if len(got) != 12 || got[0] != magicVal || got[11] != magicVal {
		t.Fatalf("collision file misread: %v", got)
	}
}

// TestRawFallbackTag: random data defeats delta compression, so the writer
// must fall back to plain int64 frames — the file stays readable and no
// bigger than ~raw plus header overhead.
func TestRawFallbackTag(t *testing.T) {
	m := colDev(t)
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	writeFmt(t, m, "rand.dat", FormatColumnar, vals)
	got := scanFile(t, m, "rand.dat")
	if len(got) != 64 {
		t.Fatalf("scan returned %d elements", len(got))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], vals[i])
		}
	}
}

// TestColumnarSeek exercises SeekElement across columnar block boundaries.
func TestColumnarSeek(t *testing.T) {
	m := colDev(t)
	vals := sortedVals(200)
	writeFmt(t, m, "seek.dat", FormatColumnar, vals)
	r, err := m.OpenSequential("seek.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close() //nolint:errcheck
	for _, i := range []int64{0, 1, 38, 39, 40, 77, 199, 100} {
		if err := r.SeekElement(i); err != nil {
			t.Fatalf("SeekElement(%d): %v", i, err)
		}
		v, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("Next after seek %d: %v %v", i, ok, err)
		}
		if v != vals[i] {
			t.Fatalf("seek %d: got %d, want %d", i, v, vals[i])
		}
	}
	if err := r.SeekElement(200); err != nil { // EOF position
		t.Fatal(err)
	}
	if _, ok, _ := r.Next(); ok {
		t.Fatal("Next after EOF seek returned an element")
	}
}

// TestReadaheadEquivalence: a scan with readahead returns identical data,
// counts the same number of sequential block reads, and issues them in
// fewer backend batches.
func TestReadaheadEquivalence(t *testing.T) {
	for _, f := range []BlockFormat{FormatRaw, FormatColumnar} {
		t.Run(f.String(), func(t *testing.T) {
			m := colDev(t)
			vals := sortedVals(500)
			writeFmt(t, m, "ra.dat", f, vals)

			plain := m.Stats()
			got := scanFile(t, m, "ra.dat")
			plainReads := m.Stats().Sub(plain).SeqReads
			if len(got) != 500 {
				t.Fatalf("plain scan: %d elements", len(got))
			}

			before := m.Stats()
			r, err := m.OpenSequential("ra.dat")
			if err != nil {
				t.Fatal(err)
			}
			r.SetReadahead(4)
			n := 0
			for {
				v, ok, err := r.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if v != vals[n] {
					t.Fatalf("element %d = %d, want %d", n, v, vals[n])
				}
				n++
			}
			r.Close() //nolint:errcheck
			if n != 500 {
				t.Fatalf("readahead scan: %d elements", n)
			}
			if reads := m.Stats().Sub(before).SeqReads; reads != plainReads {
				t.Errorf("readahead scan counted %d seq reads, plain counted %d", reads, plainReads)
			}
		})
	}
}

// TestReadBlocksVectored: the vectored random read returns the exact
// concatenation of the individual blocks and counts one random read per
// block in both formats.
func TestReadBlocksVectored(t *testing.T) {
	for _, f := range []BlockFormat{FormatRaw, FormatColumnar} {
		t.Run(f.String(), func(t *testing.T) {
			m := colDev(t)
			vals := sortedVals(100)
			writeFmt(t, m, "vec.dat", f, vals)
			rr, err := m.OpenRandom("vec.dat")
			if err != nil {
				t.Fatal(err)
			}
			defer rr.Close() //nolint:errcheck
			if rr.Blocks() < 3 {
				t.Fatalf("want >= 3 blocks, have %d", rr.Blocks())
			}
			before := m.Stats()
			got, err := rr.ReadBlocks(1, rr.Blocks()-1)
			if err != nil {
				t.Fatal(err)
			}
			d := m.Stats().Sub(before)
			if d.RandReads != uint64(rr.Blocks()-1) {
				t.Errorf("vectored read counted %d rand reads, want %d", d.RandReads, rr.Blocks()-1)
			}
			start := rr.BlockStart(1)
			if int64(len(got)) != rr.Count()-start {
				t.Fatalf("vectored read returned %d elements, want %d", len(got), rr.Count()-start)
			}
			for i := range got {
				if got[i] != vals[start+int64(i)] {
					t.Fatalf("element %d = %d, want %d", i, got[i], vals[start+int64(i)])
				}
			}
		})
	}
}

// TestSkipAccounting: Skip must surface in handle and Manager counters
// without touching reads or hits.
func TestSkipAccounting(t *testing.T) {
	m := colDev(t)
	writeFmt(t, m, "s.dat", FormatColumnar, sortedVals(100))
	rr, err := m.OpenRandom("s.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close() //nolint:errcheck
	rr.Skip(0)
	rr.Skip(1)
	st := m.Stats()
	if rr.Skips() != 2 || st.SkippedBlocks != 2 {
		t.Errorf("skips = %d, stats = %d; want 2, 2", rr.Skips(), st.SkippedBlocks)
	}
	if st.RandReads != 0 || st.CacheHits != 0 {
		t.Errorf("skip counted as read or hit: %+v", st)
	}
}

// TestCacheBytesAccounting: a decoded columnar block is charged by its
// decoded size, so a budget of one raw block cannot retain a block that
// decoded to several raw blocks' worth of elements.
func TestCacheBytesAccounting(t *testing.T) {
	m := colDev(t) // 64-byte blocks
	vals := sortedVals(200)
	writeFmt(t, m, "cb.dat", FormatColumnar, vals)
	m.SetCache(1) // 64 bytes = 8 decoded elements of budget
	rr, err := m.OpenRandom("cb.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close() //nolint:errcheck
	bv, err := rr.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bv) <= 8 {
		t.Fatalf("columnar block decoded to %d elements; want > 8 for this test", len(bv))
	}
	// The block exceeds the entire cache budget, so it must not be cached.
	if got := m.CacheBlocks(); got != 0 {
		t.Errorf("oversize block cached (%d entries)", got)
	}
	if _, err := rr.Block(0); err != nil {
		t.Fatal(err)
	}
	if rr.CacheHits() != 0 {
		t.Errorf("second read hit the cache; oversize entry was retained")
	}

	// With a budget that fits it, the same block caches fine.
	m.SetCache(32)
	if _, err := rr.Block(0); err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Block(0); err != nil {
		t.Fatal(err)
	}
	if rr.CacheHits() != 1 {
		t.Errorf("hits = %d after budgeted re-read, want 1", rr.CacheHits())
	}
}

// TestSequentialDecodeZeroAlloc gates the pooled-buffer promise: once a
// reader's staging has grown, steady-state Next across block boundaries
// performs no allocations, in either format.
func TestSequentialDecodeZeroAlloc(t *testing.T) {
	for _, f := range []BlockFormat{FormatRaw, FormatColumnar} {
		t.Run(f.String(), func(t *testing.T) {
			m := colDev(t)
			writeFmt(t, m, "za.dat", f, sortedVals(100_000))
			r, err := m.OpenSequential("za.dat")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close() //nolint:errcheck
			// Warm the staging buffers across a few refills.
			for i := 0; i < 100; i++ {
				if _, ok, err := r.Next(); !ok || err != nil {
					t.Fatal(ok, err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				for i := 0; i < 64; i++ {
					if _, ok, err := r.Next(); !ok || err != nil {
						t.Fatal(ok, err)
					}
				}
			})
			if allocs != 0 {
				t.Errorf("sequential decode: %v allocs/run, want 0", allocs)
			}
		})
	}
}
