package disk

import (
	"container/list"
	"hash/maphash"
	"sync"
)

// blockCache is a sharded LRU cache of decoded blocks, keyed by (file,
// block index). It sits between the Manager's random-read path and the
// backend: a hit returns the decoded elements without touching the backend,
// without a simulated-latency sleep, and without counting a random read —
// in the paper's cost model a cached block is free, exactly like the §2.4
// pinned block, but shared across queries and partitions.
//
// Sequential scans deliberately bypass the cache: a merge or summary rebuild
// touches each block once, and letting scans through would evict the hot
// query working set (classic scan resistance).
//
// Coherence rests on the Manager's write discipline: blocks reach the
// backend only through Manager.Create (which invalidates the name) and the
// Writer, whose partial tail block is flushed only at Close — after which
// the file can never grow again. Cached blocks therefore describe immutable
// data. Writing to a shared backend through a second Manager (or directly)
// bypasses this cache and voids that guarantee.
//
// Cached slices are shared between the cache and all readers, so callers
// must treat blocks returned by the read path as immutable. Every current
// consumer (cursor binary search, element snapping) only reads them.
type blockCache struct {
	shards []cacheShard
	seed   maphash.Seed
}

type cacheShard struct {
	mu  sync.Mutex
	cap int // this shard's capacity in blocks
	// items indexes entries by file name first so that invalidate(name) —
	// which runs on every Remove and Create, i.e. on every level merge —
	// touches only that file's blocks instead of scanning the whole shard.
	items map[string]map[int64]*list.Element
	order *list.List // front = most recently used
}

type cacheKey struct {
	name  string
	block int64
}

type cacheEntry struct {
	key  cacheKey
	vals []int64
}

// cacheShards is the shard count: enough to keep lock contention negligible
// for ParallelQuery workloads without fragmenting small caches.
const cacheShards = 16

// newBlockCache builds a cache holding at most capBlocks blocks in total.
// The budget is distributed exactly across the shards (remainder to the
// first few); when the budget is smaller than cacheShards the shard count
// shrinks to the budget so every shard can hold at least one block.
func newBlockCache(capBlocks int) *blockCache {
	if capBlocks <= 0 {
		return nil
	}
	n := cacheShards
	if capBlocks < n {
		n = capBlocks
	}
	c := &blockCache{shards: make([]cacheShard, n), seed: maphash.MakeSeed()}
	base, extra := capBlocks/n, capBlocks%n
	for i := range c.shards {
		c.shards[i].cap = base
		if i < extra {
			c.shards[i].cap++
		}
		c.shards[i].items = make(map[string]map[int64]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *blockCache) shard(key cacheKey) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(key.name)
	return &c.shards[(h.Sum64()^uint64(key.block)*0x9e3779b97f4a7c15)%uint64(len(c.shards))]
}

// get returns the cached block and true on a hit, bumping its recency.
func (c *blockCache) get(name string, block int64) ([]int64, bool) {
	s := c.shard(cacheKey{name, block})
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[name][block]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).vals, true
}

// remove drops one entry from the shard's indexes. Caller holds s.mu.
func (s *cacheShard) remove(el *list.Element) {
	key := el.Value.(*cacheEntry).key
	s.order.Remove(el)
	blocks := s.items[key.name]
	delete(blocks, key.block)
	if len(blocks) == 0 {
		delete(s.items, key.name)
	}
}

// put inserts (or refreshes) a block, evicting the shard's LRU tail.
func (c *blockCache) put(name string, block int64, vals []int64) {
	key := cacheKey{name, block}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[name][block]; ok {
		el.Value.(*cacheEntry).vals = vals
		s.order.MoveToFront(el)
		return
	}
	blocks := s.items[name]
	if blocks == nil {
		blocks = make(map[int64]*list.Element)
		s.items[name] = blocks
	}
	blocks[block] = s.order.PushFront(&cacheEntry{key: key, vals: vals})
	for s.order.Len() > s.cap {
		s.remove(s.order.Back())
	}
}

// invalidate drops every cached block of the named file. Called on Remove
// and on Create (truncation), the only two ways an immutable partition file
// can change identity. Cost is proportional to the file's cached blocks,
// not to the cache size — merges on large multi-tenant caches would
// otherwise scan the world per removed partition.
func (c *blockCache) invalidate(name string) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, el := range s.items[name] {
			s.order.Remove(el)
		}
		delete(s.items, name)
		s.mu.Unlock()
	}
}

// len returns the number of cached blocks (for tests).
func (c *blockCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
