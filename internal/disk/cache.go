package disk

import (
	"container/list"
	"hash/maphash"
	"sync"
)

// blockCache is a sharded LRU cache of decoded blocks, keyed by (file,
// block index). It sits between the Manager's random-read path and the
// backend: a hit returns the decoded elements without touching the backend,
// without a simulated-latency sleep, and without counting a random read —
// in the paper's cost model a cached block is free, exactly like the §2.4
// pinned block, but shared across queries and partitions.
//
// Sequential scans deliberately bypass the cache: a merge or summary rebuild
// touches each block once, and letting scans through would evict the hot
// query working set (classic scan resistance).
//
// Coherence rests on the Manager's write discipline: blocks reach the
// backend only through Manager.Create (which invalidates the name) and the
// Writer, whose partial tail block is flushed only at Close — after which
// the file can never grow again. Cached blocks therefore describe immutable
// data. Writing to a shared backend through a second Manager (or directly)
// bypasses this cache and voids that guarantee.
//
// Cached slices are shared between the cache and all readers, so callers
// must treat blocks returned by the read path as immutable. Every current
// consumer (cursor binary search, element snapping) only reads them.
type blockCache struct {
	shards []cacheShard
	seed   maphash.Seed
}

type cacheShard struct {
	mu       sync.Mutex
	capBytes int64 // this shard's budget in decoded bytes
	bytes    int64 // decoded bytes currently held
	// items indexes entries by file name first so that invalidate(name) —
	// which runs on every Remove and Create, i.e. on every level merge —
	// touches only that file's blocks instead of scanning the whole shard.
	items map[string]map[int64]*list.Element
	order *list.List // front = most recently used
}

type cacheKey struct {
	name  string
	block int64
}

type cacheEntry struct {
	key  cacheKey
	vals []int64
}

// cacheShards is the shard count: enough to keep lock contention negligible
// for ParallelQuery workloads without fragmenting small caches.
const cacheShards = 16

// newBlockCache builds a cache holding at most budgetBytes of decoded
// elements in total. Accounting is in decoded bytes (len(vals) ×
// ElementSize), not entries: a compressed columnar block decodes to several
// raw blocks' worth of elements and is charged accordingly. The budget is
// distributed exactly across the shards (remainder to the first few); the
// shard count shrinks until every shard can hold at least one worst-case
// decoded columnar block (~8 × blockSize), so the per-shard split never
// makes a legal block uncacheable.
func newBlockCache(budgetBytes int64, blockSize int) *blockCache {
	if budgetBytes <= 0 {
		return nil
	}
	maxEntry := int64(blockSize-colHeaderLen) * ElementSize
	if maxEntry < int64(blockSize) {
		maxEntry = int64(blockSize)
	}
	n := budgetBytes / maxEntry
	if n > cacheShards {
		n = cacheShards
	}
	if n < 1 {
		n = 1
	}
	c := &blockCache{shards: make([]cacheShard, n), seed: maphash.MakeSeed()}
	base, extra := budgetBytes/n, budgetBytes%n
	for i := range c.shards {
		c.shards[i].capBytes = base
		if int64(i) < extra {
			c.shards[i].capBytes++
		}
		c.shards[i].items = make(map[string]map[int64]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *blockCache) shard(key cacheKey) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(key.name)
	return &c.shards[(h.Sum64()^uint64(key.block)*0x9e3779b97f4a7c15)%uint64(len(c.shards))]
}

// get returns the cached block and true on a hit, bumping its recency.
func (c *blockCache) get(name string, block int64) ([]int64, bool) {
	s := c.shard(cacheKey{name, block})
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[name][block]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).vals, true
}

// remove drops one entry from the shard's indexes and releases its byte
// charge. Caller holds s.mu.
func (s *cacheShard) remove(el *list.Element) {
	e := el.Value.(*cacheEntry)
	s.bytes -= int64(len(e.vals)) * ElementSize
	s.order.Remove(el)
	blocks := s.items[e.key.name]
	delete(blocks, e.key.block)
	if len(blocks) == 0 {
		delete(s.items, e.key.name)
	}
}

// put inserts (or refreshes) a block, evicting the shard's LRU tail until
// the decoded-byte budget holds. A block bigger than the whole shard budget
// is not inserted at all — caching it would evict everything else and still
// bust the budget.
func (c *blockCache) put(name string, block int64, vals []int64) {
	cost := int64(len(vals)) * ElementSize
	key := cacheKey{name, block}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if cost > s.capBytes {
		return
	}
	if el, ok := s.items[name][block]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += cost - int64(len(e.vals))*ElementSize
		e.vals = vals
		s.order.MoveToFront(el)
	} else {
		blocks := s.items[name]
		if blocks == nil {
			blocks = make(map[int64]*list.Element)
			s.items[name] = blocks
		}
		blocks[block] = s.order.PushFront(&cacheEntry{key: key, vals: vals})
		s.bytes += cost
	}
	for s.bytes > s.capBytes {
		s.remove(s.order.Back())
	}
}

// invalidate drops every cached block of the named file. Called on Remove
// and on Create (truncation), the only two ways an immutable partition file
// can change identity. Cost is proportional to the file's cached blocks,
// not to the cache size — merges on large multi-tenant caches would
// otherwise scan the world per removed partition.
func (c *blockCache) invalidate(name string) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, el := range s.items[name] {
			s.bytes -= int64(len(el.Value.(*cacheEntry).vals)) * ElementSize
			s.order.Remove(el)
		}
		delete(s.items, name)
		s.mu.Unlock()
	}
}

// len returns the number of cached blocks (for tests).
func (c *blockCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
