package disk

import (
	"testing"
	"time"
)

// cacheDev builds a mem-backed manager with a 20-element file (8 elements
// per block → 3 blocks) and a cache of capBlocks.
func cacheDev(t *testing.T, capBlocks int) *Manager {
	t.Helper()
	m, err := NewManagerOn(NewMemBackend(), 64)
	if err != nil {
		t.Fatal(err)
	}
	m.SetCache(capBlocks)
	w, err := m.Create("c.dat")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := w.Append(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCacheRepeatedProbesAreHits is the satellite requirement: repeated
// probes of the same (pinned-block-style) block must be cache hits costing
// no random read.
func TestCacheRepeatedProbesAreHits(t *testing.T) {
	m := cacheDev(t, 8)
	rr, err := m.OpenRandom("c.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close() //nolint:errcheck

	first, err := rr.Block(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := rr.Block(1)
		if err != nil {
			t.Fatal(err)
		}
		if &again[0] != &first[0] {
			t.Fatal("hit returned a different slice than the cached block")
		}
	}
	if rr.Reads() != 1 || rr.CacheHits() != 5 {
		t.Errorf("handle counters = %d reads, %d hits; want 1, 5", rr.Reads(), rr.CacheHits())
	}
	st := m.Stats()
	if st.RandReads != 1 || st.CacheHits != 5 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v", st)
	}

	// A second handle over the same file shares the cache.
	rr2, err := m.OpenRandom("c.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer rr2.Close() //nolint:errcheck
	if _, err := rr2.Block(1); err != nil {
		t.Fatal(err)
	}
	if rr2.Reads() != 0 || rr2.CacheHits() != 1 {
		t.Errorf("second handle = %d reads, %d hits; want 0, 1", rr2.Reads(), rr2.CacheHits())
	}
}

// TestCacheEvictsLRU verifies the per-shard LRU discipline with a cache
// smaller than the working set.
func TestCacheEvictsLRU(t *testing.T) {
	// One element (8 bytes) of budget per shard, so the second entry in any
	// shard must evict the first.
	c := newBlockCache(cacheShards*ElementSize, ElementSize)
	c.put("f", 0, []int64{1})
	key0shard := c.shard(cacheKey{"f", 0})
	// Find another block index mapping to the same shard so the second put
	// must evict the first.
	other := int64(-1)
	for i := int64(1); i < 1024; i++ {
		if c.shard(cacheKey{"f", i}) == key0shard {
			other = i
			break
		}
	}
	if other < 0 {
		t.Fatal("no colliding block index found")
	}
	c.put("f", other, []int64{2})
	if _, ok := c.get("f", 0); ok {
		t.Error("LRU block survived eviction")
	}
	if _, ok := c.get("f", other); !ok {
		t.Error("MRU block evicted")
	}
}

// TestCacheInvalidation: removing or re-creating a file must drop its
// cached blocks, on pain of serving stale data.
func TestCacheInvalidation(t *testing.T) {
	m := cacheDev(t, 8)
	rr, err := m.OpenRandom("c.dat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Block(0); err != nil {
		t.Fatal(err)
	}
	rr.Close() //nolint:errcheck
	if m.CacheBlocks() != 1 {
		t.Fatalf("CacheBlocks = %d, want 1", m.CacheBlocks())
	}

	// Re-create with different content: the old block must not be served.
	w, err := m.Create("c.dat")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if err := w.Append(100 + i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err = m.OpenRandom("c.dat")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := rr.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 100 {
		t.Errorf("stale cache: block 0 starts at %d, want 100", vals[0])
	}
	rr.Close() //nolint:errcheck

	if err := m.Remove("c.dat"); err != nil {
		t.Fatal(err)
	}
	if m.CacheBlocks() != 0 {
		t.Errorf("CacheBlocks = %d after Remove, want 0", m.CacheBlocks())
	}
}

// TestCacheHitSkipsLatency: a hit must not pay the simulated random-read
// latency — that is the entire point of the cache under the paper's cost
// model.
func TestCacheHitSkipsLatency(t *testing.T) {
	m := cacheDev(t, 8)
	m.SetLatency(Latency{RandRead: 20 * time.Millisecond})
	rr, err := m.OpenRandom("c.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()                       //nolint:errcheck
	if _, err := rr.Block(0); err != nil { // miss: pays latency
		t.Fatal(err)
	}
	paid := m.SimulatedLatency()
	if paid < 20*time.Millisecond {
		t.Fatalf("miss paid %v, want >= 20ms", paid)
	}
	if _, err := rr.Block(0); err != nil { // hit: free
		t.Fatal(err)
	}
	if got := m.SimulatedLatency(); got != paid {
		t.Errorf("hit paid %v extra simulated latency", got-paid)
	}
}

// TestSetCacheDisables: SetCache(0) removes the cache entirely.
func TestSetCacheDisables(t *testing.T) {
	m := cacheDev(t, 8)
	rr, _ := m.OpenRandom("c.dat")
	defer rr.Close() //nolint:errcheck
	rr.Block(0)      //nolint:errcheck
	m.SetCache(0)
	rr.Block(0) //nolint:errcheck
	st := m.Stats()
	if st.RandReads != 2 || st.CacheHits != 0 {
		t.Errorf("stats after disable = %+v", st)
	}
}

// TestPartialTailCacheCoherence pins the invariant that makes caching
// partial tail blocks safe: the Writer never exposes a partial block to the
// backend before Close, and after Close the file cannot grow — so a cached
// tail can only be retired by Create's invalidation.
func TestPartialTailCacheCoherence(t *testing.T) {
	m, err := NewManagerOn(NewMemBackend(), 64)
	if err != nil {
		t.Fatal(err)
	}
	m.SetCache(8)

	w, err := m.Create("grow.dat")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 12; i++ { // block 0 full, block 1 half-staged
		if err := w.Append(i); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-write, only the flushed full block is visible: the staged
	// partial tail cannot be read (and so cannot be cached) yet.
	rr, err := m.OpenRandom("grow.dat")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Count() != 8 || rr.Blocks() != 1 {
		t.Fatalf("mid-write view = %d elements in %d blocks, want 8 in 1", rr.Count(), rr.Blocks())
	}
	rr.Close() //nolint:errcheck
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// After Close the partial tail is visible, cacheable, and stable.
	rr, err = m.OpenRandom("grow.dat")
	if err != nil {
		t.Fatal(err)
	}
	tail, err := rr.Block(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 4 || tail[0] != 8 {
		t.Fatalf("tail block = %v, want [8 9 10 11]", tail)
	}
	again, err := rr.Block(1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.CacheHits() != 1 || len(again) != 4 {
		t.Errorf("tail re-read: hits=%d vals=%v, want cached [8 9 10 11]", rr.CacheHits(), again)
	}
	rr.Close() //nolint:errcheck

	// Re-creating the name retires the cached tail.
	w2, err := m.Create("grow.dat")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 9; i++ {
		if err := w2.Append(100 + i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err = m.OpenRandom("grow.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close() //nolint:errcheck
	tail, err = rr.Block(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0] != 108 {
		t.Errorf("tail after re-create = %v, want [108]", tail)
	}
}

// TestCacheCapacityExact: the total byte budget must be exactly the
// requested amount, not rounded up per shard, and the resident decoded
// bytes must never exceed it.
func TestCacheCapacityExact(t *testing.T) {
	for _, capBlocks := range []int{1, 4, 17, 100} {
		budget := int64(capBlocks) * ElementSize
		c := newBlockCache(budget, ElementSize)
		var total int64
		for i := range c.shards {
			total += c.shards[i].capBytes
		}
		if total != budget {
			t.Errorf("budget=%d: shard budgets sum to %d", budget, total)
		}
		// Overfill with one-element (8-byte) entries and confirm the
		// resident count never exceeds the budget.
		for i := int64(0); i < int64(capBlocks*3); i++ {
			c.put("f", i, []int64{i})
		}
		if got := c.len(); got > capBlocks {
			t.Errorf("capBlocks=%d: %d blocks resident", capBlocks, got)
		}
	}
}

// TestReaderSizeFromHandle: a reader opened on a file keeps reading that
// file's content and length even if the name is recreated underneath it.
func TestReaderSizeFromHandle(t *testing.T) {
	m, err := NewManagerOn(NewMemBackend(), 64)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := m.Create("swap.dat")
	for i := int64(0); i < 16; i++ {
		w.Append(i) //nolint:errcheck
	}
	w.Close() //nolint:errcheck

	r, err := m.OpenSequential("swap.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close() //nolint:errcheck

	// Recreate the name with shorter, different content.
	w2, _ := m.Create("swap.dat")
	w2.Append(999) //nolint:errcheck
	w2.Close()     //nolint:errcheck

	if r.Count() != 16 {
		t.Fatalf("Count = %d, want 16 (old file)", r.Count())
	}
	for i := int64(0); i < 16; i++ {
		v, ok, err := r.Next()
		if err != nil || !ok || v != i {
			t.Fatalf("element %d = %d, ok=%v, err=%v", i, v, ok, err)
		}
	}
}
