package disk

import (
	"path/filepath"
	"testing"
)

// writeFile writes vals to name through m, failing the test on error.
func writeFile(t *testing.T, m *Manager, name string, vals []int64) {
	t.Helper()
	w, err := m.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSlice(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestValidNamespace(t *testing.T) {
	for _, ok := range []string{"a", "api.latency", "streams/api.latency", "A-1_b.c"} {
		if err := ValidNamespace(ok); err != nil {
			t.Errorf("ValidNamespace(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "/", "a/", "/a", "a//b", ".", "..", "a/../b", "a b", "a\x00"} {
		if err := ValidNamespace(bad); err == nil {
			t.Errorf("ValidNamespace(%q) = nil, want error", bad)
		}
	}
}

func TestNamespaceIsolationAndPrefix(t *testing.T) {
	for _, kind := range []string{"file", "mem"} {
		t.Run(kind, func(t *testing.T) {
			b, err := OpenBackend(kind, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			root, err := NewManagerOn(b, 64)
			if err != nil {
				t.Fatal(err)
			}
			a, err := root.Namespace("streams/a")
			if err != nil {
				t.Fatal(err)
			}
			c, err := root.Namespace("streams/c")
			if err != nil {
				t.Fatal(err)
			}
			writeFile(t, a, "x.dat", seq(10))
			writeFile(t, c, "x.dat", seq(20))

			// Same relative name, independent files.
			na, err := a.Size("x.dat")
			if err != nil {
				t.Fatal(err)
			}
			nc, err := c.Size("x.dat")
			if err != nil {
				t.Fatal(err)
			}
			if na != 10 || nc != 20 {
				t.Errorf("sizes = %d, %d; want 10, 20", na, nc)
			}
			// The root view sees the prefixed names.
			if !root.Exists("streams/a/x.dat") || !root.Exists("streams/c/x.dat") {
				t.Error("prefixed names not visible from root view")
			}
			if root.Exists("x.dat") {
				t.Error("unprefixed name leaked to root namespace")
			}
			// Metadata is prefixed too.
			if err := a.WriteMeta("M.json", []byte("{}")); err != nil {
				t.Fatal(err)
			}
			if got, err := root.ReadMeta("streams/a/M.json"); err != nil || string(got) != "{}" {
				t.Errorf("root ReadMeta = %q, %v", got, err)
			}
			if _, err := c.ReadMeta("M.json"); err == nil {
				t.Error("metadata leaked across namespaces")
			}
			// Remove through the view.
			if err := a.Remove("x.dat"); err != nil {
				t.Fatal(err)
			}
			if root.Exists("streams/a/x.dat") {
				t.Error("remove through view did not delete the prefixed file")
			}
			if !c.Exists("x.dat") {
				t.Error("remove in one namespace deleted another's file")
			}
		})
	}
}

func TestNamespaceFileLayout(t *testing.T) {
	dir := t.TempDir()
	root, err := NewManager(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := root.Namespace("streams/api.latency")
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, ns, "part-000001.dat", seq(4))
	want := filepath.Join(dir, "streams", "api.latency", "part-000001.dat")
	if _, err := filepath.Glob(want); err != nil {
		t.Fatal(err)
	}
	if !root.Exists("streams/api.latency/part-000001.dat") {
		t.Fatalf("expected %s on disk", want)
	}
}

// TestNamespaceStatsSumToAggregate drives I/O through two views and checks
// that per-view counters are exact and sum to the root (device) aggregate.
func TestNamespaceStatsSumToAggregate(t *testing.T) {
	root, err := NewManagerOn(NewMemBackend(), 64) // 8 elements per block
	if err != nil {
		t.Fatal(err)
	}
	root.SetCache(4)
	a, err := root.Namespace("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := root.Namespace("b")
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, a, "x.dat", seq(32)) // 4 blocks
	writeFile(t, b, "x.dat", seq(16)) // 2 blocks

	ra, err := a.OpenRandom("x.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	rb, err := b.OpenRandom("x.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	// Repeats hit the shared cache. Reads are grouped per block (not
	// interleaved) so the expectation holds even if both blocks hash to the
	// same single-entry cache shard.
	for i := 0; i < 3; i++ {
		if _, err := ra.Block(0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := rb.Block(1); err != nil {
			t.Fatal(err)
		}
	}

	sa, sb, agg := a.Stats(), b.Stats(), root.Stats()
	if sa.SeqWrites != 4 || sb.SeqWrites != 2 {
		t.Errorf("per-view seq writes = %d, %d; want 4, 2", sa.SeqWrites, sb.SeqWrites)
	}
	if sa.RandReads != 1 || sa.CacheHits != 2 || sb.RandReads != 1 || sb.CacheHits != 2 {
		t.Errorf("per-view rand/hits = (%d,%d) (%d,%d); want (1,2) (1,2)",
			sa.RandReads, sa.CacheHits, sb.RandReads, sb.CacheHits)
	}
	sum := sa.Add(sb)
	if sum != agg {
		t.Errorf("view sum %+v != aggregate %+v", sum, agg)
	}
}

// TestNamespaceSharedCache verifies all views draw on one cache budget: a
// single-block cache means a second namespace's read evicts the first's.
func TestNamespaceSharedCache(t *testing.T) {
	root, err := NewManagerOn(NewMemBackend(), 64)
	if err != nil {
		t.Fatal(err)
	}
	root.SetCache(1)
	a, err := root.Namespace("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := root.Namespace("b")
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, a, "x.dat", seq(8))
	writeFile(t, b, "x.dat", seq(8))
	ra, _ := a.OpenRandom("x.dat")
	defer ra.Close()
	rb, _ := b.OpenRandom("x.dat")
	defer rb.Close()
	if _, err := ra.Block(0); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Block(0); err != nil { // evicts a's block
		t.Fatal(err)
	}
	if _, err := ra.Block(0); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().RandReads; got != 2 {
		t.Errorf("a rand reads = %d, want 2 (shared budget eviction)", got)
	}
	if root.CacheBlocks() != 1 {
		t.Errorf("cache holds %d blocks, want 1", root.CacheBlocks())
	}
}

func TestNamespaceComposes(t *testing.T) {
	root, err := NewManagerOn(NewMemBackend(), 64)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := root.Namespace("streams")
	if err != nil {
		t.Fatal(err)
	}
	inner, err := outer.Namespace("x")
	if err != nil {
		t.Fatal(err)
	}
	if inner.Prefix() != "streams/x/" {
		t.Fatalf("prefix = %q", inner.Prefix())
	}
	writeFile(t, inner, "f.dat", seq(1))
	if !root.Exists("streams/x/f.dat") {
		t.Error("nested namespace name not visible from root")
	}
}
