// Package disk provides the block-device substrate used by the historical
// store. All persistent data in this system is a flat file of little-endian
// int64 elements, accessed at block granularity. The package counts every
// block-level operation, split into sequential and random accesses, because
// "number of disk accesses" is the primary cost metric of the paper's
// evaluation (Lemmas 6 and 7, Figures 6-13).
//
// The default block size is 100 KB, the value assumed throughout the paper's
// experiments, giving 12,800 elements per block.
package disk

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// ElementSize is the on-disk size of one element in bytes.
const ElementSize = 8

// DefaultBlockSize is the paper's block size B (100 KB).
const DefaultBlockSize = 100 * 1024

// Op identifies the kind of block operation, used by fault hooks and stats.
type Op int

const (
	// OpSeqRead is a sequential block read (scans, merges).
	OpSeqRead Op = iota
	// OpSeqWrite is a sequential block write (loading, merging, sorting).
	OpSeqWrite
	// OpRandRead is a random block read (query-time binary search).
	OpRandRead
	// OpOpen is a file open.
	OpOpen
)

// String returns a human-readable operation name.
func (o Op) String() string {
	switch o {
	case OpSeqRead:
		return "seq-read"
	case OpSeqWrite:
		return "seq-write"
	case OpRandRead:
		return "rand-read"
	case OpOpen:
		return "open"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// FaultFunc may return a non-nil error to inject a failure for the given
// operation on the given file and block index. A nil FaultFunc injects
// nothing. Fault hooks run before the real I/O is attempted.
type FaultFunc func(op Op, name string, block int64) error

// Stats is a snapshot of cumulative I/O counters.
type Stats struct {
	SeqReads     uint64 // sequential block reads
	SeqWrites    uint64 // sequential block writes
	RandReads    uint64 // random block reads
	BytesRead    uint64
	BytesWritten uint64
	Opens        uint64
}

// Total returns the total number of block accesses (reads + writes).
func (s Stats) Total() uint64 { return s.SeqReads + s.SeqWrites + s.RandReads }

// Reads returns the total number of block reads.
func (s Stats) Reads() uint64 { return s.SeqReads + s.RandReads }

// Sub returns the element-wise difference s - t, for measuring the I/O cost
// of a region of execution bracketed by two snapshots.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		SeqReads:     s.SeqReads - t.SeqReads,
		SeqWrites:    s.SeqWrites - t.SeqWrites,
		RandReads:    s.RandReads - t.RandReads,
		BytesRead:    s.BytesRead - t.BytesRead,
		BytesWritten: s.BytesWritten - t.BytesWritten,
		Opens:        s.Opens - t.Opens,
	}
}

// Add returns the element-wise sum s + t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		SeqReads:     s.SeqReads + t.SeqReads,
		SeqWrites:    s.SeqWrites + t.SeqWrites,
		RandReads:    s.RandReads + t.RandReads,
		BytesRead:    s.BytesRead + t.BytesRead,
		BytesWritten: s.BytesWritten + t.BytesWritten,
		Opens:        s.Opens + t.Opens,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("seqR=%d seqW=%d randR=%d total=%d", s.SeqReads, s.SeqWrites, s.RandReads, s.Total())
}

// Manager is a block device rooted at a directory. It creates, reads and
// deletes element files, and accounts for every block-level access. A
// Manager is safe for concurrent use.
type Manager struct {
	dir       string
	blockSize int
	perBlock  int // elements per block

	seqReads     atomic.Uint64
	seqWrites    atomic.Uint64
	randReads    atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	opens        atomic.Uint64

	mu    sync.RWMutex
	fault FaultFunc

	latencyFields
}

// NewManager creates a block device rooted at dir (created if absent) with
// the given block size in bytes. blockSize must be a positive multiple of
// ElementSize.
func NewManager(dir string, blockSize int) (*Manager, error) {
	if blockSize <= 0 || blockSize%ElementSize != 0 {
		return nil, fmt.Errorf("disk: block size %d must be a positive multiple of %d", blockSize, ElementSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: create root: %w", err)
	}
	return &Manager{dir: dir, blockSize: blockSize, perBlock: blockSize / ElementSize}, nil
}

// Dir returns the root directory of the device.
func (m *Manager) Dir() string { return m.dir }

// BlockSize returns the block size in bytes.
func (m *Manager) BlockSize() int { return m.blockSize }

// ElementsPerBlock returns how many elements fit in one block.
func (m *Manager) ElementsPerBlock() int { return m.perBlock }

// SetFault installs a fault-injection hook; nil removes it.
func (m *Manager) SetFault(f FaultFunc) {
	m.mu.Lock()
	m.fault = f
	m.mu.Unlock()
}

func (m *Manager) injected(op Op, name string, block int64) error {
	m.mu.RLock()
	f := m.fault
	m.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(op, name, block)
}

// Stats returns a snapshot of the cumulative I/O counters.
func (m *Manager) Stats() Stats {
	return Stats{
		SeqReads:     m.seqReads.Load(),
		SeqWrites:    m.seqWrites.Load(),
		RandReads:    m.randReads.Load(),
		BytesRead:    m.bytesRead.Load(),
		BytesWritten: m.bytesWritten.Load(),
		Opens:        m.opens.Load(),
	}
}

// ResetStats zeroes all counters. Intended for experiment harnesses.
func (m *Manager) ResetStats() {
	m.seqReads.Store(0)
	m.seqWrites.Store(0)
	m.randReads.Store(0)
	m.bytesRead.Store(0)
	m.bytesWritten.Store(0)
	m.opens.Store(0)
}

func (m *Manager) path(name string) string { return filepath.Join(m.dir, name) }

// Remove deletes the named file. Removing a non-existent file is an error.
func (m *Manager) Remove(name string) error {
	if err := os.Remove(m.path(name)); err != nil {
		return fmt.Errorf("disk: remove %s: %w", name, err)
	}
	return nil
}

// Exists reports whether the named file exists.
func (m *Manager) Exists(name string) bool {
	_, err := os.Stat(m.path(name))
	return err == nil
}

// Size returns the number of elements stored in the named file.
func (m *Manager) Size(name string) (int64, error) {
	fi, err := os.Stat(m.path(name))
	if err != nil {
		return 0, fmt.Errorf("disk: stat %s: %w", name, err)
	}
	return fi.Size() / ElementSize, nil
}

// encodeInto writes vals as little-endian int64 into buf, which must be at
// least 8*len(vals) bytes.
func encodeInto(buf []byte, vals []int64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*ElementSize:], uint64(v))
	}
}

// decodeInto reads little-endian int64s from buf into out.
func decodeInto(out []int64, buf []byte) {
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[i*ElementSize:]))
	}
}
