// Package disk provides the block-device substrate used by the historical
// store. All persistent data in this system is a flat file of little-endian
// int64 elements, accessed at block granularity. The package counts every
// block-level operation, split into sequential and random accesses, because
// "number of disk accesses" is the primary cost metric of the paper's
// evaluation (Lemmas 6 and 7, Figures 6-13).
//
// Storage is pluggable: the Manager layers accounting, fault injection,
// latency simulation and an optional sharded LRU block cache over a Backend
// (see backend.go). The file backend reproduces the seed's directory-of-flat-
// files layout; MemBackend keeps everything in heap memory.
//
// The default block size is 100 KB, the value assumed throughout the paper's
// experiments, giving 12,800 elements per block.
package disk

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// ElementSize is the on-disk size of one element in bytes.
const ElementSize = 8

// DefaultBlockSize is the paper's block size B (100 KB).
const DefaultBlockSize = 100 * 1024

// Op identifies the kind of block operation, used by fault hooks and stats.
type Op int

const (
	// OpSeqRead is a sequential block read (scans, merges).
	OpSeqRead Op = iota
	// OpSeqWrite is a sequential block write (loading, merging, sorting).
	OpSeqWrite
	// OpRandRead is a random block read (query-time binary search).
	OpRandRead
	// OpOpen is a file open.
	OpOpen
)

// String returns a human-readable operation name.
func (o Op) String() string {
	switch o {
	case OpSeqRead:
		return "seq-read"
	case OpSeqWrite:
		return "seq-write"
	case OpRandRead:
		return "rand-read"
	case OpOpen:
		return "open"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// FaultFunc may return a non-nil error to inject a failure for the given
// operation on the given file and block index. A nil FaultFunc injects
// nothing. Fault hooks run before the real I/O is attempted; block-cache
// hits never reach the hook because no I/O is attempted for them.
type FaultFunc func(op Op, name string, block int64) error

// Stats is a snapshot of cumulative I/O counters.
type Stats struct {
	SeqReads     uint64 // sequential block reads
	SeqWrites    uint64 // sequential block writes
	RandReads    uint64 // random block reads that reached the backend
	BytesRead    uint64
	BytesWritten uint64
	Opens        uint64
	CacheHits    uint64 // random block reads served by the block cache
	CacheMisses  uint64 // random block reads that missed the cache
}

// Total returns the total number of block accesses (reads + writes).
func (s Stats) Total() uint64 { return s.SeqReads + s.SeqWrites + s.RandReads }

// Reads returns the total number of block reads.
func (s Stats) Reads() uint64 { return s.SeqReads + s.RandReads }

// sub64 returns a - b, clamped at zero. Counters only grow, but ResetStats
// between two snapshots would otherwise wrap the unsigned difference to an
// absurd huge value; clamping keeps such a window readable as "no I/O".
func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Sub returns the element-wise difference s - t, for measuring the I/O cost
// of a region of execution bracketed by two snapshots. Each counter clamps
// at zero rather than underflowing when t exceeds s (e.g. after ResetStats).
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		SeqReads:     sub64(s.SeqReads, t.SeqReads),
		SeqWrites:    sub64(s.SeqWrites, t.SeqWrites),
		RandReads:    sub64(s.RandReads, t.RandReads),
		BytesRead:    sub64(s.BytesRead, t.BytesRead),
		BytesWritten: sub64(s.BytesWritten, t.BytesWritten),
		Opens:        sub64(s.Opens, t.Opens),
		CacheHits:    sub64(s.CacheHits, t.CacheHits),
		CacheMisses:  sub64(s.CacheMisses, t.CacheMisses),
	}
}

// Add returns the element-wise sum s + t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		SeqReads:     s.SeqReads + t.SeqReads,
		SeqWrites:    s.SeqWrites + t.SeqWrites,
		RandReads:    s.RandReads + t.RandReads,
		BytesRead:    s.BytesRead + t.BytesRead,
		BytesWritten: s.BytesWritten + t.BytesWritten,
		Opens:        s.Opens + t.Opens,
		CacheHits:    s.CacheHits + t.CacheHits,
		CacheMisses:  s.CacheMisses + t.CacheMisses,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("seqR=%d seqW=%d randR=%d total=%d cacheHit=%d cacheMiss=%d",
		s.SeqReads, s.SeqWrites, s.RandReads, s.Total(), s.CacheHits, s.CacheMisses)
}

// Manager is a block device over a storage backend. It creates, reads and
// deletes element files, and accounts for every block-level access; an
// optional block cache absorbs repeated random reads. A Manager is safe for
// concurrent use.
type Manager struct {
	backend   Backend
	blockSize int
	perBlock  int // elements per block

	seqReads     atomic.Uint64
	seqWrites    atomic.Uint64
	randReads    atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	opens        atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64

	cache atomic.Pointer[blockCache]

	mu    sync.RWMutex
	fault FaultFunc

	latencyFields
}

// NewManager creates a file-backed block device rooted at dir (created if
// absent) with the given block size in bytes — the seed-compatible
// constructor. blockSize must be a positive multiple of ElementSize.
func NewManager(dir string, blockSize int) (*Manager, error) {
	b, err := NewFileBackend(dir)
	if err != nil {
		return nil, err
	}
	return NewManagerOn(b, blockSize)
}

// NewManagerOn creates a block device over an arbitrary backend.
func NewManagerOn(b Backend, blockSize int) (*Manager, error) {
	if blockSize <= 0 || blockSize%ElementSize != 0 {
		return nil, fmt.Errorf("disk: block size %d must be a positive multiple of %d", blockSize, ElementSize)
	}
	return &Manager{backend: b, blockSize: blockSize, perBlock: blockSize / ElementSize}, nil
}

// Backend returns the underlying storage backend.
func (m *Manager) Backend() Backend { return m.backend }

// Dir returns the root directory of the device, or "" for backends without
// one (e.g. MemBackend).
func (m *Manager) Dir() string { return m.backend.Root() }

// BlockSize returns the block size in bytes.
func (m *Manager) BlockSize() int { return m.blockSize }

// ElementsPerBlock returns how many elements fit in one block.
func (m *Manager) ElementsPerBlock() int { return m.perBlock }

// SetCache installs a block cache holding up to blocks decoded blocks on
// the random-read path; blocks <= 0 removes the cache. Safe to call
// concurrently with I/O.
func (m *Manager) SetCache(blocks int) {
	m.cache.Store(newBlockCache(blocks))
}

// CacheBlocks returns the number of blocks currently cached (0 without a
// cache).
func (m *Manager) CacheBlocks() int {
	if c := m.cache.Load(); c != nil {
		return c.len()
	}
	return 0
}

// SetFault installs a fault-injection hook; nil removes it.
func (m *Manager) SetFault(f FaultFunc) {
	m.mu.Lock()
	m.fault = f
	m.mu.Unlock()
}

func (m *Manager) injected(op Op, name string, block int64) error {
	m.mu.RLock()
	f := m.fault
	m.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(op, name, block)
}

// Stats returns a snapshot of the cumulative I/O counters.
func (m *Manager) Stats() Stats {
	return Stats{
		SeqReads:     m.seqReads.Load(),
		SeqWrites:    m.seqWrites.Load(),
		RandReads:    m.randReads.Load(),
		BytesRead:    m.bytesRead.Load(),
		BytesWritten: m.bytesWritten.Load(),
		Opens:        m.opens.Load(),
		CacheHits:    m.cacheHits.Load(),
		CacheMisses:  m.cacheMisses.Load(),
	}
}

// ResetStats zeroes all counters. Intended for experiment harnesses.
func (m *Manager) ResetStats() {
	m.seqReads.Store(0)
	m.seqWrites.Store(0)
	m.randReads.Store(0)
	m.bytesRead.Store(0)
	m.bytesWritten.Store(0)
	m.opens.Store(0)
	m.cacheHits.Store(0)
	m.cacheMisses.Store(0)
}

// invalidate drops cached blocks of name after a remove or truncation.
func (m *Manager) invalidate(name string) {
	if c := m.cache.Load(); c != nil {
		c.invalidate(name)
	}
}

// Remove deletes the named file. Removing a non-existent file is an error.
// The cache is invalidated after the backend delete so a concurrent read of
// the old file cannot slip a block in between invalidation and removal.
func (m *Manager) Remove(name string) error {
	if err := m.backend.Remove(name); err != nil {
		return fmt.Errorf("disk: remove %s: %w", name, err)
	}
	m.invalidate(name)
	return nil
}

// Exists reports whether the named file exists.
func (m *Manager) Exists(name string) bool {
	return m.backend.Exists(name)
}

// Size returns the number of elements stored in the named file.
func (m *Manager) Size(name string) (int64, error) {
	n, err := m.backend.Size(name)
	if err != nil {
		return 0, fmt.Errorf("disk: stat %s: %w", name, err)
	}
	return n / ElementSize, nil
}

// WriteMeta atomically replaces a small metadata file (e.g. a manifest) on
// the backend. Metadata I/O is not block-accounted: the paper's cost model
// covers element data only.
func (m *Manager) WriteMeta(name string, data []byte) error {
	if err := m.backend.WriteMeta(name, data); err != nil {
		return fmt.Errorf("disk: write meta %s: %w", name, err)
	}
	return nil
}

// ReadMeta reads a metadata file written with WriteMeta.
func (m *Manager) ReadMeta(name string) ([]byte, error) {
	data, err := m.backend.ReadMeta(name)
	if err != nil {
		return nil, fmt.Errorf("disk: read meta %s: %w", name, err)
	}
	return data, nil
}

// encodeInto writes vals as little-endian int64 into buf, which must be at
// least 8*len(vals) bytes.
func encodeInto(buf []byte, vals []int64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*ElementSize:], uint64(v))
	}
}

// decodeInto reads little-endian int64s from buf into out.
func decodeInto(out []int64, buf []byte) {
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[i*ElementSize:]))
	}
}
