// Package disk provides the block-device substrate used by the historical
// store. All persistent data in this system is a flat file of little-endian
// int64 elements, accessed at block granularity. The package counts every
// block-level operation, split into sequential and random accesses, because
// "number of disk accesses" is the primary cost metric of the paper's
// evaluation (Lemmas 6 and 7, Figures 6-13).
//
// Storage is pluggable: the Manager layers accounting, fault injection,
// latency simulation and an optional sharded LRU block cache over a Backend
// (see backend.go). The file backend reproduces the seed's directory-of-flat-
// files layout; MemBackend keeps everything in heap memory.
//
// The default block size is 100 KB, the value assumed throughout the paper's
// experiments, giving 12,800 elements per block.
package disk

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// ElementSize is the on-disk size of one element in bytes.
const ElementSize = 8

// DefaultBlockSize is the paper's block size B (100 KB).
const DefaultBlockSize = 100 * 1024

// MergeReadahead is the sequential readahead, in blocks, that merge and
// copy scans pass to Reader.SetReadahead: each run refill becomes one
// backend call covering several blocks. Block accounting is unchanged —
// readahead batches calls, it does not hide reads.
const MergeReadahead = 4

// Op identifies the kind of block operation, used by fault hooks and stats.
type Op int

const (
	// OpSeqRead is a sequential block read (scans, merges).
	OpSeqRead Op = iota
	// OpSeqWrite is a sequential block write (loading, merging, sorting).
	OpSeqWrite
	// OpRandRead is a random block read (query-time binary search).
	OpRandRead
	// OpOpen is a file open.
	OpOpen
	// OpMetaWrite is an atomic metadata replacement (manifest commit).
	OpMetaWrite
	// OpSync is a durability barrier.
	OpSync
)

// String returns a human-readable operation name.
func (o Op) String() string {
	switch o {
	case OpSeqRead:
		return "seq-read"
	case OpSeqWrite:
		return "seq-write"
	case OpRandRead:
		return "rand-read"
	case OpOpen:
		return "open"
	case OpMetaWrite:
		return "meta-write"
	case OpSync:
		return "sync"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// FaultFunc may return a non-nil error to inject a failure for the given
// operation on the given file and block index. A nil FaultFunc injects
// nothing. Fault hooks run before the real I/O is attempted; block-cache
// hits never reach the hook because no I/O is attempted for them.
type FaultFunc func(op Op, name string, block int64) error

// Stats is a snapshot of cumulative I/O counters.
type Stats struct {
	SeqReads     uint64 // sequential block reads
	SeqWrites    uint64 // sequential block writes
	RandReads    uint64 // random block reads that reached the backend
	BytesRead    uint64
	BytesWritten uint64
	Opens        uint64
	CacheHits    uint64 // random block reads served by the block cache
	CacheMisses  uint64 // random block reads that missed the cache
	// SkippedBlocks counts random reads answered entirely from a columnar
	// block header's min/max bounds — probes that needed neither the backend
	// nor the cache. Not part of Total(): a skip is the absence of an access.
	SkippedBlocks uint64
}

// Total returns the total number of block accesses (reads + writes).
func (s Stats) Total() uint64 { return s.SeqReads + s.SeqWrites + s.RandReads }

// Reads returns the total number of block reads.
func (s Stats) Reads() uint64 { return s.SeqReads + s.RandReads }

// sub64 returns a - b, clamped at zero. Counters only grow, but ResetStats
// between two snapshots would otherwise wrap the unsigned difference to an
// absurd huge value; clamping keeps such a window readable as "no I/O".
func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Sub returns the element-wise difference s - t, for measuring the I/O cost
// of a region of execution bracketed by two snapshots. Each counter clamps
// at zero rather than underflowing when t exceeds s (e.g. after ResetStats).
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		SeqReads:      sub64(s.SeqReads, t.SeqReads),
		SeqWrites:     sub64(s.SeqWrites, t.SeqWrites),
		RandReads:     sub64(s.RandReads, t.RandReads),
		BytesRead:     sub64(s.BytesRead, t.BytesRead),
		BytesWritten:  sub64(s.BytesWritten, t.BytesWritten),
		Opens:         sub64(s.Opens, t.Opens),
		CacheHits:     sub64(s.CacheHits, t.CacheHits),
		CacheMisses:   sub64(s.CacheMisses, t.CacheMisses),
		SkippedBlocks: sub64(s.SkippedBlocks, t.SkippedBlocks),
	}
}

// Add returns the element-wise sum s + t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		SeqReads:      s.SeqReads + t.SeqReads,
		SeqWrites:     s.SeqWrites + t.SeqWrites,
		RandReads:     s.RandReads + t.RandReads,
		BytesRead:     s.BytesRead + t.BytesRead,
		BytesWritten:  s.BytesWritten + t.BytesWritten,
		Opens:         s.Opens + t.Opens,
		CacheHits:     s.CacheHits + t.CacheHits,
		CacheMisses:   s.CacheMisses + t.CacheMisses,
		SkippedBlocks: s.SkippedBlocks + t.SkippedBlocks,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("seqR=%d seqW=%d randR=%d total=%d cacheHit=%d cacheMiss=%d skipped=%d",
		s.SeqReads, s.SeqWrites, s.RandReads, s.Total(), s.CacheHits, s.CacheMisses, s.SkippedBlocks)
}

// ioCounters is one set of cumulative I/O counters. The device aggregate
// and every namespaced view each own one.
type ioCounters struct {
	seqReads      atomic.Uint64
	seqWrites     atomic.Uint64
	randReads     atomic.Uint64
	bytesRead     atomic.Uint64
	bytesWritten  atomic.Uint64
	opens         atomic.Uint64
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
	skippedBlocks atomic.Uint64
}

func (c *ioCounters) snapshot() Stats {
	return Stats{
		SeqReads:      c.seqReads.Load(),
		SeqWrites:     c.seqWrites.Load(),
		RandReads:     c.randReads.Load(),
		BytesRead:     c.bytesRead.Load(),
		BytesWritten:  c.bytesWritten.Load(),
		Opens:         c.opens.Load(),
		CacheHits:     c.cacheHits.Load(),
		CacheMisses:   c.cacheMisses.Load(),
		SkippedBlocks: c.skippedBlocks.Load(),
	}
}

func (c *ioCounters) reset() {
	c.seqReads.Store(0)
	c.seqWrites.Store(0)
	c.randReads.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.opens.Store(0)
	c.cacheHits.Store(0)
	c.cacheMisses.Store(0)
	c.skippedBlocks.Store(0)
}

// device is the state shared by every view of one physical block device:
// the backend, the block geometry, the block cache, fault injection, the
// simulated-latency profile and the aggregate I/O counters. Namespaced
// views (Manager.Namespace) multiplex many logical stores over one device,
// so the cache budget, latency model and aggregate accounting are shared by
// construction.
type device struct {
	backend   Backend
	blockSize int
	perBlock  int // elements per block

	agg ioCounters // device-wide counters, summed across all views
	// maintAgg attributes the subset of agg issued by maintenance work
	// (batch installs, sorts, level merges) device-wide, so operators can
	// tell background amplification from foreground traffic.
	maintAgg ioCounters

	cache atomic.Pointer[blockCache]

	// format is the device-wide default BlockFormat for newly created files
	// (FormatRaw unless SetBlockFormat is called). CreateFormat overrides it
	// per file; reads always auto-detect, so mixed-format devices are fine.
	format atomic.Uint32

	// idxCache memoizes parsed columnar footers (nil = confirmed format 0)
	// per device-wide name, so reopening a partition for every query does not
	// re-read and re-parse its index.
	idxMu    sync.Mutex
	idxCache map[string]*colIndex

	mu    sync.RWMutex
	fault FaultFunc

	latencyFields
}

// Manager is a block device over a storage backend. It creates, reads and
// deletes element files, and accounts for every block-level access; an
// optional block cache absorbs repeated random reads. A Manager is safe for
// concurrent use.
//
// A Manager is a view of an underlying shared device. The root view (from
// NewManager/NewManagerOn) addresses the backend's flat namespace directly
// and its Stats are the device aggregate. Namespace derives a prefixed view
// that shares the device (backend, cache budget, latency, fault hook,
// aggregate counters) but maps every file and metadata name under its
// prefix and keeps its own Stats — the per-stream accounting used by the
// multi-stream engine.
type Manager struct {
	dev    *device
	prefix string      // "" for the root view, "a/b/" for a namespaced view
	stats  *ioCounters // per-view counters; == &dev.agg for the root view
	// maint holds the view's maintenance-attributed counters; == &dev.maintAgg
	// for the root view. Only operations issued through a MaintTagged copy of
	// the view are counted here (in addition to the normal counters).
	maint    *ioCounters
	tagMaint bool // this handle attributes its I/O to maintenance
}

// NewManager creates a file-backed block device rooted at dir (created if
// absent) with the given block size in bytes — the seed-compatible
// constructor. blockSize must be a positive multiple of ElementSize.
func NewManager(dir string, blockSize int) (*Manager, error) {
	b, err := NewFileBackend(dir)
	if err != nil {
		return nil, err
	}
	return NewManagerOn(b, blockSize)
}

// NewManagerOn creates a block device over an arbitrary backend.
func NewManagerOn(b Backend, blockSize int) (*Manager, error) {
	if blockSize <= 0 || blockSize%ElementSize != 0 {
		return nil, fmt.Errorf("disk: block size %d must be a positive multiple of %d", blockSize, ElementSize)
	}
	d := &device{backend: b, blockSize: blockSize, perBlock: blockSize / ElementSize}
	return &Manager{dev: d, stats: &d.agg, maint: &d.maintAgg}, nil
}

// key maps a view-relative name to the device-wide name.
func (m *Manager) key(name string) string { return m.prefix + name }

// Prefix returns the view's namespace prefix ("" for the root view).
func (m *Manager) Prefix() string { return m.prefix }

// Backend returns the underlying storage backend.
func (m *Manager) Backend() Backend { return m.dev.backend }

// Dir returns the root directory of the device, or "" for backends without
// one (e.g. MemBackend).
func (m *Manager) Dir() string { return m.dev.backend.Root() }

// BlockSize returns the block size in bytes.
func (m *Manager) BlockSize() int { return m.dev.blockSize }

// ElementsPerBlock returns how many elements fit in one block.
func (m *Manager) ElementsPerBlock() int { return m.dev.perBlock }

// SetBlockFormat sets the device-wide default format for newly created
// files. It is a device property shared by every view (like the cache
// budget): partitions, sort runs and merge outputs all inherit it.
// FormatColumnar requires a block size of at least 48 bytes so a header and
// one worst-case element fit in a block.
func (m *Manager) SetBlockFormat(f BlockFormat) error {
	if f == FormatColumnar && m.dev.blockSize < colMinBlockSize {
		return fmt.Errorf("disk: block size %d too small for columnar format (min %d)",
			m.dev.blockSize, colMinBlockSize)
	}
	m.dev.format.Store(uint32(f))
	return nil
}

// DefaultBlockFormat returns the device-wide default format for new files.
func (m *Manager) DefaultBlockFormat() BlockFormat {
	return BlockFormat(m.dev.format.Load())
}

// SetCache installs a block cache with a budget of blocks × BlockSize bytes
// of decoded elements on the random-read path; blocks <= 0 removes the
// cache. The budget is accounted in decoded bytes, not entries: compressed
// columnar blocks decode to more than one raw block's worth of elements, so
// the same budget holds correspondingly fewer (bigger) entries — compression
// widens cache reach in elements, not in bookkeeping slots. The cache is a
// device-wide budget shared by every view. Safe to call concurrently with
// I/O.
func (m *Manager) SetCache(blocks int) {
	m.dev.cache.Store(newBlockCache(int64(blocks)*int64(m.dev.blockSize), m.dev.blockSize))
}

// CacheBlocks returns the number of blocks currently cached device-wide (0
// without a cache).
func (m *Manager) CacheBlocks() int {
	if c := m.dev.cache.Load(); c != nil {
		return c.len()
	}
	return 0
}

// SetFault installs a device-wide fault-injection hook; nil removes it. The
// hook sees device-wide (prefixed) names.
func (m *Manager) SetFault(f FaultFunc) {
	m.dev.mu.Lock()
	m.dev.fault = f
	m.dev.mu.Unlock()
}

// injected runs the fault hook for an operation on a device-wide name.
func (m *Manager) injected(op Op, name string, block int64) error {
	m.dev.mu.RLock()
	f := m.dev.fault
	m.dev.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(op, name, block)
}

// count helpers attribute one operation to this view and, for namespaced
// views, to the device aggregate as well — so per-view Stats always sum to
// the root view's Stats. Handles tagged with MaintTagged additionally
// attribute the operation to the view's (and device's) maintenance
// counters, an overlay that never changes the primary Stats.

func (m *Manager) countOpen() {
	m.stats.opens.Add(1)
	if m.stats != &m.dev.agg {
		m.dev.agg.opens.Add(1)
	}
	if m.tagMaint {
		m.maint.opens.Add(1)
		if m.maint != &m.dev.maintAgg {
			m.dev.maintAgg.opens.Add(1)
		}
	}
}

func (m *Manager) countSeqRead(nbytes int) {
	m.stats.seqReads.Add(1)
	m.stats.bytesRead.Add(uint64(nbytes))
	if m.stats != &m.dev.agg {
		m.dev.agg.seqReads.Add(1)
		m.dev.agg.bytesRead.Add(uint64(nbytes))
	}
	if m.tagMaint {
		m.maint.seqReads.Add(1)
		m.maint.bytesRead.Add(uint64(nbytes))
		if m.maint != &m.dev.maintAgg {
			m.dev.maintAgg.seqReads.Add(1)
			m.dev.maintAgg.bytesRead.Add(uint64(nbytes))
		}
	}
}

func (m *Manager) countSeqWrite(nbytes int) {
	m.stats.seqWrites.Add(1)
	m.stats.bytesWritten.Add(uint64(nbytes))
	if m.stats != &m.dev.agg {
		m.dev.agg.seqWrites.Add(1)
		m.dev.agg.bytesWritten.Add(uint64(nbytes))
	}
	if m.tagMaint {
		m.maint.seqWrites.Add(1)
		m.maint.bytesWritten.Add(uint64(nbytes))
		if m.maint != &m.dev.maintAgg {
			m.dev.maintAgg.seqWrites.Add(1)
			m.dev.maintAgg.bytesWritten.Add(uint64(nbytes))
		}
	}
}

func (m *Manager) countRandRead(nbytes int) {
	m.stats.randReads.Add(1)
	m.stats.bytesRead.Add(uint64(nbytes))
	if m.stats != &m.dev.agg {
		m.dev.agg.randReads.Add(1)
		m.dev.agg.bytesRead.Add(uint64(nbytes))
	}
	if m.tagMaint {
		m.maint.randReads.Add(1)
		m.maint.bytesRead.Add(uint64(nbytes))
		if m.maint != &m.dev.maintAgg {
			m.dev.maintAgg.randReads.Add(1)
			m.dev.maintAgg.bytesRead.Add(uint64(nbytes))
		}
	}
}

func (m *Manager) countCacheHit() {
	m.stats.cacheHits.Add(1)
	if m.stats != &m.dev.agg {
		m.dev.agg.cacheHits.Add(1)
	}
	if m.tagMaint {
		m.maint.cacheHits.Add(1)
		if m.maint != &m.dev.maintAgg {
			m.dev.maintAgg.cacheHits.Add(1)
		}
	}
}

func (m *Manager) countBlockSkip() {
	m.stats.skippedBlocks.Add(1)
	if m.stats != &m.dev.agg {
		m.dev.agg.skippedBlocks.Add(1)
	}
	if m.tagMaint {
		m.maint.skippedBlocks.Add(1)
		if m.maint != &m.dev.maintAgg {
			m.dev.maintAgg.skippedBlocks.Add(1)
		}
	}
}

func (m *Manager) countCacheMiss() {
	m.stats.cacheMisses.Add(1)
	if m.stats != &m.dev.agg {
		m.dev.agg.cacheMisses.Add(1)
	}
	if m.tagMaint {
		m.maint.cacheMisses.Add(1)
		if m.maint != &m.dev.maintAgg {
			m.dev.maintAgg.cacheMisses.Add(1)
		}
	}
}

// MaintTagged returns a handle on the same view whose I/O is additionally
// attributed to the view's maintenance counters — the store routes batch
// installs, sorts and level merges through it so background work is
// distinguishable from foreground traffic. The primary Stats are unchanged:
// maintenance attribution is an overlay, and per-view Stats still sum to
// the device aggregate.
func (m *Manager) MaintTagged() *Manager {
	c := *m
	c.tagMaint = true
	return &c
}

// MaintStats returns the view's maintenance-attributed counters (the root
// view reports the device-wide maintenance aggregate). Always a subset of
// Stats.
func (m *Manager) MaintStats() Stats {
	return m.maint.snapshot()
}

// Stats returns a snapshot of this view's cumulative I/O counters. For the
// root view this is the device aggregate; for a namespaced view it covers
// only I/O issued through that view.
func (m *Manager) Stats() Stats {
	return m.stats.snapshot()
}

// ResetStats zeroes this view's counters. Resetting the root view does not
// touch per-namespace counters (and vice versa), so mixing ResetStats with
// per-stream accounting breaks the sum-to-aggregate invariant; it is
// intended for experiment harnesses on root-view devices.
func (m *Manager) ResetStats() {
	m.stats.reset()
}

// invalidate drops cached blocks and the cached columnar index of a
// device-wide name after a remove or truncation.
func (m *Manager) invalidate(key string) {
	if c := m.dev.cache.Load(); c != nil {
		c.invalidate(key)
	}
	m.dev.dropIndex(key)
}

// Remove deletes the named file. Removing a non-existent file is an error.
// The cache is invalidated after the backend delete so a concurrent read of
// the old file cannot slip a block in between invalidation and removal.
func (m *Manager) Remove(name string) error {
	key := m.key(name)
	if err := m.dev.backend.Remove(key); err != nil {
		return fmt.Errorf("disk: remove %s: %w", key, err)
	}
	m.invalidate(key)
	return nil
}

// Exists reports whether the named file exists.
func (m *Manager) Exists(name string) bool {
	return m.dev.backend.Exists(m.key(name))
}

// Size returns the number of elements stored in the named file. For
// columnar files the count comes from the footer, not from byte-size
// arithmetic; format detection may open the file (uncounted, like other
// metadata access).
func (m *Manager) Size(name string) (int64, error) {
	key := m.key(name)
	n, err := m.dev.backend.Size(key)
	if err != nil {
		return 0, fmt.Errorf("disk: stat %s: %w", key, err)
	}
	if n < colHeadLen+colTrailerLen {
		return n / ElementSize, nil
	}
	h, err := m.dev.backend.Open(key)
	if err != nil {
		return 0, fmt.Errorf("disk: stat %s: %w", key, err)
	}
	defer h.Close()
	ix, err := m.columnarIndex(key, h)
	if err != nil {
		return 0, fmt.Errorf("disk: stat %s: %w", key, err)
	}
	if ix != nil {
		return ix.total(), nil
	}
	return n / ElementSize, nil
}

// WriteMeta atomically replaces a small metadata file (e.g. a manifest) on
// the backend. Metadata I/O is not block-accounted: the paper's cost model
// covers element data only. It does route through the fault hook (as
// OpMetaWrite), so tests can fail manifest commits like any other I/O.
func (m *Manager) WriteMeta(name string, data []byte) error {
	key := m.key(name)
	if err := m.injected(OpMetaWrite, key, 0); err != nil {
		return fmt.Errorf("disk: write meta %s: %w", key, err)
	}
	if err := m.dev.backend.WriteMeta(key, data); err != nil {
		return fmt.Errorf("disk: write meta %s: %w", key, err)
	}
	return nil
}

// Sync is the device's durability barrier: it returns once every previously
// completed write (data files, metadata commits, removals) is durable on
// the backend. The barrier is device-wide — syncing any view syncs them
// all. Sync routes through the fault hook as OpSync.
func (m *Manager) Sync() error {
	if err := m.injected(OpSync, m.prefix, 0); err != nil {
		return fmt.Errorf("disk: sync: %w", err)
	}
	if err := m.dev.backend.Sync(); err != nil {
		return fmt.Errorf("disk: sync: %w", err)
	}
	return nil
}

// List returns the view-relative names of all files under this view whose
// name starts with prefix, sorted. Crash recovery uses it to find orphaned
// files from half-finished installs.
func (m *Manager) List(prefix string) ([]string, error) {
	names, err := m.dev.backend.List(m.key(prefix))
	if err != nil {
		return nil, fmt.Errorf("disk: list %q: %w", m.key(prefix), err)
	}
	if m.prefix == "" {
		return names, nil
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, n[len(m.prefix):])
	}
	return out, nil
}

// ReadMeta reads a metadata file written with WriteMeta.
func (m *Manager) ReadMeta(name string) ([]byte, error) {
	data, err := m.dev.backend.ReadMeta(m.key(name))
	if err != nil {
		return nil, fmt.Errorf("disk: read meta %s: %w", m.key(name), err)
	}
	return data, nil
}

// encodeInto writes vals as little-endian int64 into buf, which must be at
// least 8*len(vals) bytes.
func encodeInto(buf []byte, vals []int64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*ElementSize:], uint64(v))
	}
}

// decodeInto reads little-endian int64s from buf into out.
func decodeInto(out []int64, buf []byte) {
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[i*ElementSize:]))
	}
}
