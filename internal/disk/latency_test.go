package disk

import (
	"testing"
	"time"
)

func TestLatencySimulation(t *testing.T) {
	m := newTestManager(t, 64)
	m.SetLatency(Latency{SeqWrite: time.Millisecond, RandRead: 2 * time.Millisecond})

	w, err := m.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < 16; i++ { // 2 full blocks
		if err := w.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < 2*time.Millisecond {
		t.Errorf("writes completed in %v; expected >= 2ms of simulated delay", elapsed)
	}
	if m.SimulatedLatency() < 2*time.Millisecond {
		t.Errorf("SimulatedLatency = %v", m.SimulatedLatency())
	}

	rr, err := m.OpenRandom("f")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	t0 = time.Now()
	if _, err := rr.Block(1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < 2*time.Millisecond {
		t.Errorf("random read took %v; expected >= 2ms", elapsed)
	}

	// Disabling restores full speed.
	m.SetLatency(Latency{})
	t0 = time.Now()
	if _, err := rr.Block(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > time.Millisecond {
		t.Errorf("read with latency disabled took %v", elapsed)
	}
}

func TestLatencyProfilesSane(t *testing.T) {
	if HDD.RandRead <= HDD.SeqRead {
		t.Error("HDD random must cost more than sequential")
	}
	if SSD.RandRead >= HDD.RandRead {
		t.Error("SSD random must be faster than HDD")
	}
}
