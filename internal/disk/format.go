package disk

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/enc"
)

// BlockFormat selects the on-disk layout of element files.
//
// Format 0 ("raw") is the seed layout: a headerless flat file of
// little-endian int64s, blockSize bytes per block. It remains the format of
// unsorted batch spills and the backward-compatibility target — files
// written by earlier releases are format 0 and still open.
//
// Format 1 ("columnar") is the compressed layout: a self-describing file of
// variable-length blocks, each carrying a 25-byte header (frame tag, element
// count, frame byte length, min, max) followed by a delta + zig-zag varint
// frame (internal/enc) — or a raw int64 frame when the varint encoding would
// be larger, e.g. for unsorted data. Blocks are packed until the header plus
// frame would exceed the device block size, so sorted runs hold several
// times more elements per block than format 0. A footer (per-block index +
// trailer) makes the file self-describing: element counts come from block
// headers, not from size/ElementSize arithmetic, and readers can consult a
// block's min/max bounds without decoding it.
type BlockFormat uint8

const (
	// FormatRaw is format 0: headerless little-endian int64s.
	FormatRaw BlockFormat = iota
	// FormatColumnar is format 1: header-tagged compressed blocks with a
	// trailing block index.
	FormatColumnar
)

// String returns the knob spelling of the format.
func (f BlockFormat) String() string {
	switch f {
	case FormatRaw:
		return "raw"
	case FormatColumnar:
		return "columnar"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// ParseBlockFormat resolves the -block-format / Config.BlockFormat knob.
func ParseBlockFormat(s string) (BlockFormat, error) {
	switch s {
	case "raw":
		return FormatRaw, nil
	case "columnar":
		return FormatColumnar, nil
	default:
		return FormatRaw, fmt.Errorf("disk: unknown block format %q (want \"raw\" or \"columnar\")", s)
	}
}

// Columnar file geometry. Layout:
//
//	head    8 B   magic "HSQC" | version 1 | 3 zero bytes
//	blocks  var   per block: header (25 B) + frame (≤ blockSize-25 B)
//	index   28 B × blocks: offset u64 | count u32 | min i64 | max i64
//	trailer 32 B  totalElems i64 | blockCount i64 | indexLen i64 | head magic
//
// Per-block header: tag u8 (0 raw int64 frame, 1 delta varint frame) |
// count u32 | frame byte length u32 | min i64 | max i64. All little-endian.
//
// Detection requires BOTH the head magic and a self-consistent trailer
// (matching magic, index length, monotone offsets, counts summing to the
// trailer's total), so a format-0 file whose first element happens to collide
// with the magic still opens as format 0.
const (
	colHeadLen       = 8
	colHeaderLen     = 25
	colIndexEntryLen = 28
	colTrailerLen    = 32
	// colMinBlockSize is the smallest device block size the columnar format
	// supports: the header plus at least one worst-case varint element.
	colMinBlockSize = colHeaderLen + enc.MaxVarintLen64 + 13 // = 48

	colTagRaw   = 0
	colTagDelta = 1
)

// colMagic opens (and, inside the trailer, closes) every columnar file.
var colMagic = [colHeadLen]byte{'H', 'S', 'Q', 'C', 1, 0, 0, 0}

// colIndex is the parsed footer of one columnar file: everything a reader
// needs to locate, size and bound-check blocks without touching their frames.
type colIndex struct {
	// offsets[i] is the file offset of block i's header; offsets[nblocks]
	// is the end of the data region (= start of the index section).
	offsets []int64
	// starts[i] is the element index of block i's first element;
	// starts[nblocks] is the total element count.
	starts []int64
	mins   []int64
	maxs   []int64
}

func (ix *colIndex) blocks() int64 { return int64(len(ix.offsets)) - 1 }
func (ix *colIndex) total() int64  { return ix.starts[len(ix.starts)-1] }

// frameLen returns the byte length of block i's frame (header excluded).
func (ix *colIndex) frameLen(i int64) int {
	return int(ix.offsets[i+1]-ix.offsets[i]) - colHeaderLen
}

// blockCount returns the number of elements in block i.
func (ix *colIndex) blockCount(i int64) int64 { return ix.starts[i+1] - ix.starts[i] }

// findBlock returns the index of the block containing element e.
func (ix *colIndex) findBlock(e int64) int64 {
	// First block whose start exceeds e, minus one.
	n := len(ix.starts)
	i := sort.Search(n, func(i int) bool { return ix.starts[i] > e })
	return int64(i - 1)
}

// putColHeader encodes one block header into buf (≥ colHeaderLen bytes).
func putColHeader(buf []byte, tag byte, count int, frameLen int, min, max int64) {
	buf[0] = tag
	binary.LittleEndian.PutUint32(buf[1:], uint32(count))
	binary.LittleEndian.PutUint32(buf[5:], uint32(frameLen))
	binary.LittleEndian.PutUint64(buf[9:], uint64(min))
	binary.LittleEndian.PutUint64(buf[17:], uint64(max))
}

// colHeader is one decoded block header.
type colHeader struct {
	tag      byte
	count    int
	frameLen int
	min, max int64
}

func parseColHeader(buf []byte) colHeader {
	return colHeader{
		tag:      buf[0],
		count:    int(binary.LittleEndian.Uint32(buf[1:])),
		frameLen: int(binary.LittleEndian.Uint32(buf[5:])),
		min:      int64(binary.LittleEndian.Uint64(buf[9:])),
		max:      int64(binary.LittleEndian.Uint64(buf[17:])),
	}
}

// decodeColBlock parses one block (header + frame) from buf into dst, which
// must hold wantCount elements. It cross-checks the header against the index
// so a torn or misdirected read fails loudly instead of decoding garbage.
func decodeColBlock(dst []int64, buf []byte, wantCount int) error {
	if len(buf) < colHeaderLen {
		return fmt.Errorf("short block: %d bytes", len(buf))
	}
	h := parseColHeader(buf)
	if h.count != wantCount {
		return fmt.Errorf("header count %d, index says %d", h.count, wantCount)
	}
	if colHeaderLen+h.frameLen != len(buf) {
		return fmt.Errorf("header frame length %d, index implies %d", h.frameLen, len(buf)-colHeaderLen)
	}
	frame := buf[colHeaderLen:]
	switch h.tag {
	case colTagRaw:
		if h.frameLen != wantCount*ElementSize {
			return fmt.Errorf("raw frame of %d bytes for %d elements", h.frameLen, wantCount)
		}
		decodeInto(dst[:wantCount], frame)
	case colTagDelta:
		rest, err := enc.DecodeDelta(dst[:wantCount], frame)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("frame has %d trailing bytes", len(rest))
		}
	default:
		return fmt.Errorf("unknown frame tag %d", h.tag)
	}
	return nil
}

// loadColumnarIndex inspects an open handle and returns the parsed columnar
// index, or (nil, nil) when the file is format 0. Index and trailer reads
// are file metadata, outside the paper's block cost model, so they are not
// block-accounted; the parsed index is cached device-wide by the Manager so
// repeated opens of one partition pay the parse once.
func loadColumnarIndex(h ReadHandle, size int64) (*colIndex, error) {
	if size < colHeadLen+colTrailerLen {
		return nil, nil // too small to be columnar, including empty files
	}
	var head [colHeadLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(h, 0, colHeadLen), head[:]); err != nil {
		return nil, err
	}
	if head != colMagic {
		return nil, nil
	}
	var trailer [colTrailerLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(h, size-colTrailerLen, colTrailerLen), trailer[:]); err != nil {
		return nil, err
	}
	if [colHeadLen]byte(trailer[24:32]) != colMagic {
		// Head magic without a trailer magic: a format-0 file whose first
		// element collides with the magic constant.
		return nil, nil
	}
	total := int64(binary.LittleEndian.Uint64(trailer[0:]))
	nblocks := int64(binary.LittleEndian.Uint64(trailer[8:]))
	indexLen := int64(binary.LittleEndian.Uint64(trailer[16:]))
	// Any inconsistency from here on falls back to format 0 rather than
	// failing: a raw file can collide with both magics by storing the magic
	// value as elements, and rejecting a legitimate raw file would break
	// compatibility. Columnar files written by this package always carry a
	// consistent footer — the only columnar files without one are torn,
	// unreferenced orphans that recovery deletes without reading.
	if total < 0 || nblocks <= 0 || indexLen != nblocks*colIndexEntryLen ||
		colHeadLen+indexLen+colTrailerLen > size {
		return nil, nil
	}
	dataEnd := size - colTrailerLen - indexLen
	raw := make([]byte, indexLen)
	if _, err := io.ReadFull(io.NewSectionReader(h, dataEnd, indexLen), raw); err != nil {
		return nil, err
	}
	ix := &colIndex{
		offsets: make([]int64, nblocks+1),
		starts:  make([]int64, nblocks+1),
		mins:    make([]int64, nblocks),
		maxs:    make([]int64, nblocks),
	}
	var elems int64
	for i := int64(0); i < nblocks; i++ {
		e := raw[i*colIndexEntryLen:]
		off := int64(binary.LittleEndian.Uint64(e[0:]))
		cnt := int64(binary.LittleEndian.Uint32(e[8:]))
		ix.offsets[i] = off
		ix.starts[i] = elems
		ix.mins[i] = int64(binary.LittleEndian.Uint64(e[12:]))
		ix.maxs[i] = int64(binary.LittleEndian.Uint64(e[20:]))
		if off < colHeadLen || cnt <= 0 || (i > 0 && off <= ix.offsets[i-1]) {
			return nil, nil
		}
		elems += cnt
	}
	ix.offsets[nblocks] = dataEnd
	ix.starts[nblocks] = elems
	if elems != total || ix.offsets[0] != colHeadLen {
		return nil, nil
	}
	for i := int64(0); i < nblocks; i++ {
		if ix.frameLen(i) <= 0 {
			return nil, nil
		}
	}
	return ix, nil
}

// columnarIndex returns the parsed index of the named (device-wide) file, or
// nil for a format-0 file, consulting and filling the device-wide index
// cache. The handle is only read on a cache miss.
func (m *Manager) columnarIndex(key string, h ReadHandle) (*colIndex, error) {
	d := m.dev
	d.idxMu.Lock()
	if ix, ok := d.idxCache[key]; ok {
		d.idxMu.Unlock()
		return ix, nil
	}
	d.idxMu.Unlock()
	size, err := h.Size()
	if err != nil {
		return nil, err
	}
	ix, err := loadColumnarIndex(h, size)
	if err != nil {
		return nil, err
	}
	d.idxMu.Lock()
	if d.idxCache == nil {
		d.idxCache = make(map[string]*colIndex)
	}
	d.idxCache[key] = ix // nil marks a confirmed format-0 file
	d.idxMu.Unlock()
	return ix, nil
}

// dropIndex forgets the cached index of a removed or truncated file.
func (d *device) dropIndex(key string) {
	d.idxMu.Lock()
	delete(d.idxCache, key)
	d.idxMu.Unlock()
}
