package disk

import (
	"fmt"
	"io"
)

// Reader scans a file sequentially, one block at a time. Every block read
// counts as one sequential read. Sequential scans bypass the block cache
// (scan resistance: a merge touches each block exactly once). Reader is not
// safe for concurrent use.
type Reader struct {
	m      *Manager
	name   string
	h      ReadHandle
	buf    []byte
	vals   []int64
	pos    int   // next element index within vals
	n      int   // valid elements in vals
	block  int64 // next block index to read
	count  int64 // total elements in the file
	read   int64 // elements returned so far
	closed bool
}

// OpenSequential opens the named element file for a sequential scan.
func (m *Manager) OpenSequential(name string) (*Reader, error) {
	key := m.key(name)
	if err := m.injected(OpOpen, key, 0); err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	h, err := m.dev.backend.Open(key)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	m.countOpen()
	// Size via the handle so count describes the file the handle reads,
	// even if the name is concurrently recreated.
	size, err := h.Size()
	if err != nil {
		h.Close() //nolint:errcheck
		return nil, fmt.Errorf("disk: stat %s: %w", key, err)
	}
	return &Reader{
		m:     m,
		name:  key,
		h:     h,
		buf:   make([]byte, m.dev.blockSize),
		vals:  make([]int64, m.dev.perBlock),
		count: size / ElementSize,
	}, nil
}

// Count returns the total number of elements in the file.
func (r *Reader) Count() int64 { return r.count }

// Next returns the next element. It returns ok=false at end of file.
func (r *Reader) Next() (v int64, ok bool, err error) {
	if r.closed {
		return 0, false, fmt.Errorf("disk: read from closed reader %s", r.name)
	}
	if r.pos >= r.n {
		if r.read >= r.count {
			return 0, false, nil
		}
		if err := r.fill(); err != nil {
			return 0, false, err
		}
		if r.n == 0 {
			return 0, false, nil
		}
	}
	v = r.vals[r.pos]
	r.pos++
	r.read++
	return v, true, nil
}

func (r *Reader) fill() error {
	if err := r.m.injected(OpSeqRead, r.name, r.block); err != nil {
		return fmt.Errorf("disk: read %s block %d: %w", r.name, r.block, err)
	}
	r.m.sleepFor(OpSeqRead)
	n, err := r.h.ReadAt(r.buf, r.block*int64(r.m.dev.blockSize))
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = nil
	}
	if err != nil {
		return fmt.Errorf("disk: read %s block %d: %w", r.name, r.block, err)
	}
	if n%ElementSize != 0 {
		return fmt.Errorf("disk: read %s block %d: torn element (%d bytes)", r.name, r.block, n)
	}
	cnt := n / ElementSize
	decodeInto(r.vals[:cnt], r.buf[:n])
	r.pos, r.n = 0, cnt
	if cnt > 0 {
		r.m.countSeqRead(n)
		r.block++
	}
	return nil
}

// Close releases the underlying handle.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if err := r.h.Close(); err != nil {
		return fmt.Errorf("disk: close %s: %w", r.name, err)
	}
	return nil
}

// SeekElement repositions the sequential reader so the next call to Next
// returns element i (0-based). The partial block containing i is read
// immediately and counted as one sequential read. Used by range-restricted
// scans such as parallel merges.
func (r *Reader) SeekElement(i int64) error {
	if r.closed {
		return fmt.Errorf("disk: seek on closed reader %s", r.name)
	}
	if i < 0 || i > r.count {
		return fmt.Errorf("disk: seek to %d outside [0,%d] in %s", i, r.count, r.name)
	}
	if i == r.count {
		// Position at EOF.
		r.pos, r.n = 0, 0
		r.read = r.count
		r.block = (r.count + int64(r.m.dev.perBlock) - 1) / int64(r.m.dev.perBlock)
		return nil
	}
	blk := i / int64(r.m.dev.perBlock)
	r.block = blk
	r.pos, r.n = 0, 0
	r.read = blk * int64(r.m.dev.perBlock)
	if err := r.fill(); err != nil {
		return err
	}
	skip := int(i - blk*int64(r.m.dev.perBlock))
	r.pos = skip
	r.read = i
	return nil
}

// RandomReader reads individual blocks of a file by index. Every Block call
// that reaches the backend counts as one random read; calls absorbed by the
// Manager's block cache count as cache hits instead. RandomReader is not
// safe for concurrent use.
type RandomReader struct {
	m      *Manager
	name   string
	h      ReadHandle
	count  int64 // elements in the file
	blocks int64 // number of blocks
	buf    []byte
	reads  int // backend block reads issued through this handle
	hits   int // cache hits served through this handle
	closed bool
}

// OpenRandom opens the named element file for random block access.
func (m *Manager) OpenRandom(name string) (*RandomReader, error) {
	key := m.key(name)
	if err := m.injected(OpOpen, key, 0); err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	h, err := m.dev.backend.Open(key)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	m.countOpen()
	size, err := h.Size()
	if err != nil {
		h.Close() //nolint:errcheck
		return nil, fmt.Errorf("disk: stat %s: %w", key, err)
	}
	count := size / ElementSize
	blocks := (count + int64(m.dev.perBlock) - 1) / int64(m.dev.perBlock)
	return &RandomReader{
		m:      m,
		name:   key,
		h:      h,
		count:  count,
		blocks: blocks,
		buf:    make([]byte, m.dev.blockSize),
	}, nil
}

// Count returns the number of elements in the file.
func (r *RandomReader) Count() int64 { return r.count }

// Blocks returns the number of blocks in the file.
func (r *RandomReader) Blocks() int64 { return r.blocks }

// Reads returns the number of block reads this handle sent to the backend
// (cache hits excluded).
func (r *RandomReader) Reads() int { return r.reads }

// CacheHits returns the number of Block calls served by the block cache.
func (r *RandomReader) CacheHits() int { return r.hits }

// Block reads block idx and returns its elements. The returned slice is
// shared with the Manager's block cache when one is installed, so callers
// must treat it as immutable (the query layer only reads pinned blocks).
func (r *RandomReader) Block(idx int64) ([]int64, error) {
	if r.closed {
		return nil, fmt.Errorf("disk: read from closed reader %s", r.name)
	}
	if idx < 0 || idx >= r.blocks {
		return nil, fmt.Errorf("disk: block %d out of range [0,%d) in %s", idx, r.blocks, r.name)
	}
	cache := r.m.dev.cache.Load()
	if cache != nil {
		if vals, ok := cache.get(r.name, idx); ok {
			r.hits++
			r.m.countCacheHit()
			return vals, nil
		}
	}
	if err := r.m.injected(OpRandRead, r.name, idx); err != nil {
		return nil, fmt.Errorf("disk: read %s block %d: %w", r.name, idx, err)
	}
	r.m.sleepFor(OpRandRead)
	off := idx * int64(r.m.dev.blockSize)
	n, err := r.h.ReadAt(r.buf, off)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = nil
	}
	if err != nil {
		return nil, fmt.Errorf("disk: read %s block %d: %w", r.name, idx, err)
	}
	if n%ElementSize != 0 {
		return nil, fmt.Errorf("disk: read %s block %d: torn element (%d bytes)", r.name, idx, n)
	}
	cnt := n / ElementSize
	out := make([]int64, cnt)
	decodeInto(out, r.buf[:n])
	r.reads++
	r.m.countRandRead(n)
	if cache != nil {
		r.m.countCacheMiss()
		// Caching partial tail blocks is sound within the Manager API: the
		// Writer only flushes a partial block at Close, after which the
		// file can never grow (Create truncates), so a visible partial
		// block is as immutable as a full one. Writing to the backend
		// directly, bypassing this Manager, voids that guarantee.
		cache.put(r.name, idx, out)
	}
	return out, nil
}

// ElementBlock returns the block index containing element i.
func (r *RandomReader) ElementBlock(i int64) int64 { return i / int64(r.m.dev.perBlock) }

// Close releases the underlying handle.
func (r *RandomReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if err := r.h.Close(); err != nil {
		return fmt.Errorf("disk: close %s: %w", r.name, err)
	}
	return nil
}
