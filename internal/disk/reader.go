package disk

import (
	"fmt"
	"io"
	"sync"
)

// Sequential readers recycle their block and element staging through pools,
// so steady-state merge scans run allocation-free: a scan's only per-block
// work is one backend read and one decode into a buffer that outlives the
// reader via the pool.
var (
	seqBufPool  = sync.Pool{New: func() any { return new([]byte) }}
	seqValsPool = sync.Pool{New: func() any { return new([]int64) }}
)

// growBytes returns b resized to n, reallocating only when capacity lacks.
func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// growInt64 returns s resized to n, reallocating only when capacity lacks.
func growInt64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

// Reader scans a file sequentially, one block at a time (or several with
// SetReadahead). Every block read counts as one sequential read. Sequential
// scans bypass the block cache (scan resistance: a merge touches each block
// exactly once). Reader is not safe for concurrent use.
type Reader struct {
	m      *Manager
	name   string
	h      ReadHandle
	ix     *colIndex // parsed columnar footer; nil for format-0 files
	bufp   *[]byte
	valsp  *[]int64
	buf    []byte
	vals   []int64
	pos    int   // next element index within vals
	n      int   // valid elements in vals
	block  int64 // next block index to read
	count  int64 // total elements in the file
	read   int64 // elements returned so far
	ahead  int   // blocks fetched per backend call (>= 1)
	closed bool
}

// OpenSequential opens the named element file for a sequential scan. The
// block format is auto-detected, so mixed-format stores scan uniformly.
func (m *Manager) OpenSequential(name string) (*Reader, error) {
	key := m.key(name)
	if err := m.injected(OpOpen, key, 0); err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	h, err := m.dev.backend.Open(key)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	m.countOpen()
	// Size via the handle so count describes the file the handle reads,
	// even if the name is concurrently recreated.
	size, err := h.Size()
	if err != nil {
		h.Close() //nolint:errcheck
		return nil, fmt.Errorf("disk: stat %s: %w", key, err)
	}
	ix, err := m.columnarIndex(key, h)
	if err != nil {
		h.Close() //nolint:errcheck
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	count := size / ElementSize
	if ix != nil {
		// Element counts come from the footer the writer committed, not
		// from byte-size arithmetic — a compressed file's size says nothing
		// about its element count.
		count = ix.total()
	}
	bufp := seqBufPool.Get().(*[]byte)
	valsp := seqValsPool.Get().(*[]int64)
	return &Reader{
		m:     m,
		name:  key,
		h:     h,
		ix:    ix,
		bufp:  bufp,
		valsp: valsp,
		buf:   *bufp,
		vals:  *valsp,
		count: count,
		ahead: 1,
	}, nil
}

// SetReadahead makes each backend call fetch up to k contiguous blocks
// (clamped to at least 1). Each fetched block still counts as one
// sequential read, but the batch shares one backend call and one simulated
// seek, and the fault hook fires once at the batch's first block — so merge
// paths enable readahead while per-block fault-injection tests keep the
// default. k-way merges set this so each run refill is one backend call.
func (r *Reader) SetReadahead(k int) {
	if k < 1 {
		k = 1
	}
	r.ahead = k
}

// Count returns the total number of elements in the file.
func (r *Reader) Count() int64 { return r.count }

// Next returns the next element. It returns ok=false at end of file.
func (r *Reader) Next() (v int64, ok bool, err error) {
	if r.closed {
		return 0, false, fmt.Errorf("disk: read from closed reader %s", r.name)
	}
	if r.pos >= r.n {
		if r.read >= r.count {
			return 0, false, nil
		}
		if err := r.fill(); err != nil {
			return 0, false, err
		}
		if r.n == 0 {
			return 0, false, nil
		}
	}
	v = r.vals[r.pos]
	r.pos++
	r.read++
	return v, true, nil
}

func (r *Reader) fill() error {
	if r.ix != nil {
		return r.fillColumnar()
	}
	if err := r.m.injected(OpSeqRead, r.name, r.block); err != nil {
		return fmt.Errorf("disk: read %s block %d: %w", r.name, r.block, err)
	}
	r.m.sleepFor(OpSeqRead)
	bs := r.m.dev.blockSize
	r.buf = growBytes(r.buf, r.ahead*bs)
	n, err := r.h.ReadAt(r.buf, r.block*int64(bs))
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = nil
	}
	if err != nil {
		return fmt.Errorf("disk: read %s block %d: %w", r.name, r.block, err)
	}
	if n%ElementSize != 0 {
		return fmt.Errorf("disk: read %s block %d: torn element (%d bytes)", r.name, r.block, n)
	}
	cnt := n / ElementSize
	r.vals = growInt64(r.vals, cnt)
	decodeInto(r.vals[:cnt], r.buf[:n])
	r.pos, r.n = 0, cnt
	for got := 0; got < n; got += bs {
		rem := n - got
		if rem > bs {
			rem = bs
		}
		r.m.countSeqRead(rem)
		r.block++
	}
	return nil
}

// fillColumnar decodes the next r.ahead blocks from one backend read. Reads
// land strictly inside the data region located by the footer, so a short
// read is corruption, not EOF.
func (r *Reader) fillColumnar() error {
	nb := r.ix.blocks()
	if r.block >= nb {
		r.pos, r.n = 0, 0
		return nil
	}
	last := r.block + int64(r.ahead) - 1
	if last >= nb {
		last = nb - 1
	}
	off := r.ix.offsets[r.block]
	length := int(r.ix.offsets[last+1] - off)
	if err := r.m.injected(OpSeqRead, r.name, r.block); err != nil {
		return fmt.Errorf("disk: read %s block %d: %w", r.name, r.block, err)
	}
	r.m.sleepFor(OpSeqRead)
	r.buf = growBytes(r.buf, length)
	if _, err := r.h.ReadAt(r.buf, off); err != nil {
		return fmt.Errorf("disk: read %s block %d: %w", r.name, r.block, err)
	}
	total := int(r.ix.starts[last+1] - r.ix.starts[r.block])
	r.vals = growInt64(r.vals, total)
	written := 0
	for b := r.block; b <= last; b++ {
		bbuf := r.buf[r.ix.offsets[b]-off : r.ix.offsets[b+1]-off]
		cnt := int(r.ix.blockCount(b))
		if err := decodeColBlock(r.vals[written:written+cnt], bbuf, cnt); err != nil {
			return fmt.Errorf("disk: read %s block %d: %w", r.name, b, err)
		}
		written += cnt
		r.m.countSeqRead(len(bbuf))
	}
	r.pos, r.n = 0, written
	r.block = last + 1
	return nil
}

// Close releases the underlying handle and returns the staging buffers to
// the pools.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	*r.bufp = r.buf
	seqBufPool.Put(r.bufp)
	*r.valsp = r.vals
	seqValsPool.Put(r.valsp)
	r.buf, r.vals = nil, nil
	if err := r.h.Close(); err != nil {
		return fmt.Errorf("disk: close %s: %w", r.name, err)
	}
	return nil
}

// SeekElement repositions the sequential reader so the next call to Next
// returns element i (0-based). The block batch containing i is read
// immediately. Used by range-restricted scans such as parallel merges.
func (r *Reader) SeekElement(i int64) error {
	if r.closed {
		return fmt.Errorf("disk: seek on closed reader %s", r.name)
	}
	if i < 0 || i > r.count {
		return fmt.Errorf("disk: seek to %d outside [0,%d] in %s", i, r.count, r.name)
	}
	if i == r.count {
		// Position at EOF.
		r.pos, r.n = 0, 0
		r.read = r.count
		if r.ix != nil {
			r.block = r.ix.blocks()
		} else {
			r.block = (r.count + int64(r.m.dev.perBlock) - 1) / int64(r.m.dev.perBlock)
		}
		return nil
	}
	var blk, first int64
	if r.ix != nil {
		blk = r.ix.findBlock(i)
		first = r.ix.starts[blk]
	} else {
		blk = i / int64(r.m.dev.perBlock)
		first = blk * int64(r.m.dev.perBlock)
	}
	r.block = blk
	r.pos, r.n = 0, 0
	r.read = first
	if err := r.fill(); err != nil {
		return err
	}
	r.pos = int(i - first)
	r.read = i
	return nil
}

// RandomReader reads individual blocks of a file by index. Every Block call
// that reaches the backend counts as one random read; calls absorbed by the
// Manager's block cache count as cache hits instead, and probes answered
// from columnar header bounds (see BlockBounds) count as skipped blocks.
// RandomReader is not safe for concurrent use.
type RandomReader struct {
	m      *Manager
	name   string
	h      ReadHandle
	ix     *colIndex // parsed columnar footer; nil for format-0 files
	count  int64     // elements in the file
	blocks int64     // number of blocks
	buf    []byte
	reads  int // backend block reads issued through this handle
	hits   int // cache hits served through this handle
	skips  int // probes answered from header bounds without any read
	closed bool
}

// OpenRandom opens the named element file for random block access. The
// block format is auto-detected.
func (m *Manager) OpenRandom(name string) (*RandomReader, error) {
	key := m.key(name)
	if err := m.injected(OpOpen, key, 0); err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	h, err := m.dev.backend.Open(key)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	m.countOpen()
	size, err := h.Size()
	if err != nil {
		h.Close() //nolint:errcheck
		return nil, fmt.Errorf("disk: stat %s: %w", key, err)
	}
	ix, err := m.columnarIndex(key, h)
	if err != nil {
		h.Close() //nolint:errcheck
		return nil, fmt.Errorf("disk: open %s: %w", key, err)
	}
	count := size / ElementSize
	blocks := (count + int64(m.dev.perBlock) - 1) / int64(m.dev.perBlock)
	if ix != nil {
		count = ix.total()
		blocks = ix.blocks()
	}
	return &RandomReader{
		m:      m,
		name:   key,
		h:      h,
		ix:     ix,
		count:  count,
		blocks: blocks,
		// A columnar block (header + frame) never exceeds the device block
		// size, so one block of staging serves both formats.
		buf: make([]byte, m.dev.blockSize),
	}, nil
}

// Count returns the number of elements in the file.
func (r *RandomReader) Count() int64 { return r.count }

// Blocks returns the number of blocks in the file.
func (r *RandomReader) Blocks() int64 { return r.blocks }

// Reads returns the number of block reads this handle sent to the backend
// (cache hits excluded).
func (r *RandomReader) Reads() int { return r.reads }

// CacheHits returns the number of Block calls served by the block cache.
func (r *RandomReader) CacheHits() int { return r.hits }

// Skips returns how many probes this handle answered from columnar header
// bounds without reading the block (see Skip).
func (r *RandomReader) Skips() int { return r.skips }

// BlockBounds returns the smallest and largest element stored in block idx,
// read from the columnar block index without touching the block itself.
// ok is false for format-0 files, which carry no bounds.
func (r *RandomReader) BlockBounds(idx int64) (min, max int64, ok bool) {
	if r.ix == nil || idx < 0 || idx >= r.blocks {
		return 0, 0, false
	}
	return r.ix.mins[idx], r.ix.maxs[idx], true
}

// BlockStart returns the element index of the first element in block idx.
func (r *RandomReader) BlockStart(idx int64) int64 {
	if r.ix != nil {
		return r.ix.starts[idx]
	}
	return idx * int64(r.m.dev.perBlock)
}

// BlockLen returns the number of elements in block idx.
func (r *RandomReader) BlockLen(idx int64) int64 {
	if r.ix != nil {
		return r.ix.blockCount(idx)
	}
	n := r.count - idx*int64(r.m.dev.perBlock)
	if per := int64(r.m.dev.perBlock); n > per {
		n = per
	}
	return n
}

// Skip records that the probe against block idx was answered entirely from
// its header bounds — no backend read, no cache access. The search layer
// calls it when BlockBounds excludes a block, so skip counters surface in
// I/O stats alongside reads and hits.
func (r *RandomReader) Skip(int64) {
	r.skips++
	r.m.countBlockSkip()
}

// Block reads block idx and returns its elements. The returned slice is
// shared with the Manager's block cache when one is installed, so callers
// must treat it as immutable (the query layer only reads pinned blocks).
func (r *RandomReader) Block(idx int64) ([]int64, error) {
	if r.closed {
		return nil, fmt.Errorf("disk: read from closed reader %s", r.name)
	}
	if idx < 0 || idx >= r.blocks {
		return nil, fmt.Errorf("disk: block %d out of range [0,%d) in %s", idx, r.blocks, r.name)
	}
	cache := r.m.dev.cache.Load()
	if cache != nil {
		if vals, ok := cache.get(r.name, idx); ok {
			r.hits++
			r.m.countCacheHit()
			return vals, nil
		}
	}
	if err := r.m.injected(OpRandRead, r.name, idx); err != nil {
		return nil, fmt.Errorf("disk: read %s block %d: %w", r.name, idx, err)
	}
	r.m.sleepFor(OpRandRead)
	var out []int64
	var nbytes int
	if r.ix != nil {
		off := r.ix.offsets[idx]
		nbytes = int(r.ix.offsets[idx+1] - off)
		if _, err := r.h.ReadAt(r.buf[:nbytes], off); err != nil {
			return nil, fmt.Errorf("disk: read %s block %d: %w", r.name, idx, err)
		}
		cnt := int(r.ix.blockCount(idx))
		// Decoded blocks are pinned by the search layer and shared with the
		// cache, so each gets its own allocation rather than pooled staging.
		out = make([]int64, cnt)
		if err := decodeColBlock(out, r.buf[:nbytes], cnt); err != nil {
			return nil, fmt.Errorf("disk: read %s block %d: %w", r.name, idx, err)
		}
	} else {
		off := idx * int64(r.m.dev.blockSize)
		n, err := r.h.ReadAt(r.buf, off)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = nil
		}
		if err != nil {
			return nil, fmt.Errorf("disk: read %s block %d: %w", r.name, idx, err)
		}
		if n%ElementSize != 0 {
			return nil, fmt.Errorf("disk: read %s block %d: torn element (%d bytes)", r.name, idx, n)
		}
		out = make([]int64, n/ElementSize)
		decodeInto(out, r.buf[:n])
		nbytes = n
	}
	r.reads++
	r.m.countRandRead(nbytes)
	if cache != nil {
		r.m.countCacheMiss()
		// Caching partial tail blocks is sound within the Manager API: the
		// Writer only flushes a partial block at Close, after which the
		// file can never grow (Create truncates), so a visible partial
		// block is as immutable as a full one. Writing to the backend
		// directly, bypassing this Manager, voids that guarantee.
		cache.put(r.name, idx, out)
	}
	return out, nil
}

// ReadBlocks reads blocks lo..hi (inclusive) with a single backend call and
// returns their elements concatenated — the vectored read used by bulk
// refills. Each block still counts as one random read; the batch shares one
// simulated seek and fires the fault hook once at lo. Like sequential
// scans, vectored reads bypass the block cache (they are scan-shaped and
// would evict the probe working set).
func (r *RandomReader) ReadBlocks(lo, hi int64) ([]int64, error) {
	if r.closed {
		return nil, fmt.Errorf("disk: read from closed reader %s", r.name)
	}
	if lo < 0 || hi < lo || hi >= r.blocks {
		return nil, fmt.Errorf("disk: blocks [%d,%d] out of range [0,%d) in %s", lo, hi, r.blocks, r.name)
	}
	if err := r.m.injected(OpRandRead, r.name, lo); err != nil {
		return nil, fmt.Errorf("disk: read %s blocks %d-%d: %w", r.name, lo, hi, err)
	}
	r.m.sleepFor(OpRandRead)
	if r.ix != nil {
		off := r.ix.offsets[lo]
		length := int(r.ix.offsets[hi+1] - off)
		buf := growBytes(r.buf, length)
		r.buf = buf
		if _, err := r.h.ReadAt(buf[:length], off); err != nil {
			return nil, fmt.Errorf("disk: read %s blocks %d-%d: %w", r.name, lo, hi, err)
		}
		out := make([]int64, r.ix.starts[hi+1]-r.ix.starts[lo])
		written := 0
		for b := lo; b <= hi; b++ {
			bbuf := buf[r.ix.offsets[b]-off : r.ix.offsets[b+1]-off]
			cnt := int(r.ix.blockCount(b))
			if err := decodeColBlock(out[written:written+cnt], bbuf, cnt); err != nil {
				return nil, fmt.Errorf("disk: read %s block %d: %w", r.name, b, err)
			}
			written += cnt
			r.reads++
			r.m.countRandRead(len(bbuf))
		}
		return out, nil
	}
	bs := int64(r.m.dev.blockSize)
	off := lo * bs
	end := (hi + 1) * bs
	if max := r.count * ElementSize; end > max {
		end = max
	}
	length := int(end - off)
	buf := growBytes(r.buf, length)
	r.buf = buf
	if _, err := r.h.ReadAt(buf[:length], off); err != nil {
		return nil, fmt.Errorf("disk: read %s blocks %d-%d: %w", r.name, lo, hi, err)
	}
	out := make([]int64, length/ElementSize)
	decodeInto(out, buf[:length])
	for got := 0; got < length; got += int(bs) {
		rem := length - got
		if rem > int(bs) {
			rem = int(bs)
		}
		r.reads++
		r.m.countRandRead(rem)
	}
	return out, nil
}

// ElementBlock returns the block index containing element i.
func (r *RandomReader) ElementBlock(i int64) int64 {
	if r.ix != nil {
		return r.ix.findBlock(i)
	}
	return i / int64(r.m.dev.perBlock)
}

// Close releases the underlying handle.
func (r *RandomReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if err := r.h.Close(); err != nil {
		return fmt.Errorf("disk: close %s: %w", r.name, err)
	}
	return nil
}
