package disk

import (
	"fmt"
	"strings"
)

// ValidNamespace reports whether ns is usable as a namespace (or namespace
// path, with "/" separators): every segment must be non-empty, must not be
// "." or "..", and may contain only ASCII letters, digits, '.', '_' and
// '-'. The rules keep namespaced names portable across backends — on the
// file backend a namespace maps to a subdirectory chain, on the mem backend
// it is a plain key prefix.
func ValidNamespace(ns string) error {
	if ns == "" {
		return fmt.Errorf("disk: empty namespace")
	}
	for _, seg := range strings.Split(ns, "/") {
		if seg == "" {
			return fmt.Errorf("disk: namespace %q has an empty segment", ns)
		}
		if seg == "." || seg == ".." {
			return fmt.Errorf("disk: namespace %q has a relative segment", ns)
		}
		for _, r := range seg {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
				r == '.' || r == '_' || r == '-') {
				return fmt.Errorf("disk: namespace %q has invalid character %q", ns, r)
			}
		}
	}
	return nil
}

// Namespace returns a view of the same device whose file and metadata names
// all live under ns (e.g. ns "streams/api.latency" maps "part-000001.dat"
// to "streams/api.latency/part-000001.dat" on the backend). The view shares
// the device's backend, block geometry, block-cache budget, latency profile
// and fault hook with every other view, and contributes to the root view's
// aggregate Stats while keeping its own per-view Stats — the mechanism that
// lets many independent quantile streams multiplex one physical warehouse.
//
// Namespacing composes: calling Namespace on a namespaced view nests the
// prefixes.
func (m *Manager) Namespace(ns string) (*Manager, error) {
	if err := ValidNamespace(ns); err != nil {
		return nil, err
	}
	return &Manager{dev: m.dev, prefix: m.prefix + ns + "/", stats: &ioCounters{}, maint: &ioCounters{}}, nil
}
