package disk

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newTestManager(t *testing.T, blockSize int) *Manager {
	t.Helper()
	m, err := NewManager(t.TempDir(), blockSize)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	for _, bs := range []int{0, -8, 7, 12} {
		if _, err := NewManager(t.TempDir(), bs); err == nil {
			t.Errorf("NewManager(blockSize=%d): want error", bs)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := newTestManager(t, 64) // 8 elements per block
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	w, err := m.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := w.AppendSlice(vals); err != nil {
		t.Fatalf("AppendSlice: %v", err)
	}
	if w.Count() != 100 {
		t.Errorf("Count = %d, want 100", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := m.OpenSequential("f")
	if err != nil {
		t.Fatalf("OpenSequential: %v", err)
	}
	defer r.Close()
	if r.Count() != 100 {
		t.Errorf("reader Count = %d, want 100", r.Count())
	}
	for i, want := range vals {
		v, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("Next #%d: ok=%v err=%v", i, ok, err)
		}
		if v != want {
			t.Fatalf("Next #%d = %d, want %d", i, v, want)
		}
	}
	if _, ok, err := r.Next(); ok || err != nil {
		t.Errorf("Next past EOF: ok=%v err=%v", ok, err)
	}
}

func TestWriterBlockAccounting(t *testing.T) {
	m := newTestManager(t, 64) // 8 elems/block
	w, err := m.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ { // 2 full blocks + 1 partial
		if err := w.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.SeqWrites != 3 {
		t.Errorf("SeqWrites = %d, want 3", st.SeqWrites)
	}
	if st.BytesWritten != 20*ElementSize {
		t.Errorf("BytesWritten = %d, want %d", st.BytesWritten, 20*ElementSize)
	}
}

func TestReaderBlockAccounting(t *testing.T) {
	m := newTestManager(t, 64)
	w, _ := m.Create("f")
	for i := 0; i < 20; i++ {
		w.Append(int64(i)) //nolint:errcheck
	}
	w.Close() //nolint:errcheck
	before := m.Stats()
	r, err := m.OpenSequential("f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		_, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	got := m.Stats().Sub(before)
	if got.SeqReads != 3 {
		t.Errorf("SeqReads = %d, want 3", got.SeqReads)
	}
}

func TestRandomReader(t *testing.T) {
	m := newTestManager(t, 64) // 8 per block
	w, _ := m.Create("f")
	for i := 0; i < 50; i++ {
		w.Append(int64(i * 10)) //nolint:errcheck
	}
	w.Close() //nolint:errcheck

	rr, err := m.OpenRandom("f")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if rr.Count() != 50 {
		t.Errorf("Count = %d, want 50", rr.Count())
	}
	if rr.Blocks() != 7 {
		t.Errorf("Blocks = %d, want 7", rr.Blocks())
	}
	before := m.Stats()
	// Last (partial) block has 2 elements.
	blk, err := rr.Block(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk) != 2 || blk[0] != 480 || blk[1] != 490 {
		t.Errorf("Block(6) = %v, want [480 490]", blk)
	}
	blk, err = rr.Block(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk) != 8 || blk[0] != 160 {
		t.Errorf("Block(2) = %v", blk)
	}
	got := m.Stats().Sub(before)
	if got.RandReads != 2 {
		t.Errorf("RandReads = %d, want 2", got.RandReads)
	}
	if _, err := rr.Block(7); err == nil {
		t.Error("Block(7): want out-of-range error")
	}
	if _, err := rr.Block(-1); err == nil {
		t.Error("Block(-1): want out-of-range error")
	}
}

func TestElementBlock(t *testing.T) {
	m := newTestManager(t, 64)
	w, _ := m.Create("f")
	for i := 0; i < 20; i++ {
		w.Append(int64(i)) //nolint:errcheck
	}
	w.Close() //nolint:errcheck
	rr, _ := m.OpenRandom("f")
	defer rr.Close()
	if got := rr.ElementBlock(0); got != 0 {
		t.Errorf("ElementBlock(0) = %d", got)
	}
	if got := rr.ElementBlock(7); got != 0 {
		t.Errorf("ElementBlock(7) = %d", got)
	}
	if got := rr.ElementBlock(8); got != 1 {
		t.Errorf("ElementBlock(8) = %d", got)
	}
}

func TestFaultInjection(t *testing.T) {
	m := newTestManager(t, 64)
	w, _ := m.Create("f")
	for i := 0; i < 20; i++ {
		w.Append(int64(i)) //nolint:errcheck
	}
	w.Close() //nolint:errcheck

	sentinel := errors.New("injected")
	m.SetFault(func(op Op, name string, block int64) error {
		if op == OpRandRead && block == 1 {
			return sentinel
		}
		return nil
	})
	rr, err := m.OpenRandom("f")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if _, err := rr.Block(0); err != nil {
		t.Fatalf("Block(0): %v", err)
	}
	if _, err := rr.Block(1); !errors.Is(err, sentinel) {
		t.Fatalf("Block(1) err = %v, want injected", err)
	}
	m.SetFault(nil)
	if _, err := rr.Block(1); err != nil {
		t.Fatalf("Block(1) after clearing fault: %v", err)
	}
}

func TestFaultOnOpenAndWrite(t *testing.T) {
	m := newTestManager(t, 64)
	sentinel := errors.New("boom")
	m.SetFault(func(op Op, name string, block int64) error {
		if op == OpOpen {
			return sentinel
		}
		return nil
	})
	if _, err := m.Create("f"); !errors.Is(err, sentinel) {
		t.Errorf("Create under open-fault: %v", err)
	}
	m.SetFault(func(op Op, name string, block int64) error {
		if op == OpSeqWrite {
			return sentinel
		}
		return nil
	})
	w, err := m.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	for i := 0; i < 20 && werr == nil; i++ {
		werr = w.Append(int64(i))
	}
	if !errors.Is(werr, sentinel) {
		t.Errorf("Append under write-fault: %v", werr)
	}
	w.Abort()
	if m.Exists("f") {
		t.Error("Abort should remove the file")
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{SeqReads: 5, SeqWrites: 3, RandReads: 2, BytesRead: 100, BytesWritten: 50, Opens: 1}
	b := Stats{SeqReads: 1, SeqWrites: 1, RandReads: 1, BytesRead: 10, BytesWritten: 5, Opens: 1}
	d := a.Sub(b)
	if d.SeqReads != 4 || d.SeqWrites != 2 || d.RandReads != 1 {
		t.Errorf("Sub = %+v", d)
	}
	s := b.Add(b)
	if s.SeqReads != 2 || s.Total() != 6 {
		t.Errorf("Add = %+v, Total = %d", s, s.Total())
	}
	if a.Total() != 10 || a.Reads() != 7 {
		t.Errorf("Total=%d Reads=%d", a.Total(), a.Reads())
	}
}

func TestSizeAndRemove(t *testing.T) {
	m := newTestManager(t, 64)
	w, _ := m.Create("f")
	w.Append(1) //nolint:errcheck
	w.Append(2) //nolint:errcheck
	w.Close()   //nolint:errcheck
	n, err := m.Size("f")
	if err != nil || n != 2 {
		t.Errorf("Size = %d, %v", n, err)
	}
	if err := m.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if m.Exists("f") {
		t.Error("file should be gone")
	}
	if err := m.Remove("f"); err == nil {
		t.Error("double remove: want error")
	}
	if _, err := m.Size("f"); err == nil {
		t.Error("Size of missing file: want error")
	}
}

func TestResetStats(t *testing.T) {
	m := newTestManager(t, 64)
	w, _ := m.Create("f")
	w.Append(1) //nolint:errcheck
	w.Close()   //nolint:errcheck
	if m.Stats().Total() == 0 {
		t.Fatal("expected some I/O")
	}
	m.ResetStats()
	if got := m.Stats(); got.Total() != 0 || got.Opens != 0 {
		t.Errorf("after reset: %+v", got)
	}
}

// Property: any slice of int64 survives an encode/write/read round trip in
// order, regardless of block alignment.
func TestQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	idx := 0
	f := func(vals []int64) bool {
		idx++
		m, err := NewManager(dir, 64)
		if err != nil {
			return false
		}
		name := fmt.Sprintf("q-%d", idx)
		w, err := m.Create(name)
		if err != nil {
			return false
		}
		if err := w.AppendSlice(vals); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := m.OpenSequential(name)
		if err != nil {
			return false
		}
		defer r.Close()
		for _, want := range vals {
			v, ok, err := r.Next()
			if err != nil || !ok || v != want {
				return false
			}
		}
		_, ok, _ := r.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpSeqRead: "seq-read", OpSeqWrite: "seq-write", OpRandRead: "rand-read", OpOpen: "open", Op(99): "op(99)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestSeekElement(t *testing.T) {
	m := newTestManager(t, 64) // 8 per block
	w, _ := m.Create("f")
	for i := 0; i < 50; i++ {
		w.Append(int64(i * 2)) //nolint:errcheck
	}
	w.Close() //nolint:errcheck
	r, err := m.OpenSequential("f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, start := range []int64{0, 7, 8, 25, 49} {
		if err := r.SeekElement(start); err != nil {
			t.Fatalf("SeekElement(%d): %v", start, err)
		}
		v, ok, err := r.Next()
		if err != nil || !ok || v != start*2 {
			t.Fatalf("after seek %d: Next = %d,%v,%v", start, v, ok, err)
		}
	}
	// Seek to EOF yields no elements.
	if err := r.SeekElement(50); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Next(); ok {
		t.Error("Next after EOF seek should be exhausted")
	}
	if err := r.SeekElement(51); err == nil {
		t.Error("seek past EOF: want error")
	}
	if err := r.SeekElement(-1); err == nil {
		t.Error("negative seek: want error")
	}
}
