package disk

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is the terminal error every operation returns after a
// CrashBackend's armed crash point fires: the simulated process is dead and
// all I/O freezes until Restart.
var ErrCrashed = errors.New("disk: simulated crash")

// CrashBackend is a deterministic crash-simulation backend: an in-memory
// store that models the volatile/durable split of a real device with a
// write-back cache.
//
// Every mutating operation — Create, each WriteHandle.Write (one per block
// at Manager granularity), Remove, WriteMeta, Sync — increments an
// operation counter. SetCrashPoint arms a crash at an absolute operation
// index: when the counter reaches it, that operation fails with ErrCrashed
// (a torn write may first apply a partial prefix), and every subsequent
// operation — reads included — fails with ErrCrashed too, as if the
// process died mid-commit.
//
// State lives in two images: the volatile image every operation reads and
// writes, and the durable image, which Sync overwrites with a snapshot of
// the volatile one. Restart simulates the power cycle: with keepUnsynced
// false the volatile image is discarded and the durable image becomes the
// new state (the "nothing unsynced survived" outcome); with keepUnsynced
// true the volatile image survives as-is, including the torn tail of an
// in-flight write (the "everything in the write cache landed" outcome).
// RestartSubset persists an arbitrary seeded per-file subset of the
// unsynced writes — the adversarial reordering outcome. A commit protocol
// is crash-consistent only if recovery succeeds under all of them.
//
// WriteMeta is atomic with respect to crashes, mirroring the file backend's
// fsync-temp-then-rename commit: the crash either happens before the
// replacement (old content everywhere) or after it (new content in the
// volatile image, old in the durable one until the next Sync) — never a
// torn manifest.
//
// Because the workload above it is deterministic, the operation sequence is
// too, so a harness can count total operations with one uncrashed run and
// then replay the workload crashing at every index. The same run sequence
// is reproduced no matter how often queries (reads) interleave: reads never
// advance the counter.
type CrashBackend struct {
	mu      sync.Mutex
	cur     map[string][]byte // volatile image
	dur     map[string][]byte // durable image (last Sync)
	ops     int64             // mutating operations so far
	crashAt int64             // absolute op index to crash on; <0 disarmed
	tear    bool              // apply a partial prefix when the crashing op is a write
	crashed bool
}

// NewCrashBackend returns an empty crash-simulation backend with no crash
// point armed.
func NewCrashBackend() *CrashBackend {
	return &CrashBackend{
		cur:     make(map[string][]byte),
		dur:     make(map[string][]byte),
		crashAt: -1,
	}
}

// Kind returns "crash".
func (b *CrashBackend) Kind() string { return "crash" }

// Root returns "" — there is no filesystem root.
func (b *CrashBackend) Root() string { return "" }

// SetCrashPoint arms a crash at the given absolute mutating-operation index
// (the op that would make Ops() == n+1 fails). tear makes the crashing
// operation, when it is a data write, apply a partial, element-misaligned
// prefix before dying — a torn block. n < 0 disarms.
func (b *CrashBackend) SetCrashPoint(n int64, tear bool) {
	b.mu.Lock()
	b.crashAt = n
	b.tear = tear
	b.mu.Unlock()
}

// Ops returns the number of mutating operations performed so far.
func (b *CrashBackend) Ops() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ops
}

// Crashed reports whether the armed crash point has fired.
func (b *CrashBackend) Crashed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.crashed
}

// Restart simulates the power cycle after a crash (or a clean process
// restart): the crash point is disarmed and I/O unfreezes. With
// keepUnsynced false the volatile image is replaced by the durable one —
// every write since the last Sync is lost. With keepUnsynced true the
// volatile image survives, torn tail included, and is adopted as durable.
func (b *CrashBackend) Restart(keepUnsynced bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.crashed = false
	b.crashAt = -1
	if keepUnsynced {
		b.dur = snapshot(b.cur)
		return
	}
	b.cur = snapshot(b.dur)
}

// RestartSubset is the adversarial restart: every file whose volatile state
// differs from its durable state independently keeps or loses its unsynced
// version, chosen by the seeded coin. This models a device persisting
// cached writes in arbitrary order — the failure mode that exposes
// write-vs-commit reorderings a global all-or-nothing restart cannot (e.g.
// a manifest that became durable before the data it references). Each file
// still lands whole-or-old: sub-file interleavings are covered by the torn
// tail of the crashing write.
func (b *CrashBackend) RestartSubset(seed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.crashed = false
	b.crashAt = -1
	names := make(map[string]struct{}, len(b.cur)+len(b.dur))
	for n := range b.cur {
		names[n] = struct{}{}
	}
	for n := range b.dur {
		names[n] = struct{}{}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	rng := rand.New(rand.NewSource(seed))
	next := make(map[string][]byte, len(ordered))
	for _, n := range ordered {
		c, inC := b.cur[n]
		d, inD := b.dur[n]
		if inC && inD && bytes.Equal(c, d) {
			next[n] = append([]byte(nil), c...)
			continue
		}
		if rng.Intn(2) == 0 {
			if inC {
				next[n] = append([]byte(nil), c...)
			}
		} else if inD {
			next[n] = append([]byte(nil), d...)
		}
	}
	b.cur = next
	b.dur = snapshot(next)
}

// Clone returns an independent deep copy of the backend — same images, op
// counter and crash state — so one crashed replay can be restarted and
// verified under several recovery modes.
func (b *CrashBackend) Clone() *CrashBackend {
	b.mu.Lock()
	defer b.mu.Unlock()
	return &CrashBackend{
		cur:     snapshot(b.cur),
		dur:     snapshot(b.dur),
		ops:     b.ops,
		crashAt: b.crashAt,
		tear:    b.tear,
		crashed: b.crashed,
	}
}

func snapshot(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// step gates one mutating operation: it fails if the backend is crashed,
// fires the armed crash point when the counter reaches it, and otherwise
// advances the counter. It returns (tear, err); tear is true when this very
// operation crashed and should apply a torn prefix first. Caller holds b.mu.
func (b *CrashBackend) step() (bool, error) {
	if b.crashed {
		return false, ErrCrashed
	}
	if b.crashAt >= 0 && b.ops == b.crashAt {
		b.crashed = true
		return b.tear, ErrCrashed
	}
	b.ops++
	return false, nil
}

// frozen reports (under b.mu) whether reads should fail: after the crash
// the process is gone, so even reads error until Restart.
func (b *CrashBackend) frozen() error {
	if b.crashed {
		return ErrCrashed
	}
	return nil
}

// Open returns a random-access read handle for the named file.
func (b *CrashBackend) Open(name string) (ReadHandle, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.frozen(); err != nil {
		return nil, err
	}
	if _, ok := b.cur[name]; !ok {
		return nil, fmt.Errorf("crash: open %s: file does not exist", name)
	}
	return &crashReadHandle{b: b, name: name}, nil
}

// Create truncates (or creates) the named file for appending.
func (b *CrashBackend) Create(name string) (WriteHandle, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.step(); err != nil {
		return nil, err
	}
	b.cur[name] = []byte{}
	return &crashWriteHandle{b: b, name: name}, nil
}

// Remove deletes the named file from the volatile image; the durable image
// forgets it at the next Sync.
func (b *CrashBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.step(); err != nil {
		return err
	}
	if _, ok := b.cur[name]; !ok {
		return fmt.Errorf("crash: remove %s: file does not exist", name)
	}
	delete(b.cur, name)
	return nil
}

// Size returns the byte length of the named file.
func (b *CrashBackend) Size(name string) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.frozen(); err != nil {
		return 0, err
	}
	data, ok := b.cur[name]
	if !ok {
		return 0, fmt.Errorf("crash: stat %s: file does not exist", name)
	}
	return int64(len(data)), nil
}

// Exists reports whether the named file exists (in the volatile image).
func (b *CrashBackend) Exists(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.cur[name]
	return ok
}

// WriteMeta atomically replaces a metadata file: the crash point either
// fires before the replacement or the replacement lands whole.
func (b *CrashBackend) WriteMeta(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.step(); err != nil {
		return err
	}
	b.cur[name] = append([]byte(nil), data...)
	return nil
}

// ReadMeta reads a metadata file.
func (b *CrashBackend) ReadMeta(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.frozen(); err != nil {
		return nil, err
	}
	data, ok := b.cur[name]
	if !ok {
		return nil, fmt.Errorf("crash: read meta %s: file does not exist", name)
	}
	return append([]byte(nil), data...), nil
}

// Sync snapshots the volatile image into the durable one.
func (b *CrashBackend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.step(); err != nil {
		return err
	}
	b.dur = snapshot(b.cur)
	return nil
}

// List returns the names of all files with the given prefix, sorted.
func (b *CrashBackend) List(prefix string) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.frozen(); err != nil {
		return nil, err
	}
	var out []string
	for name := range b.cur {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

type crashReadHandle struct {
	b      *CrashBackend
	name   string
	closed bool
}

func (h *crashReadHandle) ReadAt(p []byte, off int64) (int, error) {
	h.b.mu.Lock()
	defer h.b.mu.Unlock()
	if err := h.b.frozen(); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, fmt.Errorf("crash: read from closed handle %s", h.name)
	}
	data, ok := h.b.cur[h.name]
	if !ok {
		return 0, fmt.Errorf("crash: read %s: file does not exist", h.name)
	}
	if off < 0 {
		return 0, fmt.Errorf("crash: negative offset %d", off)
	}
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *crashReadHandle) Size() (int64, error) {
	return h.b.Size(h.name)
}

func (h *crashReadHandle) Close() error {
	h.closed = true
	return nil
}

type crashWriteHandle struct {
	b      *CrashBackend
	name   string
	closed bool
}

func (h *crashWriteHandle) Write(p []byte) (int, error) {
	h.b.mu.Lock()
	defer h.b.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("crash: write to closed handle %s", h.name)
	}
	tear, err := h.b.step()
	if err != nil {
		if tear && len(p) > 0 {
			// Torn block: a misaligned prefix lands before the power dies.
			n := len(p) / 2
			if n%ElementSize == 0 && n+3 <= len(p) {
				n += 3
			}
			h.b.cur[h.name] = append(h.b.cur[h.name], p[:n]...)
		}
		return 0, err
	}
	h.b.cur[h.name] = append(h.b.cur[h.name], p...)
	return len(p), nil
}

func (h *crashWriteHandle) Close() error {
	h.closed = true
	return nil
}

func (h *crashWriteHandle) Abort() {
	h.b.mu.Lock()
	defer h.b.mu.Unlock()
	h.closed = true
	if h.b.crashed {
		return // frozen: the file stays as the crash left it
	}
	delete(h.b.cur, h.name)
}
