package query

import (
	"fmt"
	"path"
	"strings"
)

// Stream names form a '.'-separated hierarchy (names cannot contain '/',
// see hsq.ValidStreamName), so the query layer's patterns are segment
// globs: "api.*.latency" selects every region's latency stream,
// "api.**" selects the whole api subtree.
//
// Pattern language, per '.'-separated segment:
//
//   - a literal segment matches itself;
//   - '*', '?' and '[...]' match within one segment (path.Match syntax,
//     which never crosses the separator because segments are matched
//     individually);
//   - a final "**" segment matches any number of trailing segments,
//     including none.
//
// A pattern without "**" only matches names with exactly as many segments
// as the pattern.

// ValidatePattern checks the glob's syntax so plans fail at parse time,
// not per candidate name at evaluation time.
func ValidatePattern(pattern string) error {
	if pattern == "" {
		return fmt.Errorf("query: empty match pattern")
	}
	segs := strings.Split(pattern, ".")
	for i, seg := range segs {
		if seg == "**" {
			if i != len(segs)-1 {
				return fmt.Errorf("query: pattern %q: \"**\" is only valid as the final segment", pattern)
			}
			continue
		}
		if seg == "" {
			return fmt.Errorf("query: pattern %q has an empty segment", pattern)
		}
		if _, err := path.Match(seg, "x"); err != nil {
			return fmt.Errorf("query: pattern %q segment %q: %w", pattern, seg, err)
		}
	}
	return nil
}

// MatchStream reports whether the stream name matches the segment glob.
func MatchStream(pattern, name string) (bool, error) {
	psegs := strings.Split(pattern, ".")
	nsegs := strings.Split(name, ".")
	deep := psegs[len(psegs)-1] == "**"
	if deep {
		psegs = psegs[:len(psegs)-1]
		if len(nsegs) < len(psegs) {
			return false, nil
		}
	} else if len(nsegs) != len(psegs) {
		return false, nil
	}
	for i, pseg := range psegs {
		ok, err := path.Match(pseg, nsegs[i])
		if err != nil {
			return false, fmt.Errorf("query: pattern %q: %w", pattern, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// ExpandStreams resolves the plan's member set against a directory
// snapshot: every explicit stream plus every directory name matching the
// glob, deduplicated, in sorted order (names must be sorted on input,
// which Source.StreamNames guarantees; explicit streams are merged in).
func ExpandStreams(p *Plan, directory []string) ([]string, error) {
	seen := make(map[string]bool, len(p.Streams))
	var out []string
	if p.Match != "" {
		for _, name := range directory {
			ok, err := MatchStream(p.Match, name)
			if err != nil {
				return nil, err
			}
			if ok && !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	for _, name := range p.Streams {
		if !seen[name] {
			seen[name] = true
			out = insertSorted(out, name)
		}
	}
	return out, nil
}

// insertSorted inserts name into the sorted slice, keeping it sorted.
func insertSorted(names []string, name string) []string {
	i := 0
	for i < len(names) && names[i] < name {
		i++
	}
	names = append(names, "")
	copy(names[i+1:], names[i:])
	names[i] = name
	return names
}
