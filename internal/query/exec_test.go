package query

import (
	"errors"
	"math/rand"
	"reflect"
	"slices"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

const tEps1, tEps2 = 0.05, 0.025

// synthSummary builds a small deterministic shard summary; the seed keys
// the content so distinct streams carry distinct data.
func synthSummary(seed int64, parts, pieces int) *core.ShardSummary {
	rng := rand.New(rand.NewSource(seed))
	s := &core.ShardSummary{Eps1: tEps1, Eps2: tEps2}
	sorted := func(n int) []int64 {
		vs := make([]int64, n)
		for i := range vs {
			vs[i] = rng.Int63n(10_000)
		}
		slices.Sort(vs)
		return vs
	}
	for i := 0; i < parts; i++ {
		count := int64(100 + rng.Intn(1000))
		s.Parts = append(s.Parts, core.PartSummary{Count: count, Values: sorted(5 + rng.Intn(20))})
		s.N += count
	}
	for i := 0; i < pieces; i++ {
		m := int64(1 + rng.Intn(500))
		s.Pieces = append(s.Pieces, core.StreamPiece{M: m, SS: sorted(1 + rng.Intn(10))})
		s.N += m
	}
	return s
}

// fakeSource serves canned summaries and counts fetches.
type fakeSource struct {
	names []string
	fetch func(name string, sc Scope) (*core.ShardSummary, error)

	mu    sync.Mutex
	calls int
}

func (f *fakeSource) StreamNames() []string { return f.names }

func (f *fakeSource) ScopedSummary(name string, sc Scope) (*core.ShardSummary, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return f.fetch(name, sc)
}

// TestExecMergedMatchesDirect pins Exec's plumbing: a merged query answers
// exactly what MergeShardSummaries + QuickQuery produce over the same
// member summaries, and the envelope echoes the merged summary's composed
// error bound.
func TestExecMergedMatchesDirect(t *testing.T) {
	sums := map[string]*core.ShardSummary{
		"a.x": synthSummary(1, 3, 1),
		"a.y": synthSummary(2, 0, 2),
		"b.x": synthSummary(3, 2, 0),
	}
	src := &fakeSource{
		names: []string{"a.x", "a.y", "b.x"},
		fetch: func(name string, sc Scope) (*core.ShardSummary, error) { return sums[name], nil },
	}
	phis := []float64{0.25, 0.5, 0.9}
	res, err := Exec(src, &Plan{Match: "**", Phis: phis})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Streams, src.names) {
		t.Fatalf("members = %v, want %v", res.Streams, src.names)
	}
	if len(res.Groups) != 1 || res.Groups[0].Key != "" {
		t.Fatalf("groups = %+v, want one unkeyed group", res.Groups)
	}
	wr := res.Groups[0].Windows[0]

	merged, total, err := core.MergeShardSummaries(
		[]*core.ShardSummary{sums["a.x"], sums["a.y"], sums["b.x"]})
	if err != nil {
		t.Fatal(err)
	}
	if wr.N != total {
		t.Fatalf("N = %d, want %d", wr.N, total)
	}
	if wr.Epsilon != merged.Epsilon() || wr.RankError != merged.QuickRankError() {
		t.Fatalf("envelope (ε=%g, re=%d), want (ε=%g, re=%d)",
			wr.Epsilon, wr.RankError, merged.Epsilon(), merged.QuickRankError())
	}
	for i, phi := range phis {
		r := max(int64(phi*float64(total)), 1)
		want, err := merged.QuickQuery(r)
		if err != nil {
			t.Fatal(err)
		}
		if wr.Values[i] != want {
			t.Fatalf("phi %g: got %d, want %d", phi, wr.Values[i], want)
		}
	}
}

// TestExecGroupByWindows covers group partitioning, the per-(member,
// window) fetch fan-out, and the scope echo in each window result.
func TestExecGroupByWindows(t *testing.T) {
	src := &fakeSource{
		names: []string{"a.x", "a.y", "b.x"},
		fetch: func(name string, sc Scope) (*core.ShardSummary, error) {
			if sc.Back > 0 {
				// Data ran out behind the newest window.
				return &core.ShardSummary{Eps1: tEps1, Eps2: tEps2}, nil
			}
			return synthSummary(int64(len(name)), 1, 1), nil
		},
	}
	plan := &Plan{
		Match:   "**",
		GroupBy: 1,
		Window:  &WindowSpec{Steps: 2, Slide: 1, Count: 3},
		Phis:    []float64{0.5},
	}
	res, err := Exec(src, plan)
	if err != nil {
		t.Fatal(err)
	}
	if src.calls != 3*3 {
		t.Fatalf("fetches = %d, want one per (member, window) = 9", src.calls)
	}
	if len(res.Groups) != 2 || res.Groups[0].Key != "a" || res.Groups[1].Key != "b" {
		t.Fatalf("group keys = %+v, want [a b]", res.Groups)
	}
	if !reflect.DeepEqual(res.Groups[0].Streams, []string{"a.x", "a.y"}) ||
		!reflect.DeepEqual(res.Groups[1].Streams, []string{"b.x"}) {
		t.Fatalf("group members wrong: %+v", res.Groups)
	}
	for _, g := range res.Groups {
		if len(g.Windows) != 3 {
			t.Fatalf("group %q has %d windows, want 3", g.Key, len(g.Windows))
		}
		for i, wr := range g.Windows {
			if wr.Steps != 2 || wr.Back != i {
				t.Fatalf("group %q window %d scope = (steps %d, back %d)", g.Key, i, wr.Steps, wr.Back)
			}
			if i == 0 && (wr.N == 0 || len(wr.Values) != 1) {
				t.Fatalf("group %q newest window empty: %+v", g.Key, wr)
			}
			// Empty scopes report N == 0 with no values — not an error.
			if i > 0 && (wr.N != 0 || wr.Values != nil) {
				t.Fatalf("group %q window %d should be empty: %+v", g.Key, i, wr)
			}
		}
	}
}

// TestExecErrors pins error propagation: fetch failures name the stream
// and unwrap; group-key misfits fail the whole evaluation.
func TestExecErrors(t *testing.T) {
	sentinel := errors.New("backing store exploded")
	src := &fakeSource{
		names: []string{"a.x", "bad"},
		fetch: func(name string, sc Scope) (*core.ShardSummary, error) {
			if name == "bad" {
				return nil, sentinel
			}
			return synthSummary(1, 1, 0), nil
		},
	}
	_, err := Exec(src, &Plan{Match: "**", Phis: []float64{0.5}})
	if !errors.Is(err, sentinel) {
		t.Fatalf("fetch failure not unwrapped: %v", err)
	}
	if !strings.Contains(err.Error(), `stream "bad"`) {
		t.Fatalf("fetch failure does not name the stream: %v", err)
	}

	// GroupBy segment beyond a member's name is an evaluation error.
	src2 := &fakeSource{
		names: []string{"a.x", "solo"},
		fetch: func(name string, sc Scope) (*core.ShardSummary, error) {
			return synthSummary(1, 1, 0), nil
		},
	}
	if _, err := Exec(src2, &Plan{Match: "**", GroupBy: 2, Phis: []float64{0.5}}); err == nil {
		t.Fatal("group_by out of range accepted")
	}

	// Exec re-validates, so a hand-built invalid plan cannot slip through.
	if _, err := Exec(src2, &Plan{Phis: []float64{0.5}}); err == nil {
		t.Fatal("memberless plan accepted")
	}
}

// TestExecNilSummaryIsEmpty mirrors the cluster source: a nil summary is
// an empty contribution, not an error.
func TestExecNilSummaryIsEmpty(t *testing.T) {
	full := synthSummary(9, 2, 1)
	src := &fakeSource{
		names: []string{"gone", "here"},
		fetch: func(name string, sc Scope) (*core.ShardSummary, error) {
			if name == "gone" {
				return nil, nil
			}
			return full, nil
		},
	}
	res, err := Exec(src, &Plan{Match: "**", Phis: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Windows[0].N; got != full.N {
		t.Fatalf("N = %d, want %d (nil member contributes nothing)", got, full.N)
	}
}
