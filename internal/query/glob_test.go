package query

import (
	"reflect"
	"testing"
)

func TestValidatePattern(t *testing.T) {
	valid := []string{"a", "a.b", "*", "a.*.c", "a.**", "**", "?x.b", "[ab].c"}
	for _, p := range valid {
		if err := ValidatePattern(p); err != nil {
			t.Errorf("ValidatePattern(%q) = %v, want nil", p, err)
		}
	}
	invalid := []string{"", "a..b", ".a", "a.", "**.a", "a.**.b", "a.["}
	for _, p := range invalid {
		if err := ValidatePattern(p); err == nil {
			t.Errorf("ValidatePattern(%q) accepted", p)
		}
	}
}

func TestMatchStream(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"api.eu", "api.eu", true},
		{"api.eu", "api.us", false},
		// '*' spans one segment only; segment counts must agree.
		{"api.*", "api.eu", true},
		{"api.*", "api.eu.lat", false},
		{"api.*", "api", false},
		{"*.lat", "api.lat", true},
		{"*.lat", "api.eu.lat", false},
		// A trailing '**' matches any number of further segments, even none.
		{"api.**", "api", true},
		{"api.**", "api.eu", true},
		{"api.**", "api.eu.lat", true},
		{"api.**", "ap", false},
		{"**", "anything.at.all", true},
		// path.Match classes stay inside one segment.
		{"api.[eu][uw]", "api.eu", true},
		{"api.[eu][uw]", "api.xx", false},
		{"api.e?", "api.eu", true},
	}
	for _, c := range cases {
		got, err := MatchStream(c.pattern, c.name)
		if err != nil {
			t.Errorf("MatchStream(%q, %q): %v", c.pattern, c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("MatchStream(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
	// A malformed class errors per candidate; ValidatePattern catches it at
	// parse time, MatchStream reports it too for direct callers.
	if _, err := MatchStream("a.[", "a.x"); err == nil {
		t.Error("malformed class matched without error")
	}
}

func TestExpandStreams(t *testing.T) {
	directory := []string{"api.eu.lat", "api.us.lat", "db.eu.lat", "web.eu.err"}
	cases := []struct {
		name string
		plan Plan
		want []string
	}{
		{"glob only", Plan{Match: "api.*.lat"}, []string{"api.eu.lat", "api.us.lat"}},
		{"explicit only", Plan{Streams: []string{"web.eu.err", "db.eu.lat"}},
			[]string{"db.eu.lat", "web.eu.err"}},
		// Explicit streams merge into the glob's matches, deduplicated and
		// sorted; they need not match the pattern or exist in the directory.
		{"explicit plus glob", Plan{Streams: []string{"api.eu.lat", "zzz.new"}, Match: "api.**"},
			[]string{"api.eu.lat", "api.us.lat", "zzz.new"}},
		{"explicit sorts in", Plan{Streams: []string{"db.eu.lat", "aaa"}, Match: "api.*.lat"},
			[]string{"aaa", "api.eu.lat", "api.us.lat", "db.eu.lat"}},
		{"duplicate explicit", Plan{Streams: []string{"x", "x", "x"}}, []string{"x"}},
		{"no matches", Plan{Match: "nope.*"}, nil},
	}
	for _, c := range cases {
		got, err := ExpandStreams(&c.plan, directory)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	if _, err := ExpandStreams(&Plan{Match: "a.["}, []string{"a.x"}); err == nil {
		t.Error("malformed pattern expanded without error")
	}
}
