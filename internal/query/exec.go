package query

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Source is what a plan evaluates against: a stream directory plus
// per-stream scoped summaries. The DB implements it locally (hydrated
// streams answer from their live engine, cold streams from their sealed
// summary sidecar — never hydrating); hsqd's cluster mode implements it
// with the SummaryReq fan-out for streams other shards own.
type Source interface {
	// StreamNames returns a sorted point-in-time snapshot of the stream
	// directory, used to expand glob patterns.
	StreamNames() []string
	// ScopedSummary returns the stream's shard summary restricted to the
	// scope. An unknown stream is an error; an existing stream with no
	// data in scope returns an N == 0 summary.
	ScopedSummary(name string, sc Scope) (*core.ShardSummary, error)
}

// Result is the evaluation of one plan: the member set, and per group a
// series of windows each carrying the merged quantile envelope.
type Result struct {
	// Streams is the full member set the plan selected, sorted.
	Streams []string `json:"streams"`
	// Phis echoes the plan's quantile targets; every window's Values
	// aligns with it.
	Phis []float64 `json:"phis"`
	// Groups is sorted by key ("" for the single merged group).
	Groups []GroupResult `json:"groups"`
}

// GroupResult is one group-by bucket: its member streams and the windows
// evaluated over their merged summaries.
type GroupResult struct {
	// Key is the grouping name segment; empty without group-by.
	Key string `json:"key,omitempty"`
	// Streams is the group's member set, sorted.
	Streams []string `json:"streams"`
	// Windows is the scope series, newest window first (a single entry
	// for an unwindowed plan).
	Windows []WindowResult `json:"windows"`
}

// WindowResult is the merged quantile envelope for one group under one
// scope. Values[i] answers Phis[i] by a quick query over the merged
// summary; the answer's rank error is at most RankError — the composed
// ⌈1.5·ε·N⌉ bound, identical to a single-stream quick answer because the
// summary's rank bands are merge-invariant.
type WindowResult struct {
	// Steps/Back/AsOfStep echo the scope (all zero for full history).
	Steps    int `json:"steps,omitempty"`
	Back     int `json:"back,omitempty"`
	AsOfStep int `json:"as_of_step,omitempty"`
	// N is the merged element count in scope. When 0 the group has no
	// data in this scope and Values is absent.
	N int64 `json:"n"`
	// Epsilon is the composed error parameter; RankError = ⌈1.5·ε·N⌉.
	Epsilon   float64 `json:"epsilon,omitempty"`
	RankError int64   `json:"rank_error,omitempty"`
	Values    []int64 `json:"values,omitempty"`
}

// Exec evaluates the plan against the source. Construction is lazy — a
// Plan touches no stream until here — and evaluation pulls exactly one
// scoped summary per (member, window) pair, fetched concurrently, then
// merges and answers in memory. No raw data moves: the only per-stream
// cost is its summary.
func Exec(src Source, p *Plan) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	members, err := ExpandStreams(p, src.StreamNames())
	if err != nil {
		return nil, err
	}
	groups := make(map[string][]string)
	for _, name := range members {
		key, err := p.GroupKey(name)
		if err != nil {
			return nil, err
		}
		groups[key] = append(groups[key], name)
	}
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	scopes := p.Scopes()

	// One concurrent fetch per (member, scope): summaries are independent
	// snapshots, so there is nothing to order.
	type fetch struct {
		name string
		sc   Scope
		sum  *core.ShardSummary
		err  error
	}
	var fetches []*fetch
	byPair := make(map[string]map[Scope]*fetch, len(members))
	for _, name := range members {
		byPair[name] = make(map[Scope]*fetch, len(scopes))
		for _, sc := range scopes {
			f := &fetch{name: name, sc: sc}
			byPair[name][sc] = f
			fetches = append(fetches, f)
		}
	}
	var wg sync.WaitGroup
	for _, f := range fetches {
		wg.Add(1)
		go func(f *fetch) {
			defer wg.Done()
			f.sum, f.err = src.ScopedSummary(f.name, f.sc)
		}(f)
	}
	wg.Wait()
	for _, f := range fetches {
		if f.err != nil {
			return nil, fmt.Errorf("query: stream %q: %w", f.name, f.err)
		}
	}

	res := &Result{Streams: members, Phis: p.Phis}
	for _, key := range keys {
		gr := GroupResult{Key: key, Streams: groups[key]}
		for _, sc := range scopes {
			sums := make([]*core.ShardSummary, 0, len(gr.Streams))
			for _, name := range gr.Streams {
				sums = append(sums, byPair[name][sc].sum)
			}
			wr, err := answer(sums, sc, p.Phis)
			if err != nil {
				return nil, fmt.Errorf("query: group %q: %w", key, err)
			}
			gr.Windows = append(gr.Windows, wr)
		}
		res.Groups = append(res.Groups, gr)
	}
	return res, nil
}

// answer merges one group's scoped summaries and runs the quick quantile
// queries on the merged combined summary.
func answer(sums []*core.ShardSummary, sc Scope, phis []float64) (WindowResult, error) {
	wr := WindowResult{Steps: sc.Window, Back: sc.Back, AsOfStep: sc.AsOf}
	merged, total, err := core.MergeShardSummaries(sums)
	if err != nil {
		return wr, err
	}
	if merged == nil || total == 0 {
		return wr, nil
	}
	wr.N = total
	wr.Epsilon = merged.Epsilon()
	wr.RankError = merged.QuickRankError()
	wr.Values = make([]int64, len(phis))
	for i, phi := range phis {
		r := int64(phi * float64(total))
		if r < 1 {
			r = 1
		}
		v, err := merged.QuickQuery(r)
		if err != nil {
			return wr, err
		}
		wr.Values[i] = v
	}
	return wr, nil
}
