package query

import (
	"reflect"
	"strings"
	"testing"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan([]byte(`{
		"streams": ["api.eu.lat"],
		"match": "api.**",
		"group_by": 2,
		"window": {"steps": 3, "slide": 1, "count": 2},
		"as_of_step": 7,
		"phis": [0.5, 0.99]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{
		Streams:  []string{"api.eu.lat"},
		Match:    "api.**",
		GroupBy:  2,
		Window:   &WindowSpec{Steps: 3, Slide: 1, Count: 2},
		AsOfStep: 7,
		Phis:     []float64{0.5, 0.99},
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parsed plan\n got %+v\nwant %+v", p, want)
	}
}

func TestParsePlanRejects(t *testing.T) {
	cases := []struct {
		name, json, errFrag string
	}{
		{"unknown field", `{"streams":["a"],"phis":[0.5],"windows":3}`, "unknown field"},
		{"trailing data", `{"streams":["a"],"phis":[0.5]} {}`, "trailing data"},
		{"not json", `nope`, "parse plan"},
		{"no members", `{"phis":[0.5]}`, "selects no streams"},
		{"empty stream name", `{"streams":[""],"phis":[0.5]}`, "empty stream name"},
		{"bad pattern", `{"match":"a.[","phis":[0.5]}`, "a.["},
		{"negative group_by", `{"streams":["a"],"group_by":-1,"phis":[0.5]}`, "group_by"},
		{"negative as_of", `{"streams":["a"],"as_of_step":-2,"phis":[0.5]}`, "as_of_step"},
		{"zero window steps", `{"streams":["a"],"window":{"steps":0},"phis":[0.5]}`, "window steps"},
		{"negative slide", `{"streams":["a"],"window":{"steps":1,"slide":-1},"phis":[0.5]}`, "slide"},
		{"no phis", `{"streams":["a"]}`, "no phis"},
		{"phi zero", `{"streams":["a"],"phis":[0]}`, "phi"},
		{"phi one", `{"streams":["a"],"phis":[1]}`, "phi"},
		{"phi wild", `{"streams":["a"],"phis":[0.5,1.5]}`, "phi"},
	}
	for _, c := range cases {
		_, err := ParsePlan([]byte(c.json))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errFrag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errFrag)
		}
	}
}

func TestPlanScopes(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want []Scope
	}{
		{"full history", Plan{}, []Scope{{}}},
		{"as-of only", Plan{AsOfStep: 5}, []Scope{{AsOf: 5}}},
		// Slide defaults to Steps (tumbling), Count to 1.
		{"window defaults", Plan{Window: &WindowSpec{Steps: 4}},
			[]Scope{{Window: 4}}},
		{"tumbling series", Plan{Window: &WindowSpec{Steps: 2, Count: 3}},
			[]Scope{{Window: 2}, {Window: 2, Back: 2}, {Window: 2, Back: 4}}},
		{"sliding series", Plan{Window: &WindowSpec{Steps: 3, Slide: 1, Count: 3}},
			[]Scope{{Window: 3}, {Window: 3, Back: 1}, {Window: 3, Back: 2}}},
		{"windowed as-of", Plan{AsOfStep: 9, Window: &WindowSpec{Steps: 2, Slide: 2, Count: 2}},
			[]Scope{{Window: 2, AsOf: 9}, {Window: 2, Back: 2, AsOf: 9}}},
	}
	for _, c := range cases {
		if got := c.plan.Scopes(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	full := Scope{}
	if !full.IsFull() {
		t.Error("zero Scope is not IsFull")
	}
	for _, sc := range []Scope{{Window: 1}, {Back: 1}, {AsOf: 1}} {
		if sc.IsFull() {
			t.Errorf("scope %+v claims IsFull", sc)
		}
	}
}

func TestGroupKey(t *testing.T) {
	p := Plan{GroupBy: 2}
	key, err := p.GroupKey("api.eu.lat")
	if err != nil || key != "eu" {
		t.Fatalf("GroupKey = (%q, %v), want (eu, nil)", key, err)
	}
	if key, err := (&Plan{}).GroupKey("api.eu.lat"); err != nil || key != "" {
		t.Fatalf("no group-by: GroupKey = (%q, %v), want (\"\", nil)", key, err)
	}
	if _, err := (&Plan{GroupBy: 4}).GroupKey("api.eu"); err == nil {
		t.Fatal("out-of-range segment accepted")
	}
}

func TestMatchesStream(t *testing.T) {
	p := Plan{Streams: []string{"solo"}, Match: "api.*"}
	for name, want := range map[string]bool{
		"solo":       true,
		"api.eu":     true,
		"api.eu.lat": false,
		"web.eu":     false,
	} {
		if got := p.MatchesStream(name); got != want {
			t.Errorf("MatchesStream(%q) = %v, want %v", name, got, want)
		}
	}
	if (&Plan{Streams: []string{"a"}}).MatchesStream("b") {
		t.Error("empty pattern matched a non-listed stream")
	}
}
