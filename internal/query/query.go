// Package query is the composable query layer over the warehouse's
// mergeable summaries: a small set of operators — stream-set selection
// (explicit lists and '.'-hierarchy glob patterns), summary merge, group-by
// over name segments, time-step windows (tumbling and sliding) and AsOfStep
// time-travel — compiled into a Plan and evaluated lazily by Exec against a
// Source of per-stream scoped summaries.
//
// The layer never merges data, only summaries: every member stream
// contributes one core.ShardSummary restricted to the plan's step scope,
// the members of a group are merged with core.MergeShardSummaries, and
// quantiles are answered by quick queries on the merged summary. Because
// the per-item rank bands of the combined summary are merge-invariant, a
// merged or grouped answer carries the same composed guarantee as a
// single-stream quick answer: rank error at most ⌈1.5·ε·N⌉ where N is the
// union size (Combined.QuickRankError).
//
// Plans are plain JSON so the same object drives the db.Query() builder,
// hsqd's POST /query endpoint and the wire protocol's Subscribe frames.
package query

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Plan is one compiled query: which streams, how to group them, which step
// scopes to evaluate, and which quantiles to answer. The zero value is
// invalid; construct via JSON (ParsePlan) or a builder and check Validate.
type Plan struct {
	// Streams lists explicit member streams. A listed stream must exist at
	// evaluation time; it does not need to match Match.
	Streams []string `json:"streams,omitempty"`
	// Match is a glob over the '.'-separated stream-name hierarchy; every
	// matching stream in the source's directory joins the member set. See
	// MatchStream for the pattern language.
	Match string `json:"match,omitempty"`
	// GroupBy, when positive, partitions the member set by the 1-based
	// '.'-separated segment of the stream name (e.g. 2 groups
	// "api.eu.latency" and "api.us.latency" by region). Zero merges all
	// members into a single group.
	GroupBy int `json:"group_by,omitempty"`
	// Window, when set, evaluates one or more step windows per group
	// instead of the full history.
	Window *WindowSpec `json:"window,omitempty"`
	// AsOfStep, when positive, time-travels the evaluation: only data from
	// time steps ≤ AsOfStep is visible, and the live (unsealed) buffer is
	// excluded. Steps are counted per member stream.
	AsOfStep int `json:"as_of_step,omitempty"`
	// Phis are the quantile targets, each in (0, 1).
	Phis []float64 `json:"phis"`
}

// WindowSpec describes the window set of a plan: Count windows of Steps
// time steps each, the i-th ending i·Slide steps before the evaluation end
// (the newest sealed step, or AsOfStep). Slide = Steps is a tumbling
// window series; Slide < Steps overlaps (sliding). Windows are evaluated
// relative to each member stream's own step counter.
type WindowSpec struct {
	// Steps is the window length in time steps (> 0).
	Steps int `json:"steps"`
	// Slide is the step offset between consecutive windows; 0 defaults to
	// Steps (tumbling).
	Slide int `json:"slide,omitempty"`
	// Count is the number of windows, newest first; 0 defaults to 1.
	Count int `json:"count,omitempty"`
}

// Scope restricts a stream's summary to a step range. The zero Scope is
// the full history including the live buffer.
type Scope struct {
	// Window, when positive, keeps only a window of that many steps.
	Window int
	// Back shifts the evaluation end Back steps into the past. Any shift
	// excludes the live buffer — it belongs to the current step.
	Back int
	// AsOf, when positive, pins the evaluation end to that absolute step
	// and excludes the live buffer.
	AsOf int
}

// IsFull reports whether the scope is the unrestricted full history — the
// only scope answerable from a remote shard's full summary.
func (sc Scope) IsFull() bool { return sc == Scope{} }

// ParsePlan decodes and validates a JSON plan. Unknown fields are
// rejected so a typo'd operator fails loudly instead of silently widening
// the query.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("query: parse plan: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("query: parse plan: trailing data after plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks the plan's shape without touching any stream.
func (p *Plan) Validate() error {
	if len(p.Streams) == 0 && p.Match == "" {
		return fmt.Errorf("query: plan selects no streams (need streams or match)")
	}
	for _, name := range p.Streams {
		if name == "" {
			return fmt.Errorf("query: empty stream name in streams list")
		}
	}
	if p.Match != "" {
		if err := ValidatePattern(p.Match); err != nil {
			return err
		}
	}
	if p.GroupBy < 0 {
		return fmt.Errorf("query: group_by must be ≥ 0, got %d", p.GroupBy)
	}
	if p.AsOfStep < 0 {
		return fmt.Errorf("query: as_of_step must be ≥ 0, got %d", p.AsOfStep)
	}
	if w := p.Window; w != nil {
		if w.Steps <= 0 {
			return fmt.Errorf("query: window steps must be > 0, got %d", w.Steps)
		}
		if w.Slide < 0 || w.Count < 0 {
			return fmt.Errorf("query: window slide and count must be ≥ 0")
		}
	}
	if len(p.Phis) == 0 {
		return fmt.Errorf("query: plan has no phis")
	}
	for _, phi := range p.Phis {
		if !(phi > 0 && phi < 1) {
			return fmt.Errorf("query: phi must be in (0,1), got %g", phi)
		}
	}
	return nil
}

// Scopes expands the plan's window spec and as-of step into the concrete
// scope list every group is evaluated under, newest window first.
func (p *Plan) Scopes() []Scope {
	if p.Window == nil {
		return []Scope{{AsOf: p.AsOfStep}}
	}
	slide := p.Window.Slide
	if slide == 0 {
		slide = p.Window.Steps
	}
	count := p.Window.Count
	if count == 0 {
		count = 1
	}
	out := make([]Scope, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, Scope{Window: p.Window.Steps, Back: i * slide, AsOf: p.AsOfStep})
	}
	return out
}

// GroupKey returns the grouping key for a member stream name: the plan's
// 1-based name segment, or "" when the plan has no group-by. A name with
// too few segments is an evaluation error — the member set was selected by
// an explicit list or a pattern that doesn't constrain segment count.
func (p *Plan) GroupKey(name string) (string, error) {
	if p.GroupBy == 0 {
		return "", nil
	}
	segs := strings.Split(name, ".")
	if p.GroupBy > len(segs) {
		return "", fmt.Errorf("query: group_by segment %d out of range for stream %q (%d segments)",
			p.GroupBy, name, len(segs))
	}
	return segs[p.GroupBy-1], nil
}

// MatchesStream reports whether the plan's member selection covers the
// stream: listed explicitly, or matching the glob. Continuous queries use
// this to decide which EndStep events make a subscription dirty.
func (p *Plan) MatchesStream(name string) bool {
	for _, s := range p.Streams {
		if s == name {
			return true
		}
	}
	if p.Match == "" {
		return false
	}
	ok, err := MatchStream(p.Match, name)
	return err == nil && ok
}
