package workload

import (
	"math"
	"slices"
	"testing"
)

func TestByName(t *testing.T) {
	for _, name := range Names() {
		g, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("Name() = %q, want %q", g.Name(), name)
		}
	}
	if _, err := ByName("zipf", 1); err != nil {
		t.Errorf("zipf: %v", err)
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown workload: want error")
	}
}

func TestValuesWithinUniverse(t *testing.T) {
	for _, name := range append(Names(), "zipf") {
		g, err := ByName(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		limit := int64(1) << g.UniverseBits()
		for i := 0; i < 20000; i++ {
			v := g.Next()
			if v < 0 || v >= limit {
				t.Fatalf("%s: value %d outside [0,2^%d)", name, v, g.UniverseBits())
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		g1, _ := ByName(name, 42)
		g2, _ := ByName(name, 42)
		a := Fill(g1, 1000)
		b := Fill(g2, 1000)
		if !slices.Equal(a, b) {
			t.Errorf("%s: same seed, different streams", name)
		}
		g3, _ := ByName(name, 43)
		c := Fill(g3, 1000)
		if slices.Equal(a, c) {
			t.Errorf("%s: different seeds, identical streams", name)
		}
	}
}

func TestNormalShape(t *testing.T) {
	g := NewNormal(7)
	n := 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(g.Next())
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-1e8) > 3e5 {
		t.Errorf("mean = %g, want ~1e8", mean)
	}
	if math.Abs(sd-1e7) > 5e5 {
		t.Errorf("sd = %g, want ~1e7", sd)
	}
}

func TestUniformShape(t *testing.T) {
	g := NewUniform(11)
	n := 100000
	var mn, mx int64 = math.MaxInt64, 0
	var sum float64
	for i := 0; i < n; i++ {
		v := g.Next()
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += float64(v)
	}
	if mn < 1e8 || mx >= 1e9 {
		t.Errorf("range [%d,%d] outside [1e8,1e9)", mn, mx)
	}
	if mean := sum / float64(n); math.Abs(mean-5.5e8) > 1e7 {
		t.Errorf("mean = %g, want ~5.5e8", mean)
	}
}

func TestWikipediaHeavyTail(t *testing.T) {
	g := NewWikipedia(13)
	n := 100000
	vals := Fill(g, n)
	slices.Sort(vals)
	median := vals[n/2]
	p99 := vals[n*99/100]
	// Heavy tail: p99 well above median; median in a plausible page-size
	// range.
	if median < 1000 || median > 1e6 {
		t.Errorf("median page size %d implausible", median)
	}
	if p99 < 4*median {
		t.Errorf("tail too light: p99=%d median=%d", p99, median)
	}
	// Duplication: far fewer distinct values than samples (popular pages).
	distinct := 1
	for i := 1; i < n; i++ {
		if vals[i] != vals[i-1] {
			distinct++
		}
	}
	if distinct > n/2 {
		t.Errorf("only %d/%d duplicated — expected popularity skew", n-distinct, n)
	}
}

func TestNetTraceBurstiness(t *testing.T) {
	g := NewNetTrace(17)
	n := 100000
	vals := Fill(g, n)
	// Burstiness: immediate repeats should be common (flows).
	repeats := 0
	freq := map[int64]int{}
	for i, v := range vals {
		freq[v]++
		if i > 0 && vals[i-1] == v {
			repeats++
		}
	}
	if repeats < n/100 {
		t.Errorf("only %d immediate repeats; trace not bursty", repeats)
	}
	// Zipf popularity: the most frequent pair dominates.
	maxF := 0
	for _, f := range freq {
		if f > maxF {
			maxF = f
		}
	}
	if maxF < n/100 {
		t.Errorf("top pair frequency %d too low for Zipf skew", maxF)
	}
}

func TestFill(t *testing.T) {
	g := NewUniform(1)
	if got := Fill(g, 17); len(got) != 17 {
		t.Errorf("Fill length = %d", len(got))
	}
	if got := Fill(g, 0); len(got) != 0 {
		t.Errorf("Fill(0) length = %d", len(got))
	}
}

func TestZipfBits(t *testing.T) {
	g := NewZipf(1, 1.2, 1000)
	if lim := uint64(1) << g.UniverseBits(); lim < 1000 {
		t.Errorf("universe 2^%d too small for n=1000", g.UniverseBits())
	}
}
