// Package workload provides the deterministic dataset generators used by
// the evaluation, mirroring the paper's four datasets: two synthetic
// (Normal, Uniform Random) and two modelled on the real traces the authors
// used (Wikipedia page-view sizes, an ISP packet trace of source-destination
// pairs). The real traces are not redistributable; DESIGN.md §2 documents
// why the synthetic stand-ins preserve the behaviour the experiments
// exercise (value-distribution shape, duplication, burstiness).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator yields an endless stream of elements from a totally ordered
// universe (int64, non-negative).
type Generator interface {
	// Next returns the next element.
	Next() int64
	// Name identifies the workload in tables and file names.
	Name() string
	// UniverseBits returns the number of bits b such that all generated
	// values lie in [0, 2^b); used to size Q-Digest baselines.
	UniverseBits() uint
}

// Fill draws n elements from g.
func Fill(g Generator, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Names lists the available workloads in the paper's presentation order.
func Names() []string { return []string{"uniform", "normal", "wikipedia", "nettrace"} }

// ByName constructs the named workload with the given seed.
func ByName(name string, seed int64) (Generator, error) {
	switch name {
	case "uniform":
		return NewUniform(seed), nil
	case "normal":
		return NewNormal(seed), nil
	case "wikipedia":
		return NewWikipedia(seed), nil
	case "nettrace":
		return NewNetTrace(seed), nil
	case "zipf":
		return NewZipf(seed, 1.2, 1<<26), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
}

// Normal draws from N(mean=1e8, sd=1e7), truncated at zero — the paper's
// Normal dataset.
type Normal struct {
	rng          *rand.Rand
	mean, stddev float64
}

// NewNormal returns the paper's Normal generator.
func NewNormal(seed int64) *Normal {
	return &Normal{rng: rand.New(rand.NewSource(seed)), mean: 1e8, stddev: 1e7}
}

// Name implements Generator.
func (g *Normal) Name() string { return "normal" }

// UniverseBits implements Generator: values stay well under 2^28.
func (g *Normal) UniverseBits() uint { return 28 }

// Next implements Generator.
func (g *Normal) Next() int64 {
	for {
		v := g.rng.NormFloat64()*g.stddev + g.mean
		if v >= 0 && v < float64(int64(1)<<g.UniverseBits()) {
			return int64(v)
		}
	}
}

// Uniform draws uniformly from [1e8, 1e9) — the paper's Uniform Random
// dataset.
type Uniform struct {
	rng    *rand.Rand
	lo, hi int64
}

// NewUniform returns the paper's Uniform generator.
func NewUniform(seed int64) *Uniform {
	return &Uniform{rng: rand.New(rand.NewSource(seed)), lo: 1e8, hi: 1e9}
}

// Name implements Generator.
func (g *Uniform) Name() string { return "uniform" }

// UniverseBits implements Generator: 1e9 < 2^30.
func (g *Uniform) UniverseBits() uint { return 30 }

// Next implements Generator.
func (g *Uniform) Next() int64 { return g.lo + g.rng.Int63n(g.hi-g.lo) }

// Wikipedia models page sizes returned by page-view requests: a log-normal
// body (most pages are tens of KB) with a Pareto tail (a few very large
// pages), plus heavy duplication because popular pages are requested over
// and over. This matches the skew/duplication profile of the paper's
// Wikipedia page-counts dataset.
type Wikipedia struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	pageSize []int64 // size of each "page", indexed by popularity rank
}

// NewWikipedia returns the Wikipedia-like generator with one million
// distinct pages.
func NewWikipedia(seed int64) *Wikipedia {
	rng := rand.New(rand.NewSource(seed))
	const pages = 1 << 20
	sizes := make([]int64, pages)
	for i := range sizes {
		// Log-normal body: median ~30 KB, sigma 1.0.
		v := math.Exp(rng.NormFloat64()*1.0 + math.Log(30_000))
		if rng.Float64() < 0.01 {
			// Pareto tail: 1% of pages are large media, alpha=1.5.
			v = 1_000_000 * math.Pow(rng.Float64(), -1.0/1.5)
		}
		if v > 1e9 {
			v = 1e9
		}
		sizes[i] = int64(v)
	}
	return &Wikipedia{
		rng:      rng,
		zipf:     rand.NewZipf(rng, 1.1, 1, pages-1),
		pageSize: sizes,
	}
}

// Name implements Generator.
func (g *Wikipedia) Name() string { return "wikipedia" }

// UniverseBits implements Generator: sizes capped at 1e9 < 2^30.
func (g *Wikipedia) UniverseBits() uint { return 30 }

// Next implements Generator: a request for a Zipf-popular page yields that
// page's size.
func (g *Wikipedia) Next() int64 { return g.pageSize[g.zipf.Uint64()] }

// NetTrace models the OC48 peering-link trace: each element is a
// source-destination pair packed into one ordered 32-bit key
// (src<<16 | dst). Sources and destinations are Zipf-popular, and flows are
// bursty: with high probability the next element repeats one of the most
// recent pairs, mimicking packet trains within a flow.
type NetTrace struct {
	rng      *rand.Rand
	srcZipf  *rand.Zipf
	dstZipf  *rand.Zipf
	recent   []int64
	recentAt int
}

// NewNetTrace returns the network-trace generator.
func NewNetTrace(seed int64) *NetTrace {
	rng := rand.New(rand.NewSource(seed))
	return &NetTrace{
		rng:     rng,
		srcZipf: rand.NewZipf(rng, 1.2, 1, 1<<16-1),
		dstZipf: rand.NewZipf(rng, 1.1, 1, 1<<16-1),
		recent:  make([]int64, 0, 64),
	}
}

// Name implements Generator.
func (g *NetTrace) Name() string { return "nettrace" }

// UniverseBits implements Generator: packed pairs fit in 32 bits.
func (g *NetTrace) UniverseBits() uint { return 32 }

// Next implements Generator.
func (g *NetTrace) Next() int64 {
	// 60% of packets continue a recent flow.
	if len(g.recent) > 0 && g.rng.Float64() < 0.6 {
		return g.recent[g.rng.Intn(len(g.recent))]
	}
	v := int64(g.srcZipf.Uint64())<<16 | int64(g.dstZipf.Uint64())
	if len(g.recent) < cap(g.recent) {
		g.recent = append(g.recent, v)
	} else {
		g.recent[g.recentAt] = v
		g.recentAt = (g.recentAt + 1) % len(g.recent)
	}
	return v
}

// Zipf is a plain Zipf-distributed generator over [0, n), useful for
// adversarially skewed ablations.
type Zipf struct {
	zipf *rand.Zipf
	bits uint
	name string
}

// NewZipf returns a Zipf(s) generator over [0, n).
func NewZipf(seed int64, s float64, n uint64) *Zipf {
	rng := rand.New(rand.NewSource(seed))
	bits := uint(1)
	for uint64(1)<<bits < n {
		bits++
	}
	return &Zipf{zipf: rand.NewZipf(rng, s, 1, n-1), bits: bits, name: "zipf"}
}

// Name implements Generator.
func (g *Zipf) Name() string { return g.name }

// UniverseBits implements Generator.
func (g *Zipf) UniverseBits() uint { return g.bits }

// Next implements Generator.
func (g *Zipf) Next() int64 { return int64(g.zipf.Uint64()) }
