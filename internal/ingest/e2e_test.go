package ingest

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/hsqclient"
	"repro/internal/oracle"
)

// TestRemoteIngestEndToEnd is the full-subsystem correctness test over a
// real socket: several streams fed concurrently through one hsqclient,
// the server connection force-closed repeatedly mid-batch (exercising
// session replay), maintenance backpressure active throughout
// (MaxPendingSteps=1 unless HSQ_MAX_PENDING_STEPS overrides — the same
// knob the CI race matrix turns), and queries served during ingest. At a
// flush barrier mid-run and again at the end, every stream's quantiles
// must match the exact oracle within the ε bound — i.e. remote delivery
// lost nothing, duplicated nothing, and reordered nothing.
func TestRemoteIngestEndToEnd(t *testing.T) {
	const (
		eps      = 0.05
		nStreams = 3
		steps    = 6
		perStep  = 5000
	)
	maxPending := 1
	if v := os.Getenv("HSQ_MAX_PENDING_STEPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			maxPending = n
		}
	}

	db, err := hsq.Open(hsq.Options{
		Epsilon: eps, Kappa: 2, Backend: "mem", BlockSize: 4096,
		Maintenance: hsq.MaintenanceAsync, MaxPendingSteps: maxPending, MaintenanceWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck

	srv := New(Config{DB: db, Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)                          //nolint:errcheck
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	c, err := hsqclient.Dial(l.Addr().String(),
		hsqclient.WithBatchSize(512),
		hsqclient.WithReconnectBackoff(time.Millisecond, 20*time.Millisecond),
		hsqclient.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	// Deterministic per-stream data, recorded for the oracles.
	names := make([]string, nStreams)
	data := make([][]int64, nStreams)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		vs := make([]int64, steps*perStep)
		for j := range vs {
			vs[j] = int64(i*10_000_000) + rng.Int63n(1_000_000)
		}
		data[i] = vs
	}

	// Concurrent readers: quantiles must keep being served (within ε of
	// some observed prefix — checked exactly at the barriers below; here
	// we assert they never fail).
	readersDone := make(chan struct{})
	var readerErr atomic.Value
	var readers sync.WaitGroup
	for i := 0; i < nStreams; i++ {
		readers.Add(1)
		go func(name string) {
			defer readers.Done()
			for {
				select {
				case <-readersDone:
					return
				default:
				}
				st, ok := db.Lookup(name)
				if !ok || st.TotalCount() == 0 {
					continue
				}
				if _, _, err := st.Quantile(0.9); err != nil {
					readerErr.Store(fmt.Errorf("reader %s: %w", name, err))
					return
				}
			}
		}(names[i])
	}

	// checkOracle asserts every stream's quantiles against the exact
	// multiset of the first n elements fed to it.
	checkOracle := func(label string, n int) {
		t.Helper()
		for i, name := range names {
			st, ok := db.Lookup(name)
			if !ok {
				t.Fatalf("%s: stream %q missing", label, name)
			}
			or := oracle.New(n)
			or.Add(data[i][:n]...)
			bound := int64(eps*float64(n)) + 1
			for _, phi := range []float64{0.05, 0.5, 0.95, 0.99} {
				v, _, err := st.Quantile(phi)
				if err != nil {
					t.Fatalf("%s: quantile(%s, %g): %v", label, name, phi, err)
				}
				target := max(int64(phi*float64(n)), 1)
				if spanErr := or.SpanError(target, v); spanErr > bound {
					t.Errorf("%s: %s quantile(%g)=%d rank error %d > ε·n=%d",
						label, name, phi, v, spanErr, bound)
				}
			}
		}
	}

	// Producers, one goroutine per stream, step-aligned so the barrier
	// below knows exactly what has been sent. Stream 0's producer plays
	// saboteur: once per step, mid-chunk, it force-closes every server-side
	// connection, so session replay triggers repeatedly with frames (and
	// often a partial batch) in flight. The kills happen only while
	// producers run — the flush barriers themselves run on a stable
	// connection, otherwise they could starve.
	feed := func(from, to int) {
		var wg sync.WaitGroup
		for i := range names {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				st := c.Stream(names[i])
				for s := from; s < to; s++ {
					chunk := data[i][s*perStep : (s+1)*perStep]
					for j, v := range chunk {
						if err := st.Observe(v); err != nil {
							t.Error(err)
							return
						}
						if i == 0 && j == perStep/2 {
							srv.CloseActiveConns()
						}
					}
					if err := st.EndStep(); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	}

	feed(0, steps/2)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Mid-ingest barrier: half the data is applied (after several forced
	// reconnects), and quantiles must already be ε-accurate. No
	// maintenance drain here — sealed-but-uninstalled steps must be
	// covered by the frozen summaries.
	checkOracle("mid-ingest", (steps/2)*perStep)

	feed(steps/2, steps)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	close(readersDone)
	readers.Wait()
	if err, _ := readerErr.Load().(error); err != nil {
		t.Fatal(err)
	}

	for _, name := range names {
		st, _ := db.Lookup(name)
		if err := st.SyncMaintenance(); err != nil {
			t.Fatal(err)
		}
		if n := st.TotalCount(); n != int64(steps*perStep) {
			t.Fatalf("stream %q count = %d, want %d (replay lost or duplicated data)",
				name, n, steps*perStep)
		}
		if got := st.Steps(); got != steps {
			t.Fatalf("stream %q steps = %d, want %d", name, got, steps)
		}
	}
	checkOracle("final", steps*perStep)

	stats := srv.Stats()
	if stats.Values != uint64(nStreams*steps*perStep) {
		t.Errorf("server applied %d values, want exactly %d (dedupe broken?)",
			stats.Values, nStreams*steps*perStep)
	}
	if stats.TotalConns < 2 {
		t.Errorf("TotalConns = %d; chaos never forced a reconnect?", stats.TotalConns)
	}
	t.Logf("e2e: %d conns, %d frames (%d dup), %d values, maxPending=%d",
		stats.TotalConns, stats.Frames, stats.DupFrames, stats.Values, maxPending)
}
