package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
	"repro/hsqclient"
)

// BenchmarkRemoteIngest compares the two remote ingest paths at equal
// client count (GOMAXPROCS parallel producers each):
//
//	wire                the binary protocol through hsqclient
//	http-json-per-value one JSON value per HTTP POST (the pre-subsystem
//	                    status quo, and the floor the acceptance bar is
//	                    measured against)
//	http-json-batched   the batched {"values":[...]} JSON body, amortizing
//	                    HTTP per-request cost but not encoding cost
//
// The wire path must sustain ≥ 10× the values/sec of the per-value HTTP
// path; in practice the gap is orders of magnitude (one varint append vs
// a full HTTP round trip per element).
func BenchmarkRemoteIngest(b *testing.B) {
	b.Run("wire", func(b *testing.B) {
		db := benchDB(b)
		srv := New(Config{DB: db})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)                          //nolint:errcheck
		defer srv.Shutdown(context.Background()) //nolint:errcheck

		c, err := hsqclient.Dial(l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close() //nolint:errcheck
		st := c.Stream("bench")

		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := int64(0)
			for pb.Next() {
				v++
				if err := st.Observe(v); err != nil {
					b.Error(err)
					return
				}
			}
		})
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		reportValuesPerSec(b)
	})

	b.Run("http-json-per-value", func(b *testing.B) {
		db := benchDB(b)
		url := benchHTTP(b, db)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			client := &http.Client{}
			v := int64(0)
			for pb.Next() {
				v++
				body, _ := json.Marshal(map[string]int64{"value": v})
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain for keep-alive
				resp.Body.Close()              //nolint:errcheck
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		})
		b.StopTimer()
		reportValuesPerSec(b)
	})

	// b.N counts values here too: workers pull batches of 2048 from a
	// shared counter so the values/s metric is comparable.
	b.Run("http-json-batched", func(b *testing.B) {
		const batch = 2048
		db := benchDB(b)
		url := benchHTTP(b, db)
		vals := make([]int64, batch)
		for i := range vals {
			vals[i] = int64(i)
		}
		body, _ := json.Marshal(map[string][]int64{"values": vals})
		nBatches := int64((b.N + batch - 1) / batch)
		var next atomic.Int64
		workers := runtime.GOMAXPROCS(0)
		errCh := make(chan error, workers)
		var wg sync.WaitGroup
		b.ResetTimer()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client := &http.Client{}
				for next.Add(1) <= nBatches {
					resp, err := client.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						errCh <- err
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()              //nolint:errcheck
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		select {
		case err := <-errCh:
			b.Fatal(err)
		default:
		}
		b.ReportMetric(float64(nBatches*batch)/b.Elapsed().Seconds(), "values/s")
	})
}

func benchDB(b *testing.B) *hsq.DB {
	b.Helper()
	db, err := hsq.Open(hsq.Options{Epsilon: 0.01, Backend: "mem"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() }) //nolint:errcheck
	return db
}

// benchHTTP serves the shared JSON observe baseline (the same handler
// work hsqd does; see JSONObserveBaseline).
func benchHTTP(b *testing.B, db *hsq.DB) string {
	b.Helper()
	url, shutdown, err := JSONObserveBaseline(db, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(shutdown)
	return url
}

func reportValuesPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "values/s")
}
