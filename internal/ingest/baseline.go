package ingest

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"time"

	"repro"
)

// JSONObserveBaseline serves the minimal JSON observe endpoint — the same
// decode-and-apply work hsqd's HTTP handler does for {"value":v} and
// {"values":[...]} bodies — on a loopback socket. It is the HTTP baseline
// the wire protocol is measured against; BenchmarkRemoteIngest and the
// "ingest" figure in internal/experiments share it so the published
// comparison and the daemon's handler cannot drift apart silently.
//
// The returned shutdown func stops the listener; url is the full POST
// target.
func JSONObserveBaseline(db *hsq.DB, stream string) (url string, shutdown func(), err error) {
	st, err := db.Stream(stream)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /observe", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Value  *int64  `json:"value"`
			Values []int64 `json:"values"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if body.Value != nil {
			st.Observe(*body.Value)
		}
		if len(body.Values) > 0 {
			st.ObserveSlice(body.Values)
		}
		io.WriteString(w, "{}\n") //nolint:errcheck
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(l) //nolint:errcheck
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(ctx) //nolint:errcheck
	}
	return "http://" + l.Addr().String() + "/observe", shutdown, nil
}
