package ingest

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/wire"
)

func newTestDB(t *testing.T, opts hsq.Options) *hsq.DB {
	t.Helper()
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.05
	}
	if opts.Backend == "" {
		opts.Backend = "mem"
	}
	db, err := hsq.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() }) //nolint:errcheck
	return db
}

// rawConn is a test harness speaking raw wire frames to a Server over a
// real loopback socket, bypassing hsqclient — for pinning server behavior
// against the protocol itself rather than against our own client. (A
// net.Pipe would deadlock here: it has no buffering, and the protocol
// legitimately has moments where both sides write — e.g. the server
// pushing an unprompted ack while the client pushes the next batch.)
type rawConn struct {
	t  *testing.T
	nc net.Conn
	w  *wire.Writer
	r  *wire.Reader
	wg sync.WaitGroup
}

func dialRaw(t *testing.T, s *Server) *rawConn {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck
	rc := &rawConn{t: t}
	rc.wg.Add(1)
	go func() {
		defer rc.wg.Done()
		server, err := l.Accept()
		if err != nil {
			return
		}
		s.ServeConn(server)
	}()
	rc.nc, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rc.w, rc.r = wire.NewWriter(rc.nc), wire.NewReader(rc.nc)
	t.Cleanup(func() {
		rc.nc.Close() //nolint:errcheck
		rc.wg.Wait()
	})
	return rc
}

func (rc *rawConn) send(f *wire.Frame) {
	rc.t.Helper()
	if err := rc.w.WriteFrame(f); err != nil {
		rc.t.Fatalf("write %s: %v", f, err)
	}
	if err := rc.w.Flush(); err != nil {
		rc.t.Fatalf("flush %s: %v", f, err)
	}
}

func (rc *rawConn) recv() *wire.Frame {
	rc.t.Helper()
	rc.nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	f, err := rc.r.ReadFrame()
	if err != nil {
		rc.t.Fatalf("read frame: %v", err)
	}
	return f
}

func (rc *rawConn) hello(session string) *wire.Frame {
	rc.t.Helper()
	rc.send(&wire.Frame{Type: wire.TypeHello, Version: wire.Version, Session: session})
	f := rc.recv()
	if f.Type != wire.TypeWelcome {
		rc.t.Fatalf("handshake reply: %s, want welcome", f)
	}
	return f
}

// TestHandshake pins the happy path: Hello → Welcome with the window and
// a zero high-water mark for a fresh session.
func TestHandshake(t *testing.T) {
	s := New(Config{DB: newTestDB(t, hsq.Options{})})
	rc := dialRaw(t, s)
	w := rc.hello("sess-1")
	if w.Seq != 0 || w.Credit != DefaultWindow || w.Version != wire.Version {
		t.Fatalf("welcome = %s, want lastSeq=0 credit=%d v%d", w, DefaultWindow, wire.Version)
	}
}

// TestHandshakeRejections pins the error paths: wrong first frame,
// version mismatch, empty session. Each must produce an Error frame with
// the protocol code, then a closed connection.
func TestHandshakeRejections(t *testing.T) {
	cases := []struct {
		name  string
		frame *wire.Frame
		want  string
	}{
		{"not-hello", &wire.Frame{Type: wire.TypeFlush, Seq: 1}, "want hello"},
		{"bad-version", &wire.Frame{Type: wire.TypeHello, Version: 99, Session: "s"}, "version"},
		{"empty-session", &wire.Frame{Type: wire.TypeHello, Version: wire.Version, Session: ""}, "session"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{DB: newTestDB(t, hsq.Options{})})
			rc := dialRaw(t, s)
			rc.send(tc.frame)
			f := rc.recv()
			if f.Type != wire.TypeError || f.Code != wire.ErrCodeProtocol {
				t.Fatalf("got %s, want protocol error", f)
			}
			if !strings.Contains(f.Message, tc.want) {
				t.Fatalf("error %q does not mention %q", f.Message, tc.want)
			}
		})
	}
}

// TestApplyAndAck drives batches and an end-step through one connection
// and checks the data landed in the DB and the ack is cumulative.
func TestApplyAndAck(t *testing.T) {
	db := newTestDB(t, hsq.Options{})
	s := New(Config{DB: db})
	rc := dialRaw(t, s)
	rc.hello("sess-1")

	rc.send(&wire.Frame{Type: wire.TypeOpenStream, StreamID: 1, Name: "api.latency"})
	rc.send(&wire.Frame{Type: wire.TypeBatch, Seq: 1, StreamID: 1, Values: []int64{1, 2, 3}})
	rc.send(&wire.Frame{Type: wire.TypeBatch, Seq: 2, StreamID: 1, Values: []int64{4, 5}})
	rc.send(&wire.Frame{Type: wire.TypeEndStep, Seq: 3, StreamID: 1})

	ack := rc.recv()
	if ack.Type != wire.TypeAck || ack.Seq != 3 {
		t.Fatalf("got %s, want ack seq=3", ack)
	}
	st, ok := db.Lookup("api.latency")
	if !ok {
		t.Fatal("stream not created")
	}
	if n := st.TotalCount(); n != 5 {
		t.Fatalf("TotalCount = %d, want 5", n)
	}
	if got := st.Steps(); got != 1 {
		t.Fatalf("Steps = %d, want 1", got)
	}

	stats := s.Stats()
	if stats.Values != 5 || stats.Batches != 2 || stats.EndSteps != 1 {
		t.Fatalf("stats = %+v, want 5 values / 2 batches / 1 endstep", stats)
	}
	if ss := stats.Streams["api.latency"]; ss.Values != 5 {
		t.Fatalf("per-stream values = %d, want 5", ss.Values)
	}
}

// TestSessionResume pins exactly-once across reconnects: a second
// connection with the same session learns the applied high-water mark and
// replayed duplicates are not re-applied.
func TestSessionResume(t *testing.T) {
	db := newTestDB(t, hsq.Options{})
	s := New(Config{DB: db})

	rc1 := dialRaw(t, s)
	rc1.hello("sess-r")
	rc1.send(&wire.Frame{Type: wire.TypeOpenStream, StreamID: 1, Name: "a"})
	rc1.send(&wire.Frame{Type: wire.TypeBatch, Seq: 1, StreamID: 1, Values: []int64{10, 20}})
	rc1.send(&wire.Frame{Type: wire.TypeFlush})
	if ack := rc1.recv(); ack.Seq != 1 {
		t.Fatalf("first conn ack = %s, want seq=1", ack)
	}
	rc1.nc.Close() //nolint:errcheck

	rc2 := dialRaw(t, s)
	w := rc2.hello("sess-r")
	if w.Seq != 1 {
		t.Fatalf("resumed welcome lastSeq = %d, want 1", w.Seq)
	}
	// Replay the already-applied frame (as a client that missed the ack
	// would), plus a new one.
	rc2.send(&wire.Frame{Type: wire.TypeOpenStream, StreamID: 1, Name: "a"})
	rc2.send(&wire.Frame{Type: wire.TypeBatch, Seq: 1, StreamID: 1, Values: []int64{10, 20}})
	rc2.send(&wire.Frame{Type: wire.TypeBatch, Seq: 2, StreamID: 1, Values: []int64{30}})
	rc2.send(&wire.Frame{Type: wire.TypeFlush})
	if ack := rc2.recv(); ack.Seq != 2 {
		t.Fatalf("ack = %s, want seq=2", ack)
	}

	st, _ := db.Lookup("a")
	if n := st.StreamCount(); n != 3 {
		t.Fatalf("StreamCount = %d after replay, want 3 (duplicate re-applied?)", n)
	}
	if d := s.Stats().DupFrames; d != 1 {
		t.Fatalf("DupFrames = %d, want 1", d)
	}
}

// TestUnboundStream pins the error for a batch on a never-opened ID.
func TestUnboundStream(t *testing.T) {
	s := New(Config{DB: newTestDB(t, hsq.Options{})})
	rc := dialRaw(t, s)
	rc.hello("sess-u")
	rc.send(&wire.Frame{Type: wire.TypeBatch, Seq: 1, StreamID: 7, Values: []int64{1}})
	f := rc.recv()
	if f.Type != wire.TypeError || f.Code != wire.ErrCodeStream {
		t.Fatalf("got %s, want stream error", f)
	}
}

// TestInvalidStreamName pins the error path for a name the DB rejects.
func TestInvalidStreamName(t *testing.T) {
	s := New(Config{DB: newTestDB(t, hsq.Options{})})
	rc := dialRaw(t, s)
	rc.hello("sess-i")
	rc.send(&wire.Frame{Type: wire.TypeOpenStream, StreamID: 1, Name: "bad/name"})
	f := rc.recv()
	if f.Type != wire.TypeError || f.Code != wire.ErrCodeStream {
		t.Fatalf("got %s, want stream error", f)
	}
}

// TestRebindStreamID pins that re-binding an ID to a different name is a
// protocol-level error (silent rebinding would mis-route batches).
func TestRebindStreamID(t *testing.T) {
	s := New(Config{DB: newTestDB(t, hsq.Options{})})
	rc := dialRaw(t, s)
	rc.hello("sess-b")
	rc.send(&wire.Frame{Type: wire.TypeOpenStream, StreamID: 1, Name: "a"})
	rc.send(&wire.Frame{Type: wire.TypeOpenStream, StreamID: 1, Name: "a"}) // idempotent: fine
	rc.send(&wire.Frame{Type: wire.TypeOpenStream, StreamID: 1, Name: "b"})
	f := rc.recv()
	if f.Type != wire.TypeError {
		t.Fatalf("got %s, want error", f)
	}
	if !strings.Contains(f.Message, "rebound") {
		t.Fatalf("error %q does not mention rebinding", f.Message)
	}
}

// TestAckCadence checks the server acks at the window/4 cadence without
// any Flush frames, so client credit is replenished before it drains.
func TestAckCadence(t *testing.T) {
	s := New(Config{DB: newTestDB(t, hsq.Options{}), Window: 8})
	rc := dialRaw(t, s)
	rc.hello("sess-c")
	rc.send(&wire.Frame{Type: wire.TypeOpenStream, StreamID: 1, Name: "a"})
	for i := 1; i <= 4; i++ {
		rc.send(&wire.Frame{Type: wire.TypeBatch, Seq: uint64(i), StreamID: 1, Values: []int64{int64(i)}})
	}
	// window/4 = 2: two acks must arrive unprompted.
	if ack := rc.recv(); ack.Type != wire.TypeAck || ack.Seq != 2 {
		t.Fatalf("first ack = %s, want seq=2", ack)
	}
	if ack := rc.recv(); ack.Type != wire.TypeAck || ack.Seq != 4 {
		t.Fatalf("second ack = %s, want seq=4", ack)
	}
}

// TestShutdownDrain pins Shutdown: live connections get a shutdown error
// frame and Serve returns net.ErrClosed.
func TestShutdownDrain(t *testing.T) {
	s := New(Config{DB: newTestDB(t, hsq.Options{})})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck
	w, r := wire.NewWriter(nc), wire.NewReader(nc)
	if err := w.WriteFrame(&wire.Frame{Type: wire.TypeHello, Version: wire.Version, Session: "sd"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if f, err := r.ReadFrame(); err != nil || f.Type != wire.TypeWelcome {
		t.Fatalf("welcome: %v %v", f, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	f, err := r.ReadFrame()
	if err == nil && (f.Type != wire.TypeError || f.Code != wire.ErrCodeShutdown) {
		t.Fatalf("got %s, want shutdown error frame", f)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// TestSessionTTLEviction pins the session-table bound: a session
// detached longer than the TTL is swept on the next adoption, while a
// fresh one survives.
func TestSessionTTLEviction(t *testing.T) {
	s := New(Config{DB: newTestDB(t, hsq.Options{}), SessionTTL: 30 * time.Millisecond})

	rc1 := dialRaw(t, s)
	rc1.hello("ephemeral")
	rc1.nc.Close() //nolint:errcheck
	waitSessions := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for s.Stats().Sessions != want {
			if time.Now().After(deadline) {
				t.Fatalf("sessions = %d, want %d", s.Stats().Sessions, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitSessions(1)
	time.Sleep(60 * time.Millisecond) // let "ephemeral" expire

	rc2 := dialRaw(t, s)
	rc2.hello("fresh") // adoption sweeps the expired session
	waitSessions(1)

	// A session detached for less than the TTL survives the sweep.
	rc2.nc.Close() //nolint:errcheck
	rc3 := dialRaw(t, s)
	rc3.hello("third")
	if got := s.Stats().Sessions; got != 2 {
		t.Fatalf("sessions = %d, want 2 (fresh not yet expired + third)", got)
	}
}
