package ingest

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/query"
	"repro/internal/wire"
)

// Continuous queries: a client registers a query plan with a Subscribe
// frame and the server pushes re-evaluated results whenever a stream the
// plan selects finishes a time step. The server is the only side that
// knows when steps end, so pushing from here replaces the client polling
// N streams with one standing plan evaluated over merged summaries.
//
// Delivery model:
//
//   - Evaluation is debounced (Config.PushDebounce): a burst of EndSteps
//     across many selected streams coalesces into one push carrying the
//     state after the burst. Subscribers see the latest state, not every
//     intermediate one.
//   - The Subscribe frame's Credit field bounds how many pushes the
//     server will send before the client renews (re-Subscribe with the
//     same subscription ID); 0 means unbounded. A subscription out of
//     credit stays registered and dirty, and the next renewal triggers a
//     fresh push — slow consumers bound server work instead of queueing.
//   - An invalid plan is refused with a Push frame carrying ErrCodePlan
//     for that subscription ID; the connection stays healthy. Later
//     evaluation errors (e.g. a selected stream dropped mid-flight) are
//     delivered the same way and the subscription stays registered.

// DefaultPushDebounce is the settle window between an EndStep and the
// push it triggers, coalescing multi-stream ingest bursts into one
// evaluation. Config.PushDebounce overrides it; negative disables.
const DefaultPushDebounce = 25 * time.Millisecond

// subscription is one standing continuous query on a connection.
// Fields are guarded by the conn's subMu except plan, which is
// immutable after registration.
type subscription struct {
	id     uint64
	plan   *query.Plan
	credit uint64 // pushes allowed until renewal; 0 = unbounded
	sent   uint64 // pushes since registration/renewal
	seq    uint64 // per-subscription push counter, first push is 1
	dirty  bool   // a selected stream ended a step since the last push
}

// subscribe registers or renews a continuous query from a Subscribe
// frame. Plan errors are answered with a Push nack for the subscription
// ID and do not fail the connection; the returned error is reserved for
// transport failures.
func (s *Server) subscribe(c *conn, f *wire.Frame) error {
	plan, err := query.ParsePlan(f.Data)
	if err != nil {
		s.errCount.Add(1)
		return s.push(c, &wire.Frame{
			Type:     wire.TypePush,
			StreamID: f.StreamID,
			Code:     wire.ErrCodePlan,
			Message:  err.Error(),
		})
	}
	c.subMu.Lock()
	if c.subs == nil {
		c.subs = make(map[uint64]*subscription)
	}
	sub, ok := c.subs[f.StreamID]
	if !ok {
		sub = &subscription{id: f.StreamID}
		c.subs[f.StreamID] = sub
		s.subscribes.Add(1)
	}
	// A renewal replaces the plan and resets the credit budget; the push
	// sequence keeps counting so the client can spot the renewal boundary.
	sub.plan = plan
	sub.credit = f.Credit
	sub.sent = 0
	sub.dirty = true // always push a fresh result on (re-)subscribe
	if !c.pusher {
		c.pusher = true
		s.wg.Add(1)
		go s.pushLoop(c)
	}
	c.subMu.Unlock()
	c.wakePusher()
	return nil
}

// unsubscribe drops a standing query. Unknown IDs are ignored — the
// client may race its Unsubscribe against a server restart.
func (s *Server) unsubscribe(c *conn, id uint64) {
	c.subMu.Lock()
	delete(c.subs, id)
	c.subMu.Unlock()
}

// notifySubscribers marks every subscription selecting stream dirty, on
// every connection, and wakes the pushers. Called after each applied
// EndStep, from the wire path and (via NotifyEndStep) the REST path.
func (s *Server) notifySubscribers(stream string) {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		woke := false
		c.subMu.Lock()
		for _, sub := range c.subs {
			if !sub.dirty && sub.plan.MatchesStream(stream) {
				sub.dirty = true
				woke = true
			}
		}
		c.subMu.Unlock()
		if woke {
			c.wakePusher()
		}
	}
}

// NotifyEndStep tells the subscription layer that stream finished a time
// step outside the wire ingest path (e.g. an EndStep issued over the
// REST API of a daemon sharing the DB). Wire-ingested EndSteps notify
// automatically.
func (s *Server) NotifyEndStep(stream string) { s.notifySubscribers(stream) }

// wakePusher nudges the connection's push loop; the 1-buffered channel
// coalesces concurrent wakes.
func (c *conn) wakePusher() {
	select {
	case c.subWake <- struct{}{}:
	default:
	}
}

// pushLoop is the per-connection push goroutine, started on the first
// Subscribe and exiting with the connection. Each wake is debounced,
// then every dirty subscription with credit is re-evaluated and pushed.
func (s *Server) pushLoop(c *conn) {
	defer s.wg.Done()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-c.subWake:
		}
		if s.pushDebounce > 0 {
			t := time.NewTimer(s.pushDebounce)
			select {
			case <-c.ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		// Drain a wake that raced the debounce window: the dirty marks it
		// announced are visible to the snapshot below, so it is spent.
		select {
		case <-c.subWake:
		default:
		}
		if err := s.pushDirty(c); err != nil {
			// The read loop will observe the same dead socket; just stop
			// pushing.
			c.cancel()
			return
		}
	}
}

// pushDirty evaluates and pushes every dirty subscription that has
// credit. Evaluation runs outside subMu — plans touch the DB and must
// not block Subscribe/Unsubscribe handling.
func (s *Server) pushDirty(c *conn) error {
	c.subMu.Lock()
	due := make([]*subscription, 0, len(c.subs))
	for _, sub := range c.subs {
		if sub.dirty && (sub.credit == 0 || sub.sent < sub.credit) {
			sub.dirty = false
			sub.sent++
			sub.seq++
			due = append(due, sub)
		}
	}
	c.subMu.Unlock()
	for _, sub := range due {
		f := &wire.Frame{Type: wire.TypePush, StreamID: sub.id, Seq: sub.seq}
		res, err := s.db.RunPlan(sub.plan)
		if err == nil {
			var data []byte
			if data, err = json.Marshal(res); err == nil && len(data) > wire.MaxFrameSize-64 {
				err = fmt.Errorf("result (%d bytes) exceeds frame limit; narrow the plan", len(data))
			} else if err == nil {
				f.Data = data
			}
		}
		if err != nil {
			f.Code = wire.ErrCodePlan
			f.Message = err.Error()
			f.Data = nil
		}
		if werr := s.push(c, f); werr != nil {
			return werr
		}
		s.pushes.Add(1)
	}
	return nil
}

// push writes one frame under the connection's write lock.
func (s *Server) push(c *conn, f *wire.Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.w.WriteFrame(f); err != nil {
		return err
	}
	return c.w.Flush()
}
