// Package ingest is the server half of the remote ingest subsystem: it
// accepts hsqclient connections speaking the internal/wire protocol and
// applies their frames to the streams of an hsq.DB through the
// ObserveSlice fast path.
//
// One goroutine per connection reads frames in order and applies each
// before reading the next, so the server never buffers un-applied data:
// the only queue is the kernel socket buffer, and the credit window
// (acknowledged back to the client in wire.Ack frames) bounds how far a
// client may run ahead. When a stream's EndStep blocks on maintenance
// backpressure (Config.MaxPendingSteps), acks stop and the client's
// credit drains — backpressure propagates to the producer instead of
// accumulating server-side.
//
// Sessions give reconnecting clients exactly-once delivery per server
// process: each sequenced frame carries a client-assigned sequence
// number, the session records the highest applied one, and the Welcome
// frame replays that high-water mark so the client can discard
// already-applied frames before re-sending the rest.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/wire"
)

// DefaultWindow is the credit window granted to clients: the number of
// sequenced frames a client may have in flight (sent, unacknowledged).
const DefaultWindow = 64

// handshakeTimeout bounds how long a fresh connection may take to present
// its Hello frame before the server hangs up.
const handshakeTimeout = 10 * time.Second

// DefaultSessionTTL is how long a disconnected session's replay state
// (its applied-sequence high-water mark) is retained for reconnection.
const DefaultSessionTTL = time.Hour

// ClusterHook is what a sharded deployment plugs into the ingest server
// (implemented by internal/cluster; nil for a single-node server).
//
// The contract that keeps acks honest across the cluster: every sequenced
// frame the server processes is offered to Relay before the server may
// acknowledge it, and every acknowledgement (Ack or relay-barrier Pong) is
// preceded by WaitRelayed, so an acked frame is applied on every reachable
// member of its stream.
type ClusterHook interface {
	// Member reports whether this node stores stream (owner or follower).
	Member(stream string) bool
	// Relay hands a sequenced frame to the cluster transport under the
	// client's own session token and sequence number. fanOnly marks frames
	// that arrived over an already-routed connection: they fan out to
	// replica followers but are never routed again.
	Relay(session, stream string, f *wire.Frame, fanOnly bool) error
	// WaitRelayed blocks until every frame relayed for session with
	// sequence ≤ seq is resolved (acked by its target, rerouted, or
	// dropped because the target stayed down).
	WaitRelayed(ctx context.Context, session string, seq uint64) error
}

// Config parametrizes a Server.
type Config struct {
	// DB is the database frames are applied to. Required.
	DB *hsq.DB
	// Window is the credit window; 0 means DefaultWindow.
	Window int
	// SessionTTL bounds how long a session with no live connection keeps
	// its replay state; a client reconnecting later starts a fresh
	// session (its unacknowledged frames would then be re-applied, so
	// clients should not buffer across outages longer than this). 0 means
	// DefaultSessionTTL. Without a TTL, one-shot producers would grow the
	// session table forever.
	SessionTTL time.Duration
	// IdleTimeout, when positive, closes connections that send no frame
	// for that long. Clients using keepalive pings stay connected through
	// idle periods. 0 disables the deadline (the default: producers that
	// connect once and write rarely keep working).
	IdleTimeout time.Duration
	// PushDebounce is the settle window between an EndStep and the
	// continuous-query push it triggers (see subscribe.go). 0 means
	// DefaultPushDebounce; negative disables debouncing (tests).
	PushDebounce time.Duration
	// Cluster, when non-nil, shards the server: frames for streams this
	// node does not store are routed to the owning shard, applied frames
	// are fanned to replica followers, and acks wait for both.
	Cluster ClusterHook
	// Logf, when non-nil, receives connection-level log lines.
	Logf func(format string, args ...any)
}

// Server accepts and serves ingest connections. Create with New; it is
// ready immediately (Serve binds it to a listener, ServeConn to a single
// connection).
type Server struct {
	db           *hsq.DB
	window       uint64
	sessionTTL   time.Duration
	idleTimeout  time.Duration
	pushDebounce time.Duration
	cluster      ClusterHook
	logf         func(format string, args ...any)

	mu        sync.Mutex
	sessions  map[string]*session
	conns     map[uint64]*conn
	listeners map[net.Listener]struct{}
	streams   map[string]*streamCounters
	nextConn  uint64
	closed    bool
	baseCtx   context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup

	totalConns atomic.Uint64
	frames     atomic.Uint64
	batches    atomic.Uint64
	values     atomic.Uint64
	endSteps   atomic.Uint64
	dupFrames  atomic.Uint64
	errCount   atomic.Uint64
	subscribes atomic.Uint64
	pushes     atomic.Uint64
}

// session is the durable-for-the-process half of a client: the applied
// sequence marks that survive reconnects. sess.mu serializes frame
// application, so a reconnect racing its half-dead predecessor can never
// interleave applies or observe torn marks.
//
// Marks are per stream, not per connection: in a cluster the same
// session's frames can reach this node over different paths (directly,
// routed via another node, fanned from the owner), and a conn-wide
// high-water mark would wrongly dedup a stream whose frames took the
// slower path. maxSeq is the maximum over all marks; it backs the Welcome
// frame's legacy Seq field and the ack floor for fresh connections.
type session struct {
	mu         sync.Mutex
	streams    map[string]uint64 // stream name → highest applied seq
	maxSeq     uint64
	conn       *conn     // current owner, nil when detached or relay-fed
	lastActive time.Time // last adopt/detach/apply; zero before first detach
}

// streamCounters is the cumulative per-stream ingest tally (across all
// connections and sessions).
type streamCounters struct {
	batches  atomic.Uint64
	values   atomic.Uint64
	endSteps atomic.Uint64
}

// bound is a conn's binding of a client stream ID: the stream's name plus
// the local stream handle — nil when this node is not a member of the
// stream and frames are routed onward instead of applied.
type bound struct {
	name string
	st   *hsq.Stream
}

// conn is one live client connection.
type conn struct {
	id      uint64
	remote  string
	session string
	nc      net.Conn
	ctx     context.Context
	cancel  context.CancelFunc
	writeMu sync.Mutex // guards w: acks from the handler, errors from Shutdown
	w       *wire.Writer
	leaf    bool // apply-only relay target: no fan-out, no ack gating
	relayIn bool // routed-relay target: applies and fans, never routes

	streamsMu sync.Mutex
	streams   map[uint64]bound

	subMu   sync.Mutex
	subs    map[uint64]*subscription
	subWake chan struct{}
	pusher  bool // push goroutine started (guarded by subMu)

	batches  atomic.Uint64
	values   atomic.Uint64
	endSteps atomic.Uint64
	lastSeq  atomic.Uint64
}

// New returns a Server over cfg.DB.
func New(cfg Config) *Server {
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ttl := cfg.SessionTTL
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	debounce := cfg.PushDebounce
	if debounce == 0 {
		debounce = DefaultPushDebounce
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:           cfg.DB,
		window:       uint64(w),
		sessionTTL:   ttl,
		idleTimeout:  cfg.IdleTimeout,
		pushDebounce: debounce,
		cluster:      cfg.Cluster,
		logf:         logf,
		sessions:     make(map[string]*session),
		conns:        make(map[uint64]*conn),
		listeners:    make(map[net.Listener]struct{}),
		streams:      make(map[string]*streamCounters),
		baseCtx:      ctx,
		cancel:       cancel,
	}
}

// Serve accepts connections on l until the listener fails or the server
// shuts down. It always returns a non-nil error; after Shutdown the error
// is net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("ingest: server closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		if s.startConn(nc) == nil {
			nc.Close() //nolint:errcheck
			return net.ErrClosed
		}
	}
}

// ServeConn serves a single pre-established connection (tests use it with
// net.Pipe) and returns once the connection's handler has finished.
func (s *Server) ServeConn(nc net.Conn) {
	if done := s.startConn(nc); done != nil {
		<-done
		return
	}
	nc.Close() //nolint:errcheck
}

// startConn registers the connection and spawns its handler, returning a
// channel closed when the handler finishes; it returns nil when the
// server is shut down.
func (s *Server) startConn(nc net.Conn) <-chan struct{} {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.nextConn++
	ctx, cancel := context.WithCancel(s.baseCtx)
	c := &conn{
		id:      s.nextConn,
		remote:  nc.RemoteAddr().String(),
		nc:      nc,
		ctx:     ctx,
		cancel:  cancel,
		w:       wire.NewWriter(nc),
		subWake: make(chan struct{}, 1),
	}
	s.conns[c.id] = c
	s.wg.Add(1)
	s.mu.Unlock()
	s.totalConns.Add(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.conns, c.id)
			s.mu.Unlock()
			s.detachSession(c)
			cancel()
			nc.Close() //nolint:errcheck
		}()
		err := s.handle(c)
		// io.EOF is the clean client close; the others are the usual
		// aftermath of a force-closed or cancelled connection.
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, context.Canceled) {
			s.logf("ingest: conn %d (%s): %v", c.id, c.remote, err)
		}
	}()
	return done
}

// detachSession releases the session's owner pointer if c still holds it.
func (s *Server) detachSession(c *conn) {
	if c.session == "" {
		return
	}
	s.mu.Lock()
	sess := s.sessions[c.session]
	s.mu.Unlock()
	if sess == nil {
		return
	}
	sess.mu.Lock()
	if sess.conn == c {
		sess.conn = nil
	}
	sess.lastActive = time.Now()
	sess.mu.Unlock()
}

// sendError writes a terminal error frame (best effort) and returns err.
func (s *Server) sendError(c *conn, code uint64, err error) error {
	s.errCount.Add(1)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	f := &wire.Frame{Type: wire.TypeError, Code: code, Message: err.Error()}
	if werr := c.w.WriteFrame(f); werr == nil {
		c.w.Flush() //nolint:errcheck
	}
	return err
}

// sendAck acknowledges everything up to seq and restates the window.
func (s *Server) sendAck(c *conn, seq uint64) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.w.WriteFrame(&wire.Frame{Type: wire.TypeAck, Seq: seq, Credit: s.window}); err != nil {
		return err
	}
	return c.w.Flush()
}

// handle runs the per-connection protocol: handshake, then the frame
// apply loop. Frames are applied strictly in arrival order, each fully
// applied before the next is read.
func (s *Server) handle(c *conn) error {
	r := wire.NewReader(c.nc)

	// Handshake, under a deadline so silent connections don't pin a
	// goroutine forever.
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout)) //nolint:errcheck
	hello, err := r.ReadFrame()
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	c.nc.SetReadDeadline(time.Time{}) //nolint:errcheck
	if hello.Type != wire.TypeHello {
		return s.sendError(c, wire.ErrCodeProtocol, fmt.Errorf("first frame is %s, want hello", wire.TypeName(hello.Type)))
	}
	if hello.Version < wire.MinVersion || hello.Version > wire.Version {
		return s.sendError(c, wire.ErrCodeProtocol, fmt.Errorf("protocol version %d, server speaks %d–%d", hello.Version, wire.MinVersion, wire.Version))
	}
	if hello.Session == "" {
		return s.sendError(c, wire.ErrCodeProtocol, errors.New("empty session token"))
	}
	c.leaf = hello.Flags&wire.HelloFlagLeaf != 0
	c.relayIn = hello.Flags&wire.HelloFlagRelay != 0
	// c.session is read by Stats() under s.mu; publish it the same way.
	s.mu.Lock()
	c.session = hello.Session
	s.mu.Unlock()
	sess := s.adoptSession(c, hello.Session)

	// Welcome restates the session's applied marks so the client prunes
	// its replay buffer, plus the credit window. v2 clients get per-stream
	// marks; the legacy Seq field carries their maximum for v1.
	sess.mu.Lock()
	last := sess.maxSeq
	var marks []wire.StreamSeq
	if hello.Version >= 2 && len(sess.streams) > 0 {
		marks = make([]wire.StreamSeq, 0, len(sess.streams))
		for name, seq := range sess.streams {
			marks = append(marks, wire.StreamSeq{Name: name, Seq: seq})
		}
		sort.Slice(marks, func(i, j int) bool { return marks[i].Name < marks[j].Name })
	}
	sess.mu.Unlock()
	// c.lastSeq stays 0 here: it tracks frames processed on THIS
	// connection, and acking the session floor up front could cover a
	// replayed frame the client has written but this server never read.
	// Flush replies ack the floor explicitly (see the TypeFlush case).
	c.writeMu.Lock()
	err = c.w.WriteFrame(&wire.Frame{Type: wire.TypeWelcome, Version: wire.Version, Seq: last, Credit: s.window, StreamSeqs: marks})
	if err == nil {
		err = c.w.Flush()
	}
	c.writeMu.Unlock()
	if err != nil {
		return fmt.Errorf("welcome: %w", err)
	}

	// Apply loop. sinceAck counts sequenced frames applied since the last
	// ack; acking every window/4 keeps the client's credit replenished
	// well before it runs dry while bounding ack chatter.
	ackEvery := s.window / 4
	if ackEvery == 0 {
		ackEvery = 1
	}
	// gatedAck waits for the cluster to resolve every relayed frame of the
	// session up to the ack sequence before acknowledging — the step that
	// makes an ack mean "applied on every reachable member", not "applied
	// here".
	gatedAck := func(seq uint64) error {
		if s.cluster != nil && !c.leaf {
			if err := s.cluster.WaitRelayed(c.ctx, c.session, seq); err != nil {
				return s.sendError(c, wire.ErrCodeStream, fmt.Errorf("relay: %w", err))
			}
		}
		return s.sendAck(c, seq)
	}
	var sinceAck uint64
	for {
		if s.idleTimeout > 0 {
			c.nc.SetReadDeadline(time.Now().Add(s.idleTimeout)) //nolint:errcheck
		}
		f, err := r.ReadFrame()
		if err != nil {
			return err // EOF on clean client close
		}
		s.frames.Add(1)
		switch f.Type {
		case wire.TypeOpenStream:
			if err := s.openStream(c, f); err != nil {
				return s.sendError(c, wire.ErrCodeStream, err)
			}
		case wire.TypeBatch, wire.TypeEndStep:
			applied, err := s.applySequenced(c, sess, f)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					return s.sendError(c, wire.ErrCodeShutdown, errors.New("server shutting down"))
				}
				return s.sendError(c, wire.ErrCodeStream, err)
			}
			if !applied {
				s.dupFrames.Add(1)
			}
			sinceAck++
			// EndStep is the frame producers wait on (it can carry
			// backpressure); ack it immediately.
			if sinceAck >= ackEvery || f.Type == wire.TypeEndStep {
				if err := gatedAck(c.lastSeq.Load()); err != nil {
					return err
				}
				sinceAck = 0
			}
		case wire.TypeFlush:
			// The client sends Flush only once every allocated sequence
			// number is written or was pruned against the session's marks,
			// so acking up to min(flush seq, session floor) covers pruned
			// frames — the case where a failed-over client has nothing left
			// to send but still needs its Flush to resolve — without ever
			// covering a frame this connection has not processed.
			sess.mu.Lock()
			floor := sess.maxSeq
			sess.mu.Unlock()
			seq := c.lastSeq.Load()
			if f.Seq < floor {
				floor = f.Seq
			}
			if floor > seq {
				seq = floor
			}
			if err := gatedAck(seq); err != nil {
				return err
			}
			sinceAck = 0
		case wire.TypePing:
			// The Pong is a processing barrier: everything read before the
			// Ping has been applied — and, over a cluster, relayed. Relay
			// channels use it as their delivery confirmation, so it must be
			// gated exactly like an ack.
			if s.cluster != nil && !c.leaf {
				if err := s.cluster.WaitRelayed(c.ctx, c.session, c.lastSeq.Load()); err != nil {
					return s.sendError(c, wire.ErrCodeStream, fmt.Errorf("relay: %w", err))
				}
			}
			c.writeMu.Lock()
			err := c.w.WriteFrame(&wire.Frame{Type: wire.TypePong, Seq: f.Seq})
			if err == nil {
				err = c.w.Flush()
			}
			c.writeMu.Unlock()
			if err != nil {
				return err
			}
		case wire.TypeSummaryReq:
			if err := s.serveSummary(c, f); err != nil {
				return err
			}
		case wire.TypeSubscribe:
			if err := s.subscribe(c, f); err != nil {
				return err
			}
		case wire.TypeUnsubscribe:
			s.unsubscribe(c, f.StreamID)
		default:
			return s.sendError(c, wire.ErrCodeProtocol, fmt.Errorf("unexpected %s frame", wire.TypeName(f.Type)))
		}
	}
}

// serveSummary answers a SummaryReq with the named stream's serialized
// shard summary — the scatter-gather query path's per-shard fetch. An
// unknown stream yields an empty summary (this shard holds nothing).
func (s *Server) serveSummary(c *conn, f *wire.Frame) error {
	resp := &wire.Frame{Type: wire.TypeSummaryResp, Seq: f.Seq}
	if st, ok := s.db.Lookup(f.Name); ok {
		sum, err := st.Summary()
		if err != nil {
			resp.Code = wire.ErrCodeStream
			resp.Message = err.Error()
		} else {
			resp.Data = sum.AppendBinary(nil)
		}
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.w.WriteFrame(resp); err != nil {
		return err
	}
	return c.w.Flush()
}

// adoptSession binds the connection to its session, superseding a
// previous connection that still holds it (the usual aftermath of a
// client-side reconnect racing the server noticing the dead socket).
// Relay and leaf connections attach without adopting: several of them can
// feed one session concurrently with a client connection, and they must
// never kill it. Each adoption also sweeps sessions inactive longer than
// the TTL, so one-shot producers do not grow the session table without
// bound.
func (s *Server) adoptSession(c *conn, token string) *session {
	s.mu.Lock()
	for tok, old := range s.sessions {
		if tok == token {
			continue
		}
		old.mu.Lock()
		expired := old.conn == nil && !old.lastActive.IsZero() && time.Since(old.lastActive) > s.sessionTTL
		old.mu.Unlock()
		if expired {
			delete(s.sessions, tok)
		}
	}
	sess, ok := s.sessions[token]
	if !ok {
		sess = &session{}
		s.sessions[token] = sess
	}
	s.mu.Unlock()
	if c.leaf || c.relayIn {
		sess.mu.Lock()
		sess.lastActive = time.Now()
		sess.mu.Unlock()
		return sess
	}
	sess.mu.Lock()
	prev := sess.conn
	sess.conn = c
	sess.lastActive = time.Now()
	sess.mu.Unlock()
	if prev != nil && prev != c {
		prev.cancel()
		prev.nc.Close() //nolint:errcheck
	}
	return sess
}

// openStream binds a client stream ID to a stream name. Idempotent for
// the same (id, name); rebinding an ID to a different name is a protocol
// error. On a cluster node the local stream is only created (and frames
// later applied) when this node is a member of the stream; otherwise the
// binding carries just the name and frames are routed onward. Relay and
// leaf connections always apply locally — the sender already decided this
// node is a member.
func (s *Server) openStream(c *conn, f *wire.Frame) error {
	b := bound{name: f.Name}
	if s.cluster == nil || c.leaf || c.relayIn || s.cluster.Member(f.Name) {
		st, err := s.db.Stream(f.Name)
		if err != nil {
			return fmt.Errorf("open stream %q: %w", f.Name, err)
		}
		b.st = st
	}
	c.streamsMu.Lock()
	defer c.streamsMu.Unlock()
	if c.streams == nil {
		c.streams = make(map[uint64]bound)
	}
	if prev, ok := c.streams[f.StreamID]; ok && prev.name != f.Name {
		return fmt.Errorf("stream id %d already bound to %q, rebound to %q", f.StreamID, prev.name, f.Name)
	}
	c.streams[f.StreamID] = b
	return nil
}

// applySequenced applies one Batch or EndStep frame under the session
// lock, deduplicating replays: a frame at or below the stream's applied
// mark is acknowledged but not re-applied. Marks are per (session,
// stream) because cluster paths can interleave one session's streams
// arbitrarily. It reports whether the frame was (newly) applied — routed
// frames (no local member) count as applied.
//
// On a cluster node the frame is also offered to the relay layer: routed
// onward when this node is not a member, fanned to the stream's other
// members when it is. Duplicates fan too — a replayed frame proves the
// client never saw its ack, so a follower may have missed it the first
// time; the follower's own marks squash the duplicate.
func (s *Server) applySequenced(c *conn, sess *session, f *wire.Frame) (bool, error) {
	c.streamsMu.Lock()
	b, ok := c.streams[f.StreamID]
	c.streamsMu.Unlock()
	if !ok {
		return false, fmt.Errorf("%s for unbound stream id %d", wire.TypeName(f.Type), f.StreamID)
	}
	if b.st == nil {
		// Not a member: hand the frame to the cluster to route to the
		// owning shard. No local marks move — the owner dedups.
		if err := s.cluster.Relay(c.session, b.name, f, false); err != nil {
			return false, fmt.Errorf("route %q: %w", b.name, err)
		}
		bumpMax(&c.lastSeq, f.Seq)
		return true, nil
	}
	st := b.st
	sess.mu.Lock()
	applied := f.Seq > sess.streams[b.name]
	if applied {
		var err error
		switch f.Type {
		case wire.TypeBatch:
			if err = st.ObserveSliceCtx(c.ctx, f.Values); err != nil {
				err = fmt.Errorf("observe %d values on %q: %w", len(f.Values), st.Name(), err)
			}
		case wire.TypeEndStep:
			// EndStepCtx blocks under MaxPendingSteps backpressure; the
			// stall stops this conn's acks, draining the client's credit —
			// that is the propagation path. c.ctx aborts the wait at
			// shutdown.
			if _, err = st.EndStepCtx(c.ctx); err != nil {
				err = fmt.Errorf("end step on %q: %w", st.Name(), err)
			}
		}
		if err != nil {
			sess.mu.Unlock()
			return false, err
		}
		if sess.streams == nil {
			sess.streams = make(map[string]uint64)
		}
		sess.streams[b.name] = f.Seq
		if f.Seq > sess.maxSeq {
			sess.maxSeq = f.Seq
		}
	}
	sess.lastActive = time.Now()
	sess.mu.Unlock()
	if applied {
		switch f.Type {
		case wire.TypeBatch:
			n := uint64(len(f.Values))
			c.batches.Add(1)
			c.values.Add(n)
			s.batches.Add(1)
			s.values.Add(n)
			sc := s.streamCounters(st.Name())
			sc.batches.Add(1)
			sc.values.Add(n)
		case wire.TypeEndStep:
			c.endSteps.Add(1)
			s.endSteps.Add(1)
			s.streamCounters(st.Name()).endSteps.Add(1)
			s.notifySubscribers(st.Name())
		}
	}
	bumpMax(&c.lastSeq, f.Seq)
	// Fan to the stream's other members. Leaf connections are the fan's
	// receiving end and stop here.
	if s.cluster != nil && !c.leaf {
		if err := s.cluster.Relay(c.session, b.name, f, c.relayIn); err != nil {
			return applied, fmt.Errorf("fan %q: %w", b.name, err)
		}
	}
	return applied, nil
}

// bumpMax raises an atomic to seq if it is below it. The handler goroutine
// is the only writer, so a plain load+store pair is race-free; the atomic
// exists for Stats readers.
func bumpMax(a *atomic.Uint64, seq uint64) {
	if seq > a.Load() {
		a.Store(seq)
	}
}

func (s *Server) streamCounters(name string) *streamCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, ok := s.streams[name]
	if !ok {
		sc = &streamCounters{}
		s.streams[name] = sc
	}
	return sc
}

// CloseActiveConns force-closes every live connection without shutting
// the server down. Clients reconnect and replay; tests use it to exercise
// exactly that path.
func (s *Server) CloseActiveConns() {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.cancel()
		c.nc.Close() //nolint:errcheck
	}
}

// Shutdown drains the server: listeners stop accepting, every live
// connection gets a shutdown error frame, in-flight frame applies are
// cancelled (a blocked EndStep unblocks with context.Canceled), and the
// per-connection handlers are awaited up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		listeners = append(listeners, l)
	}
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, l := range listeners {
		l.Close() //nolint:errcheck
	}
	for _, c := range conns {
		// Best-effort courtesy frame so clients report "server shutting
		// down" instead of a bare reset, then cancel the apply context.
		c.writeMu.Lock()
		if err := c.w.WriteFrame(&wire.Frame{Type: wire.TypeError, Code: wire.ErrCodeShutdown, Message: "server shutting down"}); err == nil {
			c.w.Flush() //nolint:errcheck
		}
		c.writeMu.Unlock()
		c.cancel()
		c.nc.Close() //nolint:errcheck
	}
	s.cancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ConnStats is a live-connection snapshot.
type ConnStats struct {
	ID       uint64 `json:"id"`
	Remote   string `json:"remote"`
	Session  string `json:"session"`
	Streams  int    `json:"streams"`
	Subs     int    `json:"subs"`
	Batches  uint64 `json:"batches"`
	Values   uint64 `json:"values"`
	EndSteps uint64 `json:"end_steps"`
	LastSeq  uint64 `json:"last_seq"`
}

// StreamIngestStats is the cumulative ingest tally for one stream.
type StreamIngestStats struct {
	Batches  uint64 `json:"batches"`
	Values   uint64 `json:"values"`
	EndSteps uint64 `json:"end_steps"`
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Window      int                          `json:"window"`
	ActiveConns int                          `json:"active_conns"`
	TotalConns  uint64                       `json:"total_conns"`
	Sessions    int                          `json:"sessions"`
	Frames      uint64                       `json:"frames"`
	Batches     uint64                       `json:"batches"`
	Values      uint64                       `json:"values"`
	EndSteps    uint64                       `json:"end_steps"`
	DupFrames   uint64                       `json:"dup_frames"`
	Errors      uint64                       `json:"errors"`
	Subscribes  uint64                       `json:"subscribes"`
	Pushes      uint64                       `json:"pushes"`
	Streams     map[string]StreamIngestStats `json:"streams"`
	Conns       []ConnStats                  `json:"conns"`
}

// Stats snapshots the server counters. Per-connection entries are sorted
// by connection ID; per-stream entries are cumulative since server start.
func (s *Server) Stats() Stats {
	out := Stats{
		Window:     int(s.window),
		TotalConns: s.totalConns.Load(),
		Frames:     s.frames.Load(),
		Batches:    s.batches.Load(),
		Values:     s.values.Load(),
		EndSteps:   s.endSteps.Load(),
		DupFrames:  s.dupFrames.Load(),
		Errors:     s.errCount.Load(),
		Subscribes: s.subscribes.Load(),
		Pushes:     s.pushes.Load(),
		Streams:    make(map[string]StreamIngestStats),
	}
	s.mu.Lock()
	out.ActiveConns = len(s.conns)
	out.Sessions = len(s.sessions)
	for name, sc := range s.streams {
		out.Streams[name] = StreamIngestStats{
			Batches:  sc.batches.Load(),
			Values:   sc.values.Load(),
			EndSteps: sc.endSteps.Load(),
		}
	}
	for _, c := range s.conns {
		c.streamsMu.Lock()
		ns := len(c.streams)
		c.streamsMu.Unlock()
		c.subMu.Lock()
		nsub := len(c.subs)
		c.subMu.Unlock()
		out.Conns = append(out.Conns, ConnStats{
			ID:       c.id,
			Remote:   c.remote,
			Session:  c.session,
			Streams:  ns,
			Subs:     nsub,
			Batches:  c.batches.Load(),
			Values:   c.values.Load(),
			EndSteps: c.endSteps.Load(),
			LastSeq:  c.lastSeq.Load(),
		})
	}
	s.mu.Unlock()
	sort.Slice(out.Conns, func(i, j int) bool { return out.Conns[i].ID < out.Conns[j].ID })
	return out
}

// StreamStats returns the cumulative ingest counters for one stream
// (zeros when the stream has never been fed over the wire).
func (s *Server) StreamStats(name string) StreamIngestStats {
	s.mu.Lock()
	sc := s.streams[name]
	s.mu.Unlock()
	if sc == nil {
		return StreamIngestStats{}
	}
	return StreamIngestStats{
		Batches:  sc.batches.Load(),
		Values:   sc.values.Load(),
		EndSteps: sc.endSteps.Load(),
	}
}
