// Package ingest is the server half of the remote ingest subsystem: it
// accepts hsqclient connections speaking the internal/wire protocol and
// applies their frames to the streams of an hsq.DB through the
// ObserveSlice fast path.
//
// One goroutine per connection reads frames in order and applies each
// before reading the next, so the server never buffers un-applied data:
// the only queue is the kernel socket buffer, and the credit window
// (acknowledged back to the client in wire.Ack frames) bounds how far a
// client may run ahead. When a stream's EndStep blocks on maintenance
// backpressure (Config.MaxPendingSteps), acks stop and the client's
// credit drains — backpressure propagates to the producer instead of
// accumulating server-side.
//
// Sessions give reconnecting clients exactly-once delivery per server
// process: each sequenced frame carries a client-assigned sequence
// number, the session records the highest applied one, and the Welcome
// frame replays that high-water mark so the client can discard
// already-applied frames before re-sending the rest.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/wire"
)

// DefaultWindow is the credit window granted to clients: the number of
// sequenced frames a client may have in flight (sent, unacknowledged).
const DefaultWindow = 64

// handshakeTimeout bounds how long a fresh connection may take to present
// its Hello frame before the server hangs up.
const handshakeTimeout = 10 * time.Second

// DefaultSessionTTL is how long a disconnected session's replay state
// (its applied-sequence high-water mark) is retained for reconnection.
const DefaultSessionTTL = time.Hour

// Config parametrizes a Server.
type Config struct {
	// DB is the database frames are applied to. Required.
	DB *hsq.DB
	// Window is the credit window; 0 means DefaultWindow.
	Window int
	// SessionTTL bounds how long a session with no live connection keeps
	// its replay state; a client reconnecting later starts a fresh
	// session (its unacknowledged frames would then be re-applied, so
	// clients should not buffer across outages longer than this). 0 means
	// DefaultSessionTTL. Without a TTL, one-shot producers would grow the
	// session table forever.
	SessionTTL time.Duration
	// Logf, when non-nil, receives connection-level log lines.
	Logf func(format string, args ...any)
}

// Server accepts and serves ingest connections. Create with New; it is
// ready immediately (Serve binds it to a listener, ServeConn to a single
// connection).
type Server struct {
	db         *hsq.DB
	window     uint64
	sessionTTL time.Duration
	logf       func(format string, args ...any)

	mu        sync.Mutex
	sessions  map[string]*session
	conns     map[uint64]*conn
	listeners map[net.Listener]struct{}
	streams   map[string]*streamCounters
	nextConn  uint64
	closed    bool
	baseCtx   context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup

	totalConns atomic.Uint64
	frames     atomic.Uint64
	batches    atomic.Uint64
	values     atomic.Uint64
	endSteps   atomic.Uint64
	dupFrames  atomic.Uint64
	errCount   atomic.Uint64
}

// session is the durable-for-the-process half of a client: the applied
// sequence high-water mark that survives reconnects. sess.mu serializes
// frame application, so a reconnect racing its half-dead predecessor can
// never interleave applies or observe a torn lastSeq.
type session struct {
	mu         sync.Mutex
	lastSeq    uint64
	conn       *conn     // current owner, nil when detached
	detachedAt time.Time // when conn went nil; zero while attached
}

// streamCounters is the cumulative per-stream ingest tally (across all
// connections and sessions).
type streamCounters struct {
	batches  atomic.Uint64
	values   atomic.Uint64
	endSteps atomic.Uint64
}

// conn is one live client connection.
type conn struct {
	id      uint64
	remote  string
	session string
	nc      net.Conn
	ctx     context.Context
	cancel  context.CancelFunc
	writeMu sync.Mutex // guards w: acks from the handler, errors from Shutdown
	w       *wire.Writer

	streamsMu sync.Mutex
	streams   map[uint64]*hsq.Stream

	batches  atomic.Uint64
	values   atomic.Uint64
	endSteps atomic.Uint64
	lastSeq  atomic.Uint64
}

// New returns a Server over cfg.DB.
func New(cfg Config) *Server {
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ttl := cfg.SessionTTL
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:         cfg.DB,
		window:     uint64(w),
		sessionTTL: ttl,
		logf:       logf,
		sessions:   make(map[string]*session),
		conns:      make(map[uint64]*conn),
		listeners:  make(map[net.Listener]struct{}),
		streams:    make(map[string]*streamCounters),
		baseCtx:    ctx,
		cancel:     cancel,
	}
}

// Serve accepts connections on l until the listener fails or the server
// shuts down. It always returns a non-nil error; after Shutdown the error
// is net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("ingest: server closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		if s.startConn(nc) == nil {
			nc.Close() //nolint:errcheck
			return net.ErrClosed
		}
	}
}

// ServeConn serves a single pre-established connection (tests use it with
// net.Pipe) and returns once the connection's handler has finished.
func (s *Server) ServeConn(nc net.Conn) {
	if done := s.startConn(nc); done != nil {
		<-done
		return
	}
	nc.Close() //nolint:errcheck
}

// startConn registers the connection and spawns its handler, returning a
// channel closed when the handler finishes; it returns nil when the
// server is shut down.
func (s *Server) startConn(nc net.Conn) <-chan struct{} {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.nextConn++
	ctx, cancel := context.WithCancel(s.baseCtx)
	c := &conn{
		id:     s.nextConn,
		remote: nc.RemoteAddr().String(),
		nc:     nc,
		ctx:    ctx,
		cancel: cancel,
		w:      wire.NewWriter(nc),
	}
	s.conns[c.id] = c
	s.wg.Add(1)
	s.mu.Unlock()
	s.totalConns.Add(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.conns, c.id)
			s.mu.Unlock()
			s.detachSession(c)
			cancel()
			nc.Close() //nolint:errcheck
		}()
		err := s.handle(c)
		// io.EOF is the clean client close; the others are the usual
		// aftermath of a force-closed or cancelled connection.
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, context.Canceled) {
			s.logf("ingest: conn %d (%s): %v", c.id, c.remote, err)
		}
	}()
	return done
}

// detachSession releases the session's owner pointer if c still holds it.
func (s *Server) detachSession(c *conn) {
	if c.session == "" {
		return
	}
	s.mu.Lock()
	sess := s.sessions[c.session]
	s.mu.Unlock()
	if sess == nil {
		return
	}
	sess.mu.Lock()
	if sess.conn == c {
		sess.conn = nil
		sess.detachedAt = time.Now()
	}
	sess.mu.Unlock()
}

// sendError writes a terminal error frame (best effort) and returns err.
func (s *Server) sendError(c *conn, code uint64, err error) error {
	s.errCount.Add(1)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	f := &wire.Frame{Type: wire.TypeError, Code: code, Message: err.Error()}
	if werr := c.w.WriteFrame(f); werr == nil {
		c.w.Flush() //nolint:errcheck
	}
	return err
}

// sendAck acknowledges everything up to seq and restates the window.
func (s *Server) sendAck(c *conn, seq uint64) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.w.WriteFrame(&wire.Frame{Type: wire.TypeAck, Seq: seq, Credit: s.window}); err != nil {
		return err
	}
	return c.w.Flush()
}

// handle runs the per-connection protocol: handshake, then the frame
// apply loop. Frames are applied strictly in arrival order, each fully
// applied before the next is read.
func (s *Server) handle(c *conn) error {
	r := wire.NewReader(c.nc)

	// Handshake, under a deadline so silent connections don't pin a
	// goroutine forever.
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout)) //nolint:errcheck
	hello, err := r.ReadFrame()
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	c.nc.SetReadDeadline(time.Time{}) //nolint:errcheck
	if hello.Type != wire.TypeHello {
		return s.sendError(c, wire.ErrCodeProtocol, fmt.Errorf("first frame is %s, want hello", wire.TypeName(hello.Type)))
	}
	if hello.Version != wire.Version {
		return s.sendError(c, wire.ErrCodeProtocol, fmt.Errorf("protocol version %d, server speaks %d", hello.Version, wire.Version))
	}
	if hello.Session == "" {
		return s.sendError(c, wire.ErrCodeProtocol, errors.New("empty session token"))
	}
	// c.session is read by Stats() under s.mu; publish it the same way.
	s.mu.Lock()
	c.session = hello.Session
	s.mu.Unlock()
	sess := s.adoptSession(c, hello.Session)

	// Welcome restates the session's applied high-water mark so the client
	// prunes its replay buffer, plus the credit window.
	sess.mu.Lock()
	last := sess.lastSeq
	sess.mu.Unlock()
	c.lastSeq.Store(last)
	c.writeMu.Lock()
	err = c.w.WriteFrame(&wire.Frame{Type: wire.TypeWelcome, Version: wire.Version, Seq: last, Credit: s.window})
	if err == nil {
		err = c.w.Flush()
	}
	c.writeMu.Unlock()
	if err != nil {
		return fmt.Errorf("welcome: %w", err)
	}

	// Apply loop. sinceAck counts sequenced frames applied since the last
	// ack; acking every window/4 keeps the client's credit replenished
	// well before it runs dry while bounding ack chatter.
	ackEvery := s.window / 4
	if ackEvery == 0 {
		ackEvery = 1
	}
	var sinceAck uint64
	for {
		f, err := r.ReadFrame()
		if err != nil {
			return err // EOF on clean client close
		}
		s.frames.Add(1)
		switch f.Type {
		case wire.TypeOpenStream:
			if err := s.openStream(c, f); err != nil {
				return s.sendError(c, wire.ErrCodeStream, err)
			}
		case wire.TypeBatch, wire.TypeEndStep:
			applied, err := s.applySequenced(c, sess, f)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					return s.sendError(c, wire.ErrCodeShutdown, errors.New("server shutting down"))
				}
				return s.sendError(c, wire.ErrCodeStream, err)
			}
			if !applied {
				s.dupFrames.Add(1)
			}
			sinceAck++
			// EndStep is the frame producers wait on (it can carry
			// backpressure); ack it immediately.
			if sinceAck >= ackEvery || f.Type == wire.TypeEndStep {
				if err := s.sendAck(c, c.lastSeq.Load()); err != nil {
					return err
				}
				sinceAck = 0
			}
		case wire.TypeFlush:
			if err := s.sendAck(c, c.lastSeq.Load()); err != nil {
				return err
			}
			sinceAck = 0
		default:
			return s.sendError(c, wire.ErrCodeProtocol, fmt.Errorf("unexpected %s frame", wire.TypeName(f.Type)))
		}
	}
}

// adoptSession binds the connection to its session, superseding a
// previous connection that still holds it (the usual aftermath of a
// client-side reconnect racing the server noticing the dead socket). Each
// adoption also sweeps sessions detached longer than the TTL, so one-shot
// producers do not grow the session table without bound.
func (s *Server) adoptSession(c *conn, token string) *session {
	s.mu.Lock()
	for tok, old := range s.sessions {
		if tok == token {
			continue
		}
		old.mu.Lock()
		expired := old.conn == nil && !old.detachedAt.IsZero() && time.Since(old.detachedAt) > s.sessionTTL
		old.mu.Unlock()
		if expired {
			delete(s.sessions, tok)
		}
	}
	sess, ok := s.sessions[token]
	if !ok {
		sess = &session{}
		s.sessions[token] = sess
	}
	s.mu.Unlock()
	sess.mu.Lock()
	prev := sess.conn
	sess.conn = c
	sess.detachedAt = time.Time{}
	sess.mu.Unlock()
	if prev != nil && prev != c {
		prev.cancel()
		prev.nc.Close() //nolint:errcheck
	}
	return sess
}

// openStream binds a client stream ID to a DB stream. Idempotent for the
// same (id, name); rebinding an ID to a different name is a protocol
// error.
func (s *Server) openStream(c *conn, f *wire.Frame) error {
	st, err := s.db.Stream(f.Name)
	if err != nil {
		return fmt.Errorf("open stream %q: %w", f.Name, err)
	}
	c.streamsMu.Lock()
	defer c.streamsMu.Unlock()
	if c.streams == nil {
		c.streams = make(map[uint64]*hsq.Stream)
	}
	if prev, ok := c.streams[f.StreamID]; ok && prev.Name() != f.Name {
		return fmt.Errorf("stream id %d already bound to %q, rebound to %q", f.StreamID, prev.Name(), f.Name)
	}
	c.streams[f.StreamID] = st
	return nil
}

// applySequenced applies one Batch or EndStep frame under the session
// lock, deduplicating replays: a frame at or below the session's applied
// high-water mark is acknowledged but not re-applied. It reports whether
// the frame was (newly) applied.
func (s *Server) applySequenced(c *conn, sess *session, f *wire.Frame) (bool, error) {
	c.streamsMu.Lock()
	st := c.streams[f.StreamID]
	c.streamsMu.Unlock()
	if st == nil {
		return false, fmt.Errorf("%s for unbound stream id %d", wire.TypeName(f.Type), f.StreamID)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if f.Seq <= sess.lastSeq {
		c.lastSeq.Store(sess.lastSeq)
		return false, nil
	}
	switch f.Type {
	case wire.TypeBatch:
		if err := st.ObserveSliceCtx(c.ctx, f.Values); err != nil {
			return false, fmt.Errorf("observe %d values on %q: %w", len(f.Values), st.Name(), err)
		}
		n := uint64(len(f.Values))
		c.batches.Add(1)
		c.values.Add(n)
		s.batches.Add(1)
		s.values.Add(n)
		sc := s.streamCounters(st.Name())
		sc.batches.Add(1)
		sc.values.Add(n)
	case wire.TypeEndStep:
		// EndStepCtx blocks under MaxPendingSteps backpressure; the stall
		// stops this conn's acks, draining the client's credit — that is
		// the propagation path. c.ctx aborts the wait at shutdown.
		if _, err := st.EndStepCtx(c.ctx); err != nil {
			return false, fmt.Errorf("end step on %q: %w", st.Name(), err)
		}
		c.endSteps.Add(1)
		s.endSteps.Add(1)
		s.streamCounters(st.Name()).endSteps.Add(1)
	}
	sess.lastSeq = f.Seq
	c.lastSeq.Store(f.Seq)
	return true, nil
}

func (s *Server) streamCounters(name string) *streamCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, ok := s.streams[name]
	if !ok {
		sc = &streamCounters{}
		s.streams[name] = sc
	}
	return sc
}

// CloseActiveConns force-closes every live connection without shutting
// the server down. Clients reconnect and replay; tests use it to exercise
// exactly that path.
func (s *Server) CloseActiveConns() {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.cancel()
		c.nc.Close() //nolint:errcheck
	}
}

// Shutdown drains the server: listeners stop accepting, every live
// connection gets a shutdown error frame, in-flight frame applies are
// cancelled (a blocked EndStep unblocks with context.Canceled), and the
// per-connection handlers are awaited up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		listeners = append(listeners, l)
	}
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, l := range listeners {
		l.Close() //nolint:errcheck
	}
	for _, c := range conns {
		// Best-effort courtesy frame so clients report "server shutting
		// down" instead of a bare reset, then cancel the apply context.
		c.writeMu.Lock()
		if err := c.w.WriteFrame(&wire.Frame{Type: wire.TypeError, Code: wire.ErrCodeShutdown, Message: "server shutting down"}); err == nil {
			c.w.Flush() //nolint:errcheck
		}
		c.writeMu.Unlock()
		c.cancel()
		c.nc.Close() //nolint:errcheck
	}
	s.cancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ConnStats is a live-connection snapshot.
type ConnStats struct {
	ID       uint64 `json:"id"`
	Remote   string `json:"remote"`
	Session  string `json:"session"`
	Streams  int    `json:"streams"`
	Batches  uint64 `json:"batches"`
	Values   uint64 `json:"values"`
	EndSteps uint64 `json:"end_steps"`
	LastSeq  uint64 `json:"last_seq"`
}

// StreamIngestStats is the cumulative ingest tally for one stream.
type StreamIngestStats struct {
	Batches  uint64 `json:"batches"`
	Values   uint64 `json:"values"`
	EndSteps uint64 `json:"end_steps"`
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Window      int                          `json:"window"`
	ActiveConns int                          `json:"active_conns"`
	TotalConns  uint64                       `json:"total_conns"`
	Sessions    int                          `json:"sessions"`
	Frames      uint64                       `json:"frames"`
	Batches     uint64                       `json:"batches"`
	Values      uint64                       `json:"values"`
	EndSteps    uint64                       `json:"end_steps"`
	DupFrames   uint64                       `json:"dup_frames"`
	Errors      uint64                       `json:"errors"`
	Streams     map[string]StreamIngestStats `json:"streams"`
	Conns       []ConnStats                  `json:"conns"`
}

// Stats snapshots the server counters. Per-connection entries are sorted
// by connection ID; per-stream entries are cumulative since server start.
func (s *Server) Stats() Stats {
	out := Stats{
		Window:     int(s.window),
		TotalConns: s.totalConns.Load(),
		Frames:     s.frames.Load(),
		Batches:    s.batches.Load(),
		Values:     s.values.Load(),
		EndSteps:   s.endSteps.Load(),
		DupFrames:  s.dupFrames.Load(),
		Errors:     s.errCount.Load(),
		Streams:    make(map[string]StreamIngestStats),
	}
	s.mu.Lock()
	out.ActiveConns = len(s.conns)
	out.Sessions = len(s.sessions)
	for name, sc := range s.streams {
		out.Streams[name] = StreamIngestStats{
			Batches:  sc.batches.Load(),
			Values:   sc.values.Load(),
			EndSteps: sc.endSteps.Load(),
		}
	}
	for _, c := range s.conns {
		c.streamsMu.Lock()
		ns := len(c.streams)
		c.streamsMu.Unlock()
		out.Conns = append(out.Conns, ConnStats{
			ID:       c.id,
			Remote:   c.remote,
			Session:  c.session,
			Streams:  ns,
			Batches:  c.batches.Load(),
			Values:   c.values.Load(),
			EndSteps: c.endSteps.Load(),
			LastSeq:  c.lastSeq.Load(),
		})
	}
	s.mu.Unlock()
	sort.Slice(out.Conns, func(i, j int) bool { return out.Conns[i].ID < out.Conns[j].ID })
	return out
}

// StreamStats returns the cumulative ingest counters for one stream
// (zeros when the stream has never been fed over the wire).
func (s *Server) StreamStats(name string) StreamIngestStats {
	s.mu.Lock()
	sc := s.streams[name]
	s.mu.Unlock()
	if sc == nil {
		return StreamIngestStats{}
	}
	return StreamIngestStats{
		Batches:  sc.batches.Load(),
		Values:   sc.values.Load(),
		EndSteps: sc.endSteps.Load(),
	}
}
